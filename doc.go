// Package mdsprint is a from-scratch Go reproduction of "Model-Driven
// Computational Sprinting" (Morris, Stewart, Chen, Birke, Kelley —
// EuroSys 2018): performance models that choose computational-sprinting
// policies (timeouts, sprint rates, budgets) by predicting the response
// time each policy would yield.
//
// The repository layout:
//
//   - internal/core — the paper's contribution: the hybrid model
//     (profiling -> effective sprint rate -> random decision forest ->
//     timeout-aware queue simulation) plus the No-ML and ANN baselines;
//   - internal/{dist,stats,sim} — simulation substrates;
//   - internal/{workload,mech,sprint,testbed,profiler} — the simulated
//     hardware testbed and the Section 2.1 workload profiler;
//   - internal/{queuesim,calib,forest,ann} — the model components;
//   - internal/{explore,policies,colocate} — Section 4's policy search,
//     baselines and burstable-instance colocation;
//   - internal/experiments — one entry point per paper table/figure;
//   - cmd/sprintctl, cmd/benchgen — the CLI and the experiment
//     regenerator;
//   - examples — runnable walkthroughs of the public workflow.
//
// The benchmarks in bench_test.go regenerate each figure at test scale;
// run cmd/benchgen -scale full for the EXPERIMENTS.md record.
package mdsprint
