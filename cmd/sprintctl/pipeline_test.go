package main

import (
	"path/filepath"
	"testing"

	"mdsprint/internal/obs"
	"mdsprint/internal/trace"
)

// TestPipelineTraceAcceptance is the tentpole acceptance check: one
// sprintctl run with tracing enabled must emit a Chrome trace whose
// span tree covers calibrate → sweep (with cache-hit annotations) →
// explore → online decisions, all under a single root, plus a non-empty
// decision ledger.
func TestPipelineTraceAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline run")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	decPath := filepath.Join(dir, "decisions.jsonl")

	code := run([]string{"-quiet", "-trace", tracePath, "pipeline",
		"-samples", "6", "-queries", "120", "-sim-queries", "200",
		"-iters", "12", "-steps", "4", "-decisions-out", decPath})
	if code != 0 {
		t.Fatalf("sprintctl pipeline exited %d", code)
	}

	spans, err := trace.LoadChromeTraceFile(tracePath)
	if err != nil {
		t.Fatalf("loading trace: %v", err)
	}
	byID := make(map[uint64]obs.SpanData, len(spans))
	byName := make(map[string][]obs.SpanData)
	for _, s := range spans {
		byID[s.ID] = s
		byName[s.Name] = append(byName[s.Name], s)
	}

	// Exactly one root, and it is the pipeline span.
	var roots []obs.SpanData
	for _, s := range spans {
		if s.Parent == 0 {
			roots = append(roots, s)
		}
	}
	if len(roots) != 1 || roots[0].Name != "sprintctl.pipeline" {
		t.Fatalf("want a single sprintctl.pipeline root, got %d root(s): %+v", len(roots), roots)
	}
	rootID := roots[0].ID

	// ancestor walks a span's parent links up to the root.
	ancestor := func(s obs.SpanData, name string) bool {
		for s.Parent != 0 {
			p, ok := byID[s.Parent]
			if !ok {
				t.Fatalf("span %d (%s) has unknown parent %d", s.ID, s.Name, s.Parent)
			}
			if p.Name == name {
				return true
			}
			s = p
		}
		return false
	}

	// Every stage must appear, rooted under the pipeline span.
	for _, name := range []string{
		"calib.dataset", "calib.record", "sweep.task", "sweep.eval",
		"explore.minimize", "online.decide", "online.tier", "core.predict",
	} {
		ss := byName[name]
		if len(ss) == 0 {
			t.Errorf("no %q span in the trace", name)
			continue
		}
		if !ancestor(ss[0], "sprintctl.pipeline") {
			t.Errorf("%q span %d does not descend from the pipeline root", name, ss[0].ID)
		}
	}

	// Calibration's per-record searches nest under the dataset span.
	for _, s := range byName["calib.record"] {
		if !ancestor(s, "calib.dataset") {
			t.Errorf("calib.record %d not under calib.dataset", s.ID)
		}
	}
	// The sweep stage annotates cache outcomes, and the replayed batch
	// must have produced hits.
	hits := 0
	for _, s := range append(byName["sweep.task"], byName["sweep.eval"]...) {
		a, ok := s.Attr("cache")
		if !ok {
			t.Errorf("sweep span %d has no cache annotation", s.ID)
			continue
		}
		if a.Str == "hit" {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no sweep span recorded a cache hit")
	}
	// Online decisions hang directly off the root, with their tier
	// attempts and model predictions nested inside.
	for _, s := range byName["online.decide"] {
		if s.Parent != rootID {
			t.Errorf("online.decide %d parented to %d, want the root", s.ID, s.Parent)
		}
		if a, ok := s.Attr("tier"); !ok || a.Str == "" {
			t.Errorf("online.decide %d missing tier attribute", s.ID)
		}
	}
	for _, s := range byName["core.predict"] {
		if !ancestor(s, "online.tier") && !ancestor(s, "core.predict_batch") {
			t.Errorf("core.predict %d floats outside the decision/batch tree", s.ID)
		}
	}

	// The decision ledger rode along.
	recs, err := trace.LoadDecisionsFile(decPath)
	if err != nil {
		t.Fatalf("loading decisions: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d decision records, want 4 (one per online step)", len(recs))
	}
	for i, r := range recs {
		if r.Seq != i || r.Fingerprint == "" || r.Tier == "" || r.Timeout <= 0 {
			t.Errorf("record %d incomplete: %+v", i, r)
		}
		if !r.Retuned {
			t.Errorf("record %d: the drifting-load loop must retune every step", i)
		}
	}
}
