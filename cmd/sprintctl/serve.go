package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdsprint/internal/fault"
	"mdsprint/internal/lifecycle"
	"mdsprint/internal/obs"
	"mdsprint/internal/online"
	"mdsprint/internal/server"
)

// cmdSprintd runs the policy-serving daemon: many independently
// calibrated tenants behind one HTTP surface, with admission control,
// bulkhead isolation, periodic crash-safety snapshots and a graceful
// SIGTERM drain.
//
//	sprintctl sprintd -addr :8600 -tenants search,ads -snapshot state.json
//	sprintctl sprintd -config tenants.json -snapshot state.json
func cmdSprintd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sprintd", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8600", "listen address for the serving API")
	config := fs.String("config", "", "tenant config file (JSON array of tenant configs); overrides -tenants")
	tenants := fs.String("tenants", "default", "comma-separated tenant names served with default configs")
	snapshot := fs.String("snapshot", "", "crash-safety snapshot path (empty disables persistence)")
	snapEvery := fs.Duration("snapshot-every", 5*time.Second, "periodic snapshot interval")
	maxInFlight := fs.Int("max-inflight", 256, "global in-flight request valve; excess sheds 503")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "how long a SIGTERM drain may take before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfgs, err := loadTenantConfigs(*config, *tenants)
	if err != nil {
		return err
	}

	// The daemon's own context is NOT the signal context: SIGTERM must
	// trigger a drain (finish queued work, snapshot, exit), not the
	// hard stop a canceled server context means.
	srvCtx, hardStop := context.WithCancel(context.Background())
	defer hardStop()
	s, err := server.New(srvCtx, server.Options{
		Tenants:       cfgs,
		MaxInFlight:   *maxInFlight,
		SnapshotPath:  *snapshot,
		SnapshotEvery: *snapEvery,
		Logf:          logg.Infof,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("sprintd: %w", err)
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logg.Infof("sprintd: serving %d tenant(s) on http://%s", len(cfgs), ln.Addr())
	if sprintdBound != nil {
		sprintdBound(ln.Addr().String())
	}

	select {
	case err := <-serveErr:
		return fmt.Errorf("sprintd: %w", err)
	case <-ctx.Done():
	}

	// Graceful shutdown, in order: stop accepting, drain every tenant
	// queue, write the final snapshot. Each step is best effort — a
	// wedged tenant cannot hold the exit hostage past -drain-timeout.
	logg.Infof("sprintd: draining (up to %s)...", *drainTimeout)
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	flush := &lifecycle.FlushSet{Errorf: logg.Errorf}
	flush.Add("http shutdown", func() error { return hs.Shutdown(dctx) })
	flush.Add("tenant drain", func() error { return s.Drain(dctx) })
	flush.Run()
	logg.Infof("sprintd: drained")
	return nil
}

// sprintdBound, when set (tests only), receives the daemon's actual
// listen address — the way a test using -addr :0 learns the port.
var sprintdBound func(addr string)

// loadTenantConfigs resolves the daemon's tenant set: a JSON config
// file when given, otherwise default configs for the -tenants names.
func loadTenantConfigs(path, names string) ([]server.TenantConfig, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("sprintd: %w", err)
		}
		var cfgs []server.TenantConfig
		if err := json.Unmarshal(data, &cfgs); err != nil {
			return nil, fmt.Errorf("sprintd: parsing %s: %w", path, err)
		}
		if len(cfgs) == 0 {
			return nil, fmt.Errorf("sprintd: %s defines no tenants", path)
		}
		return cfgs, nil
	}
	var cfgs []server.TenantConfig
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		cfgs = append(cfgs, server.TenantConfig{Name: n})
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sprintd: no tenants (use -tenants or -config)")
	}
	return cfgs, nil
}

// newServeClient builds the client every serving subcommand shares:
// retry plan from the httpharness discipline, per-attempt timeouts,
// retry narration on stderr.
func newServeClient(addr string, retries int) *server.Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &server.Client{
		BaseURL: strings.TrimSuffix(base, "/"),
		OnRetry: func(n int) { logg.Debugf("retry %d", n) },
	}
	if retries <= 0 {
		c.MaxRetries = -1
	} else {
		c.MaxRetries = retries
	}
	return c
}

// cmdDecide asks a running sprintd for one sprinting decision, retrying
// through sheds and transient faults with jittered backoff.
//
//	sprintctl decide -addr localhost:8600 -tenant search -rate 0.6
func cmdDecide(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("decide", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8600", "sprintd address")
	tenant := fs.String("tenant", "default", "tenant to decide for")
	rate := fs.Float64("rate", 0.5, "arrival rate as a fraction of the tenant's service rate")
	observe := fs.Float64("observe", -1, "also report this observed response time (seconds; negative skips)")
	retries := fs.Int("retries", 3, "client retries through sheds and transport faults (0 disables)")
	timeout := fs.Duration("timeout", 10*time.Second, "overall deadline across all attempts")
	if err := fs.Parse(args); err != nil {
		return err
	}

	c := newServeClient(*addr, *retries)
	cctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()
	res, err := c.Decide(cctx, *tenant, *rate)
	if err != nil {
		return err
	}
	fmt.Printf("%s: tier %s (level %d)  timeout %.1f s\n",
		res.Tenant, res.Tier, res.Level, res.Timeout)
	if *observe >= 0 {
		if err := c.Observe(cctx, *tenant, *rate, *observe); err != nil {
			return err
		}
		fmt.Printf("observed %.1f s reported\n", *observe)
	}
	return nil
}

// cmdLoad drives closed-loop load at a running sprintd, optionally
// through the fault package's chaos transport, and reports what the
// daemon did with it: decisions served, sheds absorbed, retries spent.
//
//	sprintctl load -addr localhost:8600 -tenants search,ads -workers 4 -duration 5s
//	sprintctl load ... -drop 0.1 -err 0.1   inject transport chaos client-side
func cmdLoad(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8600", "sprintd address")
	tenants := fs.String("tenants", "default", "comma-separated tenants to load (workers round-robin)")
	workers := fs.Int("workers", 4, "concurrent closed-loop workers")
	duration := fs.Duration("duration", 5*time.Second, "how long to drive load")
	retries := fs.Int("retries", 3, "client retries per request (0 disables)")
	drop := fs.Float64("drop", 0, "chaos transport: probability a request is dropped client-side")
	errp := fs.Float64("err", 0, "chaos transport: probability a request gets an injected 5xx")
	seed := fs.Uint64("seed", 1, "chaos transport seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := strings.Split(*tenants, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}

	lctx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	var served, shed, faulted, failed, retried atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newServeClient(*addr, *retries)
			c.Seed = *seed + uint64(w)*101
			c.OnRetry = func(int) { retried.Add(1) }
			if *drop > 0 || *errp > 0 {
				c.HTTP = &http.Client{Transport: fault.NewRoundTripper(http.DefaultTransport, fault.HTTPFaultConfig{
					Seed: *seed + uint64(w), DropProb: *drop, ErrorProb: *errp,
					Metrics: obs.Default(),
				})}
			}
			tenant := names[w%len(names)]
			for i := 0; lctx.Err() == nil; i++ {
				rate := 0.4 + 0.3*float64(i%7)/7
				res, err := c.Decide(lctx, tenant, rate)
				switch {
				case err == nil:
					served.Add(1)
					// Close the loop with an observation off the sprint
					// response surface, so tenants keep calibrating.
					rt := online.SurfaceRT(1, 0.8, 20, rate, res.Timeout)
					//lint:ignore errdrop load-generator observations are best effort
					_ = c.Observe(lctx, tenant, rate, rt)
				case lctx.Err() != nil:
					// Deadline, not a daemon verdict.
				case strings.Contains(err.Error(), "429") || strings.Contains(err.Error(), "503"):
					shed.Add(1)
				case strings.Contains(err.Error(), "injected"):
					// Our own chaos transport out-lasted the retry
					// budget — client-side noise, not a daemon failure.
					faulted.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := served.Load()
	fmt.Printf("load: %d decision(s) in %s (%.0f/s), %d shed, %d chaos-lost, %d retries, %d failure(s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(),
		shed.Load(), faulted.Load(), retried.Load(), failed.Load())
	if failed.Load() > 0 {
		return fmt.Errorf("load: %d request(s) failed with non-shed errors", failed.Load())
	}
	return nil
}
