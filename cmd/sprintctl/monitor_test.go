package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"mdsprint/internal/obs"
)

// TestMonitorChaosQuietOnHealthyScenarios: scenarios whose replay ends
// healthy and undamaged must produce exactly one quiet line each.
func TestMonitorChaosQuietOnHealthyScenarios(t *testing.T) {
	for _, name := range []string{"baseline", "rate-drift"} {
		var sb strings.Builder
		if err := monitorChaos(&sb, name); err != nil {
			t.Fatalf("monitorChaos(%s): %v", name, err)
		}
		if got, want := sb.String(), name+": healthy\n"; got != want {
			t.Errorf("%s output %q, want %q", name, got, want)
		}
	}
}

// TestMonitorChaosSurfacesInjectedFailures: the search-outage replay
// must surface exactly the failures the scenario injects — the demoted
// tier, the open breaker, and the damage counters — and nothing else.
func TestMonitorChaosSurfacesInjectedFailures(t *testing.T) {
	var sb strings.Builder
	if err := monitorChaos(&sb, "search-outage"); err != nil {
		t.Fatalf("monitorChaos: %v", err)
	}
	out := sb.String()
	want := []string{"tier-degraded", "breaker-open", "demotions", "breaker-trips", "predict-failures"}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(want)+1 {
		t.Fatalf("got %d lines, want header + %d problems:\n%s", len(lines), len(want), out)
	}
	if !strings.HasPrefix(lines[0], "search-outage: ") {
		t.Fatalf("header %q", lines[0])
	}
	for i, check := range want {
		if !strings.Contains(lines[i+1], check) {
			t.Errorf("line %d = %q, want check %q", i+1, lines[i+1], check)
		}
	}
	for _, absent := range []string{"budget-exhaustion", "sprint-saturation"} {
		if strings.Contains(out, absent) {
			t.Errorf("uninjected failure %q surfaced:\n%s", absent, out)
		}
	}
	if !strings.Contains(lines[1], "CRITICAL") || !strings.Contains(lines[2], "CRITICAL") {
		t.Errorf("tier/breaker problems not CRITICAL:\n%s", out)
	}
}

// TestMonitorChaosModelDivergenceRecovers: a scenario that degrades and
// then recovers leaves warnings (the damage happened) but no criticals
// (nothing is broken now).
func TestMonitorChaosModelDivergenceRecovers(t *testing.T) {
	var sb strings.Builder
	if err := monitorChaos(&sb, "model-divergence"); err != nil {
		t.Fatalf("monitorChaos: %v", err)
	}
	out := sb.String()
	if strings.Contains(out, "CRITICAL") {
		t.Errorf("recovered scenario still critical:\n%s", out)
	}
	if !strings.Contains(out, "demotions") {
		t.Errorf("recovered scenario hides its demotions:\n%s", out)
	}
}

func TestMonitorChaosAllCoversEveryScenario(t *testing.T) {
	var sb strings.Builder
	if err := monitorChaos(&sb, "all"); err != nil {
		t.Fatalf("monitorChaos(all): %v", err)
	}
	for _, name := range []string{"baseline", "burst-storm", "model-divergence", "rate-drift", "search-outage"} {
		if !strings.Contains(sb.String(), name+":") {
			t.Errorf("scenario %s missing from -chaos all output:\n%s", name, sb.String())
		}
	}
}

func TestMonitorChaosUnknownScenario(t *testing.T) {
	var sb strings.Builder
	if err := monitorChaos(&sb, "no-such-scenario"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestMonitorRemoteScrape drives the -addr path against a real
// /debug/health endpoint, healthy and degraded.
func TestMonitorRemoteScrape(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer(obs.DebugMux(reg))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var sb strings.Builder
	if err := monitorRemote(context.Background(), &sb, addr, 0, 0); err != nil {
		t.Fatalf("monitorRemote: %v", err)
	}
	if got, want := sb.String(), addr+": healthy\n"; got != want {
		t.Fatalf("healthy scrape %q, want %q", got, want)
	}

	// Degrade the registry; the 503 answer must still render.
	reg.Gauge("mdsprint_online_level", "").Set(1)
	sb.Reset()
	if err := monitorRemote(context.Background(), &sb, srv.URL, 0, 0); err != nil {
		t.Fatalf("monitorRemote degraded: %v", err)
	}
	if !strings.Contains(sb.String(), "tier-degraded") {
		t.Fatalf("degraded scrape:\n%s", sb.String())
	}
}

func TestMonitorRemoteWatchCount(t *testing.T) {
	srv := httptest.NewServer(obs.DebugMux(obs.NewRegistry()))
	defer srv.Close()

	var sb strings.Builder
	if err := monitorRemote(context.Background(), &sb, srv.URL, 1, 3); err != nil {
		t.Fatalf("monitorRemote watch: %v", err)
	}
	if got := strings.Count(sb.String(), "healthy"); got != 3 {
		t.Fatalf("polled %d times, want 3:\n%s", got, sb.String())
	}
}

func TestMonitorRemoteBadAddress(t *testing.T) {
	var sb strings.Builder
	if err := monitorRemote(context.Background(), &sb, "127.0.0.1:1", 0, 0); err == nil {
		t.Fatal("unreachable address accepted")
	}
}
