package main

import (
	"context"
	"flag"
	"fmt"

	"mdsprint/internal/calib"
	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/explore"
	"mdsprint/internal/forest"
	"mdsprint/internal/obs"
	"mdsprint/internal/online"
	"mdsprint/internal/profiler"
	"mdsprint/internal/trace"
)

// cmdPipeline runs the paper's whole control loop end to end on a small
// scale — profile → calibrate/train → sweep → explore → online
// re-selection — so one invocation exercises every instrumented stage.
// With the global -trace flag the run emits a Chrome trace whose span
// tree covers the full pipeline; -decisions-out captures the online
// stage's provenance ledger.
func cmdPipeline(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
	workloadName := fs.String("workload", "Jacobi", "workload class or MixI/MixII")
	mechName := fs.String("mech", "DVFS", "sprinting mechanism")
	samples := fs.Int("samples", 10, "profiling conditions")
	queries := fs.Int("queries", 200, "queries per profiling run")
	simQueries := fs.Int("sim-queries", 400, "queries per prediction simulation")
	iters := fs.Int("iters", 25, "annealing iterations in the explore stage")
	steps := fs.Int("steps", 8, "online control steps")
	seed := fs.Uint64("seed", 1, "random seed")
	decisionsOut := fs.String("decisions-out", "", "write the online stage's decision ledger as JSONL to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sp := obs.StartSpanCtx(ctx, "sprintctl.pipeline")
	ctx = obs.ContextWithSpan(ctx, sp)
	err := runPipeline(ctx, sp, pipelineParams{
		workload: *workloadName, mech: *mechName,
		samples: *samples, queries: *queries, simQueries: *simQueries,
		iters: *iters, steps: *steps, seed: *seed,
		decisionsOut: *decisionsOut,
	})
	sp.SetError(err)
	sp.End()
	return err
}

// pipelineParams are cmdPipeline's parsed knobs.
type pipelineParams struct {
	workload, mech               string
	samples, queries, simQueries int
	iters, steps                 int
	seed                         uint64
	decisionsOut                 string
}

// runPipeline executes the stages under the given root span.
func runPipeline(ctx context.Context, root *obs.Span, p pipelineParams) error {
	mix, err := resolveMix(p.workload)
	if err != nil {
		return err
	}
	m, err := resolveMechanism(p.mech)
	if err != nil {
		return err
	}

	// Stage 1: profile the workload over a sampled condition grid.
	psp := root.StartChild("pipeline.profile")
	psp.SetInt("conditions", int64(p.samples))
	prof := &profiler.Profiler{
		Mix: mix, Mechanism: m,
		QueriesPerRun: p.queries, Replications: 1, Seed: p.seed,
	}
	conds := profiler.PaperGrid().Sample(p.samples, p.seed+3)
	ds := prof.Profile(conds)
	psp.End()
	logg.Infof("pipeline: profiled %d conditions (service rate %.3f q/s)", len(conds), ds.ServiceRate)

	// Stage 2: calibrate effective sprint rates and train the hybrid
	// model (spans: core.train_hybrid → calib.dataset → calib.record →
	// sweep.*, forest.train).
	h, err := core.TrainHybridCtx(ctx,
		[]core.TrainingSet{{Dataset: ds, Observations: ds.Observations}},
		core.HybridOptions{
			Forest:     forest.Config{Trees: 5, FeatureFrac: 0.9, Seed: p.seed + 7},
			Calib:      calib.Options{NumQueries: 250, Replications: 1, Tolerance: 0.05, Seed: p.seed + 101},
			SimQueries: p.simQueries, SimReps: 1, Seed: p.seed + 13,
		})
	if err != nil {
		return fmt.Errorf("pipeline: training: %w", err)
	}
	logg.Infof("pipeline: hybrid model trained on %d observations", len(ds.Observations))

	// Stage 3: a policy sweep scored twice — the second pass replays the
	// identical batch so every evaluation is a memoization hit, which is
	// what the sweep stage's cache annotations exist to show.
	base := profiler.Condition{
		Utilization: 0.75, ArrivalKind: dist.KindExponential,
		RefillTime: 200, BudgetPct: 0.25,
	}
	var grid []core.Scenario
	for _, to := range []float64{20, 60, 120} {
		cond := base
		cond.Timeout = to
		grid = append(grid, core.Scenario{Cond: cond})
	}
	for pass := 0; pass < 2; pass++ {
		if _, err := h.PredictAllCtx(ctx, ds, grid); err != nil {
			return fmt.Errorf("pipeline: sweep pass %d: %w", pass, err)
		}
	}
	logg.Infof("pipeline: swept %d policies twice (second pass memoized)", len(grid))

	// Stage 4: anneal the timeout space for the best expected RT.
	obj := func(timeouts []float64) ([]float64, error) {
		scs := make([]core.Scenario, len(timeouts))
		for i, to := range timeouts {
			cond := base
			cond.Timeout = to
			scs[i] = core.Scenario{Cond: cond}
		}
		preds, err := h.PredictAllCtx(ctx, ds, scs)
		if err != nil {
			return nil, err
		}
		rts := make([]float64, len(preds))
		for i, pr := range preds {
			rts[i] = pr.MeanRT
		}
		return rts, nil
	}
	res, err := explore.MinimizeTimeoutBatchCtx(ctx, obj, 0, 300,
		explore.BatchOptions{Options: explore.Options{MaxIter: p.iters, Seed: p.seed}})
	if err != nil {
		return fmt.Errorf("pipeline: explore: %w", err)
	}
	logg.Infof("pipeline: explored timeouts, best %.1f s (mean RT %.2f s)", res.Point[0], res.RT)

	// Stage 5: online re-selection under drifting load, every decision
	// ledgered.
	ledger := online.NewDecisionLedger()
	fc, err := online.NewFallbackController(online.FallbackConfig{
		Primary:  h,
		Fallback: &core.NoML{SimQueries: p.simQueries, SimReps: 1, Seed: p.seed + 17},
		Dataset:  ds, Base: base,
		MaxTimeout: 300, AnnealIter: 12, Seed: p.seed,
		Ledger: ledger,
	})
	if err != nil {
		return fmt.Errorf("pipeline: online: %w", err)
	}
	baseRate := base.Utilization * ds.ServiceRate
	lastTO := 0.0
	for i := 0; i < p.steps; i++ {
		// Alternate ±25% around the base rate: every step drifts past
		// the retune threshold, so each decision re-runs the search.
		drift := 0.25
		if i%2 == 1 {
			drift = -0.25
		}
		rate := baseRate * (1 + drift)
		to, err := fc.TimeoutCtx(ctx, rate)
		if err != nil {
			return fmt.Errorf("pipeline: online step %d: %w", i, err)
		}
		lastTO = to
	}
	fmt.Printf("pipeline: best explored timeout %.1f s, final online timeout %.1f s over %d decisions (tier %s)\n",
		res.Point[0], lastTO, ledger.Len(), fc.Level())

	if p.decisionsOut != "" {
		if err := trace.SaveDecisions(p.decisionsOut, ledger.Records()); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		logg.Infof("pipeline: %d decision record(s) written to %s", ledger.Len(), p.decisionsOut)
	}
	return nil
}
