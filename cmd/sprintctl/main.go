// Command sprintctl is the operator's CLI for model-driven computational
// sprinting:
//
//	sprintctl workloads
//	    list the Table 1(C) workload catalog and mechanisms
//	sprintctl profile -workload Jacobi -mech DVFS -samples 80 -out ds.json
//	    profile a workload over the cluster-sampling grid
//	sprintctl predict -dataset ds.json -util 0.75 -timeout 60 -budget 0.2 -refill 200 [-model hybrid|noml]
//	    predict response time for one sprinting policy
//	sprintctl explore -dataset ds.json -util 0.8 -budget 0.3 -refill 600
//	    anneal the timeout space for the lowest expected response time
//	sprintctl disciplines -rate 0.016 -service 'lognormal(62.5,0.3)' -servers 2 -dispatch jsq
//	    compare queueing disciplines (fifo, lifo, srpt, serpt, ps) and
//	    multi-queue dispatchers head to head on one simulated workload
//	sprintctl tiers -service 'exponential(0.016)' -util-lo 0.3 -util-hi 0.9
//	    walk an operating range through the staged RT estimator and
//	    show which ladder tier answers where, at what estimated error
//	sprintctl colocate -combo 1
//	    plan burstable-instance colocation for a Figure 13 combo
//	sprintctl chaos -scenario model-divergence [-out timeline.json]
//	    replay a fault-injection scenario against the degradation
//	    controller and verify its scripted expectations (-chaos <name>
//	    is a global shorthand; 'chaos -list' enumerates scenarios)
//	sprintctl monitor [-chaos <name>|all] [-addr host:port [-watch 2s]]
//	    kubenow-style health view: report only what's broken, stay
//	    quiet when healthy
//	sprintctl pipeline [-decisions-out decisions.jsonl]
//	    run profile → calibrate → sweep → explore → online end to end
//	    at a small scale (pair with -trace for a full span tree)
//	sprintctl sprintd -addr :8600 -tenants search,ads -snapshot state.json
//	    run the multi-tenant policy-serving daemon: admission control,
//	    bulkhead isolation, periodic crash-safety snapshots, graceful
//	    SIGTERM drain (monitor it with 'sprintctl monitor -addr ...')
//	sprintctl decide -addr localhost:8600 -tenant search -rate 0.6
//	    ask a running sprintd for one decision, retrying through sheds
//	sprintctl load -addr localhost:8600 -workers 4 -duration 5s
//	    drive closed-loop load at a sprintd (add -drop/-err for chaos)
//
// Profiling writes a JSON dataset; predict/explore train the hybrid model
// from it on the fly.
//
// Global flags (before the command):
//
//	-debug-addr host:port   serve /metrics (Prometheus text),
//	                        /debug/health, /debug/vars (expvar) and
//	                        /debug/pprof for live introspection of long
//	                        runs
//	-trace path             record span tracing for the whole run and
//	                        write a Chrome trace-event JSON on exit
//	-quiet                  suppress progress narration (errors only)
//	-v                      verbose narration
//	-version                print version and exit
//
// Results print to stdout; progress narration goes to stderr, so output
// composes with shell pipelines.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime/debug"
	"strings"
	"time"

	"mdsprint/internal/calib"
	"mdsprint/internal/colocate"
	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/experiments"
	"mdsprint/internal/explore"
	"mdsprint/internal/forest"
	"mdsprint/internal/lifecycle"
	"mdsprint/internal/mech"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
	"mdsprint/internal/sprint"
	"mdsprint/internal/trace"
	"mdsprint/internal/workload"
)

// version identifies sprintctl builds; the VCS revision is appended when
// the build has one embedded.
const version = "0.2.0"

// logg narrates progress on stderr. Commands write results to stdout
// only. The nil default (used by tests calling cmd* directly) discards
// narration.
var logg *obs.Logger

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main, factored for tests: it parses global flags, dispatches the
// subcommand and returns the process exit code.
func run(args []string) int {
	globals := flag.NewFlagSet("sprintctl", flag.ExitOnError)
	debugAddr := globals.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	quiet := globals.Bool("quiet", false, "suppress progress output (errors only)")
	verbose := globals.Bool("v", false, "verbose progress output")
	showVersion := globals.Bool("version", false, "print version and exit")
	chaosName := globals.String("chaos", "", "replay the named chaos scenario and exit ('all' runs every builtin); shorthand for the chaos command")
	tracePath := globals.String("trace", "", "record span tracing for the whole run and write a Chrome trace-event JSON (chrome://tracing, Perfetto) to this path on exit")
	globals.Usage = usage
	if err := globals.Parse(args); err != nil {
		return 2
	}

	if *showVersion {
		fmt.Println(versionString())
		return 0
	}
	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	if *quiet {
		level = obs.LevelError
	}
	logg = obs.NewLogger(os.Stderr, level)

	if *tracePath != "" {
		obs.SetActiveSpanTracer(obs.NewSpanTracer(obs.SpanOptions{}))
		defer func() {
			t := obs.SetActiveSpanTracer(nil)
			spans := t.Drain()
			if err := trace.SaveChromeTrace(*tracePath, spans); err != nil {
				logg.Errorf("trace: %v", err)
			} else {
				logg.Infof("trace: %d span(s) written to %s", len(spans), *tracePath)
			}
		}()
	}

	if *debugAddr != "" {
		srv, err := startDebugServer(*debugAddr)
		if err != nil {
			logg.Errorf("sprintctl: %v", err)
			return 1
		}
		// Drain in-flight scrapes before exiting, briefly: a scraper
		// mid-request on SIGINT gets a complete response, a hung one
		// cannot hold the process hostage.
		defer func() {
			dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(dctx); err != nil {
				logg.Errorf("debug server shutdown: %v", err)
			}
		}()
	}

	// A clean SIGINT/SIGTERM shutdown: long-running commands watch this
	// context and flush whatever metrics and trace output they have
	// accumulated before exiting (see internal/lifecycle).
	ctx, stop := lifecycle.SignalContext(context.Background())
	defer stop()

	if *chaosName != "" {
		chaosArgs := []string{"-scenario", *chaosName}
		if *chaosName == "all" {
			chaosArgs = []string{"-all"}
		}
		if err := cmdChaos(ctx, chaosArgs); err != nil {
			fmt.Fprintf(os.Stderr, "sprintctl: %v\n", err)
			return 1
		}
		return 0
	}

	rest := globals.Args()
	if len(rest) == 0 {
		usage()
		return 2
	}
	var err error
	switch rest[0] {
	case "workloads":
		err = cmdWorkloads()
	case "profile":
		err = cmdProfile(rest[1:])
	case "predict":
		err = cmdPredict(rest[1:])
	case "explore":
		err = cmdExplore(rest[1:])
	case "colocate":
		err = cmdColocate(rest[1:])
	case "disciplines":
		err = cmdDisciplines(rest[1:])
	case "tiers":
		err = cmdTiers(rest[1:])
	case "chaos":
		err = cmdChaos(ctx, rest[1:])
	case "monitor":
		err = cmdMonitor(ctx, rest[1:])
	case "pipeline":
		err = cmdPipeline(ctx, rest[1:])
	case "sprintd":
		err = cmdSprintd(ctx, rest[1:])
	case "decide":
		err = cmdDecide(ctx, rest[1:])
	case "load":
		err = cmdLoad(ctx, rest[1:])
	case "version":
		fmt.Println(versionString())
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sprintctl: unknown command %q\n", rest[0])
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sprintctl: %v\n", err)
		return 1
	}
	return 0
}

// versionString renders the version plus the embedded VCS revision, when
// the binary was built from a checkout.
func versionString() string {
	v := "sprintctl " + version
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				v += " (" + s.Value[:12] + ")"
			}
		}
	}
	return v
}

// startDebugServer mounts the observability endpoints on addr and serves
// them in the background for the life of the process. Listening happens
// synchronously so port conflicts fail fast.
func startDebugServer(addr string) (*obs.DebugServer, error) {
	obs.PublishDefault()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug server: %w", err)
	}
	logg.Infof("debug endpoints on http://%s/metrics, .../debug/health, .../debug/pprof/", ln.Addr())
	return obs.NewDebugServer(ln, obs.DebugMux(obs.Default())), nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sprintctl [-debug-addr host:port] [-quiet|-v] <workloads|profile|predict|explore|disciplines|tiers|colocate|chaos|monitor|pipeline|sprintd|decide|load> [flags]")
	fmt.Fprintln(os.Stderr, "       sprintctl -chaos <scenario|all>")
	fmt.Fprintln(os.Stderr, "       sprintctl -version")
	fmt.Fprintln(os.Stderr, "run 'sprintctl <command> -h' for command flags")
}

func cmdWorkloads() error {
	fmt.Println("workloads (Table 1C, sustained/burst qph on DVFS):")
	for _, c := range workload.Catalog() {
		fmt.Printf("  %-12s %4.0f / %4.0f  (phases: %s)\n", c.Name, c.SustainedQPH, c.BurstQPH, c.Phases.Desc)
	}
	fmt.Println("mechanisms: DVFS, CoreScale, EC2DVFS, Throttle<pct> (e.g. Throttle20)")
	return nil
}

// resolveMechanism parses a mechanism name, including ThrottleNN.
func resolveMechanism(name string) (mech.Mechanism, error) {
	if strings.HasPrefix(name, "Throttle") {
		var pctVal float64
		if _, err := fmt.Sscanf(name, "Throttle%f", &pctVal); err != nil {
			return nil, fmt.Errorf("bad throttle mechanism %q (want e.g. Throttle20)", name)
		}
		return mech.NewThrottle(pctVal / 100), nil
	}
	return mech.ByName(name)
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	workloadName := fs.String("workload", "Jacobi", "workload class or MixI/MixII")
	mechName := fs.String("mech", "DVFS", "sprinting mechanism")
	samples := fs.Int("samples", 80, "cluster-sampling conditions to profile")
	queries := fs.Int("queries", 1500, "queries per profiling run")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "dataset.json", "output dataset path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix, err := resolveMix(*workloadName)
	if err != nil {
		return err
	}
	m, err := resolveMechanism(*mechName)
	if err != nil {
		return err
	}
	p := &profiler.Profiler{
		Mix: mix, Mechanism: m,
		QueriesPerRun: *queries, Replications: 2, Seed: *seed,
	}
	conds := profiler.PaperGrid().Sample(*samples, *seed+3)
	logg.Infof("profiling %s on %s over %d conditions...", mix.Name, m.Name(), len(conds))
	ds := p.Profile(conds)
	if err := trace.SaveDataset(*out, ds); err != nil {
		return err
	}
	fmt.Printf("service rate: %.2f qph   marginal sprint rate: %.2f qph (speedup %.2fx)\n",
		sprint.ToQPH(ds.ServiceRate), sprint.ToQPH(ds.MarginalRate), ds.MarginalSpeedup())
	fmt.Printf("simulated profiling time: %.1f hours\n", ds.ProfilingSeconds/3600)
	fmt.Printf("dataset written to %s\n", *out)
	return nil
}

func resolveMix(name string) (workload.Mix, error) {
	switch name {
	case "MixI":
		return workload.MixI(), nil
	case "MixII":
		return workload.MixII(), nil
	default:
		c, err := workload.ByName(name)
		if err != nil {
			return workload.Mix{}, err
		}
		return workload.SingleClass(c), nil
	}
}

// trainHybrid trains the hybrid model on every observation of a dataset.
func trainHybrid(ds *profiler.Dataset, seed uint64) (*core.Hybrid, error) {
	return core.TrainHybrid(
		[]core.TrainingSet{{Dataset: ds, Observations: ds.Observations}},
		core.HybridOptions{
			Forest:     forest.Config{Trees: 10, FeatureFrac: 0.9, Seed: seed + 7},
			Calib:      calib.Options{NumQueries: 2500, Replications: 3, Tolerance: 0.025, Seed: seed + 101},
			SimQueries: 3000, SimReps: 2, Seed: seed + 13,
		},
	)
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	dsPath := fs.String("dataset", "dataset.json", "profiled dataset (from sprintctl profile)")
	util := fs.Float64("util", 0.75, "arrival rate as a fraction of service rate")
	arrival := fs.String("arrival", "exponential", "arrival distribution: exponential, pareto, deterministic")
	timeout := fs.Float64("timeout", 60, "sprint timeout in seconds (negative disables)")
	budget := fs.Float64("budget", 0.2, "sprint budget as a fraction of capacity per refill window")
	refill := fs.Float64("refill", 200, "budget refill window in seconds")
	modelName := fs.String("model", "hybrid", "model: hybrid or noml")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := trace.LoadDataset(*dsPath)
	if err != nil {
		return err
	}
	var model core.Model
	switch *modelName {
	case "hybrid":
		logg.Infof("training hybrid model (calibrating effective sprint rates)...")
		model, err = trainHybrid(ds, *seed)
		if err != nil {
			return err
		}
	case "noml":
		model = &core.NoML{SimQueries: 3000, SimReps: 2, Seed: *seed}
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	sc := core.Scenario{Cond: profiler.Condition{
		Utilization: *util,
		ArrivalKind: dist.Kind(*arrival),
		Timeout:     *timeout,
		RefillTime:  *refill,
		BudgetPct:   *budget,
	}}
	pred, err := model.Predict(ds, sc)
	if err != nil {
		return err
	}
	fmt.Printf("%s prediction for %s:\n", model.Name(), sc.Cond)
	fmt.Printf("  mean RT %.1f s   p95 %.1f s   p99 %.1f s\n", pred.MeanRT, pred.P95RT, pred.P99RT)
	if pred.SprintRate > 0 {
		fmt.Printf("  sprint rate used: %.2f qph (marginal %.2f qph)\n",
			sprint.ToQPH(pred.SprintRate), sprint.ToQPH(ds.MarginalRate))
	}
	return nil
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	dsPath := fs.String("dataset", "dataset.json", "profiled dataset")
	util := fs.Float64("util", 0.8, "arrival rate as a fraction of service rate")
	budget := fs.Float64("budget", 0.3, "sprint budget fraction")
	refill := fs.Float64("refill", 600, "refill window seconds")
	maxTimeout := fs.Float64("max-timeout", 300, "largest timeout to consider")
	iters := fs.Int("iters", 200, "annealing iterations")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := trace.LoadDataset(*dsPath)
	if err != nil {
		return err
	}
	logg.Infof("training hybrid model...")
	h, err := trainHybrid(ds, *seed)
	if err != nil {
		return err
	}
	obj := func(to float64) float64 {
		pred, err := h.Predict(ds, core.Scenario{Cond: profiler.Condition{
			Utilization: *util, ArrivalKind: dist.KindExponential,
			Timeout: to, RefillTime: *refill, BudgetPct: *budget,
		}})
		if err != nil {
			panic(err)
		}
		return pred.MeanRT
	}
	logg.Infof("annealing timeouts in [0, %.0f] (%d iterations)...", *maxTimeout, *iters)
	res, err := explore.MinimizeTimeout(obj, 0, *maxTimeout, explore.Options{MaxIter: *iters, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("best timeout: %.1f s   expected mean RT: %.1f s   (%d model evaluations)\n",
		res.Point[0], res.RT, res.Evaluations)
	return nil
}

func cmdColocate(args []string) error {
	fs := flag.NewFlagSet("colocate", flag.ExitOnError)
	comboIdx := fs.Int("combo", 1, "Figure 13 combo: 1, 2 or 3")
	simQueries := fs.Int("queries", 4000, "simulated queries per SLO check")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	combos := experiments.Combos()
	if *comboIdx < 1 || *comboIdx > len(combos) {
		return fmt.Errorf("combo must be 1..%d", len(combos))
	}
	combo := combos[*comboIdx-1]
	est := colocate.SimEstimator{SimQueries: *simQueries, SimReps: 2, Seed: *seed}
	logg.Infof("planning %s under a %.0f%% response-time SLO...", combo.Name, (colocate.SLOFactor-1)*100)
	for _, planner := range []struct {
		name string
		p    colocate.Planner
	}{
		{"aws fixed policy", colocate.AWSPlanner(est)},
		{"model-driven budgeting", colocate.BudgetPlanner(est, colocate.AWSRefill)},
		{"model-driven sprinting", colocate.SprintPlanner(est, 60, *seed)},
	} {
		assigns, n := colocate.FillNode(combo.Workloads, planner.p)
		fmt.Printf("%s: hosts %d/%d on one node ($%.3f/hr)\n",
			planner.name, n, len(combo.Workloads), colocate.PricePerHour*float64(n))
		for _, a := range assigns {
			fmt.Printf("    %-12s util %.0f%%  %v\n", a.Workload.Name, a.Workload.Utilization*100, a.Plan)
		}
		fmt.Println()
	}
	return nil
}
