package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdsprint/internal/obs"
	"mdsprint/internal/server"
)

// startSprintd boots the daemon via the real cmdSprintd on an ephemeral
// port and returns its address plus a shutdown func that triggers the
// graceful drain path and waits for exit.
func startSprintd(t *testing.T, extraArgs ...string) (addr string, shutdown func()) {
	t.Helper()
	if logg == nil {
		logg = obs.NewLogger(os.Stderr, obs.LevelError)
	}
	ctx, cancel := context.WithCancel(context.Background())
	bound := make(chan string, 1)
	sprintdBound = func(a string) { bound <- a }
	t.Cleanup(func() { sprintdBound = nil })
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { done <- cmdSprintd(ctx, args) }()
	select {
	case addr = <-bound:
	case err := <-done:
		t.Fatalf("sprintd exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("sprintd never bound its listener")
	}
	var once bool
	return addr, func() {
		if once {
			return
		}
		once = true
		cancel() // stands in for SIGTERM: same context, same drain path
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("sprintd drain: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("sprintd did not drain")
		}
	}
}

// TestSprintdServeDecideLoadDrain runs the full CLI story: boot the
// daemon, take one decision through cmdDecide, drive cmdLoad through
// the chaos transport, then drain on the signal context and confirm
// the final snapshot landed.
func TestSprintdServeDecideLoadDrain(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.json")
	addr, shutdown := startSprintd(t,
		"-tenants", "search,ads",
		"-snapshot", snap,
		"-snapshot-every", "50ms",
	)
	defer shutdown()

	if err := cmdDecide(context.Background(), []string{
		"-addr", addr, "-tenant", "search", "-rate", "0.6", "-observe", "8",
	}); err != nil {
		t.Fatalf("decide against live sprintd: %v", err)
	}
	if err := cmdLoad(context.Background(), []string{
		"-addr", addr, "-tenants", "search,ads", "-workers", "2",
		"-duration", "300ms", "-drop", "0.1", "-err", "0.1", "-seed", "5",
	}); err != nil {
		t.Fatalf("load against live sprintd: %v", err)
	}

	shutdown()
	got, ok, err := server.ReadSnapshot(snap)
	if err != nil || !ok {
		t.Fatalf("snapshot after drain: ok=%v err=%v", ok, err)
	}
	for _, name := range []string{"search", "ads"} {
		ts, ok := got.Tenants[name]
		if !ok {
			t.Fatalf("snapshot is missing tenant %s", name)
		}
		if ts.Ledger.Seq == 0 {
			t.Fatalf("tenant %s drained with an empty ledger; traffic never landed", name)
		}
	}
}

// TestSprintdRejectsBadConfig checks config-file validation fails fast.
func TestSprintdRejectsBadConfig(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdSprintd(context.Background(), []string{"-config", bad}); err == nil {
		t.Fatal("corrupt config accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdSprintd(context.Background(), []string{"-config", empty}); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	if _, err := loadTenantConfigs("", " , "); err == nil {
		t.Fatal("blank -tenants accepted")
	}
}

// TestMonitorAgainstLiveSprintd is the golden test for the remote
// health view against a live in-process daemon: quiet single line
// while healthy, then — after a scripted panic demotes one tenant —
// exactly the tenant-prefixed problem report.
func TestMonitorAgainstLiveSprintd(t *testing.T) {
	addr, shutdown := startSprintd(t, "-tenants", "alpha,bravo")
	defer shutdown()
	ctx := context.Background()

	var out strings.Builder
	if err := monitorRemote(ctx, &out, addr, 0, 0); err != nil {
		t.Fatalf("monitor against healthy sprintd: %v", err)
	}
	if want := addr + ": healthy\n"; out.String() != want {
		t.Fatalf("healthy monitor output %q, want %q", out.String(), want)
	}

	// Script a panic on bravo's primary model and take one decision:
	// the bulkhead converts the panic into a demotion, which the next
	// scrape must report — and only for bravo.
	c := &server.Client{BaseURL: "http://" + addr}
	if err := c.Fault(ctx, server.FaultRequest{Tenant: "bravo", Mode: "panic", Value: 1}); err != nil {
		t.Fatalf("scripting bravo: %v", err)
	}
	if _, err := c.Decide(ctx, "bravo", 0.5); err != nil {
		t.Fatalf("decide through panic: %v", err)
	}
	if err := c.Fault(ctx, server.FaultRequest{Tenant: "bravo", Mode: "clear"}); err != nil {
		t.Fatalf("clearing bravo: %v", err)
	}

	out.Reset()
	if err := monitorRemote(ctx, &out, addr, 0, 0); err != nil {
		t.Fatalf("monitor against degraded sprintd: %v", err)
	}
	want := fmt.Sprintf("%s: 2 problem(s)\n", addr) +
		fmt.Sprintf("  %-8s %-18s %s\n", "CRITICAL", "bravo/tier-degraded",
			"fallback chain serving from the noml tier (level 1)") +
		fmt.Sprintf("  %-8s %-18s %s\n", "WARNING", "bravo/demotions",
			"1 fallback demotion(s), 0 promotion(s)")
	if out.String() != want {
		t.Fatalf("degraded monitor output:\n%q\nwant:\n%q", out.String(), want)
	}

	// -watch with -count polls exactly count times.
	out.Reset()
	if err := monitorRemote(ctx, &out, addr, time.Millisecond, 3); err != nil {
		t.Fatalf("monitor -watch: %v", err)
	}
	if got := strings.Count(out.String(), "problem(s)"); got != 3 {
		t.Fatalf("-watch -count 3 produced %d reports, want 3", got)
	}
}
