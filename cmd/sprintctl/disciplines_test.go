package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ferr
}

func TestCmdDisciplinesTable(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdDisciplines([]string{
			"-rate", "0.016", "-service", "lognormal(62.5,0.3)",
			"-queries", "800", "-reps", "2", "-seed", "7",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fifo", "lifo", "srpt", "serpt(0.3)", "ps", "mean RT", "preempts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// SRPT must actually preempt under this workload: its row must not
	// report zero preemptions.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "srpt ") {
			fields := strings.Fields(line)
			if fields[len(fields)-1] == "0" {
				t.Fatalf("srpt row reports no preemptions: %q", line)
			}
		}
	}
}

func TestCmdDisciplinesMultiQueue(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdDisciplines([]string{
			"-rate", "0.03", "-service", "lognormal(62.5,0.3)",
			"-servers", "2", "-dispatch", "rnd(2)",
			"-disciplines", "fifo,srpt",
			"-queries", "800", "-reps", "2", "-seed", "7",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rnd(2)") || !strings.Contains(out, "2 queues") {
		t.Fatalf("multi-queue note missing:\n%s", out)
	}
}

func TestCmdDisciplinesErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-service", "nope(1)"},
		{"-arrival", "nope(1)"},
		{"-disciplines", "bogus"},
		{"-servers", "2", "-dispatch", "bogus"},
	} {
		if _, err := captureStdout(t, func() error { return cmdDisciplines(args) }); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
