package main

import (
	"strings"
	"testing"
)

func TestCmdTiersTable(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return cmdTiers([]string{
			"-service", "exponential(0.016)",
			"-util-lo", "0.3", "-util-hi", "0.9", "-points", "4",
			"-queries", "800", "-reps", "2", "-seed", "7",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"decision tiers", "tier", "err est", "escalations", "tiers served", "cheap rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The low-utilization M/M/1 points must ride the analytic tier; the
	// 0.9 point escalates (its error model exceeds the default bound).
	if !strings.Contains(out, "analytic") {
		t.Fatalf("no analytic answers in:\n%s", out)
	}
	if !strings.Contains(out, "analytic-bound") {
		t.Fatalf("high-utilization point did not escalate past the analytic tier:\n%s", out)
	}
}

func TestCmdTiersRejectsBadSpec(t *testing.T) {
	if err := cmdTiers([]string{"-spec", "bound=0"}); err == nil {
		t.Fatal("bound=0 accepted")
	}
	if err := cmdTiers([]string{"-points", "0"}); err == nil {
		t.Fatal("points=0 accepted")
	}
}
