package main

import (
	"path/filepath"
	"testing"

	"mdsprint/internal/trace"
)

func TestResolveMechanism(t *testing.T) {
	for _, name := range []string{"DVFS", "CoreScale", "EC2DVFS"} {
		m, err := resolveMechanism(name)
		if err != nil || m.Name() != name {
			t.Fatalf("resolveMechanism(%s) = %v, %v", name, m, err)
		}
	}
	m, err := resolveMechanism("Throttle20")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "Throttle20%" {
		t.Fatalf("throttle name %q", m.Name())
	}
	if _, err := resolveMechanism("ThrottleXY"); err == nil {
		t.Fatal("bad throttle accepted")
	}
	if _, err := resolveMechanism("Nitro"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestResolveMix(t *testing.T) {
	for name, components := range map[string]int{
		"Jacobi": 1, "MixI": 2, "MixII": 4,
	} {
		mix, err := resolveMix(name)
		if err != nil {
			t.Fatalf("resolveMix(%s): %v", name, err)
		}
		if len(mix.Components) != components {
			t.Fatalf("%s has %d components, want %d", name, len(mix.Components), components)
		}
	}
	if _, err := resolveMix("NoSuch"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestProfilePredictRoundTrip(t *testing.T) {
	// End-to-end through the CLI's internals: profile a tiny dataset to
	// disk, reload it, train the hybrid model, predict.
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.json")
	if err := cmdProfile([]string{
		"-workload", "Jacobi", "-mech", "DVFS",
		"-samples", "10", "-queries", "300", "-out", path,
	}); err != nil {
		t.Fatal(err)
	}
	ds, err := trace.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.MixName != "Jacobi" || len(ds.Observations) != 10 {
		t.Fatalf("dataset %s with %d observations", ds.MixName, len(ds.Observations))
	}
	if err := cmdPredict([]string{
		"-dataset", path, "-util", "0.6", "-timeout", "60",
		"-budget", "0.2", "-refill", "200", "-model", "noml",
	}); err != nil {
		t.Fatal(err)
	}
}
