package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mdsprint/internal/fault"
	"mdsprint/internal/lifecycle"
	"mdsprint/internal/obs"
	"mdsprint/internal/online"
	"mdsprint/internal/trace"
)

// chaosReport is one scenario's replay as written to -out: the scripted
// expectations, the decision timeline and the determinism fingerprint.
type chaosReport struct {
	Scenario    string             `json:"scenario"`
	Desc        string             `json:"desc"`
	Seed        uint64             `json:"seed"`
	Fingerprint string             `json:"fingerprint"`
	MaxLevel    string             `json:"max_level"`
	EndLevel    string             `json:"end_level"`
	Demotions   int                `json:"demotions"`
	Promotions  int                `json:"promotions"`
	Violations  []string           `json:"violations,omitempty"`
	Steps       []online.ChaosStep `json:"steps"`
}

// cmdChaos replays fault-injection scenarios against the degradation
// controller and verifies each scenario's scripted expectations. A
// canceled ctx (SIGINT/SIGTERM) stops between scenarios; whatever
// completed is still flushed to -out and -metrics-out.
func cmdChaos(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	name := fs.String("scenario", "", "scenario to replay (see -list)")
	all := fs.Bool("all", false, "replay every built-in scenario")
	list := fs.Bool("list", false, "list built-in scenarios and exit")
	seed := fs.Uint64("seed", 0, "override the scenario's seed (0 keeps the scripted one)")
	out := fs.String("out", "", "write the replay timelines as JSON to this path")
	metricsOut := fs.String("metrics-out", "", "write a Prometheus-text metrics snapshot to this path")
	decisionsOut := fs.String("decisions-out", "", "write every replay's decision-provenance ledger as JSONL to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Println("chaos scenarios:")
		for _, sc := range fault.Scenarios() {
			fmt.Printf("  %-18s %3d steps  %s\n", sc.Name, sc.Steps(), sc.Desc)
		}
		return nil
	}

	var scenarios []fault.Scenario
	switch {
	case *all && *name != "":
		return fmt.Errorf("chaos: -all and -scenario are mutually exclusive")
	case *all:
		scenarios = fault.Scenarios()
	case *name != "":
		sc, err := fault.ScenarioByName(*name)
		if err != nil {
			return err
		}
		scenarios = []fault.Scenario{sc}
	default:
		return fmt.Errorf("chaos: need -scenario <name>, -all or -list")
	}

	// Flush partial results even on an interrupt: the FlushSet runs its
	// steps exactly once whether the loop finishes or the signal context
	// breaks it.
	var reports []chaosReport
	ledger := online.NewDecisionLedger()
	flush := &lifecycle.FlushSet{Errorf: func(format string, args ...any) { logg.Errorf(format, args...) }}
	flush.Add("decisions", func() error {
		if *decisionsOut == "" || ledger.Len() == 0 {
			return nil
		}
		if err := trace.SaveDecisions(*decisionsOut, ledger.Records()); err != nil {
			return fmt.Errorf("writing %s: %w", *decisionsOut, err)
		}
		logg.Infof("chaos: %d decision record(s) written to %s", ledger.Len(), *decisionsOut)
		return nil
	})
	flush.Add("reports", func() error {
		if *out == "" || len(reports) == 0 {
			return nil
		}
		if err := writeChaosReports(*out, reports); err != nil {
			return fmt.Errorf("writing %s: %w", *out, err)
		}
		logg.Infof("chaos: %d replay timeline(s) written to %s", len(reports), *out)
		return nil
	})
	flush.Add("metrics", func() error {
		if *metricsOut == "" {
			return nil
		}
		if err := writeMetricsSnapshot(*metricsOut); err != nil {
			return fmt.Errorf("writing %s: %w", *metricsOut, err)
		}
		logg.Infof("chaos: metrics snapshot written to %s", *metricsOut)
		return nil
	})
	defer flush.Run()

	var failed []string
	for _, sc := range scenarios {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("chaos: interrupted after %d/%d scenario(s); partial results flushed: %w",
				len(reports), len(scenarios), err)
		}
		if *seed != 0 {
			sc.Seed = *seed
		}
		res, err := online.RunChaos(sc, online.ChaosOptions{Metrics: obs.Default(), Ledger: ledger})
		if err != nil {
			return fmt.Errorf("chaos: %s: %w", sc.Name, err)
		}
		viol := res.Violations(sc)
		reports = append(reports, chaosReport{
			Scenario:    sc.Name,
			Desc:        sc.Desc,
			Seed:        sc.Seed,
			Fingerprint: res.Fingerprint(),
			MaxLevel:    res.MaxLevel.String(),
			EndLevel:    res.EndLevel.String(),
			Demotions:   res.Demotions,
			Promotions:  res.Promotions,
			Violations:  viol,
			Steps:       res.Steps,
		})
		verdict := "ok"
		if len(viol) > 0 {
			verdict = "FAIL"
			failed = append(failed, sc.Name)
		}
		fmt.Printf("%-18s %4d steps  max %-7s end %-7s demotions %d promotions %d  fp %s  %s\n",
			sc.Name, len(res.Steps), res.MaxLevel, res.EndLevel, res.Demotions, res.Promotions,
			res.Fingerprint(), verdict)
		for _, v := range viol {
			fmt.Printf("    violation: %s\n", v)
		}
		logg.Debugf("chaos: %s timeline: %s", sc.Name, timelineSummary(res))
	}
	if len(failed) > 0 {
		return fmt.Errorf("chaos: %d scenario(s) violated expectations: %s",
			len(failed), strings.Join(failed, ", "))
	}
	return nil
}

// timelineSummary compresses a replay into a per-phase level trace for
// verbose narration.
func timelineSummary(res *online.ChaosResult) string {
	var sb strings.Builder
	lastPhase := ""
	for _, s := range res.Steps {
		if s.Phase != lastPhase {
			if lastPhase != "" {
				sb.WriteString(" | ")
			}
			sb.WriteString(s.Phase)
			sb.WriteString(":")
			lastPhase = s.Phase
		}
		sb.WriteString(" ")
		sb.WriteString(s.Level.String()[:1])
	}
	return sb.String()
}

// writeChaosReports persists the replay timelines as indented JSON.
func writeChaosReports(path string, reports []chaosReport) error {
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeMetricsSnapshot flushes the default registry (fault-injection and
// degradation counters included) as Prometheus text.
func writeMetricsSnapshot(path string) error {
	var sb strings.Builder
	if err := obs.Default().WritePrometheus(&sb); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
