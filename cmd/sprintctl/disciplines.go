package main

// The disciplines command: compare queueing disciplines (and multi-queue
// dispatchers) head to head on one simulated workload, without needing a
// profiled dataset — the operator's quick answer to "would SRPT or a
// two-queue fan-out help here?".

import (
	"flag"
	"fmt"
	"strings"

	"mdsprint/internal/dist"
	"mdsprint/internal/experiments"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/queuesim/dispatch"
	"mdsprint/internal/stats"
)

func cmdDisciplines(args []string) error {
	fs := flag.NewFlagSet("disciplines", flag.ExitOnError)
	arrival := fs.String("arrival", "", "interarrival-time dist spec (default: exponential at -rate)")
	rate := fs.Float64("rate", 0.016, "arrival rate in queries/second")
	service := fs.String("service", "lognormal(62.5,0.3)", "service-time dist spec at normal speed")
	sprintRate := fs.Float64("sprint-rate", 0, "sprinting service rate in queries/second (0 = 1.5x normal)")
	timeout := fs.Float64("timeout", 60, "sprint timeout in seconds (negative disables sprinting)")
	budget := fs.Float64("budget", 0.3, "sprint budget as a fraction of the refill window")
	refill := fs.Float64("refill", 600, "budget refill window in seconds")
	servers := fs.Int("servers", 1, "per-server queues to fan arrivals across")
	disciplines := fs.String("disciplines", "fifo,lifo,srpt,serpt(0.3),ps", "comma-separated discipline specs")
	dispatchSpec := fs.String("dispatch", "jsq", "dispatcher spec when -servers > 1: jsq, lwl, rr or rnd(d)")
	queries := fs.Int("queries", 4000, "simulated queries per replication")
	reps := fs.Int("reps", 3, "replications per discipline")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc, err := dist.ParseDist(*service)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	mu := 1 / svc.Mean()
	var arr dist.Dist
	if *arrival != "" {
		if arr, err = dist.ParseDist(*arrival); err != nil {
			return fmt.Errorf("arrival: %w", err)
		}
	}
	mue := *sprintRate
	//lint:ignore floateq 0 is the flag's literal unset default, not a computed value
	if mue == 0 {
		mue = 1.5 * mu
	}
	var dsp queuesim.Dispatcher
	if *servers > 1 {
		if dsp, err = dispatch.Parse(*dispatchSpec); err != nil {
			return err
		}
	}

	tbl := experiments.Table{
		Title:   fmt.Sprintf("disciplines — rate %.3g q/s, service %s, sprint %.3g q/s, timeout %.0fs", *rate, svc, mue, *timeout),
		Columns: []string{"discipline", "mean RT", "p95 RT", "p99 RT", "engages", "preempts"},
	}
	for _, spec := range strings.Split(*disciplines, ",") {
		d, err := queuesim.ParseDiscipline(strings.TrimSpace(spec))
		if err != nil {
			return err
		}
		p := queuesim.Params{
			ArrivalRate:   *rate,
			Arrival:       arr,
			Service:       svc,
			ServiceRate:   mu,
			SprintRate:    mue,
			Timeout:       *timeout,
			BudgetSeconds: *budget * *refill,
			RefillTime:    *refill,
			NumQueries:    *queries,
			Warmup:        *queries / 10,
			Discipline:    d,
			Servers:       *servers,
			Dispatch:      dsp,
			Seed:          *seed,
		}
		if d.Kind == queuesim.DiscPS {
			// PS runs without sprinting (no per-query timeout moment).
			p.Timeout = -1
			p.BudgetSeconds = 0
		}
		results, err := queuesim.RunReps(p, *reps)
		if err != nil {
			return err
		}
		var rts []float64
		var engages, preempts int
		for _, r := range results {
			rts = append(rts, r.RTs...)
			engages += r.Engages
			preempts += r.Preemptions
		}
		sum := stats.Summarize(rts)
		tbl.AddRow(d.String(),
			fmt.Sprintf("%.1fs", sum.Mean),
			fmt.Sprintf("%.1fs", sum.P95),
			fmt.Sprintf("%.1fs", sum.P99),
			fmt.Sprintf("%d", engages),
			fmt.Sprintf("%d", preempts))
	}
	if *servers > 1 {
		tbl.AddNote("arrivals fanned across %d queues by %s, sharing one sprint budget", *servers, dsp.Canon())
	}
	fmt.Print(tbl.String())
	return nil
}
