package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
	"mdsprint/internal/online"
)

// cmdMonitor is the kubenow-style health view: it reports only what is
// broken and stays quiet when everything is healthy.
//
//	sprintctl monitor                       health of this process's registry
//	sprintctl monitor -chaos search-outage  replay a scenario, report its damage
//	sprintctl monitor -chaos all            every built-in scenario
//	sprintctl monitor -addr host:port       scrape /debug/health from a live run
//	sprintctl monitor -addr ... -watch 2s   poll until interrupted (or -count)
func cmdMonitor(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	chaosName := fs.String("chaos", "", "replay the named chaos scenario into a fresh registry and report its health ('all' replays every builtin)")
	addr := fs.String("addr", "", "scrape /debug/health from a running sprintctl -debug-addr instead of local state")
	watch := fs.Duration("watch", 0, "with -addr: poll at this interval until interrupted")
	count := fs.Int("count", 0, "with -watch: stop after this many polls (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaosName != "" && *addr != "" {
		return fmt.Errorf("monitor: -chaos and -addr are mutually exclusive")
	}

	switch {
	case *chaosName != "":
		return monitorChaos(os.Stdout, *chaosName)
	case *addr != "":
		return monitorRemote(ctx, os.Stdout, *addr, *watch, *count)
	default:
		renderHealth(os.Stdout, "local", obs.EvaluateHealth(obs.Default(), obs.HealthThresholds{}))
		return nil
	}
}

// monitorChaos replays one scenario (or all of them) into fresh
// registries and reports each replay's health verdict.
func monitorChaos(w io.Writer, name string) error {
	var scenarios []fault.Scenario
	if name == "all" {
		scenarios = fault.Scenarios()
	} else {
		sc, err := fault.ScenarioByName(name)
		if err != nil {
			return err
		}
		scenarios = []fault.Scenario{sc}
	}
	for _, sc := range scenarios {
		reg := obs.NewRegistry()
		if _, err := online.RunChaos(sc, online.ChaosOptions{Metrics: reg}); err != nil {
			return fmt.Errorf("monitor: %s: %w", sc.Name, err)
		}
		renderHealth(w, sc.Name, obs.EvaluateHealth(reg, obs.HealthThresholds{}))
	}
	return nil
}

// monitorRemote scrapes /debug/health, once or on a -watch cadence.
func monitorRemote(ctx context.Context, w io.Writer, addr string, watch time.Duration, count int) error {
	scrape := func() error {
		h, err := scrapeHealth(ctx, addr)
		if err != nil {
			return err
		}
		renderHealth(w, addr, h)
		return nil
	}
	if watch <= 0 {
		return scrape()
	}
	tick := time.NewTicker(watch)
	defer tick.Stop()
	for polls := 0; ; {
		if err := scrape(); err != nil {
			return err
		}
		if polls++; count > 0 && polls >= count {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}

// scrapeHealth fetches and decodes one /debug/health document. Both 200
// and 503 are valid answers — 503 just means the verdict is critical.
func scrapeHealth(ctx context.Context, addr string) (obs.Health, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/debug/health"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return obs.Health{}, fmt.Errorf("monitor: %w", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return obs.Health{}, fmt.Errorf("monitor: %w", err)
	}
	defer func() {
		//lint:ignore errdrop response body close after a full decode
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return obs.Health{}, fmt.Errorf("monitor: %s returned %s", url, resp.Status)
	}
	var h obs.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return obs.Health{}, fmt.Errorf("monitor: decoding %s: %w", url, err)
	}
	return h, nil
}

// renderHealth prints one health verdict: a single quiet line when
// healthy, otherwise only the problems.
func renderHealth(w io.Writer, label string, h obs.Health) {
	if h.Healthy {
		fmt.Fprintf(w, "%s: healthy\n", label)
		return
	}
	fmt.Fprintf(w, "%s: %d problem(s)\n", label, len(h.Problems))
	for _, p := range h.Problems {
		fmt.Fprintf(w, "  %-8s %-18s %s\n", strings.ToUpper(p.Severity), p.Check, p.Detail)
	}
}
