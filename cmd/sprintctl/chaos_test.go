package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdsprint/internal/fault"
)

func TestCmdChaosAllWritesReports(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "chaos.json")
	mout := filepath.Join(dir, "chaos.prom")
	if err := cmdChaos(context.Background(), []string{"-all", "-out", out, "-metrics-out", mout}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var reports []chaosReport
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(fault.Scenarios()) {
		t.Fatalf("%d reports, want %d", len(reports), len(fault.Scenarios()))
	}
	for _, r := range reports {
		if len(r.Violations) > 0 {
			t.Errorf("%s violated expectations: %v", r.Scenario, r.Violations)
		}
		if len(r.Steps) == 0 || r.Fingerprint == "" {
			t.Errorf("%s report is missing its timeline or fingerprint", r.Scenario)
		}
	}
	prom, err := os.ReadFile(mout)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "mdsprint_fault_") {
		t.Error("metrics snapshot has no fault-injection counters")
	}
}

func TestCmdChaosRejectsBadFlags(t *testing.T) {
	if err := cmdChaos(context.Background(), []string{"-scenario", "nope"}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := cmdChaos(context.Background(), []string{"-all", "-scenario", "baseline"}); err == nil {
		t.Error("-all with -scenario accepted")
	}
	if err := cmdChaos(context.Background(), nil); err == nil {
		t.Error("no selection accepted")
	}
}

func TestCmdChaosInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := cmdChaos(ctx, []string{"-all"})
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want an interruption report", err)
	}
}
