package main

// The tiers command: walk a workload's operating range through the
// staged RT estimator and show which ladder tier answers where, at what
// estimated error, and what the ladder saves over always-simulating —
// the operator's quick answer to "is the cheap tier carrying my decide
// traffic, and where does it escalate?".

import (
	"flag"
	"fmt"
	"time"

	"mdsprint/internal/dist"
	"mdsprint/internal/experiments"
	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sweep"
	"mdsprint/internal/tier"
)

func cmdTiers(args []string) error {
	fs := flag.NewFlagSet("tiers", flag.ExitOnError)
	spec := fs.String("spec", "", "tier spec, e.g. 'bound=0.1,short(div=8,reps=4,ci=0.5)' (empty = defaults)")
	service := fs.String("service", "exponential(0.016)", "service-time dist spec at normal speed")
	utilLo := fs.Float64("util-lo", 0.3, "lowest utilization to query")
	utilHi := fs.Float64("util-hi", 0.9, "highest utilization to query")
	points := fs.Int("points", 7, "operating points between util-lo and util-hi")
	sprintRate := fs.Float64("sprint-rate", 0, "sprinting service rate in queries/second (0 disables sprinting)")
	timeout := fs.Float64("timeout", -1, "sprint timeout in seconds (negative disables sprinting)")
	budget := fs.Float64("budget", 0.3, "sprint budget as a fraction of the refill window")
	refill := fs.Float64("refill", 600, "budget refill window in seconds")
	queries := fs.Int("queries", 4000, "simulated queries per replication (ground-truth volume)")
	reps := fs.Int("reps", 2, "full-tier replications")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tspec, err := tier.ParseTierSpec(*spec)
	if err != nil {
		return err
	}
	svc, err := dist.ParseDist(*service)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	mu := 1 / svc.Mean()
	if *points < 1 {
		return fmt.Errorf("tiers: -points %d must be at least 1", *points)
	}

	est, err := tier.New(tspec, tier.Options{
		Engine:  sweep.New(sweep.Options{Metrics: obs.NewRegistry()}),
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return err
	}

	tbl := experiments.Table{
		Title:   fmt.Sprintf("decision tiers — service %s (mu %.3g q/s), bound %.3g", svc, mu, est.Spec().Bound),
		Columns: []string{"util", "tier", "mean RT", "err est", "latency", "escalations"},
	}
	for i := 0; i < *points; i++ {
		frac := 0.0
		if *points > 1 {
			frac = float64(i) / float64(*points-1)
		}
		util := *utilLo + (*utilHi-*utilLo)*frac
		p := queuesim.Params{
			ArrivalRate: util * mu,
			Service:     svc,
			ServiceRate: mu,
			SprintRate:  *sprintRate,
			Timeout:     *timeout,
			NumQueries:  *queries,
			Warmup:      *queries / 10,
			Seed:        *seed,
		}
		if *sprintRate > 0 && *timeout >= 0 {
			p.BudgetSeconds = *budget * *refill
			p.RefillTime = *refill
		} else {
			p.Timeout = -1
		}
		start := time.Now()
		pred, dec, err := est.Estimate(sweep.Task{Params: p, Reps: *reps})
		if err != nil {
			return err
		}
		lat := time.Since(start)
		errEst := "exact"
		if dec.ErrEstimate > 0 {
			errEst = fmt.Sprintf("±%.1f%%", 100*dec.ErrEstimate)
		}
		tbl.AddRow(
			fmt.Sprintf("%.2f", util),
			dec.Tier.String(),
			fmt.Sprintf("%.2fs", pred.MeanRT),
			errEst,
			lat.Round(time.Microsecond).String(),
			dec.EscalationString(),
		)
	}
	s := est.Stats()
	tbl.AddNote("tiers served: analytic %d, cache %d, short %d, full %d (cheap rate %.0f%%)",
		s.Analytic, s.Cache, s.Short, s.Full, 100*s.CheapRate())
	tbl.AddNote("escalation reasons: gate %d, bound %d, cache-miss %d, wide-ci %d",
		s.AnalyticGates, s.AnalyticBounds, s.CacheMisses, s.WideCIs)
	fmt.Print(tbl.String())
	return nil
}
