// Command sprintlint runs this repository's project-specific static
// analyzers over every package in the module and reports file:line
// diagnostics. It is part of the tier-1 merge gate (make lint).
//
//	sprintlint             lint the module containing the working directory
//	sprintlint -C dir      lint the module containing dir
//	sprintlint -json       machine-readable diagnostics (for CI annotation)
//	sprintlint -only a,b   run only the named analyzers
//	sprintlint -list       describe the analyzer suite and exit
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
//
// Diagnostics are suppressed per line with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mdsprint/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// run is main factored for tests: it parses flags, lints, prints and
// returns the exit code.
func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("sprintlint", flag.ContinueOnError)
	dir := fs.String("C", ".", "lint the module containing this directory")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	diags, err := lint.Run(*dir, lint.DefaultConfig(), names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "sprintlint: %d diagnostic(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
