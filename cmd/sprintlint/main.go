// Command sprintlint runs this repository's project-specific static
// analyzers over every package in the module and reports file:line
// diagnostics. It is part of the tier-1 merge gate (make lint).
//
//	sprintlint                lint the module containing the working directory
//	sprintlint -C dir         lint the module containing dir
//	sprintlint -j N           analyze N packages in parallel (0 = GOMAXPROCS;
//	                          output is bit-identical at any N)
//	sprintlint -format sarif  SARIF 2.1.0 (CI annotation); also: text, json
//	sprintlint -only a,b      run only the named analyzers
//	sprintlint -list          describe the analyzer suite and exit
//	sprintlint -hotpaths      list the //sprint:hotpath roots and exit
//
// Suppression-debt ledger (see lint-baseline.json at the module root):
//
//	sprintlint -debt              report debt vs the baseline; exit 1 if any
//	                              analyzer's suppression count rose above it
//	sprintlint -baseline FILE     use FILE as the baseline (default
//	                              lint-baseline.json under -C)
//	sprintlint -write-baseline    rewrite the baseline from the current
//	                              suppression inventory
//
// Exit status: 0 clean, 1 diagnostics reported (or debt ceiling
// exceeded), 2 usage or load error.
//
// Diagnostics are suppressed per line with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory, and a suppression matching no diagnostic is itself an
// error (stale suppression) when the full suite runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mdsprint/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// run is main factored for tests: it parses flags, lints, prints and
// returns the exit code.
func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("sprintlint", flag.ContinueOnError)
	dir := fs.String("C", ".", "lint the module containing this directory")
	asJSON := fs.Bool("json", false, "alias for -format json")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	jobs := fs.Int("j", 0, "packages analyzed in parallel (0 = GOMAXPROCS)")
	hotpaths := fs.Bool("hotpaths", false, "list //sprint:hotpath roots and exit")
	debt := fs.Bool("debt", false, "report suppression debt against the baseline")
	baselinePath := fs.String("baseline", "", "baseline file (default lint-baseline.json under -C)")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the baseline from the current suppressions")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *asJSON {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "sprintlint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	res, err := lint.RunModule(*dir, lint.RunOpts{Only: names, Jobs: *jobs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
		return 2
	}

	if *hotpaths {
		for _, root := range res.HotPathRoots {
			fmt.Fprintln(stdout, root)
		}
		return 0
	}
	if *writeBaseline || *debt {
		return runDebt(res, *dir, *baselinePath, *writeBaseline, stdout)
	}

	diags := res.Diagnostics
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
			return 2
		}
	case "sarif":
		data, err := lint.SARIF(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
			return 2
		}
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if *format == "text" {
			fmt.Fprintf(os.Stderr, "sprintlint: %d diagnostic(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// runDebt handles -debt and -write-baseline against the ledger file.
func runDebt(res *lint.RunResult, dir, baselinePath string, write bool, stdout io.Writer) int {
	if baselinePath == "" {
		baselinePath = filepath.Join(dir, "lint-baseline.json")
	}
	if write {
		data, err := lint.NewBaseline(res.Suppressions).Format()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(baselinePath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s (%d suppressions)\n", baselinePath, len(res.Suppressions))
		return 0
	}
	var base *lint.Baseline
	if data, err := os.ReadFile(baselinePath); err == nil {
		base, err = lint.ParseBaseline(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
			return 2
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
		return 2
	}
	report := lint.Debt(res.Suppressions, base)
	if _, err := io.WriteString(stdout, report.Format()); err != nil {
		fmt.Fprintf(os.Stderr, "sprintlint: %v\n", err)
		return 2
	}
	if !report.OK() {
		fmt.Fprintf(os.Stderr, "sprintlint: suppression debt exceeds baseline (%s); justify and refresh with -write-baseline\n",
			strings.Join(report.Exceeded, ", "))
		return 1
	}
	return 0
}
