package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"mdsprint/internal/lint"
)

func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src", name)
}

func TestRunCleanFixture(t *testing.T) {
	var out strings.Builder
	// The fixture config differs from the default, but the clean fixture
	// is clean under any config.
	if code := run([]string{"-C", fixture("clean")}, &out); code != 0 {
		t.Fatalf("exit %d on clean fixture; output:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean fixture produced output:\n%s", out.String())
	}
}

func TestRunReportsDiagnostics(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-C", fixture("errdrop")}, &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "[errdrop]") {
		t.Fatalf("missing errdrop diagnostic:\n%s", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-C", fixture("errdrop"), "-json"}, &out)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 || diags[0].Analyzer != "errdrop" {
		t.Fatalf("unexpected JSON diagnostics: %+v", diags)
	}

	out.Reset()
	if code := run([]string{"-C", fixture("clean"), "-json"}, &out); code != 0 {
		t.Fatalf("exit %d on clean fixture", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("clean JSON output %q, want []", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-list"}, &out); code != 0 {
		t.Fatalf("exit %d on -list", code)
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Fatalf("-list missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-C", "/nonexistent-sprintlint-dir"}, &out); code != 2 {
		t.Fatalf("exit %d on missing dir, want 2", code)
	}
	if code := run([]string{"-only", "nope"}, &out); code != 2 {
		t.Fatalf("exit %d on unknown analyzer, want 2", code)
	}
	if code := run([]string{"-bogus-flag"}, &out); code != 2 {
		t.Fatalf("exit %d on bad flag, want 2", code)
	}
}
