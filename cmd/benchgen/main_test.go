package main

import (
	"testing"

	"mdsprint/internal/experiments"
)

func TestStepsCoverEveryFigureAndTable(t *testing.T) {
	want := []string{
		"fig1", "table1c", "mmk", "fig7", "fig8a", "fig8b", "fig8c",
		"fig9", "fig10", "datascaling", "fig11", "fig12a", "fig12b",
		"fig12c", "fig13", "tail", "fig14", "ablations", "disciplines",
		"tailacc",
	}
	got := steps()
	if len(got) != len(want) {
		t.Fatalf("%d steps, want %d", len(got), len(want))
	}
	seen := map[string]bool{}
	for i, s := range got {
		if s.name != want[i] {
			t.Errorf("step %d = %q, want %q", i, s.name, want[i])
		}
		if seen[s.name] {
			t.Errorf("duplicate step %q", s.name)
		}
		seen[s.name] = true
		if s.run == nil {
			t.Errorf("step %q has no runner", s.name)
		}
	}
}

func TestQuickStepRuns(t *testing.T) {
	// One cheap step end to end through the dispatcher machinery.
	lab := experiments.NewLab(experiments.Quick())
	for _, s := range steps() {
		if s.name != "mmk" {
			continue
		}
		tab, err := s.run(lab)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Fatal("empty table")
		}
	}
}
