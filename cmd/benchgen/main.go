// Command benchgen regenerates every table and figure of the paper's
// evaluation and writes the formatted results to stdout (and optionally a
// file). This is the tool behind EXPERIMENTS.md.
//
// Usage:
//
//	benchgen [-scale quick|full] [-only fig7,fig13] [-out results.txt]
//
// The full scale reproduces the EXPERIMENTS.md record and takes tens of
// minutes; quick matches the unit-test scale and finishes in a couple of
// minutes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mdsprint/internal/experiments"
)

// step is one regenerable experiment.
type step struct {
	name string
	run  func(lab *experiments.Lab) (experiments.Table, error)
}

func steps() []step {
	var fig13Cache *experiments.Fig13Result
	fig13 := func(lab *experiments.Lab) experiments.Fig13Result {
		if fig13Cache == nil {
			r := experiments.Fig13(lab)
			fig13Cache = &r
		}
		return *fig13Cache
	}
	return []step{
		{"fig1", func(l *experiments.Lab) (experiments.Table, error) {
			return experiments.Fig1(l).Table(), nil
		}},
		{"table1c", func(l *experiments.Lab) (experiments.Table, error) {
			return experiments.Table1C(l).Table(), nil
		}},
		{"mmk", func(l *experiments.Lab) (experiments.Table, error) {
			return experiments.MMKValidation(l).Table(), nil
		}},
		{"fig7", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.Fig7(l)
			return r.Table(), err
		}},
		{"fig8a", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.Fig8A(l)
			return r.Table(), err
		}},
		{"fig8b", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.Fig8B(l)
			return r.Table(), err
		}},
		{"fig8c", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.Fig8C(l)
			return r.Table(), err
		}},
		{"fig9", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.Fig9(l)
			return r.Table(), err
		}},
		{"fig10", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.Fig10(l)
			return r.Table(), err
		}},
		{"datascaling", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.DataScaling(l)
			return r.Table(), err
		}},
		{"fig11", func(l *experiments.Lab) (experiments.Table, error) {
			return experiments.Fig11(l).Table(), nil
		}},
		{"fig12a", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.Fig12A(l)
			return r.Table(), err
		}},
		{"fig12b", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.Fig12B(l)
			return r.Table(), err
		}},
		{"fig12c", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.Fig12C(l)
			return r.Table(), err
		}},
		{"fig13", func(l *experiments.Lab) (experiments.Table, error) {
			return fig13(l).Table(), nil
		}},
		{"tail", func(l *experiments.Lab) (experiments.Table, error) {
			return experiments.TailLatency(l).Table(), nil
		}},
		{"fig14", func(l *experiments.Lab) (experiments.Table, error) {
			return experiments.Fig14(fig13(l)).Table(), nil
		}},
		{"ablations", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.Ablations(l)
			return r.Table(), err
		}},
		{"disciplines", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.DisciplineSweep(l, nil)
			return r.Table(), err
		}},
		{"tailacc", func(l *experiments.Lab) (experiments.Table, error) {
			r, err := experiments.TailAccuracy(l)
			return r.Table(), err
		}},
	}
}

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	onlyFlag := flag.String("only", "", "comma-separated subset of experiments to run")
	outFlag := flag.String("out", "", "also write results to this file")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "benchgen: unknown scale %q (quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	selected := map[string]bool{}
	if *onlyFlag != "" {
		for _, name := range strings.Split(*onlyFlag, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}

	var out io.Writer = os.Stdout
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	lab := experiments.NewLab(scale)
	fmt.Fprintf(out, "# Model-driven computational sprinting — experiment regeneration (scale=%s)\n\n", scale.Name)
	start := time.Now()
	for _, s := range steps() {
		if len(selected) > 0 && !selected[s.name] {
			continue
		}
		stepStart := time.Now()
		tab, err := s.run(lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %s failed: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "%s[%s took %s]\n\n", tab.String(), s.name, time.Since(stepStart).Round(time.Millisecond))
	}
	fmt.Fprintf(out, "total: %s\n", time.Since(start).Round(time.Second))
}
