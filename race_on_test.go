//go:build race

package mdsprint

// raceEnabled reports whether the race detector is active; the
// observability overhead budget is skipped under -race because
// instrumentation distorts the timing it measures.
const raceEnabled = true
