package mdsprint

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, each regenerating its experiment at test scale, plus the
// ablation benchmarks DESIGN.md calls out. A shared lab caches profiling
// and model training across benchmarks, so the first benchmark touching a
// dataset pays its cost.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// and regenerate the full-scale record with cmd/benchgen -scale full.

import (
	"os"
	"sync"
	"testing"

	"mdsprint/internal/calib"
	"mdsprint/internal/dist"
	"mdsprint/internal/experiments"
	"mdsprint/internal/forest"
	"mdsprint/internal/mech"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/stats"
	"mdsprint/internal/workload"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
)

func lab() *experiments.Lab {
	benchOnce.Do(func() { benchLab = experiments.NewLab(experiments.Quick()) })
	return benchLab
}

func BenchmarkFig1Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(lab())
		if r.Improvement <= 1 {
			b.Fatal("no timeout sensitivity")
		}
	}
}

func BenchmarkTable1C(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1C(lab())
		if len(r.Rows) != 7 {
			b.Fatal("incomplete table")
		}
	}
}

func BenchmarkMMKValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.MMKValidation(lab())
		b.ReportMetric(r.MedianError*100, "median-err-%")
	}
}

func BenchmarkFig7ModelComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(lab())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MedianError("Hybrid", "Overall")*100, "hybrid-err-%")
		b.ReportMetric(r.MedianError("No-ML", "Overall")*100, "noml-err-%")
	}
}

func BenchmarkFig8WorkloadCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8A(lab()); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig8B(lab()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8CHardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8C(lab()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Mixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(lab()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Groupings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(lab()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11SimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(lab())
		b.ReportMetric(r.Scaling, "core-scaling-x")
	}
}

func BenchmarkFig12TimeoutStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12A(lab()); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig12C(lab()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Colocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(lab())
		combo1 := experiments.Combos()[0].Name
		b.ReportMetric(float64(r.Hosted(combo1, "model-driven sprinting")), "combo1-hosted")
	}
}

func BenchmarkFig14Amortisation(b *testing.B) {
	f13 := experiments.Fig13(lab())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14(f13)
		b.ReportMetric(r.LifetimeRatio, "lifetime-ratio-x")
	}
}

func BenchmarkTailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TailLatency(lab())
		b.ReportMetric(r.RatioP99, "tail-ratio-x")
	}
}

// --- Ablations -----------------------------------------------------------

// benchSimParams is a representative sprinting scenario for simulator
// ablations.
func benchSimParams(n int) queuesim.Params {
	mu := 0.02
	return queuesim.Params{
		ArrivalRate: 0.8 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		SprintRate:  1.6 * mu,
		Timeout:     60, BudgetSeconds: 300, RefillTime: 200,
		NumQueries: n, Warmup: n / 10, Seed: 7,
	}
}

// BenchmarkSimulateOne is the observability overhead baseline: one
// simulator run with tracing disabled. BenchmarkSimulateOneTraced runs the
// identical scenario with a RingTracer attached; the pair enforces the
// <5% disabled-hook budget (compare ns/op) and prices enabled tracing.
func BenchmarkSimulateOne(b *testing.B) {
	p := benchSimParams(2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		queuesim.MustRun(p)
	}
}

func BenchmarkSimulateOneTraced(b *testing.B) {
	p := benchSimParams(2000)
	p.Tracer = obs.NewRingTracer(1 << 14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		queuesim.MustRun(p)
	}
}

// BenchmarkSimulateOneSpanTraced adds the span tracer on top of the ring
// tracer: each run is wrapped in a pipeline-style span, the shape
// core.PredictCtx produces when sprintctl runs with -trace. Per-event
// records still go to the ring; the span layer adds one pooled span per
// run, so its marginal cost over BenchmarkSimulateOneTraced must stay
// small (TestObsOverheadBudget enforces <=15%).
func BenchmarkSimulateOneSpanTraced(b *testing.B) {
	p := benchSimParams(2000)
	p.Tracer = obs.NewRingTracer(1 << 14)
	st := obs.NewSpanTracer(obs.SpanOptions{})
	prev := obs.SetActiveSpanTracer(st)
	defer obs.SetActiveSpanTracer(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := st.StartSpan("sim.run")
		queuesim.MustRun(p)
		sp.End()
	}
}

// TestObsOverheadBudget is the bench-obs merge gate in test form: it
// measures the three SimulateOne variants back to back and enforces the
// budgets recorded in BENCH_obs.json — enabled ring tracing at most 2x
// the nil-tracer run, and span tracing at most 15% over the ring-traced
// run. (The nil-tracer disabled-hook budget is covered by the
// alloc-check tests; here the interesting regressions are the enabled
// paths.)
func TestObsOverheadBudget(t *testing.T) {
	if os.Getenv("MDSPRINT_BENCH_OBS") == "" {
		t.Skip("timing gate: wall-clock margins need an otherwise idle machine; run via make bench-obs (MDSPRINT_BENCH_OBS=1)")
	}
	if testing.Short() {
		t.Skip("benchmarks the simulator three ways")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the timing budget")
	}
	// Interleave three rounds of the variants and keep each variant's
	// fastest round: single-shot back-to-back runs on a shared machine
	// drift by >10%, which would swamp the margins under test.
	variants := []func(*testing.B){
		BenchmarkSimulateOne, BenchmarkSimulateOneTraced, BenchmarkSimulateOneSpanTraced,
	}
	best := make([]float64, len(variants))
	for round := 0; round < 3; round++ {
		for i, bench := range variants {
			ns := float64(testing.Benchmark(bench).NsPerOp())
			if round == 0 || ns < best[i] {
				best[i] = ns
			}
		}
	}
	base, ring, span := best[0], best[1], best[2]
	t.Logf("nil=%.0fns ring=%.0fns (%.1f%% over nil) span+ring=%.0fns (%.1f%% over ring)",
		base, ring, (ring-base)/base*100, span, (span-ring)/ring*100)
	if ring > 2.0*base {
		t.Errorf("ring tracing %.0fns/op exceeds 2x the nil-tracer %.0fns/op", ring, base)
	}
	if span > 1.15*ring {
		t.Errorf("span tracing %.0fns/op exceeds 15%% over the ring-traced %.0fns/op", span, ring)
	}
}

// BenchmarkAblationTickVsEvent quantifies the cost of Algorithm 1's
// tick-stepped clock versus this repository's event-driven scheduling at
// identical semantics.
func BenchmarkAblationTickVsEvent(b *testing.B) {
	p := benchSimParams(2000)
	b.Run("event", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			queuesim.MustRun(p)
		}
	})
	b.Run("tick-10ms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := queuesim.RunTick(p, 0.01); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tick-100ms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := queuesim.RunTick(p, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ablationDataset profiles a small Jacobi dataset for the calibration and
// forest ablations.
var (
	ablOnce sync.Once
	ablDS   *profiler.Dataset
)

func ablationDataset() *profiler.Dataset {
	ablOnce.Do(func() {
		p := &profiler.Profiler{
			Mix:           workload.SingleClass(workload.MustByName("Jacobi")),
			Mechanism:     mech.DVFS{},
			QueriesPerRun: 800,
			Replications:  2,
			Seed:          31,
		}
		ablDS = p.Profile(profiler.PaperGrid().Sample(12, 5))
	})
	return ablDS
}

// BenchmarkAblationCalibration compares the bisection search against the
// paper's exhaustive unit-stepping search for effective sprint rates.
func BenchmarkAblationCalibration(b *testing.B) {
	ds := ablationDataset()
	base := calib.Options{NumQueries: 1500, Replications: 2, Tolerance: 0.02, Seed: 11}
	run := func(b *testing.B, o calib.Options) {
		var resid []float64
		for i := 0; i < b.N; i++ {
			resid = resid[:0]
			for _, obs := range ds.Observations {
				rec := calib.EffectiveRate(ds, obs, o)
				resid = append(resid, rec.RelError())
			}
		}
		b.ReportMetric(stats.Median(resid)*100, "median-resid-%")
	}
	b.Run("bisection", func(b *testing.B) { run(b, base) })
	b.Run("stepping-1qph", func(b *testing.B) {
		o := base
		o.Stepping = true
		o.StepQPH = 1
		o.MaxIter = 60
		run(b, o)
	})
	b.Run("stepping-0.25qph", func(b *testing.B) {
		o := base
		o.Stepping = true
		o.StepQPH = 0.25
		o.MaxIter = 120
		run(b, o)
	})
}

// BenchmarkAblationForest varies the forest's structural knobs (the paper
// fixes 10 deep, unpruned trees).
func BenchmarkAblationForest(b *testing.B) {
	ds := ablationDataset()
	recs := calib.CalibrateDataset(ds, ds.Observations,
		calib.Options{NumQueries: 1500, Replications: 2, Tolerance: 0.02, Seed: 13})
	var samples []forest.Sample
	for i, rec := range recs {
		obs := ds.Observations[i]
		samples = append(samples, forest.Sample{
			Features: []float64{obs.ArrivalRate, obs.Cond.Timeout, obs.Cond.RefillTime, obs.Cond.BudgetPct},
			X:        rec.MarginalRate,
			Y:        rec.EffectiveRate,
		})
	}
	names := []string{"lambda", "timeout", "refill", "budget"}
	for _, cfg := range []struct {
		name string
		c    forest.Config
	}{
		{"paper-10-deep", forest.Config{Trees: 10, Seed: 3}},
		{"trees-50", forest.Config{Trees: 50, Seed: 3}},
		{"depth-2", forest.Config{Trees: 10, MaxDepth: 2, Seed: 3}},
		{"single-tree", forest.Config{Trees: 1, FeatureFrac: 1, Seed: 3}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := forest.Train(samples, names, cfg.c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictionThroughput measures raw predictions per second at 1
// worker and at full parallelism (the Section 3.6 scaling claim in
// microbenchmark form).
func BenchmarkPredictionThroughput(b *testing.B) {
	p := benchSimParams(10000)
	b.Run("1-worker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := queuesim.Predict(p, 2, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("all-workers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := queuesim.Predict(p, 8, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
