package mdsprint

import (
	"math"
	"path/filepath"
	"testing"
)

func TestPublicWorkflow(t *testing.T) {
	// The complete library workflow through the public surface only.
	mix, err := WorkloadMix("Jacobi")
	if err != nil {
		t.Fatal(err)
	}
	m, err := MechanismByName("DVFS")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Profile(mix, m, ProfileOptions{Samples: 14, QueriesPerRun: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.ServiceRate <= 0 || ds.MarginalRate <= ds.ServiceRate {
		t.Fatalf("dataset rates: mu=%v mum=%v", ds.ServiceRate, ds.MarginalRate)
	}

	// Persist and reload.
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	ds2, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.MarginalRate != ds.MarginalRate {
		t.Fatal("round trip lost the marginal rate")
	}

	// Train and predict.
	model, err := TrainHybrid(ds2, ModelOptions{SimQueries: 1500, SimReps: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	base := Condition{
		Utilization: 0.8, ArrivalKind: ArrivalExponential,
		RefillTime: 300, BudgetPct: 0.3,
	}
	cond := base
	cond.Timeout = 60
	pred, err := model.Predict(ds2, Scenario{Cond: cond})
	if err != nil {
		t.Fatal(err)
	}
	if pred.MeanRT <= 0 || math.IsNaN(pred.MeanRT) {
		t.Fatalf("prediction %v", pred.MeanRT)
	}

	// Policy search.
	to, rt, err := BestTimeout(model, ds2, base, 200, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	if to < 0 || to > 200 || rt <= 0 {
		t.Fatalf("best timeout %v rt %v", to, rt)
	}
	// The annealed timeout can only improve on the arbitrary 60 s one
	// (both evaluated by the same model, small slack for sim noise).
	if rt > pred.MeanRT*1.05 {
		t.Fatalf("search result %v worse than arbitrary policy %v", rt, pred.MeanRT)
	}
}

func TestPublicCatalogHelpers(t *testing.T) {
	if len(Workloads()) != 7 {
		t.Fatalf("catalog size %d", len(Workloads()))
	}
	for _, name := range []string{"MixI", "MixII"} {
		mix, err := WorkloadMix(name)
		if err != nil || len(mix.Components) < 2 {
			t.Fatalf("WorkloadMix(%s): %v %v", name, mix, err)
		}
	}
	if _, err := WorkloadMix("Unknown"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	th := Throttle(0.20)
	if th.MarginalSpeedup(Workloads()[2]) != 5 { // Jacobi
		t.Fatalf("throttle speedup %v", th.MarginalSpeedup(Workloads()[2]))
	}
	if got := ToQPH(QPH(87)); math.Abs(got-87) > 1e-9 {
		t.Fatalf("rate conversion %v", got)
	}
}

func TestPublicNoML(t *testing.T) {
	mix, _ := WorkloadMix("Jacobi")
	m, _ := MechanismByName("DVFS")
	ds, err := Profile(mix, m, ProfileOptions{Samples: 6, QueriesPerRun: 400, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	noml := NewNoML(17)
	pred, err := noml.Predict(ds, Scenario{Cond: Condition{
		Utilization: 0.6, ArrivalKind: ArrivalExponential,
		Timeout: 50, RefillTime: 200, BudgetPct: 0.2,
	}})
	if err != nil || pred.MeanRT <= 0 {
		t.Fatalf("NoML prediction %v, %v", pred, err)
	}
}

func TestProfileValidation(t *testing.T) {
	if _, err := Profile(Mix{}, nil, ProfileOptions{}); err == nil {
		t.Fatal("empty mix accepted")
	}
	mix, _ := WorkloadMix("Jacobi")
	if _, err := Profile(mix, nil, ProfileOptions{}); err == nil {
		t.Fatal("nil mechanism accepted")
	}
}
