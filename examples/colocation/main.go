// Burstable-instance colocation: Section 4.4's use case. Plan sprinting
// policies for a combo of tenant workloads under a response-time SLO,
// compare AWS's fixed policy against model-driven budgeting and
// model-driven sprinting, and amortise the profiling cost over a server
// lifetime.
package main

import (
	"fmt"

	"mdsprint/internal/colocate"
	"mdsprint/internal/experiments"
)

func main() {
	combo := experiments.Combos()[0] // 4x Jacobi at 70% utilization
	est := colocate.SimEstimator{SimQueries: 5000, SimReps: 3, Seed: 31}

	fmt.Printf("combo: %s\n", combo.Name)
	fmt.Printf("SLO: response time within %.0f%% of the unthrottled baseline\n\n", (colocate.SLOFactor-1)*100)

	type outcome struct {
		name   string
		hosted int
	}
	var outcomes []outcome
	for _, planner := range []struct {
		name string
		p    colocate.Planner
	}{
		{"aws fixed policy", colocate.AWSPlanner(est)},
		{"model-driven budgeting", colocate.BudgetPlanner(est, colocate.AWSRefill)},
		{"model-driven sprinting", colocate.SprintPlanner(est, 60, 32)},
	} {
		assigns, n := colocate.FillNode(combo.Workloads, planner.p)
		fmt.Printf("%-24s hosts %d/%d on one node -> $%.3f/hr\n",
			planner.name, n, len(combo.Workloads), colocate.PricePerHour*float64(n))
		for _, a := range assigns {
			fmt.Printf("    %-12s %v\n", a.Workload.Name, a.Plan)
		}
		outcomes = append(outcomes, outcome{planner.name, n})
		fmt.Println()
	}

	// Profiling-cost amortisation (Figure 14's arithmetic).
	aws, model := outcomes[0].hosted, outcomes[2].hosted
	if aws < 1 {
		aws = 1
	}
	if model > aws {
		awsRate := colocate.PricePerHour * float64(aws)
		modelRate := colocate.PricePerHour * float64(model)
		delay := experiments.ProfilingHoursPerWorkload * float64(len(combo.Workloads))
		crossover := modelRate * delay / (modelRate - awsRate)
		lifetime := float64(experiments.ServerLifetimeHours)
		ratio := modelRate * (lifetime - delay) / (awsRate * lifetime)
		fmt.Printf("profiling cost: %.1f h per workload (%.1f h total)\n",
			experiments.ProfilingHoursPerWorkload, delay)
		fmt.Printf("model-driven sprinting breaks even after %.0f h (%.1f days)\n", crossover, crossover/24)
		fmt.Printf("over a %v-hour server lifetime it earns %.2fx the AWS policy\n",
			experiments.ServerLifetimeHours, ratio)
	}
}
