// Online control: the paper's Section 5 open challenge — estimate runtime
// conditions online and drive the performance model from noisy estimates.
// A two-phase workload shifts its arrival rate mid-stream; a sliding-
// window estimator tracks it and a controller re-runs the model-driven
// timeout search when the estimate drifts.
package main

import (
	"fmt"
	"log"

	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/online"
	"mdsprint/internal/profiler"
	"mdsprint/internal/sprint"
	"mdsprint/internal/workload"
)

func main() {
	// Profile throttled Jacobi once, offline (Section 4.3's platform).
	p := &profiler.Profiler{
		Mix:           workload.SingleClass(workload.MustByName("Jacobi")),
		Mechanism:     mech.NewThrottle(0.20),
		QueriesPerRun: 800,
		Seed:          41,
	}
	fmt.Println("profiling throttled Jacobi...")
	mu, samples, _ := p.MeasureServiceRate()
	mum, _ := p.MeasureMarginalRate()
	ds := &profiler.Dataset{
		MixName: "Jacobi", MechName: "Throttle20%",
		ServiceRate: mu, MarginalRate: mum, ServiceSamples: samples,
	}
	fmt.Printf("  mu = %.1f qph, mu_m = %.1f qph\n", sprint.ToQPH(mu), sprint.ToQPH(mum))

	ctrl := &online.Controller{
		Model:   &core.NoML{SimQueries: 2000, SimReps: 2, Seed: 43},
		Dataset: ds,
		Base: profiler.Condition{
			ArrivalKind: dist.KindExponential,
			RefillTime:  600, BudgetPct: 0.15,
		},
		AnnealIter: 40,
		Seed:       47,
	}

	// A non-stationary arrival stream: 40% utilization, then a shift to
	// 85% halfway through. The controller only ever sees the
	// estimator's noisy view.
	est := online.MustRateEstimator(3600, 0.9)
	rng := dist.NewRNG(51)
	phases := []struct {
		name string
		rate float64
		n    int
	}{
		{"calm (40% util)", 0.40 * mu, 60},
		{"spike (85% util)", 0.85 * mu, 120},
	}
	now := 0.0
	fmt.Println("\nstreaming arrivals through the estimator:")
	for _, phase := range phases {
		arr := dist.NewExponential(phase.rate)
		for i := 0; i < phase.n; i++ {
			now += arr.Sample(rng)
			est.Observe(now)
			// Poll the controller every 20 arrivals.
			if i%20 == 19 {
				rate := est.Rate(now)
				to, err := ctrl.Timeout(rate)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  t=%7.0fs  %-16s est %.2f qph (true %.2f)  timeout -> %5.1fs  (searches so far: %d)\n",
					now, phase.name, sprint.ToQPH(rate), sprint.ToQPH(phase.rate), to, ctrl.Retunes())
			}
		}
	}
	fmt.Printf("\nthe controller ran %d model-driven searches across the rate shift\n", ctrl.Retunes())
	fmt.Println("(decisions between drifts are cached: prediction cost is paid only when conditions move)")
}
