// What-if analysis: the Section 1 scenario — "what would response time
// have been if the sprinting budget doubled during last week's spike?" —
// answered with the performance model instead of a production experiment,
// then checked against the (simulated) ground truth.
package main

import (
	"fmt"
	"log"

	"mdsprint/internal/calib"
	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/forest"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/testbed"
	"mdsprint/internal/workload"
)

func main() {
	mix := workload.SingleClass(workload.MustByName("Jacobi"))

	// Profile once, offline, under normal operations.
	p := &profiler.Profiler{
		Mix: mix, Mechanism: mech.DVFS{},
		QueriesPerRun: 1000, Replications: 2, Seed: 11,
	}
	fmt.Println("profiling Jacobi on DVFS...")
	ds := p.Profile(profiler.PaperGrid().Sample(40, 5))

	h, err := core.TrainHybrid(
		[]core.TrainingSet{{Dataset: ds, Observations: ds.Observations}},
		core.HybridOptions{
			Forest:     forest.Config{Trees: 10, FeatureFrac: 0.9, Seed: 12},
			Calib:      calib.Options{NumQueries: 2000, Replications: 3, Tolerance: 0.025, Seed: 13},
			SimQueries: 3000, SimReps: 2, Seed: 14,
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Last week's spike: 90% utilization. The deployed policy had a
	// modest budget; would doubling it have helped, and by how much?
	spike := profiler.Condition{
		Utilization: 0.90,
		ArrivalKind: dist.KindExponential,
		Timeout:     80,
		RefillTime:  500,
		BudgetPct:   0.20,
	}
	doubled := spike
	doubled.BudgetPct = 0.40

	predict := func(cond profiler.Condition) float64 {
		pred, err := h.Predict(ds, core.Scenario{Cond: cond})
		if err != nil {
			log.Fatal(err)
		}
		return pred.MeanRT
	}
	rtDeployed := predict(spike)
	rtDoubled := predict(doubled)
	fmt.Printf("\nmodel's answer for the spike (90%% util):\n")
	fmt.Printf("  deployed budget (20%%): expected mean RT %6.1f s\n", rtDeployed)
	fmt.Printf("  doubled budget  (40%%): expected mean RT %6.1f s\n", rtDoubled)
	fmt.Printf("  -> doubling the budget would have improved RT by %.2fx\n", rtDeployed/rtDoubled)

	// Because this repository's "hardware" is itself simulated, we can
	// grade the what-if answer against ground truth — something the
	// paper's operators cannot do without re-living the spike.
	groundTruth := func(cond profiler.Condition) float64 {
		sum := 0.0
		const reps = 4
		for i := 0; i < reps; i++ {
			res := testbed.MustRun(testbed.Config{
				Mix: mix, Mechanism: mech.DVFS{},
				Policy:      cond.Policy(),
				ArrivalKind: cond.ArrivalKind,
				ArrivalRate: cond.Utilization * ds.ServiceRate,
				NumQueries:  4000, Warmup: 400, Seed: 2024 + uint64(i)*31,
			})
			sum += res.MeanResponseTime()
		}
		return sum / reps
	}
	gtDeployed := groundTruth(spike)
	gtDoubled := groundTruth(doubled)
	fmt.Printf("\nground truth (testbed replay):\n")
	fmt.Printf("  deployed budget: %6.1f s (model error %.1f%%)\n",
		gtDeployed, 100*abs(rtDeployed-gtDeployed)/gtDeployed)
	fmt.Printf("  doubled budget:  %6.1f s (model error %.1f%%)\n",
		gtDoubled, 100*abs(rtDoubled-gtDoubled)/gtDoubled)
	fmt.Printf("  actual improvement from doubling: %.2fx\n", gtDeployed/gtDoubled)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
