// Quickstart: profile a workload, train the hybrid performance model, and
// compare sprinting policies by their expected response time — the
// model-driven workflow of Figure 2, end to end in one small program.
package main

import (
	"fmt"
	"log"

	"mdsprint/internal/calib"
	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/forest"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/sprint"
	"mdsprint/internal/workload"
)

func main() {
	// 1. Profile a representative workload: Spark K-means on the DVFS
	// platform, replayed over a sample of the cluster-sampling grid.
	mix := workload.SingleClass(workload.MustByName("SparkKmeans"))
	p := &profiler.Profiler{
		Mix:           mix,
		Mechanism:     mech.DVFS{},
		QueriesPerRun: 1000,
		Replications:  2,
		Seed:          42,
	}
	conds := profiler.PaperGrid().Sample(40, 7)
	fmt.Printf("profiling %s over %d policy/arrival conditions...\n", mix.Name, len(conds))
	ds := p.Profile(conds)
	fmt.Printf("  service rate mu      = %5.1f qph\n", sprint.ToQPH(ds.ServiceRate))
	fmt.Printf("  marginal sprint rate = %5.1f qph (%.2fx speedup)\n",
		sprint.ToQPH(ds.MarginalRate), ds.MarginalSpeedup())

	// 2. Train the hybrid model: calibrate effective sprint rates and
	// fit the random decision forest.
	fmt.Println("training hybrid model (profiling -> effective sprint rate -> forest)...")
	h, err := core.TrainHybrid(
		[]core.TrainingSet{{Dataset: ds, Observations: ds.Observations}},
		core.HybridOptions{
			Forest:     forest.Config{Trees: 10, FeatureFrac: 0.9, Seed: 8},
			Calib:      calib.Options{NumQueries: 2000, Replications: 3, Tolerance: 0.025, Seed: 9},
			SimQueries: 3000, SimReps: 2, Seed: 10,
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compare candidate sprinting policies at 80% utilization without
	// touching the (simulated) production server.
	fmt.Println("\nexpected mean response time at 80% utilization:")
	policies := []profiler.Condition{
		{Utilization: 0.8, ArrivalKind: dist.KindExponential, Timeout: -1},
		{Utilization: 0.8, ArrivalKind: dist.KindExponential, Timeout: 0, RefillTime: 500, BudgetPct: 0.2},
		{Utilization: 0.8, ArrivalKind: dist.KindExponential, Timeout: 60, RefillTime: 500, BudgetPct: 0.2},
		{Utilization: 0.8, ArrivalKind: dist.KindExponential, Timeout: 120, RefillTime: 500, BudgetPct: 0.2},
		{Utilization: 0.8, ArrivalKind: dist.KindExponential, Timeout: 60, RefillTime: 500, BudgetPct: 0.6},
	}
	best := -1
	bestRT := 0.0
	for i, cond := range policies {
		pred, err := h.Predict(ds, core.Scenario{Cond: cond})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("timeout=%4.0fs budget=%3.0f%%", cond.Timeout, cond.BudgetPct*100)
		if cond.Timeout < 0 {
			label = "no sprinting            "
		}
		fmt.Printf("  %s -> %6.1f s (p99 %6.1f s)\n", label, pred.MeanRT, pred.P99RT)
		if best < 0 || pred.MeanRT < bestRT {
			best, bestRT = i, pred.MeanRT
		}
	}
	fmt.Printf("\nbest policy: timeout=%.0fs budget=%.0f%% (expected %.1f s)\n",
		policies[best].Timeout, policies[best].BudgetPct*100, bestRT)

	// 4. Peek at what the forest learned.
	fmt.Println("\ntop feature importances in the random decision forest:")
	for i, imp := range h.Importances() {
		if i == 4 {
			break
		}
		fmt.Printf("  %-18s %5.1f%%\n", imp.Name, imp.Share*100)
	}
}
