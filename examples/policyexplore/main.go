// Policy exploration: Section 4.3's study in miniature. Profile Jacobi
// under CPU throttling, train the hybrid model, anneal the timeout space,
// and compare the model-driven policy against big-burst, small-burst,
// Few-to-Many and Adrenaline.
package main

import (
	"fmt"
	"log"

	"mdsprint/internal/calib"
	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/explore"
	"mdsprint/internal/forest"
	"mdsprint/internal/mech"
	"mdsprint/internal/policies"
	"mdsprint/internal/profiler"
	"mdsprint/internal/sprint"
	"mdsprint/internal/workload"
)

func main() {
	// Jacobi throttled to 20% of its sprint throughput: sustained 14.8
	// qph, sprint rate 74 qph (Section 4.3's setup), at 80% utilization.
	mix := workload.SingleClass(workload.MustByName("Jacobi"))
	throttle := mech.NewThrottle(0.20)
	p := &profiler.Profiler{
		Mix: mix, Mechanism: throttle,
		QueriesPerRun: 1000, Replications: 2, Seed: 21,
	}
	fmt.Println("profiling throttled Jacobi...")
	ds := p.Profile(profiler.PaperGrid().Sample(40, 9))
	fmt.Printf("  sustained %.1f qph, sprint %.1f qph\n",
		sprint.ToQPH(ds.ServiceRate), sprint.ToQPH(ds.MarginalRate))

	h, err := core.TrainHybrid(
		[]core.TrainingSet{{Dataset: ds, Observations: ds.Observations}},
		core.HybridOptions{
			Forest:     forest.Config{Trees: 10, FeatureFrac: 0.9, Seed: 22},
			Calib:      calib.Options{NumQueries: 2000, Replications: 3, Tolerance: 0.025, Seed: 23},
			SimQueries: 3000, SimReps: 2, Seed: 24,
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	const (
		util      = 0.8
		refill    = 600.0
		budgetPct = 0.12
	)
	arrival := util * ds.ServiceRate
	ctx := policies.Context{
		Dataset: ds, ArrivalRate: arrival,
		RefillTime: refill, BudgetPct: budgetPct,
		SimQueries: 3000, SimReps: 2, Seed: 25,
	}
	predictRT := func(timeout, budget, speedup float64) float64 {
		pred, err := h.Predict(ds, core.Scenario{
			Cond: profiler.Condition{
				Utilization: util, ArrivalKind: dist.KindExponential,
				Timeout: timeout, RefillTime: refill, BudgetPct: budget, Speedup: speedup,
			},
			ArrivalRate: arrival,
		})
		if err != nil {
			log.Fatal(err)
		}
		return pred.MeanRT
	}

	fmt.Println("\nexpected mean response time per policy:")
	big := policies.BigBurst(ctx)
	small := policies.SmallBurst(ctx)
	f2m, err := policies.FewToMany(ctx)
	if err != nil {
		log.Fatal(err)
	}
	adren, err := policies.Adrenaline(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []policies.Setting{big, small, f2m, adren} {
		fmt.Printf("  %-12s timeout=%6.1fs budget=%3.0f%% -> %6.1f s\n",
			s.Name, s.Timeout, s.BudgetPct*100, predictRT(s.Timeout, s.BudgetPct, s.Speedup))
	}

	// Model-driven: anneal the timeout space (Equations 4-5).
	res, err := explore.MinimizeTimeout(func(to float64) float64 {
		return predictRT(to, budgetPct, 0)
	}, 0, 300, explore.Options{MaxIter: 200, Seed: 26})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-12s timeout=%6.1fs budget=%3.0f%% -> %6.1f s  (%d model evaluations)\n",
		"model-driven", res.Point[0], budgetPct*100, res.RT, res.Evaluations)

	worst := predictRT(300, budgetPct, 0)
	fmt.Printf("\nbest-vs-worst timeout gap at this budget: %.2fx (paper reports up to 1.65x)\n", worst/res.RT)
}
