module mdsprint

go 1.22
