package mdsprint

// This file is the library's public surface: a thin façade over the
// internal packages that walks the paper's workflow — profile a workload,
// train a performance model, predict response times for candidate
// sprinting policies, and search the policy space. The examples/ programs
// use the internal packages directly (same module); external importers
// get everything they need from here.

import (
	"fmt"
	"math"

	"mdsprint/internal/calib"
	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/explore"
	"mdsprint/internal/forest"
	"mdsprint/internal/mech"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
	"mdsprint/internal/sprint"
	"mdsprint/internal/trace"
	"mdsprint/internal/workload"
)

// Re-exported core vocabulary. See the respective internal packages for
// full documentation.
type (
	// Dataset is a profiled workload: service rate, marginal sprint
	// rate, service-time samples and per-condition observations.
	Dataset = profiler.Dataset
	// Condition is one workload/policy setting: utilization, arrival
	// family, timeout, refill window, budget fraction.
	Condition = profiler.Condition
	// Observation is a measured Condition.
	Observation = profiler.Observation
	// Scenario is a prediction request.
	Scenario = core.Scenario
	// Prediction is a model's expected response time (mean and tail).
	Prediction = core.Prediction
	// Model predicts response times for scenarios against a Dataset.
	Model = core.Model
	// Policy is a complete sprinting policy (timeout, budget, refill
	// semantics, sprint rate).
	Policy = sprint.Policy
	// Mechanism is sprinting hardware (DVFS, core scaling, EC2 DVFS,
	// CPU throttling).
	Mechanism = mech.Mechanism
	// Mix is a query mix served by one machine.
	Mix = workload.Mix
	// WorkloadClass is one Table 1(C) workload.
	WorkloadClass = workload.Class
	// Metrics is a concurrency-safe registry of counters, gauges and
	// windowed histograms with Prometheus-text and JSON exposition.
	Metrics = obs.Registry
	// QueryTracer receives per-query lifecycle events from the queue
	// simulator; QueryEvent is one such event.
	QueryTracer = obs.QueryTracer
	QueryEvent  = obs.QueryEvent
)

// DefaultMetrics returns the process-wide registry every component
// records into unless given an explicit one.
func DefaultMetrics() *Metrics { return obs.Default() }

// NewMetrics returns an empty, isolated metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewRingTracer returns a bounded in-memory event sink retaining the last
// capacity events (a safe default when capacity <= 0).
func NewRingTracer(capacity int) *obs.RingTracer { return obs.NewRingTracer(capacity) }

// SaveEvents persists simulator lifecycle traces as JSONL.
func SaveEvents(path string, events []QueryEvent) error { return trace.SaveEvents(path, events) }

// LoadEvents reads back a JSONL trace written by SaveEvents.
func LoadEvents(path string) ([]QueryEvent, error) { return trace.LoadEvents(path) }

// Arrival distribution families for Condition.ArrivalKind.
const (
	ArrivalExponential   = dist.KindExponential
	ArrivalPareto        = dist.KindPareto
	ArrivalDeterministic = dist.KindDeterministic
)

// Dist is a one-dimensional distribution over non-negative values.
type Dist = dist.Dist

// ParseDist parses a distribution spec such as "exp(2)", "uniform(1,3)"
// or "lognormal(4,0.5)"; see internal/dist.ParseDist for the grammar. It
// validates every argument and never panics on malformed input.
func ParseDist(spec string) (Dist, error) { return dist.ParseDist(spec) }

// Workloads returns the Table 1(C) catalog.
func Workloads() []*WorkloadClass { return workload.Catalog() }

// WorkloadMix resolves a workload name ("Jacobi", ... or "MixI"/"MixII")
// into a query mix.
func WorkloadMix(name string) (Mix, error) {
	switch name {
	case "MixI":
		return workload.MixI(), nil
	case "MixII":
		return workload.MixII(), nil
	default:
		c, err := workload.ByName(name)
		if err != nil {
			return Mix{}, err
		}
		return workload.SingleClass(c), nil
	}
}

// MechanismByName resolves "DVFS", "CoreScale" or "EC2DVFS"; use
// Throttle for CPU throttling.
func MechanismByName(name string) (Mechanism, error) { return mech.ByName(name) }

// Throttle returns the CPU-throttling mechanism limiting the sustained
// rate to fraction of the CPU (AWS T2.small is Throttle(0.20)).
func Throttle(fraction float64) Mechanism { return mech.NewThrottle(fraction) }

// ProfileOptions configures Profile.
type ProfileOptions struct {
	// Conditions profiled; nil samples Samples conditions (default 80)
	// from the paper's cluster-sampling grid.
	Conditions []Condition
	Samples    int
	// QueriesPerRun sizes each replay (default 1500).
	QueriesPerRun int
	// Seed roots all randomness.
	Seed uint64
	// Metrics receives profiling progress; nil uses DefaultMetrics().
	Metrics *Metrics
}

// Profile replays the mix on the mechanism over the sampled conditions
// and returns the paper's three profiler outputs bundled as a Dataset.
func Profile(mix Mix, m Mechanism, opts ProfileOptions) (*Dataset, error) {
	if len(mix.Components) == 0 {
		return nil, fmt.Errorf("mdsprint: empty mix")
	}
	if m == nil {
		return nil, fmt.Errorf("mdsprint: nil mechanism")
	}
	conds := opts.Conditions
	if conds == nil {
		n := opts.Samples
		if n == 0 {
			n = 80
		}
		conds = profiler.PaperGrid().Sample(n, opts.Seed+3)
	}
	p := &profiler.Profiler{
		Mix:           mix,
		Mechanism:     m,
		QueriesPerRun: opts.QueriesPerRun,
		Replications:  2,
		Seed:          opts.Seed,
		Metrics:       opts.Metrics,
	}
	return p.Profile(conds), nil
}

// ModelOptions configures TrainHybrid.
type ModelOptions struct {
	// Train restricts training to these observations (default: all of
	// the dataset's).
	Train []Observation
	// SimQueries and SimReps size each prediction (defaults 4000/2).
	SimQueries int
	SimReps    int
	// Seed roots calibration, forest training and prediction.
	Seed uint64
	// Metrics receives calibration/training progress (nil uses
	// DefaultMetrics()); Tracer receives every prediction simulation's
	// per-query lifecycle events (nil disables tracing).
	Metrics *Metrics
	Tracer  QueryTracer
}

// TrainHybrid builds the paper's hybrid model from a profiled dataset:
// effective-sprint-rate calibration, a 10-tree random decision forest,
// and the timeout-aware queue simulator behind Predict.
func TrainHybrid(ds *Dataset, opts ModelOptions) (Model, error) {
	train := opts.Train
	if train == nil {
		train = ds.Observations
	}
	return core.TrainHybrid(
		[]core.TrainingSet{{Dataset: ds, Observations: train}},
		core.HybridOptions{
			Forest: forest.Config{Trees: 10, FeatureFrac: 0.9, Seed: opts.Seed + 7},
			Calib: calib.Options{
				NumQueries: 2500, Replications: 3,
				Tolerance: 0.025, Seed: opts.Seed + 101,
			},
			SimQueries: opts.SimQueries,
			SimReps:    opts.SimReps,
			Seed:       opts.Seed + 13,
			Metrics:    opts.Metrics,
			Tracer:     opts.Tracer,
		},
	)
}

// NewNoML returns the simulator-only baseline (marginal sprint rate in,
// response time out).
func NewNoML(seed uint64) Model {
	return &core.NoML{Seed: seed}
}

// BestTimeout anneals the timeout space (Section 4.2) against the model
// and returns the best timeout and its expected mean response time.
func BestTimeout(m Model, ds *Dataset, base Condition, maxTimeout float64, iters int, seed uint64) (timeout, meanRT float64, err error) {
	if maxTimeout <= 0 {
		maxTimeout = 300
	}
	if iters == 0 {
		iters = 200
	}
	// Prediction failures inside the annealing closure are remembered
	// and returned as an error; the closure itself reports +Inf so the
	// search simply avoids the failing point instead of crashing the
	// caller.
	var predErr error
	res, err := explore.MinimizeTimeout(func(to float64) float64 {
		cond := base
		cond.Timeout = to
		pred, perr := m.Predict(ds, core.Scenario{Cond: cond})
		if perr != nil {
			if predErr == nil {
				predErr = perr
			}
			return math.Inf(1)
		}
		return pred.MeanRT
	}, 0, maxTimeout, explore.Options{MaxIter: iters, Seed: seed})
	if predErr != nil {
		return 0, 0, fmt.Errorf("mdsprint: predicting during timeout search: %w", predErr)
	}
	if err != nil {
		return 0, 0, err
	}
	return res.Point[0], res.RT, nil
}

// SaveDataset persists a profiled dataset as JSON.
func SaveDataset(path string, ds *Dataset) error { return trace.SaveDataset(path, ds) }

// LoadDataset reads back a dataset written by SaveDataset.
func LoadDataset(path string) (*Dataset, error) { return trace.LoadDataset(path) }

// QPH converts queries/hour (the paper's unit) to this library's
// queries/second.
func QPH(qph float64) float64 { return sprint.QPH(qph) }

// ToQPH converts queries/second back to queries/hour.
func ToQPH(qps float64) float64 { return sprint.ToQPH(qps) }
