package httpharness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
)

// GeneratorConfig drives a query generator replaying a workload against a
// queue manager's URL (Figure 3's front end).
type GeneratorConfig struct {
	// URL is the manager's base URL (the /query endpoint is appended).
	URL string
	// Interarrival and Service are the workload's distributions, in
	// wall-clock seconds (millisecond-scale values keep tests fast).
	Interarrival dist.Dist
	Service      dist.Dist
	// NumQueries to send.
	NumQueries int
	// Seed drives sampling (and each query's retry-backoff jitter).
	Seed uint64
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
	// MaxInFlight bounds concurrently outstanding requests (default
	// 4*GOMAXPROCS). Arrival pacing is unaffected — the bound only
	// limits how many launched queries may be on the wire at once, so a
	// stalled server cannot make the generator spawn unbounded work.
	MaxInFlight int
	// RequestTimeout bounds each individual HTTP attempt (default 30 s).
	RequestTimeout time.Duration
	// MaxRetries is how many times a failed attempt (transport error or
	// 5xx) is retried with jittered exponential backoff before the
	// query is reported failed. 4xx responses are never retried: the
	// request itself is wrong and a retry cannot fix it. Default 0 —
	// replays are faithful unless resilience is asked for.
	MaxRetries int
	// RetryBackoff is the first retry's base delay, doubled per attempt
	// and jittered +-50% (default 20 ms).
	RetryBackoff time.Duration
	// Metrics receives generator resilience counters; nil records into
	// obs.Default().
	Metrics *obs.Registry
}

func (cfg GeneratorConfig) withDefaults() GeneratorConfig {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 20 * time.Millisecond
	}
	return cfg
}

// generatorMetrics resolves the generator's resilience counters.
type generatorMetrics struct {
	retries  *obs.Counter
	failures *obs.Counter
	inflight *obs.Gauge
}

func (cfg GeneratorConfig) metrics() generatorMetrics {
	reg := obs.Or(cfg.Metrics)
	return generatorMetrics{
		retries:  reg.Counter("mdsprint_harness_retries_total", "HTTP query attempts retried after a transport error or 5xx"),
		failures: reg.Counter("mdsprint_harness_failures_total", "HTTP queries failed after exhausting their retry budget"),
		inflight: reg.Gauge("mdsprint_harness_inflight", "HTTP queries currently on the wire"),
	}
}

// Run replays the workload: it sends queries at the sampled arrival times
// (each on its own goroutine, like independent clients) and collects every
// response. It returns responses in arrival order.
func Run(cfg GeneratorConfig) ([]QueryResponse, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run honoring cancellation: once ctx is done, unsent queries
// are abandoned and in-flight requests are released by their per-attempt
// timeouts. The first error (lowest query index) is returned, so a
// failing replay reports deterministically.
func RunCtx(ctx context.Context, cfg GeneratorConfig) ([]QueryResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.URL == "" || cfg.Interarrival == nil || cfg.Service == nil {
		return nil, fmt.Errorf("httpharness: generator needs URL and distributions")
	}
	if cfg.NumQueries <= 0 {
		return nil, fmt.Errorf("httpharness: NumQueries must be positive")
	}
	cfg = cfg.withDefaults()
	m := cfg.metrics()
	rng := dist.NewRNG(cfg.Seed)
	type planned struct {
		at      time.Duration
		service float64
		jitter  uint64 // per-query backoff-jitter seed, fixed at plan time
	}
	plan := make([]planned, cfg.NumQueries)
	at := time.Duration(0)
	for i := range plan {
		at += secondsToDuration(cfg.Interarrival.Sample(rng))
		plan[i] = planned{at: at, service: cfg.Service.Sample(rng), jitter: rng.Uint64()}
	}

	responses := make([]QueryResponse, cfg.NumQueries)
	errs := make([]error, cfg.NumQueries)
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	for i, p := range plan {
		wg.Add(1)
		go func(i int, p planned) {
			defer wg.Done()
			if !sleepCtx(ctx, time.Until(start.Add(p.at))) {
				errs[i] = ctx.Err()
				return
			}
			// Acquire the in-flight slot after the scheduled send time:
			// the semaphore bounds outstanding work without reshaping
			// the arrival process (a query held here is "queued at the
			// client", exactly like a saturated NIC).
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			m.inflight.Add(1)
			defer m.inflight.Add(-1)
			responses[i], errs[i] = sendQuery(ctx, cfg, m, i, p.service, p.jitter)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("httpharness: query %d: %w", i, err)
		}
	}
	return responses, nil
}

// sendQuery performs one query through the shared RetryPlan: per-attempt
// timeouts, bounded jittered retries on transport errors and 5xx.
func sendQuery(ctx context.Context, cfg GeneratorConfig, m generatorMetrics, i int, service float64, jitterSeed uint64) (QueryResponse, error) {
	body, err := json.Marshal(QueryRequest{ServiceSeconds: service})
	if err != nil {
		return QueryResponse{}, err
	}
	plan := RetryPlan{
		MaxRetries: cfg.MaxRetries,
		Backoff:    cfg.RetryBackoff,
		Seed:       jitterSeed,
		OnRetry:    func(int) { m.retries.Inc() },
	}
	var resp QueryResponse
	err = plan.Do(ctx, func(int) Outcome {
		r, retryable, aerr := attemptQuery(ctx, cfg, i, body)
		if aerr == nil {
			resp = r
		}
		return Outcome{Err: aerr, Retryable: retryable}
	})
	if err != nil {
		// A ctx expiring mid-backoff is the caller abandoning the query,
		// not the query failing — only genuine exhaustion counts.
		if err != ctx.Err() {
			m.failures.Inc()
		}
		return QueryResponse{}, err
	}
	return resp, nil
}

// attemptQuery is a single HTTP attempt. retryable reports whether a
// failure is worth another attempt (transport errors and 5xx yes, 4xx
// and malformed bodies no).
func attemptQuery(ctx context.Context, cfg GeneratorConfig, i int, body []byte) (qr QueryResponse, retryable bool, err error) {
	actx, cancel := context.WithTimeout(ctx, cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, cfg.URL+"/query", bytes.NewReader(body))
	if err != nil {
		return QueryResponse{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return QueryResponse{}, true, err
	}
	defer func() {
		// Drain so the connection is reusable; a failed drain only
		// costs the keep-alive, never the result.
		//lint:ignore errdrop best-effort drain; losing the keep-alive is the only consequence
		_, _ = io.Copy(io.Discard, resp.Body)
		if cerr := resp.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if resp.StatusCode != http.StatusOK {
		return QueryResponse{}, resp.StatusCode >= 500,
			fmt.Errorf("query %d: HTTP %d", i, resp.StatusCode)
	}
	if derr := json.NewDecoder(resp.Body).Decode(&qr); derr != nil {
		return QueryResponse{}, false, derr
	}
	return qr, false, nil
}

// sleepCtx sleeps for d (no-op when non-positive) unless ctx is done
// first; it reports whether the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// FetchStats reads the manager's /stats endpoint.
func FetchStats(url string, client *http.Client) (Stats, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url + "/stats")
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	var s Stats
	return s, json.NewDecoder(resp.Body).Decode(&s)
}
