package httpharness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"mdsprint/internal/dist"
)

// GeneratorConfig drives a query generator replaying a workload against a
// queue manager's URL (Figure 3's front end).
type GeneratorConfig struct {
	// URL is the manager's base URL (the /query endpoint is appended).
	URL string
	// Interarrival and Service are the workload's distributions, in
	// wall-clock seconds (millisecond-scale values keep tests fast).
	Interarrival dist.Dist
	Service      dist.Dist
	// NumQueries to send.
	NumQueries int
	// Seed drives sampling.
	Seed uint64
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// Run replays the workload: it sends queries at the sampled arrival times
// (each on its own goroutine, like independent clients) and collects every
// response. It returns responses in arrival order.
func Run(cfg GeneratorConfig) ([]QueryResponse, error) {
	if cfg.URL == "" || cfg.Interarrival == nil || cfg.Service == nil {
		return nil, fmt.Errorf("httpharness: generator needs URL and distributions")
	}
	if cfg.NumQueries <= 0 {
		return nil, fmt.Errorf("httpharness: NumQueries must be positive")
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	rng := dist.NewRNG(cfg.Seed)
	type planned struct {
		at      time.Duration
		service float64
	}
	plan := make([]planned, cfg.NumQueries)
	at := time.Duration(0)
	for i := range plan {
		at += secondsToDuration(cfg.Interarrival.Sample(rng))
		plan[i] = planned{at: at, service: cfg.Service.Sample(rng)}
	}

	responses := make([]QueryResponse, cfg.NumQueries)
	errs := make([]error, cfg.NumQueries)
	var wg sync.WaitGroup
	start := time.Now()
	for i, p := range plan {
		wg.Add(1)
		go func(i int, p planned) {
			defer wg.Done()
			if d := time.Until(start.Add(p.at)); d > 0 {
				time.Sleep(d)
			}
			body, err := json.Marshal(QueryRequest{ServiceSeconds: p.service})
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := client.Post(cfg.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("query %d: HTTP %d", i, resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return responses, nil
}

// FetchStats reads the manager's /stats endpoint.
func FetchStats(url string, client *http.Client) (Stats, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url + "/stats")
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	var s Stats
	return s, json.NewDecoder(resp.Body).Decode(&s)
}
