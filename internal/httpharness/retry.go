package httpharness

import (
	"context"
	"time"

	"mdsprint/internal/dist"
)

// RetryPlan is the harness's shared retry discipline: a bounded number
// of re-attempts with exponential backoff and ±50% jitter, seeded at
// plan time so one replay's backoff schedule is reproducible. The
// generator's resilient query path and the sprintd serving client both
// run on it, so "how a client behaves under faults" is defined exactly
// once.
type RetryPlan struct {
	// MaxRetries is how many re-attempts follow the first try; 0 means
	// a single attempt with no retry.
	MaxRetries int
	// Backoff is the first retry's base delay, doubled per attempt and
	// jittered ±50% so retry storms from many clients decorrelate.
	Backoff time.Duration
	// Seed drives the jitter RNG.
	Seed uint64
	// OnRetry, when set, observes each re-attempt (1-based) before its
	// backoff wait — the metrics hook.
	OnRetry func(attempt int)
}

// Outcome is one attempt's verdict: its error (nil means success and
// ends the plan), whether another attempt could help, and a lower
// bound on the next backoff wait (a server's Retry-After hint; zero
// means the jittered schedule alone decides).
type Outcome struct {
	Err       error
	Retryable bool
	MinDelay  time.Duration
}

// Do runs attempt (passed the 0-based attempt number) until it
// succeeds, fails terminally, exhausts the retry budget, or ctx
// expires. A ctx expiring mid-backoff returns ctx.Err() itself —
// callers can distinguish "the caller gave up" from "the attempts ran
// out" by comparing against ctx.Err().
func (p RetryPlan) Do(ctx context.Context, attempt func(n int) Outcome) error {
	jitter := dist.NewRNG(p.Seed)
	backoff := p.Backoff
	var last Outcome
	for n := 0; n <= p.MaxRetries; n++ {
		if n > 0 {
			if p.OnRetry != nil {
				p.OnRetry(n)
			}
			d := time.Duration((0.5 + jitter.Float64()) * float64(backoff))
			backoff *= 2
			if d < last.MinDelay {
				d = last.MinDelay
			}
			if !sleepCtx(ctx, d) {
				return ctx.Err()
			}
		}
		last = attempt(n)
		if last.Err == nil || !last.Retryable {
			return last.Err
		}
	}
	return last.Err
}
