package httpharness

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
)

// TestRetryPlanZeroRetries pins the single-attempt contract: MaxRetries
// 0 means exactly one try, no backoff wait, no OnRetry callback, and
// the attempt's error surfaces unchanged.
func TestRetryPlanZeroRetries(t *testing.T) {
	boom := errors.New("boom")
	calls, retries := 0, 0
	err := RetryPlan{MaxRetries: 0, Backoff: time.Hour, OnRetry: func(int) { retries++ }}.
		Do(context.Background(), func(n int) Outcome {
			calls++
			if n != 0 {
				t.Fatalf("attempt number %d, want 0", n)
			}
			return Outcome{Err: boom, Retryable: true}
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 1 || retries != 0 {
		t.Fatalf("calls=%d retries=%d, want 1 attempt and 0 retry callbacks", calls, retries)
	}
}

// TestRetryPlanStopsOnTerminalFailure: a non-retryable outcome ends the
// plan immediately even with budget left.
func TestRetryPlanStopsOnTerminalFailure(t *testing.T) {
	calls := 0
	err := RetryPlan{MaxRetries: 5, Backoff: time.Nanosecond}.
		Do(context.Background(), func(int) Outcome {
			calls++
			return Outcome{Err: fmt.Errorf("HTTP 400"), Retryable: false}
		})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want terminal error after 1 attempt", err, calls)
	}
}

// TestRetryPlanSucceedsAfterRetries: retryable failures burn budget
// until an attempt succeeds; OnRetry sees each re-attempt.
func TestRetryPlanSucceedsAfterRetries(t *testing.T) {
	calls, retries := 0, 0
	err := RetryPlan{MaxRetries: 3, Backoff: time.Nanosecond, OnRetry: func(int) { retries++ }}.
		Do(context.Background(), func(n int) Outcome {
			calls++
			if n < 2 {
				return Outcome{Err: fmt.Errorf("HTTP 503"), Retryable: true}
			}
			return Outcome{}
		})
	if err != nil {
		t.Fatalf("err = %v, want success on third attempt", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3 attempts and 2 retry callbacks", calls, retries)
	}
}

// TestRetryPlanDeadlineMidBackoff pins the abandonment path: when the
// context expires inside a backoff wait, Do returns ctx.Err() itself
// (not the last attempt's error) without running another attempt.
func TestRetryPlanDeadlineMidBackoff(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	calls := 0
	err := RetryPlan{MaxRetries: 10, Backoff: time.Hour}.
		Do(ctx, func(int) Outcome {
			calls++
			return Outcome{Err: fmt.Errorf("HTTP 500"), Retryable: true}
		})
	if err != ctx.Err() {
		t.Fatalf("err = %v, want ctx.Err() %v", err, ctx.Err())
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want exactly the pre-deadline attempt", calls)
	}
}

// TestRetryPlanHonorsMinDelay: an attempt's MinDelay (a server's
// Retry-After) floors the next wait even when the jittered backoff
// would retry sooner.
func TestRetryPlanHonorsMinDelay(t *testing.T) {
	const floor = 60 * time.Millisecond
	start := time.Now()
	calls := 0
	err := RetryPlan{MaxRetries: 1, Backoff: time.Nanosecond}.
		Do(context.Background(), func(int) Outcome {
			calls++
			if calls == 1 {
				return Outcome{Err: fmt.Errorf("HTTP 429"), Retryable: true, MinDelay: floor}
			}
			return Outcome{}
		})
	if err != nil {
		t.Fatalf("err = %v, want success", err)
	}
	if elapsed := time.Since(start); elapsed < floor {
		t.Fatalf("retried after %v, want at least the %v Retry-After floor", elapsed, floor)
	}
}

// TestGeneratorAbandonedBackoffNotCountedFailed: a replay canceled
// mid-backoff reports the context error and does NOT count the query
// as failed — abandonment is the caller's choice, not the server's
// fault.
func TestGeneratorAbandonedBackoffNotCountedFailed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	reg := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := RunCtx(ctx, GeneratorConfig{
		URL:          srv.URL,
		Interarrival: dist.Deterministic{Value: 0.001},
		Service:      dist.Deterministic{Value: 0.001},
		NumQueries:   1,
		Seed:         5,
		MaxRetries:   20,
		RetryBackoff: time.Hour,
		Metrics:      reg,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if v, _ := reg.Value("mdsprint_harness_failures_total"); v != 0 {
		t.Fatalf("failures counter = %v, want 0 for an abandoned backoff", v)
	}
}

// TestGeneratorSemaphoreExhaustionCancel: with one in-flight slot and a
// stalled server, queued queries blocked on the semaphore must unblock
// on cancellation instead of waiting for the slot.
func TestGeneratorSemaphoreExhaustionCancel(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	// Unblock the stalled handler before srv.Close waits on it (defers
	// run last-in first-out).
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunCtx(ctx, GeneratorConfig{
		URL:          srv.URL,
		Interarrival: dist.Deterministic{Value: 0.001},
		Service:      dist.Deterministic{Value: 0.001},
		NumQueries:   4,
		Seed:         9,
		MaxInFlight:  1,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("semaphore waiters took %v to unblock after cancellation", elapsed)
	}
}
