package httpharness

import (
	"net/http/httptest"
	"sort"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/sprint"
	"mdsprint/internal/stats"
)

// startManager spins up a manager behind an httptest server.
func startManager(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return m, srv
}

// msPolicy builds a millisecond-scale sprinting policy.
func msPolicy(timeoutMs, budgetMs, refillMs float64) sprint.Policy {
	return sprint.Policy{
		Timeout:       timeoutMs / 1000,
		BudgetSeconds: budgetMs / 1000,
		RefillTime:    refillMs / 1000,
		Speedup:       2,
	}
}

func TestHTTPPipelineEndToEnd(t *testing.T) {
	// 60 queries of ~40 ms at ~80% utilization with generous budget:
	// the real HTTP pipeline must timestamp, queue FIFO, sprint on
	// timeouts, and answer every query.
	_, srv := startManager(t, Config{
		Policy:  msPolicy(30, 100000, 1000),
		Speedup: 2,
	})
	responses, err := Run(GeneratorConfig{
		URL:          srv.URL,
		Interarrival: dist.NewExponential(1000.0 / 50), // mean 50 ms
		Service:      dist.LogNormalFromMeanCV(0.040, 0.2),
		NumQueries:   60,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(responses) != 60 {
		t.Fatalf("got %d responses", len(responses))
	}
	sprinted := 0
	for i, r := range responses {
		if r.Start < r.Arrival-1e-9 || r.Depart < r.Start {
			t.Fatalf("response %d timestamps out of order: %+v", i, r)
		}
		if r.Sprinted {
			sprinted++
		}
	}
	if sprinted == 0 {
		t.Fatal("no queries sprinted despite a 30 ms timeout")
	}
	// FIFO: dispatch order follows arrival order.
	starts := make([]float64, len(responses))
	arrivals := make([]float64, len(responses))
	for i, r := range responses {
		starts[i] = r.Start
		arrivals[i] = r.Arrival
	}
	if !sort.Float64sAreSorted(arrivals) {
		// Run returns responses in planned arrival order; tiny client
		// scheduling jitter can reorder near-simultaneous arrivals.
		t.Log("arrival jitter detected; skipping strict FIFO check")
	} else if !sort.Float64sAreSorted(starts) {
		t.Fatal("dispatches are not FIFO")
	}
}

func TestHTTPSprintingSpeedsProcessing(t *testing.T) {
	// A whole-execution sprint at speedup 2 halves processing time:
	// with timeout 0 and idle arrivals, depart-start ~= service/2.
	_, srv := startManager(t, Config{
		Policy:  msPolicy(0, 100000, 1000),
		Speedup: 2,
	})
	responses, err := Run(GeneratorConfig{
		URL:          srv.URL,
		Interarrival: dist.Deterministic{Value: 0.120},
		Service:      dist.Deterministic{Value: 0.080},
		NumQueries:   10,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var procs []float64
	for _, r := range responses {
		if !r.Sprinted {
			t.Fatalf("query did not sprint under timeout 0: %+v", r)
		}
		procs = append(procs, r.Depart-r.Start)
	}
	med := stats.Median(procs)
	// 80 ms work at speedup 2 = 40 ms, plus timer/HTTP overhead.
	if med < 0.035 || med > 0.065 {
		t.Fatalf("median sprinted processing %v s, want ~0.040", med)
	}
}

func TestHTTPBudgetExhaustionLimitsSprints(t *testing.T) {
	// Budget worth ~3 fully sprinted queries and no refill: later
	// queries run at the sustained rate.
	_, srv := startManager(t, Config{
		Policy: sprint.Policy{
			Timeout:       0,
			BudgetSeconds: 0.120, // 3 x 40 ms sprinted
			RefillTime:    1e9,
			Speedup:       2,
		},
		Speedup: 2,
	})
	responses, err := Run(GeneratorConfig{
		URL:          srv.URL,
		Interarrival: dist.Deterministic{Value: 0.100},
		Service:      dist.Deterministic{Value: 0.080},
		NumQueries:   12,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sprinted := 0
	for _, r := range responses {
		if r.Sprinted {
			sprinted++
		}
	}
	if sprinted == 0 || sprinted >= len(responses) {
		t.Fatalf("sprinted %d/%d; a tight budget should allow some but not all", sprinted, len(responses))
	}
	stats, err := FetchStats(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 12 {
		t.Fatalf("stats report %d completed", stats.Completed)
	}
	if stats.SprintSeconds > 0.130 {
		t.Fatalf("consumed %v sprint-seconds of a 0.120 budget", stats.SprintSeconds)
	}
}

func TestHTTPValidation(t *testing.T) {
	if _, err := New(Config{Speedup: 0.5}); err == nil {
		t.Fatal("speedup < 1 accepted")
	}
	if _, err := Run(GeneratorConfig{}); err == nil {
		t.Fatal("empty generator config accepted")
	}
	_, srv := startManager(t, Config{Policy: msPolicy(10, 1000, 1000), Speedup: 2})
	if _, err := Run(GeneratorConfig{
		URL:          srv.URL,
		Interarrival: dist.Deterministic{Value: 0.01},
		Service:      dist.Deterministic{Value: 0.01},
		NumQueries:   0,
	}); err == nil {
		t.Fatal("zero queries accepted")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := startManager(t, Config{Policy: msPolicy(10, 1000, 1000), Speedup: 2})
	resp, err := srv.Client().Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /query -> %d, want 405", resp.StatusCode)
	}
	resp, err = srv.Client().Post(srv.URL+"/query", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("empty POST -> %d, want 400", resp.StatusCode)
	}
}
