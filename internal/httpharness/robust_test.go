package httpharness

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mdsprint/internal/dist"
	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
)

func TestRunRetriesInjectedFaults(t *testing.T) {
	// A fault-injecting transport drops and 503s a third of requests;
	// with a retry budget the replay must still answer every query,
	// in order, and count its retries.
	_, srv := startManager(t, Config{
		Policy:  msPolicy(30, 100000, 1000),
		Speedup: 2,
	})
	reg := obs.NewRegistry()
	client := &http.Client{Transport: fault.NewRoundTripper(http.DefaultTransport, fault.HTTPFaultConfig{
		Seed: 41, DropProb: 0.2, ErrorProb: 0.15, Metrics: reg,
	})}
	responses, err := Run(GeneratorConfig{
		URL:          srv.URL,
		Interarrival: dist.Deterministic{Value: 0.005},
		Service:      dist.Deterministic{Value: 0.002},
		NumQueries:   40,
		Seed:         9,
		Client:       client,
		MaxRetries:   6,
		RetryBackoff: time.Millisecond,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(responses) != 40 {
		t.Fatalf("got %d responses, want 40", len(responses))
	}
	for i, r := range responses {
		if r.Depart < r.Start || r.Start < r.Arrival-1e-9 {
			t.Fatalf("response %d has inconsistent timestamps: %+v", i, r)
		}
	}
	if got := reg.Counter("mdsprint_harness_retries_total", "").Value(); got < 1 {
		t.Fatalf("retries counter %v, want >= 1 under 35%% fault rate", got)
	}
	if got := reg.Counter("mdsprint_harness_failures_total", "").Value(); got > 0 {
		t.Fatalf("failures counter %v, want 0 (retry budget covers the fault rate)", got)
	}
}

func TestRunDoesNotRetry4xx(t *testing.T) {
	var hits int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()
	_, err := Run(GeneratorConfig{
		URL:          srv.URL,
		Interarrival: dist.Deterministic{Value: 0.001},
		Service:      dist.Deterministic{Value: 0.001},
		NumQueries:   1,
		Seed:         1,
		MaxRetries:   5,
		RetryBackoff: time.Millisecond,
		Metrics:      obs.NewRegistry(),
	})
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("err = %v, want the HTTP 400", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1 (4xx is not retryable)", hits)
	}
}

func TestRunBoundsInFlightRequests(t *testing.T) {
	// A deliberately slow server with every client launched at once:
	// the semaphore must cap concurrently outstanding requests.
	var mu sync.Mutex
	inflight, peak := 0, 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		inflight++
		if inflight > peak {
			peak = inflight
		}
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		inflight--
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{}`)); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()
	const bound = 3
	_, err := Run(GeneratorConfig{
		URL:          srv.URL,
		Interarrival: dist.Deterministic{Value: 0}, // all queries due immediately
		Service:      dist.Deterministic{Value: 0.001},
		NumQueries:   12,
		Seed:         2,
		MaxInFlight:  bound,
		Metrics:      obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if peak > bound {
		t.Fatalf("peak in-flight %d exceeded the bound %d", peak, bound)
	}
}

func TestRunCtxCancellation(t *testing.T) {
	_, srv := startManager(t, Config{
		Policy:  msPolicy(30, 100000, 1000),
		Speedup: 2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, GeneratorConfig{
		URL:          srv.URL,
		Interarrival: dist.Deterministic{Value: 0.050},
		Service:      dist.Deterministic{Value: 0.010},
		NumQueries:   5,
		Seed:         3,
		Metrics:      obs.NewRegistry(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunRequestTimeoutBounds(t *testing.T) {
	// A server that never answers within the attempt timeout: the query
	// must fail with a deadline error instead of hanging forever.
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer func() {
		close(release)
		srv.Close()
	}()
	start := time.Now()
	_, err := Run(GeneratorConfig{
		URL:            srv.URL,
		Interarrival:   dist.Deterministic{Value: 0.001},
		Service:        dist.Deterministic{Value: 0.001},
		NumQueries:     1,
		Seed:           4,
		RequestTimeout: 50 * time.Millisecond,
		Metrics:        obs.NewRegistry(),
	})
	if err == nil {
		t.Fatal("expected a deadline error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request hung for %v despite a 50 ms attempt timeout", elapsed)
	}
}
