// Package httpharness is the paper's Figure 3 as a running system: a
// query generator that POSTs queries over HTTP to a queue manager, which
// timestamps them, queues them FIFO, dispatches them to an execution
// engine with limited slots, arms per-query sprint timeouts, and accounts
// for a shared sprinting budget — all on real wall-clock time.
//
// The rest of this repository simulates this pipeline in virtual time for
// speed (internal/testbed); this package exists to demonstrate that the
// queue-manager semantics implemented there run unchanged as an actual
// networked service ("communication between generator, manager, and
// execution engine is through HTTP", Section 2.1). Queries carry virtual
// work in milliseconds, so harness tests complete in seconds.
package httpharness

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"mdsprint/internal/sprint"
)

// Config describes the queue manager.
type Config struct {
	// Policy is the sprinting policy; times are in seconds of wall
	// clock (use milliseconds-scale values in tests).
	Policy sprint.Policy
	// Speedup is the processing-rate multiplier during sprints.
	Speedup float64
	// Slots is the execution-engine concurrency (default 1).
	Slots int
}

// QueryRequest is the generator's POST body.
type QueryRequest struct {
	// ServiceSeconds is the query's processing demand at the sustained
	// rate.
	ServiceSeconds float64 `json:"service_seconds"`
}

// QueryResponse reports the manager's timestamps for one completed query,
// in seconds since the manager started.
type QueryResponse struct {
	Arrival  float64 `json:"arrival"`
	Start    float64 `json:"start"`
	Depart   float64 `json:"depart"`
	Sprinted bool    `json:"sprinted"`
	TimedOut bool    `json:"timed_out"`
}

// ResponseTime returns Depart - Arrival.
func (r QueryResponse) ResponseTime() float64 { return r.Depart - r.Arrival }

// Stats is the manager's GET /stats payload.
type Stats struct {
	Completed     int     `json:"completed"`
	Sprinted      int     `json:"sprinted"`
	BudgetLevel   float64 `json:"budget_level"`
	QueueLength   int     `json:"queue_length"`
	RunningSlots  int     `json:"running_slots"`
	SprintSeconds float64 `json:"sprint_seconds"`
}

// query is one in-flight query.
type query struct {
	arrival time.Time
	service float64 // seconds of work at sustained speed

	start    time.Time
	running  bool
	sprint   bool
	pending  bool
	timedOut bool
	sprinted bool

	tau         float64   // work fraction done at segment start
	segStart    time.Time // current segment start
	sprintStart time.Time

	departTimer  *time.Timer
	timeoutTimer *time.Timer

	done chan QueryResponse
}

// Manager is the HTTP queue manager. Create with New, mount Handler on a
// server, and stop with Close.
type Manager struct {
	cfg   Config
	epoch time.Time

	mu      sync.Mutex
	acct    *sprint.Accountant
	queue   []*query
	running []*query
	free    int

	budgetTimer *time.Timer

	completed     int
	sprinted      int
	sprintSeconds float64
	closed        bool
}

// New returns a manager whose clock starts now.
func New(cfg Config) (*Manager, error) {
	if cfg.Speedup < 1 {
		return nil, fmt.Errorf("httpharness: speedup %v must be >= 1", cfg.Speedup)
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, fmt.Errorf("httpharness: %w", err)
	}
	if cfg.Slots == 0 {
		cfg.Slots = 1
	}
	return &Manager{
		cfg:   cfg,
		epoch: time.Now(),
		acct:  sprint.ForPolicy(cfg.Policy),
		free:  cfg.Slots,
	}, nil
}

// now returns seconds since the manager's epoch.
func (m *Manager) now() float64 { return time.Since(m.epoch).Seconds() }

// Handler returns the manager's HTTP mux: POST /query and GET /stats.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", m.handleQuery)
	mux.HandleFunc("/stats", m.handleStats)
	return mux
}

func (m *Manager) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.ServiceSeconds <= 0 {
		http.Error(w, "bad query body", http.StatusBadRequest)
		return
	}
	q := &query{
		arrival: time.Now(),
		service: req.ServiceSeconds,
		done:    make(chan QueryResponse, 1),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		http.Error(w, "manager closed", http.StatusServiceUnavailable)
		return
	}
	m.queue = append(m.queue, q)
	if p := m.cfg.Policy; !p.SprintingDisabled() {
		q.timeoutTimer = time.AfterFunc(secondsToDuration(p.Timeout), func() { m.onTimeout(q) })
	}
	m.dispatchLocked()
	m.mu.Unlock()

	resp := <-q.done
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errdrop best-effort response write; the client has gone if this fails
	json.NewEncoder(w).Encode(resp)
}

func (m *Manager) handleStats(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	s := Stats{
		Completed:     m.completed,
		Sprinted:      m.sprinted,
		BudgetLevel:   m.acct.Level(m.now()),
		QueueLength:   len(m.queue),
		RunningSlots:  m.cfg.Slots - m.free,
		SprintSeconds: m.sprintSeconds,
	}
	m.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errdrop best-effort response write; the client has gone if this fails
	json.NewEncoder(w).Encode(s)
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// dispatchLocked moves queued queries into free slots. Callers hold m.mu.
func (m *Manager) dispatchLocked() {
	for m.free > 0 && len(m.queue) > 0 {
		q := m.queue[0]
		m.queue = m.queue[1:]
		m.free--
		q.running = true
		q.start = time.Now()
		q.segStart = q.start
		q.tau = 0
		m.running = append(m.running, q)
		if q.pending && m.acct.CanSprint(m.now()) {
			m.engageLocked(q)
		} else {
			q.departTimer = time.AfterFunc(secondsToDuration(q.service), func() { m.depart(q) })
		}
	}
}

// progressLocked rolls q's completed-work fraction forward to now.
func (m *Manager) progressLocked(q *query) float64 {
	elapsed := time.Since(q.segStart).Seconds()
	rate := 1.0
	if q.sprint {
		rate = m.cfg.Speedup
	}
	return math.Min(q.tau+elapsed*rate/q.service, 1)
}

func (m *Manager) onTimeout(q *query) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	q.timedOut = true
	if !q.running {
		q.pending = true
		return
	}
	if !q.sprint && m.acct.CanSprint(m.now()) {
		q.tau = m.progressLocked(q)
		q.segStart = time.Now()
		m.engageLocked(q)
	}
}

// engageLocked switches q to the sprint rate and replans its departure.
// Callers hold m.mu and must have rolled tau/segStart forward.
func (m *Manager) engageLocked(q *query) {
	m.acct.StartSprint(m.now())
	q.sprint = true
	q.sprinted = true
	q.sprintStart = time.Now()
	remaining := (1 - q.tau) * q.service / m.cfg.Speedup
	if q.departTimer != nil {
		q.departTimer.Stop()
	}
	q.departTimer = time.AfterFunc(secondsToDuration(remaining), func() { m.depart(q) })
	m.replanBudgetLocked()
}

// replanBudgetLocked (re)arms the budget-exhaustion timer.
func (m *Manager) replanBudgetLocked() {
	if m.budgetTimer != nil {
		m.budgetTimer.Stop()
		m.budgetTimer = nil
	}
	tte := m.acct.TimeToEmpty(m.now())
	if math.IsInf(tte, 1) {
		return
	}
	m.budgetTimer = time.AfterFunc(secondsToDuration(tte), m.onBudgetEmpty)
}

func (m *Manager) onBudgetEmpty() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	for _, q := range m.running {
		if !q.sprint {
			continue
		}
		q.tau = m.progressLocked(q)
		q.segStart = time.Now()
		m.stopSprintLocked(q)
		remaining := (1 - q.tau) * q.service
		if q.departTimer != nil {
			q.departTimer.Stop()
		}
		q.departTimer = time.AfterFunc(secondsToDuration(remaining), func(qq *query) func() {
			return func() { m.depart(qq) }
		}(q))
	}
	m.replanBudgetLocked()
}

// stopSprintLocked ends q's sprint accounting.
func (m *Manager) stopSprintLocked(q *query) {
	m.acct.StopSprint(m.now())
	m.sprintSeconds += time.Since(q.sprintStart).Seconds()
	q.sprint = false
}

func (m *Manager) depart(q *query) {
	m.mu.Lock()
	if m.closed || !q.running {
		m.mu.Unlock()
		return
	}
	departAt := time.Now()
	if q.sprint {
		m.stopSprintLocked(q)
		m.replanBudgetLocked()
	}
	if q.timeoutTimer != nil {
		q.timeoutTimer.Stop()
	}
	for i, rq := range m.running {
		if rq == q {
			m.running = append(m.running[:i], m.running[i+1:]...)
			break
		}
	}
	q.running = false
	m.completed++
	if q.sprinted {
		m.sprinted++
	}
	m.free++
	m.dispatchLocked()
	// Snapshot the response while still holding m.mu: a late timeout
	// timer may write q.timedOut under the lock after we release it.
	resp := QueryResponse{
		Arrival:  q.arrival.Sub(m.epoch).Seconds(),
		Start:    q.start.Sub(m.epoch).Seconds(),
		Depart:   departAt.Sub(m.epoch).Seconds(),
		Sprinted: q.sprinted,
		TimedOut: q.timedOut,
	}
	m.mu.Unlock()

	q.done <- resp
}

// Close stops all timers; in-flight handlers receive no response and the
// manager rejects new queries.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	if m.budgetTimer != nil {
		m.budgetTimer.Stop()
	}
	for _, q := range append(append([]*query{}, m.queue...), m.running...) {
		if q.departTimer != nil {
			q.departTimer.Stop()
		}
		if q.timeoutTimer != nil {
			q.timeoutTimer.Stop()
		}
	}
}
