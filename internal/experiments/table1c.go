package experiments

import (
	"fmt"

	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/sprint"
	"mdsprint/internal/workload"
)

// Table1CRow compares one workload's measured sustained/burst throughput
// against the published Table 1(C) values.
type Table1CRow struct {
	Workload             string
	PaperSustainedQPH    float64
	PaperBurstQPH        float64
	MeasuredSustainedQPH float64
	MeasuredBurstQPH     float64
}

// Table1CResult validates the testbed against the paper's throughput
// table on the DVFS platform.
type Table1CResult struct {
	Rows []Table1CRow
}

// Table1C measures every catalog workload with the profiler.
func Table1C(lab *Lab) Table1CResult {
	var out Table1CResult
	for _, c := range workload.Catalog() {
		p := &profiler.Profiler{
			Mix:           workload.SingleClass(c),
			Mechanism:     mech.DVFS{},
			QueriesPerRun: lab.Scale.ProfQueries,
			Seed:          lab.Scale.Seed + 43,
		}
		mu, _, _ := p.MeasureServiceRate()
		mum, _ := p.MeasureMarginalRate()
		out.Rows = append(out.Rows, Table1CRow{
			Workload:             c.Name,
			PaperSustainedQPH:    c.SustainedQPH,
			PaperBurstQPH:        c.BurstQPH,
			MeasuredSustainedQPH: sprint.ToQPH(mu),
			MeasuredBurstQPH:     sprint.ToQPH(mum),
		})
	}
	return out
}

// MaxRelError returns the worst relative deviation from the paper values.
func (r Table1CResult) MaxRelError() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		for _, pair := range [][2]float64{
			{row.MeasuredSustainedQPH, row.PaperSustainedQPH},
			{row.MeasuredBurstQPH, row.PaperBurstQPH},
		} {
			if e := abs(pair[0]-pair[1]) / pair[1]; e > worst {
				worst = e
			}
		}
	}
	return worst
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Table renders the comparison.
func (r Table1CResult) Table() Table {
	t := Table{
		Title:   "Table 1(C) — sustained/burst throughput on DVFS (paper vs measured)",
		Columns: []string{"workload", "paper qph", "measured qph", "paper burst", "measured burst"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Workload,
			fmt.Sprintf("%.0f", row.PaperSustainedQPH),
			fmt.Sprintf("%.1f", row.MeasuredSustainedQPH),
			fmt.Sprintf("%.0f", row.PaperBurstQPH),
			fmt.Sprintf("%.1f", row.MeasuredBurstQPH),
		)
	}
	t.AddNote("worst relative deviation from published throughput: %s", pct(r.MaxRelError()))
	return t
}
