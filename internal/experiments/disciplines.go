package experiments

import (
	"fmt"

	"mdsprint/internal/explore"
	"mdsprint/internal/mech"
	"mdsprint/internal/policies"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/queuesim/dispatch"
	"mdsprint/internal/workload"
)

// DisciplineSpec names one scheduling configuration by its spec strings —
// the same grammar sprintctl and the config surface accept — so the
// sweep exercises the parse layer end-to-end.
type DisciplineSpec struct {
	// Discipline is a queuesim.ParseDiscipline spec ("fifo", "srpt",
	// "serpt(0.3)", ...).
	Discipline string
	// Dispatch is a dispatch.Parse spec ("jsq", "rnd(2)", ...); empty
	// keeps the single central queue.
	Dispatch string
	// Servers is the fan-out width when Dispatch is set.
	Servers int
}

// DefaultDisciplineSpecs is the panel the EXPERIMENTS.md table records:
// every discipline on the central queue, plus two-queue fan-outs of the
// FIFO baseline and the strongest size-based discipline.
func DefaultDisciplineSpecs() []DisciplineSpec {
	return []DisciplineSpec{
		{Discipline: "fifo"},
		{Discipline: "lifo"},
		{Discipline: "srpt"},
		{Discipline: "serpt(0.3)"},
		{Discipline: "ps"},
		{Discipline: "fifo", Dispatch: "jsq", Servers: 2},
		{Discipline: "srpt", Dispatch: "rnd(2)", Servers: 2},
	}
}

// DisciplineSweepResult is the joint discipline x timeout study: each
// spec's annealed sprint timeout and model-predicted mean response time,
// on the Section 4.3 throttled-Jacobi workload at 80% utilization.
type DisciplineSweepResult struct {
	Outcomes []policies.JointOutcome
	// Best indexes the winning outcome.
	Best int
}

// DisciplineSweep parses the specs, profiles the throttled-Jacobi
// workload, and runs the joint discipline x sprint-timeout search at the
// lab's scale. A nil specs uses DefaultDisciplineSpecs.
func DisciplineSweep(lab *Lab, specs []DisciplineSpec) (DisciplineSweepResult, error) {
	var res DisciplineSweepResult
	if specs == nil {
		specs = DefaultDisciplineSpecs()
	}
	cands := make([]policies.JointCandidate, len(specs))
	for i, s := range specs {
		d, err := queuesim.ParseDiscipline(s.Discipline)
		if err != nil {
			return res, fmt.Errorf("experiments: spec %d: %w", i, err)
		}
		cands[i] = policies.JointCandidate{Discipline: d}
		if s.Dispatch != "" {
			dsp, err := dispatch.Parse(s.Dispatch)
			if err != nil {
				return res, fmt.Errorf("experiments: spec %d: %w", i, err)
			}
			cands[i].Dispatch = dsp
			cands[i].Servers = s.Servers
		}
	}

	// The Section 4.3 conditions the policy comparisons use: Jacobi
	// under 20% CPU throttling. The sweep needs only the rates and
	// service samples, so measure those directly instead of profiling a
	// full condition grid.
	p := &profiler.Profiler{
		Mix:           workload.SingleClass(workload.MustByName("Jacobi")),
		Mechanism:     mech.NewThrottle(0.20),
		QueriesPerRun: lab.Scale.ProfQueries,
		Seed:          lab.Scale.Seed + 211,
	}
	mu, samples, _ := p.MeasureServiceRate()
	mum, _ := p.MeasureMarginalRate()
	ds := &profiler.Dataset{
		MixName: "Jacobi", MechName: "Throttle20%",
		ServiceRate: mu, MarginalRate: mum, ServiceSamples: samples,
	}
	// BudgetPct is deliberately tight: at 80% utilization and ~5x
	// speedup, sprint demand is ~16% of capacity, so a 30% budget would
	// let every candidate sprint every query (timeout 0) and erase the
	// discipline differences; at 10% the budget exhausts, queries queue
	// at the sustained rate part of each window, and the ready-queue
	// order matters.
	ctx := policies.Context{
		Dataset:     ds,
		ArrivalRate: 0.8 * mu,
		RefillTime:  600,
		BudgetPct:   0.10,
		SimQueries:  lab.Scale.SimQueries,
		SimReps:     lab.Scale.SimReps,
		Seed:        lab.Scale.Seed + 223,
		Engine:      lab.Engine(),
	}
	opts := explore.BatchOptions{
		Options: explore.Options{MaxIter: lab.Scale.AnnealIter, Seed: lab.Scale.Seed + 227},
	}
	outs, best, err := policies.JointSearch(ctx, cands, opts)
	if err != nil {
		return res, err
	}
	res.Outcomes = outs
	res.Best = best
	return res, nil
}

// Table renders the sweep for EXPERIMENTS.md.
func (r DisciplineSweepResult) Table() Table {
	t := Table{
		Title:   "Scheduling disciplines — joint discipline x timeout search (throttled Jacobi, 80% utilization)",
		Columns: []string{"configuration", "best timeout", "mean RT", "vs fifo"},
	}
	var fifoRT float64
	for _, o := range r.Outcomes {
		if o.Candidate.Label() == "fifo" {
			fifoRT = o.MeanRT
			break
		}
	}
	for i, o := range r.Outcomes {
		to := secs(o.Timeout)
		if o.Timeout < 0 {
			to = "no-sprint"
		}
		vs := "-"
		if fifoRT > 0 {
			vs = ratio(o.MeanRT / fifoRT)
		}
		cells := []string{o.Candidate.Label(), to, secs(o.MeanRT), vs}
		if i == r.Best {
			cells[0] += " *"
		}
		t.AddRow(cells...)
	}
	t.AddNote("* lowest optimized mean RT; each row anneals its own sprint timeout (Equation 4), ps runs without sprinting")
	return t
}
