package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// sharedLab caches profiling and training across tests in this package.
var (
	labOnce   sync.Once
	sharedLab *Lab
)

func lab() *Lab {
	labOnce.Do(func() { sharedLab = NewLab(Quick()) })
	return sharedLab
}

func TestScalePresets(t *testing.T) {
	q, f := Quick(), Full()
	if q.GridSamples >= f.GridSamples || q.ProfQueries >= f.ProfQueries {
		t.Fatal("quick scale should be smaller than full")
	}
	if len(f.Workloads) != 7 {
		t.Fatalf("full scale covers %d workloads, want all 7", len(f.Workloads))
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 42)
	s := tab.String()
	for _, want := range []string{"## T", "a", "bb", "note: hello 42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFig1TimeoutSensitivity(t *testing.T) {
	r := Fig1(lab())
	if len(r.Settings) != 3 {
		t.Fatalf("got %d settings", len(r.Settings))
	}
	if r.Improvement <= 1.02 {
		t.Fatalf("timeout choice moved RT by only %v; Figure 1 needs visible sensitivity", r.Improvement)
	}
	for _, s := range r.Settings {
		if s.Sprinted == 0 {
			t.Fatalf("timeout %v: nothing sprinted", s.Timeout)
		}
		if len(s.Timeline) == 0 {
			t.Fatal("missing timeline records")
		}
	}
	_ = r.Table().String()
}

func TestTable1CWithinTolerance(t *testing.T) {
	r := Table1C(lab())
	if len(r.Rows) != 7 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	if e := r.MaxRelError(); e > 0.12 {
		t.Fatalf("measured throughput deviates %v from Table 1(C)", e)
	}
	_ = r.Table().String()
}

func TestFig7HybridWins(t *testing.T) {
	r, err := Fig7(lab())
	if err != nil {
		t.Fatal(err)
	}
	hybrid := r.MedianError("Hybrid", "Overall")
	noml := r.MedianError("No-ML", "Overall")
	ann := r.MedianError("ANN", "Overall")
	annMore := r.MedianError("ANN +more data", "Overall")
	if hybrid > 0.20 {
		t.Fatalf("hybrid overall median error %v", hybrid)
	}
	if hybrid >= noml {
		t.Fatalf("hybrid (%v) should beat No-ML (%v)", hybrid, noml)
	}
	if hybrid >= ann {
		t.Fatalf("hybrid (%v) should beat ANN (%v)", hybrid, ann)
	}
	if math.IsNaN(annMore) {
		t.Fatal("ANN+more data missing")
	}
	_ = r.Table().String()
}

func TestFig8SeriesShape(t *testing.T) {
	a, err := Fig8A(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(lab().Scale.Workloads) {
		t.Fatalf("Fig8A series %d", len(a.Series))
	}
	for _, s := range a.Series {
		if len(s.Errors) == 0 {
			t.Fatalf("series %s empty", s.Label)
		}
		if s.Median() > 0.30 {
			t.Fatalf("hybrid %s median error %v", s.Label, s.Median())
		}
	}
	b, err := Fig8B(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Series) != len(a.Series) {
		t.Fatal("Fig8B series count mismatch")
	}
	_ = a.Table().String()
	_ = b.Table().String()
}

func TestFig8CAcrossHardware(t *testing.T) {
	r, err := Fig8C(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("got %d hardware series", len(r.Series))
	}
	for _, s := range r.Series {
		if s.Median() > 0.30 {
			t.Fatalf("%s median error %v", s.Label, s.Median())
		}
	}
	if r.CoreScaleDenseMedian > 0.25 {
		t.Fatalf("dense core-scaling median %v", r.CoreScaleDenseMedian)
	}
	_ = r.Table().String()
}

func TestFig9Mixes(t *testing.T) {
	r, err := Fig9(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("got %d mix series", len(r.Series))
	}
	for _, s := range r.Series {
		if s.Median() > 0.35 {
			t.Fatalf("%s median error %v", s.Label, s.Median())
		}
	}
	_ = r.Table().String()
}

func TestFig10Groups(t *testing.T) {
	r, err := Fig10(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Groups) < 7 {
		t.Fatalf("got %d groups, want most of the 10 (small grids may drop a level)", len(r.Groups))
	}
	for _, g := range r.Groups {
		if len(g.Errors) == 0 {
			t.Fatalf("group %s/%s empty", g.Factor, g.Level)
		}
	}
	if out := r.Median("cluster", "out"); out < 0 {
		t.Fatal("cluster-out group missing")
	}
	_ = r.Table().String()
}

func TestFig11Throughput(t *testing.T) {
	r := Fig11(lab())
	if len(r.Points) == 0 {
		t.Fatal("no measurements")
	}
	// CoV must shrink as simulated queries grow (the variance knee).
	byWorkers := map[int][]Fig11Point{}
	for _, p := range r.Points {
		byWorkers[p.Workers] = append(byWorkers[p.Workers], p)
		if p.PredictionsPerMin <= 0 {
			t.Fatalf("non-positive throughput: %+v", p)
		}
	}
	for w, pts := range byWorkers {
		first, last := pts[0], pts[len(pts)-1]
		if last.CoV >= first.CoV {
			t.Errorf("workers=%d: CoV did not shrink with more queries (%v -> %v)", w, first.CoV, last.CoV)
		}
		if last.PredictionsPerMin >= first.PredictionsPerMin {
			t.Errorf("workers=%d: throughput should fall with more queries", w)
		}
	}
	if r.Scaling <= 1 && r.MaxCPUs > 1 {
		t.Fatalf("no multi-core scaling: %v", r.Scaling)
	}
	_ = r.Table().String()
}

func TestMMKValidation(t *testing.T) {
	r := MMKValidation(lab())
	if r.MedianError > 0.06 {
		t.Fatalf("M/M/1 median error %v (paper reports 5%%)", r.MedianError)
	}
	_ = r.Table().String()
}

func TestFig14Arithmetic(t *testing.T) {
	// Synthetic Figure 13 outcome: AWS hosts 1, sprinting hosts 4.
	f13 := Fig13Result{Rows: []Fig13Row{
		{Combo: Combos()[2].Name, Approach: "aws", Hosted: 1},
		{Combo: Combos()[2].Name, Approach: "model-driven sprinting", Hosted: 4},
	}}
	r := Fig14(f13)
	if r.HybridCrossover <= 0 || r.ANNCrossover <= r.HybridCrossover {
		t.Fatalf("crossovers wrong: hybrid %v ann %v", r.HybridCrossover, r.ANNCrossover)
	}
	if r.LifetimeRatio <= 1 {
		t.Fatalf("lifetime ratio %v", r.LifetimeRatio)
	}
	// Revenue curves never decrease.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Hybrid < r.Points[i-1].Hybrid || r.Points[i].AWS < r.Points[i-1].AWS {
			t.Fatal("revenue decreased over time")
		}
	}
	_ = r.Table().String()
}
