package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Table is a formatted experiment result: what cmd/benchgen prints and
// EXPERIMENTS.md records.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a fraction as a percentage ("-" for NaN, e.g. an empty
// grouping at quick scale).
func pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}

// secs formats seconds.
func secs(v float64) string { return fmt.Sprintf("%.1fs", v) }

// ratio formats a multiplier.
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }
