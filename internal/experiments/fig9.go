package experiments

import (
	"sort"

	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/workload"
)

// Fig9Result holds hybrid prediction-error CDFs for the two query mixes
// of Section 3.4 under heavy-tailed (Pareto) arrivals — the G/G/K setting
// with no closed-form queuing model.
type Fig9Result struct {
	Series []CDFSeries
}

// fig9Grid biases the paper grid toward Pareto arrivals, as the mix study
// does.
func fig9Grid() profiler.Grid {
	g := profiler.PaperGrid()
	g.ArrivalKinds = []dist.Kind{dist.KindPareto, dist.KindExponential}
	return g
}

// Fig9 profiles Mix I (Jacobi+Stream) and Mix II (4-way) and evaluates
// the hybrid model on held-out conditions.
func Fig9(lab *Lab) (Fig9Result, error) {
	var res Fig9Result
	for _, mix := range []workload.Mix{workload.MixI(), workload.MixII()} {
		ds := lab.DatasetWithGrid(mix, mech.DVFS{}, "fig9", fig9Grid())
		train, test := lab.Split(ds, 0.8)
		h, err := lab.Hybrid(ds, train, "fig9")
		if err != nil {
			return res, err
		}
		ev, err := core.Evaluate(h, ds, test)
		if err != nil {
			return res, err
		}
		errs := append([]float64(nil), ev.Errors...)
		sort.Float64s(errs)
		res.Series = append(res.Series, CDFSeries{Label: mix.Name, Errors: errs})
	}
	return res, nil
}

// Table renders the mix-error CDFs.
func (r Fig9Result) Table() Table {
	t := cdfTable("Figure 9 — prediction-error CDF for mixed workloads (Pareto arrivals)", r.Series,
		"paper: Mix I median 7%% (75%% of predictions <15%%); Mix II median 10%% (60%% <15%%)")
	for _, s := range r.Series {
		t.AddNote("%s: %s of predictions below 15%% error", s.Label, pct(s.FracBelow(0.15)))
	}
	return t
}
