package experiments

import (
	"fmt"
	"math"

	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/stats"
	"mdsprint/internal/sweep"
	"mdsprint/internal/workload"
)

// MMKRow is one closed-form comparison.
type MMKRow struct {
	Rho       float64
	Analytic  float64
	Simulated float64
	RelError  float64
}

// MMKResult validates the queue simulator against classic M/M/1 response
// times (the paper reports 5% median error on classic MMK workloads,
// Section 3.1).
type MMKResult struct {
	Rows        []MMKRow
	MedianError float64
}

// MMKValidation sweeps utilization against the closed form. The whole
// sweep goes through the lab's sweep engine as one batch; a single
// replication is bit-identical to a direct queuesim run.
func MMKValidation(lab *Lab) MMKResult {
	var res MMKResult
	mu := 0.05
	n := lab.Scale.SimQueries * 10
	rhos := []float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95}
	tasks := make([]sweep.Task, len(rhos))
	for i, rho := range rhos {
		tasks[i] = sweep.Task{
			Params: queuesim.Params{
				ArrivalRate: rho * mu,
				Service:     dist.NewExponential(mu),
				ServiceRate: mu,
				Timeout:     -1,
				NumQueries:  n,
				Warmup:      n / 10,
				Seed:        lab.Scale.Seed + 71,
			},
			Reps: 1,
		}
	}
	sims, err := lab.Engine().MeanRTs(tasks)
	if err != nil {
		panic(err)
	}
	var errs []float64
	for i, rho := range rhos {
		analytic := 1 / (mu - rho*mu)
		e := math.Abs(sims[i]-analytic) / analytic
		errs = append(errs, e)
		res.Rows = append(res.Rows, MMKRow{Rho: rho, Analytic: analytic, Simulated: sims[i], RelError: e})
	}
	res.MedianError = stats.Median(errs)
	return res
}

// Table renders the validation.
func (r MMKResult) Table() Table {
	t := Table{
		Title:   "Simulator validation — M/M/1 closed form vs timeout-aware simulator",
		Columns: []string{"utilization", "analytic RT", "simulated RT", "error"},
	}
	for _, row := range r.Rows {
		t.AddRow(pct(row.Rho), secs(row.Analytic), secs(row.Simulated), pct(row.RelError))
	}
	t.AddNote("median error %s (paper: 5%% on classic MMK workloads)", pct(r.MedianError))
	return t
}

// DataScalingRow is one training-set size's ANN accuracy.
type DataScalingRow struct {
	TrainObservations int
	ANNMedianError    float64
}

// DataScalingResult reproduces the Section 3.1 claim that the direct-
// mapping ANN needs a multiple of the hybrid model's training data to
// match its accuracy.
type DataScalingResult struct {
	HybridMedianError float64
	HybridTrainSize   int
	Rows              []DataScalingRow
	// RequiredMultiple is the smallest measured training-set multiple
	// at which the ANN matches the hybrid (0 if it never does).
	RequiredMultiple float64
}

// DataScaling trains the hybrid once on the base split and the ANN on
// growing training sets drawn from extra profiling passes.
func DataScaling(lab *Lab) (DataScalingResult, error) {
	var res DataScalingResult
	c := workload.MustByName(lab.Scale.Workloads[0])
	mix := workload.SingleClass(c)
	ds := lab.Dataset(mix, mech.DVFS{})
	train, test := lab.Split(ds, 0.8)
	res.HybridTrainSize = len(train)

	h, err := lab.Hybrid(ds, train, "fig7")
	if err != nil {
		return res, err
	}
	evH, err := core.Evaluate(h, ds, test)
	if err != nil {
		return res, err
	}
	res.HybridMedianError = stats.Median(evH.Errors)

	// Pool of extra observations (conditions the test set never sees),
	// large enough to support several training-set doublings.
	extra := lab.extraObservations(mix, test, lab.Scale.GridSamples*4)
	pool := append(append([]profiler.Observation{}, train...), extra...)

	for _, mult := range []float64{1, 2, 4, 8} {
		size := int(float64(len(train)) * mult)
		if size > len(pool) {
			size = len(pool)
		}
		// Best of two seeds: deep MLPs on tiny datasets are erratic,
		// and the paper's comparison assumes a competently trained
		// ANN at each size.
		med := math.Inf(1)
		for attempt := 0; attempt < 2; attempt++ {
			cfg := lab.annConfig()
			cfg.Seed += uint64(size + attempt*7919)
			m, err := core.TrainANN([]core.TrainingSet{{Dataset: ds, Observations: pool[:size]}}, cfg)
			if err != nil {
				return res, err
			}
			ev, err := core.Evaluate(m, ds, test)
			if err != nil {
				return res, err
			}
			if e := stats.Median(ev.Errors); e < med {
				med = e
			}
		}
		res.Rows = append(res.Rows, DataScalingRow{TrainObservations: size, ANNMedianError: med})
		if res.RequiredMultiple <= 0 && med <= res.HybridMedianError*1.1 {
			res.RequiredMultiple = float64(size) / float64(len(train))
		}
		if size == len(pool) {
			break
		}
	}
	return res, nil
}

// Table renders the scaling study.
func (r DataScalingResult) Table() Table {
	t := Table{
		Title:   "Section 3.1 — ANN training-data requirement vs the hybrid model",
		Columns: []string{"ANN train size", "ANN median error"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.TrainObservations), pct(row.ANNMedianError))
	}
	t.AddNote("hybrid: %s median error with %d training observations", pct(r.HybridMedianError), r.HybridTrainSize)
	if r.RequiredMultiple > 0 {
		t.AddNote("ANN matches hybrid at ~%.0fx the training data (paper: 6x-54x depending on workload)", r.RequiredMultiple)
	} else {
		t.AddNote("ANN did not match hybrid accuracy within the measured sizes (paper: needs 6x-54x more data)")
	}
	return t
}
