package experiments

import (
	"sort"

	"mdsprint/internal/core"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/stats"
	"mdsprint/internal/workload"
)

// CDFSeries is one labelled error distribution (a curve in Figures 8-9).
type CDFSeries struct {
	Label  string
	Errors []float64 // sorted ascending
}

// Median returns the series' median error.
func (s CDFSeries) Median() float64 { return stats.Median(s.Errors) }

// FracBelow returns the fraction of errors at or below e.
func (s CDFSeries) FracBelow(e float64) float64 { return stats.CDFAt(s.Errors, e) }

// Fig8Result holds the per-workload error CDFs for one model family
// (Figure 8A for Hybrid, 8B for ANN).
type Fig8Result struct {
	Model  string
	Series []CDFSeries
}

// Fig8A evaluates the hybrid model per workload on DVFS.
func Fig8A(lab *Lab) (Fig8Result, error) {
	return fig8(lab, "Hybrid")
}

// Fig8B evaluates the ANN baseline per workload on DVFS.
func Fig8B(lab *Lab) (Fig8Result, error) {
	return fig8(lab, "ANN")
}

func fig8(lab *Lab, modelName string) (Fig8Result, error) {
	res := Fig8Result{Model: modelName}
	for _, c := range lab.Classes() {
		mix := workload.SingleClass(c)
		ds := lab.Dataset(mix, mech.DVFS{})
		train, test := lab.Split(ds, 0.8)
		var m core.Model
		var err error
		switch modelName {
		case "Hybrid":
			m, err = lab.Hybrid(ds, train, "fig7")
		case "ANN":
			m, err = lab.ANN(ds, train)
		}
		if err != nil {
			return res, err
		}
		ev, err := core.Evaluate(m, ds, test)
		if err != nil {
			return res, err
		}
		errs := append([]float64(nil), ev.Errors...)
		sort.Float64s(errs)
		res.Series = append(res.Series, CDFSeries{Label: c.Name, Errors: errs})
	}
	return res, nil
}

// Fig8CResult holds Jacobi's hybrid error CDFs across sprinting hardware,
// plus the Section 3.3 densified core-scaling rerun.
type Fig8CResult struct {
	Series []CDFSeries
	// CoreScaleDenseMedian is the core-scaling median error after
	// adding the 60%/85% arrival centroids and a 90/10 split.
	CoreScaleDenseMedian float64
}

// Fig8C evaluates the hybrid model for Jacobi on DVFS, EC2DVFS and
// CoreScale.
func Fig8C(lab *Lab) (Fig8CResult, error) {
	var res Fig8CResult
	jacobi := workload.SingleClass(workload.MustByName("Jacobi"))
	for _, m := range mech.All() {
		ds := lab.Dataset(jacobi, m)
		train, test := lab.Split(ds, 0.8)
		h, err := lab.Hybrid(ds, train, "fig8c")
		if err != nil {
			return res, err
		}
		ev, err := core.Evaluate(h, ds, test)
		if err != nil {
			return res, err
		}
		errs := append([]float64(nil), ev.Errors...)
		sort.Float64s(errs)
		res.Series = append(res.Series, CDFSeries{Label: m.Name(), Errors: errs})
	}
	// Section 3.3's fix: more data — extra arrival-rate centroids (60%
	// and 85%), twice the sampling budget, and a 90/10 split — drops
	// core-scaling error below 5% in the paper.
	denseScale := lab.Scale
	denseScale.GridSamples *= 2
	denseLab := NewLab(denseScale)
	dsDense := denseLab.DatasetWithGrid(jacobi, mech.CoreScale{}, "dense", profiler.DenseGrid())
	train, test := profiler.SplitObservations(dsDense.Observations, 0.9, lab.Scale.Seed+61)
	h, err := lab.Hybrid(dsDense, train, "fig8c-dense")
	if err != nil {
		return res, err
	}
	ev, err := core.Evaluate(h, dsDense, test)
	if err != nil {
		return res, err
	}
	res.CoreScaleDenseMedian = stats.Median(ev.Errors)
	return res, nil
}

// cdfTable renders CDF series as quantile rows.
func cdfTable(title string, series []CDFSeries, paperNote string) Table {
	t := Table{
		Title:   title,
		Columns: []string{"series", "p25", "median", "p75", "p90", "frac <=10%"},
	}
	for _, s := range series {
		t.AddRow(s.Label,
			pct(stats.Quantile(s.Errors, 0.25)),
			pct(s.Median()),
			pct(stats.Quantile(s.Errors, 0.75)),
			pct(stats.Quantile(s.Errors, 0.90)),
			pct(s.FracBelow(0.10)),
		)
	}
	if paperNote != "" {
		t.AddNote("%s", paperNote)
	}
	return t
}

// Table renders Figure 8A/8B.
func (r Fig8Result) Table() Table {
	note := "paper (Hybrid): median <5%% for K-means/Stream/Jacobi/Leuk, <10%% for all workloads"
	if r.Model == "ANN" {
		note = "paper (ANN): higher error than Hybrid on every workload; best on low-variance kernels"
	}
	return cdfTable("Figure 8"+map[string]string{"Hybrid": "A", "ANN": "B"}[r.Model]+
		" — prediction-error CDF per workload ("+r.Model+", DVFS)", r.Series, note)
}

// Table renders Figure 8C.
func (r Fig8CResult) Table() Table {
	t := cdfTable("Figure 8C — hybrid error CDF across sprinting hardware (Jacobi)", r.Series,
		"paper: DVFS/EC2DVFS median <4%%; CoreScale 8%% median, fixed by denser sampling")
	t.AddNote("CoreScale with 60%%/85%% centroids and 90/10 split: median %s (paper: below 5%%)",
		pct(r.CoreScaleDenseMedian))
	return t
}
