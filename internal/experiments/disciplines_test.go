package experiments

import (
	"strings"
	"testing"
)

func TestDisciplineSweepQuick(t *testing.T) {
	lab := NewLab(Quick())
	res, err := DisciplineSweep(lab, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(DefaultDisciplineSpecs()) {
		t.Fatalf("%d outcomes for %d specs", len(res.Outcomes), len(DefaultDisciplineSpecs()))
	}
	if res.Best < 0 || res.Best >= len(res.Outcomes) {
		t.Fatalf("best index %d", res.Best)
	}
	var fifoRT, srptRT float64
	for _, o := range res.Outcomes {
		if !(o.MeanRT > 0) {
			t.Fatalf("%s: mean RT %v", o.Candidate.Label(), o.MeanRT)
		}
		switch o.Candidate.Label() {
		case "fifo":
			fifoRT = o.MeanRT
		case "srpt":
			srptRT = o.MeanRT
		}
	}
	// SRPT minimizes mean response time among single-queue disciplines;
	// with both timeouts annealed it must not lose to FIFO by more than
	// annealing noise.
	if srptRT > fifoRT*1.10 {
		t.Fatalf("optimized srpt RT %.4f much worse than fifo %.4f", srptRT, fifoRT)
	}

	tbl := res.Table()
	if len(tbl.Rows) != len(res.Outcomes) {
		t.Fatalf("table has %d rows", len(tbl.Rows))
	}
	out := tbl.String()
	for _, want := range []string{"srpt", "ps", "no-sprint", "jsq", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestDisciplineSweepRejectsBadSpecs(t *testing.T) {
	lab := NewLab(Quick())
	if _, err := DisciplineSweep(lab, []DisciplineSpec{{Discipline: "nope"}}); err == nil {
		t.Fatal("bad discipline spec accepted")
	}
	bad := []DisciplineSpec{{Discipline: "fifo", Dispatch: "pod", Servers: 2}}
	if _, err := DisciplineSweep(lab, bad); err == nil {
		t.Fatal("bad dispatch spec accepted")
	}
}
