package experiments

import (
	"fmt"

	"mdsprint/internal/colocate"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/stats"
	"mdsprint/internal/workload"
)

// Combo is one of Figure 13's workload combinations.
type Combo struct {
	Name      string
	Workloads []colocate.Workload
}

// Combos returns the three Figure 13 workload combinations: four Jacobi
// copies, a Jacobi/Stream split, and a diverse four-way combo with
// utilizations from 50% to 80%.
func Combos() []Combo {
	w := func(name string, util float64) colocate.Workload {
		return colocate.Workload{
			Name:        name,
			Class:       workload.MustByName(name),
			Utilization: util,
			ArrivalCV:   colocate.BurstyArrivalCV,
		}
	}
	return []Combo{
		{Name: "combo1 (4x Jacobi @70%)", Workloads: []colocate.Workload{
			w("Jacobi", 0.7), w("Jacobi", 0.7), w("Jacobi", 0.7), w("Jacobi", 0.7),
		}},
		{Name: "combo2 (2x Jacobi @70%, 2x Stream @80%)", Workloads: []colocate.Workload{
			w("Jacobi", 0.7), w("SparkStream", 0.8), w("Jacobi", 0.7), w("SparkStream", 0.8),
		}},
		{Name: "combo3 (diverse, 50-80%)", Workloads: []colocate.Workload{
			w("Jacobi", 0.5), w("SparkStream", 0.6), w("BFS", 0.5), w("KNN", 0.6),
		}},
	}
}

// Fig13Row is one combo x approach outcome.
type Fig13Row struct {
	Combo    string
	Approach string
	Hosted   int
	Revenue  float64 // per node-hour, Figure 13's y-axis
	Plans    []colocate.Assignment
}

// Fig13Result compares AWS, model-driven budgeting and model-driven
// sprinting on revenue per node.
type Fig13Result struct {
	Rows []Fig13Row
}

// estimator sizes the colocation RT model to the lab.
func (l *Lab) estimator() colocate.SimEstimator {
	return colocate.SimEstimator{
		SimQueries: l.Scale.SimQueries,
		SimReps:    l.Scale.SimReps,
		Seed:       l.Scale.Seed + 95,
	}
}

// Fig13 packs each combo onto a single node under each approach.
func Fig13(lab *Lab) Fig13Result {
	est := lab.estimator()
	planners := []struct {
		name string
		p    colocate.Planner
	}{
		{"aws", colocate.AWSPlanner(est)},
		{"model-driven budgeting", colocate.BudgetPlanner(est, colocate.AWSRefill)},
		{"model-driven sprinting", colocate.SprintPlanner(est, lab.Scale.AnnealIter, lab.Scale.Seed+97)},
	}
	var res Fig13Result
	for _, combo := range Combos() {
		for _, pl := range planners {
			assigns, n := colocate.FillNode(combo.Workloads, pl.p)
			res.Rows = append(res.Rows, Fig13Row{
				Combo:    combo.Name,
				Approach: pl.name,
				Hosted:   n,
				Revenue:  colocate.PricePerHour * float64(n),
				Plans:    assigns,
			})
		}
	}
	return res
}

// Hosted returns the hosted count for one combo/approach pair (-1 if
// missing).
func (r Fig13Result) Hosted(combo, approach string) int {
	for _, row := range r.Rows {
		if row.Combo == combo && row.Approach == approach {
			return row.Hosted
		}
	}
	return -1
}

// Table renders revenue per node by combo and approach.
func (r Fig13Result) Table() Table {
	t := Table{
		Title:   "Figure 13 — revenue per burstable node by sprinting policy",
		Columns: []string{"combo", "approach", "hosted/node", "revenue $/hr"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Combo, row.Approach, fmt.Sprintf("%d", row.Hosted), fmt.Sprintf("$%.3f", row.Revenue))
	}
	t.AddNote("paper combo1: AWS hosts 1 (dedicated), budgeting 2, budgeting+timeout 3; combo3 hosts all four under model-driven sprinting")
	return t
}

// TailLatencyResult reproduces the Section 4.4 tail study: the AWS policy
// puts ~3.16x more executions past the model-driven plan's 99th
// percentile and ~3.76x past its 99.9th.
type TailLatencyResult struct {
	P99Threshold  float64
	P999Threshold float64
	AWSFracP99    float64
	ModelFracP99  float64
	AWSFracP999   float64
	ModelFracP999 float64
	RatioP99      float64
	RatioP999     float64
}

// TailLatency runs ground-truth-sized simulations of Jacobi at 70% under
// the AWS plan and the model-driven sprint plan and compares their tails.
func TailLatency(lab *Lab) TailLatencyResult {
	est := lab.estimator()
	w := colocate.Workload{
		Name:        "Jacobi",
		Class:       workload.MustByName("Jacobi"),
		Utilization: 0.7,
		ArrivalCV:   colocate.BurstyArrivalCV,
	}
	plan, ok := colocate.SprintPlanner(est, lab.Scale.AnnealIter, lab.Scale.Seed+97)(w)
	if !ok {
		plan, _ = colocate.BudgetPlanner(est, colocate.AWSRefill)(w)
	}
	// Ground truth: larger runs at fresh seeds.
	run := func(p colocate.Plan) []float64 {
		gt := colocate.SimEstimator{
			SimQueries: lab.Scale.SimQueries * 4,
			SimReps:    1,
			Seed:       lab.Scale.Seed + 12345,
		}
		res := queuesim.MustRun(gt.Params(w, p))
		return res.RTs
	}
	awsRTs := run(colocate.AWSPlan())
	modelRTs := run(plan)
	var out TailLatencyResult
	out.P99Threshold = stats.Quantile(modelRTs, 0.99)
	out.P999Threshold = stats.Quantile(modelRTs, 0.999)
	out.AWSFracP99 = stats.FractionAbove(awsRTs, out.P99Threshold)
	out.ModelFracP99 = stats.FractionAbove(modelRTs, out.P99Threshold)
	out.AWSFracP999 = stats.FractionAbove(awsRTs, out.P999Threshold)
	out.ModelFracP999 = stats.FractionAbove(modelRTs, out.P999Threshold)
	if out.ModelFracP99 > 0 {
		out.RatioP99 = out.AWSFracP99 / out.ModelFracP99
	}
	if out.ModelFracP999 > 0 {
		out.RatioP999 = out.AWSFracP999 / out.ModelFracP999
	}
	return out
}

// Table renders the tail comparison.
func (r TailLatencyResult) Table() Table {
	t := Table{
		Title:   "Section 4.4 — tail latency: AWS policy vs model-driven plan (Jacobi @70%)",
		Columns: []string{"threshold", "AWS frac above", "model frac above", "ratio"},
	}
	t.AddRow(secs(r.P99Threshold), pct(r.AWSFracP99), pct(r.ModelFracP99), ratio(r.RatioP99))
	t.AddRow(secs(r.P999Threshold), pct(r.AWSFracP999), pct(r.ModelFracP999), ratio(r.RatioP999))
	t.AddNote("paper: AWS produces 3.16x more executions past the 99th percentile and 3.76x past the 99.9th")
	return t
}
