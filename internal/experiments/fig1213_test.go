package experiments

import (
	"testing"
)

func TestFig12ATimeoutStudy(t *testing.T) {
	r, err := Fig12A(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 2 {
		t.Fatalf("got %d curves", len(r.Curves))
	}
	for _, c := range r.Curves {
		if len(c.Timeouts) != len(c.RTs) || len(c.RTs) == 0 {
			t.Fatalf("%s: malformed curve", c.Setup.Name)
		}
		// The annealed model-driven timeout must be at least as good
		// as both heuristics under the same model (small tolerance for
		// simulation noise between evaluations).
		if c.ModelBestRT > c.AdrenalineRT*1.03 {
			t.Errorf("%s: model-driven RT %v worse than adrenaline %v",
				c.Setup.Name, c.ModelBestRT, c.AdrenalineRT)
		}
		if c.ModelBestRT > c.FewToManyRT*1.03 {
			t.Errorf("%s: model-driven RT %v worse than few-to-many %v",
				c.Setup.Name, c.ModelBestRT, c.FewToManyRT)
		}
	}
	if r.SLO <= 0 {
		t.Fatal("missing SLO reference")
	}
	_ = r.Table().String()
}

func TestFig12CBudgetTimeoutInteraction(t *testing.T) {
	r, err := Fig12C(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RT) != 3 || len(r.RT[0]) != len(r.Budgets) {
		t.Fatalf("malformed RT matrix")
	}
	// More budget never hurts for a fixed timeout (weak monotonicity up
	// to simulation noise).
	for ti := range r.Timeouts {
		first, last := r.RT[ti][0], r.RT[ti][len(r.Budgets)-1]
		if last > first*1.05 {
			t.Errorf("timeout %v: RT rose with budget (%v -> %v)", r.Timeouts[ti], first, last)
		}
	}
	_ = r.Table().String()
}

func TestFig13Ordering(t *testing.T) {
	r := Fig13(lab())
	if len(r.Rows) != 9 {
		t.Fatalf("got %d rows, want 3 combos x 3 approaches", len(r.Rows))
	}
	for _, combo := range Combos() {
		aws := r.Hosted(combo.Name, "aws")
		budget := r.Hosted(combo.Name, "model-driven budgeting")
		sprint := r.Hosted(combo.Name, "model-driven sprinting")
		if aws < 0 || budget < 0 || sprint < 0 {
			t.Fatalf("%s: missing approach", combo.Name)
		}
		if !(aws <= budget && budget <= sprint) {
			t.Errorf("%s: hosted counts aws=%d budget=%d sprint=%d not ordered",
				combo.Name, aws, budget, sprint)
		}
	}
	// At least one combo must show the model-driven advantage strictly.
	combo1 := Combos()[0].Name
	if r.Hosted(combo1, "model-driven sprinting") <= r.Hosted(combo1, "aws") {
		t.Errorf("combo1: sprinting %d should beat aws %d",
			r.Hosted(combo1, "model-driven sprinting"), r.Hosted(combo1, "aws"))
	}
	_ = r.Table().String()
}

func TestTailLatencyRatio(t *testing.T) {
	r := TailLatency(lab())
	if r.RatioP99 <= 1 {
		t.Fatalf("AWS tail ratio %v, want > 1 (paper: 3.16x)", r.RatioP99)
	}
	if r.P999Threshold < r.P99Threshold {
		t.Fatal("thresholds inverted")
	}
	_ = r.Table().String()
}

func TestDataScalingANNImproves(t *testing.T) {
	r, err := DataScaling(lab())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("got %d scaling rows", len(r.Rows))
	}
	first := r.Rows[0].ANNMedianError
	best := first
	for _, row := range r.Rows[1:] {
		if row.ANNMedianError < best {
			best = row.ANNMedianError
		}
	}
	if best >= first {
		t.Errorf("ANN error never improved with data: first %v, best later %v", first, best)
	}
	_ = r.Table().String()
}

func TestAblations(t *testing.T) {
	r, err := Ablations(lab())
	if err != nil {
		t.Fatal(err)
	}
	if r.EventNsPerRun <= 0 || r.Tick10msNsPerRun <= r.EventNsPerRun {
		t.Fatalf("tick engine should be slower: event %v ns vs tick %v ns", r.EventNsPerRun, r.Tick10msNsPerRun)
	}
	if r.TickAgreement > 0.05 {
		t.Fatalf("tick/event disagree by %v", r.TickAgreement)
	}
	if r.BisectionResid > 0.06 || r.SteppingResid > 0.10 {
		t.Fatalf("calibration residuals too large: %v / %v", r.BisectionResid, r.SteppingResid)
	}
	if len(r.ForestConfigs) != 5 {
		t.Fatalf("got %d forest configs", len(r.ForestConfigs))
	}
	_ = r.Table().String()
}

func TestTailAccuracy(t *testing.T) {
	r, err := TailAccuracy(lab())
	if err != nil {
		t.Fatal(err)
	}
	if r.TestedConds == 0 {
		t.Fatal("no test conditions")
	}
	if r.MeanMedErr > 0.25 || r.P95MedErr > 0.4 || r.P99MedErr > 0.5 {
		t.Fatalf("tail accuracy off: mean %v p95 %v p99 %v", r.MeanMedErr, r.P95MedErr, r.P99MedErr)
	}
	_ = r.Table().String()
}
