package experiments

import (
	"strconv"

	"mdsprint/internal/core"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/sprint"
	"mdsprint/internal/stats"
	"mdsprint/internal/workload"
)

// Fig10Group is one binary grouping's error statistics.
type Fig10Group struct {
	Factor string // e.g. "service"
	Level  string // "hi" or "low" (or "in"/"out" for cluster sampling)
	Errors []float64
}

// Fig10Result studies how prediction error depends on first-class
// parameters — service rate, arrival rate, timeout, sprint budget — and
// on whether test conditions sit on cluster-sampling centroids.
type Fig10Result struct {
	Groups []Fig10Group
}

// Fig10 pools hybrid evaluations across the lab's workloads and splits
// the errors along the paper's binary groupings: service rate at 40 qph,
// utilization at 60%, timeout at 100 s, budget at 40%.
func Fig10(lab *Lab) (Fig10Result, error) {
	var res Fig10Result
	groups := map[string]map[string][]float64{
		"service": {}, "util": {}, "timeout": {}, "budget": {},
	}
	for _, c := range lab.Classes() {
		mix := workload.SingleClass(c)
		ds := lab.Dataset(mix, mech.DVFS{})
		// A 70/30 split gives the groupings enough test mass; the
		// factor medians, not absolute accuracy, are the object here.
		train, test := lab.Split(ds, 0.7)
		h, err := lab.Hybrid(ds, train, "fig10")
		if err != nil {
			return res, err
		}
		ev, err := core.Evaluate(h, ds, test)
		if err != nil {
			return res, err
		}
		for i, o := range test {
			e := ev.Errors[i]
			put := func(factor string, hi bool) {
				level := "low"
				if hi {
					level = "hi"
				}
				groups[factor][level] = append(groups[factor][level], e)
			}
			put("service", sprint.ToQPH(ds.ServiceRate) >= 40)
			put("util", o.Cond.Utilization >= 0.60)
			put("timeout", o.Cond.Timeout >= 100)
			put("budget", o.Cond.BudgetPct >= 0.40)
		}
	}
	for _, factor := range []string{"service", "util", "timeout", "budget"} {
		for _, level := range []string{"hi", "low"} {
			if len(groups[factor][level]) == 0 {
				continue // small grids may leave a level unsampled
			}
			res.Groups = append(res.Groups, Fig10Group{
				Factor: factor, Level: level, Errors: groups[factor][level],
			})
		}
	}
	in, out, err := clusterInOut(lab)
	if err != nil {
		return res, err
	}
	res.Groups = append(res.Groups,
		Fig10Group{Factor: "cluster", Level: "in", Errors: in},
		Fig10Group{Factor: "cluster", Level: "out", Errors: out},
	)
	return res, nil
}

// clusterInOut reproduces the centroid-removal study: train without the
// 75% arrival rate and the 60/70/120 s timeouts, then predict exactly
// those conditions ("out"), versus the usual held-out centroids ("in").
func clusterInOut(lab *Lab) (in, out []float64, err error) {
	mix := workload.SingleClass(workload.MustByName(lab.Scale.Workloads[0]))
	ds := lab.Dataset(mix, mech.DVFS{})

	removed := func(c profiler.Condition) bool {
		if stats.ApproxEqual(c.Utilization, 0.75, 1e-9) {
			return true
		}
		for _, to := range []float64{60, 70, 120} {
			if stats.ApproxEqual(c.Timeout, to, 1e-9) {
				return true
			}
		}
		return false
	}
	var trainObs, outObs []profiler.Observation
	for _, o := range ds.Observations {
		if removed(o.Cond) {
			outObs = append(outObs, o)
		} else {
			trainObs = append(trainObs, o)
		}
	}
	if len(trainObs) < 4 || len(outObs) == 0 {
		// Tiny grids may not include the removed centroids; fall back
		// to an 50/50 split for the "out" side so the experiment still
		// reports something comparable.
		trainObs, outObs = profiler.SplitObservations(ds.Observations, 0.5, lab.Scale.Seed+67)
	}
	hOut, err := lab.Hybrid(ds, trainObs, "fig10-out")
	if err != nil {
		return nil, nil, err
	}
	evOut, err := core.Evaluate(hOut, ds, outObs)
	if err != nil {
		return nil, nil, err
	}
	// "In": the standard 80/20 split where test conditions are centroids
	// that the training distribution covers.
	trainIn, testIn := lab.Split(ds, 0.8)
	hIn, err := lab.Hybrid(ds, trainIn, "fig7")
	if err != nil {
		return nil, nil, err
	}
	evIn, err := core.Evaluate(hIn, ds, testIn)
	if err != nil {
		return nil, nil, err
	}
	return evIn.Errors, evOut.Errors, nil
}

// Median returns the median error of a named group.
func (r Fig10Result) Median(factor, level string) float64 {
	for _, g := range r.Groups {
		if g.Factor == factor && g.Level == level {
			return stats.Median(g.Errors)
		}
	}
	return -1
}

// Table renders the grouped error study.
func (r Fig10Result) Table() Table {
	t := Table{
		Title:   "Figure 10 — error by service rate, utilization, timeout, budget and cluster sampling",
		Columns: []string{"factor", "level", "median err", "p25", "p75", "n"},
	}
	for _, g := range r.Groups {
		t.AddRow(g.Factor, g.Level,
			pct(stats.Median(g.Errors)),
			pct(stats.Quantile(g.Errors, 0.25)),
			pct(stats.Quantile(g.Errors, 0.75)),
			itoa(len(g.Errors)),
		)
	}
	t.AddNote("paper: every parameter group stays within ~4%%; out-of-centroid conditions ~10%% (2.5x the in-centroid error)")
	return t
}

func itoa(n int) string { return strconv.Itoa(n) }
