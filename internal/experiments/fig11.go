package experiments

import (
	"fmt"
	"runtime"
	"time"

	"mdsprint/internal/dist"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/stats"
	"mdsprint/internal/sweep"
)

// Fig11Point is one (queries-per-prediction, cores) measurement.
type Fig11Point struct {
	QueriesPerPrediction int
	Workers              int
	PredictionsPerMin    float64
	// CoV is the coefficient of variation of the predicted mean RT
	// across independent predictions — Figure 11's right axis, whose
	// knee locates the accuracy/throughput trade-off.
	CoV float64
}

// Fig11Result measures the timeout-aware simulator's prediction
// throughput and variance (Section 3.6: ~11.4x scaling from 1 to 12
// cores; variance knee at 100K simulated queries).
type Fig11Result struct {
	Points  []Fig11Point
	MaxCPUs int
	// Scaling is the many-core speedup over one core at the largest
	// query count measured on both.
	Scaling float64
}

// fig11Params is a representative sprinting scenario.
func fig11Params(n int, seed uint64) queuesim.Params {
	mu := 0.02
	return queuesim.Params{
		ArrivalRate: 0.75 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		SprintRate:  1.5 * mu,
		Timeout:     60, BudgetSeconds: 300, RefillTime: 200,
		NumQueries: n, Warmup: n / 10,
		Seed: seed,
	}
}

// Fig11 sweeps simulated queries per prediction and core counts.
func Fig11(lab *Lab) Fig11Result {
	res := Fig11Result{MaxCPUs: runtime.NumCPU()}
	counts := []int{1000, 10000, 100000}
	if lab.Scale.Name == "full" {
		counts = append(counts, 1000000)
	}
	workerSets := []int{1}
	if res.MaxCPUs > 1 {
		workerSets = append(workerSets, res.MaxCPUs)
	}
	perCore := map[int]map[int]float64{} // workers -> count -> preds/min
	for _, workers := range workerSets {
		// A dedicated engine per worker count, cache disabled: this
		// figure measures raw simulation throughput, and memoized hits
		// would report cache reads as predictions.
		eng := sweep.New(sweep.Options{Workers: workers, CacheSize: -1})
		perCore[workers] = map[int]float64{}
		for _, n := range counts {
			// One prediction = SimReps replications pooled. Measure
			// a batch of predictions sharded across the worker pool.
			batch := 6
			if n >= 100000 {
				batch = 2
			}
			tasks := make([]sweep.Task, batch)
			for b := range tasks {
				tasks[b] = sweep.Task{
					Params: fig11Params(n, lab.Scale.Seed+uint64(b)*977),
					Reps:   lab.Scale.SimReps,
				}
			}
			start := time.Now()
			if _, err := eng.EvaluateAll(tasks); err != nil {
				panic(err)
			}
			elapsed := time.Since(start).Minutes()
			// CoV across extra independent predictions (cheap
			// single-rep runs) to see the variance knee.
			covTasks := make([]sweep.Task, 12)
			for b := range covTasks {
				covTasks[b] = sweep.Task{
					Params: fig11Params(n, lab.Scale.Seed+1000+uint64(b)*31),
					Reps:   1,
				}
			}
			means, err := eng.MeanRTs(covTasks)
			if err != nil {
				panic(err)
			}
			pt := Fig11Point{
				QueriesPerPrediction: n,
				Workers:              workers,
				PredictionsPerMin:    float64(batch) / elapsed,
				CoV:                  stats.CoV(means),
			}
			perCore[workers][n] = pt.PredictionsPerMin
			res.Points = append(res.Points, pt)
		}
	}
	largest := counts[len(counts)-1]
	if one, ok := perCore[1][largest]; ok && one > 0 {
		res.Scaling = perCore[res.MaxCPUs][largest] / one
	}
	if res.MaxCPUs == 1 {
		res.Scaling = 1
	}
	return res
}

// Table renders throughput and variance.
func (r Fig11Result) Table() Table {
	t := Table{
		Title:   "Figure 11 — prediction throughput and variance of the timeout-aware simulator",
		Columns: []string{"queries/prediction", "workers", "predictions/min", "CoV of mean RT"},
	}
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.QueriesPerPrediction),
			fmt.Sprintf("%d", p.Workers),
			fmt.Sprintf("%.0f", p.PredictionsPerMin),
			fmt.Sprintf("%.3f", p.CoV),
		)
	}
	if r.MaxCPUs == 1 {
		t.AddNote("host has a single CPU: task-level sharding (the sweep engine's worker pool) is structural but unmeasurable here (paper: 11.4x on 12 cores)")
	} else {
		t.AddNote("multi-core scaling at the largest size: %s on %d cores (paper: 11.4x on 12 cores)",
			ratio(r.Scaling), r.MaxCPUs)
	}
	t.AddNote("paper: variance knee at ~100K simulated queries, ~100 predictions/min there (event-driven scheduling makes this implementation faster in absolute terms)")
	return t
}
