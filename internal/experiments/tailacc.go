package experiments

import (
	"mdsprint/internal/core"
	"mdsprint/internal/mech"
	"mdsprint/internal/stats"
	"mdsprint/internal/workload"
)

// TailAccuracyResult grades the hybrid model's tail predictions: the
// simulator behind it produces whole response-time distributions, so P95
// and P99 predictions come for free — an extension beyond the paper's
// mean-RT evaluation that matters for the SLO use cases of Section 4.
type TailAccuracyResult struct {
	Workload    string
	MeanMedErr  float64
	P95MedErr   float64
	P99MedErr   float64
	TestedConds int
}

// TailAccuracy evaluates mean/P95/P99 prediction error on the held-out
// split of the lab's first workload.
func TailAccuracy(lab *Lab) (TailAccuracyResult, error) {
	c := workload.MustByName(lab.Scale.Workloads[0])
	mix := workload.SingleClass(c)
	ds := lab.Dataset(mix, mech.DVFS{})
	train, test := lab.Split(ds, 0.8)
	h, err := lab.Hybrid(ds, train, "fig7")
	if err != nil {
		return TailAccuracyResult{}, err
	}
	var meanE, p95E, p99E []float64
	for _, o := range test {
		pred, err := h.Predict(ds, core.Scenario{Cond: o.Cond, ArrivalRate: o.ArrivalRate})
		if err != nil {
			return TailAccuracyResult{}, err
		}
		meanE = append(meanE, stats.AbsRelError(pred.MeanRT, o.MeanRT))
		p95E = append(p95E, stats.AbsRelError(pred.P95RT, o.P95RT))
		p99E = append(p99E, stats.AbsRelError(pred.P99RT, o.P99RT))
	}
	return TailAccuracyResult{
		Workload:    c.Name,
		MeanMedErr:  stats.Median(meanE),
		P95MedErr:   stats.Median(p95E),
		P99MedErr:   stats.Median(p99E),
		TestedConds: len(test),
	}, nil
}

// Table renders the tail-accuracy study.
func (r TailAccuracyResult) Table() Table {
	t := Table{
		Title:   "Extension — tail-prediction accuracy of the hybrid model (" + r.Workload + ")",
		Columns: []string{"statistic", "median abs. rel. error"},
	}
	t.AddRow("mean RT", pct(r.MeanMedErr))
	t.AddRow("p95 RT", pct(r.P95MedErr))
	t.AddRow("p99 RT", pct(r.P99MedErr))
	t.AddNote("the simulator-backed hybrid predicts whole RT distributions; the paper evaluates means only (%d held-out conditions)", r.TestedConds)
	return t
}
