package experiments

import (
	"fmt"
	"math"
)

// Fig14 constants from Section 4.4.
const (
	// ProfilingHoursPerWorkload is the paper's measured profiling cost
	// on the DVFS platform.
	ProfilingHoursPerWorkload = 7.2
	// ANNProfilingMultiple reflects the ANN's larger training-data need
	// (the low end of the paper's 6x-54x range).
	ANNProfilingMultiple = 6
	// ServerLifetimeHours is the typical virtualized server lifetime
	// the paper cites (552 hours).
	ServerLifetimeHours = 552
)

// Fig14Point is one timeline sample.
type Fig14Point struct {
	Hour   float64
	AWS    float64
	Hybrid float64
	ANN    float64
}

// Fig14Result is the profiling-cost amortisation study: cumulative
// revenue per node over a server lifetime for the AWS policy (earning
// immediately) versus model-driven sprinting, which earns nothing while
// profiling and then earns at the higher colocated rate.
type Fig14Result struct {
	Points []Fig14Point
	// Rates in $/hr per node.
	AWSRate, ModelRate float64
	// Profiling delays in hours.
	HybridDelay, ANNDelay float64
	// Crossovers: first hour each model-driven curve passes AWS.
	HybridCrossover, ANNCrossover float64
	// LifetimeRatio is hybrid revenue over AWS revenue at the server
	// lifetime (the paper's 1.6x headline).
	LifetimeRatio float64
}

// Fig14 derives rates from the Figure 13 combo 3 outcome.
func Fig14(fig13 Fig13Result) Fig14Result {
	combo := Combos()[2].Name
	nAWS := fig13.Hosted(combo, "aws")
	nModel := fig13.Hosted(combo, "model-driven sprinting")
	if nAWS < 1 {
		nAWS = 1
	}
	if nModel < nAWS {
		nModel = nAWS
	}
	nWorkloads := len(Combos()[2].Workloads)
	res := Fig14Result{
		AWSRate:     0.026 * float64(nAWS),
		ModelRate:   0.026 * float64(nModel),
		HybridDelay: ProfilingHoursPerWorkload * float64(nWorkloads),
		ANNDelay:    ProfilingHoursPerWorkload * ANNProfilingMultiple * float64(nWorkloads),
	}
	rev := func(rate, delay, t float64) float64 {
		return rate * math.Max(0, t-delay)
	}
	for h := 0.0; h <= ServerLifetimeHours; h += 12 {
		res.Points = append(res.Points, Fig14Point{
			Hour:   h,
			AWS:    res.AWSRate * h,
			Hybrid: rev(res.ModelRate, res.HybridDelay, h),
			ANN:    rev(res.ModelRate, res.ANNDelay, h),
		})
	}
	// Crossover: rate_m (t - d) = rate_a t  =>  t = rate_m d / (rate_m - rate_a).
	if res.ModelRate > res.AWSRate {
		res.HybridCrossover = res.ModelRate * res.HybridDelay / (res.ModelRate - res.AWSRate)
		res.ANNCrossover = res.ModelRate * res.ANNDelay / (res.ModelRate - res.AWSRate)
	}
	awsLifetime := res.AWSRate * ServerLifetimeHours
	if awsLifetime > 0 {
		res.LifetimeRatio = rev(res.ModelRate, res.HybridDelay, ServerLifetimeHours) / awsLifetime
	}
	return res
}

// Table renders the amortisation study.
func (r Fig14Result) Table() Table {
	t := Table{
		Title:   "Figure 14 — cumulative revenue vs hours (profiling cost amortisation, combo 3)",
		Columns: []string{"hours", "aws $", "model-driven (hybrid) $", "model-driven (ann) $"},
	}
	for _, p := range r.Points {
		if int(p.Hour)%96 != 0 {
			continue // keep the table readable; full series in Points
		}
		t.AddRow(fmt.Sprintf("%.0f", p.Hour),
			fmt.Sprintf("$%.2f", p.AWS),
			fmt.Sprintf("$%.2f", p.Hybrid),
			fmt.Sprintf("$%.2f", p.ANN))
	}
	t.AddNote("hybrid breaks even at %.0f h (~%.1f days; paper: ~2.5 days); ANN at %.0f h",
		r.HybridCrossover, r.HybridCrossover/24, r.ANNCrossover)
	t.AddNote("lifetime (%d h) revenue ratio hybrid/AWS: %s (paper: 1.6x net of profiling)",
		ServerLifetimeHours, ratio(r.LifetimeRatio))
	return t
}
