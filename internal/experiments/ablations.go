package experiments

import (
	"fmt"
	"time"

	"mdsprint/internal/calib"
	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/forest"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/stats"
	"mdsprint/internal/workload"
)

// AblationsResult quantifies the design choices DESIGN.md calls out:
// event-driven vs tick-stepped simulation, bisection vs the paper's
// exhaustive calibration stepping, and forest structure (depth, ensemble
// size, leaf model).
type AblationsResult struct {
	// Simulator: wall-clock per 2000-query run and mean-RT agreement.
	EventNsPerRun    float64
	Tick10msNsPerRun float64
	TickAgreement    float64 // |eventRT - tickRT| / eventRT

	// Calibration: median residual and wall-clock per observation.
	BisectionResid   float64
	BisectionNsPerOb float64
	SteppingResid    float64
	SteppingNsPerOb  float64

	// Forest: held-out effective-rate error per configuration.
	ForestConfigs []struct {
		Name  string
		Error float64
	}
}

// Ablations runs all three studies at the lab's scale.
func Ablations(lab *Lab) (AblationsResult, error) {
	var res AblationsResult

	// --- Simulator: event vs tick -----------------------------------
	mu := 0.02
	simP := queuesim.Params{
		ArrivalRate: 0.8 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		SprintRate:  1.6 * mu,
		Timeout:     60, BudgetSeconds: 300, RefillTime: 200,
		NumQueries: 2000, Warmup: 200, Seed: lab.Scale.Seed + 201,
	}
	const simReps = 5
	start := time.Now()
	var evRT float64
	for i := 0; i < simReps; i++ {
		evRT = queuesim.MustRun(simP).MeanRT()
	}
	res.EventNsPerRun = float64(time.Since(start).Nanoseconds()) / simReps
	start = time.Now()
	var tkRT float64
	for i := 0; i < simReps; i++ {
		r, err := queuesim.RunTick(simP, 0.01)
		if err != nil {
			return res, err
		}
		tkRT = r.MeanRT()
	}
	res.Tick10msNsPerRun = float64(time.Since(start).Nanoseconds()) / simReps
	res.TickAgreement = stats.AbsRelError(tkRT, evRT)

	// --- Calibration: bisection vs stepping --------------------------
	p := &profiler.Profiler{
		Mix:           workload.SingleClass(workload.MustByName("Jacobi")),
		Mechanism:     mech.DVFS{},
		QueriesPerRun: lab.Scale.ProfQueries,
		Replications:  2,
		Seed:          lab.Scale.Seed + 203,
	}
	ds := p.Profile(profiler.PaperGrid().Sample(40, lab.Scale.Seed+7))
	runCalib := func(o calib.Options) (resid, nsPerObs float64) {
		start := time.Now()
		var errs []float64
		for _, obs := range ds.Observations {
			rec := calib.EffectiveRate(ds, obs, o)
			errs = append(errs, rec.RelError())
		}
		return stats.Median(errs), float64(time.Since(start).Nanoseconds()) / float64(len(ds.Observations))
	}
	base := lab.calibOptions()
	res.BisectionResid, res.BisectionNsPerOb = runCalib(base)
	stepping := base
	stepping.Stepping = true
	stepping.StepQPH = 0.5
	stepping.MaxIter = 100
	res.SteppingResid, res.SteppingNsPerOb = runCalib(stepping)

	// --- Forest structure --------------------------------------------
	// End-to-end: calibrate a 70% training split once, fit each forest
	// configuration on the same calibrated rows, and compare held-out
	// response-time error (mu_e-space error would mostly measure
	// calibration noise in RT-insensitive regions).
	trainObs, testObs := profiler.SplitObservations(ds.Observations, 0.7, lab.Scale.Seed+211)
	recs := calib.CalibrateDataset(ds, trainObs, base)
	var samples []forest.Sample
	for i, rec := range recs {
		obs := trainObs[i]
		samples = append(samples, forest.Sample{
			Features: core.Features(ds, core.Scenario{Cond: obs.Cond, ArrivalRate: obs.ArrivalRate}),
			X:        rec.MarginalRate,
			Y:        rec.EffectiveRate,
		})
	}
	for _, cfg := range []struct {
		name string
		c    forest.Config
	}{
		{"paper (10 deep trees, linear leaves)", forest.Config{Trees: 10, FeatureFrac: 0.9}},
		{"mean leaves", forest.Config{Trees: 10, FeatureFrac: 0.9, MeanLeaves: true}},
		{"depth 2", forest.Config{Trees: 10, FeatureFrac: 0.9, MaxDepth: 2}},
		{"single tree", forest.Config{Trees: 1, FeatureFrac: 1}},
		{"50 trees", forest.Config{Trees: 50, FeatureFrac: 0.9}},
	} {
		c := cfg.c
		c.Seed = lab.Scale.Seed + 209
		fo, err := forest.Train(samples, core.FeatureNames(), c)
		if err != nil {
			return res, err
		}
		h := core.NewHybridFromForest(fo, lab.Scale.SimQueries, lab.Scale.SimReps, 1, lab.Scale.Seed+13)
		ev, err := core.Evaluate(h, ds, testObs)
		if err != nil {
			return res, err
		}
		res.ForestConfigs = append(res.ForestConfigs, struct {
			Name  string
			Error float64
		}{cfg.name, stats.Median(ev.Errors)})
	}
	return res, nil
}

// Table renders the ablation studies.
func (r AblationsResult) Table() Table {
	t := Table{
		Title:   "Ablations — simulator engine, calibration search, forest structure",
		Columns: []string{"study", "variant", "metric", "value"},
	}
	t.AddRow("simulator", "event-driven", "ms / 2000-query run", fmt.Sprintf("%.2f", r.EventNsPerRun/1e6))
	t.AddRow("simulator", "tick-stepped (10ms)", "ms / 2000-query run", fmt.Sprintf("%.2f", r.Tick10msNsPerRun/1e6))
	t.AddRow("simulator", "agreement", "mean-RT delta", pct(r.TickAgreement))
	t.AddRow("calibration", "bisection", "median residual", pct(r.BisectionResid))
	t.AddRow("calibration", "bisection", "ms / observation", fmt.Sprintf("%.0f", r.BisectionNsPerOb/1e6))
	t.AddRow("calibration", "stepping 0.5 qph (paper)", "median residual", pct(r.SteppingResid))
	t.AddRow("calibration", "stepping 0.5 qph (paper)", "ms / observation", fmt.Sprintf("%.0f", r.SteppingNsPerOb/1e6))
	for _, fc := range r.ForestConfigs {
		t.AddRow("forest", fc.Name, "held-out RT error", pct(fc.Error))
	}
	t.AddNote("Algorithm 1's reference uses 1 us ticks; at the 10 ms ticks benchmarked here the tick engine is already ~%.0fx slower than event scheduling", r.Tick10msNsPerRun/r.EventNsPerRun)
	t.AddNote("forest ablation is within a single (workload, mechanism) dataset, where mu_m is constant: linear and mean leaves coincide and ensemble structure matters little; the linear-leaf advantage appears on cross-regime data (TestForestLeafModelAblation) and the ensemble's bias reduction in Figure 7's aggregate")
	return t
}
