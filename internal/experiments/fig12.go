package experiments

import (
	"fmt"

	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/explore"
	"mdsprint/internal/mech"
	"mdsprint/internal/policies"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sweep"
	"mdsprint/internal/workload"
)

// fig12Setup describes one burst configuration of Section 4.3.
type fig12Setup struct {
	Name string
	// Speedup commanded during sprints (0 = full throttle release, the
	// big-burst 5x; small-burst commands ~3x).
	Speedup float64
	// BudgetPct of the refill window.
	BudgetPct float64
}

// Fig12Curve is RT-vs-timeout for one setup.
type Fig12Curve struct {
	Setup    fig12Setup
	Timeouts []float64
	RTs      []float64
	// Baseline policies resolved against this setup.
	FewToManyTimeout  float64
	FewToManyRT       float64
	AdrenalineTimeout float64
	AdrenalineRT      float64
	ModelBestTimeout  float64
	ModelBestRT       float64
}

// Fig12AB is Figure 12(A)/(B): response time across timeout settings for
// big-burst and small-burst sprinting, with the Few-to-Many and
// Adrenaline baselines and the model-driven (annealed) best.
type Fig12AB struct {
	Workload string
	SLO      float64 // 1.15x the no-throttle response time
	Curves   []Fig12Curve
}

// fig12RefillTime is the budget window used in the Section 4.3 studies.
const fig12RefillTime = 600

// fig12Dataset profiles the mix under 20% CPU throttling, including
// commanded-speedup conditions so the model sees small-burst behaviour
// during training.
func (l *Lab) fig12Dataset(mix workload.Mix, tag string) *profiler.Dataset {
	key := datasetKey(mix, mech.NewThrottle(0.20), tag)
	l.mu.Lock()
	if ds, ok := l.datasets[key]; ok {
		l.mu.Unlock()
		return ds
	}
	l.mu.Unlock()
	base := profiler.PaperGrid().Sample(l.Scale.GridSamples, l.Scale.Seed+83)
	conds := make([]profiler.Condition, 0, 2*len(base))
	for i, c := range base {
		conds = append(conds, c)
		if i%2 == 0 {
			c.Speedup = 3
			conds = append(conds, c)
		}
	}
	p := &profiler.Profiler{
		Mix:           mix,
		Mechanism:     mech.NewThrottle(0.20),
		QueriesPerRun: l.Scale.ProfQueries,
		Seed:          l.Scale.Seed + hashString(key),
	}
	ds := p.Profile(conds)
	l.mu.Lock()
	l.datasets[key] = ds
	l.mu.Unlock()
	return ds
}

// noThrottleRT simulates the mix at its unthrottled (sprint) rate to set
// the SLO reference.
func noThrottleRT(lab *Lab, ds *profiler.Dataset, arrivalRate float64) float64 {
	// Unthrottled means the marginal rate is the sustained rate:
	// service samples shrink by the marginal speedup.
	scale := ds.ServiceRate / ds.MarginalRate
	scaled := make([]float64, len(ds.ServiceSamples))
	for i, s := range ds.ServiceSamples {
		scaled[i] = s * scale
	}
	p := queuesim.Params{
		ArrivalRate: arrivalRate,
		Service:     dist.NewEmpirical(scaled),
		ServiceRate: ds.MarginalRate,
		Timeout:     -1,
		NumQueries:  lab.Scale.SimQueries,
		Warmup:      lab.Scale.SimQueries / 10,
		Seed:        lab.Scale.Seed + 89,
	}
	pred, err := lab.Engine().Evaluate(sweep.Task{Params: p, Reps: lab.Scale.SimReps})
	if err != nil {
		panic(err)
	}
	return pred.MeanRT
}

// fig12Run executes the timeout study for one mix.
func fig12Run(lab *Lab, mix workload.Mix, tag string) (Fig12AB, error) {
	res := Fig12AB{Workload: mix.Name}
	ds := lab.fig12Dataset(mix, tag)
	train, _ := lab.Split(ds, 0.9)
	h, err := lab.Hybrid(ds, train, tag)
	if err != nil {
		return res, err
	}
	arrival := 0.8 * ds.ServiceRate // Section 4.3: 80% utilization
	res.SLO = 1.15 * noThrottleRT(lab, ds, arrival)

	setups := []fig12Setup{
		{Name: "big-burst", Speedup: 0, BudgetPct: 0.40},
		{Name: "small-burst", Speedup: 3, BudgetPct: 0.80},
	}
	timeouts := []float64{0, 25, 50, 75, 100, 150, 200, 250, 300}
	pctx := policies.Context{
		Dataset:     ds,
		ArrivalRate: arrival,
		RefillTime:  fig12RefillTime,
		SimQueries:  lab.Scale.SimQueries,
		SimReps:     lab.Scale.SimReps,
		Seed:        lab.Scale.Seed + 91,
		Engine:      lab.Engine(),
	}
	for _, setup := range setups {
		curve := Fig12Curve{Setup: setup}
		predictRT := func(timeout float64) float64 {
			sc := core.Scenario{
				Cond: profiler.Condition{
					Utilization: 0.8,
					ArrivalKind: dist.KindExponential,
					Timeout:     timeout,
					RefillTime:  fig12RefillTime,
					BudgetPct:   setup.BudgetPct,
					Speedup:     setup.Speedup,
				},
				ArrivalRate: arrival,
			}
			pred, err := h.Predict(ds, sc)
			if err != nil {
				panic(err)
			}
			return pred.MeanRT
		}
		for _, to := range timeouts {
			curve.Timeouts = append(curve.Timeouts, to)
			curve.RTs = append(curve.RTs, predictRT(to))
		}
		// Baselines, evaluated with the same model inputs.
		pctxSetup := pctx
		pctxSetup.BudgetPct = setup.BudgetPct
		f2m, err := policies.FewToMany(pctxSetup)
		if err != nil {
			return res, err
		}
		adren, err := policies.Adrenaline(pctxSetup)
		if err != nil {
			return res, err
		}
		curve.FewToManyTimeout = f2m.Timeout
		curve.FewToManyRT = predictRT(f2m.Timeout)
		curve.AdrenalineTimeout = adren.Timeout
		curve.AdrenalineRT = predictRT(adren.Timeout)
		// Model-driven: anneal the timeout against the hybrid model.
		best, err := explore.MinimizeTimeout(predictRT, 0, 300, explore.Options{
			MaxIter: lab.Scale.AnnealIter, Seed: lab.Scale.Seed + 93,
		})
		if err != nil {
			return res, err
		}
		curve.ModelBestTimeout = best.Point[0]
		curve.ModelBestRT = best.RT
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}

// Fig12A runs the Jacobi timeout study.
func Fig12A(lab *Lab) (Fig12AB, error) {
	return fig12Run(lab, workload.SingleClass(workload.MustByName("Jacobi")), "fig12a")
}

// Fig12B runs the mixed-workload study (Jacobi + Mem, following the
// Section 4.3 text; the figure caption's Jacobi & Stream disagrees with
// the analysis, which needs Mem's poor throttling speedup).
func Fig12B(lab *Lab) (Fig12AB, error) {
	return fig12Run(lab, workload.MixJacobiMem(), "fig12b")
}

// Table renders one timeout study.
func (r Fig12AB) Table() Table {
	t := Table{
		Title:   fmt.Sprintf("Figure 12 — response time vs timeout (%s, CPU throttling, 80%% util)", r.Workload),
		Columns: []string{"setup", "timeout", "expected RT"},
	}
	for _, c := range r.Curves {
		for i := range c.Timeouts {
			t.AddRow(c.Setup.Name, secs(c.Timeouts[i]), secs(c.RTs[i]))
		}
		t.AddRow(c.Setup.Name+" few-to-many", secs(c.FewToManyTimeout), secs(c.FewToManyRT))
		t.AddRow(c.Setup.Name+" adrenaline", secs(c.AdrenalineTimeout), secs(c.AdrenalineRT))
		t.AddRow(c.Setup.Name+" model-driven", secs(c.ModelBestTimeout), secs(c.ModelBestRT))
		t.AddNote("%s: model-driven vs adrenaline %s, vs few-to-many %s (paper big-burst: 1.44x and 1.3x; small-burst: few-to-many matches)",
			c.Setup.Name, ratio(c.AdrenalineRT/c.ModelBestRT), ratio(c.FewToManyRT/c.ModelBestRT))
		worst := c.RTs[0]
		for _, rt := range c.RTs {
			if rt > worst {
				worst = rt
			}
		}
		t.AddNote("%s: best vs worst timeout in the sweep: %s (paper: best policies beat worst by 1.65x)",
			c.Setup.Name, ratio(worst/c.ModelBestRT))
	}
	t.AddNote("SLO reference (1.15x no-throttle RT): %s", secs(r.SLO))
	return t
}

// Fig12CResult is the budget-vs-timeout interaction study.
type Fig12CResult struct {
	Timeouts []float64
	Budgets  []float64
	// RT[timeoutIdx][budgetIdx] is the expected response time.
	RT [][]float64
}

// Fig12C sweeps sprinting budget for three fixed timeouts on throttled
// Jacobi, reproducing the crossover: under tight budgets loose timeouts
// (slowest queries only) win; under loose budgets strict timeouts win.
func Fig12C(lab *Lab) (Fig12CResult, error) {
	res := Fig12CResult{
		Timeouts: []float64{50, 80, 130},
		Budgets:  []float64{0.10, 0.15, 0.20, 0.25, 0.30},
	}
	mix := workload.SingleClass(workload.MustByName("Jacobi"))
	ds := lab.fig12Dataset(mix, "fig12a")
	train, _ := lab.Split(ds, 0.9)
	h, err := lab.Hybrid(ds, train, "fig12a")
	if err != nil {
		return res, err
	}
	arrival := 0.8 * ds.ServiceRate
	for _, to := range res.Timeouts {
		var row []float64
		for _, b := range res.Budgets {
			pred, err := h.Predict(ds, core.Scenario{
				Cond: profiler.Condition{
					Utilization: 0.8,
					ArrivalKind: dist.KindExponential,
					Timeout:     to,
					RefillTime:  fig12RefillTime,
					BudgetPct:   b,
				},
				ArrivalRate: arrival,
			})
			if err != nil {
				return res, err
			}
			row = append(row, pred.MeanRT)
		}
		res.RT = append(res.RT, row)
	}
	return res, nil
}

// BestTimeoutAt returns the timeout with the lowest RT at budget index i.
func (r Fig12CResult) BestTimeoutAt(i int) float64 {
	best, bestRT := r.Timeouts[0], r.RT[0][i]
	for ti := 1; ti < len(r.Timeouts); ti++ {
		if r.RT[ti][i] < bestRT {
			best, bestRT = r.Timeouts[ti], r.RT[ti][i]
		}
	}
	return best
}

// Table renders the interaction study.
func (r Fig12CResult) Table() Table {
	t := Table{
		Title:   "Figure 12C — response time as sprinting budget and timeout vary (Jacobi)",
		Columns: []string{"budget %", "RT @50s", "RT @80s", "RT @130s", "best timeout"},
	}
	for bi, b := range r.Budgets {
		t.AddRow(pct(b),
			secs(r.RT[0][bi]), secs(r.RT[1][bi]), secs(r.RT[2][bi]),
			secs(r.BestTimeoutAt(bi)))
	}
	t.AddNote("paper: tight budgets favour loose timeouts (sprint only the slowest); loose budgets favour strict timeouts")
	t.AddNote("reproduction: the loose-budget half holds (strict-timeout advantage grows with budget); the tight-budget crossover flattens but does not invert here — with budgets in wall-clock sprint-seconds and uniform speedups, each budget-second buys the same speedup wherever spent, so more sprinting is always weakly better; see EXPERIMENTS.md")
	return t
}
