package experiments

import (
	"fmt"

	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/sprint"
	"mdsprint/internal/testbed"
	"mdsprint/internal/workload"
)

// Fig1Timeout is one timeout setting's outcome in the Figure 1 study.
type Fig1Timeout struct {
	Timeout  float64
	MeanRT   float64
	Sprinted int
	// Timeline holds per-query records for the timeline rendering.
	Timeline []testbed.QueryRecord
}

// Fig1Result reproduces Figure 1 and the Section 1 walkthrough: under a
// tight sprinting budget, a 1-minute timeout drains the budget on early
// arrivals, a 3-minute timeout is too conservative, and a 2-minute
// timeout improves response time (the paper reports 25%).
type Fig1Result struct {
	Settings []Fig1Timeout
	// BestTimeout and WorstTimeout index into Settings.
	BestTimeout, WorstTimeout float64
	Improvement               float64 // worst mean RT / best mean RT
}

// Fig1 runs the tight-budget timeout walkthrough on SparkStream: ~41 s
// executions with a strong (2.6x) sprint speedup, timeouts at roughly
// half/one/one-and-a-half service times — the figure's minute-scale
// story rescaled to the workload. The figure is a short-horizon story —
// six queries against a budget worth about two full sprints — so each
// timeout is evaluated over many independent short busy periods and the
// mean response time is averaged across them.
func Fig1(lab *Lab) Fig1Result {
	stream := workload.MustByName("SparkStream")
	var out Fig1Result
	reps := lab.Scale.ProfQueries / 4
	if reps < 50 {
		reps = 50
	}
	for _, timeout := range []float64{20, 40, 60} {
		sumRT := 0.0
		sprinted := 0
		var timeline []testbed.QueryRecord
		for rep := 0; rep < reps; rep++ {
			cfg := testbed.Config{
				Mix:       workload.SingleClass(stream),
				Mechanism: mech.DVFS{},
				Policy: sprint.Policy{
					Timeout: timeout,
					// Tight: roughly two fully sprinted
					// executions, no refill within the window.
					BudgetSeconds: 32,
					RefillTime:    1e9,
					Speedup:       1e9,
				},
				ArrivalRate: 0.9 * sprint.QPH(87),
				// Figure 1's trace shape: two early arrivals in
				// an idle period, then a four-query burst. A
				// short timeout wastes the budget mid-execution
				// on the idle pair; a long one never fires for
				// the burst.
				ArrivalOverride: dist.NewSequence(
					[]float64{5, 45, 50, 3, 3, 3}, 0.25),
				NumQueries: 6,
				Warmup:     0,
				Seed:       lab.Scale.Seed + 41 + uint64(rep)*613,
			}
			res := testbed.MustRun(cfg)
			sumRT += res.MeanResponseTime()
			sprinted += res.SprintedCount
			if rep == 0 {
				timeline = res.Queries
			}
		}
		out.Settings = append(out.Settings, Fig1Timeout{
			Timeout:  timeout,
			MeanRT:   sumRT / float64(reps),
			Sprinted: sprinted,
			Timeline: timeline,
		})
	}
	best, worst := out.Settings[0], out.Settings[0]
	for _, s := range out.Settings[1:] {
		if s.MeanRT < best.MeanRT {
			best = s
		}
		if s.MeanRT > worst.MeanRT {
			worst = s
		}
	}
	out.BestTimeout = best.Timeout
	out.WorstTimeout = worst.Timeout
	out.Improvement = worst.MeanRT / best.MeanRT
	return out
}

// Table renders the result.
func (r Fig1Result) Table() Table {
	t := Table{
		Title:   "Figure 1 — query executions under a tight sprinting budget",
		Columns: []string{"timeout", "mean RT", "queries sprinted"},
	}
	for _, s := range r.Settings {
		t.AddRow(secs(s.Timeout), secs(s.MeanRT), fmt.Sprintf("%d", s.Sprinted))
	}
	t.AddNote("best timeout %.0fs beats worst %.0fs by %s (paper: subtle timeout changes move RT ~25%%)",
		r.BestTimeout, r.WorstTimeout, ratio(r.Improvement))
	return t
}
