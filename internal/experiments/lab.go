// Package experiments regenerates every table and figure in the paper's
// evaluation (Sections 3 and 4). Each figure has one entry point taking a
// Lab, which caches profiled datasets and trained models so related
// experiments share work. The Scale knob switches between Quick (unit
// tests, seconds) and Full (cmd/benchgen, the numbers recorded in
// EXPERIMENTS.md).
//
// Absolute response times come from this repository's simulated testbed,
// so results are compared to the paper by shape: who wins, by what
// factor, and where crossovers fall. See EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sync"

	"mdsprint/internal/ann"
	"mdsprint/internal/calib"
	"mdsprint/internal/core"
	"mdsprint/internal/forest"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/sweep"
	"mdsprint/internal/workload"
)

// Scale sizes every experiment.
type Scale struct {
	Name string
	// ProfQueries is the testbed queries per profiling run.
	ProfQueries int
	// GridSamples is the number of cluster-sampling conditions profiled
	// per dataset.
	GridSamples int
	// CalibQueries sizes each calibration simulation.
	CalibQueries int
	// SimQueries and SimReps size each model prediction.
	SimQueries int
	SimReps    int
	// ANNEpochs bounds ANN training.
	ANNEpochs int
	// AnnealIter bounds policy-search annealing.
	AnnealIter int
	// Workloads lists the Table 1C classes exercised by the multi-
	// workload experiments (Figures 7, 8, 10).
	Workloads []string
	// Seed roots all randomness.
	Seed uint64
}

// Quick is the test-sized scale: every experiment runs in seconds.
func Quick() Scale {
	return Scale{
		Name:        "quick",
		ProfQueries: 800, GridSamples: 32, CalibQueries: 1500,
		SimQueries: 2000, SimReps: 2, ANNEpochs: 250, AnnealIter: 30,
		// Leuk (the paper's hardest workload for the hybrid model,
		// Section 3.2) is exercised at Full scale; Quick pairs the
		// canonical kernel with a Spark service.
		Workloads: []string{"Jacobi", "SparkKmeans"},
		Seed:      1,
	}
}

// Full is the benchgen scale used for the EXPERIMENTS.md record.
func Full() Scale {
	return Scale{
		Name:        "full",
		ProfQueries: 2000, GridSamples: 140, CalibQueries: 3000,
		SimQueries: 4000, SimReps: 3, ANNEpochs: 600, AnnealIter: 80,
		Workloads: []string{"SparkStream", "SparkKmeans", "Jacobi", "KNN", "BFS", "Mem", "Leuk"},
		Seed:      1,
	}
}

// Lab caches profiled datasets, splits and trained models across
// experiments, and owns the sweep engine their simulator evaluations
// share: calibration, model predictions and policy scoring all memoize
// into one pool, so experiments that revisit conditions (Figures 10,
// 12-13 and the cluster in/out study) pay for each point once.
type Lab struct {
	Scale Scale

	engine   *sweep.Engine
	mu       sync.Mutex
	datasets map[string]*profiler.Dataset
	hybrids  map[string]*core.Hybrid
}

// NewLab returns an empty lab at the given scale.
func NewLab(s Scale) *Lab {
	return &Lab{
		Scale:    s,
		engine:   sweep.New(sweep.Options{}),
		datasets: make(map[string]*profiler.Dataset),
		hybrids:  make(map[string]*core.Hybrid),
	}
}

// Engine exposes the lab's shared policy-sweep engine.
func (l *Lab) Engine() *sweep.Engine { return l.engine }

// calibOptions derives the lab's calibration settings. The tolerance sits
// above the measurement noise of the profiling runs so that conditions
// whose response time is insensitive to the sprint rate calibrate to
// mu_m itself (Equation 2's minimal |x|) instead of wandering.
func (l *Lab) calibOptions() calib.Options {
	return calib.Options{
		NumQueries:   l.Scale.CalibQueries,
		Replications: 3,
		Tolerance:    0.025,
		Seed:         l.Scale.Seed + 101,
		Engine:       l.engine,
	}
}

// hybridOptions derives the lab's hybrid-model settings.
func (l *Lab) hybridOptions() core.HybridOptions {
	return core.HybridOptions{
		// Ten trees per the paper; with ~11 features and modest
		// training sets, aggressive feature subsetting lets trees
		// miss load-bearing features (utilization, arrival family),
		// so each tree keeps most of them.
		Forest:     forest.Config{Trees: 10, FeatureFrac: 0.9, Seed: l.Scale.Seed + 7},
		Calib:      l.calibOptions(),
		SimQueries: l.Scale.SimQueries,
		SimReps:    l.Scale.SimReps,
		Seed:       l.Scale.Seed + 13,
		Engine:     l.engine,
	}
}

// annConfig is the Table 1(A) baseline architecture, epoch-bounded by the
// scale.
func (l *Lab) annConfig() ann.Config {
	return ann.Config{
		HiddenLayers: 10, Width: 100,
		Epochs: l.Scale.ANNEpochs, Seed: l.Scale.Seed + 17,
	}
}

// datasetKey identifies a cached dataset.
func datasetKey(mix workload.Mix, m mech.Mechanism, grid string) string {
	return fmt.Sprintf("%s|%s|%s", mix.Name, m.Name(), grid)
}

// Dataset profiles (or returns the cached profile of) a mix on a
// mechanism over the paper grid, sampled to the scale's budget.
func (l *Lab) Dataset(mix workload.Mix, m mech.Mechanism) *profiler.Dataset {
	return l.DatasetWithGrid(mix, m, "paper", profiler.PaperGrid())
}

// DatasetWithGrid profiles with a caller-chosen grid (Figure 8C's dense
// core-scaling study).
func (l *Lab) DatasetWithGrid(mix workload.Mix, m mech.Mechanism, gridName string, grid profiler.Grid) *profiler.Dataset {
	key := datasetKey(mix, m, gridName)
	l.mu.Lock()
	if ds, ok := l.datasets[key]; ok {
		l.mu.Unlock()
		return ds
	}
	l.mu.Unlock()
	p := &profiler.Profiler{
		Mix:           mix,
		Mechanism:     m,
		QueriesPerRun: l.Scale.ProfQueries,
		Replications:  2,
		Seed:          l.Scale.Seed + hashString(key),
	}
	conds := grid.Sample(l.Scale.GridSamples, l.Scale.Seed+3)
	ds := p.Profile(conds)
	l.mu.Lock()
	l.datasets[key] = ds
	l.mu.Unlock()
	return ds
}

// Split returns the dataset's observations partitioned with the given
// train fraction, deterministically.
func (l *Lab) Split(ds *profiler.Dataset, trainFrac float64) (train, test []profiler.Observation) {
	return profiler.SplitObservations(ds.Observations, trainFrac, l.Scale.Seed+29)
}

// Hybrid trains (or returns the cached) hybrid model for one dataset and
// training split.
func (l *Lab) Hybrid(ds *profiler.Dataset, train []profiler.Observation, tag string) (*core.Hybrid, error) {
	key := fmt.Sprintf("%s|%s|%s|%d", ds.MixName, ds.MechName, tag, len(train))
	l.mu.Lock()
	if h, ok := l.hybrids[key]; ok {
		l.mu.Unlock()
		return h, nil
	}
	l.mu.Unlock()
	h, err := core.TrainHybrid(
		[]core.TrainingSet{{Dataset: ds, Observations: train}},
		l.hybridOptions(),
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: training hybrid for %s/%s: %w", ds.MixName, ds.MechName, err)
	}
	l.mu.Lock()
	l.hybrids[key] = h
	l.mu.Unlock()
	return h, nil
}

// NoML returns the simulator-only baseline sized to the lab.
func (l *Lab) NoML() *core.NoML {
	return &core.NoML{
		SimQueries: l.Scale.SimQueries,
		SimReps:    l.Scale.SimReps,
		Seed:       l.Scale.Seed + 13,
	}
}

// ANN trains the direct-mapping baseline on one dataset split.
func (l *Lab) ANN(ds *profiler.Dataset, train []profiler.Observation) (*core.ANN, error) {
	return core.TrainANN([]core.TrainingSet{{Dataset: ds, Observations: train}}, l.annConfig())
}

// Classes resolves the scale's workload list.
func (l *Lab) Classes() []*workload.Class {
	out := make([]*workload.Class, 0, len(l.Scale.Workloads))
	for _, name := range l.Scale.Workloads {
		out = append(out, workload.MustByName(name))
	}
	return out
}

// hashString is a small FNV-style hash for seed derivation.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h % 100000
}
