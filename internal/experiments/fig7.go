package experiments

import (
	"fmt"

	"mdsprint/internal/core"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/stats"
	"mdsprint/internal/workload"
)

// fig7Buckets are Figure 7's x-axis groups.
var fig7Buckets = []string{"Overall", "30%", "50%", "75%", "95%"}

// Fig7Result compares the modeling approaches of Table 1(A) — Hybrid,
// No-ML, ANN, and ANN with enlarged training data — by median absolute
// relative error, overall and per arrival-rate group.
type Fig7Result struct {
	Approaches []string
	// Errors[approach][bucket] collects per-test absolute relative
	// errors pooled across the lab's workloads.
	Errors map[string]map[string][]float64
}

// MedianError returns the median error for one approach and bucket (NaN
// if the bucket is empty).
func (r Fig7Result) MedianError(approach, bucket string) float64 {
	return stats.Median(r.Errors[approach][bucket])
}

// bucketOf maps an observation to its arrival-rate group.
func bucketOf(cond profiler.Condition) string {
	switch {
	case cond.Utilization <= 0.40:
		return "30%"
	case cond.Utilization <= 0.60:
		return "50%"
	case cond.Utilization <= 0.85:
		return "75%"
	default:
		return "95%"
	}
}

// Fig7 profiles each workload on DVFS, trains every approach on the 80%
// split, and evaluates on the held-out 20%.
func Fig7(lab *Lab) (Fig7Result, error) {
	res := Fig7Result{
		Approaches: []string{"Hybrid", "No-ML", "ANN", "ANN +more data"},
		Errors:     map[string]map[string][]float64{},
	}
	for _, a := range res.Approaches {
		res.Errors[a] = map[string][]float64{}
	}
	record := func(approach string, obs []profiler.Observation, ev core.Evaluation) {
		for i, o := range obs {
			e := ev.Errors[i]
			res.Errors[approach]["Overall"] = append(res.Errors[approach]["Overall"], e)
			b := bucketOf(o.Cond)
			res.Errors[approach][b] = append(res.Errors[approach][b], e)
		}
	}
	for _, c := range lab.Classes() {
		mix := workload.SingleClass(c)
		ds := lab.Dataset(mix, mech.DVFS{})
		train, test := lab.Split(ds, 0.8)

		hybrid, err := lab.Hybrid(ds, train, "fig7")
		if err != nil {
			return res, err
		}
		annModel, err := lab.ANN(ds, train)
		if err != nil {
			return res, err
		}
		// "ANN with more training data": a second profiling pass adds
		// fresh conditions (test conditions excluded to avoid leakage).
		extra := lab.extraObservations(mix, test, lab.Scale.GridSamples/2)
		annMore, err := core.TrainANN(
			[]core.TrainingSet{{Dataset: ds, Observations: append(append([]profiler.Observation{}, train...), extra...)}},
			lab.annConfig(),
		)
		if err != nil {
			return res, err
		}
		models := map[string]core.Model{
			"Hybrid":         hybrid,
			"No-ML":          lab.NoML(),
			"ANN":            annModel,
			"ANN +more data": annMore,
		}
		for name, m := range models {
			ev, err := core.Evaluate(m, ds, test)
			if err != nil {
				return res, fmt.Errorf("fig7 %s on %s: %w", name, c.Name, err)
			}
			record(name, test, ev)
		}
	}
	return res, nil
}

// extraObservations profiles up to n additional grid conditions not
// present in the exclusion list.
func (l *Lab) extraObservations(mix workload.Mix, exclude []profiler.Observation, n int) []profiler.Observation {
	excluded := map[profiler.Condition]bool{}
	for _, o := range exclude {
		excluded[o.Cond] = true
	}
	pool := profiler.PaperGrid().Sample(l.Scale.GridSamples*2+2*n, l.Scale.Seed+57)
	var conds []profiler.Condition
	for _, c := range pool {
		if !excluded[c] {
			conds = append(conds, c)
		}
		if len(conds) >= n {
			break
		}
	}
	p := &profiler.Profiler{
		Mix:           mix,
		Mechanism:     mech.DVFS{},
		QueriesPerRun: l.Scale.ProfQueries,
		Seed:          l.Scale.Seed + 59,
	}
	ds := p.Profile(conds)
	return ds.Observations
}

// Table renders median error per approach and arrival-rate group.
func (r Fig7Result) Table() Table {
	t := Table{
		Title:   "Figure 7 — median abs. relative error by modeling approach and arrival rate",
		Columns: append([]string{"approach"}, fig7Buckets...),
	}
	for _, a := range r.Approaches {
		row := []string{a}
		for _, b := range fig7Buckets {
			row = append(row, pct(r.MedianError(a, b)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: Hybrid ~4%% overall; ANN ~30%%; No-ML worst at high arrival rates; ANN improves with more data")
	return t
}
