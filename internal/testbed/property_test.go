package testbed

import (
	"math"
	"testing"
	"testing/quick"

	"mdsprint/internal/mech"
	"mdsprint/internal/sprint"
	"mdsprint/internal/workload"
)

// TestRandomPolicyInvariants fuzzes sprinting policies across workloads
// and mechanisms and checks the per-query structural invariants.
func TestRandomPolicyInvariants(t *testing.T) {
	cat := workload.Catalog()
	mechs := mech.All()
	f := func(seed uint64, wlRaw, mRaw, utilRaw, toRaw, budRaw, refRaw uint8) bool {
		class := cat[int(wlRaw)%len(cat)]
		m := mechs[int(mRaw)%len(mechs)]
		util := 0.1 + 0.85*float64(utilRaw)/255
		cfg := Config{
			Mix:       workload.SingleClass(class),
			Mechanism: m,
			Policy: sprint.Policy{
				Timeout:       float64(toRaw) * 2,
				BudgetSeconds: float64(budRaw) * 5,
				RefillTime:    10 + float64(refRaw)*10,
				Speedup:       1e9,
			},
			ArrivalRate: util * sprint.QPH(m.SustainedQPH(class)),
			NumQueries:  250,
			Warmup:      25,
			Seed:        seed,
		}
		res := MustRun(cfg)
		if len(res.Queries) != cfg.NumQueries {
			return false
		}
		prevStart := math.Inf(-1)
		for i := range res.Queries {
			q := &res.Queries[i]
			if q.Start < q.Arrival || q.Depart < q.Start {
				return false
			}
			if math.IsNaN(q.Depart) || q.ServiceTime <= 0 {
				return false
			}
			// Single slot: FIFO dispatch order.
			if q.Start < prevStart {
				return false
			}
			prevStart = q.Start
			// Sprint bookkeeping consistency.
			if q.Sprinted && (q.SprintTau < 0 || q.SprintTau >= 1) {
				return false
			}
			if !q.Sprinted && q.SprintSeconds != 0 {
				return false
			}
			// Processing never beats the best possible sprint.
			best := q.ServiceTime / m.MarginalSpeedup(class)
			if q.ProcessingTime() < best*0.999 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSoftBudgetOverdraws: a soft-budget policy never cuts sprints off,
// so every timed-out query sprints even after the nominal budget drains.
func TestSoftBudgetOverdraws(t *testing.T) {
	jacobi := workload.MustByName("Jacobi")
	cfg := Config{
		Mix:       workload.SingleClass(jacobi),
		Mechanism: mech.DVFS{},
		Policy: sprint.Policy{
			Timeout: 0, BudgetSeconds: 50, RefillTime: 1e12,
			Speedup: 1e9, Soft: true,
		},
		ArrivalRate: 0.6 * sprint.QPH(51),
		NumQueries:  400,
		Warmup:      0,
		Seed:        3,
	}
	res := MustRun(cfg)
	if res.SprintedCount != len(res.Queries) {
		t.Fatalf("soft budget: only %d/%d sprinted", res.SprintedCount, len(res.Queries))
	}
	total := 0.0
	for i := range res.Queries {
		total += res.Queries[i].SprintSeconds
	}
	if total <= cfg.Policy.BudgetSeconds {
		t.Fatalf("soft budget never overdrew (%v consumed)", total)
	}
}

// TestWindowRefillPolicyOnTestbed: the paper's refill clause flows through
// Policy into the testbed; with frequent sprinting it supplies less than
// continuous accrual.
func TestWindowRefillPolicyOnTestbed(t *testing.T) {
	jacobi := workload.MustByName("Jacobi")
	base := Config{
		Mix:       workload.SingleClass(jacobi),
		Mechanism: mech.DVFS{},
		Policy: sprint.Policy{
			Timeout: 0, BudgetSeconds: 100, RefillTime: 500, Speedup: 1e9,
		},
		ArrivalRate: 0.85 * sprint.QPH(51),
		NumQueries:  2500,
		Warmup:      250,
		Seed:        5,
	}
	cont := MustRun(base)
	wcfg := base
	wcfg.Policy.Refill = sprint.RefillWindow
	win := MustRun(wcfg)
	contSpend, winSpend := 0.0, 0.0
	for i := range cont.Queries {
		contSpend += cont.Queries[i].SprintSeconds
	}
	for i := range win.Queries {
		winSpend += win.Queries[i].SprintSeconds
	}
	if winSpend >= contSpend {
		t.Fatalf("window refill spent %v vs continuous %v", winSpend, contSpend)
	}
}

// TestBudgetNeverOversupplied: total sprint-seconds consumed cannot
// exceed initial capacity plus refill accrual over the run.
func TestBudgetNeverOversupplied(t *testing.T) {
	jacobi := workload.MustByName("Jacobi")
	cfg := Config{
		Mix:       workload.SingleClass(jacobi),
		Mechanism: mech.DVFS{},
		Policy: sprint.Policy{
			Timeout: 0, BudgetSeconds: 80, RefillTime: 300, Speedup: 1e9,
		},
		ArrivalRate: 0.9 * sprint.QPH(51),
		NumQueries:  3000,
		Warmup:      0,
		Seed:        7,
	}
	res := MustRun(cfg)
	total := 0.0
	for i := range res.Queries {
		total += res.Queries[i].SprintSeconds
	}
	supply := cfg.Policy.BudgetSeconds + cfg.Policy.RefillRate()*res.Duration
	if total > supply*1.02 {
		t.Fatalf("consumed %v sprint-seconds of a %v supply", total, supply)
	}
}
