package testbed

import (
	"math"
	"sort"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/sprint"
	"mdsprint/internal/stats"
	"mdsprint/internal/workload"
)

// noSprint is a policy with sprinting disabled.
var noSprint = sprint.Policy{Timeout: -1}

// jacobiCfg is a baseline config used across tests.
func jacobiCfg() Config {
	jacobi := workload.MustByName("Jacobi")
	return Config{
		Mix:         workload.SingleClass(jacobi),
		Mechanism:   mech.DVFS{},
		Policy:      noSprint,
		ArrivalRate: 0.5 * sprint.QPH(51),
		NumQueries:  2000,
		Warmup:      200,
		Seed:        1,
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{Mix: workload.MixI()},
		{Mix: workload.MixI(), Mechanism: mech.DVFS{}},
		{Mix: workload.MixI(), Mechanism: mech.DVFS{}, ArrivalRate: -1},
		{Mix: workload.MixI(), Mechanism: mech.DVFS{}, ArrivalRate: 1, Warmup: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := jacobiCfg()
	a := MustRun(cfg)
	b := MustRun(cfg)
	if len(a.Queries) != len(b.Queries) {
		t.Fatalf("query counts differ: %d vs %d", len(a.Queries), len(b.Queries))
	}
	for i := range a.Queries {
		if a.Queries[i].Depart != b.Queries[i].Depart {
			t.Fatalf("query %d departs differ: %v vs %v", i, a.Queries[i].Depart, b.Queries[i].Depart)
		}
	}
	cfg.Seed = 2
	c := MustRun(cfg)
	if c.MeanResponseTime() == a.MeanResponseTime() {
		t.Fatal("different seeds gave identical mean response time")
	}
}

func TestWarmupExcluded(t *testing.T) {
	cfg := jacobiCfg()
	res := MustRun(cfg)
	if len(res.Queries) != cfg.NumQueries {
		t.Fatalf("measured %d queries, want %d", len(res.Queries), cfg.NumQueries)
	}
	for i := range res.Queries {
		if res.Queries[i].Warm {
			t.Fatal("warmup query leaked into results")
		}
		if res.Queries[i].ID < cfg.Warmup {
			t.Fatalf("query %d is from the warmup range", res.Queries[i].ID)
		}
	}
}

func TestFIFOSingleSlot(t *testing.T) {
	res := MustRun(jacobiCfg())
	starts := make([]float64, len(res.Queries))
	for i := range res.Queries {
		starts[i] = res.Queries[i].Start
		q := &res.Queries[i]
		if q.Start < q.Arrival || q.Depart < q.Start {
			t.Fatalf("query %d timestamps out of order: %+v", q.ID, q)
		}
	}
	if !sort.Float64sAreSorted(starts) {
		t.Fatal("single-slot dispatches not FIFO")
	}
}

func TestNoSprintMeansProcessingEqualsService(t *testing.T) {
	cfg := jacobiCfg()
	cfg.DisableRuntimeEffects = true
	res := MustRun(cfg)
	if res.SprintedCount != 0 {
		t.Fatalf("%d queries sprinted under disabled policy", res.SprintedCount)
	}
	for i := range res.Queries {
		q := &res.Queries[i]
		if math.Abs(q.ProcessingTime()-q.ServiceTime) > 1e-9 {
			t.Fatalf("query %d: processing %v != service %v", q.ID, q.ProcessingTime(), q.ServiceTime)
		}
	}
}

// TestMM1ResponseTime cross-validates the queue manager against the M/M/1
// closed form RT = 1/(mu - lambda).
func TestMM1ResponseTime(t *testing.T) {
	mu := 1.0 / 10 // 10 s mean service
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		cfg := jacobiCfg()
		cfg.DisableRuntimeEffects = true
		cfg.ServiceOverride = dist.NewExponential(mu)
		cfg.ArrivalRate = rho * mu
		cfg.NumQueries = 60000
		cfg.Warmup = 5000
		res := MustRun(cfg)
		want := 1 / (mu - cfg.ArrivalRate)
		got := res.MeanResponseTime()
		if math.Abs(got-want)/want > 0.06 {
			t.Errorf("rho=%v: mean RT %v, want %v (M/M/1)", rho, got, want)
		}
	}
}

// TestMD1Queueing cross-validates against the M/D/1 Pollaczek-Khinchine
// mean wait W = rho*S / (2(1-rho)).
func TestMD1Queueing(t *testing.T) {
	serviceTime := 8.0
	mu := 1 / serviceTime
	rho := 0.7
	cfg := jacobiCfg()
	cfg.DisableRuntimeEffects = true
	cfg.ServiceOverride = dist.Deterministic{Value: serviceTime}
	cfg.ArrivalRate = rho * mu
	cfg.NumQueries = 60000
	cfg.Warmup = 5000
	res := MustRun(cfg)
	waits := make([]float64, len(res.Queries))
	for i := range res.Queries {
		waits[i] = res.Queries[i].QueueingTime()
	}
	want := rho * serviceTime / (2 * (1 - rho))
	got := stats.Mean(waits)
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("M/D/1 mean wait %v, want %v", got, want)
	}
}

func TestFullSprintHitsMarginalRate(t *testing.T) {
	// Timeout 0 with an effectively unlimited budget sprints every
	// query for its whole execution: mean processing time must equal
	// service time divided by the marginal speedup.
	jacobi := workload.MustByName("Jacobi")
	cfg := jacobiCfg()
	cfg.DisableRuntimeEffects = true // no toggle cost in this check
	cfg.Policy = sprint.Policy{Timeout: 0, BudgetSeconds: 1e12, RefillTime: 1, Speedup: 99}
	cfg.ArrivalRate = 0.3 * sprint.QPH(51)
	res := MustRun(cfg)
	if res.SprintedCount != len(res.Queries) {
		t.Fatalf("only %d/%d queries sprinted", res.SprintedCount, len(res.Queries))
	}
	speedup := (mech.DVFS{}).MarginalSpeedup(jacobi)
	for i := range res.Queries {
		q := &res.Queries[i]
		want := q.ServiceTime / speedup
		if math.Abs(q.ProcessingTime()-want)/want > 0.02 {
			t.Fatalf("query %d: sprinted processing %v, want %v", q.ID, q.ProcessingTime(), want)
		}
	}
}

func TestTightBudgetExhausts(t *testing.T) {
	// Figure 1's shape: a tight, non-refilling budget lets early
	// arrivals sprint and starves later ones.
	cfg := jacobiCfg()
	cfg.Policy = sprint.Policy{Timeout: 0, BudgetSeconds: 120, RefillTime: 1e12, Speedup: 99}
	cfg.ArrivalRate = 0.8 * sprint.QPH(51)
	cfg.Warmup = 0
	cfg.NumQueries = 300
	res := MustRun(cfg)
	if res.SprintedCount == 0 {
		t.Fatal("no queries sprinted despite timeout 0")
	}
	if res.SprintedCount == len(res.Queries) {
		t.Fatal("budget never exhausted despite being tight")
	}
	// Sprint-seconds consumed must respect capacity plus the trickle
	// refill (negligible here).
	total := 0.0
	for i := range res.Queries {
		total += res.Queries[i].SprintSeconds
	}
	if total > cfg.Policy.BudgetSeconds*1.05 {
		t.Fatalf("consumed %v sprint-seconds from a %v budget", total, cfg.Policy.BudgetSeconds)
	}
	// The early sprinters should precede the starved ones on average.
	firstNonSprinter := -1
	for i := range res.Queries {
		if !res.Queries[i].Sprinted {
			firstNonSprinter = i
			break
		}
	}
	if firstNonSprinter == 0 {
		t.Fatal("first query did not sprint despite a full budget")
	}
}

func TestSprintingImprovesResponseTimeUnderLoad(t *testing.T) {
	base := jacobiCfg()
	base.ArrivalRate = 0.85 * sprint.QPH(51)
	base.NumQueries = 4000
	base.Warmup = 400
	slow := MustRun(base)
	fast := base
	fast.Policy = sprint.Policy{Timeout: 60, BudgetSeconds: 2000, RefillTime: 200, Speedup: 99}
	sped := MustRun(fast)
	if sped.MeanResponseTime() >= slow.MeanResponseTime() {
		t.Fatalf("sprinting did not help: %v vs %v", sped.MeanResponseTime(), slow.MeanResponseTime())
	}
}

func TestTimeoutWhileExecutingSprintsMidway(t *testing.T) {
	// Low load so queries start immediately; timeout fires mid-run.
	cfg := jacobiCfg()
	cfg.ArrivalRate = 0.05 * sprint.QPH(51)
	cfg.Policy = sprint.Policy{Timeout: 30, BudgetSeconds: 1e9, RefillTime: 1, Speedup: 99}
	cfg.NumQueries = 500
	cfg.Warmup = 0
	res := MustRun(cfg)
	midSprints := 0
	for i := range res.Queries {
		q := &res.Queries[i]
		if q.Sprinted && q.SprintTau > 0.05 {
			midSprints++
			if q.SprintTau >= 1 {
				t.Fatalf("sprint engaged at tau=%v", q.SprintTau)
			}
		}
	}
	if midSprints == 0 {
		t.Fatal("no mid-execution sprints despite in-flight timeouts")
	}
}

func TestPendingSprintEngagesAtDispatchWithTauZero(t *testing.T) {
	// Heavy load and a short timeout: timeouts fire while queued, so
	// sprints engage at dispatch with tau == 0 (whole-execution
	// sprints, the marginal-rate measurement condition).
	cfg := jacobiCfg()
	cfg.ArrivalRate = 0.95 * sprint.QPH(51)
	cfg.Policy = sprint.Policy{Timeout: 5, BudgetSeconds: 1e9, RefillTime: 1, Speedup: 99}
	cfg.NumQueries = 1000
	cfg.Warmup = 100
	res := MustRun(cfg)
	whole := 0
	for i := range res.Queries {
		q := &res.Queries[i]
		if q.Sprinted && q.SprintTau == 0 && q.QueueingTime() > 5 {
			whole++
		}
	}
	if whole == 0 {
		t.Fatal("no whole-execution sprints from queued timeouts")
	}
}

func TestToggleOverheadCharged(t *testing.T) {
	// With runtime effects on and a sprint starting at dispatch, the
	// processing time includes the mechanism's toggle overhead.
	jacobi := workload.MustByName("Jacobi")
	cfg := jacobiCfg()
	cfg.ArrivalRate = 0.1 * sprint.QPH(51)
	cfg.Policy = sprint.Policy{Timeout: 0, BudgetSeconds: 1e9, RefillTime: 1, Speedup: 99}
	cfg.NumQueries = 800
	res := MustRun(cfg)
	speedup := (mech.DVFS{}).MarginalSpeedup(jacobi)
	overhead := (mech.DVFS{}).ToggleOverhead()
	var diffs []float64
	for i := range res.Queries {
		q := &res.Queries[i]
		if q.Sprinted && q.SprintTau == 0 {
			diffs = append(diffs, q.ProcessingTime()-q.ServiceTime/speedup)
		}
	}
	if len(diffs) == 0 {
		t.Fatal("no whole-execution sprints")
	}
	if got := stats.Median(diffs); math.Abs(got-overhead) > 0.05 {
		t.Fatalf("median sprint overhead %v, want ~%v", got, overhead)
	}
}

func TestMultipleSlotsReduceQueueing(t *testing.T) {
	cfg := jacobiCfg()
	cfg.ArrivalRate = 0.9 * sprint.QPH(51)
	cfg.NumQueries = 3000
	one := MustRun(cfg)
	cfg.Slots = 2
	two := MustRun(cfg)
	if two.MeanResponseTime() >= one.MeanResponseTime() {
		t.Fatalf("2 slots RT %v >= 1 slot RT %v", two.MeanResponseTime(), one.MeanResponseTime())
	}
}

func TestMixedWorkloadRecordsClasses(t *testing.T) {
	cfg := jacobiCfg()
	cfg.Mix = workload.MixI()
	cfg.ArrivalRate = 0.5 * workload.MixI().SustainedRate()
	res := MustRun(cfg)
	seen := map[string]int{}
	for i := range res.Queries {
		seen[res.Queries[i].Class]++
	}
	if len(seen) != 2 || seen["Jacobi"] == 0 || seen["SparkStream"] == 0 {
		t.Fatalf("mix classes seen: %v", seen)
	}
}

func TestPhaseWorkloadLateSprintsSlower(t *testing.T) {
	// Leuk's front-loaded phases: late sprints (high tau) must yield a
	// smaller achieved speedup than early sprints.
	leuk := workload.MustByName("Leuk")
	cfg := jacobiCfg()
	cfg.Mix = workload.SingleClass(leuk)
	cfg.ArrivalRate = 0.1 * sprint.QPH(25)
	cfg.Policy = sprint.Policy{Timeout: 100, BudgetSeconds: 1e9, RefillTime: 1, Speedup: 99}
	cfg.NumQueries = 2000
	res := MustRun(cfg)
	var lateSpeedups []float64
	for i := range res.Queries {
		q := &res.Queries[i]
		if q.Sprinted && q.SprintTau > 0.5 {
			// Achieved speedup over the sprinted remainder.
			sprintedTime := q.Depart - (q.Start + q.SprintTau*q.ServiceTime)
			sustainedTime := (1 - q.SprintTau) * q.ServiceTime
			lateSpeedups = append(lateSpeedups, sustainedTime/sprintedTime)
		}
	}
	if len(lateSpeedups) == 0 {
		t.Skip("no late sprints at this setting")
	}
	marginal := (mech.DVFS{}).MarginalSpeedup(leuk)
	if got := stats.Median(lateSpeedups); got >= marginal {
		t.Fatalf("late-sprint speedup %v should fall below marginal %v", got, marginal)
	}
}

func TestBudgetRefillEnablesLaterSprints(t *testing.T) {
	cfg := jacobiCfg()
	cfg.ArrivalRate = 0.7 * sprint.QPH(51)
	cfg.NumQueries = 1500
	cfg.Warmup = 0
	// Small budget with fast refill: sprints should keep happening
	// throughout the run, not just at the start.
	cfg.Policy = sprint.Policy{Timeout: 0, BudgetSeconds: 60, RefillTime: 120, Speedup: 99}
	res := MustRun(cfg)
	lastThird := 0
	for i := 2 * len(res.Queries) / 3; i < len(res.Queries); i++ {
		if res.Queries[i].Sprinted {
			lastThird++
		}
	}
	if lastThird == 0 {
		t.Fatal("refilling budget never enabled late sprints")
	}
}

func TestSmallBurstSpeedupClipped(t *testing.T) {
	// Policy.Speedup below the mechanism capability commands a slower
	// sprint (Section 4.3's small-burst).
	jacobi := workload.MustByName("Jacobi")
	cfg := jacobiCfg()
	cfg.DisableRuntimeEffects = true
	cfg.ArrivalRate = 0.1 * sprint.QPH(51)
	cfg.Policy = sprint.Policy{Timeout: 0, BudgetSeconds: 1e9, RefillTime: 1, Speedup: 1.2}
	res := MustRun(cfg)
	want := 1.2
	if (mech.DVFS{}).MarginalSpeedup(jacobi) < want {
		t.Fatal("test assumes DVFS speedup above 1.2")
	}
	for i := range res.Queries {
		q := &res.Queries[i]
		if !q.Sprinted {
			continue
		}
		got := q.ServiceTime / q.ProcessingTime()
		if math.Abs(got-want)/want > 0.02 {
			t.Fatalf("query %d speedup %v, want commanded %v", q.ID, got, want)
		}
	}
}

func TestDurationTracksLastDeparture(t *testing.T) {
	res := MustRun(jacobiCfg())
	maxDep := 0.0
	for i := range res.Queries {
		if d := res.Queries[i].Depart; d > maxDep {
			maxDep = d
		}
	}
	if res.Duration < maxDep {
		t.Fatalf("duration %v before last measured departure %v", res.Duration, maxDep)
	}
}
