// Package testbed is the ground-truth server in this reproduction: it
// plays the role of the paper's physical machines (Figure 3's query
// generator, queue manager and execution engine) for the workload
// profiler. It simulates query executions under a sprinting policy with
// the runtime effects real hardware exhibits and the model-side queue
// simulator deliberately ignores (Section 2.3):
//
//   - phase-dependent sprint speedup: a sprint that engages mid-execution
//     traverses only the remaining phases (workload.SprintCurve);
//   - toggle overhead: engaging a sprint costs wall-clock time (voltage
//     ramps, thread migration);
//   - load-coupled slowdown: service times inflate mildly with queue
//     depth (cache and scheduler interference).
//
// The profiler measures this testbed exactly as the paper's profiler
// measures hardware: service rate from non-sprinted executions, marginal
// sprint rate from whole-execution sprints, and observed response times
// per tested condition. Model code must never import this package's
// runtime-effect internals.
package testbed

import (
	"fmt"
	"math"

	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/sprint"
	"mdsprint/internal/workload"
)

// Defaults for runtime-effect knobs.
const (
	// defaultLoadCoeff degrades the speedup of a sprint engaging with q
	// queries queued: the gain over sustained shrinks by 1/(1 +
	// coeff*q). It models the "queue length when sprinting begins"
	// runtime factor of Section 2.3 — deep queues mean cache and
	// scheduler interference while the mechanism toggles.
	defaultLoadCoeff = 0.04
	// maxLoadDegradation caps how much of the sprint gain congestion
	// can eat.
	maxLoadDegradation = 3.0
)

// Config describes one testbed run.
type Config struct {
	// Mix is the query mix served.
	Mix workload.Mix
	// Mechanism is the sprinting hardware.
	Mechanism mech.Mechanism
	// Policy is the sprinting policy under test. Policy.Speedup, if
	// nonzero, commands a sprint rate below the mechanism's capability
	// (Section 4.3's small-burst); the testbed clips it to what the
	// mechanism can deliver per class.
	Policy sprint.Policy
	// ArrivalRate is the query arrival rate in queries/second.
	ArrivalRate float64
	// ArrivalKind selects the interarrival distribution family.
	ArrivalKind dist.Kind
	// Slots is the number of concurrent executions (default 1).
	Slots int
	// NumQueries is the number of measured queries.
	NumQueries int
	// Warmup queries are simulated before measurement begins and
	// excluded from results.
	Warmup int
	// Seed drives all randomness in the run.
	Seed uint64

	// DisableRuntimeEffects turns off toggle overhead, phase curves and
	// load-coupled sprint degradation, leaving an idealised server.
	// Used only by tests that cross-validate the testbed against the
	// model simulator.
	DisableRuntimeEffects bool
	// LoadCoeff overrides the default sprint-degradation coefficient
	// when non-zero (set negative to force exactly zero).
	LoadCoeff float64
	// ServiceOverride, when non-nil, replaces every class's service-time
	// distribution. Validation tests use it to check the testbed against
	// closed-form M/M/1 and M/G/1 results.
	ServiceOverride dist.Dist
	// ArrivalOverride, when non-nil, replaces the (ArrivalKind,
	// ArrivalRate) interarrival process — e.g. a scripted dist.Sequence
	// for trace-shaped studies. ArrivalRate must still be positive for
	// validation.
	ArrivalOverride dist.Dist
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Slots == 0 {
		out.Slots = 1
	}
	if out.NumQueries == 0 {
		out.NumQueries = 1000
	}
	if out.ArrivalKind == "" {
		out.ArrivalKind = dist.KindExponential
	}
	//lint:ignore floateq 0 is the "use default" sentinel while negative means "explicitly zero", so <= 0 would erase that distinction
	if out.LoadCoeff == 0 {
		out.LoadCoeff = defaultLoadCoeff
	}
	if out.LoadCoeff < 0 {
		out.LoadCoeff = 0
	}
	if out.DisableRuntimeEffects {
		out.LoadCoeff = 0
	}
	return out
}

func (c *Config) validate() error {
	if len(c.Mix.Components) == 0 {
		return fmt.Errorf("testbed: config needs a workload mix")
	}
	if c.Mechanism == nil {
		return fmt.Errorf("testbed: config needs a sprinting mechanism")
	}
	if c.ArrivalRate <= 0 || math.IsNaN(c.ArrivalRate) {
		return fmt.Errorf("testbed: arrival rate %v must be positive", c.ArrivalRate)
	}
	if c.Slots < 0 || c.NumQueries < 0 || c.Warmup < 0 {
		return fmt.Errorf("testbed: negative slots/queries/warmup")
	}
	return nil
}

// QueryRecord is the per-query measurement the queue manager produces: the
// three timestamps of Section 2.1 plus sprint bookkeeping.
type QueryRecord struct {
	ID      int
	Class   string
	Arrival float64
	Start   float64 // dispatch to the execution engine
	Depart  float64
	// ServiceTime is the sampled sustained-rate processing demand,
	// after load inflation. Without sprinting, Depart-Start equals it.
	ServiceTime float64
	// TimedOut marks that the sprint timeout fired for this query.
	TimedOut bool
	// Sprinted marks that a sprint actually engaged.
	Sprinted bool
	// SprintTau is the work-progress fraction at which the sprint
	// engaged (0 for whole-execution sprints).
	SprintTau float64
	// SprintSeconds is the budget consumed by this query.
	SprintSeconds float64
	// Warm marks warmup queries, excluded from statistics.
	Warm bool
}

// ResponseTime returns Depart - Arrival.
func (q *QueryRecord) ResponseTime() float64 { return q.Depart - q.Arrival }

// QueueingTime returns Start - Arrival.
func (q *QueryRecord) QueueingTime() float64 { return q.Start - q.Arrival }

// ProcessingTime returns Depart - Start.
func (q *QueryRecord) ProcessingTime() float64 { return q.Depart - q.Start }

// Result is one testbed run's output.
type Result struct {
	Config  Config
	Queries []QueryRecord // measured queries only (warmup dropped)
	// SprintedCount is the number of measured queries that sprinted.
	SprintedCount int
	// Duration is the virtual time of the last departure.
	Duration float64
}

// ResponseTimes returns the measured response times in arrival order.
func (r *Result) ResponseTimes() []float64 {
	out := make([]float64, len(r.Queries))
	for i := range r.Queries {
		out[i] = r.Queries[i].ResponseTime()
	}
	return out
}

// ProcessingTimes returns per-query processing times.
func (r *Result) ProcessingTimes() []float64 {
	out := make([]float64, len(r.Queries))
	for i := range r.Queries {
		out[i] = r.Queries[i].ProcessingTime()
	}
	return out
}

// MeanResponseTime returns the average measured response time.
func (r *Result) MeanResponseTime() float64 {
	if len(r.Queries) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range r.Queries {
		sum += r.Queries[i].ResponseTime()
	}
	return sum / float64(len(r.Queries))
}

// Run simulates the configured server and returns per-query records.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	s := newServer(c)
	s.run()
	return s.result(), nil
}

// MustRun is Run for callers with static configs; it panics on error.
func MustRun(cfg Config) *Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
