package testbed

import (
	"math"

	"mdsprint/internal/dist"
	"mdsprint/internal/sim"
	"mdsprint/internal/sprint"
	"mdsprint/internal/workload"
)

// execution tracks one query through the queue manager and execution
// engine. Progress is maintained piecewise: tau is the work fraction
// completed at segStart, and the current segment runs either at the
// sustained rate or along the sprint curve.
type execution struct {
	rec   *QueryRecord
	class *workload.Class
	curve *workload.SprintCurve

	tau      float64 // progress at segment start
	segStart float64 // virtual time the current segment began
	running  bool
	sprint   bool
	toggle   float64 // dead time at the head of the sprint segment
	// stretch >= 1 slows the sprint segment's progress along the curve:
	// load-coupled degradation from the queue depth at engage time.
	stretch float64

	sprintStart float64
	pending     bool // timeout fired while queued: sprint at dispatch

	departEv  *sim.Event
	timeoutEv *sim.Event
}

// server wires Figure 3 together: query generator (arrival events), FIFO
// queue manager with timeout interrupts and budget accounting, and an
// execution engine with a fixed number of slots.
type server struct {
	cfg  Config
	eng  *sim.Engine
	rng  *dist.RNG
	acct *sprint.Accountant

	interarrival dist.Dist
	serviceDists map[*workload.Class]dist.Dist
	curves       map[*workload.Class]*workload.SprintCurve
	toggleCost   float64

	queue     []*execution
	runningEx []*execution
	freeSlots int

	budgetEv *sim.Event

	records  []QueryRecord
	arrived  int
	departed int
	total    int
	lastDep  float64
}

func newServer(cfg Config) *server {
	interarrival := cfg.ArrivalOverride
	if interarrival == nil {
		interarrival = dist.ForRate(cfg.ArrivalKind, cfg.ArrivalRate)
	}
	s := &server{
		cfg:          cfg,
		eng:          sim.New(),
		rng:          dist.NewRNG(cfg.Seed),
		interarrival: interarrival,
		serviceDists: make(map[*workload.Class]dist.Dist),
		curves:       make(map[*workload.Class]*workload.SprintCurve),
		freeSlots:    cfg.Slots,
		total:        cfg.NumQueries + cfg.Warmup,
	}
	s.acct = sprint.ForPolicy(cfg.Policy)
	if !cfg.DisableRuntimeEffects {
		s.toggleCost = cfg.Mechanism.ToggleOverhead()
	}
	for _, comp := range cfg.Mix.Components {
		c := comp.Class
		// Service times at this mechanism's sustained operating
		// point, including mix interference.
		if cfg.ServiceOverride != nil {
			s.serviceDists[c] = cfg.ServiceOverride
		} else {
			meanSvc := 1 / sprint.QPH(cfg.Mechanism.SustainedQPH(c)) * cfg.Mix.Interference
			s.serviceDists[c] = dist.LogNormalFromMeanCV(meanSvc, c.ServiceCV)
		}
		s.curves[c] = s.buildCurve(c)
	}
	s.records = make([]QueryRecord, s.total)
	return s
}

// buildCurve returns the sprint curve for class c: the mechanism's
// marginal speedup clipped to the policy's commanded speedup, shaped by
// the class's phase profile (or uniform when runtime effects are off).
func (s *server) buildCurve(c *workload.Class) *workload.SprintCurve {
	speedup := s.cfg.Mechanism.MarginalSpeedup(c)
	if s.cfg.Policy.Speedup > 0 && s.cfg.Policy.Speedup < speedup {
		speedup = s.cfg.Policy.Speedup
	}
	if speedup < 1 {
		speedup = 1
	}
	shape := c.Phases.Shape(s.cfg.Mechanism.ParallelismBased())
	if s.cfg.DisableRuntimeEffects {
		shape = func(float64) float64 { return 1 }
	}
	return workload.NewSprintCurve(shape, speedup)
}

func (s *server) run() {
	if s.total == 0 {
		return
	}
	s.eng.Schedule(s.interarrival.Sample(s.rng), s.arrive)
	s.eng.RunAll()
}

func (s *server) result() *Result {
	measured := make([]QueryRecord, 0, s.cfg.NumQueries)
	sprinted := 0
	for i := range s.records {
		if s.records[i].Warm {
			continue
		}
		measured = append(measured, s.records[i])
		if s.records[i].Sprinted {
			sprinted++
		}
	}
	return &Result{Config: s.cfg, Queries: measured, SprintedCount: sprinted, Duration: s.lastDep}
}

// arrive admits the next query: timestamp it, enqueue, arm its timeout and
// schedule the following arrival.
func (s *server) arrive() {
	now := s.eng.Now()
	id := s.arrived
	s.arrived++
	class := s.cfg.Mix.Pick(s.rng)
	rec := &s.records[id]
	*rec = QueryRecord{
		ID:          id,
		Class:       class.Name,
		Arrival:     now,
		ServiceTime: s.serviceDists[class].Sample(s.rng),
		Warm:        id < s.cfg.Warmup,
	}
	e := &execution{rec: rec, class: class, curve: s.curves[class]}
	s.queue = append(s.queue, e)
	if p := s.cfg.Policy; !p.SprintingDisabled() {
		e.timeoutEv = s.eng.Schedule(now+p.Timeout, func() { s.onTimeout(e) })
	}
	if s.arrived < s.total {
		s.eng.After(s.interarrival.Sample(s.rng), s.arrive)
	}
	s.dispatch()
}

// dispatch moves queries from the queue head into free execution slots.
func (s *server) dispatch() {
	now := s.eng.Now()
	for s.freeSlots > 0 && len(s.queue) > 0 {
		e := s.queue[0]
		s.queue = s.queue[1:]
		s.freeSlots--
		e.running = true
		e.rec.Start = now
		e.tau = 0
		e.segStart = now
		s.runningEx = append(s.runningEx, e)
		if e.pending && s.acct.CanSprint(now) {
			s.engageSprint(e)
		} else {
			e.departEv = s.eng.Schedule(now+e.rec.ServiceTime, func() { s.depart(e) })
		}
	}
}

// progressAt returns the work fraction e has completed by time now.
func (s *server) progressAt(e *execution, now float64) float64 {
	elapsed := now - e.segStart
	if !e.sprint {
		tau := e.tau + elapsed/e.rec.ServiceTime
		return math.Min(tau, 1)
	}
	elapsed -= e.toggle
	if elapsed < 0 {
		elapsed = 0
	}
	return e.curve.ProgressAfter(e.rec.ServiceTime, e.tau, elapsed/e.stretch)
}

// onTimeout handles the timer interrupt of Section 2.1: queued queries are
// marked to sprint at dispatch; executing queries sprint immediately,
// budget permitting.
func (s *server) onTimeout(e *execution) {
	e.rec.TimedOut = true
	now := s.eng.Now()
	if !e.running {
		e.pending = true
		return
	}
	if !e.sprint && s.acct.CanSprint(now) {
		// Roll progress forward to now, then switch segments.
		e.tau = s.progressAt(e, now)
		e.segStart = now
		s.engageSprint(e)
	}
}

// engageSprint switches e to sprinting from its current (tau, segStart)
// and replans its departure. Caller must have updated tau/segStart to now.
func (s *server) engageSprint(e *execution) {
	now := s.eng.Now()
	s.acct.StartSprint(now)
	e.sprint = true
	e.toggle = s.toggleCost
	e.stretch = s.sprintStretch(e)
	e.sprintStart = now
	e.rec.Sprinted = true
	e.rec.SprintTau = e.tau
	remaining := e.toggle + e.stretch*e.curve.SprintedRemaining(e.rec.ServiceTime, e.tau)
	if e.departEv != nil {
		s.eng.Cancel(e.departEv)
	}
	e.departEv = s.eng.Schedule(now+remaining, func() { s.depart(e) })
	s.replanBudget()
}

// sprintStretch computes the load-coupled degradation of a sprint engaging
// now: with q queries queued, the speedup gain over sustained shrinks by
// 1/(1 + coeff*q), which stretches the sprinted remainder's wall-clock by
// S_avg / S_degraded (capped by maxLoadDegradation).
func (s *server) sprintStretch(e *execution) float64 {
	if s.cfg.LoadCoeff <= 0 {
		return 1
	}
	sAvg := e.curve.EffectiveSpeedupFrom(e.tau)
	if sAvg <= 1 {
		return 1
	}
	degrade := 1 + s.cfg.LoadCoeff*float64(len(s.queue))
	if degrade > maxLoadDegradation {
		degrade = maxLoadDegradation
	}
	sEff := 1 + (sAvg-1)/degrade
	return sAvg / sEff
}

// replanBudget (re)schedules the budget-exhaustion interrupt at the
// accountant's current time-to-empty horizon.
func (s *server) replanBudget() {
	now := s.eng.Now()
	if s.budgetEv != nil {
		s.eng.Cancel(s.budgetEv)
		s.budgetEv = nil
	}
	tte := s.acct.TimeToEmpty(now)
	if math.IsInf(tte, 1) {
		return
	}
	s.budgetEv = s.eng.Schedule(now+tte, s.onBudgetEmpty)
}

// onBudgetEmpty force-stops every active sprint: remaining work continues
// at the sustained rate (Figure 1's "sprinting budget is exhausted").
func (s *server) onBudgetEmpty() {
	now := s.eng.Now()
	s.budgetEv = nil
	for _, e := range s.runningEx {
		if !e.sprint {
			continue
		}
		e.tau = s.progressAt(e, now)
		s.stopSprint(e, now)
		e.segStart = now
		remaining := (1 - e.tau) * e.rec.ServiceTime
		e.departEv = s.eng.Reschedule(e.departEv, now+remaining)
	}
	s.replanBudget()
}

// stopSprint ends e's sprint accounting at time now.
func (s *server) stopSprint(e *execution, now float64) {
	s.acct.StopSprint(now)
	e.rec.SprintSeconds += now - e.sprintStart
	e.sprint = false
	e.toggle = 0
	e.stretch = 1
}

// depart completes e: close out sprint accounting, free the slot, and
// dispatch the next queued query.
func (s *server) depart(e *execution) {
	now := s.eng.Now()
	e.rec.Depart = now
	s.lastDep = now
	if e.sprint {
		s.stopSprint(e, now)
		s.replanBudget()
	}
	if e.timeoutEv != nil {
		s.eng.Cancel(e.timeoutEv)
		e.timeoutEv = nil
	}
	for i, re := range s.runningEx {
		if re == e {
			s.runningEx = append(s.runningEx[:i], s.runningEx[i+1:]...)
			break
		}
	}
	e.running = false
	s.departed++
	s.freeSlots++
	s.dispatch()
}
