//go:build !race

package sim

// raceEnabled gates allocation-budget tests: the race detector
// instruments allocations, so AllocsPerRun assertions only hold in
// non-race builds.
const raceEnabled = false
