package sim

import "fmt"

// This file is the allocation-free sibling of engine.go. The closure-based
// Engine allocates one *Event plus one Action closure per scheduled event,
// which is fine for the ground-truth testbed but dominates the cost of the
// millions of queuesim runs a policy search performs (Section 3.6). The
// PooledEngine replaces both allocations with a slab: events live in a
// reusable slot pool addressed by generation-checked Handles, callbacks are
// registered once per consumer and invoked by CallbackID with an int32
// argument (typically a pooled-object index), and the priority queue is an
// index heap over the slab. Steady-state scheduling, cancelling and firing
// perform zero heap allocations.
//
// Semantics match Engine exactly: events fire in (time, seq) order with
// seq assigned at Schedule time, so FIFO ties break identically; cancelled
// events never fire. (Engine drops cancelled events lazily at the heap
// top, the PooledEngine unlinks them eagerly — the set and order of fired
// events is the same either way, which queuesim's differential suite
// checks bit-for-bit.)

// CallbackID names a callback registered with PooledEngine.Register.
type CallbackID int32

// Handle identifies a scheduled event. Handles are generation-checked:
// once the event fires or is cancelled, its slot is recycled and the old
// handle goes stale — Cancel and Reschedule on a stale handle are safe
// no-ops, never a corruption of the slot's next tenant. The zero Handle is
// always stale. Handles must not be retained across Reset.
type Handle struct {
	idx int32
	gen uint32
}

// slot is one pooled event. Slots are recycled through a free list; gen
// increments on every release so stale Handles can be detected. heapIdx is
// the slot's position in the index heap, -1 while free.
type slot struct {
	time    float64
	seq     uint64
	gen     uint32
	heapIdx int32
	cb      CallbackID
	arg     int32
}

// PooledEngine is a discrete-event simulator core with pooled events and
// registered callbacks. It is not safe for concurrent use; run one per
// goroutine. The zero value is ready to use, but consumers normally call
// NewPooled and Register their callbacks once, then Reset between runs to
// reuse the slab.
type PooledEngine struct {
	now   float64
	seq   uint64
	slots []slot
	free  []int32 // recycled slot indices
	heap  []int32 // slot indices ordered by (time, seq)
	cbs   []func(arg int32)

	live      int // scheduled, unfired, uncancelled events
	highWater int // max live over the engine's lifetime since Reset
}

// NewPooled returns a pooled engine with the clock at zero.
func NewPooled() *PooledEngine {
	//lint:ignore hotalloc one engine per Runner, constructed on first use and recycled thereafter
	return &PooledEngine{}
}

// Register adds a callback and returns its ID. Callbacks are registered
// once per engine (they survive Reset); Schedule refers to them by ID so
// no per-event closure is ever allocated.
func (e *PooledEngine) Register(fn func(arg int32)) CallbackID {
	if fn == nil {
		panic("sim: nil callback")
	}
	e.cbs = append(e.cbs, fn)
	return CallbackID(len(e.cbs) - 1)
}

// Now returns the current virtual time.
func (e *PooledEngine) Now() float64 { return e.now }

// Pending returns the number of scheduled (unfired, uncancelled) events.
func (e *PooledEngine) Pending() int { return e.live }

// HighWater returns the maximum number of simultaneously pending events
// since the last Reset — the slab's high-water mark.
func (e *PooledEngine) HighWater() int { return e.highWater }

// Reset rewinds the clock to zero and empties the event set while keeping
// the slab, heap and free-list capacity (and all registered callbacks), so
// a runner can replay back-to-back simulations without reallocating.
// Handles issued before Reset must not be used afterwards.
func (e *PooledEngine) Reset() {
	e.now = 0
	e.seq = 0
	e.slots = e.slots[:0]
	e.free = e.free[:0]
	e.heap = e.heap[:0]
	e.live = 0
	e.highWater = 0
}

// Schedule registers callback cb to run with arg at time at. Scheduling in
// the past (before Now) panics: it would silently corrupt causality.
// Events at the identical time fire in scheduling order.
func (e *PooledEngine) Schedule(at float64, cb CallbackID, arg int32) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if cb < 0 || int(cb) >= len(e.cbs) {
		panic(fmt.Sprintf("sim: unregistered callback %d", cb))
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
		s := &e.slots[idx]
		s.time, s.seq, s.cb, s.arg = at, e.seq, cb, arg
	} else {
		e.slots = append(e.slots, slot{time: at, seq: e.seq, gen: 1, cb: cb, arg: arg})
		idx = int32(len(e.slots) - 1)
	}
	e.seq++
	e.heapPush(idx)
	e.live++
	if e.live > e.highWater {
		e.highWater = e.live
	}
	return Handle{idx: idx, gen: e.slots[idx].gen}
}

// After schedules cb(arg) delay time units from now.
func (e *PooledEngine) After(delay float64, cb CallbackID, arg int32) Handle {
	return e.Schedule(e.now+delay, cb, arg)
}

// lookup resolves h to its slot index if h is current, or -1 when h is
// stale (zero, already fired, cancelled, or from before a Reset).
func (e *PooledEngine) lookup(h Handle) int32 {
	if h.gen == 0 || int(h.idx) >= len(e.slots) {
		return -1
	}
	s := &e.slots[h.idx]
	if s.gen != h.gen || s.heapIdx < 0 {
		return -1
	}
	return h.idx
}

// Cancel removes the event named by h so it never fires, reporting whether
// anything was cancelled. Cancelling a stale handle (zero, already fired,
// already cancelled) is a no-op returning false.
func (e *PooledEngine) Cancel(h Handle) bool {
	idx := e.lookup(h)
	if idx < 0 {
		return false
	}
	e.heapRemove(e.slots[idx].heapIdx)
	e.freeSlot(idx)
	return true
}

// Reschedule cancels h and schedules a fresh event with the same callback
// and argument at time at, returning the new handle. A stale h is a no-op
// returning the zero Handle — it must never resurrect a recycled slot.
func (e *PooledEngine) Reschedule(h Handle, at float64) Handle {
	idx := e.lookup(h)
	if idx < 0 {
		return Handle{}
	}
	cb, arg := e.slots[idx].cb, e.slots[idx].arg
	e.heapRemove(e.slots[idx].heapIdx)
	e.freeSlot(idx)
	return e.Schedule(at, cb, arg)
}

// freeSlot releases idx back to the pool, bumping its generation so
// outstanding handles to it go stale.
func (e *PooledEngine) freeSlot(idx int32) {
	s := &e.slots[idx]
	s.gen++
	s.heapIdx = -1
	e.free = append(e.free, idx)
	e.live--
}

// Step fires the next event. It reports false when no events remain. The
// slot is released before the callback runs, so callbacks can schedule
// new events that reuse it (the fired event's own handle goes stale at
// that moment).
//
//sprint:hotpath event dispatch fires millions of times per run (BenchmarkPooledEngine)
func (e *PooledEngine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	idx := e.heap[0]
	s := &e.slots[idx]
	t, cb, arg := s.time, s.cb, s.arg
	e.heapRemove(0)
	e.freeSlot(idx)
	e.now = t
	e.cbs[cb](arg)
	return true
}

// Run fires events until the queue is empty or until the next event is
// strictly after limit (the clock then rests at limit). It returns the
// number of events fired.
func (e *PooledEngine) Run(limit float64) int {
	fired := 0
	for {
		if len(e.heap) == 0 {
			return fired
		}
		if e.slots[e.heap[0]].time > limit {
			e.now = limit
			return fired
		}
		e.Step()
		fired++
	}
}

// RunAll fires events until none remain, returning the count. Use only
// with workloads that are guaranteed to quiesce, otherwise this loops
// forever.
func (e *PooledEngine) RunAll() int {
	fired := 0
	for e.Step() {
		fired++
	}
	return fired
}

// less orders slot indices by (time, seq).
func (e *PooledEngine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	//lint:ignore floateq heap comparator must order exact event times; an epsilon here would corrupt FIFO tie-breaking
	if sa.time != sb.time {
		return sa.time < sb.time
	}
	return sa.seq < sb.seq
}

// heapPush appends idx and restores the heap invariant.
func (e *PooledEngine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	i := len(e.heap) - 1
	e.slots[idx].heapIdx = int32(i)
	e.siftUp(i)
}

// heapRemove unlinks the element at heap position i.
func (e *PooledEngine) heapRemove(hi int32) {
	i, n := int(hi), len(e.heap)-1
	if i != n {
		e.swap(i, n)
	}
	e.heap = e.heap[:n]
	if i != n {
		e.siftDown(i)
		e.siftUp(i)
	}
}

func (e *PooledEngine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.slots[e.heap[i]].heapIdx = int32(i)
	e.slots[e.heap[j]].heapIdx = int32(j)
}

func (e *PooledEngine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.heap[i], e.heap[parent]) {
			return
		}
		e.swap(i, parent)
		i = parent
	}
}

func (e *PooledEngine) siftDown(i int) {
	n := len(e.heap)
	for {
		smallest := i
		if l := 2*i + 1; l < n && e.less(e.heap[l], e.heap[smallest]) {
			smallest = l
		}
		if r := 2*i + 2; r < n && e.less(e.heap[r], e.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		e.swap(i, smallest)
		i = smallest
	}
}
