package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"mdsprint/internal/dist"
)

// recorder wires a PooledEngine to a log of (arg, time) firings.
type recorder struct {
	eng  *PooledEngine
	cb   CallbackID
	args []int32
	when []float64
}

func newRecorder() *recorder {
	r := &recorder{eng: NewPooled()}
	r.cb = r.eng.Register(func(arg int32) {
		r.args = append(r.args, arg)
		r.when = append(r.when, r.eng.Now())
	})
	return r
}

func TestPooledFiresInTimeOrder(t *testing.T) {
	r := newRecorder()
	for i, at := range []float64{5, 1, 3, 2, 4} {
		r.eng.Schedule(at, r.cb, int32(i))
	}
	r.eng.RunAll()
	if !sort.Float64sAreSorted(r.when) {
		t.Fatalf("events fired out of order: %v", r.when)
	}
	if len(r.args) != 5 {
		t.Fatalf("fired %d events, want 5", len(r.args))
	}
}

func TestPooledSameTimeFIFO(t *testing.T) {
	r := newRecorder()
	for i := 0; i < 10; i++ {
		r.eng.Schedule(7, r.cb, int32(i))
	}
	r.eng.RunAll()
	for i, v := range r.args {
		if v != int32(i) {
			t.Fatalf("same-time events not FIFO: %v", r.args)
		}
	}
}

// TestPooledSameTimeFIFOAfterChurn repeats the FIFO-tie check on a slab
// whose free list has been shuffled by cancellations, so slot indices no
// longer correlate with scheduling order — the (time, seq) comparator,
// not slab layout, must carry the ordering.
func TestPooledSameTimeFIFOAfterChurn(t *testing.T) {
	r := newRecorder()
	var hs []Handle
	for i := 0; i < 16; i++ {
		hs = append(hs, r.eng.Schedule(1, r.cb, int32(100+i)))
	}
	// Cancel in an interleaved order to scramble the free list.
	for _, i := range []int{3, 11, 0, 7, 15, 4, 8, 1} {
		if !r.eng.Cancel(hs[i]) {
			t.Fatalf("cancel %d failed", i)
		}
	}
	for i := 0; i < 10; i++ {
		r.eng.Schedule(2, r.cb, int32(i))
	}
	r.eng.RunAll()
	want := []int32{102, 105, 106, 109, 110, 112, 113, 114, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if len(r.args) != len(want) {
		t.Fatalf("fired %v, want %v", r.args, want)
	}
	for i := range want {
		if r.args[i] != want[i] {
			t.Fatalf("fired %v, want %v", r.args, want)
		}
	}
}

func TestPooledCancelPreventsFiring(t *testing.T) {
	r := newRecorder()
	h := r.eng.Schedule(1, r.cb, 1)
	r.eng.Schedule(2, r.cb, 2)
	if !r.eng.Cancel(h) {
		t.Fatal("cancel of a live event returned false")
	}
	if r.eng.Cancel(h) {
		t.Fatal("second cancel of the same handle returned true")
	}
	r.eng.RunAll()
	if len(r.args) != 1 || r.args[0] != 2 {
		t.Fatalf("fired %v, want [2]", r.args)
	}
}

func TestPooledZeroHandleStale(t *testing.T) {
	r := newRecorder()
	if r.eng.Cancel(Handle{}) {
		t.Fatal("cancelling the zero Handle returned true")
	}
	if h := r.eng.Reschedule(Handle{}, 5); h != (Handle{}) {
		t.Fatal("rescheduling the zero Handle returned a live handle")
	}
}

// TestPooledCancelAfterFire checks a fired event's handle is stale the
// moment its callback runs: cancel and reschedule through it are no-ops
// even though the slot may already host a new event.
func TestPooledCancelAfterFire(t *testing.T) {
	r := newRecorder()
	h := r.eng.Schedule(1, r.cb, 1)
	r.eng.RunAll()
	if r.eng.Cancel(h) {
		t.Fatal("cancelling a fired event's handle returned true")
	}
	if got := r.eng.Reschedule(h, 10); got != (Handle{}) {
		t.Fatal("rescheduling a fired event's handle returned a live handle")
	}
	if r.eng.Pending() != 0 {
		t.Fatalf("pending %d after stale operations, want 0", r.eng.Pending())
	}
}

// TestPooledStaleHandleRecycledSlot is the generation-check regression
// test: after a slot is freed and re-tenanted, the old handle must not
// reach the new tenant.
func TestPooledStaleHandleRecycledSlot(t *testing.T) {
	r := newRecorder()
	old := r.eng.Schedule(1, r.cb, 1)
	if !r.eng.Cancel(old) {
		t.Fatal("cancel failed")
	}
	// Reuses the freed slot: same idx, bumped generation.
	fresh := r.eng.Schedule(2, r.cb, 2)
	if fresh.idx != old.idx {
		t.Fatalf("expected slot reuse (old idx %d, fresh idx %d)", old.idx, fresh.idx)
	}
	if fresh.gen == old.gen {
		t.Fatal("recycled slot did not bump its generation")
	}
	if r.eng.Cancel(old) {
		t.Fatal("stale handle cancelled the slot's new tenant")
	}
	if got := r.eng.Reschedule(old, 9); got != (Handle{}) {
		t.Fatal("stale handle rescheduled the slot's new tenant")
	}
	r.eng.RunAll()
	if len(r.args) != 1 || r.args[0] != 2 {
		t.Fatalf("fired %v, want [2]", r.args)
	}
}

// TestPooledFiredSlotReusedDuringCallback checks the documented contract
// that the firing event's slot is released before its callback runs, so
// the callback's own Schedule can reuse it.
func TestPooledFiredSlotReusedDuringCallback(t *testing.T) {
	eng := NewPooled()
	var cb CallbackID
	var fromCallback Handle
	cb = eng.Register(func(arg int32) {
		if arg == 1 {
			fromCallback = eng.Schedule(5, cb, 2)
		}
	})
	h := eng.Schedule(1, cb, 1)
	eng.Step()
	if fromCallback.idx != h.idx {
		t.Fatalf("callback's event got slot %d, want the fired slot %d", fromCallback.idx, h.idx)
	}
	if eng.Cancel(h) {
		t.Fatal("fired handle cancelled the callback's event")
	}
	if !eng.Cancel(fromCallback) {
		t.Fatal("callback's own handle should be live")
	}
}

func TestPooledReschedule(t *testing.T) {
	r := newRecorder()
	var h Handle
	h = r.eng.Schedule(10, r.cb, 9)
	move := r.eng.Register(func(int32) { h = r.eng.Reschedule(h, 3) })
	r.eng.Schedule(1, move, 0)
	r.eng.RunAll()
	if len(r.when) != 1 || r.when[0] != 3 {
		t.Fatalf("rescheduled event fired at %v, want [3]", r.when)
	}
}

// TestPooledRescheduleInvalidatesOldHandle: Reschedule returns a new
// handle and kills the old one, even when the slot is reused in place.
func TestPooledRescheduleInvalidatesOldHandle(t *testing.T) {
	eng := NewPooled()
	cb := eng.Register(func(int32) {})
	old := eng.Schedule(5, cb, 0)
	fresh := eng.Reschedule(old, 8)
	if fresh == (Handle{}) {
		t.Fatal("reschedule of a live handle returned the zero Handle")
	}
	if eng.Cancel(old) {
		t.Fatal("old handle still live after Reschedule")
	}
	if !eng.Cancel(fresh) {
		t.Fatal("new handle not live after Reschedule")
	}
}

func TestPooledAfter(t *testing.T) {
	r := newRecorder()
	chain := r.eng.Register(func(int32) { r.eng.After(2, r.cb, 0) })
	r.eng.Schedule(4, chain, 0)
	r.eng.RunAll()
	if len(r.when) != 1 || r.when[0] != 6 {
		t.Fatalf("After fired at %v, want [6]", r.when)
	}
}

func TestPooledRunRespectsLimit(t *testing.T) {
	r := newRecorder()
	for i := 1; i <= 10; i++ {
		r.eng.Schedule(float64(i), r.cb, int32(i))
	}
	if fired := r.eng.Run(5.5); fired != 5 {
		t.Fatalf("Run(5.5) fired %d, want 5", fired)
	}
	if r.eng.Now() != 5.5 {
		t.Fatalf("clock %v after limited run, want 5.5", r.eng.Now())
	}
	if fired := r.eng.Run(100); fired != 5 {
		t.Fatalf("resumed run fired %d, want 5", fired)
	}
}

func TestPooledRunEmpty(t *testing.T) {
	eng := NewPooled()
	if eng.Step() {
		t.Fatal("Step on an empty engine returned true")
	}
	if fired := eng.Run(10); fired != 0 {
		t.Fatalf("Run on empty engine fired %d", fired)
	}
	if fired := eng.RunAll(); fired != 0 {
		t.Fatalf("RunAll on empty engine fired %d", fired)
	}
}

func TestPooledPendingAndHighWater(t *testing.T) {
	eng := NewPooled()
	cb := eng.Register(func(int32) {})
	a := eng.Schedule(1, cb, 0)
	eng.Schedule(2, cb, 0)
	eng.Schedule(3, cb, 0)
	if eng.Pending() != 3 || eng.HighWater() != 3 {
		t.Fatalf("pending %d highwater %d, want 3/3", eng.Pending(), eng.HighWater())
	}
	eng.Cancel(a)
	if eng.Pending() != 2 || eng.HighWater() != 3 {
		t.Fatalf("pending %d highwater %d after cancel, want 2/3", eng.Pending(), eng.HighWater())
	}
	eng.RunAll()
	if eng.Pending() != 0 || eng.HighWater() != 3 {
		t.Fatalf("pending %d highwater %d after run, want 0/3", eng.Pending(), eng.HighWater())
	}
}

func TestPooledReset(t *testing.T) {
	r := newRecorder()
	for i := 0; i < 5; i++ {
		r.eng.Schedule(float64(i+1), r.cb, int32(i))
	}
	r.eng.RunAll()
	r.eng.Reset()
	if r.eng.Now() != 0 || r.eng.Pending() != 0 || r.eng.HighWater() != 0 {
		t.Fatalf("Reset left now=%v pending=%d highwater=%d",
			r.eng.Now(), r.eng.Pending(), r.eng.HighWater())
	}
	// Callbacks survive Reset; the replay must behave like a fresh engine.
	r.args, r.when = nil, nil
	for i := 0; i < 5; i++ {
		r.eng.Schedule(float64(i+1), r.cb, int32(i))
	}
	r.eng.RunAll()
	if len(r.args) != 5 || r.when[4] != 5 {
		t.Fatalf("post-Reset replay fired %v at %v", r.args, r.when)
	}
}

func TestPooledSchedulePastPanics(t *testing.T) {
	r := newRecorder()
	r.eng.Schedule(5, r.cb, 0)
	r.eng.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	r.eng.Schedule(1, r.cb, 0)
}

func TestPooledUnregisteredCallbackPanics(t *testing.T) {
	eng := NewPooled()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling an unregistered callback did not panic")
		}
	}()
	eng.Schedule(1, CallbackID(0), 0)
}

func TestPooledNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering a nil callback did not panic")
		}
	}()
	NewPooled().Register(nil)
}

// TestPooledMatchesEngineRandomized drives both engine implementations
// through an identical randomized schedule/cancel/reschedule script and
// requires the identical firing sequence — the engine-level differential
// behind queuesim's end-to-end suite.
func TestPooledMatchesEngineRandomized(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%80) + 5
		rng := dist.NewRNG(seed)

		type firing struct {
			label int32
			at    float64
		}
		var refFired, poolFired []firing

		ref := New()
		refEvents := make([]*Event, n)
		pool := NewPooled()
		poolCB := pool.Register(func(arg int32) {
			poolFired = append(poolFired, firing{arg, pool.Now()})
		})
		poolHandles := make([]Handle, n)

		for i := 0; i < n; i++ {
			at := rng.Float64() * 100
			label := int32(i)
			refEvents[i] = ref.Schedule(at, func() {
				refFired = append(refFired, firing{label, ref.Now()})
			})
			poolHandles[i] = pool.Schedule(at, poolCB, label)
		}
		// Cancel a third, reschedule a third (same indices on both).
		// Cancelled indices are excluded from rescheduling: the lazy
		// engine happily resurrects a cancelled event's action while the
		// pooled engine's stale handle is a no-op — a divergence outside
		// the supported contract (consumers only reschedule live events).
		cancelled := make(map[int]bool)
		for i := 0; i < n/3; i++ {
			idx := rng.Intn(n)
			cancelled[idx] = true
			ref.Cancel(refEvents[idx])
			pool.Cancel(poolHandles[idx])
		}
		for i := 0; i < n/3; i++ {
			idx := rng.Intn(n)
			at := rng.Float64() * 100
			if cancelled[idx] {
				continue
			}
			refEvents[idx] = ref.Reschedule(refEvents[idx], at)
			poolHandles[idx] = pool.Reschedule(poolHandles[idx], at)
		}
		ref.RunAll()
		pool.RunAll()

		if len(refFired) != len(poolFired) {
			return false
		}
		for i := range refFired {
			if refFired[i] != poolFired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPooledZeroAllocsSteadyState pins the engine-level allocation
// budget: once the slab has grown to its working size, a
// schedule/cancel/reschedule/fire cycle allocates nothing.
func TestPooledZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	eng := NewPooled()
	cb := eng.Register(func(int32) {})
	hs := make([]Handle, 64)
	cycle := func() {
		eng.Reset()
		for i := range hs {
			hs[i] = eng.Schedule(float64(i), cb, int32(i))
		}
		for i := 0; i < 16; i++ {
			eng.Cancel(hs[i*3])
		}
		for i := 0; i < 16; i++ {
			hs[i*2+1] = eng.Reschedule(hs[i*2+1], float64(100+i))
		}
		eng.RunAll()
	}
	cycle() // warm the slab
	allocs := testing.AllocsPerRun(20, cycle)
	if allocs != 0 {
		t.Fatalf("steady-state engine cycle allocated %.1f objects, want 0", allocs)
	}
}
