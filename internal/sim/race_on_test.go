//go:build race

package sim

// raceEnabled gates allocation-budget tests under -race; see
// race_off_test.go.
const raceEnabled = true
