package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"mdsprint/internal/dist"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func() { order = append(order, at) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	e.Schedule(2.5, func() {
		if e.Now() != 2.5 {
			t.Errorf("clock %v inside event, want 2.5", e.Now())
		}
	})
	e.RunAll()
	if e.Now() != 2.5 {
		t.Fatalf("final clock %v, want 2.5", e.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestNilActionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil action did not panic")
		}
	}()
	New().Schedule(1, nil)
}

func TestCancelPreventsFiring(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestCancelNilIsNoop(t *testing.T) {
	e := New()
	e.Cancel(nil) // must not panic
}

func TestReschedule(t *testing.T) {
	e := New()
	var at float64
	ev := e.Schedule(10, func() { at = e.Now() })
	e.Schedule(1, func() { e.Reschedule(ev, 3) })
	e.RunAll()
	if at != 3 {
		t.Fatalf("rescheduled event fired at %v, want 3", at)
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var times []float64
	e.Schedule(4, func() {
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.RunAll()
	if len(times) != 1 || times[0] != 6 {
		t.Fatalf("After fired at %v, want [6]", times)
	}
}

func TestRunRespectsLimit(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	fired := e.Run(5.5)
	if fired != 5 || count != 5 {
		t.Fatalf("Run(5.5) fired %d/%d, want 5", fired, count)
	}
	if e.Now() != 5.5 {
		t.Fatalf("clock %v after limited run, want 5.5", e.Now())
	}
	fired = e.Run(100)
	if fired != 5 || count != 10 {
		t.Fatalf("resumed run fired %d (total %d), want 5 (10)", fired, count)
	}
}

func TestRunSkipsCancelledWithoutAdvancing(t *testing.T) {
	e := New()
	ev := e.Schedule(50, func() {})
	e.Cancel(ev)
	e.Schedule(2, func() {})
	if fired := e.Run(100); fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
}

func TestPendingCountsUncancelled(t *testing.T) {
	e := New()
	a := e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending %d, want 2", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Fatalf("pending %d after cancel, want 1", e.Pending())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	var log []float64
	e.Schedule(1, func() {
		log = append(log, e.Now())
		e.Schedule(2, func() { log = append(log, e.Now()) })
	})
	e.RunAll()
	if len(log) != 2 || log[0] != 1 || log[1] != 2 {
		t.Fatalf("log = %v, want [1 2]", log)
	}
}

// Property: any random batch of schedules and cancels fires exactly the
// uncancelled events, in nondecreasing time order.
func TestRandomScheduleProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := dist.NewRNG(seed)
		e := New()
		var fired []float64
		events := make([]*Event, n)
		times := make([]float64, n)
		for i := 0; i < n; i++ {
			at := r.Float64() * 1000
			times[i] = at
			events[i] = e.Schedule(at, func() { fired = append(fired, at) })
		}
		cancelled := map[int]bool{}
		for i := 0; i < n/3; i++ {
			idx := r.Intn(n)
			cancelled[idx] = true
			e.Cancel(events[idx])
		}
		e.RunAll()
		if len(fired) != n-len(cancelled) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	r := dist.NewRNG(1)
	times := make([]float64, 1024)
	for i := range times {
		times[i] = r.Float64() * 1e6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New()
		for _, at := range times {
			e.Schedule(at, func() {})
		}
		e.RunAll()
	}
}
