// Package sim provides a minimal discrete-event simulation engine: a
// monotonic virtual clock and a cancellable event heap. Both the
// ground-truth testbed (internal/testbed) and the model-side queue
// simulator (internal/queuesim) are built on this engine.
//
// The paper's reference simulator (Algorithm 1) steps a microsecond-
// resolution clock; scheduling events on a heap is semantically equivalent
// (queuesim's tests cross-validate against a faithful tick-stepped
// implementation) and orders of magnitude faster, which is what makes the
// policy-space exploration of Section 4 practical.
package sim

import (
	"container/heap"
	"fmt"
)

// Action is the callback invoked when an event fires. The engine clock has
// already advanced to the event's time when the action runs.
type Action func()

// Event is a scheduled callback. Events are created by Engine.Schedule and
// may be cancelled before they fire.
type Event struct {
	time      float64
	seq       uint64 // tie-breaker: FIFO among same-time events
	action    Action
	index     int // heap index, -1 once removed
	cancelled bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:ignore floateq heap comparator must order exact event times; an epsilon here would corrupt FIFO tie-breaking
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator core. It is not safe for concurrent
// use; run one Engine per goroutine.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled (uncancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// Schedule registers action to run at time at. Scheduling in the past
// (before Now) panics: it would silently corrupt causality. Events at the
// identical time fire in scheduling order.
func (e *Engine) Schedule(at float64, action Action) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if action == nil {
		panic("sim: nil action")
	}
	ev := &Event{time: at, seq: e.seq, action: action}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules action delay time units from now.
func (e *Engine) After(delay float64, action Action) *Event {
	return e.Schedule(e.now+delay, action)
}

// Cancel marks an event so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op. The event is dropped lazily when it
// reaches the top of the heap.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	ev.cancelled = true
}

// Reschedule cancels ev and schedules a fresh event with the same action at
// time at, returning the new event. It is the supported way to move a
// departure or timeout after a sprint changes processing speed.
func (e *Engine) Reschedule(ev *Event, at float64) *Event {
	if ev == nil {
		panic("sim: reschedule of nil event")
	}
	action := ev.action
	e.Cancel(ev)
	return e.Schedule(at, action)
}

// Step fires the next event. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.time
		ev.action()
		return true
	}
	return false
}

// Run fires events until the queue is empty or until the next event is
// strictly after limit (the clock then rests at min(limit, last event
// time)). It returns the number of events fired.
func (e *Engine) Run(limit float64) int {
	fired := 0
	for {
		// Skip over cancelled events without advancing the clock.
		for len(e.events) > 0 && e.events[0].cancelled {
			heap.Pop(&e.events)
		}
		if len(e.events) == 0 {
			return fired
		}
		if e.events[0].time > limit {
			e.now = limit
			return fired
		}
		e.Step()
		fired++
	}
}

// RunAll fires events until none remain, returning the count. Use only
// with workloads that are guaranteed to quiesce (e.g. a finite set of
// queries with no regenerating timer), otherwise this loops forever.
func (e *Engine) RunAll() int {
	fired := 0
	for e.Step() {
		fired++
	}
	return fired
}
