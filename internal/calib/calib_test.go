package calib

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/workload"
)

// fastOpts keeps calibration cheap in tests.
var fastOpts = Options{NumQueries: 1500, Replications: 2, Tolerance: 0.015, Seed: 7}

// jacobiDataset profiles Jacobi/DVFS over a couple of conditions.
func jacobiDataset(t *testing.T, conds []profiler.Condition) *profiler.Dataset {
	t.Helper()
	p := &profiler.Profiler{
		Mix:           workload.SingleClass(workload.MustByName("Jacobi")),
		Mechanism:     mech.DVFS{},
		QueriesPerRun: 1200,
		Seed:          5,
	}
	return p.Profile(conds)
}

func TestEffectiveRateAlignsSimulator(t *testing.T) {
	conds := []profiler.Condition{
		{Utilization: 0.75, ArrivalKind: dist.KindExponential, Timeout: 60, RefillTime: 200, BudgetPct: 0.4},
		{Utilization: 0.5, ArrivalKind: dist.KindExponential, Timeout: 120, RefillTime: 500, BudgetPct: 0.2},
	}
	ds := jacobiDataset(t, conds)
	for _, obs := range ds.Observations {
		rec := EffectiveRate(ds, obs, fastOpts)
		if rec.RelError() > 0.08 {
			t.Errorf("%s: calibration error %.1f%% (mu_e=%v qph, observed %v, sim %v)",
				obs.Cond, rec.RelError()*100, rec.EffectiveRate*3600, rec.ObservedRT, rec.SimRT)
		}
		if rec.EffectiveRate < ds.ServiceRate*0.5 {
			t.Errorf("%s: mu_e %v below the 0.5*mu bracket edge %v", obs.Cond, rec.EffectiveRate, ds.ServiceRate*0.5)
		}
	}
}

func TestEffectiveBelowMarginalWithRuntimeFactors(t *testing.T) {
	// Mid-execution sprints plus toggle overhead mean the effective rate
	// typically falls at or below the marginal rate. Use a long timeout
	// so most sprints start in flight (strong runtime factors).
	conds := []profiler.Condition{
		{Utilization: 0.5, ArrivalKind: dist.KindExponential, Timeout: 50, RefillTime: 200, BudgetPct: 0.6},
	}
	ds := jacobiDataset(t, conds)
	rec := EffectiveRate(ds, ds.Observations[0], fastOpts)
	if rec.EffectiveRate > ds.MarginalRate*1.15 {
		t.Fatalf("mu_e %v qph far above mu_m %v qph", rec.EffectiveRate*3600, ds.MarginalRate*3600)
	}
}

func TestConditionMarginalClipsCommandedSpeedup(t *testing.T) {
	ds := &profiler.Dataset{ServiceRate: 0.01, MarginalRate: 0.05}
	full := conditionMarginal(ds, profiler.Condition{})
	if full != 0.05 {
		t.Fatalf("uncommanded marginal %v, want 0.05", full)
	}
	clipped := conditionMarginal(ds, profiler.Condition{Speedup: 3})
	if clipped != 0.03 {
		t.Fatalf("commanded marginal %v, want 0.03", clipped)
	}
	uncapped := conditionMarginal(ds, profiler.Condition{Speedup: 9})
	if uncapped != 0.05 {
		t.Fatalf("over-commanded marginal %v, want 0.05", uncapped)
	}
}

func TestSteppingModeAgreesWithBisection(t *testing.T) {
	conds := []profiler.Condition{
		{Utilization: 0.75, ArrivalKind: dist.KindExponential, Timeout: 80, RefillTime: 500, BudgetPct: 0.4},
	}
	ds := jacobiDataset(t, conds)
	bis := EffectiveRate(ds, ds.Observations[0], fastOpts)
	stepOpts := fastOpts
	stepOpts.Stepping = true
	stepOpts.StepQPH = 0.5
	stepOpts.MaxIter = 120
	stp := EffectiveRate(ds, ds.Observations[0], stepOpts)
	// Both searches should land on rates that explain the observation
	// comparably well.
	if stp.RelError() > 0.10 {
		t.Fatalf("stepping search error %.1f%%", stp.RelError()*100)
	}
	if math.Abs(stp.EffectiveRate-bis.EffectiveRate)/bis.EffectiveRate > 0.15 {
		t.Fatalf("stepping mu_e %v vs bisection mu_e %v", stp.EffectiveRate, bis.EffectiveRate)
	}
}

func TestCalibrateDatasetParallelDeterministic(t *testing.T) {
	conds := profiler.SmallGrid().Sample(3, 2)
	ds := jacobiDataset(t, conds)
	o1 := fastOpts
	o1.Workers = 1
	o4 := fastOpts
	o4.Workers = 4
	a := CalibrateDataset(ds, ds.Observations, o1)
	b := CalibrateDataset(ds, ds.Observations, o4)
	if len(a) != len(conds) {
		t.Fatalf("got %d records", len(a))
	}
	for i := range a {
		if a[i].EffectiveRate != b[i].EffectiveRate {
			t.Fatalf("record %d differs across worker counts", i)
		}
	}
}

func TestNoSprintConditionsCalibrateNearServiceRate(t *testing.T) {
	// With a zero budget nothing sprints; the simulator with any rate
	// explains the observation, and the search should stay put near
	// mu_m without inventing speedups (RT is rate-insensitive, so the
	// initial mu_m evaluation already meets tolerance).
	conds := []profiler.Condition{
		{Utilization: 0.5, ArrivalKind: dist.KindExponential, Timeout: 60, RefillTime: 200, BudgetPct: 0},
	}
	ds := jacobiDataset(t, conds)
	rec := EffectiveRate(ds, ds.Observations[0], fastOpts)
	if rec.RelError() > 0.08 {
		t.Fatalf("budget-0 calibration error %.1f%%", rec.RelError()*100)
	}
}
