package calib

import (
	"context"
	"errors"
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
)

// TestEffectiveRateDegradesWhenBreakerOpen: with the breaker open, a
// calibration must not spend simulator time; the record falls back to
// the prediction-free marginal rate.
func TestEffectiveRateDegradesWhenBreakerOpen(t *testing.T) {
	conds := []profiler.Condition{
		{Utilization: 0.6, ArrivalKind: dist.KindExponential, Timeout: 60, RefillTime: 300, BudgetPct: 0.3},
	}
	ds := jacobiDataset(t, conds)
	reg := obs.NewRegistry()
	br := fault.NewBreaker(fault.BreakerConfig{FailureThreshold: 1, Metrics: reg})
	br.Failure() // trip it open
	if br.State() != fault.Open {
		t.Fatal("setup: breaker must be open")
	}
	o := fastOpts
	o.Breaker = br
	o.Metrics = reg
	rec := EffectiveRate(ds, ds.Observations[0], o)
	if !math.IsNaN(rec.SimRT) {
		t.Fatalf("degraded record ran the simulator: SimRT = %v", rec.SimRT)
	}
	if rec.EffectiveRate < rec.MarginalRate || rec.EffectiveRate > rec.MarginalRate {
		t.Fatalf("degraded mu_e = %v, want the marginal rate %v", rec.EffectiveRate, rec.MarginalRate)
	}
	if got := reg.Counter("mdsprint_calib_degraded_total", "").Value(); got < 1 {
		t.Fatalf("degraded counter %v, want >= 1", got)
	}
}

// TestEffectiveRateReportsToBreaker: a healthy calibration feeds Success
// into the breaker so real recoveries close it again.
func TestEffectiveRateReportsToBreaker(t *testing.T) {
	conds := []profiler.Condition{
		{Utilization: 0.5, ArrivalKind: dist.KindExponential, Timeout: 60, RefillTime: 300, BudgetPct: 0.3},
	}
	ds := jacobiDataset(t, conds)
	reg := obs.NewRegistry()
	br := fault.NewBreaker(fault.BreakerConfig{
		FailureThreshold: 1, CooldownCalls: 1, HalfOpenSuccesses: 1, Metrics: reg,
	})
	br.Failure()    // open
	if br.Allow() { // consumes the cooldown; breaker half-opens
		t.Fatal("setup: open breaker must deny")
	}
	if br.State() != fault.HalfOpen {
		t.Fatal("setup: breaker must be half-open")
	}
	o := fastOpts
	o.Breaker = br
	o.Metrics = reg
	rec := EffectiveRate(ds, ds.Observations[0], o)
	if rec.RelError() > o.DivergentRelError && o.DivergentRelError > 0 {
		t.Skipf("calibration did not converge (rel error %v); cannot assert Success reporting", rec.RelError())
	}
	if br.State() != fault.Closed {
		t.Fatalf("breaker %s after a healthy calibration probe, want closed", br.State())
	}
}

func TestCalibrateDatasetCtxCancellation(t *testing.T) {
	conds := profiler.SmallGrid().Sample(3, 2)
	ds := jacobiDataset(t, conds)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := fastOpts
	o.Metrics = obs.NewRegistry()
	recs, err := CalibrateDatasetCtx(ctx, ds, ds.Observations, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if recs != nil {
		t.Fatalf("canceled calibration returned records: %v", recs)
	}
	// The uncanceled ctx path matches the legacy API.
	a, err := CalibrateDatasetCtx(context.Background(), ds, ds.Observations, o)
	if err != nil {
		t.Fatal(err)
	}
	b := CalibrateDataset(ds, ds.Observations, o)
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].EffectiveRate < b[i].EffectiveRate || a[i].EffectiveRate > b[i].EffectiveRate {
			t.Fatalf("record %d differs between ctx and legacy paths", i)
		}
	}
}

func TestSimulateRTErrValidation(t *testing.T) {
	conds := []profiler.Condition{
		{Utilization: 0.5, ArrivalKind: dist.KindExponential, Timeout: 60, RefillTime: 300, BudgetPct: 0.3},
	}
	ds := jacobiDataset(t, conds)
	o := fastOpts
	o.Metrics = obs.NewRegistry()
	// A non-positive rate cannot be simulated: the error path must
	// surface instead of panicking.
	if _, err := SimulateRTErr(ds, ds.Observations[0], -1, o); err == nil {
		t.Fatal("expected an error for a negative rate")
	}
	rt, err := SimulateRTErr(ds, ds.Observations[0], ds.ServiceRate*0.9, o)
	if err != nil || rt <= 0 {
		t.Fatalf("healthy simulate: rt=%v err=%v", rt, err)
	}
}
