package calib

import (
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/workload"
)

// TestServiceDistCached pins the per-dataset memoization: repeated
// simulator evaluations against one dataset must share a single boxed
// Empirical instead of re-copying the sample vector per evaluation.
func TestServiceDistCached(t *testing.T) {
	conds := []profiler.Condition{
		{Utilization: 0.6, ArrivalKind: dist.KindExponential, Timeout: 60, RefillTime: 200, BudgetPct: 0.4},
	}
	ds := jacobiDataset(t, conds)
	if serviceDist(ds) != serviceDist(ds) {
		t.Fatal("serviceDist rebuilt the Empirical for the same dataset")
	}
	other := jacobiDataset(t, conds)
	if serviceDist(ds) == serviceDist(other) {
		t.Fatal("distinct datasets share a cached distribution")
	}
}

// BenchmarkSimulateRT measures one calibration-objective evaluation: a
// replicated queue simulation of the profiled Jacobi dataset at a fresh
// sprint rate each iteration (fresh rates defeat the sweep memoization
// cache, so the benchmark times honest simulations). This is the inner
// loop of the bisection search; BENCH_sim.json records the baseline.
func BenchmarkSimulateRT(b *testing.B) {
	conds := []profiler.Condition{
		{Utilization: 0.6, ArrivalKind: dist.KindExponential, Timeout: 60, RefillTime: 200, BudgetPct: 0.4},
	}
	p := &profiler.Profiler{
		Mix:           workload.SingleClass(workload.MustByName("Jacobi")),
		Mechanism:     mech.DVFS{},
		QueriesPerRun: 1200,
		Seed:          5,
	}
	ds := p.Profile(conds)
	obs := ds.Observations[0]
	o := Options{NumQueries: 1500, Replications: 2, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rate := ds.MarginalRate * (1 + 1e-7*float64(i))
		SimulateRT(ds, obs, rate, o)
	}
}
