// Package calib computes effective sprint rates (Section 2.3): for each
// profiled condition, the sprint rate mu_e that makes the timeout-aware
// queue simulator reproduce the observed response time (Equation 2):
//
//	mu_e = mu_m + min |x|  s.t.  RT_wp(F, mu_m) ~= RT_qs(F, mu_m + x)
//
// The effective rate absorbs the runtime factors the simulator eschews —
// where in the execution sprints begin, toggle delays, queue state at
// sprint time — and is the regression target for the random decision
// forest.
//
// The paper finds mu_e by exhaustive +-1-unit stepping from mu_m. Mean
// response time is monotone non-increasing in the sprint rate, so this
// package brackets and bisects instead, with common random numbers making
// each evaluation deterministic; an exhaustive stepping mode is kept for
// the ablation study.
package calib

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"mdsprint/internal/dist"
	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sweep"
)

// Options tunes the calibration search.
type Options struct {
	// NumQueries per simulator evaluation (default 3000).
	NumQueries int
	// Replications pooled per evaluation (default 2).
	Replications int
	// Tolerance is the acceptable relative gap between simulated and
	// observed response time (default 0.01).
	Tolerance float64
	// MaxIter bounds the bisection (default 40).
	MaxIter int
	// Stepping switches to the paper's exhaustive +-step search.
	// StepQPH is the step unit in queries/hour (default 1).
	Stepping bool
	StepQPH  float64
	// Seed fixes the common random numbers.
	Seed uint64
	// Workers bounds CalibrateDataset concurrency (default NumCPU).
	Workers int
	// Engine evaluates the simulator; nil uses sweep.Shared(), so
	// repeated bracket/bisection points — and whole re-calibrations of a
	// dataset — are memoized across the process.
	Engine *sweep.Engine
	// Metrics receives calibration progress (records calibrated,
	// simulator evaluations, convergence); nil records into
	// obs.Default().
	Metrics *obs.Registry
	// Breaker, when set, circuit-breaks the per-record search: an open
	// breaker degrades the record to the prediction-free marginal rate
	// (mu_e = mu_m, no simulation), and each completed search reports
	// success or — when the achieved relative error exceeds
	// DivergentRelError — a divergent-fit failure. Consecutive divergent
	// fits trip the breaker, so a misbehaving profiler stops burning
	// simulator time.
	Breaker *fault.Breaker
	// DivergentRelError is the achieved relative error above which a fit
	// counts as divergent for the breaker (default 0.5).
	DivergentRelError float64

	// span is the tracing parent CalibrateDatasetCtx threads to each
	// record's search; per-record and per-evaluation spans nest under it.
	span *obs.Span
}

// calibMetrics resolves the calibration instrumentation handles.
type calibMetrics struct {
	records   *obs.Counter
	evals     *obs.Counter
	converged *obs.Counter
	relError  *obs.Histogram
	degraded  *obs.Counter
}

func (o Options) metrics() calibMetrics {
	reg := obs.Or(o.Metrics)
	return calibMetrics{
		records:   reg.Counter("mdsprint_calib_records_total", "effective-sprint-rate records calibrated"),
		evals:     reg.Counter("mdsprint_calib_sim_evals_total", "queue-simulator evaluations spent calibrating"),
		converged: reg.Counter("mdsprint_calib_converged_total", "calibrations that met the tolerance"),
		relError:  reg.Histogram("mdsprint_calib_rel_error", "achieved |simRT-obsRT|/obsRT per record", 0),
		degraded:  reg.Counter("mdsprint_calib_degraded_total", "records degraded to mu_m (open breaker or failed simulation)"),
	}
}

func (o Options) withDefaults() Options {
	if o.NumQueries == 0 {
		o.NumQueries = 3000
	}
	if o.Replications == 0 {
		o.Replications = 2
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.01
	}
	if o.MaxIter == 0 {
		o.MaxIter = 40
	}
	if o.StepQPH <= 0 {
		o.StepQPH = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.DivergentRelError <= 0 {
		o.DivergentRelError = 0.5
	}
	return o
}

// Record pairs a profiled condition with its calibrated effective rate —
// one training row for the random decision forest (Figure 5's table).
type Record struct {
	Cond profiler.Condition `json:"condition"`
	// ArrivalRate (lambda), ServiceRate (mu) and MarginalRate (mu_m for
	// this condition, after any commanded-speedup clipping) in
	// queries/second.
	ArrivalRate  float64 `json:"arrival_rate"`
	ServiceRate  float64 `json:"service_rate"`
	MarginalRate float64 `json:"marginal_rate"`
	// EffectiveRate is the calibrated mu_e in queries/second.
	EffectiveRate float64 `json:"effective_rate"`
	// ObservedRT and SimRT record the alignment the search achieved.
	ObservedRT float64 `json:"observed_rt"`
	SimRT      float64 `json:"sim_rt"`
}

// RelError returns the achieved |SimRT-ObservedRT|/ObservedRT.
func (r Record) RelError() float64 {
	return math.Abs(r.SimRT-r.ObservedRT) / r.ObservedRT
}

// conditionMarginal returns mu_m for a condition: the dataset's measured
// marginal rate, clipped when the condition commands a lower sprint rate.
func conditionMarginal(ds *profiler.Dataset, cond profiler.Condition) float64 {
	mum := ds.MarginalRate
	if cond.Speedup > 0 {
		if cap := cond.Speedup * ds.ServiceRate; cap < mum {
			mum = cap
		}
	}
	return mum
}

// serviceDistCache memoizes one boxed Empirical distribution per dataset.
// A calibration run evaluates the simulator hundreds of times against the
// same dataset, and dist.NewEmpirical copies the sample vector on every
// call — a per-evaluation allocation the bisection loop does not need.
// Datasets are immutable after profiling and a process holds only a
// handful, so keying by pointer and never evicting is safe. The cache is
// semantically neutral for sweep memoization too: sweep fingerprints
// Empirical distributions by content, not identity.
var (
	serviceDistMu    sync.Mutex
	serviceDistCache = map[*profiler.Dataset]*dist.Empirical{}
)

// serviceDist returns ds's service-time distribution, cached.
func serviceDist(ds *profiler.Dataset) *dist.Empirical {
	serviceDistMu.Lock()
	defer serviceDistMu.Unlock()
	if d, ok := serviceDistCache[ds]; ok {
		return d
	}
	d := dist.NewEmpirical(ds.ServiceSamples)
	serviceDistCache[ds] = d
	return d
}

// simParams builds the queue-simulator parameters for one observation at
// the given sprint rate.
func simParams(ds *profiler.Dataset, obs profiler.Observation, rate float64, o Options) queuesim.Params {
	return queuesim.Params{
		ArrivalRate:   obs.ArrivalRate,
		ArrivalKind:   obs.Cond.ArrivalKind,
		Service:       serviceDist(ds),
		ServiceRate:   ds.ServiceRate,
		SprintRate:    rate,
		Timeout:       obs.Cond.Timeout,
		BudgetSeconds: obs.Cond.Policy().BudgetSeconds,
		RefillTime:    obs.Cond.RefillTime,
		NumQueries:    o.NumQueries,
		Warmup:        o.NumQueries / 10,
		Seed:          o.Seed,
	}
}

// SimulateRTErr evaluates the queue simulator's mean response time for
// one observation at the given sprint rate, with common random numbers.
// Evaluations route through the sweep engine, so re-visited rates come
// from the memoization cache instead of re-simulating.
func SimulateRTErr(ds *profiler.Dataset, obs profiler.Observation, rate float64, o Options) (float64, error) {
	o = o.withDefaults()
	pred, err := sweep.Or(o.Engine).EvaluateSpan(o.span, sweep.Task{
		Params: simParams(ds, obs, rate, o),
		Reps:   o.Replications,
	})
	if err != nil {
		return 0, fmt.Errorf("calib: simulate: %w", err)
	}
	return pred.MeanRT, nil
}

// SimulateRT is SimulateRTErr for callers with no error channel; it
// panics if the simulation fails (Must semantics).
func SimulateRT(ds *profiler.Dataset, obs profiler.Observation, rate float64, o Options) float64 {
	rt, err := SimulateRTErr(ds, obs, rate, o)
	if err != nil {
		panic(err.Error())
	}
	return rt
}

// EffectiveRate finds mu_e for one observation. It returns the calibrated
// record; search failures degrade gracefully to the nearest bound.
func EffectiveRate(ds *profiler.Dataset, obs profiler.Observation, opts Options) (rec Record) {
	o := opts.withDefaults()
	mu := ds.ServiceRate
	mum := conditionMarginal(ds, obs.Cond)
	target := obs.MeanRT
	rec = Record{
		Cond:         obs.Cond,
		ArrivalRate:  obs.ArrivalRate,
		ServiceRate:  mu,
		MarginalRate: mum,
		ObservedRT:   target,
	}
	// The record's search is one span; the sweep evaluations it spends
	// nest under it (via o.span threaded through SimulateRTErr).
	sp := o.span.StartChild("calib.record")
	sp.SetFloat("arrival_rate", obs.ArrivalRate)
	sp.SetFloat("observed_rt", target)
	o.span = sp
	// An open breaker degrades immediately: the record falls back to the
	// prediction-free marginal rate without spending simulator time.
	if o.Breaker != nil && !o.Breaker.Allow() {
		rec.EffectiveRate, rec.SimRT = mum, math.NaN()
		m := o.metrics()
		m.records.Inc()
		m.degraded.Inc()
		sp.SetBool("degraded", true)
		sp.SetString("cause", "breaker-open")
		sp.End()
		return rec
	}
	evals := 0
	var evalErr error
	eval := func(rate float64) float64 {
		if evalErr != nil {
			return math.NaN()
		}
		evals++
		rt, err := SimulateRTErr(ds, obs, rate, o)
		if err != nil {
			evalErr = err
			return math.NaN()
		}
		return rt
	}
	// Flush this record's instrumentation once, whichever path returns,
	// degrade failed searches to mu_m, and report the fit to the breaker
	// (a failed or divergent fit is a breaker failure).
	defer func() {
		m := o.metrics()
		m.records.Inc()
		m.evals.Add(float64(evals))
		if evalErr != nil {
			rec.EffectiveRate, rec.SimRT = mum, math.NaN()
			m.degraded.Inc()
		}
		relErr := rec.RelError()
		if !math.IsNaN(relErr) {
			m.relError.Observe(relErr)
			if relErr <= o.Tolerance {
				m.converged.Inc()
			}
		}
		if o.Breaker != nil {
			if evalErr != nil || (!math.IsNaN(relErr) && relErr > o.DivergentRelError) {
				o.Breaker.Failure()
			} else {
				o.Breaker.Success()
			}
		}
		sp.SetInt("evals", int64(evals))
		sp.SetFloat("effective_rate", rec.EffectiveRate)
		sp.SetBool("converged", !math.IsNaN(relErr) && relErr <= o.Tolerance)
		sp.SetError(evalErr)
		sp.End()
	}()

	if o.Stepping {
		rec.EffectiveRate, rec.SimRT = stepSearch(eval, mu, mum, target, o)
		return rec
	}

	// Bracket: RT is monotone non-increasing in the sprint rate. The
	// lower edge sits below the service rate so the effective rate can
	// express sprints whose overheads exceed their benefit.
	lo := mu * 0.5
	hi := math.Max(mum, mu) * 2.0 // generous upper bound
	rtLo := eval(lo)
	if rtLo <= target {
		// Observed RT is slower than anything the simulator can
		// produce: runtime factors beyond the sprint path dominate.
		rec.EffectiveRate, rec.SimRT = lo, rtLo
		return rec
	}
	rtHi := eval(hi)
	if rtHi >= target {
		rec.EffectiveRate, rec.SimRT = hi, rtHi
		return rec
	}
	best, bestRT := mum, eval(mum)
	if closeEnough(bestRT, target, o.Tolerance) {
		rec.EffectiveRate, rec.SimRT = best, bestRT
		return rec
	}
	a, b := lo, hi
	for i := 0; i < o.MaxIter; i++ {
		mid := (a + b) / 2
		rt := eval(mid)
		if math.Abs(rt-target) < math.Abs(bestRT-target) {
			best, bestRT = mid, rt
		}
		if closeEnough(rt, target, o.Tolerance) {
			break
		}
		if rt > target {
			a = mid
		} else {
			b = mid
		}
	}
	rec.EffectiveRate, rec.SimRT = best, bestRT
	return rec
}

func closeEnough(rt, target, tol float64) bool {
	return math.Abs(rt-target)/target <= tol
}

// stepSearch is the paper's exhaustive search: walk mu_e away from mu_m in
// +-1-unit (StepQPH) increments, keeping the smallest |x| that meets the
// tolerance; give up at the bracket edges and return the best seen.
func stepSearch(eval func(float64) float64, mu, mum, target float64, o Options) (rate, rt float64) {
	step := o.StepQPH / 3600 // qph -> qps
	best, bestRT := mum, eval(mum)
	if closeEnough(bestRT, target, o.Tolerance) {
		return best, bestRT
	}
	for i := 1; i <= o.MaxIter; i++ {
		for _, dir := range []float64{-1, 1} {
			cand := mum + dir*float64(i)*step
			if cand < mu || cand > mum*3 {
				continue
			}
			rtc := eval(cand)
			if math.Abs(rtc-target) < math.Abs(bestRT-target) {
				best, bestRT = cand, rtc
			}
			if closeEnough(rtc, target, o.Tolerance) {
				return best, bestRT
			}
		}
	}
	return best, bestRT
}

// CalibrateDataset computes one Record per observation, in parallel.
func CalibrateDataset(ds *profiler.Dataset, obs []profiler.Observation, opts Options) []Record {
	recs, err := CalibrateDatasetCtx(context.Background(), ds, obs, opts)
	if err != nil {
		// Unreachable: the only error source is the context, and
		// Background is never done.
		panic(err.Error())
	}
	return recs
}

// startCtxSpan starts a span from ctx. A package-level wrapper because
// the calibration entry points shadow the obs import with their
// observation parameters.
func startCtxSpan(ctx context.Context, name string) *obs.Span {
	return obs.StartSpanCtx(ctx, name)
}

// CalibrateDatasetCtx is CalibrateDataset honoring cancellation: once
// ctx is done, queued records are abandoned and ctx's error is
// returned (records already simulating finish their point).
func CalibrateDatasetCtx(ctx context.Context, ds *profiler.Dataset, obs []profiler.Observation, opts Options) ([]Record, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := opts.withDefaults()
	sp := startCtxSpan(ctx, "calib.dataset")
	sp.SetInt("records", int64(len(obs)))
	defer sp.End()
	o.span = sp
	out := make([]Record, len(obs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Workers)
	for i := range obs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			oi := o
			oi.Seed = o.Seed + uint64(i)*0x9e3779b97f4a7c15
			out[i] = EffectiveRate(ds, obs[i], oi)
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	return out, nil
}
