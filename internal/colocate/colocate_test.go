package colocate

import (
	"math"
	"testing"

	"mdsprint/internal/sprint"
	"mdsprint/internal/workload"
)

func jacobiWorkload(util float64) Workload {
	return Workload{
		Name: "Jacobi", Class: workload.MustByName("Jacobi"),
		Utilization: util, ArrivalCV: BurstyArrivalCV,
	}
}

var testEst = SimEstimator{SimQueries: 2000, SimReps: 2, Seed: 5}

func TestAWSPlanMatchesPublishedPolicy(t *testing.T) {
	p := AWSPlan()
	if p.Fraction != 0.20 || p.Speedup != 5 || p.RefillTime != 3600 {
		t.Fatalf("AWS plan %+v", p)
	}
	// 720 sprint-seconds per hour.
	if got := p.BudgetPct * p.RefillTime; got != 720 {
		t.Fatalf("AWS budget %v sprint-seconds/hour, want 720", got)
	}
}

func TestCPUCommitment(t *testing.T) {
	aws := AWSPlan()
	// 0.20 sustained + 0.20*0.20*4 sprint surplus = 0.36.
	if got := aws.CPUCommitment(); math.Abs(got-0.36) > 1e-12 {
		t.Fatalf("AWS commitment %v, want 0.36", got)
	}
	if got := (Plan{Dedicated: true}).CPUCommitment(); got != 1 {
		t.Fatalf("dedicated commitment %v, want 1", got)
	}
}

func TestWorkloadRates(t *testing.T) {
	w := jacobiWorkload(0.8)
	// Section 4.3: sustained 14.8 qph at the 20% throttle; 80% of that
	// is 11.84 qph.
	if got := sprint.ToQPH(w.ArrivalRate()); math.Abs(got-11.84) > 0.01 {
		t.Fatalf("arrival rate %v qph, want 11.84", got)
	}
	if got := sprint.ToQPH(w.FullRate()); got != 74 {
		t.Fatalf("full rate %v qph, want 74", got)
	}
}

func TestBaselineRTNearUnthrottledService(t *testing.T) {
	w := jacobiWorkload(0.7)
	base := testEst.BaselineRT(w)
	// Unthrottled Jacobi serves at 74 qph (48.6 s mean) while arrivals
	// are far slower, so RT sits just above one service time.
	svc := 3600.0 / 74
	if base < svc || base > 1.5*svc {
		t.Fatalf("baseline RT %v, want within [%v, %v]", base, svc, 1.5*svc)
	}
}

func TestThrottlingInflatesRT(t *testing.T) {
	w := jacobiWorkload(0.7)
	base := testEst.BaselineRT(w)
	throttledNoSprint := testEst.MeanRT(w, Plan{Fraction: 0.2, Speedup: 1, RefillTime: 3600, Timeout: -1})
	if throttledNoSprint < 3*base {
		t.Fatalf("throttled-without-sprint RT %v should dwarf baseline %v", throttledNoSprint, base)
	}
}

func TestMeetsSLOBehaviour(t *testing.T) {
	w := jacobiWorkload(0.7)
	// A full-CPU plan trivially meets SLO.
	if !MeetsSLO(w, Plan{Fraction: 1, Speedup: 1, RefillTime: 3600, Timeout: -1}, testEst) {
		t.Fatal("unthrottled plan violates SLO")
	}
	// Hard throttling with no sprint budget cannot.
	if MeetsSLO(w, Plan{Fraction: 0.2, Speedup: 1, RefillTime: 3600, Timeout: -1}, testEst) {
		t.Fatal("hard throttle with no sprinting met SLO")
	}
}

func TestBudgetPlannerFindsCheaperPlansThanAWS(t *testing.T) {
	w := jacobiWorkload(0.7)
	plan, ok := BudgetPlanner(testEst, AWSRefill)(w)
	if !ok {
		t.Fatal("budget planner failed to meet SLO for Jacobi at 70%")
	}
	if plan.CPUCommitment() >= 1 {
		t.Fatalf("budget plan commitment %v", plan.CPUCommitment())
	}
	if !MeetsSLO(w, plan, testEst) {
		t.Fatalf("returned plan violates SLO: %v", plan)
	}
}

func TestSprintPlannerAtMostBudgetCommitment(t *testing.T) {
	w := jacobiWorkload(0.7)
	bp, okB := BudgetPlanner(testEst, AWSRefill)(w)
	sp, okS := SprintPlanner(testEst, 40, 7)(w)
	if !okB || !okS {
		t.Fatalf("planners failed: budget=%v sprint=%v", okB, okS)
	}
	// Timeout exploration can only widen the feasible set, so the
	// sprint planner's commitment is never worse.
	if sp.CPUCommitment() > bp.CPUCommitment()+1e-9 {
		t.Fatalf("sprint plan commitment %v > budget plan %v", sp.CPUCommitment(), bp.CPUCommitment())
	}
}

func TestPackRespectsCapacity(t *testing.T) {
	ws := []Workload{jacobiWorkload(0.7), jacobiWorkload(0.7), jacobiWorkload(0.7), jacobiWorkload(0.7)}
	res := Pack(ws, BudgetPlanner(testEst, AWSRefill))
	if res.Hosted() != 4 {
		t.Fatalf("hosted %d, want 4", res.Hosted())
	}
	for i, n := range res.Nodes {
		if n.Commitment() > 1+1e-9 {
			t.Fatalf("node %d oversubscribed: %v", i, n.Commitment())
		}
	}
	// Model-driven packing must beat one-workload-per-node.
	if len(res.Nodes) >= 4 {
		t.Fatalf("budget packing used %d nodes for 4 workloads", len(res.Nodes))
	}
}

func TestPackDedicatedWorkloadsGetOwnNodes(t *testing.T) {
	failPlanner := func(w Workload) (Plan, bool) { return Plan{Dedicated: true}, false }
	res := Pack([]Workload{jacobiWorkload(0.7), jacobiWorkload(0.7)}, failPlanner)
	if len(res.Nodes) != 2 {
		t.Fatalf("dedicated workloads share nodes: %d", len(res.Nodes))
	}
	if math.Abs(res.RevenuePerNode()-PricePerHour) > 1e-12 {
		t.Fatalf("dedicated revenue per node %v, want %v", res.RevenuePerNode(), PricePerHour)
	}
}

func TestRevenuePerNodeImprovesWithColocation(t *testing.T) {
	// Figure 13's combo 1 in miniature: bursty Jacobi at 70% breaks the
	// fixed AWS policy, while model-driven plans colocate.
	ws := []Workload{jacobiWorkload(0.7), jacobiWorkload(0.7), jacobiWorkload(0.7), jacobiWorkload(0.7)}
	aws := Pack(ws, AWSPlanner(testEst))
	budget := Pack(ws, BudgetPlanner(testEst, AWSRefill))
	if budget.RevenuePerNode() <= aws.RevenuePerNode() {
		t.Fatalf("model-driven budgeting revenue/node %v <= AWS %v",
			budget.RevenuePerNode(), aws.RevenuePerNode())
	}
}

func TestFillNodeOrdering(t *testing.T) {
	// Single-node packing: the sprint planner's cheaper plans fit more
	// workloads on one node than budgeting, which beats AWS (the
	// Figure 13 bar ordering).
	ws := []Workload{jacobiWorkload(0.7), jacobiWorkload(0.7), jacobiWorkload(0.7), jacobiWorkload(0.7)}
	_, nAWS := FillNode(ws, AWSPlanner(testEst))
	_, nBudget := FillNode(ws, BudgetPlanner(testEst, AWSRefill))
	_, nSprint := FillNode(ws, SprintPlanner(testEst, 30, 7))
	if !(nAWS <= nBudget && nBudget <= nSprint) {
		t.Fatalf("hosted counts aws=%d budget=%d sprint=%d, want non-decreasing", nAWS, nBudget, nSprint)
	}
	if nSprint <= nAWS {
		t.Fatalf("sprint planner (%d) should host strictly more than AWS (%d)", nSprint, nAWS)
	}
}

func TestPlanString(t *testing.T) {
	if got := (Plan{Dedicated: true}).String(); got != "Plan{dedicated}" {
		t.Fatalf("dedicated string %q", got)
	}
	p := AWSPlan()
	s := p.String()
	for _, want := range []string{"cpu=20%", "sprint=5x", "budget=20%", "commit=0.36"} {
		if !containsStr(s, want) {
			t.Fatalf("plan string %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMeetsSLODedicatedAlwaysTrue(t *testing.T) {
	if !MeetsSLO(jacobiWorkload(0.9), Plan{Dedicated: true}, testEst) {
		t.Fatal("dedicated plan must trivially satisfy the SLO")
	}
}

func TestAWSPlannerPassesAtLowLoad(t *testing.T) {
	// A calm, lightly loaded tenant meets the fixed AWS policy's SLO.
	w := Workload{
		Name: "Jacobi", Class: workload.MustByName("Jacobi"),
		Utilization: 0.3, ArrivalCV: 1, // Poisson
	}
	plan, ok := AWSPlanner(testEst)(w)
	if !ok || plan.Dedicated {
		t.Fatalf("AWS planner failed a calm workload: ok=%v %v", ok, plan)
	}
}

func TestPackEmptyInput(t *testing.T) {
	res := Pack(nil, AWSPlanner(testEst))
	if len(res.Nodes) != 0 || res.RevenuePerNode() != 0 {
		t.Fatalf("empty pack: %+v", res)
	}
}
