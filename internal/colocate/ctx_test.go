package colocate

import (
	"context"
	"errors"
	"testing"
)

func TestPackCtxPreCanceled(t *testing.T) {
	ws := []Workload{jacobiWorkload(0.6), jacobiWorkload(0.8)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PackCtx(ctx, ws, BudgetPlannerCtx(testEst, 600))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFillNodeCtxPreCanceled(t *testing.T) {
	ws := []Workload{jacobiWorkload(0.6)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := FillNodeCtx(ctx, ws, SprintPlannerCtx(testEst, 12, 3))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPackCtxBackgroundMatchesLegacy(t *testing.T) {
	ws := []Workload{jacobiWorkload(0.5), jacobiWorkload(0.7)}
	a, err := PackCtx(context.Background(), ws, BudgetPlannerCtx(testEst, 600))
	if err != nil {
		t.Fatal(err)
	}
	b := Pack(ws, BudgetPlanner(testEst, 600))
	if a.Hosted() != b.Hosted() || len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("ctx pack (%d hosted, %d nodes) != legacy (%d hosted, %d nodes)",
			a.Hosted(), len(a.Nodes), b.Hosted(), len(b.Nodes))
	}
}
