// Package colocate implements Section 4.4: packing workloads onto
// burstable instances (AWS T2-style CPU throttling) under response-time
// SLOs, and comparing revenue per node across sprinting policies:
//
//   - AWS: every workload gets the fixed published policy — 20% of a
//     core sustained, 5x sprint rate, 720 sprint-seconds per hour;
//   - model-driven budgeting: per-workload sustained share, sprint rate
//     and budget chosen to meet the SLO with minimal CPU commitment;
//   - model-driven sprinting: budgeting plus timeout exploration.
//
// A workload whose policy cannot meet its SLO does not colocate: it runs
// on a dedicated node (the paper's "essentially making the server a
// dedicated host"). Nodes never oversubscribe: the sum of sustained
// shares plus expected sprint surplus stays within one CPU.
package colocate

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mdsprint/internal/dist"
	"mdsprint/internal/explore"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sprint"
	"mdsprint/internal/sweep"
	"mdsprint/internal/workload"
)

// PricePerHour is AWS's published T2.small price per workload-hour.
const PricePerHour = 0.026

// SLOFactor is the paper's response-time clause: throttled response time
// may exceed the unthrottled baseline by at most 15%.
const SLOFactor = 1.15

// AWSRefill is the budget window of the published policy: 720
// sprint-seconds accrue per hour.
const AWSRefill = 3600.0

// Workload is one tenant service to host.
type Workload struct {
	Name  string
	Class *workload.Class
	// Utilization is the arrival rate as a fraction of the T2.small
	// sustained rate (20% of the class's full-speed throughput), the
	// workload's fixed demand.
	Utilization float64
	// ArrivalCV is the coefficient of variation of interarrival times.
	// 1 (or 0) is Poisson; cloud tenant traffic is burstier — the
	// default used by the Section 4.4 experiments is BurstyArrivalCV.
	// Burstiness is what breaks fixed sprinting policies: a burst
	// drains the budget and queries then crawl at the throttled rate.
	ArrivalCV float64
}

// BurstyArrivalCV is the default interarrival coefficient of variation
// for colocated tenant workloads.
const BurstyArrivalCV = 3.0

// interarrival returns the workload's interarrival distribution.
func (w Workload) interarrival() dist.Dist {
	cv := w.ArrivalCV
	if cv <= 1 {
		return dist.NewExponential(w.ArrivalRate())
	}
	return dist.HyperexponentialFromMeanCV(1/w.ArrivalRate(), cv)
}

// ArrivalRate returns the workload's arrival rate in queries/second.
func (w Workload) ArrivalRate() float64 {
	return w.Utilization * 0.20 * sprint.QPH(w.Class.BurstQPH)
}

// FullRate returns the class's unthrottled processing rate in
// queries/second (the throttle mechanism's 100%-CPU speed).
func (w Workload) FullRate() float64 { return sprint.QPH(w.Class.BurstQPH) }

// Plan is one workload's hosting policy.
type Plan struct {
	// Fraction is the sustained CPU share (throttle fraction).
	Fraction float64
	// Speedup is the sprint-rate multiplier over the sustained rate.
	Speedup float64
	// BudgetPct is sprint-seconds accrued per second (budget capacity
	// over the refill window); RefillTime is the window in seconds.
	BudgetPct  float64
	RefillTime float64
	// Timeout triggers sprints; 0 sprints every query (AWS-style).
	Timeout float64
	// Dedicated marks a workload that could not meet its SLO under
	// any throttled plan and occupies a full node.
	Dedicated bool
}

// AWSPlan is the published fixed policy.
func AWSPlan() Plan {
	return Plan{Fraction: 0.20, Speedup: 5, BudgetPct: 0.20, RefillTime: AWSRefill, Timeout: 0}
}

// CPUCommitment is the node capacity the plan reserves: the sustained
// share plus the time-averaged sprint surplus (budget accrual times the
// extra CPU a sprint uses).
func (p Plan) CPUCommitment() float64 {
	if p.Dedicated {
		return 1
	}
	return p.Fraction + p.BudgetPct*p.Fraction*(p.Speedup-1)
}

func (p Plan) String() string {
	if p.Dedicated {
		return "Plan{dedicated}"
	}
	return fmt.Sprintf("Plan{cpu=%.0f%% sprint=%.2gx budget=%.0f%% timeout=%.0fs commit=%.2f}",
		p.Fraction*100, p.Speedup, p.BudgetPct*100, p.Timeout, p.CPUCommitment())
}

// RTEstimator predicts a workload's mean response time under a plan.
// Production use wires the model-driven estimator; tests may substitute
// closed forms.
type RTEstimator interface {
	MeanRT(w Workload, p Plan) float64
	// BaselineRT is the unthrottled response time the SLO references.
	BaselineRT(w Workload) float64
}

// BatchRTEstimator is an RTEstimator that can score many plans in one
// call. Planners use it to hand whole candidate chunks to the sweep
// engine, which shards the simulations and memoizes re-scored plans.
type BatchRTEstimator interface {
	RTEstimator
	MeanRTs(w Workload, plans []Plan) []float64
}

// SimEstimator estimates response times with the timeout-aware queue
// simulator, using the class's service model at the plan's throttled
// rate — the model-driven path of Section 4.4.
type SimEstimator struct {
	SimQueries int
	SimReps    int
	Seed       uint64
	// Engine evaluates (and memoizes) the simulations; nil uses
	// sweep.Shared().
	Engine *sweep.Engine
}

func (e SimEstimator) Params(w Workload, p Plan) queuesim.Params {
	queries := e.SimQueries
	if queries == 0 {
		queries = 3000
	}
	mu := p.Fraction * w.FullRate()
	speedup := math.Min(p.Speedup, w.Class.MaxThrottleSpeedup)
	return queuesim.Params{
		ArrivalRate:   w.ArrivalRate(),
		Arrival:       w.interarrival(),
		Service:       dist.LogNormalFromMeanCV(1/mu, w.Class.ServiceCV),
		ServiceRate:   mu,
		SprintRate:    speedup * mu,
		Timeout:       p.Timeout,
		BudgetSeconds: p.BudgetPct * p.RefillTime,
		RefillTime:    p.RefillTime,
		NumQueries:    queries,
		Warmup:        queries / 10,
		Seed:          e.Seed,
	}
}

func (e SimEstimator) reps() int {
	if e.SimReps == 0 {
		return 2
	}
	return e.SimReps
}

// MeanRT simulates the workload under the plan.
func (e SimEstimator) MeanRT(w Workload, p Plan) float64 {
	pred, err := sweep.Or(e.Engine).Evaluate(sweep.Task{Params: e.Params(w, p), Reps: e.reps()})
	if err != nil {
		panic(fmt.Sprintf("colocate: %v", err))
	}
	return pred.MeanRT
}

// MeanRTs scores a batch of plans as one sweep, in plan order.
func (e SimEstimator) MeanRTs(w Workload, plans []Plan) []float64 {
	tasks := make([]sweep.Task, len(plans))
	for i, p := range plans {
		tasks[i] = sweep.Task{Params: e.Params(w, p), Reps: e.reps()}
	}
	rts, err := sweep.Or(e.Engine).MeanRTs(tasks)
	if err != nil {
		panic(fmt.Sprintf("colocate: %v", err))
	}
	return rts
}

// meanRTs batch-scores plans through a BatchRTEstimator, falling back to
// serial MeanRT calls — the results are identical either way; only
// sharding and memoization differ.
func meanRTs(est RTEstimator, w Workload, plans []Plan) []float64 {
	if be, ok := est.(BatchRTEstimator); ok {
		return be.MeanRTs(w, plans)
	}
	out := make([]float64, len(plans))
	for i, p := range plans {
		out[i] = est.MeanRT(w, p)
	}
	return out
}

// scoreChunk is how many candidate plans the planners score per batch:
// enough to keep a worker pool busy, small enough to bound the work
// evaluated past the first (cheapest) SLO-meeting plan.
const scoreChunk = 8

// BaselineRT simulates the unthrottled workload (full CPU, no sprints).
func (e SimEstimator) BaselineRT(w Workload) float64 {
	return e.MeanRT(w, Plan{Fraction: 1, Speedup: 1, RefillTime: AWSRefill, Timeout: -1})
}

// MeetsSLO reports whether the plan keeps the workload within SLOFactor
// of its unthrottled response time.
func MeetsSLO(w Workload, p Plan, est RTEstimator) bool {
	if p.Dedicated {
		return true
	}
	return est.MeanRT(w, p) <= SLOFactor*est.BaselineRT(w)
}

// Planner chooses a plan for one workload; ok=false means no throttled
// plan met the SLO and the workload needs a dedicated node.
type Planner func(w Workload) (Plan, bool)

// CtxPlanner is a Planner honoring cancellation: planning stops between
// scoring chunks once ctx is done, and the error is non-nil only when
// it is ctx's. A run that completes under a context chooses the same
// plan as one without (determinism is never perturbed, only truncated).
type CtxPlanner func(ctx context.Context, w Workload) (Plan, bool, error)

// bind adapts a CtxPlanner into the context-free Planner shape.
func bind(p CtxPlanner) Planner {
	return func(w Workload) (Plan, bool) {
		plan, ok, err := p(context.Background(), w)
		if err != nil {
			// Unreachable: the only error source is the context, and
			// Background is never done.
			panic(err.Error())
		}
		return plan, ok
	}
}

// AWSPlanner applies the fixed policy, falling back to a dedicated node
// when it violates the SLO.
func AWSPlanner(est RTEstimator) Planner {
	return func(w Workload) (Plan, bool) {
		p := AWSPlan()
		if MeetsSLO(w, p, est) {
			return p, true
		}
		return Plan{Dedicated: true}, false
	}
}

// searchGrids for the model-driven planners.
var (
	planFractions = []float64{0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50}
	planBudgets   = []float64{0.08, 0.10, 0.12, 0.14, 0.16, 0.18, 0.20, 0.25, 0.30, 0.40}
	// planRefills are the budget windows the full sprinting planner may
	// choose. Capacity (rate x window) absorbs bursts while commitment
	// depends only on the rate, so longer windows are pure upside until
	// bursts outlast them.
	planRefills = []float64{AWSRefill, 4 * AWSRefill, 8 * AWSRefill}
)

// candidates enumerates plans ordered by CPU commitment, cheapest first.
// refills selects the budget windows to consider (model-driven budgeting
// keeps AWS's hourly window; the sprinting planner explores longer ones).
func candidates(w Workload, refills []float64) []Plan {
	var out []Plan
	for _, f := range planFractions {
		speedup := math.Min(1/f, w.Class.MaxThrottleSpeedup)
		for _, b := range planBudgets {
			for _, r := range refills {
				out = append(out, Plan{
					Fraction: f, Speedup: speedup,
					BudgetPct: b, RefillTime: r, Timeout: 0,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].CPUCommitment(), out[j].CPUCommitment()
		if ci < cj {
			return true
		}
		if ci > cj {
			return false
		}
		// Same commitment: prefer the larger budget capacity (longer
		// window), which can only help the SLO.
		return out[i].RefillTime > out[j].RefillTime
	})
	return out
}

// BudgetPlanner is model-driven budgeting (Section 4.4's middle bar):
// enlarge the sprint rate by shrinking the sustained share, searching for
// the cheapest (fraction, budget) combination that meets the SLO within
// AWS's hourly budget window. Timeout stays 0 — every query sprints.
func BudgetPlanner(est RTEstimator, refill float64) Planner {
	return bind(BudgetPlannerCtx(est, refill))
}

// BudgetPlannerCtx is BudgetPlanner honoring cancellation (see
// CtxPlanner).
func BudgetPlannerCtx(est RTEstimator, refill float64) CtxPlanner {
	if refill <= 0 {
		refill = AWSRefill
	}
	return func(ctx context.Context, w Workload) (Plan, bool, error) {
		base := est.BaselineRT(w)
		cands := candidates(w, []float64{refill})
		for i := 0; i < len(cands); i += scoreChunk {
			if err := ctx.Err(); err != nil {
				return Plan{}, false, fmt.Errorf("colocate: %w", err)
			}
			end := i + scoreChunk
			if end > len(cands) {
				end = len(cands)
			}
			rts := meanRTs(est, w, cands[i:end])
			for j, rt := range rts {
				if rt <= SLOFactor*base {
					return cands[i+j], true, nil
				}
			}
		}
		return Plan{Dedicated: true}, false, nil
	}
}

// SprintPlanner is full model-driven sprinting: beyond budgeting it
// explores the timing dimensions of the policy space — sprint timeouts
// (annealed per Section 4.2) and budget windows — uncovering plans that
// meet the SLO at lower CPU commitments than any timeout-0, hourly-window
// policy.
func SprintPlanner(est RTEstimator, annealIter int, seed uint64) Planner {
	return bind(SprintPlannerCtx(est, annealIter, seed))
}

// SprintPlannerCtx is SprintPlanner honoring cancellation: the context
// is checked between scoring chunks and threaded into the timeout
// annealing (see CtxPlanner).
func SprintPlannerCtx(est RTEstimator, annealIter int, seed uint64) CtxPlanner {
	if annealIter == 0 {
		annealIter = 40
	}
	return func(ctx context.Context, w Workload) (Plan, bool, error) {
		base := est.BaselineRT(w)
		slo := SLOFactor * base
		maxTO := 4 / (w.Class.BurstQPH / 3600) // ~4 unthrottled service times
		cands := candidates(w, planRefills)
		for i := 0; i < len(cands); i += scoreChunk {
			if err := ctx.Err(); err != nil {
				return Plan{}, false, fmt.Errorf("colocate: %w", err)
			}
			end := i + scoreChunk
			if end > len(cands) {
				end = len(cands)
			}
			rts := meanRTs(est, w, cands[i:end])
			for j, rt0 := range rts {
				p := cands[i+j]
				if rt0 <= slo {
					return p, true, nil
				}
				// A timeout redistributes budget; it cannot rescue a
				// plan that misses the SLO by a wide margin.
				if rt0 > 1.8*slo {
					continue
				}
				// Anneal the timeout, scoring proposal cohorts as one
				// sweep. The trajectory is cohort-invariant, so the
				// chosen timeout does not depend on the estimator's
				// batching or the engine's worker count.
				res, err := explore.MinimizeTimeoutBatchCtx(ctx, func(tos []float64) ([]float64, error) {
					variants := make([]Plan, len(tos))
					for k, to := range tos {
						variants[k] = p
						variants[k].Timeout = to
					}
					return meanRTs(est, w, variants), nil
				}, 0, maxTO, explore.BatchOptions{Options: explore.Options{MaxIter: annealIter, Seed: seed}})
				if err != nil {
					if ctx.Err() != nil {
						return Plan{}, false, fmt.Errorf("colocate: %w", ctx.Err())
					}
					panic(err)
				}
				if res.RT <= slo {
					p.Timeout = res.Point[0]
					return p, true, nil
				}
			}
		}
		return Plan{Dedicated: true}, false, nil
	}
}

// FillNode hosts as many workloads from the combo on a single node as
// commitments allow, in order — Figure 13's per-node packing. A workload
// whose planner fails the SLO gets a dedicated plan (commitment 1), so it
// can only occupy an otherwise-empty node — the paper's "essentially
// making the server a dedicated host". It returns the assignments and the
// count.
func FillNode(ws []Workload, planner Planner) ([]Assignment, int) {
	var out []Assignment
	used := 0.0
	for _, w := range ws {
		plan, _ := planner(w)
		if used+plan.CPUCommitment() > 1.0+1e-9 {
			continue
		}
		used += plan.CPUCommitment()
		out = append(out, Assignment{Workload: w, Plan: plan})
	}
	return out, len(out)
}

// FillNodeCtx is FillNode honoring cancellation: once ctx is done the
// fill stops with ctx's error and no partial assignments.
func FillNodeCtx(ctx context.Context, ws []Workload, planner CtxPlanner) ([]Assignment, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var out []Assignment
	used := 0.0
	for _, w := range ws {
		plan, _, err := planner(ctx, w)
		if err != nil {
			return nil, 0, err
		}
		if used+plan.CPUCommitment() > 1.0+1e-9 {
			continue
		}
		used += plan.CPUCommitment()
		out = append(out, Assignment{Workload: w, Plan: plan})
	}
	return out, len(out), nil
}

// Assignment is one hosted workload with its plan.
type Assignment struct {
	Workload Workload
	Plan     Plan
}

// Node is one physical server.
type Node struct {
	Assignments []Assignment
}

// Commitment is the node's total reserved CPU.
func (n Node) Commitment() float64 {
	total := 0.0
	for _, a := range n.Assignments {
		total += a.Plan.CPUCommitment()
	}
	return total
}

// PackResult is the outcome of packing a workload combo.
type PackResult struct {
	Nodes []Node
}

// Pack places each workload using the planner, first-fit onto nodes
// without oversubscription; dedicated workloads get their own node.
func Pack(ws []Workload, planner Planner) PackResult {
	res, err := PackCtx(context.Background(), ws, func(_ context.Context, w Workload) (Plan, bool, error) {
		p, ok := planner(w)
		return p, ok, nil
	})
	if err != nil {
		// Unreachable: the adapted planner never errs and Background is
		// never done.
		panic(err.Error())
	}
	return res
}

// PackCtx is Pack honoring cancellation: once ctx is done the packing
// stops with ctx's error and no partial result.
func PackCtx(ctx context.Context, ws []Workload, planner CtxPlanner) (PackResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var res PackResult
	for _, w := range ws {
		plan, ok, err := planner(ctx, w)
		if err != nil {
			return PackResult{}, err
		}
		if !ok {
			res.Nodes = append(res.Nodes, Node{Assignments: []Assignment{{Workload: w, Plan: plan}}})
			continue
		}
		placed := false
		for i := range res.Nodes {
			n := &res.Nodes[i]
			if len(n.Assignments) > 0 && n.Assignments[0].Plan.Dedicated {
				continue
			}
			if n.Commitment()+plan.CPUCommitment() <= 1.0+1e-9 {
				n.Assignments = append(n.Assignments, Assignment{Workload: w, Plan: plan})
				placed = true
				break
			}
		}
		if !placed {
			res.Nodes = append(res.Nodes, Node{Assignments: []Assignment{{Workload: w, Plan: plan}}})
		}
	}
	return res, nil
}

// Hosted returns the number of workloads placed (all of them; dedicated
// ones just occupy whole nodes).
func (r PackResult) Hosted() int {
	n := 0
	for _, node := range r.Nodes {
		n += len(node.Assignments)
	}
	return n
}

// RevenuePerHour is the total hourly revenue across nodes.
func (r PackResult) RevenuePerHour() float64 {
	return PricePerHour * float64(r.Hosted())
}

// RevenuePerNode is Figure 13's metric: hourly revenue divided by nodes
// used.
func (r PackResult) RevenuePerNode() float64 {
	if len(r.Nodes) == 0 {
		return 0
	}
	return r.RevenuePerHour() / float64(len(r.Nodes))
}
