package ann

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/stats"
)

// smallCfg keeps test networks cheap.
var smallCfg = Config{HiddenLayers: 2, Width: 16, Epochs: 300, Seed: 1}

func genData(n int, seed uint64, f func([]float64) float64) ([][]float64, []float64) {
	r := dist.NewRNG(seed)
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Float64() * 4, r.Float64()*2 - 1}
		Y[i] = f(X[i])
	}
	return X, Y
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, smallCfg); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, smallCfg); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train([][]float64{{}}, []float64{1}, smallCfg); err == nil {
		t.Error("zero-width features accepted")
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{1, 2}, smallCfg); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	f := func(x []float64) float64 { return 3*x[0] - 2*x[1] + 5 }
	X, Y := genData(400, 2, f)
	net, err := Train(X, Y, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	Xt, Yt := genData(100, 3, f)
	var preds []float64
	for _, row := range Xt {
		preds = append(preds, net.Predict(row))
	}
	if med := stats.MedianAbsRelError(preds, Yt); med > 0.05 {
		t.Fatalf("median error %v on linear target", med)
	}
}

func TestLearnsNonlinearFunction(t *testing.T) {
	f := func(x []float64) float64 { return math.Sin(x[0]) + x[1]*x[1] + 3 }
	X, Y := genData(800, 4, f)
	cfg := smallCfg
	cfg.Epochs = 600
	net, err := Train(X, Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	Xt, Yt := genData(150, 5, f)
	var preds []float64
	for _, row := range Xt {
		preds = append(preds, net.Predict(row))
	}
	if med := stats.MedianAbsRelError(preds, Yt); med > 0.08 {
		t.Fatalf("median error %v on nonlinear target", med)
	}
}

func TestDeterministicTraining(t *testing.T) {
	f := func(x []float64) float64 { return x[0] + x[1] }
	X, Y := genData(100, 6, f)
	a, _ := Train(X, Y, smallCfg)
	b, _ := Train(X, Y, smallCfg)
	probe := []float64{1.5, 0.2}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("training not deterministic")
	}
}

func TestPredictPanicsOnWidthMismatch(t *testing.T) {
	X, Y := genData(50, 7, func(x []float64) float64 { return x[0] })
	net, _ := Train(X, Y, smallCfg)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on width mismatch")
		}
	}()
	net.Predict([]float64{1})
}

func TestConstantTarget(t *testing.T) {
	X, _ := genData(80, 8, func(x []float64) float64 { return 0 })
	Y := make([]float64, len(X))
	for i := range Y {
		Y[i] = 42
	}
	net, err := Train(X, Y, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Predict([]float64{2, 0}); math.Abs(got-42) > 0.5 {
		t.Fatalf("constant target predicted %v, want 42", got)
	}
}

func TestMoreDataImproves(t *testing.T) {
	// The Section 3.1 phenomenon in miniature: on a discontinuous
	// target, the ANN improves markedly with more training data.
	f := func(x []float64) float64 {
		if x[0] > 2 && x[1] > 0 {
			return 100.0
		}
		return 10
	}
	test, testY := genData(300, 9, f)
	evalNet := func(n int, seed uint64) float64 {
		X, Y := genData(n, seed, f)
		cfg := smallCfg
		cfg.Epochs = 200
		net, err := Train(X, Y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var preds []float64
		for _, row := range test {
			preds = append(preds, net.Predict(row))
		}
		return stats.MedianAbsRelError(preds, testY)
	}
	small := evalNet(40, 10)
	large := evalNet(800, 11)
	if large >= small {
		t.Fatalf("more data did not help: %v (n=40) vs %v (n=800)", small, large)
	}
}

func TestDeepDefaultArchitecture(t *testing.T) {
	// Default config is the paper's 10x100 network; train a tiny run to
	// confirm the deep stack is trainable end to end.
	f := func(x []float64) float64 { return 2 * x[0] }
	X, Y := genData(60, 12, f)
	cfg := Config{Epochs: 30, Seed: 13}
	net, err := Train(X, Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.layers) != 11 {
		t.Fatalf("default network has %d layers, want 11 (10 hidden + output)", len(net.layers))
	}
	if math.IsNaN(net.Predict([]float64{1, 0})) {
		t.Fatal("deep network produced NaN")
	}
}
