// Package ann implements the artificial-neural-network baseline of Table
// 1(A): a multi-layer perceptron that maps sprinting policies and workload
// conditions directly to response time. The paper contrasts it with the
// hybrid model: the ANN must learn the discontinuous policy-to-response-
// time surface end to end, so it needs 6x-54x more training data to match
// the hybrid approach (Section 3.1).
//
// The network is a standard fully connected MLP — ReLU activations, He
// initialisation, Adam optimiser, z-score normalisation of inputs and
// target — written against the standard library only.
package ann

import (
	"fmt"
	"math"

	"mdsprint/internal/dist"
)

// Config describes the network and its training run.
type Config struct {
	// HiddenLayers and Width define the architecture. The paper's
	// baseline uses 10 hidden layers of 100 neurons.
	HiddenLayers int
	Width        int
	// LearningRate for Adam (default 1e-3).
	LearningRate float64
	// Epochs over the training set (default 200).
	Epochs int
	// BatchSize for minibatch SGD (default 32).
	BatchSize int
	// Seed drives initialisation and shuffling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.HiddenLayers == 0 {
		c.HiddenLayers = 10
	}
	if c.Width == 0 {
		c.Width = 100
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 1e-3
	}
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	return c
}

// layer is one dense layer with Adam state.
type layer struct {
	in, out int
	w       []float64 // out x in, row-major
	b       []float64
	// Adam moments.
	mw, vw []float64
	mb, vb []float64
}

func newLayer(in, out int, r *dist.RNG) *layer {
	l := &layer{
		in: in, out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		mw: make([]float64, in*out),
		vw: make([]float64, in*out),
		mb: make([]float64, out),
		vb: make([]float64, out),
	}
	// He initialisation for ReLU networks.
	scale := math.Sqrt(2 / float64(in))
	for i := range l.w {
		l.w[i] = r.NormFloat64() * scale
	}
	return l
}

// Network is a trained MLP regressor.
type Network struct {
	cfg    Config
	layers []*layer
	inMean []float64
	inStd  []float64
	outMu  float64
	outSd  float64
}

// Train fits the network to (inputs, targets). All input rows must share a
// width. Training is deterministic for a fixed config.
func Train(inputs [][]float64, targets []float64, cfg Config) (*Network, error) {
	if len(inputs) == 0 || len(inputs) != len(targets) {
		return nil, fmt.Errorf("ann: %d inputs vs %d targets", len(inputs), len(targets))
	}
	width := len(inputs[0])
	if width == 0 {
		return nil, fmt.Errorf("ann: empty feature vectors")
	}
	for i, row := range inputs {
		if len(row) != width {
			return nil, fmt.Errorf("ann: row %d has %d features, want %d", i, len(row), width)
		}
	}
	c := cfg.withDefaults()
	r := dist.NewRNG(c.Seed)

	n := &Network{cfg: c}
	n.normalise(inputs, targets)

	// Architecture: width -> [Width]*HiddenLayers -> 1.
	sizes := make([]int, 0, c.HiddenLayers+2)
	sizes = append(sizes, width)
	for i := 0; i < c.HiddenLayers; i++ {
		sizes = append(sizes, c.Width)
	}
	sizes = append(sizes, 1)
	for i := 0; i+1 < len(sizes); i++ {
		n.layers = append(n.layers, newLayer(sizes[i], sizes[i+1], r))
	}

	// Pre-normalised copies of the data.
	X := make([][]float64, len(inputs))
	Y := make([]float64, len(targets))
	for i := range inputs {
		X[i] = n.normIn(inputs[i])
		Y[i] = (targets[i] - n.outMu) / n.outSd
	}

	n.fit(X, Y, r)
	return n, nil
}

// normalise records z-score statistics of the training data.
func (n *Network) normalise(inputs [][]float64, targets []float64) {
	width := len(inputs[0])
	n.inMean = make([]float64, width)
	n.inStd = make([]float64, width)
	for j := 0; j < width; j++ {
		sum := 0.0
		for _, row := range inputs {
			sum += row[j]
		}
		mean := sum / float64(len(inputs))
		varSum := 0.0
		for _, row := range inputs {
			d := row[j] - mean
			varSum += d * d
		}
		sd := math.Sqrt(varSum / float64(len(inputs)))
		if sd < 1e-12 {
			sd = 1
		}
		n.inMean[j], n.inStd[j] = mean, sd
	}
	sum := 0.0
	for _, y := range targets {
		sum += y
	}
	n.outMu = sum / float64(len(targets))
	varSum := 0.0
	for _, y := range targets {
		d := y - n.outMu
		varSum += d * d
	}
	n.outSd = math.Sqrt(varSum / float64(len(targets)))
	if n.outSd < 1e-12 {
		n.outSd = 1
	}
}

func (n *Network) normIn(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - n.inMean[j]) / n.inStd[j]
	}
	return out
}

// fit runs minibatch Adam over the normalised data.
func (n *Network) fit(X [][]float64, Y []float64, r *dist.RNG) {
	c := n.cfg
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	// Forward activations and backward deltas, reused across samples.
	acts := make([][]float64, len(n.layers)+1)
	pre := make([][]float64, len(n.layers))
	step := 0
	for epoch := 0; epoch < c.Epochs; epoch++ {
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += c.BatchSize {
			end := start + c.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			// Accumulate gradients over the batch.
			gw := make([][]float64, len(n.layers))
			gb := make([][]float64, len(n.layers))
			for li, l := range n.layers {
				gw[li] = make([]float64, len(l.w))
				gb[li] = make([]float64, len(l.b))
			}
			for _, si := range batch {
				n.forward(X[si], acts, pre)
				// MSE loss: dL/dout = 2*(out - y); constant 2
				// folds into the learning rate.
				delta := []float64{acts[len(n.layers)][0] - Y[si]}
				for li := len(n.layers) - 1; li >= 0; li-- {
					l := n.layers[li]
					in := acts[li]
					nextDelta := make([]float64, l.in)
					for o := 0; o < l.out; o++ {
						d := delta[o]
						if li < len(n.layers)-1 && pre[li][o] <= 0 {
							d = 0 // ReLU gradient
						}
						gb[li][o] += d
						row := l.w[o*l.in : (o+1)*l.in]
						for i2 := 0; i2 < l.in; i2++ {
							gw[li][o*l.in+i2] += d * in[i2]
							nextDelta[i2] += d * row[i2]
						}
					}
					delta = nextDelta
				}
			}
			step++
			scale := 1 / float64(len(batch))
			for li, l := range n.layers {
				adam(l.w, gw[li], l.mw, l.vw, c.LearningRate, scale, step)
				adam(l.b, gb[li], l.mb, l.vb, c.LearningRate, scale, step)
			}
		}
	}
}

// adam applies one Adam update to params given accumulated gradients.
func adam(params, grads, m, v []float64, lr, scale float64, step int) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	bc1 := 1 - math.Pow(beta1, float64(step))
	bc2 := 1 - math.Pow(beta2, float64(step))
	for i := range params {
		g := grads[i] * scale
		m[i] = beta1*m[i] + (1-beta1)*g
		v[i] = beta2*v[i] + (1-beta2)*g*g
		mhat := m[i] / bc1
		vhat := v[i] / bc2
		params[i] -= lr * mhat / (math.Sqrt(vhat) + eps)
	}
}

// forward computes activations; acts[0] is the input, acts[len] the
// output. pre holds pre-activation values for ReLU gradients.
func (n *Network) forward(x []float64, acts, pre [][]float64) {
	acts[0] = x
	for li, l := range n.layers {
		if pre[li] == nil {
			pre[li] = make([]float64, l.out)
		}
		out := make([]float64, l.out)
		in := acts[li]
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i := range row {
				sum += row[i] * in[i]
			}
			pre[li][o] = sum
			if li < len(n.layers)-1 && sum < 0 {
				sum = 0 // ReLU on hidden layers, linear output
			}
			out[o] = sum
		}
		acts[li+1] = out
	}
}

// Predict returns the network's estimate for one input row.
func (n *Network) Predict(row []float64) float64 {
	if len(row) != len(n.inMean) {
		panic(fmt.Sprintf("ann: %d features, trained on %d", len(row), len(n.inMean)))
	}
	acts := make([][]float64, len(n.layers)+1)
	pre := make([][]float64, len(n.layers))
	n.forward(n.normIn(row), acts, pre)
	return acts[len(n.layers)][0]*n.outSd + n.outMu
}
