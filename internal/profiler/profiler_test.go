package profiler

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/sprint"
	"mdsprint/internal/workload"
)

func jacobiProfiler() *Profiler {
	return &Profiler{
		Mix:           workload.SingleClass(workload.MustByName("Jacobi")),
		Mechanism:     mech.DVFS{},
		QueriesPerRun: 600,
		Warmup:        60,
		Seed:          7,
	}
}

func TestMeasureServiceRateNearNominal(t *testing.T) {
	p := jacobiProfiler()
	mu, samples, dur := p.MeasureServiceRate()
	nominal := sprint.QPH(51)
	// Load inflation can push the measured rate a few percent below
	// nominal, never above by much.
	if mu > nominal*1.02 || mu < nominal*0.90 {
		t.Fatalf("measured mu %v qph, nominal %v qph", sprint.ToQPH(mu), 51.0)
	}
	if len(samples) != 600 {
		t.Fatalf("got %d service samples, want 600", len(samples))
	}
	if dur <= 0 {
		t.Fatal("non-positive profiling duration")
	}
}

func TestMeasureMarginalRateReflectsSpeedup(t *testing.T) {
	p := jacobiProfiler()
	mu, _, _ := p.MeasureServiceRate()
	mum, _ := p.MeasureMarginalRate()
	speedup := mum / mu
	want := workload.MustByName("Jacobi").DVFSSpeedup()
	// Toggle overhead shaves a little off the ideal speedup.
	if speedup > want*1.02 || speedup < want*0.90 {
		t.Fatalf("marginal speedup %v, want ~%v", speedup, want)
	}
}

func TestMarginalAboveServiceForAllMechanisms(t *testing.T) {
	for _, m := range mech.All() {
		p := jacobiProfiler()
		p.Mechanism = m
		mu, _, _ := p.MeasureServiceRate()
		mum, _ := p.MeasureMarginalRate()
		if mum <= mu {
			t.Errorf("%s: mu_m %v <= mu %v", m.Name(), mum, mu)
		}
	}
}

func TestRunConditionObservation(t *testing.T) {
	p := jacobiProfiler()
	cond := Condition{
		Utilization: 0.75, ArrivalKind: dist.KindExponential,
		Timeout: 60, RefillTime: 200, BudgetPct: 0.4,
	}
	obs, dur := p.RunCondition(cond, 99)
	if obs.MeanRT <= 0 || math.IsNaN(obs.MeanRT) {
		t.Fatalf("bad mean RT %v", obs.MeanRT)
	}
	if obs.P99RT < obs.P95RT || obs.P95RT < obs.MeanRT*0.5 {
		t.Fatalf("tail stats inconsistent: %+v", obs)
	}
	if obs.SprintedFrac <= 0 || obs.SprintedFrac > 1 {
		t.Fatalf("sprinted fraction %v", obs.SprintedFrac)
	}
	if dur <= 0 {
		t.Fatal("non-positive duration")
	}
}

func TestProfileDatasetShape(t *testing.T) {
	p := jacobiProfiler()
	p.QueriesPerRun = 300
	conds := SmallGrid().Conditions()
	ds := p.Profile(conds)
	if len(ds.Observations) != len(conds) {
		t.Fatalf("got %d observations, want %d", len(ds.Observations), len(conds))
	}
	if ds.MixName != "Jacobi" || ds.MechName != "DVFS" {
		t.Fatalf("dataset identity: %s/%s", ds.MixName, ds.MechName)
	}
	if ds.MarginalSpeedup() <= 1 {
		t.Fatalf("marginal speedup %v <= 1", ds.MarginalSpeedup())
	}
	if ds.ProfilingSeconds <= 0 {
		t.Fatal("profiling cost not tracked")
	}
	for i, obs := range ds.Observations {
		if obs.Cond != conds[i] {
			t.Fatalf("observation %d condition mismatch", i)
		}
		if obs.MeanRT <= 0 {
			t.Fatalf("observation %d: mean RT %v", i, obs.MeanRT)
		}
	}
}

func TestProfileDeterministicAcrossWorkerCounts(t *testing.T) {
	conds := SmallGrid().Sample(4, 1)
	p1 := jacobiProfiler()
	p1.QueriesPerRun = 200
	p1.Workers = 1
	p4 := jacobiProfiler()
	p4.QueriesPerRun = 200
	p4.Workers = 4
	a := p1.Profile(conds)
	b := p4.Profile(conds)
	for i := range a.Observations {
		if a.Observations[i].MeanRT != b.Observations[i].MeanRT {
			t.Fatalf("observation %d differs across worker counts", i)
		}
	}
}

func TestHigherUtilizationRaisesRT(t *testing.T) {
	p := jacobiProfiler()
	lo, _ := p.RunCondition(Condition{Utilization: 0.3, ArrivalKind: dist.KindExponential, Timeout: -1, RefillTime: 200, BudgetPct: 0}, 5)
	hi, _ := p.RunCondition(Condition{Utilization: 0.95, ArrivalKind: dist.KindExponential, Timeout: -1, RefillTime: 200, BudgetPct: 0}, 5)
	if hi.MeanRT <= lo.MeanRT {
		t.Fatalf("RT at 95%% util (%v) <= RT at 30%% (%v)", hi.MeanRT, lo.MeanRT)
	}
}

func TestPaperGridMatchesSection3(t *testing.T) {
	g := PaperGrid()
	if len(g.Utilizations) != 4 || len(g.Timeouts) != 7 || len(g.RefillTimes) != 5 || len(g.BudgetPcts) != 7 {
		t.Fatalf("paper grid dimensions wrong: %+v", g)
	}
	want := 4 * 2 * 7 * 5 * 7
	if got := len(g.Conditions()); got != want {
		t.Fatalf("cross product %d, want %d", got, want)
	}
}

func TestDenseGridAddsUtilizations(t *testing.T) {
	g := DenseGrid()
	found60, found85 := false, false
	for _, u := range g.Utilizations {
		if u == 0.60 {
			found60 = true
		}
		if u == 0.85 {
			found85 = true
		}
	}
	if !found60 || !found85 {
		t.Fatalf("dense grid missing Section 3.3 centroids: %v", g.Utilizations)
	}
}

func TestGridSample(t *testing.T) {
	g := PaperGrid()
	s := g.Sample(100, 3)
	if len(s) != 100 {
		t.Fatalf("sampled %d, want 100", len(s))
	}
	seen := map[Condition]bool{}
	for _, c := range s {
		if seen[c] {
			t.Fatal("sample contains duplicates")
		}
		seen[c] = true
	}
	// Sampling more than available returns everything.
	if got := len(SmallGrid().Sample(10000, 1)); got != len(SmallGrid().Conditions()) {
		t.Fatalf("oversample returned %d", got)
	}
	// Deterministic.
	s2 := g.Sample(100, 3)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestSplit(t *testing.T) {
	conds := PaperGrid().Sample(200, 9)
	train, test := Split(conds, 0.8, 11)
	if len(train) != 160 || len(test) != 40 {
		t.Fatalf("split sizes %d/%d, want 160/40", len(train), len(test))
	}
	seen := map[Condition]bool{}
	for _, c := range train {
		seen[c] = true
	}
	for _, c := range test {
		if seen[c] {
			t.Fatal("train and test overlap")
		}
	}
}

func TestSplitObservations(t *testing.T) {
	obs := make([]Observation, 10)
	for i := range obs {
		obs[i].MeanRT = float64(i)
	}
	train, test := SplitObservations(obs, 0.7, 2)
	if len(train) != 7 || len(test) != 3 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
}

func TestConditionPolicy(t *testing.T) {
	c := Condition{Timeout: 60, RefillTime: 500, BudgetPct: 0.2, Speedup: 3}
	p := c.Policy()
	if p.BudgetSeconds != 100 {
		t.Fatalf("budget %v, want 100 sprint-seconds", p.BudgetSeconds)
	}
	if p.Speedup != 3 {
		t.Fatalf("speedup %v, want 3", p.Speedup)
	}
	// Zero speedup means "mechanism max".
	if got := (Condition{Timeout: 60, RefillTime: 500, BudgetPct: 0.2}).Policy().Speedup; got < 1e6 {
		t.Fatalf("sentinel speedup %v too small", got)
	}
}
