package profiler

import (
	"mdsprint/internal/dist"
)

// Grid is a cluster-sampling grid over workload conditions and sprinting
// policies. Its cross product yields the profiled Conditions.
type Grid struct {
	Utilizations []float64
	ArrivalKinds []dist.Kind
	Timeouts     []float64
	RefillTimes  []float64
	BudgetPcts   []float64
}

// PaperGrid returns the cluster-sampling centroids listed in Section 3:
// arrival rates 30/50/75/95% of service rate, exponential and Pareto
// arrivals, timeouts 50-160 s, refill times 50-1000 s, and budgets
// 14-80% of sustained capacity per refill window.
func PaperGrid() Grid {
	return Grid{
		Utilizations: []float64{0.30, 0.50, 0.75, 0.95},
		ArrivalKinds: []dist.Kind{dist.KindExponential, dist.KindPareto},
		Timeouts:     []float64{50, 60, 70, 80, 120, 130, 160},
		RefillTimes:  []float64{50, 200, 500, 800, 1000},
		BudgetPcts:   []float64{0.14, 0.16, 0.18, 0.20, 0.40, 0.60, 0.80},
	}
}

// DenseGrid extends PaperGrid with the extra centroids Section 3.3 adds to
// fix core-scaling bias: 60% and 85% arrival rates.
func DenseGrid() Grid {
	g := PaperGrid()
	g.Utilizations = []float64{0.30, 0.50, 0.60, 0.75, 0.85, 0.95}
	return g
}

// SmallGrid is a reduced grid for tests and quick runs.
func SmallGrid() Grid {
	return Grid{
		Utilizations: []float64{0.30, 0.75},
		ArrivalKinds: []dist.Kind{dist.KindExponential},
		Timeouts:     []float64{50, 120},
		RefillTimes:  []float64{200, 800},
		BudgetPcts:   []float64{0.20, 0.60},
	}
}

// Conditions expands the grid's cross product in deterministic order.
func (g Grid) Conditions() []Condition {
	out := make([]Condition, 0,
		len(g.Utilizations)*len(g.ArrivalKinds)*len(g.Timeouts)*len(g.RefillTimes)*len(g.BudgetPcts))
	for _, u := range g.Utilizations {
		for _, k := range g.ArrivalKinds {
			for _, to := range g.Timeouts {
				for _, rt := range g.RefillTimes {
					for _, b := range g.BudgetPcts {
						out = append(out, Condition{
							Utilization: u,
							ArrivalKind: k,
							Timeout:     to,
							RefillTime:  rt,
							BudgetPct:   b,
						})
					}
				}
			}
		}
	}
	return out
}

// Sample draws n conditions from the grid's cross product without
// replacement (all of them if n exceeds the total), deterministically for
// a given seed. Profiling every centroid is expensive; the paper samples
// 5 arrival rates, 8 timeouts and 9 budgets per workload.
func (g Grid) Sample(n int, seed uint64) []Condition {
	all := g.Conditions()
	if n >= len(all) {
		return all
	}
	r := dist.NewRNG(seed)
	perm := r.Perm(len(all))
	out := make([]Condition, n)
	for i := 0; i < n; i++ {
		out[i] = all[perm[i]]
	}
	return out
}

// Split partitions conditions into train and test sets with the given
// train fraction (the paper uses 80/20 and 90/10), deterministically.
func Split(conds []Condition, trainFrac float64, seed uint64) (train, test []Condition) {
	r := dist.NewRNG(seed)
	perm := r.Perm(len(conds))
	nTrain := int(float64(len(conds)) * trainFrac)
	train = make([]Condition, 0, nTrain)
	test = make([]Condition, 0, len(conds)-nTrain)
	for i, idx := range perm {
		if i < nTrain {
			train = append(train, conds[idx])
		} else {
			test = append(test, conds[idx])
		}
	}
	return train, test
}

// SplitObservations partitions a dataset's observations the same way.
func SplitObservations(obs []Observation, trainFrac float64, seed uint64) (train, test []Observation) {
	r := dist.NewRNG(seed)
	perm := r.Perm(len(obs))
	nTrain := int(float64(len(obs)) * trainFrac)
	train = make([]Observation, 0, nTrain)
	test = make([]Observation, 0, len(obs)-nTrain)
	for i, idx := range perm {
		if i < nTrain {
			train = append(train, obs[idx])
		} else {
			test = append(test, obs[idx])
		}
	}
	return train, test
}
