// Package profiler implements the paper's workload profiling stage
// (Section 2.1): it replays a representative query mix against the
// (simulated) server many times, varying arrival patterns and sprinting
// policies over the cluster-sampling grid of Section 3, and records the
// three profiler outputs:
//
//  1. service rate (mu) — inverse mean processing time of non-sprinted
//     query executions;
//  2. marginal sprint rate (mu_m) — inverse mean processing time when
//     whole executions are sprinted (timeouts trigger before dispatch);
//  3. observed response times per tested condition.
//
// The resulting Dataset is the only information the models ever see about
// the server: the testbed's runtime-effect parameters stay hidden, exactly
// as real hardware hides them from the paper's profiler.
package profiler

import (
	"fmt"
	"runtime"
	"sync"

	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/obs"
	"mdsprint/internal/sprint"
	"mdsprint/internal/stats"
	"mdsprint/internal/testbed"
	"mdsprint/internal/workload"
)

// Condition is one profiled setting: workload conditions (arrival process)
// plus a sprinting policy.
type Condition struct {
	// Utilization is the arrival rate as a fraction of the sustained
	// service rate (the paper's "query arrival rate" axis).
	Utilization float64 `json:"utilization"`
	// ArrivalKind selects the interarrival distribution.
	ArrivalKind dist.Kind `json:"arrival_kind"`
	// Timeout, RefillTime in seconds; BudgetPct is the budget as a
	// fraction of sustained capacity over one refill window.
	Timeout    float64 `json:"timeout"`
	RefillTime float64 `json:"refill_time"`
	BudgetPct  float64 `json:"budget_pct"`
	// Speedup commands a sprint rate below the mechanism's maximum;
	// zero uses the mechanism's full capability.
	Speedup float64 `json:"speedup,omitempty"`
}

// Policy converts the condition's policy fields into a sprint.Policy.
func (c Condition) Policy() sprint.Policy {
	return sprint.Policy{
		Timeout:       c.Timeout,
		BudgetSeconds: sprint.BudgetFromPercent(c.BudgetPct, c.RefillTime),
		RefillTime:    c.RefillTime,
		Speedup:       speedupOrMax(c.Speedup),
	}
}

// speedupOrMax maps the "use mechanism maximum" sentinel to a value that
// never clips the mechanism.
func speedupOrMax(s float64) float64 {
	if s <= 0 {
		return 1e9
	}
	return s
}

func (c Condition) String() string {
	return fmt.Sprintf("util=%.0f%% %s timeout=%.0fs refill=%.0fs budget=%.0f%%",
		c.Utilization*100, c.ArrivalKind, c.Timeout, c.RefillTime, c.BudgetPct*100)
}

// Observation is the measured outcome of one condition.
type Observation struct {
	Cond Condition `json:"condition"`
	// ArrivalRate is the actual query arrival rate of the run in
	// queries/second — a workload condition the model is given
	// (Figure 2's "arrival rate" input).
	ArrivalRate float64 `json:"arrival_rate"`
	// MeanRT is the observed mean response time, seconds.
	MeanRT float64 `json:"mean_rt"`
	// P95RT and P99RT capture the observed tail.
	P95RT float64 `json:"p95_rt"`
	P99RT float64 `json:"p99_rt"`
	// SprintedFrac is the fraction of measured queries that sprinted.
	SprintedFrac float64 `json:"sprinted_frac"`
}

// Dataset is a profiled workload on one mechanism: the paper's training
// input for one (workload, platform) pair.
type Dataset struct {
	MixName  string `json:"mix"`
	MechName string `json:"mechanism"`
	// ServiceRate is mu in queries/second.
	ServiceRate float64 `json:"service_rate"`
	// MarginalRate is mu_m in queries/second.
	MarginalRate float64 `json:"marginal_rate"`
	// ServiceSamples are measured non-sprinted processing times,
	// resampled by the queue simulator.
	ServiceSamples []float64 `json:"service_samples"`
	// Observations hold per-condition response-time measurements.
	Observations []Observation `json:"observations"`
	// ProfilingSeconds is the simulated wall-clock spent profiling;
	// Section 4.4's cost analysis charges this against revenue.
	ProfilingSeconds float64 `json:"profiling_seconds"`
}

// MarginalSpeedup returns mu_m / mu, the measured whole-execution speedup.
func (d *Dataset) MarginalSpeedup() float64 { return d.MarginalRate / d.ServiceRate }

// Profiler drives testbed runs for one mix/mechanism pair.
type Profiler struct {
	Mix       workload.Mix
	Mechanism mech.Mechanism
	// QueriesPerRun and Warmup size each replay (defaults 1500/150).
	QueriesPerRun int
	Warmup        int
	// Replications averages each condition over this many seeds
	// (default 1).
	Replications int
	// Seed derives all run seeds.
	Seed uint64
	// Workers bounds profiling concurrency (default NumCPU).
	Workers int
	// Metrics receives progress instrumentation (conditions planned and
	// profiled, per-condition simulated seconds, measured rates); nil
	// records into obs.Default() so sprintctl's -debug-addr sees live
	// progress without extra plumbing.
	Metrics *obs.Registry
}

// progressMetrics resolves the profiler's instrumentation handles.
type progressMetrics struct {
	planned     *obs.Gauge
	done        *obs.Counter
	runs        *obs.Counter
	condSeconds *obs.Histogram
	serviceRate *obs.Gauge
	marginal    *obs.Gauge
}

func (p *Profiler) metrics() progressMetrics {
	reg := obs.Or(p.Metrics)
	return progressMetrics{
		planned:     reg.Gauge("mdsprint_profiler_conditions_planned", "conditions in the current profiling grid"),
		done:        reg.Counter("mdsprint_profiler_conditions_total", "conditions profiled"),
		runs:        reg.Counter("mdsprint_profiler_runs_total", "testbed replays executed"),
		condSeconds: reg.Histogram("mdsprint_profiler_condition_sim_seconds", "simulated seconds per profiled condition", 0),
		serviceRate: reg.Gauge("mdsprint_profiler_service_rate_qps", "measured service rate mu of the last profile"),
		marginal:    reg.Gauge("mdsprint_profiler_marginal_rate_qps", "measured marginal sprint rate mu_m of the last profile"),
	}
}

func (p *Profiler) defaults() Profiler {
	out := *p
	if out.QueriesPerRun == 0 {
		out.QueriesPerRun = 1500
	}
	if out.Warmup == 0 {
		out.Warmup = out.QueriesPerRun / 10
	}
	if out.Replications == 0 {
		out.Replications = 1
	}
	if out.Workers == 0 {
		out.Workers = runtime.NumCPU()
	}
	return out
}

// sustainedRate returns the mix's sustained service rate under the
// profiler's mechanism, in queries/second (nominal, pre-measurement).
func (p *Profiler) sustainedRate() float64 {
	total := 0.0
	for _, comp := range p.Mix.Components {
		total += comp.Weight / sprint.QPH(p.Mechanism.SustainedQPH(comp.Class))
	}
	return 1 / (total * p.Mix.Interference)
}

// MeasureServiceRate runs the mix without sprinting and returns the
// measured service rate (mu, queries/second) plus the raw processing-time
// samples. This is profiler output #1.
func (p *Profiler) MeasureServiceRate() (float64, []float64, float64) {
	pp := p.defaults()
	res := testbed.MustRun(testbed.Config{
		Mix:         pp.Mix,
		Mechanism:   pp.Mechanism,
		Policy:      sprint.Policy{Timeout: -1},
		ArrivalRate: 0.5 * pp.sustainedRate(),
		NumQueries:  pp.QueriesPerRun,
		Warmup:      pp.Warmup,
		Seed:        pp.Seed ^ 0xa5a5a5a5,
	})
	samples := res.ProcessingTimes()
	return 1 / stats.Mean(samples), samples, res.Duration
}

// MeasureMarginalRate sprints every execution in full (timeout zero,
// effectively unlimited budget) and returns the marginal sprint rate
// (mu_m, queries/second). This is profiler output #2.
func (p *Profiler) MeasureMarginalRate() (float64, float64) {
	pp := p.defaults()
	res := testbed.MustRun(testbed.Config{
		Mix:       pp.Mix,
		Mechanism: pp.Mechanism,
		Policy: sprint.Policy{
			Timeout: 0, BudgetSeconds: 1e15, RefillTime: 1, Speedup: 1e9,
		},
		ArrivalRate: 0.3 * pp.sustainedRate(),
		NumQueries:  pp.QueriesPerRun,
		Warmup:      pp.Warmup,
		Seed:        pp.Seed ^ 0x5a5a5a5a,
	})
	// Only whole-execution sprints count toward mu_m.
	var times []float64
	for i := range res.Queries {
		q := &res.Queries[i]
		if q.Sprinted && stats.ApproxZero(q.SprintTau, 1e-12) {
			times = append(times, q.ProcessingTime())
		}
	}
	if len(times) == 0 {
		// Degenerate mechanism (speedup 1): fall back to all queries.
		times = res.ProcessingTimes()
	}
	return 1 / stats.Mean(times), res.Duration
}

// RunCondition replays the mix once under cond and returns the
// observation plus the simulated duration.
func (p *Profiler) RunCondition(cond Condition, seed uint64) (Observation, float64) {
	pp := p.defaults()
	rts := make([]float64, 0, pp.QueriesPerRun*pp.Replications)
	sprinted := 0
	total := 0
	dur := 0.0
	m := p.metrics()
	for rep := 0; rep < pp.Replications; rep++ {
		res := testbed.MustRun(testbed.Config{
			Mix:         pp.Mix,
			Mechanism:   pp.Mechanism,
			Policy:      cond.Policy(),
			ArrivalKind: cond.ArrivalKind,
			ArrivalRate: cond.Utilization * pp.sustainedRate(),
			NumQueries:  pp.QueriesPerRun,
			Warmup:      pp.Warmup,
			Seed:        seed + uint64(rep)*0x9e3779b9,
		})
		m.runs.Inc()
		rts = append(rts, res.ResponseTimes()...)
		sprinted += res.SprintedCount
		total += len(res.Queries)
		dur += res.Duration
	}
	sum := stats.Summarize(rts)
	return Observation{
		Cond:         cond,
		ArrivalRate:  cond.Utilization * pp.sustainedRate(),
		MeanRT:       sum.Mean,
		P95RT:        sum.P95,
		P99RT:        sum.P99,
		SprintedFrac: float64(sprinted) / float64(total),
	}, dur
}

// Profile measures mu and mu_m, then replays every condition, in parallel
// across Workers. Results are deterministic for a fixed Seed regardless of
// worker count.
func (p *Profiler) Profile(conds []Condition) *Dataset {
	pp := p.defaults()
	m := pp.metrics()
	m.planned.Set(float64(len(conds)))
	mu, samples, d1 := pp.MeasureServiceRate()
	mum, d2 := pp.MeasureMarginalRate()
	m.serviceRate.Set(mu)
	m.marginal.Set(mum)
	ds := &Dataset{
		MixName:          pp.Mix.Name,
		MechName:         pp.Mechanism.Name(),
		ServiceRate:      mu,
		MarginalRate:     mum,
		ServiceSamples:   samples,
		Observations:     make([]Observation, len(conds)),
		ProfilingSeconds: d1 + d2,
	}
	durations := make([]float64, len(conds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, pp.Workers)
	for i, cond := range conds {
		wg.Add(1)
		//lint:ignore ctxleak bounded fork-join: every worker finishes and is joined before Profile returns
		go func(i int, cond Condition) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			obs, dur := pp.RunCondition(cond, pp.Seed+uint64(i)*0x632be59bd9b4e019)
			ds.Observations[i] = obs
			durations[i] = dur
			m.done.Inc()
			m.condSeconds.Observe(dur)
		}(i, cond)
	}
	wg.Wait()
	for _, d := range durations {
		ds.ProfilingSeconds += d
	}
	return ds
}
