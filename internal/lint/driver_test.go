package lint

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestRunModuleParallelDeterministic is the bit-identical-output
// contract: the same module analyzed at any job count yields the same
// RunResult, down to the rendered SARIF bytes.
func TestRunModuleParallelDeterministic(t *testing.T) {
	dir := filepath.Join("testdata", "src", "hotalloc")
	var base *RunResult
	var baseSARIF []byte
	for _, jobs := range []int{1, 2, 8, 0} {
		res, err := RunModule(dir, RunOpts{Jobs: jobs})
		if err != nil {
			t.Fatalf("RunModule(jobs=%d): %v", jobs, err)
		}
		sarif, err := SARIF(res.Diagnostics)
		if err != nil {
			t.Fatalf("SARIF(jobs=%d): %v", jobs, err)
		}
		if base == nil {
			base, baseSARIF = res, sarif
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("RunResult at jobs=%d differs from jobs=1:\n%+v\nvs\n%+v", jobs, res, base)
		}
		if !bytes.Equal(sarif, baseSARIF) {
			t.Errorf("SARIF bytes at jobs=%d differ from jobs=1", jobs)
		}
	}
	if len(base.Diagnostics) == 0 {
		t.Fatal("hotalloc fixture produced no diagnostics")
	}
	if want := []string{"fixture.Run"}; !reflect.DeepEqual(base.HotPathRoots, want) {
		t.Errorf("HotPathRoots = %v, want %v", base.HotPathRoots, want)
	}
}

// TestRunModuleStaleOnlyOnFullSuite: a restricted run cannot tell a
// stale suppression from one whose analyzer did not run, so staleness
// must only be reported by the full suite.
func TestRunModuleStaleOnlyOnFullSuite(t *testing.T) {
	dir := filepath.Join("testdata", "src", "stalesuppress")
	full, err := RunModule(dir, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var stale int
	for _, d := range full.Diagnostics {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "stale suppression") {
			stale++
		}
	}
	if stale != 1 {
		t.Errorf("full suite reported %d stale suppressions, want 1", stale)
	}

	restricted, err := RunModule(dir, RunOpts{Only: []string{"floateq"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range restricted.Diagnostics {
		if strings.Contains(d.Message, "stale suppression") {
			t.Errorf("restricted run reported staleness: %s", d)
		}
	}
	// The inventory itself is reported either way: debt tracking does
	// not depend on which analyzers ran.
	if len(restricted.Suppressions) != len(full.Suppressions) {
		t.Errorf("suppression inventory differs: restricted %d, full %d",
			len(restricted.Suppressions), len(full.Suppressions))
	}
}

// TestRunModuleUnknownAnalyzer pins the error path.
func TestRunModuleUnknownAnalyzer(t *testing.T) {
	if _, err := RunModule(filepath.Join("testdata", "src", "clean"), RunOpts{Only: []string{"nope"}}); err == nil {
		t.Fatal("unknown analyzer did not error")
	}
}

// TestDetflowAllowBarrier: a DetflowAllow glob turns a node into a
// barrier — its own sources are not reported and nothing behind it is
// traversed — mirroring how the real module exempts injected obs.Clock
// implementations.
func TestDetflowAllowBarrier(t *testing.T) {
	dir := filepath.Join("testdata", "src", "detflow")
	cfg := fixtureConfig()
	cfg.DetflowAllow = []string{"impure.Clock"}
	diags, err := Run(dir, cfg, []string{"detflow"})
	if err != nil {
		t.Fatal(err)
	}
	var sawStamp bool
	for _, d := range diags {
		if strings.Contains(d.Message, "impure.Clock") {
			t.Errorf("allowed barrier node still reported: %s", d)
		}
		if strings.Contains(d.Message, "impure.Stamp") {
			sawStamp = true
		}
	}
	if !sawStamp {
		t.Error("barrier over impure.Clock must not silence unrelated sources (impure.Stamp)")
	}
}

// TestRunModuleWallClockBudget is the perf guard for the parallel
// driver: a full-suite run over the whole real module — load,
// type-check, call graph, both interprocedural closures, every analyzer
// — must land well inside an interactive budget. The bound is loose
// (CI machines vary) but catches an accidental quadratic blowup in the
// graph or fact propagation.
func TestRunModuleWallClockBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	start := time.Now()
	res, err := RunModule(filepath.Join("..", ".."), RunOpts{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("full-module lint: %d diagnostics, %d suppressions in %v",
		len(res.Diagnostics), len(res.Suppressions), elapsed)
	const budget = 60 * time.Second
	if elapsed > budget {
		t.Errorf("full-module lint took %v, budget %v", elapsed, budget)
	}
}
