package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolEscape guards the allocation-free simulator hot path: pooled
// objects (slab-resident queries and event slots) are recycled the moment
// they depart or fire, so a closure that captures one — rather than its
// stable pool index — holds a reference whose meaning silently changes
// when the slot is re-tenanted. That is exactly the bug class the pooled
// engine's generation-checked handles exist to prevent, and it is also a
// liveness leak: a captured pointer pins the slab's backing array in the
// closure's environment. Inside packages that declare a configured pooled
// type, any function literal whose free variables include a value of that
// type (or a pointer to it) is flagged; pass the int32 pool index into
// the closure instead, or carry the engine/runner and resolve the index
// at call time.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "forbid closures capturing pooled slab objects; capture the pool index instead",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) {
	pooled := pooledTypesFor(pass)
	if len(pooled) == 0 {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			reported := map[*types.Var]bool{}
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				id, ok := inner.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok || v.IsField() || reported[v] {
					return true
				}
				// Free variable: declared outside the literal's extent.
				if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
					return true
				}
				// Package-level variables are not pool slots.
				if v.Parent() == pass.Pkg.Types.Scope() {
					return true
				}
				name, isPooled := pooledTypeName(v.Type(), pooled)
				if !isPooled {
					return true
				}
				reported[v] = true
				pass.Reportf(id.Pos(), "closure captures pooled %s %q; the slot is recycled after release and the reference goes stale — capture the pool index (int32) instead", name, v.Name())
				return true
			})
			return true
		})
	}
}

// pooledTypesFor resolves the configured pooled type names declared by
// this package.
func pooledTypesFor(pass *Pass) map[*types.Named]string {
	pooled := map[*types.Named]string{}
	for _, entry := range pass.Cfg.PooledTypes {
		pkgRel, typeName := ".", entry
		if i := strings.LastIndex(entry, "."); i >= 0 {
			pkgRel, typeName = entry[:i], entry[i+1:]
		}
		if !matchesPkg(pass.Pkg, pkgRel) {
			continue
		}
		obj, ok := pass.Pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			continue
		}
		if named, ok := obj.Type().(*types.Named); ok {
			pooled[named] = typeName
		}
	}
	return pooled
}

// pooledTypeName reports whether t is a configured pooled type or a
// pointer to one, returning its display name.
func pooledTypeName(t types.Type, pooled map[*types.Named]string) (string, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if name, ok := pooled[named]; ok {
			return name, true
		}
	}
	return "", false
}
