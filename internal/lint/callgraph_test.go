package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtureModule loads one testdata module and returns it with its
// call graph built.
func loadFixtureModule(t *testing.T, name string) *Module {
	t.Helper()
	pkgs, err := LoadModule(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", name, err)
	}
	return &Module{Pkgs: pkgs}
}

// nodeByName resolves a node by its display name.
func nodeByName(t *testing.T, g *CallGraph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	var names []string
	for _, n := range g.Nodes {
		names = append(names, n.Name)
	}
	t.Fatalf("no node %q; graph has: %s", name, strings.Join(names, ", "))
	return nil
}

// edgeTo finds the first out-edge of n landing on callee.
func edgeToNode(n *Node, callee string) *Edge {
	for i := range n.Out {
		if n.Out[i].Callee.Name == callee {
			return &n.Out[i]
		}
	}
	return nil
}

// TestCallGraphEdgeKinds pins every edge derivation the hotalloc fixture
// was built to exercise: static calls, interface dispatch, closure
// creation, method values, dynamic calls and cross-package edges.
func TestCallGraphEdgeKinds(t *testing.T) {
	g := loadFixtureModule(t, "hotalloc").Graph()
	run := nodeByName(t, g, "fixture.Run")

	cases := []struct {
		caller, callee string
		kind           EdgeKind
		via            string
	}{
		// Direct static call, same package.
		{"fixture.Run", "fixture.(*State).grow", EdgeStatic, ""},
		// Direct static call across packages.
		{"fixture.Run", "sub.Spill", EdgeStatic, ""},
		{"sub.Spill", "sub.keep", EdgeStatic, ""},
		// Interface dispatch smears over every module implementation.
		{"fixture.Run", "fixture.(*Boxed).Consume", EdgeInterface, "fixture.Sink.Consume"},
		{"fixture.Run", "fixture.(*Buffered).Consume", EdgeInterface, "fixture.Sink.Consume"},
		// The deferred literal is a closure edge named after its parent.
		{"fixture.Run", "fixture.Run$1", EdgeClosure, ""},
		// hook(2) is a dynamic call; observe is the one value-referenced
		// function with a matching signature.
		{"fixture.Run", "fixture.(*State).observe", EdgeDynamic, ""},
		// The method value in Hooks is a function-value reference.
		{"fixture.Hooks", "fixture.(*State).observe", EdgeFuncValue, ""},
		// Mutual recursion: both directions exist.
		{"fixture.(*State).grow", "fixture.(*State).shrink", EdgeStatic, ""},
		{"fixture.(*State).shrink", "fixture.(*State).grow", EdgeStatic, ""},
	}
	for _, c := range cases {
		e := edgeToNode(nodeByName(t, g, c.caller), c.callee)
		if e == nil {
			t.Errorf("missing edge %s -> %s", c.caller, c.callee)
			continue
		}
		if e.Kind != c.kind {
			t.Errorf("edge %s -> %s: kind %v, want %v", c.caller, c.callee, e.Kind, c.kind)
		}
		if e.Via != c.via {
			t.Errorf("edge %s -> %s: via %q, want %q", c.caller, c.callee, e.Via, c.via)
		}
	}

	// The immediately-invoked pattern must not be smeared: Run's only
	// dynamic out-edge is the hook call to observe.
	var dynamic int
	for i := range run.Out {
		if run.Out[i].Kind == EdgeDynamic {
			dynamic++
		}
	}
	if dynamic != 1 {
		t.Errorf("fixture.Run has %d dynamic edges, want exactly 1 (hook -> observe)", dynamic)
	}

	if !run.HotPath {
		t.Error("fixture.Run lost its //sprint:hotpath annotation")
	}
	if want := "replay loop must stay allocation-free in steady state"; run.HotPathReason != want {
		t.Errorf("HotPathReason = %q, want %q", run.HotPathReason, want)
	}
}

// TestReachChains covers BFS closure, chain rendering, recursion
// termination and the allow barrier.
func TestReachChains(t *testing.T) {
	g := loadFixtureModule(t, "hotalloc").Graph()
	run := nodeByName(t, g, "fixture.Run")

	reached := g.Reach([]*Node{run}, nil)
	if reached[run] == nil || reached[run].From != nil {
		t.Fatal("root must be reached with a nil parent")
	}
	if got := reached[run].Chain(); got != "fixture.Run" {
		t.Errorf("root chain = %q", got)
	}

	boxed := nodeByName(t, g, "fixture.(*Boxed).Consume")
	rv := reached[boxed]
	if rv == nil {
		t.Fatal("interface dispatch target not reached")
	}
	if got, want := rv.Chain(), "fixture.Run → fixture.(*Boxed).Consume [via fixture.Sink.Consume]"; got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
	if rv.Root() != run {
		t.Errorf("Root() = %s, want fixture.Run", rv.Root().Name)
	}

	// Mutual recursion terminates and still reaches both partners.
	keep := nodeByName(t, g, "sub.keep")
	if reached[nodeByName(t, g, "fixture.(*State).shrink")] == nil {
		t.Error("recursion partner not reached")
	}
	if rv := reached[keep]; rv == nil {
		t.Error("cross-package transitive callee not reached")
	} else if got, want := rv.Chain(), "fixture.Run → sub.Spill → sub.keep"; got != want {
		t.Errorf("cross-package chain = %q, want %q", got, want)
	}

	// Hooks is not reachable from Run: a value reference in an unreached
	// function must not leak into the closure.
	if reached[nodeByName(t, g, "fixture.Hooks")] != nil {
		t.Error("fixture.Hooks reached from fixture.Run; it has no in-edge from the root")
	}

	// Barriers cut traversal: with sub.Spill disallowed, neither it nor
	// its callee is reached.
	barred := g.Reach([]*Node{run}, func(n *Node) bool { return n.Name != "sub.Spill" })
	if barred[nodeByName(t, g, "sub.Spill")] != nil || barred[keep] != nil {
		t.Error("allow barrier did not stop traversal through sub.Spill")
	}
	if barred[boxed] == nil {
		t.Error("allow barrier over sub.Spill must not affect unrelated nodes")
	}
}

// TestCallGraphDeterministic pins that two independent loads of the same
// fixture produce identical node and edge orderings — the property the
// parallel driver's bit-identical output rests on.
func TestCallGraphDeterministic(t *testing.T) {
	render := func() string {
		g := loadFixtureModule(t, "hotalloc").Graph()
		var sb strings.Builder
		for _, n := range g.Nodes {
			sb.WriteString(n.Name)
			for i := range n.Out {
				e := &n.Out[i]
				sb.WriteString(" ")
				sb.WriteString(e.Callee.Name)
				sb.WriteString("/")
				sb.WriteString(e.Kind.String())
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("call graph rendering differs between loads:\n%s\nvs\n%s", first, got)
		}
	}
}

// TestEdgeKindStrings keeps the diagnostic vocabulary stable.
func TestEdgeKindStrings(t *testing.T) {
	want := map[EdgeKind]string{
		EdgeStatic:    "call",
		EdgeInterface: "interface dispatch",
		EdgeClosure:   "closure",
		EdgeFuncValue: "function value",
		EdgeDynamic:   "dynamic call",
		EdgeKind(99):  "edge",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EdgeKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
