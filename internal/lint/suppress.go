package lint

import (
	"fmt"
	"sort"
	"strings"
)

// A suppression covers the line it is written on and the line directly
// below it, so both trailing and standalone placements work:
//
//	x := a == b //lint:ignore floateq exact sentinel comparison
//
//	//lint:ignore errdrop best-effort write to a dying client
//	_ = w.Flush()
//
// Every suppression is debt: the inventory is tracked per run (see
// baseline.go) and a suppression that matches no diagnostic is itself
// reported as stale when the full suite runs.

const ignorePrefix = "lint:ignore"

// ParseIgnoreDirective parses the text of one comment (with or without
// the leading "//") as a //lint:ignore directive. It returns ok=false
// when the comment is not an ignore directive at all, and a non-nil err
// when it is one but is malformed (no analyzer list or no reason).
// Exposed for FuzzSuppressionParse: malformed input must be reported,
// never panic.
func ParseIgnoreDirective(text string) (names []string, reason string, ok bool, err error) {
	text = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "//"))
	rest, found := strings.CutPrefix(text, ignorePrefix)
	if !found {
		return nil, "", false, nil
	}
	// "lint:ignoreX" is not the directive: the prefix must be the whole
	// word (end of comment or whitespace before the analyzer list).
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false, nil
	}
	rest = strings.TrimSpace(rest)
	nameList, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(reason)
	if nameList == "" || reason == "" {
		return nil, "", true, fmt.Errorf("malformed //lint:ignore: want \"//lint:ignore <analyzer>[,<analyzer>] <reason>\"")
	}
	for _, name := range strings.Split(nameList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, "", true, fmt.Errorf("malformed //lint:ignore: empty analyzer name in %q", nameList)
		}
		names = append(names, name)
	}
	return names, reason, true, nil
}

// suppEntry is one well-formed //lint:ignore comment.
type suppEntry struct {
	file   string
	line   int
	col    int
	names  []string
	reason string
	// used records which of names actually suppressed a diagnostic.
	used map[string]bool
}

// suppressions indexes a package's //lint:ignore comments.
type suppressions struct {
	entries []*suppEntry
	// byLine maps file -> line -> entries written on that line.
	byLine    map[string]map[int][]*suppEntry
	malformed []Diagnostic
}

// collectSuppressions scans every comment in the package.
func collectSuppressions(pkg *Package) *suppressions {
	sup := &suppressions{byLine: map[string]map[int][]*suppEntry{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, isIgnore, err := ParseIgnoreDirective(c.Text)
				if !isIgnore {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				file := pkg.relFile(pos.Filename)
				if err != nil {
					sup.malformed = append(sup.malformed, Diagnostic{
						Analyzer: "lint",
						File:     file,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  err.Error(),
					})
					continue
				}
				e := &suppEntry{
					file:   file,
					line:   pos.Line,
					col:    pos.Column,
					names:  names,
					reason: reason,
					used:   map[string]bool{},
				}
				sup.entries = append(sup.entries, e)
				lines := sup.byLine[file]
				if lines == nil {
					lines = map[int][]*suppEntry{}
					sup.byLine[file] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], e)
			}
		}
	}
	return sup
}

// covers reports whether d is suppressed by an ignore comment on its own
// line or on the line above, marking the matching entry as used.
func (s *suppressions) covers(d Diagnostic) bool {
	lines, ok := s.byLine[d.File]
	if !ok {
		return false
	}
	covered := false
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, e := range lines[line] {
			for _, name := range e.names {
				if name == d.Analyzer || name == "*" {
					e.used[name] = true
					covered = true
				}
			}
		}
	}
	return covered
}

// stale reports, after every analyzer has run, the suppressions (or
// individual analyzer mentions) that matched no diagnostic. known names
// gate the "unknown analyzer" form; staleness itself is only meaningful
// when the full suite ran, which the driver enforces.
func (s *suppressions) stale(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range s.entries {
		for _, name := range e.names {
			if name != "*" && !known[name] {
				out = append(out, Diagnostic{
					Analyzer: "lint",
					File:     e.file,
					Line:     e.line,
					Col:      e.col,
					Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", name),
				})
				continue
			}
			if !e.used[name] {
				out = append(out, Diagnostic{
					Analyzer: "lint",
					File:     e.file,
					Line:     e.line,
					Col:      e.col,
					Message:  fmt.Sprintf("stale suppression: no %s diagnostic on this line or the line below; delete the //lint:ignore (or this analyzer from its list)", name),
				})
			}
		}
	}
	return out
}

// records converts the package's suppression inventory into ledger
// records (see baseline.go), sorted by position.
func (s *suppressions) records() []SuppressionRecord {
	out := make([]SuppressionRecord, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, SuppressionRecord{
			File:      e.file,
			Line:      e.line,
			Analyzers: append([]string(nil), e.names...),
			Reason:    e.reason,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
