package lint

import (
	"strings"
)

// suppressions indexes a package's //lint:ignore comments. A suppression
// covers the line it is written on and the line directly below it, so
// both trailing and standalone placements work:
//
//	x := a == b //lint:ignore floateq exact sentinel comparison
//
//	//lint:ignore errdrop best-effort write to a dying client
//	_ = w.Flush()
type suppressions struct {
	// byLine maps file -> line -> analyzer names suppressed there.
	byLine    map[string]map[int][]string
	malformed []Diagnostic
}

const ignorePrefix = "lint:ignore"

// collectSuppressions scans every comment in the package.
func collectSuppressions(pkg *Package) *suppressions {
	sup := &suppressions{byLine: map[string]map[int][]string{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				file := pkg.relFile(pos.Filename)
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					sup.malformed = append(sup.malformed, Diagnostic{
						Analyzer: "lint",
						File:     file,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer>[,<analyzer>] <reason>\"",
					})
					continue
				}
				lines := sup.byLine[file]
				if lines == nil {
					lines = map[int][]string{}
					sup.byLine[file] = lines
				}
				for _, name := range strings.Split(names, ",") {
					lines[pos.Line] = append(lines[pos.Line], name)
				}
			}
		}
	}
	return sup
}

// covers reports whether d is suppressed by an ignore comment on its own
// line or on the line above.
func (s *suppressions) covers(d Diagnostic) bool {
	lines, ok := s.byLine[d.File]
	if !ok {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer || name == "*" {
				return true
			}
		}
	}
	return false
}
