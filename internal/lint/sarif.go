package lint

import (
	"encoding/json"
	"fmt"
)

// SARIF 2.1.0 export, the CI annotation format: GitHub's SARIF upload
// turns each result into an inline annotation on the PR diff. Only the
// subset of the schema the upload consumes is emitted; ordering follows
// the (already deterministic) diagnostic order, so two identical runs
// produce byte-identical SARIF.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. The rule table lists
// the full analyzer suite plus the "lint" pseudo-rule (malformed and
// stale suppressions, misplaced directives), so every result's ruleId
// resolves.
func SARIF(diags []Diagnostic) ([]byte, error) {
	rules := []sarifRule{{
		ID:               "lint",
		ShortDescription: sarifText{Text: "suppression and directive hygiene (malformed or stale //lint:ignore, misplaced //sprint: directives)"},
	}}
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sprintlint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("lint: sarif: %w", err)
	}
	return append(data, '\n'), nil
}
