package lint

import (
	"go/ast"
	"go/token"
)

// ExportedDoc requires doc comments on the exported identifiers of the
// configured public packages (the module root's api.go surface). External
// importers see only that facade, so every exported name there must
// explain itself. Grouped declarations may share the group's doc comment
// or carry a trailing line comment.
var ExportedDoc = &Analyzer{
	Name: "exporteddoc",
	Doc:  "require doc comments on exported identifiers of public packages",
	Run:  runExportedDoc,
}

func runExportedDoc(pass *Pass) {
	if !pkgMatchesAny(pass.Pkg, pass.Cfg.DocPackages) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
					pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(pass, d)
			}
		}
	}
}

// funcKind names a FuncDecl for diagnostics.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// exportedRecv reports whether d is a plain function or a method on an
// exported receiver type (methods on unexported types are not part of
// the public surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	name := recvTypeName(d.Recv.List[0].Type)
	return name == "" || ast.IsExported(name)
}

// checkGenDecl requires a doc comment on each exported spec of a
// type/const/var declaration. A spec is documented if it has its own doc,
// a trailing line comment, or the enclosing group has a doc comment.
func checkGenDecl(pass *Pass, d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
				pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil || d.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
					break
				}
			}
		}
	}
}
