package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// The suppression-debt ledger. Every //lint:ignore in the tree is debt:
// a place where an invariant is waived by hand. The committed baseline
// (lint-baseline.json at the module root) records the accepted debt —
// each surviving suppression with its justification — and `sprintlint
// -debt` fails when the per-analyzer suppression count rises above it,
// so new waivers need a deliberate baseline update in the same change.
// Debt that is paid down (suppressions deleted) is reported as retired;
// refresh the baseline with -write-baseline to lock in the lower count.

// SuppressionRecord is one //lint:ignore in the tree (or in the
// baseline; baseline entries omit the line, which drifts with edits).
type SuppressionRecord struct {
	File      string   `json:"file"`
	Line      int      `json:"line,omitempty"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
}

// key is the identity used for baseline diffing: position-independent,
// so a suppression that merely moves lines is unchanged debt.
func (r SuppressionRecord) key() string {
	return r.File + "\x00" + strings.Join(r.Analyzers, ",") + "\x00" + r.Reason
}

// BaselineVersion is the current baseline file format version.
const BaselineVersion = 1

// Baseline is the committed suppression-debt ledger.
type Baseline struct {
	Version int `json:"version"`
	// Counts is the enforced ceiling: suppression mentions per analyzer.
	Counts map[string]int `json:"counts"`
	// Suppressions are the accepted entries, for human review and
	// new/retired diffing.
	Suppressions []SuppressionRecord `json:"suppressions"`
}

// NewBaseline builds a ledger from a run's suppression inventory.
func NewBaseline(sups []SuppressionRecord) *Baseline {
	b := &Baseline{Version: BaselineVersion, Counts: map[string]int{}}
	for _, s := range sups {
		rec := s
		rec.Line = 0 // position-independent ledger
		rec.Analyzers = append([]string(nil), s.Analyzers...)
		b.Suppressions = append(b.Suppressions, rec)
		for _, a := range s.Analyzers {
			b.Counts[a]++
		}
	}
	sort.Slice(b.Suppressions, func(i, j int) bool {
		return b.Suppressions[i].key() < b.Suppressions[j].key()
	})
	return b
}

// ParseBaseline decodes and validates a baseline file. Malformed input
// is reported as an error, never a panic (FuzzSuppressionParse drives
// this parser too).
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("lint: baseline: unsupported version %d (want %d)", b.Version, BaselineVersion)
	}
	for i, s := range b.Suppressions {
		if s.File == "" {
			return nil, fmt.Errorf("lint: baseline: entry %d has no file", i)
		}
		if len(s.Analyzers) == 0 {
			return nil, fmt.Errorf("lint: baseline: entry %d (%s) names no analyzers", i, s.File)
		}
		if strings.TrimSpace(s.Reason) == "" {
			return nil, fmt.Errorf("lint: baseline: entry %d (%s) has no reason", i, s.File)
		}
	}
	if b.Counts == nil {
		b.Counts = map[string]int{}
	}
	return &b, nil
}

// Format renders the baseline deterministically (sorted entries, sorted
// count keys via encoding/json's map ordering, trailing newline).
func (b *Baseline) Format() ([]byte, error) {
	sort.Slice(b.Suppressions, func(i, j int) bool {
		return b.Suppressions[i].key() < b.Suppressions[j].key()
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	return append(data, '\n'), nil
}

// DebtReport compares a run's suppression inventory against a baseline.
type DebtReport struct {
	// Current and Ceiling are suppression mentions per analyzer; Ceiling
	// comes from the baseline.
	Current map[string]int
	Ceiling map[string]int
	// Exceeded lists analyzers whose current count rose above the
	// ceiling — the failure condition.
	Exceeded []string
	// New are suppressions present now but absent from the baseline;
	// Retired the reverse (paid-down debt — refresh the baseline).
	New     []SuppressionRecord
	Retired []SuppressionRecord
}

// OK reports whether the debt stayed at or under the committed ceiling.
func (r *DebtReport) OK() bool { return len(r.Exceeded) == 0 }

// Debt diffs the current inventory against the baseline. A nil baseline
// means "no accepted debt": every suppression is new and any analyzer
// with suppressions is exceeded.
func Debt(current []SuppressionRecord, base *Baseline) *DebtReport {
	r := &DebtReport{Current: map[string]int{}, Ceiling: map[string]int{}}
	baseKeys := map[string]int{}
	if base != nil {
		for a, n := range base.Counts {
			r.Ceiling[a] = n
		}
		for _, s := range base.Suppressions {
			baseKeys[s.key()]++
		}
	}
	curKeys := map[string]int{}
	for _, s := range current {
		curKeys[s.key()]++
		for _, a := range s.Analyzers {
			r.Current[a]++
		}
	}
	for _, s := range current {
		k := s.key()
		if baseKeys[k] > 0 {
			baseKeys[k]--
			continue
		}
		r.New = append(r.New, s)
	}
	if base != nil {
		for _, s := range base.Suppressions {
			k := s.key()
			if curKeys[k] > 0 {
				curKeys[k]--
				continue
			}
			r.Retired = append(r.Retired, s)
		}
	}
	for a, n := range r.Current {
		if n > r.Ceiling[a] {
			r.Exceeded = append(r.Exceeded, a)
		}
	}
	sort.Strings(r.Exceeded)
	return r
}

// Format renders the debt report for terminals: the per-analyzer table,
// then new and retired entries.
func (r *DebtReport) Format() string {
	var sb strings.Builder
	names := make([]string, 0, len(r.Current)+len(r.Ceiling))
	seen := map[string]bool{}
	for a := range r.Current {
		if !seen[a] {
			names, seen[a] = append(names, a), true
		}
	}
	for a := range r.Ceiling {
		if !seen[a] {
			names, seen[a] = append(names, a), true
		}
	}
	sort.Strings(names)
	total, ceilTotal := 0, 0
	fmt.Fprintf(&sb, "%-14s %8s %8s\n", "analyzer", "current", "ceiling")
	for _, a := range names {
		marker := ""
		if r.Current[a] > r.Ceiling[a] {
			marker = "  EXCEEDED"
		}
		fmt.Fprintf(&sb, "%-14s %8d %8d%s\n", a, r.Current[a], r.Ceiling[a], marker)
		total += r.Current[a]
		ceilTotal += r.Ceiling[a]
	}
	fmt.Fprintf(&sb, "%-14s %8d %8d\n", "total", total, ceilTotal)
	if len(r.New) > 0 {
		sb.WriteString("\nnew suppressions (not in baseline):\n")
		for _, s := range r.New {
			fmt.Fprintf(&sb, "  %s:%d [%s] %s\n", s.File, s.Line, strings.Join(s.Analyzers, ","), s.Reason)
		}
	}
	if len(r.Retired) > 0 {
		sb.WriteString("\nretired suppressions (paid-down debt; refresh with -write-baseline):\n")
		for _, s := range r.Retired {
			fmt.Fprintf(&sb, "  %s [%s] %s\n", s.File, strings.Join(s.Analyzers, ","), s.Reason)
		}
	}
	return sb.String()
}
