package lint

import (
	"fmt"
	"go/ast"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// RunOpts configures a module lint run.
type RunOpts struct {
	// Config is the policy; nil means DefaultConfig.
	Config *Config
	// Only restricts the analyzer suite; nil or empty runs everything.
	// Stale-suppression detection only runs with the full suite (a
	// restricted run cannot tell a stale suppression from one whose
	// analyzer simply did not run).
	Only []string
	// Jobs bounds per-package analysis concurrency; <=0 means
	// GOMAXPROCS. Output is bit-identical at any job count: packages
	// are analyzed independently and merged in deterministic order.
	Jobs int
}

// RunResult is one module lint run's full output.
type RunResult struct {
	// Diagnostics are the surviving (unsuppressed) findings, sorted by
	// (file, line, col, analyzer).
	Diagnostics []Diagnostic
	// Suppressions is the active //lint:ignore inventory — the
	// suppression debt the baseline ledger tracks — sorted by position.
	Suppressions []SuppressionRecord
	// HotPathRoots are the //sprint:hotpath-annotated functions, sorted.
	HotPathRoots []string
}

// RunModule loads the module rooted at (or above) dir, runs the
// selected analyzers over every package on a bounded worker pool, and
// returns diagnostics plus the suppression inventory. Interprocedural
// facts (call graph, hot-path closure, determinism taint) are built
// serially before the fan-out and are read-only afterwards, so the
// result is bit-identical at any Jobs value.
func RunModule(dir string, opts RunOpts) (*RunResult, error) {
	cfg := opts.Config
	if cfg == nil {
		cfg = DefaultConfig()
	}
	analyzers := Analyzers()
	if len(opts.Only) > 0 {
		analyzers = analyzers[:0:0]
		for _, name := range opts.Only {
			a := AnalyzerByName(name)
			if a == nil {
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			analyzers = append(analyzers, a)
		}
	}
	pkgs, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	mod := &Module{Pkgs: pkgs}
	// Interprocedural state is built once, before the parallel phase:
	// the per-package passes then only read it.
	for _, a := range analyzers {
		switch a {
		case HotAlloc:
			mod.hotFacts()
		case DetFlow:
			if len(cfg.DeterministicPackages) > 0 {
				mod.detFacts(cfg)
			}
		}
	}
	fullSuite := len(opts.Only) == 0
	known := map[string]bool{"lint": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(pkgs) {
		jobs = len(pkgs)
	}
	if jobs < 1 {
		jobs = 1
	}
	perDiags := make([][]Diagnostic, len(pkgs))
	perSups := make([][]SuppressionRecord, len(pkgs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				perDiags[i], perSups[i] = lintPackage(mod, pkgs[i], cfg, analyzers, fullSuite, known)
			}
		}()
	}
	for i := range pkgs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	res := &RunResult{HotPathRoots: HotPathRoots(mod)}
	for i := range pkgs {
		res.Diagnostics = append(res.Diagnostics, perDiags[i]...)
		res.Suppressions = append(res.Suppressions, perSups[i]...)
	}
	sortDiagnostics(res.Diagnostics)
	sort.Slice(res.Suppressions, func(i, j int) bool {
		a, b := res.Suppressions[i], res.Suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return res, nil
}

// lintPackage runs every analyzer over one package: suppressions are
// collected, applied, and (on full-suite runs) checked for staleness.
func lintPackage(mod *Module, pkg *Package, cfg *Config, analyzers []*Analyzer, fullSuite bool, known map[string]bool) ([]Diagnostic, []SuppressionRecord) {
	sup := collectSuppressions(pkg)
	diags := append([]Diagnostic(nil), sup.malformed...)
	diags = append(diags, sprintDirectiveDiags(pkg)...)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Mod: mod, Cfg: cfg}
		a.Run(pass)
		for _, d := range pass.diags {
			if !sup.covers(d) {
				diags = append(diags, d)
			}
		}
	}
	if fullSuite {
		diags = append(diags, sup.stale(known)...)
	}
	return diags, sup.records()
}

// sortDiagnostics orders diagnostics by (file, line, col, analyzer,
// message) — the driver's one deterministic output order.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// sprintDirectiveDiags validates //sprint: directives: unknown directives
// and hotpath annotations outside a function's doc comment are silently
// inert, which is worse than an error.
func sprintDirectiveDiags(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		// Positions of comments that belong to some function's doc.
		docComments := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				docComments[c] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "sprint:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				directive, _, _ := strings.Cut(text, " ")
				if directive != hotPathDirective {
					out = append(out, Diagnostic{
						Analyzer: "lint",
						File:     pkg.relFile(pos.Filename),
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  fmt.Sprintf("unknown //sprint: directive %q (known: //sprint:hotpath)", directive),
					})
					continue
				}
				if !docComments[c] {
					out = append(out, Diagnostic{
						Analyzer: "lint",
						File:     pkg.relFile(pos.Filename),
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "misplaced //sprint:hotpath: the annotation must be part of a function's doc comment",
					})
				}
			}
		}
	}
	return out
}
