package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags discarded error returns: calls used as statements whose
// results include an error, and assignments of an error result to the
// blank identifier. Silently dropped errors are how a corrupted dataset
// or a failed trace write masquerades as a clean run. Deferred Close
// calls are exempt (best-effort cleanup on read paths); other callees can
// be allowlisted in the config or suppressed with a reason.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarded error returns outside the allowlist",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					pass.checkDroppedCall(call, false)
				}
			case *ast.DeferStmt:
				pass.checkDroppedCall(n.Call, true)
			case *ast.GoStmt:
				pass.checkDroppedCall(n.Call, false)
			case *ast.AssignStmt:
				pass.checkBlankAssign(n)
			}
			return true
		})
	}
}

// checkDroppedCall reports a statement-position call whose result set
// includes an error.
func (p *Pass) checkDroppedCall(call *ast.CallExpr, deferred bool) {
	if !resultsIncludeError(p.Pkg.Info, call) {
		return
	}
	name := calleeName(p.Pkg, call)
	if matchesAnyGlob(p.Cfg.ErrDropAllow, name) {
		return
	}
	if deferred && strings.HasSuffix(name, ".Close") {
		return
	}
	if name == "" {
		name = "call"
	}
	p.Reportf(call.Pos(), "error result of %s is discarded; handle it, allowlist the callee, or //lint:ignore errdrop with a reason", name)
}

// checkBlankAssign reports error results assigned to the blank
// identifier.
func (p *Pass) checkBlankAssign(assign *ast.AssignStmt) {
	info := p.Pkg.Info
	// Case 1: one call fanning out to multiple targets.
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := info.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(assign.Lhs) {
			return
		}
		for i, lhs := range assign.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				p.reportBlank(call)
				return
			}
		}
		return
	}
	// Case 2: pairwise assignment; only flag `_ = <call returning error>`.
	for i, lhs := range assign.Lhs {
		if !isBlank(lhs) || i >= len(assign.Rhs) {
			continue
		}
		call, ok := unparen(assign.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if tv, ok := info.Types[call]; ok && tv.Type != nil && isErrorType(tv.Type) {
			p.reportBlank(call)
		}
	}
}

func (p *Pass) reportBlank(call *ast.CallExpr) {
	name := calleeName(p.Pkg, call)
	if matchesAnyGlob(p.Cfg.ErrDropAllow, name) {
		return
	}
	if name == "" {
		name = "call"
	}
	p.Reportf(call.Pos(), "error result of %s assigned to _; handle it, allowlist the callee, or //lint:ignore errdrop with a reason", name)
}

// resultsIncludeError reports whether call's results contain an error.
func resultsIncludeError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// calleeName returns the callee's full name for allowlist matching:
// "fmt.Println" for package functions, "(*bytes.Buffer).WriteString" for
// methods; module-internal packages render module-relative. Unresolvable
// callees (function values, literals) return "".
func calleeName(pkg *Package, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = pkg.Info.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	name := fn.FullName()
	// Make module-internal names stable and concise: strip the module
	// path prefix so entries read "(*internal/obs.Registry).Write".
	if pkg.Path != "" {
		modPath := pkg.Path
		if pkg.Rel != "." && strings.HasSuffix(modPath, "/"+pkg.Rel) {
			modPath = strings.TrimSuffix(modPath, "/"+pkg.Rel)
		}
		name = strings.ReplaceAll(name, modPath+"/", "")
		name = strings.ReplaceAll(name, modPath+".", "")
	}
	return name
}

func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}

func unparen(expr ast.Expr) ast.Expr {
	for {
		p, ok := expr.(*ast.ParenExpr)
		if !ok {
			return expr
		}
		expr = p.X
	}
}
