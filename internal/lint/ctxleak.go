package lint

import (
	"go/ast"
	"go/types"
)

// CtxLeak enforces cancellation hygiene in the configured concurrency
// packages: a function that spawns goroutines but accepts no
// context.Context gives its callers no way to abandon the work, which is
// exactly how a stalled profiler run or a wedged HTTP replay outlives the
// decision that requested it. Fork-joins that provably complete (bounded
// workers, all results collected before return) may carry a reasoned
// //lint:ignore ctxleak.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "forbid goroutine spawns in functions without a context.Context parameter in concurrency packages",
	Run:  runCtxLeak,
}

func runCtxLeak(pass *Pass) {
	if !pkgMatchesAny(pass.Pkg, pass.Cfg.CtxPackages) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if funcAcceptsContext(info, fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "goroutine spawned in %s, which takes no context.Context; callers cannot cancel it — add a ctx parameter or explain with //lint:ignore ctxleak", fn.Name.Name)
				}
				return true
			})
		}
	}
}

// funcAcceptsContext reports whether any parameter of fn is a
// context.Context.
func funcAcceptsContext(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
