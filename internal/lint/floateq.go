package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Exact float
// equality silently diverges across compilers, optimisation levels and
// accumulated rounding — the calibration bisection and the annealing
// acceptance tests both compare model outputs, where a bitwise compare is
// almost never what is meant. Use stats.ApproxEqual / stats.ApproxZero,
// or suppress with a reason where exact comparison is the point (NaN
// guards, sentinel defaults, sorted-neighbour dedup).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= between floating-point operands outside epsilon helpers",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, _ := decl.(*ast.FuncDecl)
			if fn != nil && matchesAnyGlob(pass.Cfg.FloatEqAllow, funcDisplayName(pass.Pkg, fn)) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(info, be.X) || isFloat(info, be.Y) {
					pass.Reportf(be.OpPos, "floating-point %s comparison; use stats.ApproxEqual or explain with //lint:ignore floateq", be.Op)
				}
				return true
			})
		}
	}
}

// isFloat reports whether expr has floating-point type.
func isFloat(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
