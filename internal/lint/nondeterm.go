package lint

import (
	"go/ast"
	"go/types"
)

// NonDeterm enforces simulator reproducibility inside the configured
// deterministic packages: calibration (Section 2.3) and annealing
// (Section 4) replay the simulator and assume identical inputs produce
// identical outputs, so those packages must not read the wall clock, use
// the global math/rand source, or iterate maps (whose order varies
// run-to-run). Randomness flows through internal/dist's seeded RNG;
// wall-clock reads go through an injectable clock (obs.Clock).
var NonDeterm = &Analyzer{
	Name: "nondeterm",
	Doc:  "forbid wall-clock reads, global math/rand and map iteration in deterministic packages",
	Run:  runNonDeterm,
}

// wallClockFuncs are the time package's clock-reading entry points.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNonDeterm(pass *Pass) {
	if !pkgMatchesAny(pass.Pkg, pass.Cfg.DeterministicPackages) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgPath, ok := selectorPackage(info, n)
				if !ok {
					return true
				}
				switch {
				case pkgPath == "time" && wallClockFuncs[n.Sel.Name]:
					pass.Reportf(n.Pos(), "wall-clock read time.%s in deterministic package; inject an obs.Clock instead", n.Sel.Name)
				case pkgPath == "math/rand" || pkgPath == "math/rand/v2":
					pass.Reportf(n.Pos(), "%s.%s uses math/rand; all randomness must flow through internal/dist's seeded RNG", pkgPath, n.Sel.Name)
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over map %s: iteration order is nondeterministic; sort the keys first", types.TypeString(tv.Type, nil))
					}
				}
			}
			return true
		})
	}
}

// selectorPackage resolves sel's qualifier to an imported package path
// when sel is a package-qualified reference (pkg.Name).
func selectorPackage(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pkgName.Imported().Path(), true
}
