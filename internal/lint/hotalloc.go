package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc turns the runtime zero-allocations-per-run budget
// (testing.AllocsPerRun in queuesim/sim) into a compile-time proof over
// the whole module: functions annotated
//
//	//sprint:hotpath <note>
//
// are closed over the call graph — static calls, closures handed to the
// pooled engine's Register, interface dispatch (tracers, distributions),
// signature-matched dynamic calls — and every allocating construct
// anywhere in that closure is flagged with the call chain that reaches
// it. The dynamic budget only covers the paths a test happens to drive;
// this covers every path the compiler can see.
//
// Flagged constructs: make, new, escaping composite literals (&T{...},
// slice/map literals), closure creation, interface boxing at call sites
// and conversions, string concatenation and string<->[]byte conversions,
// append (backing-array growth), goroutine launches, and calls into
// known-allocating stdlib entry points (fmt, log, errors, sort, ...).
//
// Two construct classes are exempt by rule rather than by suppression,
// because the zero-allocation contract is about *steady state*:
//
//   - Cold paths: a conditional block that ends by panicking or by
//     returning a non-nil error is failure handling; steady state never
//     executes it, so its allocations (fmt.Errorf, panic(fmt.Sprintf))
//     are free.
//   - Amortized self-appends: x = append(x, ...) where x is storage that
//     outlives the call (a field, or an element of one) reaches capacity
//     and stops growing; the AllocsPerRun tests pin that steady state.
//     Appends into plain locals still allocate every call and stay
//     flagged.
//
// Everything else that is amortized but does not fit those shapes (slab
// doubling via make, first-use registration) carries a reasoned
// //lint:ignore hotalloc suppression, tracked in the debt ledger.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs in the call-graph closure of //sprint:hotpath roots",
	Run:  runHotAlloc,
}

// hotPathDirective is the annotation grammar's marker. The annotation
// goes in the function's doc comment; everything after the marker is a
// free-text note recorded on the node.
const hotPathDirective = "sprint:hotpath"

// hotPathAnnotation reports whether fn's doc comment carries a
// //sprint:hotpath directive, plus its note.
func hotPathAnnotation(fn *ast.FuncDecl) (bool, string) {
	if fn.Doc == nil {
		return false, ""
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, hotPathDirective); ok {
			if rest == "" || strings.HasPrefix(rest, " ") {
				return true, strings.TrimSpace(rest)
			}
		}
	}
	return false, ""
}

// hotallocFacts is the module-level state shared by every per-package
// hotalloc pass: the closure of the annotated roots, read-only once
// built.
type hotallocFacts struct {
	reach map[*Node]*ReachedVia
}

// hotFacts builds (once) the closure of the //sprint:hotpath roots.
func (m *Module) hotFacts() *hotallocFacts {
	m.hotOnce.Do(func() {
		g := m.Graph()
		var roots []*Node
		for _, n := range g.Nodes {
			if n.HotPath {
				roots = append(roots, n)
			}
		}
		m.hot = &hotallocFacts{reach: g.Reach(roots, nil)}
	})
	return m.hot
}

func runHotAlloc(pass *Pass) {
	facts := pass.Mod.hotFacts()
	if len(facts.reach) == 0 {
		return
	}
	// Deterministic order: nodes are declared in (package, position)
	// order by the builder; filter to this pass's package.
	for _, n := range pass.Mod.Graph().Nodes {
		if n.Pkg != pass.Pkg {
			continue
		}
		rv := facts.reach[n]
		if rv == nil {
			continue
		}
		scanAllocs(pass, n, rv)
	}
}

// scanAllocs walks one closure member's body and reports allocating
// constructs. Nested literals are skipped: they are separate nodes and
// are scanned under their own chain (their creation is flagged here).
func scanAllocs(pass *Pass, n *Node, rv *ReachedVia) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Pkg.Info
	cold := coldRanges(info, body)
	amort := amortizedAppends(info, body)
	report := func(pos token.Pos, what string) {
		for _, r := range cold {
			if pos >= r[0] && pos < r[1] {
				return
			}
		}
		pass.Reportf(pos, "%s on hot path (reached via %s)", what, rv.Chain())
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "closure creation allocates")
			return false
		case *ast.CallExpr:
			scanCallAllocs(pass, info, x, amort, report)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "composite literal escapes via &")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "slice literal allocates its backing array")
				case *types.Map:
					report(x.Pos(), "map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && isStringType(tv.Type) {
					report(x.Pos(), "string concatenation allocates")
				}
			}
		case *ast.GoStmt:
			report(x.Pos(), "goroutine launch allocates its stack")
		}
		return true
	})
}

// coldRanges collects the source ranges of conditional blocks that end
// by panicking or by returning a non-nil error. Allocations there are
// failure-path work the steady state never executes, so the zero-alloc
// contract does not cover them. (The heuristic is per-block: an
// allocation earlier in a diverging block is also exempt, which errs on
// the quiet side.)
func coldRanges(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // scanned under its own node
		case *ast.IfStmt:
			if blockDiverges(info, x.Body.List) {
				out = append(out, [2]token.Pos{x.Body.Pos(), x.Body.End()})
			}
			if eb, ok := x.Else.(*ast.BlockStmt); ok && blockDiverges(info, eb.List) {
				out = append(out, [2]token.Pos{eb.Pos(), eb.End()})
			}
		case *ast.CaseClause:
			if len(x.Body) > 0 && blockDiverges(info, x.Body) {
				out = append(out, [2]token.Pos{x.Body[0].Pos(), x.End()})
			}
		}
		return true
	})
	return out
}

// blockDiverges reports whether a statement list ends in panic(...) or in
// a return carrying a non-nil error.
func blockDiverges(info *types.Info, list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ExprStmt:
		if call, ok := unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return true
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range last.Results {
			if id, ok := unparen(res).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if tv, ok := info.Types[res]; ok && tv.Type != nil && isErrorType(tv.Type) {
				return true
			}
		}
	}
	return false
}

// amortizedAppends collects append calls of the reuse idiom the module's
// pooling is built on:
//
//	x = append(x, ...)        // including x = append(x[:n], ...)
//
// where x denotes storage that outlives the call (a field selector, or
// an element of one). Such a backing array reaches steady-state capacity
// and stops growing — the runtime AllocsPerRun tests pin exactly that —
// so flagging every site would only convert the core idiom into
// suppression debt. Appends into plain locals stay flagged.
func amortizedAppends(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		arg0 := unparen(call.Args[0])
		if sl, ok := arg0.(*ast.SliceExpr); ok {
			arg0 = unparen(sl.X)
		}
		lhs := unparen(as.Lhs[0])
		if longLived(lhs) && types.ExprString(lhs) == types.ExprString(arg0) {
			out[call] = true
		}
		return true
	})
	return out
}

// longLived reports whether expr denotes storage owned by something that
// outlives the enclosing call: a field (r.buf, out.RTs) or an element of
// one (r.mres.ByClass[k]).
func longLived(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return longLived(e.X)
	case *ast.StarExpr:
		return longLived(e.X)
	}
	return false
}

// relQual renders type names with module-relative package paths, so
// messages match call-graph node names ("internal/obs.QueryEvent").
func relQual(pkg *Package) types.Qualifier {
	mod := pkg.Path
	if pkg.Rel != "." && pkg.Rel != "" {
		mod = strings.TrimSuffix(pkg.Path, "/"+pkg.Rel)
	}
	return func(p *types.Package) string {
		if rest, ok := strings.CutPrefix(p.Path(), mod+"/"); ok {
			return rest
		}
		return p.Path()
	}
}

// scanCallAllocs classifies one call expression on the hot path.
func scanCallAllocs(pass *Pass, info *types.Info, call *ast.CallExpr, amort map[*ast.CallExpr]bool, report func(token.Pos, string)) {
	qual := types.Qualifier(nil)
	if pass != nil {
		qual = relQual(pass.Pkg)
	}
	fun := unparen(call.Fun)
	// Conversions: T(x). Flag interface boxing and string<->byte-slice
	// copies; numeric and same-kind conversions are free.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			if from, ok := info.Types[call.Args[0]]; ok {
				switch {
				case types.IsInterface(to.Underlying()) && !types.IsInterface(from.Type.Underlying()) && !isPointerLike(from.Type):
					report(call.Pos(), "conversion boxes "+types.TypeString(from.Type, qual)+" into an interface")
				case isStringByteConversion(from.Type, to):
					report(call.Pos(), "string conversion copies its bytes")
				}
			}
		}
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if !amort[call] {
					report(call.Pos(), "append may grow its backing array")
				}
			}
			return
		}
	}
	// Known-allocating callees (fmt, log, errors, sort, ...).
	if pass != nil {
		name := calleeName(pass.Pkg, call)
		if name != "" && matchesAnyGlob(pass.Cfg.hotAllocCallees(), name) {
			report(call.Pos(), "call to "+name+" allocates")
			return
		}
	}
	// Interface boxing at the call site: a concrete non-pointer argument
	// passed to an interface parameter is heap-boxed.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if types.IsInterface(at.Type.Underlying()) || isPointerLike(at.Type) {
			continue
		}
		report(arg.Pos(), "argument boxes "+types.TypeString(at.Type, qual)+" into interface "+types.TypeString(pt, qual))
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		report(call.Pos(), "variadic call allocates its argument slice")
	}
}

// callSignature resolves the called function's signature, nil for
// builtins and conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isPointerLike reports whether boxing t into an interface stores the
// value directly (no heap copy): pointers, channels, maps, funcs,
// unsafe pointers.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringByteConversion reports whether from->to crosses the
// string/[]byte/[]rune boundary (which copies).
func isStringByteConversion(from, to types.Type) bool {
	return (isStringType(from) && isByteOrRuneSlice(to)) ||
		(isByteOrRuneSlice(from) && isStringType(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// hotAllocCallees returns the configured known-allocating callee
// patterns, defaulting when the config predates the analyzer.
func (c *Config) hotAllocCallees() []string {
	if len(c.HotAllocCallees) > 0 {
		return c.HotAllocCallees
	}
	return defaultHotAllocCallees
}

// defaultHotAllocCallees are stdlib entry points that allocate on every
// call; reaching one from a hot-path root is always a finding.
var defaultHotAllocCallees = []string{
	"fmt.*",
	"log.*",
	"errors.*",
	"sort.Slice*",
	"sort.Sort*",
	"strings.Join",
	"strings.Repeat",
	"strings.Split*",
	"strings.Fields",
	"strings.Replace*",
	"strconv.Format*",
	"strconv.Quote*",
	"strconv.Itoa",
}

// HotPathRoots lists the annotated roots of a loaded module in
// deterministic order — exposed for tests and the -hotpaths listing.
func HotPathRoots(m *Module) []string {
	var out []string
	for _, n := range m.Graph().Nodes {
		if n.HotPath {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out
}
