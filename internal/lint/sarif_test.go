package lint

import (
	"encoding/json"
	"testing"
)

func TestSARIF(t *testing.T) {
	diags := []Diagnostic{
		{File: "internal/core/model.go", Line: 10, Col: 3, Analyzer: "hotalloc", Message: "make allocates on hot path"},
		{File: "cmd/x/main.go", Line: 2, Col: 1, Analyzer: "lint", Message: "stale suppression"},
	}
	data, err := SARIF(diags)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "sprintlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every result's ruleId must resolve against the rule table.
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range Analyzers() {
		if !ruleIDs[a.Name] {
			t.Errorf("rule table missing analyzer %q", a.Name)
		}
	}
	if !ruleIDs["lint"] {
		t.Error("rule table missing the lint pseudo-rule")
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(diags))
	}
	for i, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("result %d ruleId %q does not resolve", i, r.RuleID)
		}
		if r.Level != "error" {
			t.Errorf("result %d level = %q", i, r.Level)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("result %d uriBaseId = %q", i, loc.ArtifactLocation.URIBaseID)
		}
		if loc.ArtifactLocation.URI != diags[i].File || loc.Region.StartLine != diags[i].Line {
			t.Errorf("result %d location = %s:%d, want %s:%d",
				i, loc.ArtifactLocation.URI, loc.Region.StartLine, diags[i].File, diags[i].Line)
		}
	}

	// Empty input still yields a well-formed log with the rule table.
	empty, err := SARIF(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(empty, &log); err != nil {
		t.Fatalf("empty SARIF invalid: %v", err)
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("empty input produced results")
	}
}
