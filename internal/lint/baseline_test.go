package lint

import (
	"reflect"
	"strings"
	"testing"
)

func rec(file, reason string, analyzers ...string) SuppressionRecord {
	return SuppressionRecord{File: file, Analyzers: analyzers, Reason: reason}
}

func TestNewBaselineRoundTrip(t *testing.T) {
	sups := []SuppressionRecord{
		{File: "b.go", Line: 9, Analyzers: []string{"hotalloc"}, Reason: "amortized growth"},
		{File: "a.go", Line: 3, Analyzers: []string{"errdrop", "floateq"}, Reason: "best effort"},
	}
	b := NewBaseline(sups)
	if got := b.Counts; got["hotalloc"] != 1 || got["errdrop"] != 1 || got["floateq"] != 1 {
		t.Errorf("counts = %v", got)
	}
	for _, s := range b.Suppressions {
		if s.Line != 0 {
			t.Errorf("ledger entry kept its line: %+v (must be position-independent)", s)
		}
	}
	if b.Suppressions[0].File != "a.go" {
		t.Errorf("ledger not sorted: %+v", b.Suppressions)
	}

	data, err := b.Format()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, b) {
		t.Errorf("round trip changed the baseline:\n%+v\nvs\n%+v", parsed, b)
	}
}

func TestParseBaselineErrors(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"version": 99, "counts": {}}`,
		`{"counts": {}}`, // missing version
	}
	for _, c := range cases {
		if _, err := ParseBaseline([]byte(c)); err == nil {
			t.Errorf("ParseBaseline(%q) did not error", c)
		}
	}
}

func TestDebtAgainstNilBaseline(t *testing.T) {
	r := Debt([]SuppressionRecord{rec("a.go", "why", "hotalloc")}, nil)
	if r.OK() {
		t.Error("debt with no accepted baseline must not be OK")
	}
	if len(r.New) != 1 || len(r.Retired) != 0 {
		t.Errorf("New=%d Retired=%d, want 1/0", len(r.New), len(r.Retired))
	}
}

func TestDebtDiff(t *testing.T) {
	base := NewBaseline([]SuppressionRecord{
		rec("a.go", "kept", "errdrop"),
		rec("b.go", "paid down", "errdrop"),
	})
	current := []SuppressionRecord{
		// Same debt as baseline's a.go entry, but it moved lines: the
		// position-independent key must treat it as unchanged.
		{File: "a.go", Line: 42, Analyzers: []string{"errdrop"}, Reason: "kept"},
	}
	r := Debt(current, base)
	if !r.OK() {
		t.Errorf("under-ceiling run flagged as exceeded: %v", r.Exceeded)
	}
	if len(r.New) != 0 {
		t.Errorf("moved suppression reported as new: %+v", r.New)
	}
	if len(r.Retired) != 1 || r.Retired[0].File != "b.go" {
		t.Errorf("Retired = %+v, want the b.go entry", r.Retired)
	}

	// A suppression for an analyzer with no accepted debt trips the gate
	// (errdrop stays under its ceiling of 2, hotalloc's ceiling is 0).
	grown := append(current, rec("c.go", "fresh debt", "hotalloc"))
	r = Debt(grown, base)
	if r.OK() {
		t.Error("count above ceiling must fail")
	}
	if !reflect.DeepEqual(r.Exceeded, []string{"hotalloc"}) {
		t.Errorf("Exceeded = %v", r.Exceeded)
	}
	if len(r.New) != 1 || r.New[0].File != "c.go" {
		t.Errorf("New = %+v", r.New)
	}
}

func TestDebtReportFormat(t *testing.T) {
	base := NewBaseline([]SuppressionRecord{rec("a.go", "kept", "errdrop")})
	r := Debt([]SuppressionRecord{
		rec("a.go", "kept", "errdrop"),
		rec("c.go", "fresh", "hotalloc"),
	}, base)
	out := r.Format()
	for _, want := range []string{"analyzer", "errdrop", "hotalloc", "EXCEEDED", "c.go", "fresh"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
