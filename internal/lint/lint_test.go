package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata expect.txt files")

// fixtureConfig treats each single-package fixture module as both a
// deterministic package and a public-doc package, with empty allowlists,
// so every analyzer is armed.
func fixtureConfig() *Config {
	return &Config{
		DeterministicPackages: []string{"."},
		DocPackages:           []string{"."},
		CtxPackages:           []string{"."},
		PooledTypes:           []string{"query"},
	}
}

// fixtureAnalyzers pins which analyzers may fire in each fixture. The
// golden files record the exact diagnostics; this map additionally fails
// the test if an unrelated analyzer starts firing (or an expected one
// stops), guarding against a blind `-update` regeneration.
var fixtureAnalyzers = map[string][]string{
	"nondeterm":   {"nondeterm"},
	"floateq":     {"floateq"},
	"errdrop":     {"errdrop"},
	"lockcopy":    {"lockcopy-lite"},
	"exporteddoc": {"exporteddoc"},
	"ctxleak":     {"ctxleak"},
	"poolescape":  {"poolescape"},
	"spanleak":    {"spanleak"},
	"clean":       {},
	"suppressed":  {},
	"badsuppress": {"lint", "floateq"},
	"hotalloc":    {"hotalloc"},
	"detflow":     {"detflow"},

	// stalesuppress surfaces only driver-level "lint" diagnostics: the one
	// floateq hit is absorbed by its (used) suppression, everything else
	// is stale/malformed directives.
	"stalesuppress": {"lint"},
}

func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		seen[name] = true
		t.Run(name, func(t *testing.T) {
			allowed, ok := fixtureAnalyzers[name]
			if !ok {
				t.Fatalf("fixture %s has no fixtureAnalyzers entry", name)
			}
			dir := filepath.Join("testdata", "src", name)
			diags, err := Run(dir, fixtureConfig(), nil)
			if err != nil {
				t.Fatalf("Run(%s): %v", dir, err)
			}
			fired := map[string]bool{}
			var sb strings.Builder
			for _, d := range diags {
				fired[d.Analyzer] = true
				found := false
				for _, a := range allowed {
					if d.Analyzer == a {
						found = true
					}
				}
				if !found {
					t.Errorf("unexpected analyzer fired: %s", d)
				}
				sb.WriteString(d.String())
				sb.WriteByte('\n')
			}
			for _, a := range allowed {
				if !fired[a] {
					t.Errorf("analyzer %s did not fire on fixture %s", a, name)
				}
			}
			expectPath := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(expectPath, []byte(sb.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(expectPath)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test ./internal/lint -run TestFixtures -update)", err)
			}
			if got := sb.String(); got != string(want) {
				t.Errorf("diagnostics differ from %s\ngot:\n%swant:\n%s", expectPath, got, want)
			}
		})
	}
	for name := range fixtureAnalyzers {
		if !seen[name] {
			t.Errorf("fixtureAnalyzers lists %s but testdata/src/%s does not exist", name, name)
		}
	}
}

func TestRunOnlyFilters(t *testing.T) {
	dir := filepath.Join("testdata", "src", "nondeterm")
	diags, err := Run(dir, fixtureConfig(), []string{"floateq"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("floateq-only run over nondeterm fixture found %d diagnostics: %v", len(diags), diags)
	}
	if _, err := Run(dir, fixtureConfig(), []string{"nope"}); err == nil {
		t.Fatal("unknown analyzer name did not error")
	}
}

// TestModuleClean is the zero-diagnostics acceptance gate: the real
// module, under the default config, must lint clean. Every intentional
// violation in the tree carries a reasoned //lint:ignore.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	diags, err := Run(filepath.Join("..", ".."), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("module not lint-clean: %s", d)
	}
}

// TestQueuesimUsesInjectedClock verifies — with the nondeterm analyzer
// itself, before suppressions are applied — that the queue simulator no
// longer reads the wall clock or global RNG directly.
func TestQueuesimUsesInjectedClock(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pkg := range pkgs {
		if pkg.Rel != "internal/queuesim" {
			continue
		}
		found = true
		pass := &Pass{Analyzer: NonDeterm, Pkg: pkg, Cfg: DefaultConfig()}
		NonDeterm.Run(pass)
		for _, d := range pass.diags {
			t.Errorf("queuesim nondeterminism (unsuppressable): %s", d)
		}
	}
	if !found {
		t.Fatal("internal/queuesim not found in module load")
	}
}
