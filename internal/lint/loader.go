package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule locates the Go module containing dir, parses every non-test
// package in it, type-checks them in dependency order, and returns the
// packages sorted by import path. Test files (_test.go) are excluded:
// tests legitimately compare floats exactly and read the clock, and the
// merge gate runs them separately.
func LoadModule(dir string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		parsed:  map[string]*rawPkg{},
		checked: map[string]*Package{},
		loading: map[string]bool{},
	}
	// Stdlib imports resolve through the compiler's export data; fall
	// back to type-checking the standard library from source when export
	// data is unavailable in this toolchain.
	ld.std = importer.ForCompiler(ld.fset, "gc", nil)
	ld.stdFallback = importer.ForCompiler(ld.fset, "source", nil)

	if err := ld.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(ld.parsed))
	for p := range ld.parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", fmt.Errorf("lint: %w", err)
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s has no module directive", filepath.Join(d, "go.mod"))
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", abs)
		}
	}
}

// rawPkg is a parsed-but-not-yet-type-checked package.
type rawPkg struct {
	dir   string
	rel   string
	files []*ast.File
	names []string
}

type loader struct {
	fset        *token.FileSet
	root        string
	modPath     string
	std         types.Importer
	stdFallback types.Importer
	parsed      map[string]*rawPkg  // import path -> syntax
	checked     map[string]*Package // import path -> result
	loading     map[string]bool     // cycle detection
}

// discover walks the module tree and parses every package directory.
// Hidden directories, testdata trees and nested modules are skipped.
func (ld *loader) discover() error {
	return filepath.WalkDir(ld.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
				return filepath.SkipDir
			}
			// A nested go.mod starts a different module.
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		return ld.parseDir(path)
	})
}

// parseDir parses the non-test Go files of one directory, if any.
func (ld *loader) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		return nil
	}
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	rel = filepath.ToSlash(rel)
	path := ld.modPath
	if rel != "." {
		path = ld.modPath + "/" + rel
	}
	ld.parsed[path] = &rawPkg{dir: dir, rel: rel, files: files, names: names}
	return nil
}

// Import implements types.Importer: module-internal paths type-check
// recursively; everything else goes to the standard-library importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, err := ld.std.Import(path)
	if err != nil {
		pkg, err = ld.stdFallback.Import(path)
	}
	return pkg, err
}

// check type-checks one module package (memoised).
func (ld *loader) check(path string) (*Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	raw, ok := ld.parsed[path]
	if !ok {
		return nil, fmt.Errorf("lint: import %q: no such package in module", path)
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	//lint:ignore errdrop type errors are collected through conf.Error and surfaced below; Check's error duplicates the first one
	tpkg, _ := conf.Check(path, ld.fset, raw.files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{
		Path:  path,
		Rel:   raw.rel,
		Dir:   raw.dir,
		Root:  ld.root,
		Fset:  ld.fset,
		Files: raw.files,
		Types: tpkg,
		Info:  info,
	}
	ld.checked[path] = pkg
	return pkg, nil
}
