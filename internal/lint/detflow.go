package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetFlow is the interprocedural companion of nondeterm. nondeterm
// checks the deterministic packages' own files syntactically; DetFlow
// closes their exported entry points over the module call graph and
// flags nondeterminism *reached through* them in other packages — the
// helper in internal/core that stamps wall-clock time, the registry walk
// that ranges a map — with the full propagation chain back to the entry
// point. Division of labor: a source inside a deterministic package is
// nondeterm's finding (file-local, precise); a source in any other
// module package reachable from a deterministic entry point is
// DetFlow's.
//
// Sources: wall-clock reads (time.Now/Since/Until), the global
// math/rand source, environment reads (os.Getenv/LookupEnv/Environ),
// map iteration (order varies run to run), and goroutine launches
// (scheduling order is a race unless results are committed by index).
// Injected abstractions are barriers: nodes matching DetflowAllow
// (obs.Clock implementations, seeded RNG internals) are neither
// reported nor traversed.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc:  "forbid nondeterminism transitively reachable from deterministic packages' entry points",
	Run:  runDetFlow,
}

// detflowFacts is the read-only module state shared by detflow passes.
type detflowFacts struct {
	reach map[*Node]*ReachedVia
	// detPkgs marks the deterministic packages' *Package values, whose
	// in-package sources belong to nondeterm.
	detPkgs map[*Package]bool
}

// detFacts builds (once) the closure of the deterministic packages'
// exported entry points, honoring the DetflowAllow barriers.
func (m *Module) detFacts(cfg *Config) *detflowFacts {
	m.detOnce.Do(func() {
		g := m.Graph()
		facts := &detflowFacts{detPkgs: map[*Package]bool{}}
		for _, p := range m.Pkgs {
			if pkgMatchesAny(p, cfg.DeterministicPackages) {
				facts.detPkgs[p] = true
			}
		}
		var roots []*Node
		for _, n := range g.Nodes {
			if n.Fn == nil || !facts.detPkgs[n.Pkg] {
				continue
			}
			if ast.IsExported(n.Fn.Name()) {
				roots = append(roots, n)
			}
		}
		allow := cfg.detflowAllow()
		facts.reach = g.Reach(roots, func(n *Node) bool {
			return !matchesAnyGlob(allow, n.Name)
		})
		m.det = facts
	})
	return m.det
}

func runDetFlow(pass *Pass) {
	if len(pass.Cfg.DeterministicPackages) == 0 {
		return
	}
	facts := pass.Mod.detFacts(pass.Cfg)
	if facts.detPkgs[pass.Pkg] {
		return // in-package sources are nondeterm's findings
	}
	for _, n := range pass.Mod.Graph().Nodes {
		if n.Pkg != pass.Pkg {
			continue
		}
		rv := facts.reach[n]
		if rv == nil {
			continue
		}
		scanDetSources(pass, n, rv)
	}
}

// scanDetSources walks one reached function's body for nondeterminism
// sources. Nested literals are separate nodes and scanned on their own.
func scanDetSources(pass *Pass, n *Node, rv *ReachedVia) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Pkg.Info
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s reachable from deterministic entry point %s (via %s)",
			what, rv.Root().Name, rv.Chain())
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			pkgPath, ok := selectorPackage(info, x)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "time" && wallClockFuncs[x.Sel.Name]:
				report(x.Pos(), "wall-clock read time."+x.Sel.Name)
			case pkgPath == "math/rand" || pkgPath == "math/rand/v2":
				report(x.Pos(), "global math/rand use "+x.Sel.Name)
			case pkgPath == "os" && envReadFuncs[x.Sel.Name]:
				report(x.Pos(), "environment read os."+x.Sel.Name)
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !orderInsensitiveRange(info, body, x) {
					report(x.Pos(), "map iteration (order varies run to run)")
				}
			}
		case *ast.GoStmt:
			report(x.Pos(), "goroutine launch (scheduling order escapes)")
		}
		return true
	})
}

// envReadFuncs are the os package's environment-reading entry points.
var envReadFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

// orderInsensitiveRange recognizes the benign map-range idioms: a body
// that only counts, or one that only collects keys/values into slices
// that the enclosing function then sorts —
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// Counting is order-independent outright; collection is only exempt
// when every collected slice is passed to a sort/slices call after the
// loop (collect-without-sort still leaks iteration order).
func orderInsensitiveRange(info *types.Info, enclosing *ast.BlockStmt, r *ast.RangeStmt) bool {
	collected := map[types.Object]bool{}
	for _, stmt := range r.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			continue
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			call, ok := unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := unparen(call.Fun).(*ast.Ident)
			if !ok {
				return false
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				return false
			}
			lhs, ok := unparen(s.Lhs[0]).(*ast.Ident)
			if !ok {
				return false
			}
			if obj := info.ObjectOf(lhs); obj != nil {
				collected[obj] = true
			}
		default:
			return false
		}
	}
	if len(collected) == 0 {
		return true // pure counting
	}
	sorted := 0
	ast.Inspect(enclosing, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || call.Pos() < r.End() {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := selectorPackage(info, sel)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := unparen(arg).(*ast.Ident); ok && collected[info.ObjectOf(id)] {
				collected[info.ObjectOf(id)] = false
				sorted++
			}
		}
		return true
	})
	return sorted == len(collected)
}

// detflowAllow returns the barrier patterns, defaulting to the injected
// clock and RNG abstractions when the config predates the analyzer.
func (c *Config) detflowAllow() []string {
	if len(c.DetflowAllow) > 0 {
		return c.DetflowAllow
	}
	return defaultDetflowAllow
}

// defaultDetflowAllow exempts the injected abstractions the determinism
// contract is built on: obs.Clock implementations (callers choose a
// manual clock for reproducible runs; measured wall time flows only into
// metrics, never into simulation results) and the explicitly seeded
// RNG plumbing.
var defaultDetflowAllow = []string{
	"internal/obs.systemClock.*",
	"internal/obs.ClockOr",
	"internal/obs.(*ManualClock).*",
}

// detflowSourceKinds documents the source taxonomy for -list and the
// README; kept here so the doc stays next to the detector.
var detflowSourceKinds = []string{
	"time.Now/Since/Until",
	"math/rand global source",
	"os.Getenv/LookupEnv/Environ",
	"map iteration",
	"goroutine launch",
}

// DetflowSources returns the source taxonomy (for documentation output).
func DetflowSources() []string { return append([]string(nil), detflowSourceKinds...) }
