package lint

import (
	"go/ast"
	"go/types"
)

// SpanLeak enforces span hygiene module-wide: every span created with
// StartSpan / StartChild / StartSpanCtx must either be ended in the same
// function (an explicit or deferred .End(), including from a closure) or
// handed to the caller via a return. An un-ended span never goes back to
// the tracer's free list, so a leak silently shrinks the span pool and —
// worse — leaves a hole in every exported trace. Ownership transfers the
// analyzer cannot see (a span parked in a struct and ended elsewhere) may
// carry a reasoned //lint:ignore spanleak.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc:  "require every StartSpan/StartChild/StartSpanCtx span to be ended or returned to the caller",
	Run:  runSpanLeak,
}

// spanStarters names the constructors whose *Span result must be owned.
var spanStarters = map[string]bool{
	"StartSpan":    true,
	"StartChild":   true,
	"StartSpanCtx": true,
}

func runSpanLeak(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanLeaks(pass, info, fn)
		}
	}
}

// checkSpanLeaks flags span-producing calls in fn whose result is
// discarded or bound to a variable that is neither ended nor returned
// anywhere in fn's body (closures included).
func checkSpanLeaks(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	// First pass: which objects get .End() called, and which escape via a
	// return statement (ownership transferred to the caller).
	ended := map[types.Object]bool{}
	returned := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "End" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					ended[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := res.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
			}
		}
		return true
	})
	// Second pass: every span creation must be covered.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, name, ok := spanStartCall(info, n.Rhs[0])
			if !ok {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				// Parked in a field or index: ownership leaves the
				// function in a way the analyzer cannot follow; trust it.
				return true
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "span from %s discarded in %s; an un-ended span never returns to the pool — end it or explain with //lint:ignore spanleak", name, fn.Name.Name)
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				return true
			}
			if !ended[obj] && !returned[obj] {
				pass.Reportf(call.Pos(), "span %s from %s is never ended in %s; pair it with %s.End() (defer works) or return it — or explain with //lint:ignore spanleak", id.Name, name, fn.Name.Name, id.Name)
			}
		case *ast.ExprStmt:
			if call, name, ok := spanStartCall(info, n.X); ok {
				pass.Reportf(call.Pos(), "span from %s discarded in %s; an un-ended span never returns to the pool — end it or explain with //lint:ignore spanleak", name, fn.Name.Name)
			}
		}
		return true
	})
}

// spanStartCall reports whether e is a call to one of the span
// constructors returning a *Span, along with the constructor's name.
func spanStartCall(info *types.Info, e ast.Expr) (*ast.CallExpr, string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return nil, "", false
	}
	if !spanStarters[name] {
		return nil, "", false
	}
	tv, ok := info.Types[ast.Expr(call)]
	if !ok {
		return nil, "", false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return nil, "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Name() != "Span" {
		return nil, "", false
	}
	return call, name, true
}
