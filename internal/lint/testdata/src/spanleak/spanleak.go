// Package spanleak creates spans with and without matching End calls.
package spanleak

// Span is a stand-in for the pooled tracing span.
type Span struct{ name string }

// StartSpan opens a root span.
func StartSpan(name string) *Span { return &Span{name: name} }

// StartChild opens a child span.
func (s *Span) StartChild(name string) *Span { return &Span{name: name} }

// End closes the span.
func (s *Span) End() {}

func leaky() { // both spans below are flagged: never ended
	sp := StartSpan("leaky")
	child := sp.StartChild("inner")
	_ = child.name
}

func balanced() { // deferred and explicit End: clean
	sp := StartSpan("balanced")
	defer sp.End()
	child := sp.StartChild("inner")
	child.End()
}

func handsOff() *Span { // ownership transferred by return: clean
	sp := StartSpan("owner-transfers")
	return sp
}

func direct() *Span { return StartSpan("direct") } // returned directly: clean

func closureEnd() { // ended from a closure: clean
	sp := StartSpan("closure")
	f := func() { sp.End() }
	f()
}

func discarded() {
	StartSpan("discarded") // flagged: result dropped on the floor
	_ = StartSpan("blank") // flagged: blank assignment is still a leak
}

func parked() {
	//lint:ignore spanleak ended by the collector that drains the registry
	sp := StartSpan("registered")
	_ = sp.name
}
