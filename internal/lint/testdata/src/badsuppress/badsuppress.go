// Package badsuppress has a reason-less suppression: the suppression is
// reported as malformed and the violation underneath still surfaces.
package badsuppress

//lint:ignore floateq
func same(a, b float64) bool {
	return a == b
}
