// Package clean follows every sprintlint rule: epsilon float
// comparisons, handled errors, pointer-passed locks, documented exports.
package clean

import (
	"errors"
	"sync"
)

// Rate is a documented exported constant.
const Rate = 2.5

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func approxEqual(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func mayFail(ok bool) error {
	if !ok {
		return errors.New("failed")
	}
	return nil
}

func handle() error {
	if err := mayFail(true); err != nil {
		return err
	}
	return nil
}
