// Package lockcopy copies mutex-bearing structs by value.
package lockcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g guarded) get() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func byValue(g guarded) int {
	return g.n
}

func copyIt(g *guarded) int {
	c := *g
	return c.n
}

func declare(g *guarded) int {
	var c guarded = *g
	return c.n
}
