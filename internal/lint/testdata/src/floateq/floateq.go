// Package floateq compares floating-point values with == and !=.
package floateq

func equalish(a, b float64) bool {
	return a == b
}

func differs(x, y float32) bool {
	return x != y
}
