// Package errdrop discards error returns three different ways.
package errdrop

import "errors"

func fail() error { return errors.New("boom") }

func both() (int, error) { return 0, errors.New("boom") }

func sink(int) {}

func drop() {
	fail()
	_ = fail()
	n, _ := both()
	sink(n)
}
