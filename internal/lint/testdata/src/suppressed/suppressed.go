// Package suppressed carries violations that all have well-formed
// //lint:ignore suppressions, in both standalone and trailing placement.
package suppressed

import "errors"

func fail() error { return errors.New("x") }

func drop() {
	//lint:ignore errdrop best-effort call, result intentionally unused
	fail()
}

func same(a, b float64) bool {
	//lint:ignore floateq exact comparison is the fixture's point
	return a == b
}

func diff(a, b float64) bool {
	return a != b //lint:ignore floateq trailing suppression form
}
