// Package impure hosts one of every detflow source. On its own it lints
// clean (it is not a deterministic package); reached from the det
// root's entry points, every source below must surface.
package impure

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Stamp measures elapsed wall time.
func Stamp() float64 {
	start := time.Now()
	return time.Since(start).Seconds()
}

// Jitter draws from the global, unseeded source.
func Jitter() float64 {
	return rand.Float64()
}

// Env reads process state.
func Env() string {
	return os.Getenv("FIXTURE_MODE")
}

// Keys collects map keys without sorting: iteration order leaks.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the benign collect-then-sort idiom; it must stay quiet.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Spawn races a goroutine against the caller.
func Spawn() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// Clock reads the wall clock; the barrier unit test exempts this node by
// name (DetflowAllow) the way the real module exempts obs.Clock
// implementations.
func Clock() time.Time {
	return time.Now()
}
