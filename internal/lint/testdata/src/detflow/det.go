// Package detflow is the deterministic root of the taint fixture: it
// contains no nondeterminism of its own (nondeterm would catch that),
// but every exported entry point leans on the impure subpackage, and the
// interprocedural analyzer must report each source there with the chain
// back to the entry point.
package detflow

import "fixture/impure"

// Plan derives one deterministic plan through impure helpers.
func Plan() float64 {
	impure.Spawn()
	if impure.Env() == "" {
		return 0
	}
	if len(impure.Keys(map[string]int{"a": 1})) == 0 {
		return 0
	}
	if len(impure.SortedKeys(map[string]int{"a": 1})) == 0 {
		return 0
	}
	if impure.Clock().IsZero() {
		return 0
	}
	return impure.Stamp() + impure.Jitter()
}
