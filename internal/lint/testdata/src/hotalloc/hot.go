// Package hotalloc exercises the interprocedural hot-path allocation
// analyzer: the annotated root reaches allocating code through static
// calls, interface dispatch, a method value fired through a dynamic
// call, mutual recursion and a cross-package edge, and the analyzer must
// report each with its chain. The cold-path and amortized-self-append
// exemptions are the negative cases: Buffered.Consume and the error
// branch stay quiet.
package hotalloc

import (
	"fmt"

	"fixture/sub"
)

// Sink is an interface the root dispatches through; both module
// implementations join the closure.
type Sink interface {
	// Consume takes one sample.
	Consume(v float64)
}

// Buffered collects samples into a reused buffer.
type Buffered struct {
	samples []float64
}

// Consume appends into the long-lived buffer: the amortized self-append
// exemption keeps this quiet.
func (b *Buffered) Consume(v float64) {
	b.samples = append(b.samples, v)
}

// Boxed stores samples behind a fresh box per call.
type Boxed struct {
	last *float64
}

// Consume allocates a box for every sample — reached via interface
// dispatch from the root, so it must be flagged with the dispatch hop in
// the chain.
func (b *Boxed) Consume(v float64) {
	p := new(float64)
	*p = v
	b.last = p
}

// State carries the per-run scratch the hot loop reuses.
type State struct {
	buf   []float64
	count int
}

// grow is mutual recursion partner one; the closure walk must terminate
// on the cycle and still flag the allocation inside.
func (s *State) grow(n int) {
	if n <= 0 {
		return
	}
	s.buf = make([]float64, n)
	s.shrink(n - 1)
}

// shrink is mutual recursion partner two.
func (s *State) shrink(n int) {
	if n > 0 {
		s.grow(n / 2)
	}
}

// observe is the sampling hook the root fires through a function value:
// the self-append is exempt, the scratch slice literal is not.
func (s *State) observe(v float64) {
	s.count++
	s.buf = append(s.buf, v)
	tmp := []float64{v, 2 * v}
	s.buf = append(s.buf, tmp...)
}

// Hooks wires the method value into the replay — the reference edge that
// pulls observe into the closure.
func Hooks(s *State) func(float64) {
	return s.observe
}

// Run drives one replay. A runtime allocation budget over Run would only
// see the branches this exact input exercises; the static closure covers
// them all — including the rare spill branch below.
//
//sprint:hotpath replay loop must stay allocation-free in steady state
func Run(s *State, sink Sink, hook func(float64), rare bool) error {
	if s == nil {
		// Cold path: the block diverges with an error, so the
		// known-allocating fmt call is exempt.
		return fmt.Errorf("hotalloc: nil state")
	}
	defer func() { s.count = 0 }()
	sink.Consume(1)
	hook(2)
	s.grow(4)
	if rare {
		// A branch no happy-path test drives: testing.AllocsPerRun
		// misses it, the call-graph closure does not.
		sub.Spill(s.buf)
	}
	return nil
}
