// Package sub is the cross-package leg of the hotalloc fixture: its
// allocation is only reachable through the root package's annotated
// entry point, so the chain must cross the package boundary.
package sub

// Spill copies the overflow out of the hot buffer.
func Spill(buf []float64) {
	out := make([]float64, len(buf))
	copy(out, buf)
	keep(out)
}

var kept [][]float64

// keep parks a spilled copy; the package-level append is growth the
// exemption does not cover (the slice head is a plain identifier).
func keep(out []float64) {
	kept = append(kept, out)
}
