// Package ctxleak spawns goroutines with and without a cancellation path.
package ctxleak

import (
	"context"
	"sync"
)

func leaky(n int) { // no ctx: both spawns below are flagged
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { wg.Done() }()
	}
	go func() {}()
	wg.Wait()
}

func cancelable(ctx context.Context, n int) { // has ctx: clean
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() { done <- struct{}{} }()
	}
	for i := 0; i < n; i++ {
		select {
		case <-done:
		case <-ctx.Done():
			return
		}
	}
}

func forkJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	//lint:ignore ctxleak bounded fork-join; the worker always finishes before return
	go func() { wg.Done() }()
	wg.Wait()
}

func plain(n int) int { return n + 1 } // no goroutines: clean
