// Package exporteddoc leaves exported identifiers undocumented.
package exporteddoc

// Documented carries a doc comment and is not flagged.
type Documented struct{}

type Missing struct{}

func (m Missing) Do() {}

func Exported() {}

const Answer = 42

var Value = "v"

// Grouped constants share the group doc and are not flagged.
const (
	GroupedA = 1
	GroupedB = 2
)
