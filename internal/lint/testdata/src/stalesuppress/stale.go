// Package stalesuppress exercises suppression and directive hygiene:
// the used suppression is silent, while the stale one, the unknown
// analyzer, the malformed directive and both bad //sprint: placements
// are themselves diagnostics.
package stalesuppress

// eq is genuinely suppressed: floateq fires here and the ignore absorbs
// it, so the directive is used and must NOT be reported as stale.
func eq(a, b float64) bool {
	return a == b //lint:ignore floateq exact sentinel comparison, the fixture's one used suppression
}

// add carries a suppression whose analyzer never fires on this line:
// the staleness check must demand its deletion.
func add(a, b float64) float64 {
	//lint:ignore floateq no comparison happens here, this directive is dead
	return a + b
}

// scale names an analyzer that does not exist.
func scale(a float64) float64 {
	//lint:ignore nosuchanalyzer typo'd analyzer names must not silently no-op
	return 2 * a
}

// half carries a directive with no reason — malformed.
func half(a float64) float64 {
	//lint:ignore floateq
	return a / 2
}

// late has a hotpath annotation in its body instead of its doc comment,
// where it is inert; the driver must flag the placement.
func late(a float64) float64 {
	//sprint:hotpath this placement does nothing
	return a + 1
}

//sprint:frobnicate unknown directives are flagged too

var _ = eq
var _ = add
var _ = scale
var _ = half
var _ = late
