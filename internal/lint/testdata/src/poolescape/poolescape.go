// Package poolescape exercises closures over pooled slab objects.
package poolescape

// query is the fixture's pooled type (configured via PooledTypes).
type query struct {
	id      int32
	service float64
}

// plain is an ordinary type; capturing it is fine.
type plain struct {
	n int
}

type engine struct {
	pool  []query
	hooks []func()
}

// schedule captures a *query in a deferred hook: flagged — by the time
// the hook runs the slot may host a different query.
func (e *engine) schedule(qi int32) {
	q := &e.pool[qi]
	e.hooks = append(e.hooks, func() {
		q.service = 0 // flagged: pooled object captured by closure
	})
}

// scheduleValue captures a query by value: also flagged — a stale copy
// diverges from the slab just as silently.
func (e *engine) scheduleValue(qi int32) {
	q := e.pool[qi]
	e.hooks = append(e.hooks, func() {
		_ = q.id // flagged
	})
}

// scheduleByIndex captures only the index and resolves it at call time:
// clean, and the pattern the analyzer steers toward.
func (e *engine) scheduleByIndex(qi int32) {
	e.hooks = append(e.hooks, func() {
		e.pool[qi].service = 0
	})
}

// localParam: a closure's own query parameter is not a capture.
func localParam(fn func(q query)) {
	fn(query{})
}

// localInside declares the query inside the literal: clean.
func localInside() func() int32 {
	return func() int32 {
		q := query{id: 1}
		return q.id
	}
}

// plainCapture captures a non-pooled type: clean.
func plainCapture(p *plain) func() {
	return func() { p.n++ }
}

// drain holds a query reference across a synchronous call that cannot
// outlive the run; the suppression records the reasoning.
func (e *engine) drain(qi int32) {
	q := &e.pool[qi]
	run(
		//lint:ignore poolescape synchronous visitor: runs before drain returns, slot cannot be recycled underneath it
		func() { q.service = 0 },
	)
}

func run(fn func()) { fn() }
