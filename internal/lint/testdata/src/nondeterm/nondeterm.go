// Package nondeterm violates every simulator-determinism rule: it reads
// the wall clock, draws from the global math/rand source, and iterates a
// map.
package nondeterm

import (
	"math/rand"
	"time"
)

func stamp() float64 {
	now := time.Now()
	return float64(now.Unix()) + rand.Float64()
}

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
