package lint

import (
	"go/ast"
	"go/types"
)

// LockCopy is a lightweight copylocks check: it flags by-value receivers,
// parameters and results of types containing sync.Mutex or sync.RWMutex,
// plus plain-assignment and range copies of such values. A copied mutex
// is a fresh unlocked mutex — the copy silently stops guarding whatever
// the original guarded (internal/obs's registry, histogram and tracer
// types all embed locks). Unlike go vet's copylocks it does not chase
// call arguments or returns through interfaces; it exists so the lock
// discipline is enforced by the same gate as the other project rules.
var LockCopy = &Analyzer{
	Name: "lockcopy-lite",
	Doc:  "forbid by-value copies of structs containing sync.Mutex/sync.RWMutex",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(pass, n.Recv, "receiver")
				if n.Type.Params != nil {
					checkFieldList(pass, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldList(pass, n.Type.Results, "result")
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if isCopySource(rhs) && exprContainsLock(info, rhs) {
						pass.Reportf(rhs.Pos(), "assignment copies %s, which contains a sync mutex; use a pointer", typeName(info, rhs))
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && !isBlank(n.Value) && exprContainsLock(info, n.Value) {
					pass.Reportf(n.Value.Pos(), "range copies %s, which contains a sync mutex; iterate by index or store pointers", typeName(info, n.Value))
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if isCopySource(v) && exprContainsLock(info, v) {
						pass.Reportf(v.Pos(), "declaration copies %s, which contains a sync mutex; use a pointer", typeName(info, v))
					}
				}
			}
			return true
		})
	}
}

// checkFieldList flags by-value lock-containing entries of a receiver,
// parameter or result list.
func checkFieldList(pass *Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if containsLock(tv.Type, nil) {
			pass.Reportf(field.Type.Pos(), "by-value %s of type %s, which contains a sync mutex; use a pointer", kind, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
		}
	}
}

// isCopySource reports whether expr reads an existing value (as opposed
// to constructing a fresh one, which is initialisation, not a copy).
func isCopySource(expr ast.Expr) bool {
	switch unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// exprContainsLock reports whether expr's type holds a mutex by value.
func exprContainsLock(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	return containsLock(tv.Type, nil)
}

// containsLock walks t looking for sync.Mutex / sync.RWMutex held by
// value. Pointers, slices, maps and channels stop the walk: they share
// the lock rather than copy it.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
				return true
			}
		}
		return containsLock(u.Underlying(), seen)
	case *types.Alias:
		return containsLock(types.Unalias(t), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// typeName renders expr's type relative to nothing (fully qualified) for
// diagnostics.
func typeName(info *types.Info, expr ast.Expr) string {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return "value"
	}
	return types.TypeString(tv.Type, nil)
}
