package lint

import "testing"

// FuzzSuppressionParse hammers both textual entry points that consume
// repository-controlled but human-typed input: the //lint:ignore
// directive parser and the baseline-ledger parser. The contract under
// fuzz is "malformed input is reported as an error, never a panic", and
// for well-formed directives the parts are non-empty.
func FuzzSuppressionParse(f *testing.F) {
	f.Add("//lint:ignore errdrop best-effort flush")
	f.Add("//lint:ignore floateq,errdrop shared reason")
	f.Add("//lint:ignore")
	f.Add("//lint:ignore a,,b empty name")
	f.Add("// unrelated comment")
	f.Add(`{"version":1,"counts":{"errdrop":2},"suppressions":[{"file":"a.go","analyzers":["errdrop"],"reason":"x"}]}`)
	f.Add(`{"version":99}`)
	f.Add(`{not json`)
	f.Fuzz(func(t *testing.T, s string) {
		names, reason, ok, err := ParseIgnoreDirective(s)
		if !ok && err != nil {
			t.Errorf("not-a-directive must not carry an error: %q -> %v", s, err)
		}
		if ok && err == nil {
			if len(names) == 0 || reason == "" {
				t.Errorf("well-formed directive with empty parts: %q -> %v %q", s, names, reason)
			}
			for _, n := range names {
				if n == "" {
					t.Errorf("well-formed directive with empty analyzer name: %q", s)
				}
			}
		}

		b, err := ParseBaseline([]byte(s))
		if err == nil && b.Version != BaselineVersion {
			t.Errorf("accepted baseline with version %d: %q", b.Version, s)
		}
	})
}
