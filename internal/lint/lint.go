// Package lint implements sprintlint, this repository's project-specific
// static-analysis pass. The paper's methodology rests on the queue
// simulator being a reproducible function of its inputs: effective
// sprint-rate calibration (Section 2.3) replays the simulator until it
// matches observed response times, and the annealing search (Section 4)
// assumes repeated evaluations are comparable. The analyzers here enforce
// the invariants that keep that true — no wall-clock or global-RNG reads
// in deterministic packages, no bare float equality, no silently dropped
// errors — plus two hygiene checks (lock copies, exported docs).
//
// The driver is stdlib-only (go/parser, go/ast, go/types): it loads every
// package in the module, type-checks it, runs each analyzer, and reports
// file:line diagnostics. Diagnostics can be suppressed per line with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// either trailing the offending line or on the line directly above it.
// The reason is mandatory; a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"sync"
)

// Diagnostic is one analyzer finding, positioned relative to the module
// root so output is stable across machines.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	// Path is the package's import path; Rel is the path relative to the
	// module root ("." for the root package); Root is the module root
	// directory (diagnostic file names are relative to it).
	Path string
	Rel  string
	Dir  string
	Root string
	Fset *token.FileSet
	// Files holds the package's non-test syntax trees, sorted by file
	// name for deterministic traversal.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// callFuns memoizes the set of expressions in call-function position
	// (built once, serially, by the call-graph builder).
	callFuns map[ast.Expr]bool
}

// Module is the whole loaded module plus the interprocedural state the
// call-graph-aware analyzers share. The graph and per-analyzer facts are
// built once (lazily, or eagerly by the parallel driver before it fans
// out) and are read-only afterwards, so per-package passes can run
// concurrently.
type Module struct {
	Pkgs []*Package

	graphOnce sync.Once
	graph     *CallGraph

	hotOnce sync.Once
	hot     *hotallocFacts

	detOnce sync.Once
	det     *detflowFacts
}

// Graph returns the module's call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	m.graphOnce.Do(func() { m.graph = buildCallGraph(m.Pkgs) })
	return m.graph
}

// pkgByRel resolves a module-relative package path, nil when absent.
func (m *Module) pkgByRel(rel string) *Package {
	for _, p := range m.Pkgs {
		if p.Rel == rel {
			return p
		}
	}
	return nil
}

// Pass carries one analyzer's run over one package and collects its
// diagnostics. Mod gives interprocedural analyzers the module-wide call
// graph; file-local analyzers never touch it.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Mod      *Module
	Cfg      *Config
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     p.Pkg.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// relFile renders a diagnostic file name relative to the module root so
// output is stable across checkouts.
func (p *Package) relFile(name string) string {
	if p.Root == "" {
		return name
	}
	if rel, err := filepath.Rel(p.Root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full suite in reporting order. The final two are
// the interprocedural, call-graph-aware analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NonDeterm,
		FloatEq,
		ErrDrop,
		LockCopy,
		ExportedDoc,
		CtxLeak,
		PoolEscape,
		SpanLeak,
		HotAlloc,
		DetFlow,
	}
}

// AnalyzerByName resolves one analyzer; nil when unknown.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run loads the module rooted at (or above) dir, runs the selected
// analyzers (nil or empty means all) over every package, applies
// //lint:ignore suppressions, and returns the surviving diagnostics
// sorted by position. An error means the module could not be loaded or
// type-checked — distinct from "diagnostics found". Packages are
// analyzed in parallel; output order is deterministic (see RunModule).
func Run(dir string, cfg *Config, only []string) ([]Diagnostic, error) {
	res, err := RunModule(dir, RunOpts{Config: cfg, Only: only})
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// matchesPkg reports whether a config entry (a module-relative package
// path, "." for the root) names pkg.
func matchesPkg(pkg *Package, entry string) bool {
	return pkg.Rel == entry
}

// pkgMatchesAny reports whether any entry names pkg.
func pkgMatchesAny(pkg *Package, entries []string) bool {
	for _, e := range entries {
		if matchesPkg(pkg, e) {
			return true
		}
	}
	return false
}

// funcDisplayName renders the module-relative name of fn used by the
// FloatEqAllow config list, e.g. "internal/stats.ApproxEqual".
func funcDisplayName(pkg *Package, fn *ast.FuncDecl) string {
	if fn == nil || fn.Name == nil {
		return ""
	}
	name := fn.Name.Name
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		name = recvTypeName(fn.Recv.List[0].Type) + "." + name
	}
	if pkg.Rel == "." {
		return name
	}
	return pkg.Rel + "." + name
}

// recvTypeName extracts the receiver's base type name ("T" for both T and
// *T receivers).
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// globMatch matches name against pattern, where a trailing '*' in the
// pattern matches any suffix ("fmt.Fprint*" covers Fprint, Fprintf,
// Fprintln).
func globMatch(pattern, name string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(name, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == name
}

// matchesAnyGlob matches name against a pattern list.
func matchesAnyGlob(patterns []string, name string) bool {
	for _, p := range patterns {
		if globMatch(p, name) {
			return true
		}
	}
	return false
}
