package lint

// Config is the project policy the analyzers enforce. Paths are
// module-relative ("." names the root package) so the same config works
// for the real module and for test fixtures.
type Config struct {
	// DeterministicPackages must be reproducible functions of their
	// inputs: nondeterm forbids wall-clock reads, global math/rand use
	// and map iteration inside them.
	DeterministicPackages []string
	// FloatEqAllow lists functions (as "relpkg.Func" or
	// "relpkg.Type.Method") whose bodies may compare floats exactly —
	// the epsilon helpers themselves.
	FloatEqAllow []string
	// ErrDropAllow lists callees whose error results may be discarded,
	// matched against the callee's full name with an optional trailing
	// '*' glob (e.g. "fmt.Fprint*", "(*strings.Builder).Write*").
	ErrDropAllow []string
	// DocPackages lists packages whose exported identifiers must carry
	// doc comments.
	DocPackages []string
	// CtxPackages lists concurrency-bearing packages where ctxleak
	// forbids spawning goroutines from functions that take no
	// context.Context (callers would have no cancellation path).
	CtxPackages []string
	// PooledTypes lists slab-pooled types (as "relpkg.TypeName", bare
	// "TypeName" for the root package) whose values must not be captured
	// by closures: pooled slots are recycled, so a captured reference
	// goes stale when the slot is re-tenanted. poolescape flags function
	// literals with such free variables inside the declaring package.
	PooledTypes []string
	// HotAllocCallees are callee patterns (calleeName globs) hotalloc
	// treats as always-allocating when reached from a //sprint:hotpath
	// closure; empty means the built-in stdlib list (fmt.*, log.*, ...).
	HotAllocCallees []string
	// DetflowAllow are call-graph node-name globs detflow treats as
	// barriers — neither reported nor traversed. These are the injected
	// abstractions (obs.Clock implementations, seeded RNG plumbing) the
	// determinism contract already accounts for; empty means the
	// built-in list.
	DetflowAllow []string
}

// DefaultConfig returns the policy for this repository.
func DefaultConfig() *Config {
	return &Config{
		// The model-side packages the paper's calibration and annealing
		// replay: identical inputs must yield identical outputs.
		DeterministicPackages: []string{
			"internal/queuesim",
			"internal/queuesim/analytic",
			"internal/queuesim/dispatch",
			"internal/sim",
			"internal/forest",
			"internal/dist",
			"internal/calib",
			"internal/explore",
			"internal/sweep",
			// Chaos replays are fingerprinted: same seed, same timeline.
			"internal/fault",
			"internal/online",
			// Tier decisions are replayable provenance: same task, same
			// engine state, same ladder answer.
			"internal/tier",
		},
		FloatEqAllow: []string{
			"internal/stats.ApproxEqual",
			"internal/stats.ApproxZero",
		},
		ErrDropAllow: []string{
			// Console writes: a failed stdout/stderr print has no
			// recovery path in a CLI.
			"fmt.Print*",
			"fmt.Fprint*",
			// In-memory writers never fail.
			"(*strings.Builder).Write*",
			"(*bytes.Buffer).Write*",
		},
		DocPackages: []string{"."},
		// The packages that fan work out to goroutines: anything they
		// spawn must be cancelable by the caller.
		CtxPackages: []string{
			"internal/sweep",
			"internal/calib",
			"internal/explore",
			"internal/colocate",
			"internal/httpharness",
			"internal/profiler",
			"internal/queuesim",
			"internal/online",
			"internal/fault",
			// The serving daemon: tenant workers and the snapshot loop
			// all hang off the server context. (Not a deterministic
			// package — sprintd lives on the wall clock.)
			"internal/server",
		},
		// The allocation-free hot path's slab-resident types: queries in
		// the queue simulator's pool, event slots in the pooled engine.
		PooledTypes: []string{
			"internal/queuesim.query",
			"internal/sim.slot",
		},
	}
}
