package lint

import (
	"reflect"
	"testing"
)

func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		in     string
		names  []string
		reason string
		ok     bool
		err    bool
	}{
		{"// just a comment", nil, "", false, false},
		{"//lint:ignoreX not the directive", nil, "", false, false},
		{"//lint:ignore errdrop best-effort flush", []string{"errdrop"}, "best-effort flush", true, false},
		{"  //  lint:ignore errdrop padded comment  ", []string{"errdrop"}, "padded comment", true, false},
		{"lint:ignore floateq,errdrop shared reason", []string{"floateq", "errdrop"}, "shared reason", true, false},
		{"//lint:ignore errdrop", nil, "", true, true}, // no reason
		{"//lint:ignore", nil, "", true, true},         // nothing at all
		{"//lint:ignore a,,b empty name", nil, "", true, true},
	}
	for _, c := range cases {
		names, reason, ok, err := ParseIgnoreDirective(c.in)
		if ok != c.ok || (err != nil) != c.err {
			t.Errorf("ParseIgnoreDirective(%q): ok=%v err=%v, want ok=%v err=%v", c.in, ok, err, c.ok, c.err)
			continue
		}
		if c.err || !c.ok {
			continue
		}
		if !reflect.DeepEqual(names, c.names) || reason != c.reason {
			t.Errorf("ParseIgnoreDirective(%q) = %v %q, want %v %q", c.in, names, reason, c.names, c.reason)
		}
	}
}
