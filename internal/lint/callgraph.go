package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the interprocedural
// analyzers (hotalloc, detflow) walk. The graph is a conservative
// over-approximation: every call that *could* happen at runtime has an
// edge, at the cost of some edges that never will. Concretely:
//
//   - Static calls — a direct call to a package function or to a method
//     whose receiver's concrete type is known — edge to exactly that
//     function.
//   - Interface method calls edge to every method of every named type
//     declared in the module that implements the interface (by value or
//     pointer receiver). The callee set is closed over the module, not
//     the program: implementations living outside the module are
//     invisible, which is the standard whole-module assumption.
//   - Function literals are their own nodes (named "parent$n"). Creating
//     a closure adds an edge from the creating function to the literal:
//     a closure that is never invoked is over-approximated as invoked,
//     which keeps literals registered as callbacks (sim.Register) or
//     handed to stdlib drivers (sort.Slice) inside the closure of
//     whoever built them.
//   - Referencing a function or method as a *value* (stored, passed,
//     returned) likewise adds an edge from the referencing function:
//     once a function value escapes into a variable the analysis no
//     longer tracks which call site fires it, so the reference site is
//     charged with the call.
//   - Calls through function-typed values (x.cbs[i](arg), f()) edge to
//     every node whose value was taken somewhere in the module and whose
//     signature is identical to the call's.
//
// Edges carry the call site position and a kind so diagnostics can
// render honest chains ("via interface obs.QueryTracer.Event").

// EdgeKind classifies how a call-graph edge was derived.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call with a statically known callee.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a call through an interface method, resolved to
	// one conservative implementation.
	EdgeInterface
	// EdgeClosure is the creation of a function literal (the literal may
	// run whenever its creator does, or later).
	EdgeClosure
	// EdgeFuncValue is a reference to a function or method as a value
	// (the referenced function may be called wherever the value flows).
	EdgeFuncValue
	// EdgeDynamic is a call through a function-typed value, resolved to
	// one signature-compatible value-referenced function.
	EdgeDynamic
)

// String renders the kind for chain diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "call"
	case EdgeInterface:
		return "interface dispatch"
	case EdgeClosure:
		return "closure"
	case EdgeFuncValue:
		return "function value"
	case EdgeDynamic:
		return "dynamic call"
	}
	return "edge"
}

// Edge is one may-call relation.
type Edge struct {
	Callee *Node
	Kind   EdgeKind
	// Pos is the call or reference site inside the caller.
	Pos token.Pos
	// Via names the interface method for EdgeInterface edges
	// ("obs.QueryTracer.Event"), empty otherwise.
	Via string
}

// Node is one function in the call graph: a declared function or method
// (Fn non-nil) or a function literal (Lit non-nil).
type Node struct {
	// Name is the stable module-relative display name, e.g.
	// "internal/queuesim.(*Runner).RunInto" or "internal/sim.reset$1".
	Name string
	Pkg  *Package
	Fn   *types.Func   // nil for literals
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declared functions
	Sig  *types.Signature

	// Out edges, sorted by (callee name, position) for deterministic
	// traversal.
	Out []Edge

	// HotPath and HotPathReason record a //sprint:hotpath annotation on
	// the declaration (see hotpath.go).
	HotPath       bool
	HotPathReason string
}

// Body returns the node's function body (nil for bodiless declarations).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	if n.Decl != nil {
		return n.Decl.Body
	}
	return nil
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return token.NoPos
}

// CallGraph is the module-wide may-call graph.
type CallGraph struct {
	// Nodes in deterministic order (package, then position).
	Nodes []*Node
	// byFn resolves declared functions; literals are only reachable
	// through edges.
	byFn map[*types.Func]*Node
}

// NodeFor resolves the node of a declared function, nil when fn is not
// declared in the module.
func (g *CallGraph) NodeFor(fn *types.Func) *Node { return g.byFn[fn] }

// buildCallGraph constructs the graph over every loaded package.
func buildCallGraph(pkgs []*Package) *CallGraph {
	b := &graphBuilder{
		g:          &CallGraph{byFn: map[*types.Func]*Node{}},
		valueRefed: map[*Node]bool{},
	}
	if len(pkgs) > 0 {
		b.modPath = pkgs[0].Path
		if pkgs[0].Rel != "." {
			b.modPath = strings.TrimSuffix(pkgs[0].Path, "/"+pkgs[0].Rel)
		}
	}
	// Pass 1: declare nodes for every function, method and literal, and
	// collect the module's named types for interface resolution.
	for _, pkg := range pkgs {
		b.declarePackage(pkg)
	}
	// Pass 2: add edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.addEdges(pkg, b.g.byFn[obj], fd.Body)
			}
		}
	}
	// Pass 3: resolve dynamic calls against the value-referenced set,
	// then sort adjacency lists.
	b.resolveDynamic()
	for _, n := range b.g.Nodes {
		sortEdges(n.Out)
	}
	return b.g
}

type dynCall struct {
	caller *Node
	sig    *types.Signature
	pos    token.Pos
}

type graphBuilder struct {
	g *CallGraph
	// namedTypes are the module's named (non-interface) types, for
	// interface-dispatch resolution.
	namedTypes []*types.Named
	// ifaceSites are interface-method call sites awaiting resolution.
	ifaceSites []ifaceSite
	// valueRefed marks nodes whose function value was taken; dynCalls
	// are calls through function values, matched by signature.
	valueRefed map[*Node]bool
	dynCalls   []dynCall
	// litCount numbers literals per declared parent for stable names.
	litCount map[*Node]int
	// modPath is the module's import path, trimmed from type names in
	// chain rendering ("internal/core.Model", not "mdsprint/internal/…").
	modPath string
}

// shortType renders a type with module-relative package qualifiers, so
// chain annotations match node names.
func (b *graphBuilder) shortType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string {
		if rest, ok := strings.CutPrefix(p.Path(), b.modPath+"/"); ok {
			return rest
		}
		return p.Path()
	})
}

type ifaceSite struct {
	caller *Node
	iface  *types.Interface
	method *types.Func
	pos    token.Pos
	via    string
}

// declarePackage creates nodes for pkg's declared functions and literals
// and records its named types.
func (b *graphBuilder) declarePackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{
					Name: nodeName(pkg, obj),
					Pkg:  pkg,
					Fn:   obj,
					Decl: d,
					Sig:  obj.Type().(*types.Signature),
				}
				n.HotPath, n.HotPathReason = hotPathAnnotation(d)
				b.g.Nodes = append(b.g.Nodes, n)
				b.g.byFn[obj] = n
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					if named, ok := tn.Type().(*types.Named); ok {
						if _, isIface := named.Underlying().(*types.Interface); !isIface {
							b.namedTypes = append(b.namedTypes, named)
						}
					}
				}
			}
		}
	}
}

// addEdges walks body attributing edges to node, descending into nested
// literals with their own nodes.
func (b *graphBuilder) addEdges(pkg *Package, node *Node, body *ast.BlockStmt) {
	if node == nil || body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := b.literalNode(pkg, node, n)
			node.Out = append(node.Out, Edge{Callee: lit, Kind: EdgeClosure, Pos: n.Pos()})
			b.addEdges(pkg, lit, n.Body)
			return false // literal body attributed to the literal node
		case *ast.CallExpr:
			b.addCallEdge(pkg, node, n)
			// Arguments (including function values) are inspected by the
			// surrounding traversal.
		case *ast.Ident:
			b.addValueRef(pkg, node, n, n.Pos())
		case *ast.SelectorExpr:
			// Method values (x.M used as a value, not called) resolve
			// through Selections; the Sel ident resolves through Uses.
			if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					if !isCallFun(pkg, n) {
						b.markValueRef(node, fn, n.Pos())
					}
				}
			}
			return true
		}
		return true
	})
}

// literalNode creates (or names) the node of a literal owned by parent.
func (b *graphBuilder) literalNode(pkg *Package, parent *Node, lit *ast.FuncLit) *Node {
	if b.litCount == nil {
		b.litCount = map[*Node]int{}
	}
	b.litCount[parent]++
	sig, _ := pkg.Info.Types[lit].Type.(*types.Signature)
	n := &Node{
		Name: fmt.Sprintf("%s$%d", parent.Name, b.litCount[parent]),
		Pkg:  pkg,
		Lit:  lit,
		Sig:  sig,
	}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// addCallEdge classifies one call expression.
func (b *graphBuilder) addCallEdge(pkg *Package, caller *Node, call *ast.CallExpr) {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		// Immediately-invoked literal: the closure edge added when the
		// traversal reaches the literal already covers it; recording a
		// dynamic call here would smear the site over every same-signature
		// function in the module.
		return
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			b.edgeTo(caller, obj, EdgeStatic, call.Pos(), "")
			return
		case *types.Builtin, *types.TypeName:
			return // builtins and conversions are not calls
		case *types.Var, nil:
			// Call through a function-typed variable (or a literal called
			// in place, handled by the closure edge).
			if sig, ok := pkg.Info.Types[call.Fun].Type.(*types.Signature); ok {
				b.dynCalls = append(b.dynCalls, dynCall{caller: caller, sig: sig, pos: call.Pos()})
			}
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			// Method call: interface dispatch or concrete.
			if fn, ok := sel.Obj().(*types.Func); ok {
				recv := sel.Recv()
				if types.IsInterface(recv) {
					iface, _ := recv.Underlying().(*types.Interface)
					if iface != nil {
						b.ifaceSites = append(b.ifaceSites, ifaceSite{
							caller: caller,
							iface:  iface,
							method: fn,
							pos:    call.Pos(),
							via:    b.shortType(recv) + "." + fn.Name(),
						})
					}
					return
				}
				b.edgeTo(caller, fn, EdgeStatic, call.Pos(), "")
				return
			}
			// Struct field of function type: dynamic call.
			if sig, ok := sel.Obj().Type().(*types.Signature); ok {
				b.dynCalls = append(b.dynCalls, dynCall{caller: caller, sig: sig, pos: call.Pos()})
			}
			return
		}
		// Package-qualified call (pkg.F) or conversion.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			b.edgeTo(caller, fn, EdgeStatic, call.Pos(), "")
			return
		}
	default:
		// Indexed function values, immediately-invoked expressions, etc.
		if sig, ok := pkg.Info.Types[call.Fun].Type.(*types.Signature); ok {
			b.dynCalls = append(b.dynCalls, dynCall{caller: caller, sig: sig, pos: call.Pos()})
		}
	}
}

// addValueRef records a plain identifier reference to a declared
// function outside call position.
func (b *graphBuilder) addValueRef(pkg *Package, caller *Node, id *ast.Ident, pos token.Pos) {
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if isCallIdent(pkg, id) {
		return
	}
	b.markValueRef(caller, fn, pos)
}

// edgeTo adds a static-call-style edge to a declared function, ignoring
// callees outside the module (stdlib) — those are leaves the analyzers
// model via allowlists/denylists instead.
func (b *graphBuilder) edgeTo(caller *Node, fn *types.Func, kind EdgeKind, pos token.Pos, via string) {
	target := b.g.byFn[fn]
	if target == nil {
		return
	}
	caller.Out = append(caller.Out, Edge{Callee: target, Kind: kind, Pos: pos, Via: via})
}

// markValueRef adds a function-value edge and marks the target callable
// through dynamic calls.
func (b *graphBuilder) markValueRef(caller *Node, fn *types.Func, pos token.Pos) {
	target := b.g.byFn[fn]
	if target == nil {
		return // external function
	}
	caller.Out = append(caller.Out, Edge{Callee: target, Kind: EdgeFuncValue, Pos: pos})
	b.valueRefed[target] = true
}

// resolveDynamic closes interface sites over the module's named types
// and dynamic calls over the value-referenced set.
func (b *graphBuilder) resolveDynamic() {
	// Literals are value-referenced by construction: a closure's value
	// exists the moment it is created.
	for _, n := range b.g.Nodes {
		if n.Lit != nil {
			b.valueRefed[n] = true
		}
	}
	for _, site := range b.ifaceSites {
		for _, named := range b.namedTypes {
			if !types.Implements(named, site.iface) && !types.Implements(types.NewPointer(named), site.iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, site.method.Pkg(), site.method.Name())
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if target := b.g.byFn[fn]; target != nil {
				site.caller.Out = append(site.caller.Out, Edge{
					Callee: target, Kind: EdgeInterface, Pos: site.pos, Via: site.via,
				})
			}
		}
	}
	if len(b.dynCalls) == 0 {
		return
	}
	// Deterministic candidate order for dynamic resolution.
	candidates := make([]*Node, 0, len(b.valueRefed))
	for n := range b.valueRefed {
		candidates = append(candidates, n)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Name < candidates[j].Name })
	for _, dc := range b.dynCalls {
		if dc.sig == nil {
			continue
		}
		for _, cand := range candidates {
			if cand.Sig == nil || !identicalSig(dc.sig, cand.Sig) {
				continue
			}
			dc.caller.Out = append(dc.caller.Out, Edge{Callee: cand, Kind: EdgeDynamic, Pos: dc.pos})
		}
	}
}

// identicalSig compares two signatures ignoring receivers (a method
// value's receiver is already bound when it flows as a value).
func identicalSig(a, b *types.Signature) bool {
	return types.Identical(
		types.NewSignatureType(nil, nil, nil, a.Params(), a.Results(), a.Variadic()),
		types.NewSignatureType(nil, nil, nil, b.Params(), b.Results(), b.Variadic()),
	)
}

// isCallFun reports whether sel is the Fun of a call (so x.M() is a call,
// not a method value). The parser links this through the expression's
// parent, which Inspect does not expose; instead the builder records
// calls first, so value detection only needs to know whether this exact
// selector is some call's Fun — tracked via position sets.
func isCallFun(pkg *Package, sel *ast.SelectorExpr) bool {
	return callFuns(pkg)[sel]
}

func isCallIdent(pkg *Package, id *ast.Ident) bool {
	return callFuns(pkg)[id]
}

// callFuns memoizes, per package, the set of expressions appearing in
// call-function position (with parens stripped).
func callFuns(pkg *Package) map[ast.Expr]bool {
	if pkg.callFuns != nil {
		return pkg.callFuns
	}
	set := map[ast.Expr]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				set[unparen(call.Fun)] = true
			}
			return true
		})
	}
	pkg.callFuns = set
	return set
}

// nodeName renders a stable module-relative function name:
// "internal/queuesim.(*Runner).RunInto" for subpackages, and the module
// path's base for the root package ("mdsprint.BestTimeout").
func nodeName(pkg *Package, fn *types.Func) string {
	var sb strings.Builder
	if pkg.Rel != "" && pkg.Rel != "." {
		sb.WriteString(pkg.Rel)
		sb.WriteString(".")
	} else if base := pathBase(pkg.Path); base != "" {
		sb.WriteString(base)
		sb.WriteString(".")
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			sb.WriteString("(*" + typeBaseName(ptr.Elem()) + ").")
		} else {
			sb.WriteString(typeBaseName(t) + ".")
		}
	}
	sb.WriteString(fn.Name())
	return sb.String()
}

// pathBase returns the last element of an import path.
func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// typeBaseName returns a named type's bare name.
func typeBaseName(t types.Type) string {
	if named, ok := t.(*types.Named); ok && named.Obj() != nil {
		return named.Obj().Name()
	}
	return types.TypeString(t, func(p *types.Package) string { return "" })
}

// sortEdges orders an adjacency list for deterministic BFS.
func sortEdges(edges []Edge) {
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].Callee.Name != edges[j].Callee.Name {
			return edges[i].Callee.Name < edges[j].Callee.Name
		}
		return edges[i].Pos < edges[j].Pos
	})
}

// Reach computes the closure of roots over the graph, returning for each
// reached node the edge it was first discovered through (BFS parents, so
// chains are shortest). Roots map to a nil parent. allow filters nodes:
// a node for which allow returns false is neither reported nor traversed
// (the barrier the detflow allowlist uses). A nil allow admits all.
func (g *CallGraph) Reach(roots []*Node, allow func(*Node) bool) map[*Node]*ReachedVia {
	reached := map[*Node]*ReachedVia{}
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if r == nil || reached[r] != nil {
			continue
		}
		if allow != nil && !allow(r) {
			continue
		}
		reached[r] = &ReachedVia{Node: r}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i := range cur.Out {
			e := &cur.Out[i]
			if reached[e.Callee] != nil {
				continue
			}
			if allow != nil && !allow(e.Callee) {
				continue
			}
			reached[e.Callee] = &ReachedVia{Node: e.Callee, From: reached[cur], Edge: e}
			queue = append(queue, e.Callee)
		}
	}
	return reached
}

// ReachedVia is one node's discovery record: the BFS-shortest path to a
// root is recovered by following From.
type ReachedVia struct {
	Node *Node
	From *ReachedVia // nil for roots
	Edge *Edge       // edge From -> Node, nil for roots
}

// Root returns the chain's root node.
func (r *ReachedVia) Root() *Node {
	for r.From != nil {
		r = r.From
	}
	return r.Node
}

// Chain renders the call chain root → ... → node. Interface hops are
// annotated with the dispatching method. The root is included; a root
// node's chain is just its own name.
func (r *ReachedVia) Chain() string {
	var parts []string
	for cur := r; cur != nil; cur = cur.From {
		name := cur.Node.Name
		if cur.Edge != nil && cur.Edge.Kind == EdgeInterface {
			name += " [via " + cur.Edge.Via + "]"
		}
		parts = append(parts, name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " → ")
}
