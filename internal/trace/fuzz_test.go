package trace

import (
	"os"
	"path/filepath"
	"testing"

	"mdsprint/internal/obs"
)

// FuzzLoadEvents feeds arbitrary bytes through the JSONL event reader:
// it must never panic, and any log it accepts must round-trip through
// SaveEvents/LoadEvents unchanged.
func FuzzLoadEvents(f *testing.F) {
	valid := []obs.QueryEvent{
		{Type: obs.EvArrival, Time: 0.5, Query: 0, Value: 1.25},
		{Type: obs.EvServiceStart, Time: 0.5, Query: 0, Class: "MixI"},
		{Type: obs.EvSprintStart, Time: 1.0, Query: 0, Value: 0.4},
		{Type: obs.EvDeparture, Time: 2.5, Query: 0, Value: 2.0},
	}
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.jsonl")
	if err := SaveEvents(seedPath, valid); err != nil {
		f.Fatal(err)
	}
	seedBytes, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seedBytes)
	f.Add([]byte(""))
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(`{"type":"arrival","t":1e999}`))
	f.Add([]byte(`{"type":"arrival"`))
	f.Add([]byte("null\n"))
	f.Add([]byte("[1,2,3]\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "in.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip() // tmpfs hiccup, nothing to test
		}
		events, err := LoadEvents(path) // must never panic
		if err != nil {
			return
		}
		// Accepted input must round-trip exactly.
		out := filepath.Join(t.TempDir(), "out.jsonl")
		if err := SaveEvents(out, events); err != nil {
			t.Fatalf("SaveEvents on accepted input: %v", err)
		}
		again, err := LoadEvents(out)
		if err != nil {
			t.Fatalf("LoadEvents round-trip: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round-trip length %d != %d", len(again), len(events))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("round-trip event %d: %+v != %+v", i, again[i], events[i])
			}
		}
	})
}
