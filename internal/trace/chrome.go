package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"mdsprint/internal/obs"
)

// This file exports pipeline spans (obs.SpanData) two ways: raw JSONL for
// grep/jq pipelines, and the Chrome trace-event format that
// chrome://tracing and Perfetto render as a flame view of the
// calibrate → sweep → explore → online decision tree.

// SaveSpans writes spans to path as JSONL, one span per line.
func SaveSpans(path string, spans []obs.SpanData) error {
	w, err := CreateEventLog(path)
	if err != nil {
		return err
	}
	for _, s := range spans {
		w.line(s)
	}
	return w.Close()
}

// line appends v as one JSON line (shared by span and decision sinks).
func (w *EventWriter) line(v any) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	data, err := json.Marshal(v)
	if err == nil {
		_, err = w.bw.Write(append(data, '\n'))
	}
	if err != nil {
		w.err = err
	}
}

// LoadSpans reads a JSONL span log written by SaveSpans.
func LoadSpans(path string) ([]obs.SpanData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var spans []obs.SpanData
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var s obs.SpanData
		if err := dec.Decode(&s); err == io.EOF {
			return spans, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: parse %s: %w", path, err)
		}
		spans = append(spans, s)
	}
}

// chromeEvent is one trace-event ("X" = complete event). ts/dur are
// microsecond floats per the format; Args carries the exact nanosecond
// times and span identity so LoadChromeTrace round-trips losslessly.
type chromeEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	TS   float64    `json:"ts"`
	Dur  float64    `json:"dur"`
	Args chromeArgs `json:"args"`
}

// chromeArgs is the per-event payload Perfetto shows on click.
type chromeArgs struct {
	ID      uint64     `json:"id"`
	Parent  uint64     `json:"parent,omitempty"`
	StartNS int64      `json:"start_ns"`
	EndNS   int64      `json:"end_ns"`
	Err     string     `json:"err,omitempty"`
	Attrs   []obs.Attr `json:"attrs,omitempty"`
}

// chromeTrace is the JSON-object container variant of the format.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes spans to w in Chrome trace-event format,
// ordered by start time then id so the output is deterministic.
func WriteChromeTrace(w io.Writer, spans []obs.SpanData) error {
	ordered := append([]obs.SpanData(nil), spans...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].StartNS != ordered[j].StartNS {
			return ordered[i].StartNS < ordered[j].StartNS
		}
		return ordered[i].ID < ordered[j].ID
	})
	ct := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(ordered))}
	for _, s := range ordered {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			PID:  1,
			TID:  1,
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.EndNS-s.StartNS) / 1e3,
			Args: chromeArgs{ID: s.ID, Parent: s.Parent, StartNS: s.StartNS, EndNS: s.EndNS, Err: s.Err, Attrs: s.Attrs},
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(ct); err != nil {
		return fmt.Errorf("trace: chrome encode: %w", err)
	}
	return nil
}

// SaveChromeTrace writes spans to path in Chrome trace-event format
// (creating directories), ready to open in chrome://tracing or Perfetto.
func SaveChromeTrace(path string, spans []obs.SpanData) error {
	w, err := CreateEventLog(path)
	if err != nil {
		return err
	}
	w.mu.Lock()
	werr := WriteChromeTrace(w.bw, spans)
	w.mu.Unlock()
	if cerr := w.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// LoadChromeTrace reads a trace written by WriteChromeTrace and
// reconstructs the exact spans from the args payload.
func LoadChromeTrace(r io.Reader) ([]obs.SpanData, error) {
	var ct chromeTrace
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&ct); err != nil {
		return nil, fmt.Errorf("trace: chrome parse: %w", err)
	}
	spans := make([]obs.SpanData, 0, len(ct.TraceEvents))
	for _, e := range ct.TraceEvents {
		if e.Ph != "X" {
			continue // foreign traces may carry metadata events; skip them
		}
		spans = append(spans, obs.SpanData{
			ID:      e.Args.ID,
			Parent:  e.Args.Parent,
			Name:    e.Name,
			StartNS: e.Args.StartNS,
			EndNS:   e.Args.EndNS,
			Err:     e.Args.Err,
			Attrs:   e.Args.Attrs,
		})
	}
	return spans, nil
}

// LoadChromeTraceFile reads a trace file written by SaveChromeTrace.
func LoadChromeTraceFile(path string) ([]obs.SpanData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return LoadChromeTrace(f)
}
