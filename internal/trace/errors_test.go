package trace

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdsprint/internal/obs"
)

// These tests pin the sink error paths: unusable paths, marshal failures,
// sticky write errors. The hot-path contract is that a failed sink goes
// quiet (Event/line become no-ops) and the first error surfaces at
// Flush/Close, never mid-run.

// blockedPath returns a path whose parent is a regular file, so both
// MkdirAll and Create must fail under it.
func blockedPath(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(file, "nested", "out.json")
}

func TestSaveSinksRejectUnusablePaths(t *testing.T) {
	p := blockedPath(t)
	if err := SaveEvents(p, []obs.QueryEvent{{Type: "arrival"}}); err == nil {
		t.Error("SaveEvents accepted a path under a regular file")
	}
	if err := SaveSpans(p, []obs.SpanData{{ID: 1, Name: "x"}}); err == nil {
		t.Error("SaveSpans accepted a path under a regular file")
	}
	if err := SaveChromeTrace(p, nil); err == nil {
		t.Error("SaveChromeTrace accepted a path under a regular file")
	}
	if err := SaveDecisions(p, nil); err == nil {
		t.Error("SaveDecisions accepted a path under a regular file")
	}
	// A directory as the target file fails at Create rather than MkdirAll.
	if _, err := CreateEventLog(t.TempDir()); err == nil {
		t.Error("CreateEventLog accepted an existing directory as the file")
	}
}

func TestLoadersRejectMissingFiles(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.jsonl")
	if _, err := LoadEvents(missing); err == nil {
		t.Error("LoadEvents read a missing file")
	}
	if _, err := LoadSpans(missing); err == nil {
		t.Error("LoadSpans read a missing file")
	}
	if _, err := LoadChromeTraceFile(missing); err == nil {
		t.Error("LoadChromeTraceFile read a missing file")
	}
	if _, err := LoadDecisionsFile(missing); err == nil {
		t.Error("LoadDecisionsFile read a missing file")
	}
}

func TestLoadSpansRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := os.WriteFile(path, []byte("{\"id\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpans(path); err == nil {
		t.Error("LoadSpans decoded garbage")
	}
}

// failWriter errors on every write, standing in for a full disk.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestEventWriterStickyError(t *testing.T) {
	w := NewEventWriter(failWriter{})
	w.Event(obs.QueryEvent{Type: "arrival", Time: 1})
	// The event fits bufio's buffer, so the failure lands at Flush.
	if err := w.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Flush error %v, want the writer's", err)
	}
	// The error is sticky: further events no-op, further flushes re-report.
	w.Event(obs.QueryEvent{Type: "departure", Time: 2})
	w.line(obs.SpanData{ID: 1})
	if err := w.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("second Flush error %v, want the sticky first error", err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close swallowed the sticky error")
	}
}

func TestEventWriterMarshalFailurePoisons(t *testing.T) {
	// NaN is not representable in JSON, so Marshal fails before any write.
	w := NewEventWriter(&strings.Builder{})
	w.Event(obs.QueryEvent{Type: "arrival", Value: math.NaN()})
	if err := w.Flush(); err == nil {
		t.Fatal("NaN event did not poison the writer")
	}
	w2 := NewEventWriter(&strings.Builder{})
	w2.line(map[string]float64{"nan": math.NaN()})
	if err := w2.Close(); err == nil {
		t.Fatal("NaN line did not poison the writer")
	}
}
