package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/queuesim"
)

func TestSaveLoadEventsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "events.jsonl")
	events := []obs.QueryEvent{
		{Type: obs.EvArrival, Time: 1.5, Query: 0, Value: 10},
		{Type: obs.EvBudgetExhausted, Time: 2.25, Query: -1, Value: 3},
		{Type: obs.EvDeparture, Time: 4, Query: 0, Class: "A", Value: 2.5},
	}
	if err := SaveEvents(path, events); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("loaded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
	// JSONL: one JSON object per line.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != len(events) {
		t.Fatalf("file has %d lines, want %d", len(lines), len(events))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %q is not one JSON object", line)
		}
	}
}

func TestLoadEventsMissingFile(t *testing.T) {
	if _, err := LoadEvents(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("missing file loaded without error")
	}
}

func TestEventWriterStreamsSimulatorRun(t *testing.T) {
	// Acceptance check from the issue: a traced seeded run exported as
	// JSONL has exactly one departure per simulated query.
	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, err := CreateEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const queries = 300
	mu := 0.02
	_, err = queuesim.Run(queuesim.Params{
		ArrivalRate: 0.8 * mu,
		Service:     dist.LogNormalFromMeanCV(1/mu, 0.3),
		ServiceRate: mu,
		SprintRate:  1.6 * mu,
		Timeout:     60, BudgetSeconds: 300, RefillTime: 200,
		NumQueries: queries, Warmup: 0, Seed: 7,
		Tracer: w,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := LoadEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[obs.EventType]int{}
	for _, e := range events {
		counts[e.Type]++
	}
	if counts[obs.EvDeparture] != queries {
		t.Fatalf("%d departures in the log, want %d (counts %v)", counts[obs.EvDeparture], queries, counts)
	}
	if counts[obs.EvArrival] != queries {
		t.Fatalf("%d arrivals in the log, want %d", counts[obs.EvArrival], queries)
	}
	if counts[obs.EvSprintStart] == 0 {
		t.Fatal("no sprints in a sprinting scenario")
	}
	if counts[obs.EvSprintStart] != counts[obs.EvSprintStop] {
		t.Fatalf("%d sprint starts vs %d stops", counts[obs.EvSprintStart], counts[obs.EvSprintStop])
	}
}

func TestEventWriterFlushAndReuse(t *testing.T) {
	var sb strings.Builder
	w := NewEventWriter(&sb)
	w.Event(obs.QueryEvent{Type: obs.EvArrival, Time: 1, Query: 0})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"arrival"`) {
		t.Fatalf("flushed output %q", sb.String())
	}
}
