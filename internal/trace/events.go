package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"mdsprint/internal/obs"
)

// This file exports simulator lifecycle traces (obs.QueryEvent) as JSON
// Lines — one event per line, streamable and greppable, the format
// downstream per-query performance-prediction work consumes.

// SaveEvents writes events to path as JSONL (creating directories).
func SaveEvents(path string, events []obs.QueryEvent) error {
	w, err := CreateEventLog(path)
	if err != nil {
		return err
	}
	for _, e := range events {
		w.Event(e)
	}
	return w.Close()
}

// LoadEvents reads a JSONL event log written by SaveEvents or EventWriter.
func LoadEvents(path string) ([]obs.QueryEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	var events []obs.QueryEvent
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var e obs.QueryEvent
		if err := dec.Decode(&e); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: parse %s: %w", path, err)
		}
		events = append(events, e)
	}
}

// EventWriter is a streaming JSONL sink implementing obs.QueryTracer: each
// Event appends one line. It is safe for concurrent use (parallel
// simulator replications may share it); lines are written atomically but
// their interleaving follows goroutine scheduling.
type EventWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	closer io.Closer // underlying file, when file-backed
	err    error     // first write error, surfaced by Close
}

// NewEventWriter streams events to w.
func NewEventWriter(w io.Writer) *EventWriter {
	return &EventWriter{bw: bufio.NewWriter(w)}
}

// CreateEventLog creates (or truncates) a JSONL event log at path.
func CreateEventLog(path string) (*EventWriter, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	w := NewEventWriter(f)
	w.closer = f
	return w, nil
}

// Event appends e as one JSON line.
func (w *EventWriter) Event(e obs.QueryEvent) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	//lint:ignore hotalloc opt-in JSON tracer: traced runs trade allocations for event capture; alloc-free benchmarks run untraced
	data, err := json.Marshal(e)
	if err == nil {
		//lint:ignore hotalloc same trade: the marshal buffer is the event record
		_, err = w.bw.Write(append(data, '\n'))
	}
	if err != nil {
		w.err = err
	}
}

// Flush drains the write buffer.
func (w *EventWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return fmt.Errorf("trace: %w", w.err)
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Close flushes and closes the underlying file (when file-backed),
// returning the first error encountered over the writer's lifetime.
func (w *EventWriter) Close() error {
	flushErr := w.Flush()
	if w.closer != nil {
		if err := w.closer.Close(); err != nil && flushErr == nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return flushErr
}
