package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mdsprint/internal/online"
)

// SaveDecisions writes a decision ledger's records as JSONL, one
// DecisionRecord per line in ledger order.
func SaveDecisions(path string, recs []online.DecisionRecord) error {
	w, err := CreateEventLog(path)
	if err != nil {
		return err
	}
	for _, r := range recs {
		w.line(r)
	}
	return w.Close()
}

// LoadDecisions reads a JSONL decision log back into records.
func LoadDecisions(r io.Reader) ([]online.DecisionRecord, error) {
	dec := json.NewDecoder(r)
	var out []online.DecisionRecord
	for {
		var rec online.DecisionRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decode decision %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// LoadDecisionsFile is LoadDecisions over a file path.
func LoadDecisionsFile(path string) ([]online.DecisionRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		//lint:ignore errdrop read-only close after a full decode
		_ = f.Close()
	}()
	return LoadDecisions(f)
}
