// Package trace persists profiling datasets and calibration records as
// JSON so profiling (hours of simulated replay) and model training can be
// separated across tool invocations — the workflow of cmd/sprintctl.
package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mdsprint/internal/calib"
	"mdsprint/internal/profiler"
)

// SaveDataset writes a profiled dataset to path (creating directories).
func SaveDataset(path string, ds *profiler.Dataset) error {
	return writeJSON(path, ds)
}

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(path string) (*profiler.Dataset, error) {
	var ds profiler.Dataset
	if err := readJSON(path, &ds); err != nil {
		return nil, err
	}
	if ds.ServiceRate <= 0 || len(ds.ServiceSamples) == 0 {
		return nil, fmt.Errorf("trace: %s is not a valid dataset", path)
	}
	return &ds, nil
}

// SaveRecords writes calibration records to path.
func SaveRecords(path string, recs []calib.Record) error {
	return writeJSON(path, recs)
}

// LoadRecords reads calibration records written by SaveRecords.
func LoadRecords(path string) ([]calib.Record, error) {
	var recs []calib.Record
	if err := readJSON(path, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

func writeJSON(path string, v any) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: marshal %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return os.Rename(tmp, path)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("trace: parse %s: %w", path, err)
	}
	return nil
}
