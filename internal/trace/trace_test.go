package trace

import (
	"path/filepath"
	"testing"

	"mdsprint/internal/calib"
	"mdsprint/internal/dist"
	"mdsprint/internal/profiler"
)

func sampleDataset() *profiler.Dataset {
	return &profiler.Dataset{
		MixName:        "Jacobi",
		MechName:       "DVFS",
		ServiceRate:    0.0141,
		MarginalRate:   0.0205,
		ServiceSamples: []float64{70.1, 71.5, 69.8},
		Observations: []profiler.Observation{
			{
				Cond: profiler.Condition{
					Utilization: 0.75, ArrivalKind: dist.KindExponential,
					Timeout: 60, RefillTime: 200, BudgetPct: 0.2,
				},
				ArrivalRate: 0.0106,
				MeanRT:      132.4,
				P95RT:       310.2,
				P99RT:       401.8,
			},
		},
		ProfilingSeconds: 25920,
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "jacobi.json")
	ds := sampleDataset()
	if err := SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MixName != ds.MixName || got.ServiceRate != ds.ServiceRate {
		t.Fatalf("identity lost: %+v", got)
	}
	if len(got.Observations) != 1 || got.Observations[0].MeanRT != 132.4 {
		t.Fatalf("observations lost: %+v", got.Observations)
	}
	if got.Observations[0].Cond.ArrivalKind != dist.KindExponential {
		t.Fatalf("arrival kind lost: %q", got.Observations[0].Cond.ArrivalKind)
	}
	if len(got.ServiceSamples) != 3 {
		t.Fatalf("service samples lost: %v", got.ServiceSamples)
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeJSON(path, map[string]string{"hello": "world"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(path); err == nil {
		t.Fatal("garbage dataset accepted")
	}
	if _, err := LoadDataset(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadRecordsErrors(t *testing.T) {
	if _, err := LoadRecords(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing records file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeJSON(bad, "not a record list"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRecords(bad); err == nil {
		t.Fatal("malformed records accepted")
	}
}

func TestWriteJSONErrors(t *testing.T) {
	// Unserialisable value.
	if err := writeJSON(filepath.Join(t.TempDir(), "x.json"), func() {}); err == nil {
		t.Fatal("function value marshalled")
	}
	// Unwritable directory (a file where a directory is needed).
	dir := t.TempDir()
	blocker := filepath.Join(dir, "file")
	if err := writeJSON(blocker, 1); err != nil {
		t.Fatal(err)
	}
	if err := writeJSON(filepath.Join(blocker, "sub", "x.json"), 1); err == nil {
		t.Fatal("mkdir under a file succeeded")
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "recs.json")
	recs := []calib.Record{
		{
			ArrivalRate: 0.01, ServiceRate: 0.0141, MarginalRate: 0.0205,
			EffectiveRate: 0.0190, ObservedRT: 130, SimRT: 131,
		},
	}
	if err := SaveRecords(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].EffectiveRate != 0.0190 {
		t.Fatalf("records lost: %+v", got)
	}
}
