package trace

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mdsprint/internal/obs"
)

func sampleSpans() []obs.SpanData {
	return []obs.SpanData{
		{ID: 1, Name: "pipeline", StartNS: 0, EndNS: 5_000_000},
		{ID: 2, Parent: 1, Name: "calib.dataset", StartNS: 1_000, EndNS: 2_000_000, Attrs: []obs.Attr{
			{Key: "records", Kind: obs.AttrInt, Int: 3},
		}},
		{ID: 3, Parent: 2, Name: "sweep.eval", StartNS: 1_500, EndNS: 900_000, Err: "budget exhausted", Attrs: []obs.Attr{
			{Key: "cache", Kind: obs.AttrString, Str: "hit"},
			{Key: "timeout_s", Kind: obs.AttrFloat, Num: 42.5},
			{Key: "ok", Kind: obs.AttrBool, Bool: true},
		}},
	}
}

func TestSaveLoadSpans(t *testing.T) {
	spans := sampleSpans()
	path := filepath.Join(t.TempDir(), "sub", "spans.jsonl")
	if err := SaveSpans(path, spans); err != nil {
		t.Fatalf("SaveSpans: %v", err)
	}
	back, err := LoadSpans(path)
	if err != nil {
		t.Fatalf("LoadSpans: %v", err)
	}
	if !reflect.DeepEqual(back, spans) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, spans)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	spans := sampleSpans()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"name":"sweep.eval"`, `"err":"budget exhausted"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome output missing %s:\n%s", want, out)
		}
	}
	back, err := LoadChromeTrace(&buf)
	if err != nil {
		t.Fatalf("LoadChromeTrace: %v", err)
	}
	// Export sorts by StartNS then ID; sampleSpans is already in that order.
	if !reflect.DeepEqual(back, spans) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", back, spans)
	}
}

func TestChromeTraceExactNanoseconds(t *testing.T) {
	// Sub-microsecond boundaries and a ns value a float64-µs field cannot
	// carry exactly: the args payload must preserve them bit-for-bit.
	spans := []obs.SpanData{{ID: 1, Name: "ns", StartNS: 9_007_199_254_740_993, EndNS: 9_007_199_254_740_995}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	back, err := LoadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].StartNS != spans[0].StartNS || back[0].EndNS != spans[0].EndNS {
		t.Fatalf("ns precision lost: %+v", back)
	}
}

func TestChromeTraceSortsDeterministically(t *testing.T) {
	unordered := []obs.SpanData{
		{ID: 3, Name: "c", StartNS: 10, EndNS: 20},
		{ID: 1, Name: "a", StartNS: 5, EndNS: 30},
		{ID: 2, Name: "b", StartNS: 10, EndNS: 15},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, unordered); err != nil {
		t.Fatal(err)
	}
	back, err := LoadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range back {
		names = append(names, s.Name)
	}
	if got := strings.Join(names, ","); got != "a,b,c" {
		t.Fatalf("order %s, want a,b,c", got)
	}
	// And the input slice is not mutated.
	if unordered[0].Name != "c" {
		t.Fatalf("WriteChromeTrace mutated its input")
	}
}

func TestSaveChromeTraceFile(t *testing.T) {
	spans := sampleSpans()
	path := filepath.Join(t.TempDir(), "out", "trace.json")
	if err := SaveChromeTrace(path, spans); err != nil {
		t.Fatalf("SaveChromeTrace: %v", err)
	}
	back, err := LoadChromeTraceFile(path)
	if err != nil {
		t.Fatalf("LoadChromeTraceFile: %v", err)
	}
	if !reflect.DeepEqual(back, spans) {
		t.Fatalf("file round trip mismatch")
	}
}

func TestLoadChromeTraceSkipsForeignEvents(t *testing.T) {
	in := `{"traceEvents":[
		{"name":"process_name","ph":"M","pid":1,"tid":1,"args":{}},
		{"name":"real","ph":"X","pid":1,"tid":1,"ts":0,"dur":1,"args":{"id":7,"start_ns":0,"end_ns":1000}}
	]}`
	back, err := LoadChromeTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].ID != 7 || back[0].Name != "real" {
		t.Fatalf("foreign events mishandled: %+v", back)
	}
}

func TestLoadChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatalf("garbage accepted")
	}
	if _, err := LoadChromeTraceFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatalf("missing file accepted")
	}
}

// FuzzChromeTraceExport drives the export → re-import round trip with
// arbitrary span contents: export must never fail or panic, and the
// re-imported spans must match what was exported.
func FuzzChromeTraceExport(f *testing.F) {
	f.Add("sweep.eval", "cache", "hit", 3.5, int64(12), true, int64(100), int64(900))
	f.Add("", "", "", math.Inf(1), int64(-1), false, int64(-5), int64(-5))
	f.Add("a\xffb", "k\x00", "\xf0☃", math.NaN(), int64(1<<62), true, int64(1<<60), int64(0))
	f.Fuzz(func(t *testing.T, name, key, sval string, fval float64, ival int64, bval bool, startNS, endNS int64) {
		// Go's JSON encoder replaces invalid UTF-8 rather than erroring,
		// which would make the round trip lossy; sanitize like the tracer's
		// callers (span names and keys are compile-time literals in practice).
		spans := []obs.SpanData{{
			ID:      1,
			Name:    strings.ToValidUTF8(name, "\uFFFD"),
			StartNS: startNS,
			EndNS:   endNS,
			Attrs: []obs.Attr{
				{Key: strings.ToValidUTF8(key, "\uFFFD"), Kind: obs.AttrString, Str: strings.ToValidUTF8(sval, "\uFFFD")},
				{Key: "f", Kind: obs.AttrFloat, Num: fval},
				{Key: "i", Kind: obs.AttrInt, Int: ival},
				{Key: "b", Kind: obs.AttrBool, Bool: bval},
			},
		}}
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, spans); err != nil {
			t.Fatalf("export: %v", err)
		}
		back, err := LoadChromeTrace(&buf)
		if err != nil {
			t.Fatalf("re-import: %v", err)
		}
		if len(back) != 1 {
			t.Fatalf("re-imported %d spans", len(back))
		}
		got, want := back[0], spans[0]
		if got.ID != want.ID || got.Name != want.Name || got.StartNS != want.StartNS || got.EndNS != want.EndNS {
			t.Fatalf("span mismatch: %+v != %+v", got, want)
		}
		if len(got.Attrs) != len(want.Attrs) {
			t.Fatalf("attr count %d != %d", len(got.Attrs), len(want.Attrs))
		}
		for i := range want.Attrs {
			ga, wa := got.Attrs[i], want.Attrs[i]
			if ga.Key != wa.Key || ga.Kind != wa.Kind || ga.Str != wa.Str || ga.Int != wa.Int || ga.Bool != wa.Bool {
				t.Fatalf("attr %d: %+v != %+v", i, ga, wa)
			}
			if math.IsNaN(wa.Num) != math.IsNaN(ga.Num) || (!math.IsNaN(wa.Num) && ga.Num != wa.Num) {
				t.Fatalf("attr %d num: %v != %v", i, ga.Num, wa.Num)
			}
		}
	})
}
