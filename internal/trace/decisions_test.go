package trace

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mdsprint/internal/online"
)

func sampleDecisions() []online.DecisionRecord {
	return []online.DecisionRecord{
		{
			Seq: 0, VirtualTime: 4, Rate: 0.7, Timeout: 19.5, PredictedRT: 1.4,
			Tier: "hybrid", Level: 0, Retuned: true, BreakerState: "closed",
			CacheHitRatio: 0.5, SelectNanos: 1200, SearchNanos: 900,
			Fingerprint: "00aa00aa00aa00aa",
		},
		{
			Seq: 1, VirtualTime: 8, Rate: 0.9, Timeout: 21, PredictedRT: 2.1,
			Tier: "noml", Level: 1, Retuned: true, Demoted: true,
			BreakerState: "open", SelectNanos: 800,
			Fingerprint: "11bb11bb11bb11bb",
		},
	}
}

func TestSaveLoadDecisions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	want := sampleDecisions()
	if err := SaveDecisions(path, want); err != nil {
		t.Fatalf("SaveDecisions: %v", err)
	}
	got, err := LoadDecisionsFile(path)
	if err != nil {
		t.Fatalf("LoadDecisionsFile: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestLoadDecisionsRejectsGarbage(t *testing.T) {
	if _, err := LoadDecisions(strings.NewReader(`{"seq":0}` + "\nnot json\n")); err == nil {
		t.Fatal("garbage line decoded without error")
	}
}

func TestLoadDecisionsEmpty(t *testing.T) {
	got, err := LoadDecisions(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty log: got %v, %v", got, err)
	}
}
