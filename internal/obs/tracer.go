package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// EventType labels one query-lifecycle event from the queue simulator.
type EventType string

// The simulator's lifecycle vocabulary, in the order a sprinted query
// typically experiences it.
const (
	// EvArrival: a query entered the system. Value is its sampled
	// service time.
	EvArrival EventType = "arrival"
	// EvServiceStart: the query left the queue and began executing.
	// Value is its queueing delay.
	EvServiceStart EventType = "service_start"
	// EvTimeout: the query's sprint timeout fired (whether or not a
	// sprint could be engaged). Value is the configured timeout.
	EvTimeout EventType = "timeout"
	// EvSprintStart: the mechanism engaged for this query. Value is the
	// budget level at engagement.
	EvSprintStart EventType = "sprint_start"
	// EvSprintStop: the query stopped sprinting (departure or forced
	// stop). Value is the sprint's duration in seconds.
	EvSprintStop EventType = "sprint_stop"
	// EvBudgetExhausted: the shared budget drained to empty, forcing
	// every active sprint to stop. Query is -1; Value is the number of
	// sprints stopped.
	EvBudgetExhausted EventType = "budget_exhausted"
	// EvRefill: the budget became usable again after an exhaustion.
	// Value is the budget level at that moment.
	EvRefill EventType = "refill"
	// EvDeparture: the query completed. Value is its response time.
	EvDeparture EventType = "departure"
	// EvDispatch: a multi-queue dispatcher routed the arrival to a
	// server. Value is the chosen server index. Emitted only when the
	// simulator runs with more than one server.
	EvDispatch EventType = "dispatch"
	// EvPreempt: a size-ordered discipline (SRPT/SERPT) suspended the
	// query mid-service in favour of a shorter arrival. Value is the
	// query's remaining service time at suspension.
	EvPreempt EventType = "preempt"
	// EvResume: a previously preempted query re-entered service. Value
	// is its remaining service time at resumption.
	EvResume EventType = "resume"
)

// QueryEvent is one per-query lifecycle record emitted by the simulator.
// Time is virtual (simulated) seconds; Query is the arrival index within
// the run (-1 for system-wide events); Class names the query class in
// multi-class simulations.
type QueryEvent struct {
	Type  EventType `json:"type"`
	Time  float64   `json:"t"`
	Query int       `json:"query"`
	Class string    `json:"class,omitempty"`
	Value float64   `json:"value,omitempty"`
}

// QueryTracer receives lifecycle events. Implementations must tolerate
// calls from whichever goroutine runs the simulation; a tracer shared
// across parallel replications must be safe for concurrent use.
//
// Simulators treat a nil tracer as "tracing off" and skip every hook, so
// enabling the interface costs nothing when unused.
type QueryTracer interface {
	Event(QueryEvent)
}

// TracerFunc adapts a function to the QueryTracer interface.
type TracerFunc func(QueryEvent)

// Event calls f.
func (f TracerFunc) Event(e QueryEvent) { f(e) }

// RingTracer is a bounded, concurrency-safe event sink: it keeps the last
// `capacity` events and counts everything it has ever seen.
//
// Internally the ring is sharded: a global atomic sequence assigns each
// event a slot round-robin across independently locked sub-rings, so
// concurrent recorders contend on capacity/shards-sized locks instead of
// one. Because the sequence is the global arrival order and each shard
// retains the newest entries of its residue class, the union of the
// shards is always exactly the newest `capacity` events, and Events()
// restores global order by sorting on the sequence.
type RingTracer struct {
	seq    atomic.Uint64
	mask   uint64 // len(shards)-1; the count is always a power of two
	shards []tracerShard
}

// tracerShard is one independently locked sub-ring, padded out to a
// cache line (8B mutex + 24B slice + 2×8B ints + 16B pad = 64) so
// neighbouring shard locks don't false-share.
type tracerShard struct {
	mu   sync.Mutex
	buf  []seqEvent
	next int
	fill int
	_    [16]byte
}

// seqEvent tags a recorded event with its global arrival sequence.
type seqEvent struct {
	seq uint64
	e   QueryEvent
}

// NewRingTracer returns a tracer retaining the last capacity events
// (default 4096 when capacity <= 0). The shard count is the largest
// power of two ≤ 16 dividing capacity, so every shard holds an equal
// slice of the ring and exact last-N retention is preserved.
func NewRingTracer(capacity int) *RingTracer {
	if capacity <= 0 {
		capacity = 4096
	}
	shards := 16
	for capacity%shards != 0 {
		shards >>= 1
	}
	t := &RingTracer{mask: uint64(shards) - 1, shards: make([]tracerShard, shards)}
	per := capacity / shards
	for i := range t.shards {
		t.shards[i].buf = make([]seqEvent, per)
	}
	return t
}

// Event records e.
func (t *RingTracer) Event(e QueryEvent) {
	seq := t.seq.Add(1) - 1
	s := &t.shards[seq&t.mask]
	s.mu.Lock()
	s.buf[s.next] = seqEvent{seq: seq, e: e}
	s.next = (s.next + 1) % len(s.buf)
	if s.fill < len(s.buf) {
		s.fill++
	}
	s.mu.Unlock()
}

// Events returns the retained events, oldest first (global arrival
// order, restored by merging the shards on their sequence tags).
func (t *RingTracer) Events() []QueryEvent {
	entries := make([]seqEvent, 0, t.capacity())
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		start := s.next - s.fill
		if start < 0 {
			start += len(s.buf)
		}
		for j := 0; j < s.fill; j++ {
			entries = append(entries, s.buf[(start+j)%len(s.buf)])
		}
		s.mu.Unlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]QueryEvent, len(entries))
	for i, se := range entries {
		out[i] = se.e
	}
	return out
}

// capacity is the total retained-event budget across shards.
func (t *RingTracer) capacity() int {
	return len(t.shards) * len(t.shards[0].buf)
}

// Total returns how many events the tracer has seen (including any that
// the ring has since evicted).
func (t *RingTracer) Total() uint64 {
	return t.seq.Load()
}

// Count returns how many retained events have the given type.
func (t *RingTracer) Count(typ EventType) int {
	n := 0
	for _, e := range t.Events() {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// MultiTracer fans events out to several tracers.
type MultiTracer []QueryTracer

// Event forwards e to every non-nil tracer.
func (m MultiTracer) Event(e QueryEvent) {
	for _, t := range m {
		if t != nil {
			t.Event(e)
		}
	}
}
