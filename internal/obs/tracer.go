package obs

import "sync"

// EventType labels one query-lifecycle event from the queue simulator.
type EventType string

// The simulator's lifecycle vocabulary, in the order a sprinted query
// typically experiences it.
const (
	// EvArrival: a query entered the system. Value is its sampled
	// service time.
	EvArrival EventType = "arrival"
	// EvServiceStart: the query left the queue and began executing.
	// Value is its queueing delay.
	EvServiceStart EventType = "service_start"
	// EvTimeout: the query's sprint timeout fired (whether or not a
	// sprint could be engaged). Value is the configured timeout.
	EvTimeout EventType = "timeout"
	// EvSprintStart: the mechanism engaged for this query. Value is the
	// budget level at engagement.
	EvSprintStart EventType = "sprint_start"
	// EvSprintStop: the query stopped sprinting (departure or forced
	// stop). Value is the sprint's duration in seconds.
	EvSprintStop EventType = "sprint_stop"
	// EvBudgetExhausted: the shared budget drained to empty, forcing
	// every active sprint to stop. Query is -1; Value is the number of
	// sprints stopped.
	EvBudgetExhausted EventType = "budget_exhausted"
	// EvRefill: the budget became usable again after an exhaustion.
	// Value is the budget level at that moment.
	EvRefill EventType = "refill"
	// EvDeparture: the query completed. Value is its response time.
	EvDeparture EventType = "departure"
)

// QueryEvent is one per-query lifecycle record emitted by the simulator.
// Time is virtual (simulated) seconds; Query is the arrival index within
// the run (-1 for system-wide events); Class names the query class in
// multi-class simulations.
type QueryEvent struct {
	Type  EventType `json:"type"`
	Time  float64   `json:"t"`
	Query int       `json:"query"`
	Class string    `json:"class,omitempty"`
	Value float64   `json:"value,omitempty"`
}

// QueryTracer receives lifecycle events. Implementations must tolerate
// calls from whichever goroutine runs the simulation; a tracer shared
// across parallel replications must be safe for concurrent use.
//
// Simulators treat a nil tracer as "tracing off" and skip every hook, so
// enabling the interface costs nothing when unused.
type QueryTracer interface {
	Event(QueryEvent)
}

// TracerFunc adapts a function to the QueryTracer interface.
type TracerFunc func(QueryEvent)

// Event calls f.
func (f TracerFunc) Event(e QueryEvent) { f(e) }

// RingTracer is a bounded, concurrency-safe event sink: it keeps the last
// `capacity` events and counts everything it has ever seen.
type RingTracer struct {
	mu    sync.Mutex
	buf   []QueryEvent
	next  int
	fill  int
	total uint64
}

// NewRingTracer returns a tracer retaining the last capacity events
// (default 4096 when capacity <= 0).
func NewRingTracer(capacity int) *RingTracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &RingTracer{buf: make([]QueryEvent, capacity)}
}

// Event records e.
func (t *RingTracer) Event(e QueryEvent) {
	t.mu.Lock()
	t.buf[t.next] = e
	t.next = (t.next + 1) % len(t.buf)
	if t.fill < len(t.buf) {
		t.fill++
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *RingTracer) Events() []QueryEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]QueryEvent, 0, t.fill)
	start := t.next - t.fill
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.fill; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Total returns how many events the tracer has seen (including any that
// the ring has since evicted).
func (t *RingTracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Count returns how many retained events have the given type.
func (t *RingTracer) Count(typ EventType) int {
	n := 0
	for _, e := range t.Events() {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// MultiTracer fans events out to several tracers.
type MultiTracer []QueryTracer

// Event forwards e to every non-nil tracer.
func (m MultiTracer) Event(e QueryEvent) {
	for _, t := range m {
		if t != nil {
			t.Event(e)
		}
	}
}
