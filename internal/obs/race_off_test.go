//go:build !race

package obs

// raceEnabled reports whether the race detector is active; allocation
// budgets are skipped under -race because instrumentation allocates.
const raceEnabled = false
