package obs

import (
	"fmt"
	"io"
	"sync"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelSilent suppresses everything.
	LevelSilent
)

// Logger is a small leveled logger for CLI narration. Results belong on
// stdout; everything a human reads about progress goes through a Logger
// on stderr so tool output composes with shell pipelines. A nil Logger
// discards everything, so library code can log unconditionally.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
}

// NewLogger returns a logger writing lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level}
}

// SetLevel adjusts the logger's threshold.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.level = level
	l.mu.Unlock()
}

func (l *Logger) logf(level Level, prefix, format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if level < l.level || l.w == nil {
		return
	}
	fmt.Fprintf(l.w, prefix+format+"\n", args...)
}

// Debugf logs fine-grained progress detail.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, "", format, args...) }

// Infof logs routine progress.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, "", format, args...) }

// Warnf logs recoverable oddities.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, "warning: ", format, args...) }

// Errorf logs failures.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, "error: ", format, args...) }
