package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value %v, want 3.5", got)
	}
	// Counters only go up; negative and NaN deltas are ignored.
	c.Add(-1)
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter moved on invalid delta: %v", got)
	}
	// Get-or-create returns the same counter.
	if r.Counter("c_total", "other help") != c {
		t.Fatal("second Counter call returned a different metric")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge value %v, want 2.5", got)
	}
	if r.Gauge("g", "") != g {
		t.Fatal("second Gauge call returned a different metric")
	}
}

func TestNilSafety(t *testing.T) {
	// A nil registry hands back nil metrics; every method must no-op
	// rather than dereference.
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", 0)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil metrics")
	}
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metric reported non-zero state")
	}
	if s := h.Snapshot(); len(s.Window) != 0 {
		t.Fatal("nil histogram snapshot non-empty")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil || buf.String() != "{}" {
		t.Fatalf("nil registry JSON = %q, %v", buf.String(), err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestRegistryConcurrency(t *testing.T) {
	// Hammer get-or-create plus updates from many goroutines; run under
	// -race this doubles as the data-race check.
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared_total", "").Inc()
				r.Gauge("shared_gauge", "").Set(float64(i))
				r.Histogram("shared_hist", "", 64).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter %v after concurrent increments, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared_hist", "", 64).Count(); got != workers*perWorker {
		t.Fatalf("histogram count %d, want %d", got, workers*perWorker)
	}
}

// goldenRegistry builds the fixed registry behind the exposition tests.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests handled")
	c.Add(2)
	c.Inc()
	r.Gauge("test_queue_depth", "current queue depth").Set(2.5)
	h := r.Histogram("test_latency_seconds", "simulated latency", 8)
	for v := 1; v <= 5; v++ {
		h.Observe(float64(v))
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus exposition drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	// Structural checks beyond the golden bytes: every sample line's
	// metric has a preceding TYPE line, and histograms export the
	// full summary set (quantiles + _sum + _count).
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		"# TYPE test_queue_depth gauge",
		"# TYPE test_latency_seconds summary",
		`test_latency_seconds{quantile="0.5"} 3`,
		"test_latency_seconds_sum 15",
		"test_latency_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("sample line %q is not `name value`", line)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exposition is not valid JSON: %v\n%s", err, buf.String())
	}
	if out["test_requests_total"] != 3.0 {
		t.Fatalf("counter in JSON = %v, want 3", out["test_requests_total"])
	}
	hist, ok := out["test_latency_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram JSON %T", out["test_latency_seconds"])
	}
	if hist["count"] != 5.0 || hist["sum"] != 15.0 {
		t.Fatalf("histogram count/sum = %v/%v", hist["count"], hist["sum"])
	}
	qs := hist["quantiles"].(map[string]any)
	if qs["p50"] != 3.0 {
		t.Fatalf("p50 = %v, want 3", qs["p50"])
	}
}

func TestWriteJSONEmptyHistogramQuantilesNull(t *testing.T) {
	// JSON has no NaN: empty-window quantiles must encode as null.
	r := NewRegistry()
	r.Histogram("empty_hist", "", 4)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if q := out["empty_hist"]["quantiles"].(map[string]any); q["p50"] != nil {
		t.Fatalf("empty-window p50 = %v, want null", q["p50"])
	}
}

func TestOr(t *testing.T) {
	if Or(nil) != Default() {
		t.Fatal("Or(nil) is not the default registry")
	}
	r := NewRegistry()
	if Or(r) != r {
		t.Fatal("Or(r) did not return r")
	}
}
