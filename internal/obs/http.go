package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves r in Prometheus text exposition format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:ignore errdrop best-effort write; a departed scrape client has nowhere to report the error
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves r as one JSON object keyed by metric name.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		//lint:ignore errdrop best-effort write; a departed scrape client has nowhere to report the error
		_ = r.WriteJSON(w)
	})
}

// DebugMux returns the live-introspection mux mounted by sprintctl's
// -debug-addr flag:
//
//	/metrics       Prometheus text exposition of r
//	/metrics.json  the same registry as JSON
//	/debug/vars    expvar (Go runtime stats + published registries)
//	/debug/pprof/  the standard pprof handlers (profile, heap, trace, ...)
//
// The pprof handlers are registered explicitly so the mux works without
// importing net/http/pprof's DefaultServeMux side effects.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
