package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves r in Prometheus text exposition format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:ignore errdrop best-effort write; a departed scrape client has nowhere to report the error
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves r as one JSON object keyed by metric name.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		//lint:ignore errdrop best-effort write; a departed scrape client has nowhere to report the error
		_ = r.WriteJSON(w)
	})
}

// DebugMux returns the live-introspection mux mounted by sprintctl's
// -debug-addr flag:
//
//	/metrics       Prometheus text exposition of r
//	/metrics.json  the same registry as JSON
//	/debug/health  the degradation health verdict (200 ok, 503 critical)
//	/debug/vars    expvar (Go runtime stats + published registries)
//	/debug/pprof/  the standard pprof handlers (profile, heap, trace, ...)
//
// The pprof handlers are registered explicitly so the mux works without
// importing net/http/pprof's DefaultServeMux side effects.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/metrics.json", JSONHandler(r))
	mux.Handle("/debug/health", HealthHandler(r, HealthThresholds{}))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer serves a handler in the background with a graceful
// shutdown path: Shutdown stops accepting connections but lets in-flight
// scrapes finish, so a SIGINT mid-scrape never truncates a response.
type DebugServer struct {
	srv  *http.Server
	addr net.Addr
	done chan struct{}
	err  error
}

// NewDebugServer serves h on ln in a background goroutine and returns
// immediately. The caller owns nothing: Shutdown (or process exit)
// closes the listener.
func NewDebugServer(ln net.Listener, h http.Handler) *DebugServer {
	s := &DebugServer{
		srv:  &http.Server{Handler: h},
		addr: ln.Addr(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.err = err
		}
	}()
	return s
}

// Addr returns the listening address.
func (s *DebugServer) Addr() net.Addr { return s.addr }

// Shutdown drains in-flight requests and stops the server, bounded by
// ctx. A nil receiver no-ops, so callers without a debug server shut
// down unconditionally.
func (s *DebugServer) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		return err
	}
	<-s.done
	return s.err
}
