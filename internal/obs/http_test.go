package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMuxEndpoints(t *testing.T) {
	srv := httptest.NewServer(DebugMux(goldenRegistry()))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content-type %q", ct)
	}
	if !strings.Contains(body, "# TYPE test_requests_total counter") ||
		!strings.Contains(body, "test_requests_total 3") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	resp, body = get("/metrics.json")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json content-type %q", ct)
	}
	var metrics map[string]any
	if err := json.Unmarshal([]byte(body), &metrics); err != nil {
		t.Fatalf("/metrics.json invalid: %v\n%s", err, body)
	}
	if metrics["test_queue_depth"] != 2.5 {
		t.Fatalf("/metrics.json gauge = %v", metrics["test_queue_depth"])
	}

	// expvar always publishes cmdline and memstats.
	_, body = get("/debug/vars")
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars invalid JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing memstats")
	}

	_, body = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index:\n%s", body)
	}
}

func TestPublishDefaultIdempotent(t *testing.T) {
	// expvar.Publish panics on duplicate names; PublishDefault must be
	// callable any number of times.
	PublishDefault()
	PublishDefault()
}
