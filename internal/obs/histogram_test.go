package obs

import (
	"math"
	"testing"
)

func TestHistogramWindowing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", 4)
	for v := 1; v <= 6; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	// The ring keeps the last 4 observations; count and sum are
	// all-time.
	if want := []float64{3, 4, 5, 6}; len(s.Window) != len(want) {
		t.Fatalf("window %v, want %v", s.Window, want)
	} else {
		for i, v := range want {
			if s.Window[i] != v {
				t.Fatalf("window %v, want %v", s.Window, want)
			}
		}
	}
	if s.Count != 6 || s.Sum != 21 {
		t.Fatalf("count/sum = %d/%v, want 6/21", s.Count, s.Sum)
	}
	if got := s.Quantile(0.5); got != 4 {
		t.Fatalf("median %v, want 4", got)
	}
	if got := s.Quantile(0); got != 3 {
		t.Fatalf("q0 %v, want 3", got)
	}
	if got := s.Quantile(1); got != 6 {
		t.Fatalf("q1 %v, want 6", got)
	}
	if got := s.Mean(); got != 4.5 {
		t.Fatalf("windowed mean %v, want 4.5", got)
	}
}

func TestHistogramEmptyAndNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", 4)
	if !math.IsNaN(h.Snapshot().Quantile(0.5)) {
		t.Fatal("empty-window quantile is not NaN")
	}
	if !math.IsNaN(h.Snapshot().Mean()) {
		t.Fatal("empty-window mean is not NaN")
	}
	h.Observe(math.NaN()) // ignored, would poison sums
	if h.Count() != 0 {
		t.Fatal("NaN observation counted")
	}
}

func TestHistogramDefaultWindow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", 0)
	for i := 0; i < DefaultHistogramWindow+10; i++ {
		h.Observe(1)
	}
	if got := len(h.Snapshot().Window); got != DefaultHistogramWindow {
		t.Fatalf("window size %d, want %d", got, DefaultHistogramWindow)
	}
}
