package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements hierarchical pipeline spans: the stage-level
// complement to QueryEvent's per-query lifecycle stream. A span covers
// one pipeline stage (calibrate a record, evaluate a sweep task, run an
// annealing search, make an online decision), carries typed attributes
// and an error status, and nests under a parent span so a whole
// calibrate → sweep → explore → online run renders as one tree.
//
// Design constraints, mirroring QueryTracer's:
//
//   - Nil-safe: a nil *SpanTracer starts nil *Spans, and every Span
//     method no-ops on a nil receiver, so instrumented code never
//     branches on "is tracing on". Disabled tracing costs a nil check.
//   - Pooled: finished spans are recycled through a free list (and
//     their attribute slices keep their capacity), so steady-state
//     tracing does not grow the heap per span.
//   - Bounded: the finished-span buffer holds at most MaxSpans; older
//     spans are dropped (and counted) rather than growing without bound.

// AttrKind types one span attribute.
type AttrKind uint8

// The attribute kinds spans carry.
const (
	AttrString AttrKind = iota
	AttrFloat
	AttrInt
	AttrBool
)

// Attr is one typed key/value attribute on a span.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Num  float64
	Int  int64
	Bool bool
}

// attrWire is Attr's JSON form: one value field per kind, pointers so
// zero values survive round-trips exactly. Non-finite floats ride in S
// (JSON has no NaN/Inf).
type attrWire struct {
	K string   `json:"k"`
	T string   `json:"t"`
	S string   `json:"s,omitempty"`
	F *float64 `json:"f,omitempty"`
	I *int64   `json:"i,omitempty"`
	B *bool    `json:"b,omitempty"`
}

// attrKindNames maps kinds to their wire tags.
var attrKindNames = [...]string{AttrString: "str", AttrFloat: "float", AttrInt: "int", AttrBool: "bool"}

// MarshalJSON encodes the attribute with its kind tag.
func (a Attr) MarshalJSON() ([]byte, error) {
	w := attrWire{K: a.Key, T: attrKindNames[a.Kind]}
	switch a.Kind {
	case AttrString:
		w.S = a.Str
	case AttrFloat:
		if math.IsNaN(a.Num) || math.IsInf(a.Num, 0) {
			w.S = formatValue(a.Num)
		} else {
			v := a.Num
			w.F = &v
		}
	case AttrInt:
		v := a.Int
		w.I = &v
	case AttrBool:
		v := a.Bool
		w.B = &v
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes an attribute written by MarshalJSON.
func (a *Attr) UnmarshalJSON(data []byte) error {
	var w attrWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*a = Attr{Key: w.K}
	switch w.T {
	case "str":
		a.Kind, a.Str = AttrString, w.S
	case "float":
		a.Kind = AttrFloat
		if w.F != nil {
			a.Num = *w.F
		} else {
			v, err := strconv.ParseFloat(w.S, 64)
			if err != nil {
				return fmt.Errorf("obs: attr %q: bad float %q", w.K, w.S)
			}
			a.Num = v
		}
	case "int":
		a.Kind = AttrInt
		if w.I != nil {
			a.Int = *w.I
		}
	case "bool":
		a.Kind = AttrBool
		if w.B != nil {
			a.Bool = *w.B
		}
	default:
		return fmt.Errorf("obs: attr %q: unknown kind %q", w.K, w.T)
	}
	return nil
}

// Value renders the attribute's value for display.
func (a Attr) Value() string {
	switch a.Kind {
	case AttrString:
		return a.Str
	case AttrFloat:
		return formatValue(a.Num)
	case AttrInt:
		return strconv.FormatInt(a.Int, 10)
	default:
		return strconv.FormatBool(a.Bool)
	}
}

// SpanData is one finished span, times in nanoseconds since the
// tracer's epoch. It is the export currency: Drain returns SpanData,
// and internal/trace persists it as JSONL or a Chrome trace.
type SpanData struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	Err     string `json:"err,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Duration returns the span's wall duration.
func (d SpanData) Duration() time.Duration {
	return time.Duration(d.EndNS - d.StartNS)
}

// Attr returns the named attribute and whether it is present.
func (d SpanData) Attr(key string) (Attr, bool) {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// DefaultMaxSpans bounds a tracer's finished-span buffer when
// SpanOptions.MaxSpans is zero.
const DefaultMaxSpans = 1 << 16

// SpanOptions configures a SpanTracer.
type SpanOptions struct {
	// Clock supplies span timestamps (nil means SystemClock). Injectable
	// so instrumented deterministic packages never read the wall clock
	// themselves, and so tests get reproducible timings.
	Clock Clock
	// SampleEvery keeps 1 of every N root spans (<= 1 keeps all).
	// Children of a sampled-out root are dropped with it.
	SampleEvery int
	// MaxSpans bounds the finished-span buffer (0 means
	// DefaultMaxSpans); the oldest spans are dropped, and counted, once
	// the bound is hit.
	MaxSpans int
}

// SpanTracer starts, pools and collects spans. It is safe for
// concurrent use; an individual Span is owned by one goroutine at a
// time (StartChild may be called from a different goroutine than the
// parent's, which is how batch workers attach their task spans).
type SpanTracer struct {
	clock       Clock
	sampleEvery uint64
	maxSpans    int
	epoch       time.Time

	rootSeq atomic.Uint64 // sampling decisions
	nextID  atomic.Uint64 // span IDs (never zero: zero Parent means root)

	mu       sync.Mutex
	free     []*Span // recycled span slots
	done     []*Span // finished spans; a ring once maxSpans is reached
	doneNext int     // ring cursor (oldest slot) once wrapped
	dropped  uint64
	active   int
	sampled  uint64 // root spans dropped by sampling
}

// NewSpanTracer returns a tracer with the given options.
func NewSpanTracer(o SpanOptions) *SpanTracer {
	max := o.MaxSpans
	if max <= 0 {
		max = DefaultMaxSpans
	}
	se := uint64(1)
	if o.SampleEvery > 1 {
		se = uint64(o.SampleEvery)
	}
	clk := ClockOr(o.Clock)
	return &SpanTracer{clock: clk, sampleEvery: se, maxSpans: max, epoch: clk.Now()}
}

// Span is one in-flight pipeline stage. The zero value is not used;
// obtain spans from a tracer (or nil, which every method tolerates).
type Span struct {
	tracer *SpanTracer
	data   SpanData
	ended  bool
}

// StartSpan starts a root span. It returns nil on a nil tracer and for
// sampled-out roots; every Span method no-ops on nil, so callers never
// branch.
func (t *SpanTracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	if t.sampleEvery > 1 && t.rootSeq.Add(1)%t.sampleEvery != 1 {
		t.mu.Lock()
		t.sampled++
		t.mu.Unlock()
		return nil
	}
	return t.start(name, 0)
}

// start allocates (or recycles) a span slot.
func (t *SpanTracer) start(name string, parent uint64) *Span {
	now := t.clock.Now().Sub(t.epoch).Nanoseconds()
	t.mu.Lock()
	var s *Span
	if n := len(t.free); n > 0 {
		s = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
	} else {
		s = &Span{}
	}
	t.active++
	t.mu.Unlock()
	attrs := s.data.Attrs[:0] // reuse the recycled slot's attr capacity
	s.data = SpanData{ID: t.nextID.Add(1), Parent: parent, Name: name, StartNS: now, Attrs: attrs}
	s.tracer = t
	s.ended = false
	return s
}

// StartChild starts a span nested under s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(name, s.data.ID)
}

// ID returns the span's tracer-unique id (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// SetString attaches a string attribute.
func (s *Span) SetString(key, v string) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Kind: AttrString, Str: v})
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Kind: AttrFloat, Num: v})
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Kind: AttrInt, Int: v})
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Kind: AttrBool, Bool: v})
}

// SetError marks the span failed with err's message (nil err is a
// no-op, so unconditional `sp.SetError(err)` before End reads cleanly).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.data.Err = err.Error()
}

// End finishes the span and hands it to the tracer's finished buffer.
// Ending twice is a no-op, so a deferred End composes with early Ends.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	t := s.tracer
	s.data.EndNS = t.clock.Now().Sub(t.epoch).Nanoseconds()
	t.mu.Lock()
	if len(t.done) < t.maxSpans {
		t.done = append(t.done, s)
	} else {
		old := t.done[t.doneNext]
		t.done[t.doneNext] = s
		t.doneNext = (t.doneNext + 1) % len(t.done)
		t.dropped++
		old.data.Attrs = old.data.Attrs[:0]
		t.free = append(t.free, old)
	}
	t.active--
	t.mu.Unlock()
}

// Drain returns every finished span, oldest first, and recycles their
// slots. Times are nanoseconds since the tracer's epoch.
func (t *SpanTracer) Drain() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.done))
	emit := func(s *Span) {
		d := s.data
		if len(d.Attrs) > 0 {
			d.Attrs = append([]Attr(nil), d.Attrs...)
		} else {
			d.Attrs = nil
		}
		out = append(out, d)
		s.data.Attrs = s.data.Attrs[:0]
		t.free = append(t.free, s)
	}
	for i := t.doneNext; i < len(t.done); i++ {
		emit(t.done[i])
	}
	for i := 0; i < t.doneNext; i++ {
		emit(t.done[i])
	}
	t.done = t.done[:0]
	t.doneNext = 0
	return out
}

// Finished returns how many spans await Drain.
func (t *SpanTracer) Finished() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}

// Active returns how many started spans have not Ended.
func (t *SpanTracer) Active() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// Dropped returns how many finished spans the MaxSpans bound displaced
// and how many root spans sampling skipped.
func (t *SpanTracer) Dropped() (overflowed, sampled uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped, t.sampled
}

// activeSpanTracer is the process-wide tracer sprintctl's -trace flag
// installs. Instrumented packages reach it through StartSpanCtx when no
// span rides the context; the disabled path is one atomic load and a
// nil check.
var activeSpanTracer atomic.Pointer[SpanTracer]

// ActiveSpanTracer returns the process-wide span tracer, nil when
// tracing is off.
func ActiveSpanTracer() *SpanTracer { return activeSpanTracer.Load() }

// SetActiveSpanTracer installs t as the process-wide tracer (nil turns
// tracing off) and returns the previous one.
func SetActiveSpanTracer(t *SpanTracer) *SpanTracer { return activeSpanTracer.Swap(t) }

// spanCtxKey keys the span a context carries.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s (ctx unchanged when s is nil).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span ctx carries, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpanCtx starts a span as a child of the context's span, falling
// back to a root on the active tracer. It returns nil (a no-op span)
// when neither is present — the disabled-tracing hot path.
func StartSpanCtx(ctx context.Context, name string) *Span {
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.StartChild(name)
	}
	return ActiveSpanTracer().StartSpan(name)
}
