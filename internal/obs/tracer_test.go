package obs

import (
	"sync"
	"testing"
)

func ev(i int) QueryEvent {
	return QueryEvent{Type: EvArrival, Time: float64(i), Query: i}
}

func TestRingTracerRetainsAll(t *testing.T) {
	tr := NewRingTracer(8)
	for i := 0; i < 5; i++ {
		tr.Event(ev(i))
	}
	events := tr.Events()
	if len(events) != 5 || tr.Total() != 5 {
		t.Fatalf("%d events, total %d; want 5, 5", len(events), tr.Total())
	}
	for i, e := range events {
		if e.Query != i {
			t.Fatalf("event %d is query %d; not oldest-first", i, e.Query)
		}
	}
}

func TestRingTracerWraparound(t *testing.T) {
	tr := NewRingTracer(4)
	for i := 0; i < 6; i++ {
		tr.Event(ev(i))
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	// The ring keeps the newest 4 (queries 2..5), oldest first.
	for i, e := range events {
		if e.Query != i+2 {
			t.Fatalf("events %v: want queries 2..5 oldest-first", events)
		}
	}
	if tr.Total() != 6 {
		t.Fatalf("total %d, want 6 (evicted events still counted)", tr.Total())
	}
	if got := tr.Count(EvArrival); got != 4 {
		t.Fatalf("Count(arrival) = %d over the retained window, want 4", got)
	}
}

func TestRingTracerDefaultCapacity(t *testing.T) {
	tr := NewRingTracer(0)
	for i := 0; i < 5000; i++ {
		tr.Event(ev(i))
	}
	if got := len(tr.Events()); got != 4096 {
		t.Fatalf("default capacity retained %d, want 4096", got)
	}
}

func TestRingTracerConcurrent(t *testing.T) {
	// RingTracer is shared across parallel Predict replications; this is
	// the -race check for that contract.
	tr := NewRingTracer(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Event(ev(i))
				tr.Events()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 8*500 {
		t.Fatalf("total %d, want %d", tr.Total(), 8*500)
	}
}

func TestTracerFuncAndMultiTracer(t *testing.T) {
	var got []QueryEvent
	fn := TracerFunc(func(e QueryEvent) { got = append(got, e) })
	ring := NewRingTracer(4)
	multi := MultiTracer{fn, nil, ring} // nil entries are skipped
	multi.Event(ev(7))
	if len(got) != 1 || got[0].Query != 7 {
		t.Fatalf("TracerFunc saw %v", got)
	}
	if ring.Total() != 1 {
		t.Fatalf("ring saw %d events", ring.Total())
	}
}
