package obs

import (
	"strings"
	"testing"
)

func TestLoggerLevels(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelInfo)
	l.Debugf("hidden %d", 1)
	l.Infof("info %d", 2)
	l.Warnf("warn %d", 3)
	l.Errorf("fail %d", 4)
	got := buf.String()
	if strings.Contains(got, "hidden") {
		t.Fatalf("debug line leaked at info level:\n%s", got)
	}
	for _, want := range []string{"info 2\n", "warning: warn 3\n", "error: fail 4\n"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestLoggerSetLevel(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelError)
	l.Infof("quiet")
	l.SetLevel(LevelDebug)
	l.Debugf("loud")
	if got := buf.String(); got != "loud\n" {
		t.Fatalf("output %q, want only the post-SetLevel debug line", got)
	}
	l.SetLevel(LevelSilent)
	l.Errorf("nothing")
	if got := buf.String(); got != "loud\n" {
		t.Fatalf("silent level still wrote: %q", got)
	}
}

func TestLoggerNilSafety(t *testing.T) {
	var l *Logger
	// Must not panic; library code logs unconditionally.
	l.Debugf("a")
	l.Infof("b")
	l.Warnf("c")
	l.Errorf("d")
	l.SetLevel(LevelDebug)
}
