package obs

import "testing"

// BenchmarkRingTracerEvent is the uncontended cost of recording one
// lifecycle event.
func BenchmarkRingTracerEvent(b *testing.B) {
	tr := NewRingTracer(4096)
	e := ev(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event(e)
	}
}

// BenchmarkRingTracerEventParallel is the contended cost: every
// simulator worker hammering one shared tracer, the shape parallel
// Predict replications produce.
func BenchmarkRingTracerEventParallel(b *testing.B) {
	tr := NewRingTracer(4096)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		e := ev(2)
		for pb.Next() {
			tr.Event(e)
		}
	})
}
