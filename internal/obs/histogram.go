package obs

import (
	"math"
	"sort"
	"sync"
)

// DefaultHistogramWindow is the number of observations a histogram retains
// when the registry call does not specify a window.
const DefaultHistogramWindow = 1024

// Histogram is a windowed distribution metric: it retains the last
// `window` observations in a ring buffer and reports quantiles over that
// window, plus an all-time count and sum. Windowing keeps long runs
// honest — the quantiles track recent behaviour instead of averaging the
// whole process lifetime — and bounds memory.
//
// All methods are safe for concurrent use and no-op on a nil receiver.
type Histogram struct {
	mu    sync.Mutex
	buf   []float64 // ring of the last len(buf) observations
	next  int       // ring write cursor
	fill  int       // how much of buf is valid
	count uint64    // all-time observations
	sum   float64   // all-time sum
}

func newHistogram(window int) *Histogram {
	if window <= 0 {
		window = DefaultHistogramWindow
	}
	return &Histogram{buf: make([]float64, window)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	h.buf[h.next] = v
	h.next = (h.next + 1) % len(h.buf)
	if h.fill < len(h.buf) {
		h.fill++
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram: the windowed
// observations (sorted ascending) plus the all-time count and sum.
type HistogramSnapshot struct {
	Window []float64
	Count  uint64
	Sum    float64
}

// Quantile returns the q-quantile (q in [0,1]) of the windowed
// observations by the nearest-rank method, or NaN when the window is
// empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	n := len(s.Window)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.Window[0]
	}
	if q >= 1 {
		return s.Window[n-1]
	}
	rank := int(math.Ceil(q*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.Window[rank]
}

// Mean returns the windowed mean, or NaN when the window is empty.
func (s HistogramSnapshot) Mean() float64 {
	if len(s.Window) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, v := range s.Window {
		total += v
	}
	return total / float64(len(s.Window))
}

// Snapshot copies out the current window (sorted) and lifetime totals.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	out := HistogramSnapshot{
		Window: make([]float64, h.fill),
		Count:  h.count,
		Sum:    h.sum,
	}
	copy(out.Window, h.buf[:h.fill])
	h.mu.Unlock()
	sort.Float64s(out.Window)
	return out
}

// Count returns the all-time observation count.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}
