package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry. All methods are safe on a nil receiver
// (they no-op), so instrumented code never has to branch on "is
// observability configured".
type Counter struct {
	bits atomic.Uint64 // float64 bits, CAS-added
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 || math.IsNaN(delta) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down. Nil receivers no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// metric is one registered name.
type metric struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. Get-or-create accessors make call sites
// idempotent; a nil *Registry hands back nil metrics whose methods no-op,
// so optional instrumentation threads through APIs as a single pointer.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the internal packages
// record into when no explicit registry is supplied.
func Default() *Registry { return defaultRegistry }

// Or returns r, or the default registry when r is nil. It is the helper
// instrumented packages use to resolve an optional Metrics field.
func Or(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return defaultRegistry
}

// lookup returns the existing metric under name, verifying its kind.
func (r *Registry) lookup(name string, kind metricKind) (*metric, bool) {
	m, ok := r.metrics[name]
	if ok && m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, m.kind, kind))
	}
	return m, ok
}

// Counter returns the counter registered under name, creating it (with
// help text) on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	m, ok := r.lookup(name, kindCounter)
	r.mu.RUnlock()
	if ok {
		return m.counter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindCounter); ok {
		return m.counter
	}
	c := &Counter{}
	r.metrics[name] = &metric{name: name, help: help, kind: kindCounter, counter: c}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	m, ok := r.lookup(name, kindGauge)
	r.mu.RUnlock()
	if ok {
		return m.gauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindGauge); ok {
		return m.gauge
	}
	g := &Gauge{}
	r.metrics[name] = &metric{name: name, help: help, kind: kindGauge, gauge: g}
	return g
}

// Histogram returns the windowed histogram registered under name, creating
// it with the given window (number of retained observations; 0 means
// DefaultHistogramWindow) on first use.
func (r *Registry) Histogram(name, help string, window int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	m, ok := r.lookup(name, kindHistogram)
	r.mu.RUnlock()
	if ok {
		return m.hist
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookup(name, kindHistogram); ok {
		return m.hist
	}
	h := newHistogram(window)
	r.metrics[name] = &metric{name: name, help: help, kind: kindHistogram, hist: h}
	return h
}

// sorted returns the registered metrics in name order.
func (r *Registry) sorted() []*metric {
	r.mu.RLock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// formatValue renders a sample the way the Prometheus text format expects.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// summaryQuantiles are the quantile labels exported for histograms.
var summaryQuantiles = []float64{0.5, 0.9, 0.95, 0.99}

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4). Histograms export as summaries with quantile labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.sorted() {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
			return err
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.name, formatValue(m.counter.Value())); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.name, formatValue(m.gauge.Value())); err != nil {
				return err
			}
		case kindHistogram:
			s := m.hist.Snapshot()
			for _, q := range summaryQuantiles {
				if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n",
					m.name, strconv.FormatFloat(q, 'g', -1, 64), formatValue(s.Quantile(q))); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.name, formatValue(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", m.name, s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonValue returns the exposition value for one metric. NaN quantiles are
// reported as null (JSON has no NaN).
func (m *metric) jsonValue() any {
	switch m.kind {
	case kindCounter:
		return m.counter.Value()
	case kindGauge:
		return m.gauge.Value()
	default:
		s := m.hist.Snapshot()
		qs := make(map[string]any, len(summaryQuantiles))
		for _, q := range summaryQuantiles {
			v := s.Quantile(q)
			key := "p" + strconv.FormatFloat(q*100, 'g', -1, 64)
			if math.IsNaN(v) {
				qs[key] = nil
			} else {
				qs[key] = v
			}
		}
		return map[string]any{"count": s.Count, "sum": s.Sum, "quantiles": qs}
	}
}

// snapshotJSON builds the JSON exposition object.
func (r *Registry) snapshotJSON() map[string]any {
	out := make(map[string]any)
	for _, m := range r.sorted() {
		out[m.name] = m.jsonValue()
	}
	return out
}

// WriteJSON writes the registry as one JSON object keyed by metric name.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshotJSON())
}

// PublishExpvar publishes the registry under the given expvar name, so it
// appears in /debug/vars. Publishing the same name twice panics (expvar
// semantics); sprintctl guards with a sync.Once.
func (r *Registry) PublishExpvar(name string) {
	reg := r
	expvar.Publish(name, expvar.Func(func() any {
		if reg == nil {
			return nil
		}
		return reg.snapshotJSON()
	}))
}

var publishDefaultOnce sync.Once

// PublishDefault publishes the default registry as expvar "mdsprint",
// once per process.
func PublishDefault() {
	publishDefaultOnce.Do(func() { defaultRegistry.PublishExpvar("mdsprint") })
}
