package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Problem severities. Critical problems mean the control plane is
// actively degraded; warnings mean it took damage on the way here.
const (
	SeverityWarning  = "warning"
	SeverityCritical = "critical"
)

// Problem is one failed health check: what was checked, how bad it is,
// and the observed value against the threshold that tripped it.
type Problem struct {
	Check     string  `json:"check"`
	Severity  string  `json:"severity"`
	Detail    string  `json:"detail"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
}

// Health is a kubenow-style "only what's broken" verdict over a metrics
// registry: empty Problems means every check passed and there is
// nothing to say.
type Health struct {
	Healthy  bool      `json:"healthy"`
	Problems []Problem `json:"problems,omitempty"`
}

// Critical reports whether any problem is severity-critical.
func (h Health) Critical() bool {
	for _, p := range h.Problems {
		if p.Severity == SeverityCritical {
			return true
		}
	}
	return false
}

// HealthThresholds tune the rate-based health checks. Zero values take
// the defaults.
type HealthThresholds struct {
	// BudgetExhaustionsPerRun is the tolerated ratio of simulator
	// budget exhaustions to simulator runs (default 0.5): above it, the
	// sprint budget is undersized for the load.
	BudgetExhaustionsPerRun float64
	// SprintsPerQuery is the tolerated ratio of sprints to simulated
	// queries (default 0.9): above it, nearly every query sprints and
	// timeouts are doing no gating.
	SprintsPerQuery float64
}

func (t HealthThresholds) withDefaults() HealthThresholds {
	if t.BudgetExhaustionsPerRun <= 0 {
		t.BudgetExhaustionsPerRun = 0.5
	}
	if t.SprintsPerQuery <= 0 {
		t.SprintsPerQuery = 0.9
	}
	return t
}

// Value returns the current value of the named counter or gauge, and
// whether it is registered. Histograms report false: a summary has no
// single value.
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.metrics[name]
	if !ok {
		return 0, false
	}
	switch m.kind {
	case kindCounter:
		return m.counter.Value(), true
	case kindGauge:
		return m.gauge.Value(), true
	default:
		return 0, false
	}
}

// EvaluateHealth runs the degradation health checks against a registry.
// Checks read only registered metrics — a metric that was never
// registered cannot fail its check, so a fresh registry (or a run that
// never touched the online control plane) is vacuously healthy. Check
// order is fixed, so reports are deterministic.
func EvaluateHealth(r *Registry, th HealthThresholds) Health {
	th = th.withDefaults()
	r = Or(r)
	var probs []Problem

	// Degradation level in force: anything above hybrid means the
	// model-driven tier is out of control right now.
	if lvl, ok := r.Value("mdsprint_online_level"); ok && lvl > 0 {
		tier := "noml"
		if lvl >= 2 {
			tier = "static"
		}
		probs = append(probs, Problem{
			Check: "tier-degraded", Severity: SeverityCritical,
			Detail: fmt.Sprintf("fallback chain serving from the %s tier (level %.0f)", tier, lvl),
			Value:  lvl,
		})
	}
	// Circuit breaker position: open means searches are being refused.
	//lint:ignore floateq the state gauge only ever holds the exact integers 0, 1, 2
	if st, ok := r.Value("mdsprint_fault_breaker_state"); ok && st != 0 {
		sev, state := SeverityCritical, "open"
		//lint:ignore floateq the state gauge only ever holds the exact integers 0, 1, 2
		if st == 2 {
			sev, state = SeverityWarning, "half-open"
		}
		probs = append(probs, Problem{
			Check: "breaker-open", Severity: sev,
			Detail: fmt.Sprintf("circuit breaker %s", state),
			Value:  st,
		})
	}
	// Budget exhaustion rate across simulator runs.
	if runs, ok := r.Value("mdsprint_sim_runs_total"); ok && runs > 0 {
		if ex, _ := r.Value("mdsprint_sim_budget_exhaustions_total"); ex/runs > th.BudgetExhaustionsPerRun {
			probs = append(probs, Problem{
				Check: "budget-exhaustion", Severity: SeverityCritical,
				Detail: fmt.Sprintf("%.0f of %.0f simulator runs exhausted the sprint budget", ex, runs),
				Value:  ex / runs, Threshold: th.BudgetExhaustionsPerRun,
			})
		}
	}
	// Historical damage: demotions, breaker trips and prediction
	// failures say the run degraded at some point, even if recovered.
	if d, ok := r.Value("mdsprint_online_demotions_total"); ok && d > 0 {
		p, _ := r.Value("mdsprint_online_promotions_total")
		probs = append(probs, Problem{
			Check: "demotions", Severity: SeverityWarning,
			Detail: fmt.Sprintf("%.0f fallback demotion(s), %.0f promotion(s)", d, p),
			Value:  d,
		})
	}
	if tr, ok := r.Value("mdsprint_fault_breaker_trips_total"); ok && tr > 0 {
		probs = append(probs, Problem{
			Check: "breaker-trips", Severity: SeverityWarning,
			Detail: fmt.Sprintf("circuit breaker tripped open %.0f time(s)", tr),
			Value:  tr,
		})
	}
	if pf, ok := r.Value("mdsprint_online_predict_failures_total"); ok && pf > 0 {
		probs = append(probs, Problem{
			Check: "predict-failures", Severity: SeverityWarning,
			Detail: fmt.Sprintf("%.0f model prediction(s) failed during health tracking", pf),
			Value:  pf,
		})
	}
	// Sprint saturation: timeouts have stopped gating when every query
	// sprints.
	if q, ok := r.Value("mdsprint_sim_queries_total"); ok && q > 0 {
		if s, _ := r.Value("mdsprint_sim_sprints_total"); s/q > th.SprintsPerQuery {
			probs = append(probs, Problem{
				Check: "sprint-saturation", Severity: SeverityWarning,
				Detail: fmt.Sprintf("%.0f sprints across %.0f queries: timeouts are not gating", s, q),
				Value:  s / q, Threshold: th.SprintsPerQuery,
			})
		}
	}

	return Health{Healthy: len(probs) == 0, Problems: probs}
}

// HealthHandler serves EvaluateHealth over r as JSON: 200 when no check
// is critical, 503 when the control plane is actively degraded (so load
// balancers and probes can act on status alone).
func HealthHandler(r *Registry, th HealthThresholds) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		h := EvaluateHealth(r, th)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if h.Critical() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		//lint:ignore errdrop best-effort write; a departed probe client has nowhere to report the error
		_ = enc.Encode(h)
	})
}
