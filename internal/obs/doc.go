// Package obs is the repository's observability layer: a zero-dependency
// (standard library only) instrumentation toolkit shared by the simulator
// core, the profiling/calibration pipeline and cmd/sprintctl.
//
// It provides four pieces:
//
//   - Registry — a concurrency-safe metrics registry of counters, gauges
//     and windowed histograms (with quantiles), exposable as Prometheus
//     text format (WritePrometheus), JSON (WriteJSON) and expvar
//     (PublishExpvar). Default() is the process-wide registry every
//     internal package records into; tests pass their own NewRegistry().
//
//   - QueryTracer — a nil-safe hook interface receiving per-query
//     lifecycle events from the timeout-aware queue simulator
//     (internal/queuesim): arrival, service start, sprint start/stop,
//     timeout fired, budget exhausted, refill, departure. RingTracer is
//     the bounded in-memory sink; internal/trace adds JSONL export.
//
//   - Logger — a small leveled logger (Debug/Info/Warn/Error) so CLI
//     progress output composes with shell pipelines (results on stdout,
//     narration on stderr).
//
//   - DebugMux — an http.ServeMux serving /metrics (Prometheus text),
//     /debug/vars (expvar) and /debug/pprof, mounted by sprintctl's
//     -debug-addr flag so long profiling runs can be watched and
//     profiled live.
//
// Everything here is off the hot path by construction: simulators batch
// their metric updates to one flush per run, and every tracer hook site
// is guarded by a nil check (see BenchmarkSimulateOne for the enforced
// <5% disabled-overhead budget).
package obs
