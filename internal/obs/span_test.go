package obs

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestSpanNilSafety(t *testing.T) {
	var tr *SpanTracer
	sp := tr.StartSpan("root")
	if sp != nil {
		t.Fatalf("nil tracer started a span")
	}
	// Every method must no-op on a nil span.
	sp.SetString("k", "v")
	sp.SetFloat("k", 1)
	sp.SetInt("k", 1)
	sp.SetBool("k", true)
	sp.SetError(errors.New("x"))
	sp.End()
	if sp.StartChild("child") != nil {
		t.Fatalf("nil span started a child")
	}
	if sp.ID() != 0 {
		t.Fatalf("nil span has id %d", sp.ID())
	}
	if got := tr.Drain(); got != nil {
		t.Fatalf("nil tracer drained %v", got)
	}
	if tr.Finished() != 0 || tr.Active() != 0 {
		t.Fatalf("nil tracer reports activity")
	}
}

func TestStartSpanCtxDisabled(t *testing.T) {
	prev := SetActiveSpanTracer(nil)
	defer SetActiveSpanTracer(prev)
	if sp := StartSpanCtx(context.Background(), "x"); sp != nil {
		t.Fatalf("span started with tracing disabled")
	}
	//lint:ignore nondeterm obs is not a deterministic package; explicit nil-ctx tolerance check
	if sp := StartSpanCtx(nil, "x"); sp != nil {
		t.Fatalf("span started from a nil context")
	}
}

func TestSpanHierarchyAndAttrs(t *testing.T) {
	clk := NewManualClock(time.Unix(100, 0))
	tr := NewSpanTracer(SpanOptions{Clock: clk})
	root := tr.StartSpan("pipeline")
	clk.Advance(time.Millisecond)
	child := root.StartChild("sweep")
	child.SetString("cache", "hit")
	child.SetFloat("timeout_s", 42.5)
	child.SetInt("worker", 3)
	child.SetBool("ok", true)
	clk.Advance(2 * time.Millisecond)
	child.SetError(errors.New("boom"))
	child.End()
	clk.Advance(time.Millisecond)
	root.End()

	if tr.Active() != 0 {
		t.Fatalf("active %d after ending all spans", tr.Active())
	}
	spans := tr.Drain()
	if len(spans) != 2 {
		t.Fatalf("drained %d spans, want 2", len(spans))
	}
	// End order: child first.
	c, r := spans[0], spans[1]
	if c.Name != "sweep" || r.Name != "pipeline" {
		t.Fatalf("drained order %q, %q", c.Name, r.Name)
	}
	if c.Parent != r.ID || r.Parent != 0 {
		t.Fatalf("parentage: child.Parent=%d root.ID=%d root.Parent=%d", c.Parent, r.ID, r.Parent)
	}
	if c.StartNS != int64(time.Millisecond) || c.Duration() != 2*time.Millisecond {
		t.Fatalf("child timing start=%d dur=%v", c.StartNS, c.Duration())
	}
	if r.Duration() != 4*time.Millisecond {
		t.Fatalf("root duration %v", r.Duration())
	}
	if c.Err != "boom" {
		t.Fatalf("child err %q", c.Err)
	}
	if a, ok := c.Attr("cache"); !ok || a.Str != "hit" || a.Kind != AttrString {
		t.Fatalf("cache attr %+v ok=%v", a, ok)
	}
	if a, ok := c.Attr("timeout_s"); !ok || a.Num != 42.5 {
		t.Fatalf("timeout attr %+v", a)
	}
	if a, ok := c.Attr("worker"); !ok || a.Int != 3 {
		t.Fatalf("worker attr %+v", a)
	}
	if a, ok := c.Attr("ok"); !ok || !a.Bool {
		t.Fatalf("ok attr %+v", a)
	}
	if _, ok := c.Attr("absent"); ok {
		t.Fatalf("found absent attr")
	}
	// Drain leaves the buffer empty and IDs keep advancing.
	if tr.Finished() != 0 {
		t.Fatalf("finished %d after drain", tr.Finished())
	}
}

func TestSpanDoubleEndIsNoop(t *testing.T) {
	tr := NewSpanTracer(SpanOptions{})
	sp := tr.StartSpan("once")
	sp.End()
	sp.End()
	if got := tr.Finished(); got != 1 {
		t.Fatalf("finished %d after double End, want 1", got)
	}
	if tr.Active() != 0 {
		t.Fatalf("active %d", tr.Active())
	}
}

func TestSpanSampling(t *testing.T) {
	tr := NewSpanTracer(SpanOptions{SampleEvery: 3})
	kept := 0
	for i := 0; i < 9; i++ {
		sp := tr.StartSpan("root")
		if sp != nil {
			kept++
			// Children of a kept root are always kept.
			c := sp.StartChild("child")
			if c == nil {
				t.Fatalf("child of kept root sampled out")
			}
			c.End()
			sp.End()
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d of 9 roots with SampleEvery=3, want 3", kept)
	}
	if _, sampled := tr.Dropped(); sampled != 6 {
		t.Fatalf("sampled-out count %d, want 6", sampled)
	}
}

func TestSpanMaxSpansOverflow(t *testing.T) {
	tr := NewSpanTracer(SpanOptions{MaxSpans: 4})
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan("s")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	if tr.Finished() != 4 {
		t.Fatalf("finished %d, want 4", tr.Finished())
	}
	if dropped, _ := tr.Dropped(); dropped != 6 {
		t.Fatalf("dropped %d, want 6", dropped)
	}
	spans := tr.Drain()
	for j, d := range spans {
		a, ok := d.Attr("i")
		if !ok || a.Int != int64(6+j) {
			t.Fatalf("retained span %d has i=%v; want newest 4 oldest-first", j, a.Int)
		}
	}
}

func TestSpanPoolRecycling(t *testing.T) {
	tr := NewSpanTracer(SpanOptions{})
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			sp := tr.StartSpan("r")
			sp.SetInt("i", int64(i))
			c := sp.StartChild("c")
			c.SetString("k", "v")
			c.End()
			sp.End()
		}
		spans := tr.Drain()
		if len(spans) != 100 {
			t.Fatalf("round %d drained %d spans", round, len(spans))
		}
		// Recycled slots must not leak attributes between tenants.
		for _, d := range spans {
			switch d.Name {
			case "r":
				if len(d.Attrs) != 1 || d.Attrs[0].Key != "i" {
					t.Fatalf("root attrs leaked: %+v", d.Attrs)
				}
			case "c":
				if len(d.Attrs) != 1 || d.Attrs[0].Key != "k" {
					t.Fatalf("child attrs leaked: %+v", d.Attrs)
				}
			}
		}
	}
}

// TestSpanSteadyStateAllocs pins the pooling contract: once warmed, a
// start/attr/end cycle recycles span slots and attr capacity instead of
// allocating.
func TestSpanSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}
	tr := NewSpanTracer(SpanOptions{MaxSpans: 8})
	cycle := func() {
		sp := tr.StartSpan("s")
		sp.SetFloat("v", 1.5)
		c := sp.StartChild("c")
		c.SetInt("w", 2)
		c.End()
		sp.End()
	}
	for i := 0; i < 32; i++ {
		cycle() // warm the pool past the MaxSpans ring
	}
	if got := testing.AllocsPerRun(200, cycle); got > 0 {
		t.Fatalf("steady-state span cycle allocates %.1f/op, want 0", got)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewSpanTracer(SpanOptions{})
	root := tr.StartSpan("batch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c := root.StartChild("task")
				c.SetInt("worker", int64(w))
				c.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	spans := tr.Drain()
	if len(spans) != 801 {
		t.Fatalf("drained %d spans, want 801", len(spans))
	}
	ids := make(map[uint64]bool, len(spans))
	for _, d := range spans {
		if ids[d.ID] {
			t.Fatalf("duplicate span id %d", d.ID)
		}
		ids[d.ID] = true
	}
}

func TestActiveSpanTracerInstall(t *testing.T) {
	tr := NewSpanTracer(SpanOptions{})
	prev := SetActiveSpanTracer(tr)
	defer SetActiveSpanTracer(prev)
	sp := StartSpanCtx(context.Background(), "root")
	if sp == nil {
		t.Fatalf("no span from active tracer")
	}
	child := StartSpanCtx(ContextWithSpan(context.Background(), sp), "child")
	if child == nil {
		t.Fatalf("no child from context span")
	}
	child.End()
	sp.End()
	spans := tr.Drain()
	if len(spans) != 2 || spans[0].Parent != spans[1].ID {
		t.Fatalf("context parentage broken: %+v", spans)
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatalf("empty context carries a span")
	}
}

func TestAttrJSONRoundTrip(t *testing.T) {
	attrs := []Attr{
		{Key: "s", Kind: AttrString, Str: "hit"},
		{Key: "empty", Kind: AttrString},
		{Key: "f", Kind: AttrFloat, Num: 42.5},
		{Key: "fz", Kind: AttrFloat, Num: 0},
		{Key: "nan", Kind: AttrFloat, Num: math.NaN()},
		{Key: "pinf", Kind: AttrFloat, Num: math.Inf(1)},
		{Key: "ninf", Kind: AttrFloat, Num: math.Inf(-1)},
		{Key: "i", Kind: AttrInt, Int: -9007199254740993}, // beyond float53 exactness
		{Key: "iz", Kind: AttrInt},
		{Key: "b", Kind: AttrBool, Bool: true},
		{Key: "bz", Kind: AttrBool},
	}
	data, err := json.Marshal(attrs)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []Attr
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != len(attrs) {
		t.Fatalf("round-tripped %d attrs, want %d", len(back), len(attrs))
	}
	for i, a := range attrs {
		b := back[i]
		if a.Key != b.Key || a.Kind != b.Kind || a.Str != b.Str || a.Int != b.Int || a.Bool != b.Bool {
			t.Fatalf("attr %d: %+v != %+v", i, a, b)
		}
		if math.IsNaN(a.Num) != math.IsNaN(b.Num) {
			t.Fatalf("attr %d NaN mismatch", i)
		}
		if !math.IsNaN(a.Num) && a.Num != b.Num {
			t.Fatalf("attr %d num %v != %v", i, a.Num, b.Num)
		}
	}
	if err := json.Unmarshal([]byte(`{"k":"x","t":"wat"}`), &back[0]); err == nil {
		t.Fatalf("unknown kind decoded without error")
	}
	if err := json.Unmarshal([]byte(`{"k":"x","t":"float","s":"zzz"}`), &back[0]); err == nil {
		t.Fatalf("bad special float decoded without error")
	}
}

func TestAttrValueRendering(t *testing.T) {
	cases := []struct {
		a    Attr
		want string
	}{
		{Attr{Kind: AttrString, Str: "v"}, "v"},
		{Attr{Kind: AttrFloat, Num: 1.5}, "1.5"},
		{Attr{Kind: AttrInt, Int: -2}, "-2"},
		{Attr{Kind: AttrBool, Bool: true}, "true"},
	}
	for _, c := range cases {
		if got := c.a.Value(); got != c.want {
			t.Fatalf("Value(%+v) = %q, want %q", c.a, got, c.want)
		}
	}
}
