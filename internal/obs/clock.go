package obs

import (
	"sync"
	"time"
)

// Clock abstracts wall-clock reads so deterministic packages never call
// time.Now directly (the nondeterm analyzer forbids it there). The queue
// simulator's event loop runs on virtual time; the only real-time reads
// it needs are for run-duration metrics, and those flow through an
// injectable Clock so measured regions are reproducible under test.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// systemClock reads the real wall clock.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// SystemClock is the real wall clock, the default everywhere a Clock is
// injectable.
var SystemClock Clock = systemClock{}

// ClockOr returns c, or SystemClock when c is nil — the standard
// defaulting idiom for injectable clocks.
func ClockOr(c Clock) Clock {
	if c == nil {
		return SystemClock
	}
	return c
}

// ManualClock is a settable Clock for tests: time stands still until
// Advance or Set moves it. It is safe for concurrent use.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a manual clock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now returns the clock's current frozen time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// Set jumps the clock to t.
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}
