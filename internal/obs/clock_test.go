package obs

import (
	"testing"
	"time"
)

func TestClockOrDefaultsToSystem(t *testing.T) {
	if ClockOr(nil) != SystemClock {
		t.Fatal("ClockOr(nil) is not the system clock")
	}
	mc := NewManualClock(time.Unix(100, 0))
	if ClockOr(mc) != mc {
		t.Fatal("ClockOr did not pass through a non-nil clock")
	}
	before := time.Now()
	got := SystemClock.Now()
	if got.Before(before.Add(-time.Second)) || got.After(before.Add(time.Minute)) {
		t.Fatalf("SystemClock.Now() = %v, far from %v", got, before)
	}
}

func TestManualClock(t *testing.T) {
	base := time.Unix(1000, 0)
	mc := NewManualClock(base)
	if !mc.Now().Equal(base) {
		t.Fatalf("Now() = %v, want %v", mc.Now(), base)
	}
	mc.Advance(3 * time.Second)
	if got := mc.Now(); !got.Equal(base.Add(3 * time.Second)) {
		t.Fatalf("after Advance: %v", got)
	}
	// Time must not move unless told to.
	if !mc.Now().Equal(mc.Now()) {
		t.Fatal("manual clock drifted between reads")
	}
	reset := time.Unix(5000, 0)
	mc.Set(reset)
	if !mc.Now().Equal(reset) {
		t.Fatalf("after Set: %v", mc.Now())
	}
}
