package obs

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEvaluateHealthQuietWhenHealthy(t *testing.T) {
	// A fresh registry has nothing registered: vacuously healthy.
	h := EvaluateHealth(NewRegistry(), HealthThresholds{})
	if !h.Healthy || len(h.Problems) != 0 || h.Critical() {
		t.Fatalf("fresh registry unhealthy: %+v", h)
	}

	// A registry with healthy values registered is just as quiet.
	r := NewRegistry()
	r.Gauge("mdsprint_online_level", "").Set(0)
	r.Gauge("mdsprint_fault_breaker_state", "").Set(0)
	r.Counter("mdsprint_sim_runs_total", "").Add(100)
	r.Counter("mdsprint_sim_budget_exhaustions_total", "").Add(10)
	r.Counter("mdsprint_sim_queries_total", "").Add(1000)
	r.Counter("mdsprint_sim_sprints_total", "").Add(400)
	h = EvaluateHealth(r, HealthThresholds{})
	if !h.Healthy || len(h.Problems) != 0 {
		t.Fatalf("healthy metrics reported problems: %+v", h)
	}
}

func TestEvaluateHealthSurfacesFailures(t *testing.T) {
	r := NewRegistry()
	r.Gauge("mdsprint_online_level", "").Set(1)
	r.Gauge("mdsprint_fault_breaker_state", "").Set(1)
	r.Counter("mdsprint_online_demotions_total", "").Inc()
	r.Counter("mdsprint_fault_breaker_trips_total", "").Inc()
	r.Counter("mdsprint_online_predict_failures_total", "").Add(7)

	h := EvaluateHealth(r, HealthThresholds{})
	if h.Healthy || !h.Critical() {
		t.Fatalf("degraded registry judged healthy: %+v", h)
	}
	want := []string{"tier-degraded", "breaker-open", "demotions", "breaker-trips", "predict-failures"}
	if len(h.Problems) != len(want) {
		t.Fatalf("got %d problems %+v, want %v", len(h.Problems), h.Problems, want)
	}
	for i, p := range h.Problems {
		if p.Check != want[i] {
			t.Errorf("problem %d is %q, want %q", i, p.Check, want[i])
		}
	}
	if h.Problems[0].Severity != SeverityCritical || h.Problems[1].Severity != SeverityCritical {
		t.Errorf("tier/breaker problems not critical: %+v", h.Problems[:2])
	}
	if h.Problems[2].Severity != SeverityWarning {
		t.Errorf("demotions not a warning: %+v", h.Problems[2])
	}
}

func TestEvaluateHealthHalfOpenIsWarning(t *testing.T) {
	r := NewRegistry()
	r.Gauge("mdsprint_fault_breaker_state", "").Set(2)
	h := EvaluateHealth(r, HealthThresholds{})
	if len(h.Problems) != 1 || h.Problems[0].Severity != SeverityWarning || h.Critical() {
		t.Fatalf("half-open breaker: %+v", h)
	}
	if !strings.Contains(h.Problems[0].Detail, "half-open") {
		t.Fatalf("detail %q does not name the half-open state", h.Problems[0].Detail)
	}
}

func TestEvaluateHealthBudgetExhaustion(t *testing.T) {
	r := NewRegistry()
	r.Counter("mdsprint_sim_runs_total", "").Add(10)
	r.Counter("mdsprint_sim_budget_exhaustions_total", "").Add(8)
	h := EvaluateHealth(r, HealthThresholds{})
	if len(h.Problems) != 1 || h.Problems[0].Check != "budget-exhaustion" {
		t.Fatalf("exhaustion rate 0.8: %+v", h)
	}
	if h.Problems[0].Severity != SeverityCritical || h.Problems[0].Threshold != 0.5 {
		t.Fatalf("exhaustion problem: %+v", h.Problems[0])
	}
	// Below a raised threshold, no problem.
	h = EvaluateHealth(r, HealthThresholds{BudgetExhaustionsPerRun: 0.9})
	if !h.Healthy {
		t.Fatalf("exhaustion rate 0.8 vs threshold 0.9: %+v", h)
	}
}

func TestEvaluateHealthSprintSaturation(t *testing.T) {
	r := NewRegistry()
	r.Counter("mdsprint_sim_queries_total", "").Add(100)
	r.Counter("mdsprint_sim_sprints_total", "").Add(95)
	h := EvaluateHealth(r, HealthThresholds{})
	if len(h.Problems) != 1 || h.Problems[0].Check != "sprint-saturation" ||
		h.Problems[0].Severity != SeverityWarning {
		t.Fatalf("sprint saturation: %+v", h)
	}
}

func TestRegistryValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(3)
	r.Gauge("g", "").Set(-1.5)
	r.Histogram("h", "", 0).Observe(1)

	if v, ok := r.Value("c"); !ok || v != 3 {
		t.Errorf("counter value %v %v", v, ok)
	}
	if v, ok := r.Value("g"); !ok || v != -1.5 {
		t.Errorf("gauge value %v %v", v, ok)
	}
	if _, ok := r.Value("h"); ok {
		t.Error("histogram reported a single value")
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("unregistered name reported a value")
	}
	var nilReg *Registry
	if _, ok := nilReg.Value("c"); ok {
		t.Error("nil registry reported a value")
	}
}

// TestHealthEndpointGolden pins the /debug/health wire format: the JSON
// document, its content type, and the 200/503 status split.
func TestHealthEndpointGolden(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/health")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("content-type %q", ct)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get()
	if code != http.StatusOK {
		t.Fatalf("healthy status %d", code)
	}
	if got, want := strings.TrimSpace(body), `{
  "healthy": true
}`; got != want {
		t.Fatalf("healthy body:\n%s\nwant:\n%s", got, want)
	}

	r.Gauge("mdsprint_online_level", "").Set(2)
	r.Counter("mdsprint_online_demotions_total", "").Add(2)
	code, body = get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("critical status %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if h.Healthy || len(h.Problems) != 2 {
		t.Fatalf("critical body: %+v", h)
	}
	if h.Problems[0].Check != "tier-degraded" || !strings.Contains(h.Problems[0].Detail, "static") {
		t.Fatalf("first problem: %+v", h.Problems[0])
	}
}

func TestDebugMuxPprofRoutes(t *testing.T) {
	srv := httptest.NewServer(DebugMux(NewRegistry()))
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		//lint:ignore errdrop drained smoke-test response body
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", path, resp.Status)
		}
	}
}

// TestDebugServerDrainsInflightScrapes is the graceful-shutdown
// contract: Shutdown must let a scrape that is already being served
// finish, while refusing new connections.
func TestDebugServerDrainsInflightScrapes(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, req *http.Request) {
		close(started)
		<-release
		//lint:ignore errdrop best-effort test-handler write
		_, _ = io.WriteString(w, "drained")
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewDebugServer(ln, mux)

	var (
		wg       sync.WaitGroup
		body     string
		scrapeOK error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + s.Addr().String() + "/slow")
		if err != nil {
			scrapeOK = err
			return
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			scrapeOK = err
			return
		}
		body = string(b)
	}()

	<-started
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Shutdown must block on the in-flight scrape until it is released.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a scrape still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if scrapeOK != nil {
		t.Fatalf("in-flight scrape failed: %v", scrapeOK)
	}
	if body != "drained" {
		t.Fatalf("in-flight scrape read %q, want %q", body, "drained")
	}

	// The listener is closed: new connections must be refused.
	if _, err := net.DialTimeout("tcp", s.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}

	// A nil server shuts down trivially.
	var nilSrv *DebugServer
	if err := nilSrv.Shutdown(context.Background()); err != nil {
		t.Fatalf("nil Shutdown: %v", err)
	}
}
