// Package mech models the sprinting mechanisms of Table 1(B) — DVFS with
// Pupil power capping, core scaling via taskset, EC2 P-state DVFS — plus
// the CPU throttling mechanism Section 4 uses for burstable instances.
//
// A mechanism determines, per workload class, (1) the sustained processing
// rate, (2) the marginal (whole-execution) sprint speedup, (3) whether the
// speedup comes from parallelism (and is therefore exposed to Amdahl
// phases), and (4) the toggle overhead paid when a sprint engages at
// runtime. The toggle overhead and phase interaction are runtime effects
// the paper's queue simulator deliberately eschews (Section 2.3); here
// they live in the ground-truth testbed only.
package mech

import (
	"fmt"
	"math"

	"mdsprint/internal/workload"
)

// Mechanism is one way of sprinting a processor.
type Mechanism interface {
	// Name identifies the mechanism (Table 1B IDs).
	Name() string
	// ParallelismBased reports whether the speedup comes from running
	// more threads (core scaling) rather than running faster (DVFS,
	// throttling). Parallelism-based sprints are clipped by the
	// workload's Amdahl phases.
	ParallelismBased() bool
	// ToggleOverhead is the wall-clock cost, in seconds, of engaging a
	// sprint mid-execution (voltage ramp, thread migration, cgroup
	// update). The testbed charges it; the model never sees it.
	ToggleOverhead() float64
	// SustainedQPH returns the class's sustained throughput under this
	// mechanism, in queries/hour.
	SustainedQPH(c *workload.Class) float64
	// MarginalSpeedup returns the whole-execution sprint speedup for
	// the class: sprint rate / sustained rate.
	MarginalSpeedup(c *workload.Class) float64
}

// Curve builds the sprint curve for a (mechanism, class) pair: how the
// class's phase profile modulates this mechanism's marginal speedup across
// execution progress.
func Curve(m Mechanism, c *workload.Class) *workload.SprintCurve {
	return workload.NewSprintCurve(c.Phases.Shape(m.ParallelismBased()), m.MarginalSpeedup(c))
}

// DVFS is the paper's primary platform: a 16-core Xeon 2660 with Pupil
// power capping; sprinting raises the power cap from 44-70 W to 90-190 W.
// Table 1(C)'s throughput columns were measured on this mechanism, so it
// reads them directly.
type DVFS struct{}

func (DVFS) Name() string            { return "DVFS" }
func (DVFS) ParallelismBased() bool  { return false }
func (DVFS) ToggleOverhead() float64 { return 1.5 }

func (DVFS) SustainedQPH(c *workload.Class) float64 { return c.SustainedQPH }

func (DVFS) MarginalSpeedup(c *workload.Class) float64 { return c.DVFSSpeedup() }

// CoreScale doubles active cores from 8 to 16 at fixed 2.1 GHz. The
// speedup follows Amdahl's law with the class's serial fraction; doubling
// cores at most doubles the parallel portion's rate.
type CoreScale struct{}

func (CoreScale) Name() string            { return "CoreScale" }
func (CoreScale) ParallelismBased() bool  { return true }
func (CoreScale) ToggleOverhead() float64 { return 3.0 }

func (CoreScale) SustainedQPH(c *workload.Class) float64 {
	// Same host and baseline core count as the DVFS platform at its
	// sustained operating point.
	return c.SustainedQPH
}

func (CoreScale) MarginalSpeedup(c *workload.Class) float64 {
	f := c.SerialFraction
	return 1 / (f + (1-f)/2)
}

// EC2DVFS is the EC2 C-class instance sprinted by setting P-states
// directly: 1.4 GHz sustained, 2.0 GHz burst. The frequency ratio is
// discounted by the class's compute-boundness — memory-bound kernels waste
// most of a clock bump.
type EC2DVFS struct{}

// ec2FreqRatio is burst clock / sustained clock (2.0 / 1.4 GHz).
const ec2FreqRatio = 2.0 / 1.4

// ec2SustainedScale derates throughput versus the bare-metal Xeon: the
// instance runs its sustained state at a lower clock than the DVFS
// platform's sustained cap.
const ec2SustainedScale = 0.8

func (EC2DVFS) Name() string            { return "EC2DVFS" }
func (EC2DVFS) ParallelismBased() bool  { return false }
func (EC2DVFS) ToggleOverhead() float64 { return 0.8 }

func (EC2DVFS) SustainedQPH(c *workload.Class) float64 {
	return c.SustainedQPH * ec2SustainedScale
}

func (EC2DVFS) MarginalSpeedup(c *workload.Class) float64 {
	return 1 + (ec2FreqRatio-1)*c.ComputeBoundness
}

// Throttle is CPU throttling (Section 4.1): resource managers limit a
// workload to Fraction of the CPU; a sprint removes the limit. Sustained
// throughput is Fraction of the unthrottled (sprint) rate, and the nominal
// 1/Fraction speedup is capped by the class's memory-bandwidth ceiling.
// AWS T2.small corresponds to Throttle{Fraction: 0.20} (20% of a core,
// 5x sprint).
type Throttle struct {
	// Fraction of the CPU allowed at the sustained rate, in (0, 1].
	Fraction float64
}

// NewThrottle validates the throttle fraction.
func NewThrottle(fraction float64) Throttle {
	if fraction <= 0 || fraction > 1 || math.IsNaN(fraction) {
		panic(fmt.Sprintf("mech: throttle fraction %v outside (0,1]", fraction))
	}
	return Throttle{Fraction: fraction}
}

func (t Throttle) Name() string          { return fmt.Sprintf("Throttle%.0f%%", t.Fraction*100) }
func (Throttle) ParallelismBased() bool  { return false }
func (Throttle) ToggleOverhead() float64 { return 0.3 }

// unthrottledQPH is the class's full-speed throughput: the DVFS burst rate
// (Section 4.3 throttles Jacobi to 20% of "its sprint throughput on
// DVFS", 74 qph, giving 14.8 qph sustained).
func unthrottledQPH(c *workload.Class) float64 { return c.BurstQPH }

func (t Throttle) SustainedQPH(c *workload.Class) float64 {
	return t.Fraction * unthrottledQPH(c)
}

func (t Throttle) MarginalSpeedup(c *workload.Class) float64 {
	return math.Min(1/t.Fraction, c.MaxThrottleSpeedup)
}

// All returns the Table 1(B) mechanisms (DVFS, CoreScale, EC2DVFS). The
// Section 4 throttle mechanisms are constructed per-experiment with the
// throttle fraction under study.
func All() []Mechanism {
	return []Mechanism{DVFS{}, CoreScale{}, EC2DVFS{}}
}

// ByName resolves a Table 1(B) mechanism name.
func ByName(name string) (Mechanism, error) {
	for _, m := range All() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("mech: unknown mechanism %q (have DVFS, CoreScale, EC2DVFS)", name)
}
