package mech

import (
	"math"
	"testing"

	"mdsprint/internal/workload"
)

func TestDVFSReadsTable1C(t *testing.T) {
	m := DVFS{}
	jacobi := workload.MustByName("Jacobi")
	if got := m.SustainedQPH(jacobi); got != 51 {
		t.Fatalf("DVFS sustained %v, want 51", got)
	}
	if got := m.MarginalSpeedup(jacobi); math.Abs(got-74.0/51) > 1e-9 {
		t.Fatalf("DVFS speedup %v, want %v", got, 74.0/51)
	}
}

func TestCoreScaleAmdahl(t *testing.T) {
	m := CoreScale{}
	jacobi := workload.MustByName("Jacobi")
	// Serial fraction 0.07: 1/(0.07 + 0.93/2) = 1.869..., the paper's
	// measured 1.87x core-scaling speedup for Jacobi (Section 3.3).
	if got := m.MarginalSpeedup(jacobi); math.Abs(got-1.87) > 0.01 {
		t.Fatalf("Jacobi core-scaling speedup %v, want ~1.87", got)
	}
	// Speedup can never exceed 2x when doubling cores.
	for _, c := range workload.Catalog() {
		if s := m.MarginalSpeedup(c); s > 2 || s < 1 {
			t.Errorf("%s: core-scaling speedup %v outside [1,2]", c.Name, s)
		}
	}
}

func TestCoreScaleOrdering(t *testing.T) {
	m := CoreScale{}
	// Sync-bound Leuk must benefit least; parallel SparkStream most.
	leuk := m.MarginalSpeedup(workload.MustByName("Leuk"))
	stream := m.MarginalSpeedup(workload.MustByName("SparkStream"))
	if leuk >= stream {
		t.Fatalf("Leuk speedup %v >= SparkStream %v", leuk, stream)
	}
}

func TestEC2DVFSSpeedupBounds(t *testing.T) {
	m := EC2DVFS{}
	for _, c := range workload.Catalog() {
		s := m.MarginalSpeedup(c)
		if s < 1 || s > ec2FreqRatio {
			t.Errorf("%s: EC2 speedup %v outside [1, %v]", c.Name, s, ec2FreqRatio)
		}
		if m.SustainedQPH(c) >= c.SustainedQPH {
			t.Errorf("%s: EC2 sustained rate should be derated", c.Name)
		}
	}
	// Fully compute-bound workloads get the whole frequency ratio.
	stream := workload.MustByName("SparkStream")
	if got := m.MarginalSpeedup(stream); math.Abs(got-ec2FreqRatio) > 1e-9 {
		t.Fatalf("SparkStream EC2 speedup %v, want %v", got, ec2FreqRatio)
	}
}

func TestThrottleMatchesSection43(t *testing.T) {
	// Jacobi throttled to 20% of its 74 qph sprint throughput:
	// sustained 14.8 qph, sprint rate 74 qph, 5x speedup.
	m := NewThrottle(0.20)
	jacobi := workload.MustByName("Jacobi")
	if got := m.SustainedQPH(jacobi); math.Abs(got-14.8) > 1e-9 {
		t.Fatalf("throttled sustained %v qph, want 14.8", got)
	}
	if got := m.MarginalSpeedup(jacobi); got != 5 {
		t.Fatalf("throttle speedup %v, want 5", got)
	}
}

func TestThrottleCappedByMemoryBound(t *testing.T) {
	m := NewThrottle(0.10) // nominal 10x
	mem := workload.MustByName("Mem")
	if got := m.MarginalSpeedup(mem); got != mem.MaxThrottleSpeedup {
		t.Fatalf("Mem throttle speedup %v, want cap %v", got, mem.MaxThrottleSpeedup)
	}
}

func TestThrottleValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewThrottle(%v) did not panic", bad)
				}
			}()
			NewThrottle(bad)
		}()
	}
}

func TestParallelismFlags(t *testing.T) {
	if (DVFS{}).ParallelismBased() || (EC2DVFS{}).ParallelismBased() || (Throttle{Fraction: 0.2}).ParallelismBased() {
		t.Fatal("frequency mechanisms must not be parallelism-based")
	}
	if !(CoreScale{}).ParallelismBased() {
		t.Fatal("core scaling must be parallelism-based")
	}
}

func TestToggleOverheadsPositive(t *testing.T) {
	for _, m := range All() {
		if m.ToggleOverhead() <= 0 {
			t.Errorf("%s: toggle overhead %v must be positive", m.Name(), m.ToggleOverhead())
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("CoreScale")
	if err != nil || m.Name() != "CoreScale" {
		t.Fatalf("ByName(CoreScale) = %v, %v", m, err)
	}
	if _, err := ByName("Overclock"); err == nil {
		t.Fatal("expected error for unknown mechanism")
	}
}

func TestCurveIntegratesPhaseAndSpeedup(t *testing.T) {
	jacobi := workload.MustByName("Jacobi")
	// Under DVFS (frequency-based) Jacobi's curve is position-
	// independent; under core scaling the Amdahl tail bites.
	dvfs := Curve(DVFS{}, jacobi)
	cs := Curve(CoreScale{}, jacobi)
	if got := dvfs.EffectiveSpeedupFrom(0.95); math.Abs(got-jacobi.DVFSSpeedup()) > 0.02 {
		t.Errorf("DVFS late-sprint speedup %v, want ~%v", got, jacobi.DVFSSpeedup())
	}
	late := cs.EffectiveSpeedupFrom(0.89)
	full := cs.EffectiveSpeedupFrom(0)
	if late >= full-0.2 {
		t.Errorf("core-scaling late sprint %v should be well below full %v", late, full)
	}
}
