package explore

import (
	"math"
	"testing"
)

// batchOf adapts a scalar objective for MinimizeBatch tests.
func batchOf(f func([]float64) float64) BatchObjective {
	return func(pts [][]float64) ([]float64, error) {
		out := make([]float64, len(pts))
		for i, p := range pts {
			out[i] = f(p)
		}
		return out, nil
	}
}

func sameTrace(a, b []Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].RT) != math.Float64bits(b[i].RT) {
			return false
		}
		for d := range a[i].Point {
			if math.Float64bits(a[i].Point[d]) != math.Float64bits(b[i].Point[d]) {
				return false
			}
		}
	}
	return true
}

// TestMinimizeBatchCohortInvariance is the batched annealer's contract:
// the accepted trajectory, best point, and consumed evaluation count are
// bit-identical for every cohort size; only speculative waste varies.
func TestMinimizeBatchCohortInvariance(t *testing.T) {
	quad := batchOf(func(p []float64) float64 {
		return (p[0]-3)*(p[0]-3) + (p[1]+1)*(p[1]+1)
	})
	space := Space{
		Lo:            []float64{-10, -10},
		Hi:            []float64{10, 10},
		NeighborRange: []float64{2, 2},
	}
	base, err := MinimizeBatch(quad, space, BatchOptions{Cohort: 1, Options: Options{MaxIter: 400, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Speculative != 0 {
		t.Fatalf("cohort 1 cannot speculate, got %d", base.Speculative)
	}
	if math.Abs(base.Point[0]-3) > 0.5 || math.Abs(base.Point[1]+1) > 0.5 {
		t.Fatalf("batched search missed the quadratic minimum: %v", base.Point)
	}
	for _, cohort := range []int{4, 16} {
		got, err := MinimizeBatch(quad, space, BatchOptions{Cohort: cohort, Options: Options{MaxIter: 400, Seed: 9}})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.RT) != math.Float64bits(base.RT) {
			t.Fatalf("cohort %d best RT %v != cohort 1 %v", cohort, got.RT, base.RT)
		}
		for d := range got.Point {
			if math.Float64bits(got.Point[d]) != math.Float64bits(base.Point[d]) {
				t.Fatalf("cohort %d best point %v != cohort 1 %v", cohort, got.Point, base.Point)
			}
		}
		if !sameTrace(got.Trace, base.Trace) {
			t.Fatalf("cohort %d accepted trajectory diverged", cohort)
		}
		if consumed, want := got.Evaluations-got.Speculative, base.Evaluations; consumed != want {
			t.Fatalf("cohort %d consumed %d evaluations, cohort 1 consumed %d", cohort, consumed, want)
		}
		if cohort > 1 && got.Speculative == 0 {
			t.Fatalf("cohort %d reported no speculative work on a 400-step anneal", cohort)
		}
	}
}

// TestMinimizeBatchObjectiveErrors: objective failures surface, as do
// shape mismatches.
func TestMinimizeBatchObjectiveErrors(t *testing.T) {
	space := Space{Lo: []float64{0}, Hi: []float64{1}, NeighborRange: []float64{1}}
	_, err := MinimizeBatch(func([][]float64) ([]float64, error) {
		return nil, errSentinel
	}, space, BatchOptions{Options: Options{MaxIter: 10, Seed: 1}})
	if err == nil {
		t.Fatal("objective error must fail the search")
	}
	_, err = MinimizeBatch(func(pts [][]float64) ([]float64, error) {
		return make([]float64, len(pts)+1), nil
	}, space, BatchOptions{Options: Options{MaxIter: 10, Seed: 1}})
	if err == nil {
		t.Fatal("shape mismatch must fail the search")
	}
}

type sentinelError struct{}

func (sentinelError) Error() string { return "objective failed" }

var errSentinel = sentinelError{}

// TestMinimizeTimeoutBatchWrapper: the 1-D wrapper finds the knee of a
// convex timeout curve.
func TestMinimizeTimeoutBatchWrapper(t *testing.T) {
	res, err := MinimizeTimeoutBatch(func(ts []float64) ([]float64, error) {
		out := make([]float64, len(ts))
		for i, to := range ts {
			out[i] = (to - 70) * (to - 70)
		}
		return out, nil
	}, 0, 300, BatchOptions{Cohort: 8, Options: Options{MaxIter: 200, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Point[0]-70) > 5 {
		t.Fatalf("timeout anneal landed at %v, want ~70", res.Point[0])
	}
}

// TestMinimizeBoundaryClampRejected is the regression test for the
// clamp-and-reject rule: when the incumbent sits on a bound, proposals
// that clamp back onto it must be discarded without an evaluation or an
// acceptance draw, not re-accepted via Equation 5's zero-delta
// probability of one.
func TestMinimizeBoundaryClampRejected(t *testing.T) {
	// Objective strictly decreasing in x: the optimum is the upper
	// bound, so the search pins there and every further upward proposal
	// clamps onto the incumbent.
	evals := 0
	obj := func(p []float64) float64 {
		evals++
		return -p[0]
	}
	space := Space{Lo: []float64{0}, Hi: []float64{50}, NeighborRange: []float64{100}}
	res, err := Minimize(obj, space, Options{MaxIter: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Point[0] != 50 {
		t.Fatalf("monotone objective must pin the upper bound, got %v", res.Point[0])
	}
	if res.Evaluations != evals {
		t.Fatalf("Evaluations=%d but objective ran %d times", res.Evaluations, evals)
	}
	// With a +-100 window on a 50-wide space, roughly half the
	// proposals from the bound clamp back onto it. Before the fix every
	// one of them was evaluated and re-accepted; after it they are
	// skipped, so evaluations must come in well under MaxIter+1.
	if res.Evaluations >= 400 {
		t.Fatalf("clamped-onto-incumbent proposals were evaluated: %d evaluations for 500 iterations", res.Evaluations)
	}
	// And none of them may appear in the trace as phantom re-accepts. A
	// zero-delta re-accept shows up as two consecutive identical trace
	// steps (the incumbent "accepted" onto itself); annealing may
	// legitimately leave the bound and return, but never step in place.
	assertNoPhantomSteps(t, res.Trace)
	// The batched annealer applies the same rule.
	bres, err := MinimizeBatch(batchOf(func(p []float64) float64 { return -p[0] }), space,
		BatchOptions{Cohort: 8, Options: Options{MaxIter: 500, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if bres.Point[0] != 50 {
		t.Fatalf("batched search must pin the upper bound, got %v", bres.Point[0])
	}
	assertNoPhantomSteps(t, bres.Trace)
}

// assertNoPhantomSteps fails if any accepted step repeats its
// predecessor bit-for-bit — the signature of a clamped-onto-incumbent
// proposal slipping through Equation 5 with probability one.
func assertNoPhantomSteps(t *testing.T, trace []Step) {
	t.Helper()
	for i := 1; i < len(trace); i++ {
		same := true
		for d := range trace[i].Point {
			if math.Float64bits(trace[i].Point[d]) != math.Float64bits(trace[i-1].Point[d]) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("trace step %d re-accepts its predecessor %v", i, trace[i].Point)
		}
	}
}
