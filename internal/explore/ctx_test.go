package explore

import (
	"context"
	"errors"
	"testing"
)

func TestMinimizeBatchCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	quad := batchOf(func(p []float64) float64 { return p[0] * p[0] })
	space := Space{Lo: []float64{-5}, Hi: []float64{5}, NeighborRange: []float64{1}}
	_, err := MinimizeBatchCtx(ctx, quad, space, BatchOptions{Options: Options{MaxIter: 50, Seed: 3}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMinimizeBatchCtxCancelMidSearch(t *testing.T) {
	// Cancel from inside the objective: the annealer must stop at the
	// next cohort boundary and report the context's error, not return a
	// half-baked result.
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	obj := func(pts [][]float64) ([]float64, error) {
		calls++
		if calls == 3 {
			cancel()
		}
		out := make([]float64, len(pts))
		for i, p := range pts {
			out[i] = p[0] * p[0]
		}
		return out, nil
	}
	space := Space{Lo: []float64{-5}, Hi: []float64{5}, NeighborRange: []float64{1}}
	_, err := MinimizeBatchCtx(ctx, obj, space, BatchOptions{Cohort: 1, Options: Options{MaxIter: 500, Seed: 3}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls >= 500 {
		t.Fatalf("search ran all %d iterations despite cancellation", calls)
	}
}

func TestMinimizeBatchCtxBackgroundMatchesLegacy(t *testing.T) {
	// The ctx variant with a background context is the same search.
	quad := batchOf(func(p []float64) float64 { return (p[0] - 2) * (p[0] - 2) })
	space := Space{Lo: []float64{-5}, Hi: []float64{5}, NeighborRange: []float64{1}}
	opts := BatchOptions{Cohort: 4, Options: Options{MaxIter: 200, Seed: 17}}
	a, err := MinimizeBatch(quad, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinimizeBatchCtx(context.Background(), quad, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrace(a.Trace, b.Trace) {
		t.Fatal("ctx variant perturbed the annealing trajectory")
	}
}

func TestMinimizeTimeoutBatchCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	obj := func(tos []float64) ([]float64, error) {
		out := make([]float64, len(tos))
		for i, to := range tos {
			out[i] = (to - 30) * (to - 30)
		}
		return out, nil
	}
	_, err := MinimizeTimeoutBatchCtx(ctx, obj, 0, 120, BatchOptions{Options: Options{MaxIter: 50, Seed: 5}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
