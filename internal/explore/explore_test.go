package explore

import (
	"math"
	"testing"

	"mdsprint/internal/dist"
)

func TestMinimizeQuadratic(t *testing.T) {
	obj := func(p []float64) float64 { return (p[0] - 42) * (p[0] - 42) }
	res, err := Minimize(obj, Space{
		Lo: []float64{0}, Hi: []float64{300}, NeighborRange: []float64{100},
	}, Options{MaxIter: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Point[0]-42) > 5 {
		t.Fatalf("found %v, want ~42", res.Point[0])
	}
	if res.Evaluations != 501 {
		t.Fatalf("evaluations %d, want 501", res.Evaluations)
	}
}

func TestMinimizeEscapesLocalMinimum(t *testing.T) {
	// Double well: local minimum at 20 (value 5), global at 200
	// (value 0). A hill climber starting near 20 gets stuck; the
	// acceptance probability must let annealing cross the barrier.
	obj := func(p []float64) float64 {
		x := p[0]
		local := 5 + 0.01*(x-20)*(x-20)
		global := 0 + 0.01*(x-200)*(x-200)
		return math.Min(local, global)
	}
	found := 0
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Minimize(obj, Space{
			Lo: []float64{0}, Hi: []float64{300}, NeighborRange: []float64{100},
		}, Options{MaxIter: 600, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Point[0]-200) < 15 {
			found++
		}
	}
	if found < 7 {
		t.Fatalf("annealing found the global minimum in only %d/10 runs", found)
	}
}

func TestMinimizeMultiDim(t *testing.T) {
	obj := func(p []float64) float64 {
		return (p[0]-10)*(p[0]-10) + (p[1]-0.4)*(p[1]-0.4)*1000
	}
	res, err := Minimize(obj, Space{
		Lo:            []float64{0, 0},
		Hi:            []float64{100, 1},
		NeighborRange: []float64{20, 0.2},
	}, Options{MaxIter: 1500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Point[0]-10) > 4 || math.Abs(res.Point[1]-0.4) > 0.08 {
		t.Fatalf("found %v, want ~[10, 0.4]", res.Point)
	}
}

func TestMinimizeRespectsBounds(t *testing.T) {
	obj := func(p []float64) float64 { return -p[0] } // wants +inf
	res, err := Minimize(obj, Space{
		Lo: []float64{0}, Hi: []float64{50}, NeighborRange: []float64{100},
	}, Options{MaxIter: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Point[0] > 50 || res.Point[0] < 0 {
		t.Fatalf("point %v escaped bounds", res.Point[0])
	}
	if math.Abs(res.Point[0]-50) > 1e-9 {
		t.Fatalf("should pin to upper bound, got %v", res.Point[0])
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	obj := func(p []float64) float64 { return math.Abs(p[0] - 77) }
	run := func() Result {
		res, _ := Minimize(obj, Space{
			Lo: []float64{0}, Hi: []float64{300}, NeighborRange: []float64{100},
		}, Options{MaxIter: 200, Seed: 5})
		return res
	}
	a, b := run(), run()
	if a.Point[0] != b.Point[0] || a.RT != b.RT {
		t.Fatal("annealing not deterministic for fixed seed")
	}
}

func TestMinimizeNoisyObjective(t *testing.T) {
	r := dist.NewRNG(6)
	obj := func(p []float64) float64 {
		return (p[0]-150)*(p[0]-150)*0.01 + r.NormFloat64()*0.5
	}
	res, err := Minimize(obj, Space{
		Lo: []float64{0}, Hi: []float64{300}, NeighborRange: []float64{100},
	}, Options{MaxIter: 800, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Point[0]-150) > 30 {
		t.Fatalf("noisy search found %v, want ~150", res.Point[0])
	}
}

func TestMinimizeTimeoutWrapper(t *testing.T) {
	res, err := MinimizeTimeout(func(to float64) float64 {
		return math.Abs(to - 120)
	}, 0, 300, Options{MaxIter: 400, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Point) != 1 || math.Abs(res.Point[0]-120) > 8 {
		t.Fatalf("timeout search found %v, want ~120", res.Point)
	}
}

func TestSpaceValidation(t *testing.T) {
	obj := func(p []float64) float64 { return 0 }
	bad := []Space{
		{},
		{Lo: []float64{0}, Hi: []float64{1}},
		{Lo: []float64{0}, Hi: []float64{-1}, NeighborRange: []float64{1}},
		{Lo: []float64{0}, Hi: []float64{1}, NeighborRange: []float64{0}},
	}
	for i, s := range bad {
		if _, err := Minimize(obj, s, Options{}); err == nil {
			t.Errorf("space %d accepted", i)
		}
	}
}

func TestTraceRecordsAcceptedStates(t *testing.T) {
	obj := func(p []float64) float64 { return p[0] }
	res, _ := Minimize(obj, Space{
		Lo: []float64{0}, Hi: []float64{100}, NeighborRange: []float64{30},
	}, Options{MaxIter: 200, Seed: 9})
	if len(res.Trace) < 2 {
		t.Fatalf("trace too short: %d", len(res.Trace))
	}
	// Every trace entry's RT must be the objective at its point.
	for _, s := range res.Trace {
		if s.RT != s.Point[0] {
			t.Fatalf("trace entry inconsistent: %+v", s)
		}
	}
}
