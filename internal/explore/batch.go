package explore

import (
	"context"
	"fmt"
	"math"

	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
)

// BatchObjective scores a cohort of candidate points in one call and
// returns their expected response times in order. Implementations
// typically hand the cohort to sweep.Engine.MeanRTs, which shards the
// evaluations across workers and memoizes repeats.
type BatchObjective func(points [][]float64) ([]float64, error)

// BatchOptions tunes the batched annealing run.
type BatchOptions struct {
	Options
	// Cohort is how many neighbour proposals are constructed and scored
	// per objective call (default 8). The cohort is speculative: every
	// proposal is built from the current incumbent, and an acceptance
	// invalidates the rest of its cohort, which is re-proposed from the
	// new incumbent. The search trajectory is therefore bit-for-bit
	// identical for every cohort size; only the amount of discarded
	// speculative work varies (Result.Speculative).
	Cohort int
}

func (o BatchOptions) withDefaults() BatchOptions {
	o.Options = o.Options.withDefaults()
	if o.Cohort <= 0 {
		o.Cohort = 8
	}
	return o
}

// proposal is one pre-drawn neighbour move: perturb dimension d by
// (2u-1) * NeighborRange[d]. Draws are fixed per iteration index, so a
// candidate can be reconstructed from any incumbent without touching the
// RNG again.
type proposal struct {
	d int
	u float64
}

// MinimizeBatch anneals like Minimize but scores proposals in cohorts
// through a batch objective. Determinism contract: for a fixed seed the
// accepted trajectory, best point and trace are identical for every
// Cohort, because proposal draws are indexed by iteration (not by
// evaluation order) and acceptance draws are consumed only when a
// processed, evaluated proposal fails to improve — both invariant under
// batching.
//
// MinimizeBatch intentionally uses two split RNG streams (proposals and
// acceptances) where the serial Minimize interleaves one, so the two
// searches walk different trajectories for the same seed; equivalence
// holds within MinimizeBatch across cohort sizes.
func MinimizeBatch(obj BatchObjective, space Space, opts BatchOptions) (Result, error) {
	return MinimizeBatchCtx(context.Background(), obj, space, opts)
}

// MinimizeBatchCtx is MinimizeBatch honoring cancellation: the context
// is checked before every objective call (the cohort boundary), so a
// deadline or cancel stops the search between cohorts with ctx's error.
// Cancellation never perturbs determinism — a run that completes under
// a context walks the same trajectory as one without.
func MinimizeBatchCtx(ctx context.Context, obj BatchObjective, space Space, opts BatchOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := obs.StartSpanCtx(ctx, "explore.minimize")
	res, err := minimizeBatch(obs.ContextWithSpan(ctx, sp), obj, space, opts)
	sp.SetInt("evaluations", int64(res.Evaluations))
	sp.SetFloat("best_rt", res.RT)
	sp.SetError(err)
	sp.End()
	return res, err
}

// minimizeBatch is MinimizeBatchCtx's body, separated so the wrapper can
// bracket the whole search in one span.
func minimizeBatch(ctx context.Context, obj BatchObjective, space Space, opts BatchOptions) (Result, error) {
	if err := space.validate(); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults()
	root := dist.NewRNG(o.Seed)
	propose := root.Split()
	accept := root.Split()
	dims := len(space.Lo)

	// Random initial setting, scored as a one-point cohort.
	cur := make([]float64, dims)
	for d := range cur {
		cur[d] = space.Lo[d] + propose.Float64()*(space.Hi[d]-space.Lo[d])
	}
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("explore: %w", err)
	}
	vals, err := callBatch(obj, [][]float64{cur})
	if err != nil {
		return Result{}, err
	}
	curRT := vals[0]
	res := Result{
		Point:       append([]float64(nil), cur...),
		RT:          curRT,
		Evaluations: 1,
		Trace:       []Step{{Point: append([]float64(nil), cur...), RT: curRT}},
	}

	// draws[i] is iteration i's proposal, generated lazily in iteration
	// order so the propose stream's state never depends on cohort size.
	draws := make([]proposal, 0, o.MaxIter)
	ensureDraws := func(n int) {
		for len(draws) < n {
			p := proposal{}
			if dims > 1 {
				p.d = propose.Intn(dims)
			}
			p.u = propose.Float64()
			draws = append(draws, p)
		}
	}
	candidateAt := func(i int) []float64 {
		p := draws[i]
		cand := append([]float64(nil), cur...)
		cand[p.d] += (p.u*2 - 1) * space.NeighborRange[p.d]
		cand[p.d] = clamp(cand[p.d], space.Lo[p.d], space.Hi[p.d])
		return cand
	}

	z := o.InitialZ
	// zTick advances Equation 5's schedule after iteration i.
	zTick := func(i int) {
		if (i+1)%100 == 0 {
			z *= o.ZDecayPer100
		}
	}

	for i := 0; i < o.MaxIter; {
		c := o.Cohort
		if rem := o.MaxIter - i; c > rem {
			c = rem
		}
		ensureDraws(i + c)
		// Build the cohort from the incumbent. Proposals that clamp
		// back onto the incumbent are rejected without an evaluation or
		// an acceptance draw (see Minimize); they stay in the scan so
		// the schedule advances identically.
		cands := make([][]float64, c)
		skip := make([]bool, c)
		var pts [][]float64
		for j := 0; j < c; j++ {
			cands[j] = candidateAt(i + j)
			d := draws[i+j].d
			skip[j] = math.Float64bits(cands[j][d]) == math.Float64bits(cur[d])
			if !skip[j] {
				pts = append(pts, cands[j])
			}
		}
		var rts []float64
		if len(pts) > 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("explore: %w", err)
			}
			if rts, err = callBatch(obj, pts); err != nil {
				return Result{}, err
			}
			res.Evaluations += len(pts)
		}
		// Scan the cohort in iteration order, applying Equation 5.
		pos := 0
		accepted := false
		for j := 0; j < c; j++ {
			if skip[j] {
				zTick(i + j)
				continue
			}
			candRT := rts[pos]
			pos++
			ok := candRT < curRT
			if !ok {
				a := math.Exp((curRT - candRT) / z)
				ok = accept.Float64() < a
			}
			if ok {
				cur, curRT = cands[j], candRT
				res.Trace = append(res.Trace, Step{Point: append([]float64(nil), cands[j]...), RT: candRT})
				if candRT < res.RT {
					res.RT = candRT
					res.Point = append([]float64(nil), cands[j]...)
				}
				zTick(i + j)
				// The rest of the cohort was proposed from the old
				// incumbent; its evaluations are discarded speculation
				// and those iterations re-run from the new incumbent.
				res.Speculative += len(rts) - pos
				i += j + 1
				accepted = true
				break
			}
			zTick(i + j)
		}
		if !accepted {
			i += c
		}
	}
	return res, nil
}

// callBatch invokes the objective and validates its shape.
func callBatch(obj BatchObjective, pts [][]float64) ([]float64, error) {
	vals, err := obj(pts)
	if err != nil {
		return nil, err
	}
	if len(vals) != len(pts) {
		return nil, fmt.Errorf("explore: batch objective returned %d values for %d points", len(vals), len(pts))
	}
	return vals, nil
}

// MinimizeTimeoutBatch is MinimizeTimeout with a batch objective: anneal
// the timeout alone over [lo, hi] with the +-100 s neighbour window,
// scoring cohorts of candidate timeouts per call.
func MinimizeTimeoutBatch(obj func(timeouts []float64) ([]float64, error), lo, hi float64, opts BatchOptions) (Result, error) {
	return MinimizeTimeoutBatchCtx(context.Background(), obj, lo, hi, opts)
}

// MinimizeTimeoutBatchCtx is MinimizeTimeoutBatch honoring cancellation
// (see MinimizeBatchCtx).
func MinimizeTimeoutBatchCtx(ctx context.Context, obj func(timeouts []float64) ([]float64, error), lo, hi float64, opts BatchOptions) (Result, error) {
	space := Space{
		Lo:            []float64{lo},
		Hi:            []float64{hi},
		NeighborRange: []float64{100},
	}
	return MinimizeBatchCtx(ctx, func(pts [][]float64) ([]float64, error) {
		ts := make([]float64, len(pts))
		for i, p := range pts {
			ts[i] = p[0]
		}
		return obj(ts)
	}, space, opts)
}
