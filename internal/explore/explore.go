// Package explore implements the paper's policy-space exploration
// (Section 4.2): simulated annealing over sprinting-policy settings,
// guided by a performance model's expected response time. The algorithm
// is the paper's: random restart-free annealing with neighbour proposals
// drawn from a narrow window, acceptance probability
//
//	a = 1                     if RT_old - RT_new > 0
//	a = exp((RT_old-RT_new)/Z) otherwise                (Equation 5)
//
// and Z starting at 1 and decaying 10% per 100 settings explored.
package explore

import (
	"fmt"
	"math"

	"mdsprint/internal/dist"
)

// Objective maps a candidate point to its expected response time (lower
// is better). Implementations typically call a core.Model.
type Objective func(point []float64) float64

// Space bounds the search: one entry per dimension.
type Space struct {
	// Lo and Hi are inclusive bounds per dimension.
	Lo, Hi []float64
	// NeighborRange is the half-width of the neighbour proposal window
	// per dimension. The paper samples timeouts from [t-100, t+100].
	NeighborRange []float64
}

func (s Space) validate() error {
	if len(s.Lo) == 0 || len(s.Lo) != len(s.Hi) || len(s.Lo) != len(s.NeighborRange) {
		return fmt.Errorf("explore: space dimensions inconsistent")
	}
	for d := range s.Lo {
		if s.Hi[d] < s.Lo[d] {
			return fmt.Errorf("explore: dimension %d has hi < lo", d)
		}
		if s.NeighborRange[d] <= 0 {
			return fmt.Errorf("explore: dimension %d needs a positive neighbour range", d)
		}
	}
	return nil
}

// Options tunes the annealing run.
type Options struct {
	// MaxIter is the number of neighbour proposals (default 300).
	MaxIter int
	// InitialZ and ZDecayPer100 implement Equation 5's schedule
	// (defaults 1.0 and 0.9).
	InitialZ     float64
	ZDecayPer100 float64
	// Seed drives proposals.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 300
	}
	if o.InitialZ <= 0 {
		o.InitialZ = 1
	}
	if o.ZDecayPer100 <= 0 {
		o.ZDecayPer100 = 0.9
	}
	return o
}

// Step records one accepted state for diagnostics.
type Step struct {
	Point []float64
	RT    float64
}

// Result is the search outcome.
type Result struct {
	// Best point found and its expected response time.
	Point []float64
	RT    float64
	// Evaluations counts objective calls. Speculative counts the subset
	// a batched search evaluated ahead of an acceptance and then
	// discarded (always zero for the serial search); the consumed work
	// Evaluations - Speculative is identical for every cohort size.
	Evaluations int
	Speculative int
	// Trace holds the accepted-state history.
	Trace []Step
}

// Minimize anneals over the space, returning the best point seen. The
// objective is treated as a black box; noisy objectives are fine (the
// returned RT is the best observed value).
func Minimize(obj Objective, space Space, opts Options) (Result, error) {
	if err := space.validate(); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults()
	r := dist.NewRNG(o.Seed)
	dims := len(space.Lo)

	// Step 1: random initial setting.
	cur := make([]float64, dims)
	for d := range cur {
		cur[d] = space.Lo[d] + r.Float64()*(space.Hi[d]-space.Lo[d])
	}
	curRT := obj(cur)
	res := Result{
		Point:       append([]float64(nil), cur...),
		RT:          curRT,
		Evaluations: 1,
		Trace:       []Step{{Point: append([]float64(nil), cur...), RT: curRT}},
	}
	z := o.InitialZ
	for i := 0; i < o.MaxIter; i++ {
		// Step 2: neighbour from the narrow window, one dimension
		// perturbed per proposal (all dimensions for 1-D spaces).
		cand := append([]float64(nil), cur...)
		d := 0
		if dims > 1 {
			d = r.Intn(dims)
		}
		cand[d] += (r.Float64()*2 - 1) * space.NeighborRange[d]
		cand[d] = clamp(cand[d], space.Lo[d], space.Hi[d])
		if math.Float64bits(cand[d]) == math.Float64bits(cur[d]) {
			// The proposal clamped back onto the incumbent: there is no
			// move to score, and Equation 5 on a zero delta would
			// re-accept the incumbent with probability one — burning an
			// evaluation and an acceptance draw and padding the trace
			// with phantom steps whenever the search sits on a bound.
			// Reject it outright; the schedule still advances.
			if (i+1)%100 == 0 {
				z *= o.ZDecayPer100
			}
			continue
		}
		candRT := obj(cand)
		res.Evaluations++
		// Step 3: accept improvements; accept regressions with
		// probability exp((RT_old - RT_new)/Z).
		accept := candRT < curRT
		if !accept {
			a := math.Exp((curRT - candRT) / z)
			accept = r.Float64() < a
		}
		if accept {
			cur, curRT = cand, candRT
			res.Trace = append(res.Trace, Step{Point: append([]float64(nil), cand...), RT: candRT})
			if candRT < res.RT {
				res.RT = candRT
				res.Point = append([]float64(nil), cand...)
			}
		}
		// Z decays 10% per 100 settings explored.
		if (i+1)%100 == 0 {
			z *= o.ZDecayPer100
		}
	}
	return res, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MinimizeTimeout is the paper's MINRT search (Equation 4): anneal the
// timeout alone over [lo, hi] with the +-100 s neighbour window.
func MinimizeTimeout(obj func(timeout float64) float64, lo, hi float64, opts Options) (Result, error) {
	space := Space{
		Lo:            []float64{lo},
		Hi:            []float64{hi},
		NeighborRange: []float64{100},
	}
	return Minimize(func(p []float64) float64 { return obj(p[0]) }, space, opts)
}
