// Package lifecycle is the process-lifecycle plumbing shared by
// sprintctl's subcommands and the sprintd daemon: a signal-bound
// context for clean SIGINT/SIGTERM shutdown, and a once-only ordered
// FlushSet for the "whatever happens, write out what we have" work
// that used to be inlined per command.
package lifecycle

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// SignalContext returns a context canceled on SIGINT or SIGTERM (and
// when parent is canceled). Long-running commands watch it and flush
// partial results before exiting; the returned stop releases the
// signal registration.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// flushStep is one registered shutdown action.
type flushStep struct {
	name string
	fn   func() error
}

// FlushSet collects named best-effort shutdown steps and runs each
// exactly once, in registration order, whether the process exits
// normally or on a signal. A failing step is reported through Errorf
// and never stops the steps after it — flushing is best effort by
// definition. Safe for concurrent use.
type FlushSet struct {
	// Errorf reports a failed step (log sink); nil discards.
	Errorf func(format string, args ...any)

	mu    sync.Mutex
	steps []flushStep
	ran   bool
}

// Add registers a shutdown step. Steps added after Run has fired are
// executed immediately — a late registration must not be silently
// dropped.
func (f *FlushSet) Add(name string, fn func() error) {
	f.mu.Lock()
	if f.ran {
		f.mu.Unlock()
		f.runStep(flushStep{name: name, fn: fn})
		return
	}
	f.steps = append(f.steps, flushStep{name: name, fn: fn})
	f.mu.Unlock()
}

// Run executes every registered step once, in registration order.
// Subsequent calls are no-ops, so it is safe to both defer Run and
// call it from a signal path.
func (f *FlushSet) Run() {
	f.mu.Lock()
	if f.ran {
		f.mu.Unlock()
		return
	}
	f.ran = true
	steps := f.steps
	f.steps = nil
	f.mu.Unlock()
	for _, s := range steps {
		f.runStep(s)
	}
}

// runStep executes one step, converting a panic into a reported error
// so one misbehaving flusher cannot rob the steps after it.
func (f *FlushSet) runStep(s flushStep) {
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		return s.fn()
	}()
	if err != nil && f.Errorf != nil {
		f.Errorf("flush %s: %v", s.name, err)
	}
}
