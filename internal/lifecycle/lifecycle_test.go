package lifecycle

import (
	"context"
	"fmt"
	"testing"
)

func TestFlushSetRunsOnceInOrder(t *testing.T) {
	var got []string
	fs := &FlushSet{}
	fs.Add("a", func() error { got = append(got, "a"); return nil })
	fs.Add("b", func() error { got = append(got, "b"); return nil })
	fs.Run()
	fs.Run() // second run must be a no-op
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("steps ran %v, want [a b] exactly once", got)
	}
}

func TestFlushSetErrorDoesNotStopLaterSteps(t *testing.T) {
	var logged []string
	ran := false
	fs := &FlushSet{Errorf: func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}}
	fs.Add("bad", func() error { return fmt.Errorf("disk full") })
	fs.Add("panicky", func() error { panic("boom") })
	fs.Add("good", func() error { ran = true; return nil })
	fs.Run()
	if !ran {
		t.Fatal("step after a failing one did not run")
	}
	if len(logged) != 2 {
		t.Fatalf("logged %v, want the error and the recovered panic", logged)
	}
}

func TestFlushSetLateAddRunsImmediately(t *testing.T) {
	fs := &FlushSet{}
	fs.Run()
	ran := false
	fs.Add("late", func() error { ran = true; return nil })
	if !ran {
		t.Fatal("step added after Run was dropped")
	}
}

func TestSignalContextCancelsWithParent(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := SignalContext(parent)
	defer stop()
	cancel()
	<-ctx.Done()
}
