package fault

import (
	"fmt"
	"time"

	"mdsprint/internal/obs"
	"mdsprint/internal/sweep"
)

// SweepFaultConfig scripts error, panic, and latency injection into
// sweep-engine batch tasks. Decisions are keyed by task index, so the
// same config faults the same tasks regardless of worker count or
// scheduling order — a batch's fault schedule is reproducible
// bit-for-bit from the seed.
type SweepFaultConfig struct {
	// Seed drives the per-task fault decisions.
	Seed uint64
	// ErrProb is the probability a task fails with an injected error.
	ErrProb float64
	// PanicProb is the probability a task panics (the engine must
	// recover it; see sweep.Options.TaskHook).
	PanicProb float64
	// DelayProb and Delay inject latency spikes into tasks.
	DelayProb float64
	Delay     time.Duration
	// Metrics receives the injector's counters; nil records into
	// obs.Default().
	Metrics *obs.Registry
}

// Hook returns a sweep.TaskHook implementing the scripted faults. The
// hook sleeps for Delay on a latency fault, panics on a panic fault,
// and returns an error on an error fault; the decision order is fixed
// (delay, then panic, then error) so schedules stay stable as
// probabilities change.
func (c SweepFaultConfig) Hook() sweep.TaskHook {
	reg := obs.Or(c.Metrics)
	delays := reg.Counter("mdsprint_fault_sweep_delays_total", "latency spikes injected into sweep tasks")
	panics := reg.Counter("mdsprint_fault_sweep_panics_total", "panics injected into sweep tasks")
	errs := reg.Counter("mdsprint_fault_sweep_errors_total", "errors injected into sweep tasks")
	return func(i int, _ sweep.Task) error {
		rng := itemRNG(c.Seed, chanSweep, uint64(i))
		// Draw all three decisions unconditionally so a task's fate for
		// one fault class does not depend on the other classes' odds.
		delay := c.DelayProb > 0 && rng.Float64() < c.DelayProb
		pan := c.PanicProb > 0 && rng.Float64() < c.PanicProb
		fail := c.ErrProb > 0 && rng.Float64() < c.ErrProb
		if delay {
			delays.Inc()
			time.Sleep(c.Delay)
		}
		if pan {
			panics.Inc()
			panic(fmt.Sprintf("fault: injected panic at task %d", i))
		}
		if fail {
			errs.Inc()
			return fmt.Errorf("fault: injected error at task %d", i)
		}
		return nil
	}
}
