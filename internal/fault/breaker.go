package fault

import (
	"fmt"
	"sync"

	"mdsprint/internal/obs"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

// Breaker states: Closed passes calls through, Open rejects them, and
// HalfOpen admits probes to test whether the protected call recovered.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String names the state for logs and metrics.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerConfig configures a Breaker. The breaker is counted in calls,
// not wall time, so it stays deterministic inside the simulation
// packages: an open breaker denies CooldownCalls attempts, then half
// opens.
type BreakerConfig struct {
	// Name labels the breaker in its state gauge's help text and in
	// errors; default "breaker".
	Name string
	// FailureThreshold is how many consecutive failures trip the breaker
	// open (default 3).
	FailureThreshold int
	// CooldownCalls is how many Allow calls an open breaker rejects
	// before probing half-open (default 8).
	CooldownCalls int
	// HalfOpenSuccesses is how many consecutive probe successes close a
	// half-open breaker again (default 2).
	HalfOpenSuccesses int
	// Metrics receives the breaker's counters; nil records into
	// obs.Default().
	Metrics *obs.Registry
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Name == "" {
		c.Name = "breaker"
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.CooldownCalls <= 0 {
		c.CooldownCalls = 8
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 2
	}
	return c
}

// Breaker is a call-counted circuit breaker guarding an expensive or
// failure-prone operation (the calib bisection, the explore retune).
// Closed → Open after FailureThreshold consecutive failures; Open
// rejects CooldownCalls attempts, then HalfOpen admits probes; a probe
// failure re-opens, HalfOpenSuccesses consecutive probe successes
// close. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive failures while closed
	denied   int // rejections while open
	probeOK  int // consecutive successes while half-open

	trips      *obs.Counter
	rejections *obs.Counter
	stateGauge *obs.Gauge
}

// NewBreaker returns a closed breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	reg := obs.Or(cfg.Metrics)
	b := &Breaker{
		cfg:        cfg,
		trips:      reg.Counter("mdsprint_fault_breaker_trips_total", "circuit-breaker transitions to open"),
		rejections: reg.Counter("mdsprint_fault_breaker_rejections_total", "calls rejected by an open circuit breaker"),
		stateGauge: reg.Gauge("mdsprint_fault_breaker_state", "circuit-breaker state (0 closed, 1 open, 2 half-open): "+cfg.Name),
	}
	b.stateGauge.Set(float64(Closed))
	return b
}

// Allow reports whether the caller may attempt the protected operation.
// While open it counts the denial; after CooldownCalls denials the
// breaker half-opens and admits the next call as a probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed, HalfOpen:
		return true
	default: // Open
		b.denied++
		b.rejections.Inc()
		if b.denied >= b.cfg.CooldownCalls {
			b.setState(HalfOpen)
		}
		return false
	}
}

// Success records a successful protected call.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures = 0
	case HalfOpen:
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenSuccesses {
			b.setState(Closed)
		}
	}
}

// Failure records a failed protected call; enough consecutive failures
// (or any half-open probe failure) open the breaker.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.trip()
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip() {
	b.trips.Inc()
	b.setState(Open)
}

// setState transitions and resets the counters the new state uses.
// Callers hold b.mu.
func (b *Breaker) setState(s BreakerState) {
	b.state = s
	b.failures = 0
	b.denied = 0
	b.probeOK = 0
	b.stateGauge.Set(float64(s))
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSnapshot is the breaker's full mutable state — position plus
// the counters that drive its next transition — so a restored breaker
// trips, cools down and closes on exactly the same call sequence as one
// that was never restarted.
type BreakerSnapshot struct {
	State    int `json:"state"`
	Failures int `json:"failures"`
	Denied   int `json:"denied"`
	ProbeOK  int `json:"probe_ok"`
}

// Snapshot exports the breaker's state for persistence.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:    int(b.state),
		Failures: b.failures,
		Denied:   b.denied,
		ProbeOK:  b.probeOK,
	}
}

// Restore overwrites the breaker's state from a snapshot; the breaker
// is unchanged on error.
func (b *Breaker) Restore(st BreakerSnapshot) error {
	if st.State < int(Closed) || st.State > int(HalfOpen) {
		return fmt.Errorf("fault: breaker state %d out of range", st.State)
	}
	if st.Failures < 0 || st.Denied < 0 || st.ProbeOK < 0 {
		return fmt.Errorf("fault: breaker counters must be non-negative")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerState(st.State)
	b.failures = st.Failures
	b.denied = st.Denied
	b.probeOK = st.ProbeOK
	b.stateGauge.Set(float64(b.state))
	return nil
}
