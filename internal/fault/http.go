package fault

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mdsprint/internal/obs"
)

// HTTPFaultConfig scripts transport-level faults for the HTTP harness:
// connection drops, latency spikes, and injected 5xx responses.
type HTTPFaultConfig struct {
	// Seed drives the per-request fault decisions (keyed by request
	// sequence number).
	Seed uint64
	// DropProb is the probability a request fails with a connection
	// error before reaching the upstream.
	DropProb float64
	// DelayProb and Delay inject latency spikes before forwarding.
	DelayProb float64
	Delay     time.Duration
	// ErrorProb is the probability the transport synthesizes a 503
	// without contacting the upstream.
	ErrorProb float64
	// Metrics receives the injector's counters; nil records into
	// obs.Default().
	Metrics *obs.Registry
}

// RoundTripper wraps an http.RoundTripper with seeded fault injection.
// Fault decisions are keyed by request sequence number, so a generator
// replaying the same request count against the same seed sees the same
// fault schedule. Safe for concurrent use.
type RoundTripper struct {
	base http.RoundTripper
	cfg  HTTPFaultConfig

	mu  sync.Mutex
	seq uint64

	drops  *obs.Counter
	delays *obs.Counter
	fives  *obs.Counter
}

// NewRoundTripper wraps base (nil means http.DefaultTransport) with the
// scripted faults.
func NewRoundTripper(base http.RoundTripper, cfg HTTPFaultConfig) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	reg := obs.Or(cfg.Metrics)
	return &RoundTripper{
		base:   base,
		cfg:    cfg,
		drops:  reg.Counter("mdsprint_fault_http_drops_total", "injected connection drops"),
		delays: reg.Counter("mdsprint_fault_http_delays_total", "injected HTTP latency spikes"),
		fives:  reg.Counter("mdsprint_fault_http_5xx_total", "injected 5xx responses"),
	}
}

// RoundTrip applies the request's scripted faults, then (if it
// survives) forwards to the wrapped transport.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	i := rt.seq
	rt.seq++
	rt.mu.Unlock()
	rng := itemRNG(rt.cfg.Seed, chanHTTP, i)
	drop := rt.cfg.DropProb > 0 && rng.Float64() < rt.cfg.DropProb
	delay := rt.cfg.DelayProb > 0 && rng.Float64() < rt.cfg.DelayProb
	fiveXX := rt.cfg.ErrorProb > 0 && rng.Float64() < rt.cfg.ErrorProb
	if delay {
		rt.delays.Inc()
		time.Sleep(rt.cfg.Delay)
	}
	if drop {
		rt.drops.Inc()
		return nil, fmt.Errorf("fault: injected connection drop (request %d)", i)
	}
	if fiveXX {
		rt.fives.Inc()
		body := "fault: injected 503"
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        make(http.Header),
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	return rt.base.RoundTrip(req)
}
