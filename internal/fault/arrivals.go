package fault

import (
	"math"

	"mdsprint/internal/obs"
)

// ArrivalFaultConfig configures an ArrivalFaults injector.
type ArrivalFaultConfig struct {
	// Seed drives the per-arrival fault decisions.
	Seed uint64
	// BurstProb is the per-arrival probability of injecting a burst of
	// BurstSize extra arrivals immediately after it.
	BurstProb float64
	// BurstSize is how many arrivals each burst injects (default 4).
	BurstSize int
	// BurstSpacing is the gap in seconds between injected burst
	// arrivals (default 0.02).
	BurstSpacing float64
	// DriftPerArrival compounds a relative stretch (+) or compression
	// (−) onto each successive inter-arrival gap, modelling a slowly
	// drifting true rate that the estimator must track.
	DriftPerArrival float64
	// Metrics receives the injector's counters; nil records into
	// obs.Default().
	Metrics *obs.Registry
}

// ArrivalFaults perturbs an arrival-timestamp stream with bursts and
// rate drift before it reaches online.RateEstimator. The injector is
// stateful — drift compounds and fault decisions are keyed by a running
// arrival index — so one injector instance can perturb a stream
// delivered across many Perturb calls and still be deterministic. Not
// safe for concurrent use (neither is the estimator it feeds).
type ArrivalFaults struct {
	cfg   ArrivalFaultConfig
	seen  uint64  // arrivals processed so far, the determinism key
	drift float64 // compounded gap scale
	last  float64 // last emitted timestamp
	begun bool

	bursts   *obs.Counter
	injected *obs.Counter
}

// NewArrivalFaults returns an injector for one arrival stream.
func NewArrivalFaults(cfg ArrivalFaultConfig) *ArrivalFaults {
	if cfg.BurstSize <= 0 {
		cfg.BurstSize = 4
	}
	if cfg.BurstSpacing <= 0 {
		cfg.BurstSpacing = 0.02
	}
	reg := obs.Or(cfg.Metrics)
	return &ArrivalFaults{
		cfg:      cfg,
		drift:    1,
		bursts:   reg.Counter("mdsprint_fault_bursts_total", "arrival bursts injected"),
		injected: reg.Counter("mdsprint_fault_burst_arrivals_total", "extra arrivals injected by bursts"),
	}
}

// Perturb applies drift and burst injection to a batch of ascending
// arrival timestamps and returns the perturbed batch, still ascending.
// Drift rescales each inter-arrival gap by the compounded factor;
// bursts append BurstSize closely spaced arrivals after the triggering
// one.
func (f *ArrivalFaults) Perturb(times []float64) []float64 {
	out := make([]float64, 0, len(times))
	for _, t := range times {
		rng := itemRNG(f.cfg.Seed, chanArrivals, f.seen)
		f.seen++
		if !f.begun {
			f.begun = true
			f.last = t
		} else {
			gap := t - f.last
			if gap < 0 {
				gap = 0
			}
			//lint:ignore floateq exact zero is the drift-disabled sentinel; any nonzero drift must compound
			if f.cfg.DriftPerArrival != 0 {
				f.drift *= 1 + f.cfg.DriftPerArrival
				// Keep the compounded scale in a sane band so long
				// streams cannot drive gaps to zero or infinity.
				f.drift = math.Min(math.Max(f.drift, 0.1), 10)
			}
			f.last += gap * f.drift
		}
		out = append(out, f.last)
		if f.cfg.BurstProb > 0 && rng.Float64() < f.cfg.BurstProb {
			f.bursts.Inc()
			for j := 0; j < f.cfg.BurstSize; j++ {
				f.last += f.cfg.BurstSpacing
				out = append(out, f.last)
				f.injected.Inc()
			}
		}
	}
	return out
}
