package fault

import "fmt"

// Phase is one act of a chaos scenario: a fixed number of control steps
// during which the scripted perturbations hold steady. Zero values mean
// "healthy": unit rate factor, unbiased models, no bursts.
type Phase struct {
	// Name labels the phase in timelines and reports.
	Name string
	// Steps is how many controller steps the phase lasts.
	Steps int
	// RateFactor multiplies the scenario's base arrival rate (0 → 1).
	RateFactor float64
	// PrimaryBias multiplies the primary (Hybrid-tier) model's
	// predictions (0 → 1, honest). Values far from 1 model a diverged
	// model whose predictions no longer track reality.
	PrimaryBias float64
	// FallbackBias is PrimaryBias for the fallback (NoML-tier) model.
	FallbackBias float64
	// BurstProb and BurstSize script arrival bursts (see
	// ArrivalFaultConfig).
	BurstProb float64
	BurstSize int
	// NoiseCV is the lognormal sigma of multiplicative noise on
	// observed response times (0 → 0.05).
	NoiseCV float64
	// PrimaryFail makes every primary-model prediction error outright —
	// a crashed or unreachable model rather than a diverged one. The
	// controller's search breaker must trip and the chain must demote.
	PrimaryFail bool
}

// Degradation levels a scenario expectation refers to, mirroring
// online's fallback chain without importing it (online imports fault).
const (
	LevelHybridIdx = 0 // full model-driven control
	LevelNoMLIdx   = 1 // prediction-free μm fallback model
	LevelStaticIdx = 2 // last-known-good static timeout
)

// Expect encodes what a correct degradation controller must do under a
// scenario: how far down the fallback chain it is allowed (and, for
// fault scripts, required) to go, and where it must settle by the end.
type Expect struct {
	// MaxLevel is the exact deepest degradation level the run must
	// reach (0 hybrid, 1 NoML, 2 static).
	MaxLevel int
	// EndLevel is the level the controller must have recovered to by
	// the scenario's final step.
	EndLevel int
}

// Scenario is a reproducible chaos script: a seed plus a phase
// sequence, with the expected controller behaviour attached so replays
// are self-checking.
type Scenario struct {
	// Name identifies the scenario in sprintctl -chaos and the
	// registry.
	Name string
	// Desc is a one-line summary for listings.
	Desc string
	// Seed drives every RNG in the replay; same seed, same run.
	Seed uint64
	// Phases execute in order.
	Phases []Phase
	// Expect is validated after a replay.
	Expect Expect
}

// Steps returns the scenario's total step count.
func (s Scenario) Steps() int {
	n := 0
	for _, p := range s.Phases {
		n += p.Steps
	}
	return n
}

// builtin is the scenario registry, kept as a sorted slice (no map
// iteration: replay order must be deterministic).
var builtin = []Scenario{
	{
		Name: "baseline",
		Desc: "healthy models, steady arrivals; the controller must stay at the Hybrid tier",
		Seed: 1,
		Phases: []Phase{
			{Name: "steady", Steps: 40},
		},
		Expect: Expect{MaxLevel: LevelHybridIdx, EndLevel: LevelHybridIdx},
	},
	{
		Name: "burst-storm",
		Desc: "arrival bursts while the primary model drifts; fall back to NoML, recover to Hybrid",
		Seed: 11,
		Phases: []Phase{
			{Name: "steady", Steps: 20},
			{Name: "storm", Steps: 30, RateFactor: 1.15, PrimaryBias: 0.4, BurstProb: 0.25, BurstSize: 5},
			{Name: "recovery", Steps: 60},
		},
		Expect: Expect{MaxLevel: LevelNoMLIdx, EndLevel: LevelHybridIdx},
	},
	{
		Name: "model-divergence",
		Desc: "primary then fallback predictions diverge; walk Hybrid → NoML → static, re-promote after recovery",
		Seed: 7,
		Phases: []Phase{
			{Name: "healthy", Steps: 25},
			{Name: "primary-diverges", Steps: 30, PrimaryBias: 0.25},
			{Name: "both-diverge", Steps: 30, PrimaryBias: 0.25, FallbackBias: 0.3},
			{Name: "recovery", Steps: 80},
		},
		Expect: Expect{MaxLevel: LevelStaticIdx, EndLevel: LevelHybridIdx},
	},
	{
		Name: "rate-drift",
		Desc: "arrival rate wanders with honest models; retunes happen, degradation must not",
		Seed: 23,
		Phases: []Phase{
			{Name: "low", Steps: 20, RateFactor: 0.6},
			{Name: "nominal", Steps: 20},
			{Name: "high", Steps: 20, RateFactor: 1.2},
			{Name: "settle", Steps: 20, RateFactor: 0.85},
		},
		Expect: Expect{MaxLevel: LevelHybridIdx, EndLevel: LevelHybridIdx},
	},
	{
		Name: "search-outage",
		Desc: "primary predictions fail outright from the first decision; the search breaker trips open and the chain serves from NoML",
		Seed: 31,
		Phases: []Phase{
			{Name: "outage", Steps: 30, PrimaryFail: true},
			{Name: "aftermath", Steps: 20, RateFactor: 1.2, PrimaryFail: true},
		},
		Expect: Expect{MaxLevel: LevelNoMLIdx, EndLevel: LevelNoMLIdx},
	},
}

// Scenarios returns the built-in chaos scripts in name order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(builtin))
	copy(out, builtin)
	return out
}

// ScenarioByName looks up a built-in scenario.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range builtin {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("fault: unknown scenario %q", name)
}
