// Package fault provides deterministic, seeded fault injection and the
// resilience primitives the graceful-degradation control plane is built
// on. The injectors corrupt the inputs each layer of the sprinting stack
// depends on — profiler samples (SampleFaults), arrival-timestamp streams
// feeding online.RateEstimator (ArrivalFaults), sweep-engine tasks
// (SweepFaultConfig), and HTTP round trips for the harness
// (RoundTripper) — while the Breaker and the scripted Scenario registry
// supply the recovery side: circuit breaking around expensive model
// calls and reproducible end-to-end chaos scripts.
//
// Everything in this package is a deterministic function of its
// configured seed: two injectors built from the same config produce
// bit-identical fault schedules, independent of goroutine scheduling
// (per-item decisions are keyed by item index, not by execution order).
// All injectors export mdsprint_fault_* metrics through internal/obs so
// chaos runs are observable from sprintctl's debug endpoints.
package fault

import "mdsprint/internal/dist"

// mix64 is a splitmix64-style finalizer used to derive independent RNG
// seeds from (seed, index) pairs. Deriving a fresh RNG per item keeps
// fault schedules a function of item identity alone.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// itemRNG returns the deterministic RNG for item i of the stream
// identified by seed and channel. Distinct channels decorrelate the
// fault streams of injectors sharing one scenario seed.
func itemRNG(seed uint64, channel uint64, i uint64) *dist.RNG {
	return dist.NewRNG(mix64(seed^mix64(channel)) ^ mix64(i+0x9e3779b97f4a7c15))
}

// Channel tags for itemRNG; each injector draws from its own stream.
const (
	chanSamples uint64 = iota + 1
	chanArrivals
	chanSweep
	chanHTTP
	chanChaos
)
