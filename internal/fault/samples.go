package fault

import (
	"math"

	"mdsprint/internal/obs"
)

// SampleFaults perturbs profiler measurement streams: each sample is
// independently dropped with probability DropRate, and each survivor is
// corrupted (scaled by a log-uniform factor) with probability
// CorruptRate. Decisions are keyed by sample index, so the schedule is a
// pure function of (Seed, index) and identical across runs.
type SampleFaults struct {
	// Seed drives the per-sample fault decisions.
	Seed uint64
	// DropRate is the probability a sample is silently lost.
	DropRate float64
	// CorruptRate is the probability a surviving sample is distorted.
	CorruptRate float64
	// CorruptFactor bounds the distortion: corrupted samples are scaled
	// by a log-uniform factor in [1/CorruptFactor, CorruptFactor]
	// (default 10).
	CorruptFactor float64
	// Metrics receives the injector's counters; nil records into
	// obs.Default().
	Metrics *obs.Registry
}

// Apply returns a new slice with the faults applied; the input is not
// modified. If every sample would be dropped, the first is kept so
// downstream estimators never see an empty measurement set.
func (f SampleFaults) Apply(samples []float64) []float64 {
	reg := obs.Or(f.Metrics)
	dropped := reg.Counter("mdsprint_fault_samples_dropped_total", "profiler samples dropped by injection")
	corrupted := reg.Counter("mdsprint_fault_samples_corrupted_total", "profiler samples corrupted by injection")
	factor := f.CorruptFactor
	if factor <= 1 {
		factor = 10
	}
	out := make([]float64, 0, len(samples))
	for i, s := range samples {
		rng := itemRNG(f.Seed, chanSamples, uint64(i))
		if f.DropRate > 0 && rng.Float64() < f.DropRate {
			dropped.Inc()
			continue
		}
		if f.CorruptRate > 0 && rng.Float64() < f.CorruptRate {
			// Log-uniform in [1/factor, factor]: symmetric in the
			// multiplicative sense, so corruption biases neither up
			// nor down on average.
			s *= math.Exp((2*rng.Float64() - 1) * math.Log(factor))
			corrupted.Inc()
		}
		out = append(out, s)
	}
	if len(out) == 0 && len(samples) > 0 {
		out = append(out, samples[0])
	}
	return out
}
