package fault

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"mdsprint/internal/obs"
	"mdsprint/internal/sweep"
)

func TestItemRNGIndependentOfOrder(t *testing.T) {
	// The determinism backbone: item i's stream depends only on
	// (seed, channel, i), never on how many other items were drawn.
	forward := make([]float64, 8)
	for i := range forward {
		forward[i] = itemRNG(42, chanSamples, uint64(i)).Float64()
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := itemRNG(42, chanSamples, uint64(i)).Float64(); got != forward[i] {
			t.Fatalf("item %d drew %v forward, %v backward", i, forward[i], got)
		}
	}
	// Distinct channels must decorrelate.
	if itemRNG(42, chanSamples, 0).Float64() == itemRNG(42, chanArrivals, 0).Float64() {
		t.Fatal("channels share a stream")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBreaker(BreakerConfig{
		Name: "test", FailureThreshold: 2, CooldownCalls: 3, HalfOpenSuccesses: 2,
		Metrics: reg,
	})
	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker must be closed and allowing")
	}
	// A success resets the consecutive-failure count.
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("tripped below the failure threshold")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("did not trip at the failure threshold")
	}
	// Open: exactly CooldownCalls denials, then half-open.
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatalf("open breaker allowed call %d", i)
		}
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %s after cooldown, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker must admit probes")
	}
	// A probe failure re-opens immediately.
	b.Failure()
	if b.State() != Open {
		t.Fatal("probe failure did not re-open")
	}
	for i := 0; i < 3; i++ {
		b.Allow()
	}
	b.Success()
	if b.State() != Closed {
		b.Success()
	}
	if b.State() != Closed {
		t.Fatalf("state %s after probe successes, want closed", b.State())
	}
	if got := reg.Counter("mdsprint_fault_breaker_trips_total", "").Value(); got < 2 {
		t.Fatalf("trips counter %v, want >= 2", got)
	}
	if got := reg.Counter("mdsprint_fault_breaker_rejections_total", "").Value(); got < 6 {
		t.Fatalf("rejections counter %v, want >= 6", got)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for _, tc := range []struct {
		s    BreakerState
		want string
	}{
		{Closed, "closed"}, {Open, "open"}, {HalfOpen, "half-open"},
	} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int(tc.s), got, tc.want)
		}
	}
}

func TestSampleFaultsDeterministicAndBounded(t *testing.T) {
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = 1.0
	}
	f := SampleFaults{Seed: 9, DropRate: 0.3, CorruptRate: 0.2, CorruptFactor: 4, Metrics: obs.NewRegistry()}
	a := f.Apply(samples)
	b := f.Apply(samples)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 0 {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == len(samples) || len(a) == 0 {
		t.Fatalf("drop rate 0.3 kept %d of %d", len(a), len(samples))
	}
	corrupted := 0
	for _, s := range a {
		if s < 0.25-1e-12 || s > 4+1e-12 {
			t.Fatalf("corrupted sample %v outside [1/4, 4]", s)
		}
		if s < 0.999 || s > 1.001 {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("corrupt rate 0.2 corrupted nothing")
	}
	// The input must be untouched.
	for i, s := range samples {
		if s < 1 || s > 1 {
			t.Fatalf("input sample %d modified to %v", i, s)
		}
	}
}

func TestSampleFaultsNeverReturnsEmpty(t *testing.T) {
	f := SampleFaults{Seed: 3, DropRate: 1.0, Metrics: obs.NewRegistry()}
	out := f.Apply([]float64{7, 8, 9})
	if len(out) != 1 || out[0] < 7 || out[0] > 7 {
		t.Fatalf("all-drop output %v, want the first sample kept", out)
	}
	if got := f.Apply(nil); len(got) != 0 {
		t.Fatalf("empty input produced %v", got)
	}
}

func TestArrivalFaultsDeterministicAcrossBatching(t *testing.T) {
	// One stream delivered whole must equal the same stream delivered in
	// arbitrary batch splits: fault decisions key on the running arrival
	// index, not the Perturb call boundaries.
	times := make([]float64, 200)
	for i := range times {
		times[i] = float64(i) * 0.5
	}
	cfg := ArrivalFaultConfig{Seed: 77, BurstProb: 0.1, BurstSize: 3, DriftPerArrival: 0.002, Metrics: obs.NewRegistry()}
	whole := NewArrivalFaults(cfg).Perturb(times)
	split := NewArrivalFaults(cfg)
	var pieced []float64
	for lo := 0; lo < len(times); lo += 7 {
		hi := lo + 7
		if hi > len(times) {
			hi = len(times)
		}
		pieced = append(pieced, split.Perturb(times[lo:hi])...)
	}
	if len(whole) != len(pieced) {
		t.Fatalf("batched replay length %d vs %d", len(pieced), len(whole))
	}
	for i := range whole {
		if math.Abs(whole[i]-pieced[i]) > 0 {
			t.Fatalf("batched replay diverged at %d: %v vs %v", i, pieced[i], whole[i])
		}
	}
	if len(whole) <= len(times) {
		t.Fatalf("burst prob 0.1 injected nothing (%d arrivals out)", len(whole))
	}
	for i := 1; i < len(whole); i++ {
		if whole[i] < whole[i-1] {
			t.Fatalf("output not ascending at %d: %v < %v", i, whole[i], whole[i-1])
		}
	}
}

func TestArrivalFaultsDriftClamped(t *testing.T) {
	f := NewArrivalFaults(ArrivalFaultConfig{Seed: 5, DriftPerArrival: 0.5, Metrics: obs.NewRegistry()})
	times := make([]float64, 100)
	for i := range times {
		times[i] = float64(i)
	}
	out := f.Perturb(times)
	// Compounded 1.5x per arrival would overflow without the clamp; with
	// it the last gap is at most 10x the input gap.
	lastGap := out[len(out)-1] - out[len(out)-2]
	if lastGap > 10+1e-9 {
		t.Fatalf("drift gap %v, want clamped to <= 10", lastGap)
	}
	neg := NewArrivalFaults(ArrivalFaultConfig{Seed: 5, DriftPerArrival: -0.5, Metrics: obs.NewRegistry()})
	out = neg.Perturb(times)
	lastGap = out[len(out)-1] - out[len(out)-2]
	if lastGap < 0.1-1e-9 {
		t.Fatalf("compression gap %v, want clamped to >= 0.1", lastGap)
	}
}

func TestSweepHookDeterministicPerIndex(t *testing.T) {
	cfg := SweepFaultConfig{Seed: 13, ErrProb: 0.3, Metrics: obs.NewRegistry()}
	hook := cfg.Hook()
	verdicts := make([]bool, 100)
	for i := range verdicts {
		verdicts[i] = hook(i, sweep.Task{}) != nil
	}
	// Replay in reverse order: same per-index verdicts.
	rehook := cfg.Hook()
	for i := len(verdicts) - 1; i >= 0; i-- {
		if got := rehook(i, sweep.Task{}) != nil; got != verdicts[i] {
			t.Fatalf("task %d verdict changed across call order", i)
		}
	}
	errs := 0
	for _, v := range verdicts {
		if v {
			errs++
		}
	}
	if errs == 0 || errs == len(verdicts) {
		t.Fatalf("error prob 0.3 produced %d/100 errors", errs)
	}
}

func TestSweepHookPanicNamesTask(t *testing.T) {
	hook := SweepFaultConfig{Seed: 2, PanicProb: 1, Metrics: obs.NewRegistry()}.Hook()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected an injected panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "task 7") {
			t.Fatalf("panic %v does not name the task", r)
		}
	}()
	// The hook must never return from a panic fault.
	if err := hook(7, sweep.Task{}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepHookDelay(t *testing.T) {
	reg := obs.NewRegistry()
	hook := SweepFaultConfig{Seed: 2, DelayProb: 1, Delay: time.Millisecond, Metrics: reg}.Hook()
	if err := hook(0, sweep.Task{}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mdsprint_fault_sweep_delays_total", "").Value(); got < 1 {
		t.Fatalf("delay counter %v, want >= 1", got)
	}
}

// stubTransport records how many requests reached the "upstream".
type stubTransport struct{ calls int }

func (s *stubTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	s.calls++
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader("ok")),
		Request:    req,
	}, nil
}

func TestRoundTripperInjectsScriptedFaults(t *testing.T) {
	base := &stubTransport{}
	reg := obs.NewRegistry()
	rt := NewRoundTripper(base, HTTPFaultConfig{Seed: 31, DropProb: 0.3, ErrorProb: 0.3, Metrics: reg})
	req, err := http.NewRequest(http.MethodGet, "http://example.invalid/q", nil)
	if err != nil {
		t.Fatal(err)
	}
	var drops, fives, oks int
	for i := 0; i < 200; i++ {
		resp, err := rt.RoundTrip(req)
		switch {
		case err != nil:
			if !strings.Contains(err.Error(), "injected connection drop") {
				t.Fatalf("unexpected transport error: %v", err)
			}
			drops++
		case resp.StatusCode == http.StatusServiceUnavailable:
			fives++
			if cerr := resp.Body.Close(); cerr != nil {
				t.Fatal(cerr)
			}
		default:
			oks++
			if cerr := resp.Body.Close(); cerr != nil {
				t.Fatal(cerr)
			}
		}
	}
	if drops == 0 || fives == 0 || oks == 0 {
		t.Fatalf("fault mix drops=%d fives=%d oks=%d, want all three", drops, fives, oks)
	}
	// Dropped and injected-5xx requests must never reach the upstream.
	if base.calls != oks {
		t.Fatalf("upstream saw %d calls, want %d (faulted requests must not leak)", base.calls, oks)
	}
	if got := reg.Counter("mdsprint_fault_http_drops_total", "").Value(); int(got) != drops {
		t.Fatalf("drop counter %v, want %d", got, drops)
	}
}

func TestRoundTripperDefaultBase(t *testing.T) {
	rt := NewRoundTripper(nil, HTTPFaultConfig{Seed: 1, DropProb: 1, Metrics: obs.NewRegistry()})
	req, err := http.NewRequest(http.MethodGet, "http://example.invalid/", nil)
	if err != nil {
		t.Fatal(err)
	}
	// DropProb 1 faults before the default transport would dial out.
	if _, rerr := rt.RoundTrip(req); rerr == nil {
		t.Fatal("expected an injected drop")
	}
}

func TestScenarioRegistry(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 4 {
		t.Fatalf("only %d built-in scenarios", len(scs))
	}
	for i := 1; i < len(scs); i++ {
		if scs[i-1].Name >= scs[i].Name {
			t.Fatalf("registry not in name order: %q before %q", scs[i-1].Name, scs[i].Name)
		}
	}
	for _, sc := range scs {
		if sc.Steps() <= 0 {
			t.Errorf("scenario %q has no steps", sc.Name)
		}
		got, err := ScenarioByName(sc.Name)
		if err != nil || got.Seed != sc.Seed {
			t.Errorf("ScenarioByName(%q) = %+v, %v", sc.Name, got, err)
		}
	}
	if _, err := ScenarioByName("no-such-script"); err == nil {
		t.Fatal("expected an error for an unknown scenario")
	}
	// Mutating the returned slice must not corrupt the registry.
	scs[0].Seed = 999999
	if again, err := ScenarioByName(scs[0].Name); err != nil || again.Seed == 999999 {
		t.Fatal("Scenarios() exposed the registry's backing array")
	}
}

func TestScenarioExpectLevelsInRange(t *testing.T) {
	for _, sc := range Scenarios() {
		if sc.Expect.MaxLevel < LevelHybridIdx || sc.Expect.MaxLevel > LevelStaticIdx ||
			sc.Expect.EndLevel < LevelHybridIdx || sc.Expect.EndLevel > LevelStaticIdx {
			t.Errorf("scenario %q expectation out of range: %+v", sc.Name, sc.Expect)
		}
		if sc.Expect.EndLevel > sc.Expect.MaxLevel {
			t.Errorf("scenario %q ends deeper than its max: %+v", sc.Name, sc.Expect)
		}
	}
}

var errSentinel = errors.New("sentinel")

func TestSweepHookErrorMentionsFault(t *testing.T) {
	hook := SweepFaultConfig{Seed: 4, ErrProb: 1, Metrics: obs.NewRegistry()}.Hook()
	err := hook(3, sweep.Task{})
	if err == nil || !strings.Contains(err.Error(), "fault: injected error at task 3") {
		t.Fatalf("err = %v, want an injected-error message naming task 3", err)
	}
	if errors.Is(err, errSentinel) {
		t.Fatal("injected errors must not alias caller sentinels")
	}
	_ = fmt.Sprintf("%v", err)
}

// TestBreakerSnapshotRestore pins the persistence surface in-package:
// a restored breaker continues the exact call sequence of the original
// (the daemon-level bit-identity test builds on this), bad snapshots
// are rejected without touching state, and the zero config resolves to
// its documented defaults.
func TestBreakerSnapshotRestore(t *testing.T) {
	mk := func() *Breaker {
		return NewBreaker(BreakerConfig{
			Name: "snap", FailureThreshold: 2, CooldownCalls: 3, HalfOpenSuccesses: 2,
			Metrics: obs.NewRegistry(),
		})
	}
	orig := mk()
	orig.Failure()
	orig.Failure() // trips open
	orig.Allow()   // one denial into the cooldown
	snap := orig.Snapshot()
	if snap.State != int(Open) || snap.Denied != 1 {
		t.Fatalf("snapshot = %+v, want open with 1 denial", snap)
	}

	restored := mk()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Both breakers must now walk the same sequence: two more denials
	// reach the cooldown, then a probe is admitted.
	for _, b := range []*Breaker{orig, restored} {
		if b.Allow() || b.Allow() {
			t.Fatal("open breaker allowed a call mid-cooldown")
		}
		if b.State() != HalfOpen || !b.Allow() {
			t.Fatalf("state %s after cooldown, want half-open probe", b.State())
		}
	}

	// Rejected snapshots leave the breaker unchanged.
	before := restored.Snapshot()
	for _, bad := range []BreakerSnapshot{
		{State: -1},
		{State: int(HalfOpen) + 1},
		{State: int(Closed), Failures: -1},
		{State: int(Closed), Denied: -1},
		{State: int(Closed), ProbeOK: -1},
	} {
		if err := restored.Restore(bad); err == nil {
			t.Fatalf("Restore(%+v) accepted an invalid snapshot", bad)
		}
	}
	if restored.Snapshot() != before {
		t.Fatal("failed Restore mutated the breaker")
	}

	// The zero config resolves to the documented defaults.
	def := BreakerConfig{}.withDefaults()
	if def.Name != "breaker" || def.FailureThreshold != 3 ||
		def.CooldownCalls != 8 || def.HalfOpenSuccesses != 2 {
		t.Fatalf("withDefaults() = %+v", def)
	}
}
