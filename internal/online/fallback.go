package online

import (
	"context"
	"fmt"

	"mdsprint/internal/core"
	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
	"mdsprint/internal/sweep"
	"mdsprint/internal/tier"
)

// FallbackConfig builds a FallbackController.
type FallbackConfig struct {
	// Primary is the fully model-driven tier (typically core.Hybrid);
	// Fallback is the prediction-free tier (typically core.NoML). Both
	// are required.
	Primary  core.Model
	Fallback core.Model
	// Dataset, Base, MaxTimeout, AnnealIter, Seed and RetuneThreshold
	// configure the per-tier Controllers (see Controller).
	Dataset         *profiler.Dataset
	Base            profiler.Condition
	MaxTimeout      float64
	AnnealIter      int
	Seed            uint64
	RetuneThreshold float64
	// Watchdog tunes the health windows (zero values take defaults).
	Watchdog WatchdogConfig
	// Breaker, when set, circuit-breaks the primary tier's annealing
	// searches (see Controller.Breaker). May be nil.
	Breaker *fault.Breaker
	// Metrics receives level changes and residuals; nil records into
	// obs.Default().
	Metrics *obs.Registry
	// Ledger, when set, receives a DecisionRecord per selection. May be
	// nil.
	Ledger *DecisionLedger
	// Engine is the sweep engine whose cache hit ratio decisions record;
	// nil reads the process-shared engine.
	Engine *sweep.Engine
	// Tiers, when set, is the staged estimator the models were built
	// over; each decision stamps the estimator-tier provenance (which
	// ladder tier dominated the decision's model queries, and how many
	// were answered below simulation cost) into its DecisionRecord. May
	// be nil.
	Tiers *tier.Estimator
	// Clock times selections and searches for decision provenance; nil
	// uses the real clock.
	Clock obs.Clock
}

// fallbackMetrics are the degradation-plane instrumentation handles.
type fallbackMetrics struct {
	level        *obs.Gauge
	demotions    *obs.Counter
	promotions   *obs.Counter
	residual     *obs.Histogram
	predictFails *obs.Counter
	staticHolds  *obs.Counter

	decisions     *obs.Counter
	tier          [3]*obs.Counter // per-tier decision counts, indexed by Level
	decRetunes    *obs.Counter
	selectSeconds *obs.Histogram
	searchSeconds *obs.Histogram
}

// FallbackController is the graceful-degradation control plane of the
// paper's Section 5 challenge, shaped after SkipPredict's fall-back
// reflex: drive timeouts with the primary model while it tracks
// reality, demote one level at a time down the chain Hybrid → NoML →
// last-known-good static timeout as prediction residuals decay, and
// re-promote gradually (hysteresis) as a recovering tier proves itself
// against live observations. It is not safe for concurrent use.
type FallbackController struct {
	cfg      FallbackConfig
	primary  *Controller
	fallback *Controller

	level  Level
	active *Watchdog // health of the tier currently in control
	probe  *Watchdog // shadow health of the next-better tier

	lastTO   float64
	lastRate float64
	haveTO   bool

	lastGoodTO float64
	haveGood   bool

	demotions  int
	promotions int

	m fallbackMetrics
}

// NewFallbackController validates the config and returns a controller
// starting at LevelHybrid.
func NewFallbackController(cfg FallbackConfig) (*FallbackController, error) {
	if cfg.Primary == nil || cfg.Fallback == nil {
		return nil, fmt.Errorf("online: fallback controller needs both a primary and a fallback model")
	}
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("online: fallback controller needs a dataset")
	}
	cfg.Watchdog = cfg.Watchdog.withDefaults()
	reg := obs.Or(cfg.Metrics)
	f := &FallbackController{
		cfg: cfg,
		primary: &Controller{
			Model: cfg.Primary, Dataset: cfg.Dataset, Base: cfg.Base,
			MaxTimeout: cfg.MaxTimeout, AnnealIter: cfg.AnnealIter,
			Seed: cfg.Seed, RetuneThreshold: cfg.RetuneThreshold,
			Metrics: cfg.Metrics, Breaker: cfg.Breaker, Clock: cfg.Clock,
		},
		fallback: &Controller{
			Model: cfg.Fallback, Dataset: cfg.Dataset, Base: cfg.Base,
			MaxTimeout: cfg.MaxTimeout, AnnealIter: cfg.AnnealIter,
			Seed: cfg.Seed ^ 0xa5a5a5a55a5a5a5a, RetuneThreshold: cfg.RetuneThreshold,
			Metrics: cfg.Metrics, Clock: cfg.Clock,
		},
		active: NewWatchdog(cfg.Watchdog),
		probe:  NewWatchdog(cfg.Watchdog),
		m: fallbackMetrics{
			level:        reg.Gauge("mdsprint_online_level", "degradation level in force (0 hybrid, 1 noml, 2 static)"),
			demotions:    reg.Counter("mdsprint_online_demotions_total", "fallback-chain demotions (model health lost)"),
			promotions:   reg.Counter("mdsprint_online_promotions_total", "fallback-chain promotions (model health regained)"),
			residual:     reg.Histogram("mdsprint_online_residual", "active tier's |predicted-observed|/observed residual", 0),
			predictFails: reg.Counter("mdsprint_online_predict_failures_total", "model predictions that failed during health tracking"),
			staticHolds:  reg.Counter("mdsprint_online_static_decisions_total", "decisions served from the last-known-good static timeout"),

			decisions: reg.Counter("mdsprint_decision_total", "online timeout selections served"),
			tier: [3]*obs.Counter{
				reg.Counter("mdsprint_decision_tier_hybrid_total", "selections served by the hybrid tier"),
				reg.Counter("mdsprint_decision_tier_noml_total", "selections served by the no-ml tier"),
				reg.Counter("mdsprint_decision_tier_static_total", "selections served by the static last-known-good tier"),
			},
			decRetunes:    reg.Counter("mdsprint_decision_retunes_total", "selections that ran a fresh annealing search"),
			selectSeconds: reg.Histogram("mdsprint_decision_select_seconds", "wall-clock seconds per online selection", 0),
			searchSeconds: reg.Histogram("mdsprint_decision_search_seconds", "wall-clock seconds per annealing search inside a selection", 0),
		},
	}
	f.m.level.Set(float64(f.level))
	return f, nil
}

// Level returns the degradation level currently in force.
func (f *FallbackController) Level() Level { return f.level }

// Counts reports how many demotions and promotions have occurred.
func (f *FallbackController) Counts() (demotions, promotions int) {
	return f.demotions, f.promotions
}

// LastGoodTimeout returns the static-tier timeout, and whether one has
// been banked yet.
func (f *FallbackController) LastGoodTimeout() (float64, bool) {
	return f.lastGoodTO, f.haveGood
}

// Timeout returns the sprint timeout for the estimated arrival rate,
// routed through the level currently in force. A failing search is
// itself a health signal: the controller demotes and retries down the
// chain before giving up.
func (f *FallbackController) Timeout(rate float64) (float64, error) {
	return f.TimeoutCtx(context.Background(), rate)
}

// TimeoutCtx is Timeout honoring span tracing: the selection is one
// "online.decide" span, with one "online.tier" child per tier attempt.
func (f *FallbackController) TimeoutCtx(ctx context.Context, rate float64) (float64, error) {
	sp := obs.StartSpanCtx(ctx, "online.decide")
	to, err := f.decide(sp, rate)
	sp.SetError(err)
	sp.End()
	return to, err
}

// decide is the selection body: route through the level in force,
// demoting on failure, then record the decision's provenance.
func (f *FallbackController) decide(sp *obs.Span, rate float64) (float64, error) {
	clk := obs.ClockOr(f.cfg.Clock)
	start := clk.Now()
	startLevel := f.level
	var estBefore tier.Stats
	if f.cfg.Tiers != nil {
		estBefore = f.cfg.Tiers.Stats()
	}
	to, info, err := f.timeoutAt(f.level, rate, sp)
	for err != nil && f.level < LevelStatic {
		f.demote()
		to, info, err = f.timeoutAt(f.level, rate, sp)
	}
	if err != nil {
		return 0, err
	}
	f.lastTO, f.lastRate, f.haveTO = to, rate, true

	rec := DecisionRecord{
		Rate:          rate,
		Timeout:       to,
		PredictedRT:   info.PredictedRT,
		Tier:          f.level.String(),
		Level:         int(f.level),
		Retuned:       info.Retuned,
		Demoted:       f.level > startLevel,
		BreakerState:  f.breakerState(),
		CacheHitRatio: sweep.Or(f.cfg.Engine).Stats().HitRate(),
		SelectNanos:   clk.Now().Sub(start).Nanoseconds(),
		SearchNanos:   info.SearchNanos,
	}
	if f.cfg.Tiers != nil {
		d := f.cfg.Tiers.Stats().Sub(estBefore)
		if dom, ok := d.Dominant(); ok {
			rec.EstTier = dom.String()
		}
		rec.EstQueries = int64(d.Answers)
		rec.EstCheap = int64(d.Analytic + d.Cache)
	}
	f.cfg.Ledger.Append(rec)
	f.m.decisions.Inc()
	f.m.tier[int(f.level)].Inc()
	if rec.Retuned {
		f.m.decRetunes.Inc()
	}
	f.m.selectSeconds.Observe(float64(rec.SelectNanos) / 1e9)
	if rec.SearchNanos > 0 {
		f.m.searchSeconds.Observe(float64(rec.SearchNanos) / 1e9)
	}
	sp.SetString("tier", rec.Tier)
	sp.SetFloat("timeout_s", to)
	sp.SetFloat("predicted_rt", rec.PredictedRT)
	sp.SetBool("retuned", rec.Retuned)
	sp.SetBool("demoted", rec.Demoted)
	sp.SetString("breaker", rec.BreakerState)
	if rec.EstTier != "" {
		sp.SetString("est_tier", rec.EstTier)
	}
	return to, nil
}

// breakerState names the primary-search breaker's position ("none"
// without a breaker).
func (f *FallbackController) breakerState() string {
	if f.cfg.Breaker == nil {
		return "none"
	}
	return f.cfg.Breaker.State().String()
}

// timeoutAt computes the decision one level would make, as one
// "online.tier" span under the selection.
func (f *FallbackController) timeoutAt(l Level, rate float64, parent *obs.Span) (float64, tierInfo, error) {
	sp := parent.StartChild("online.tier")
	sp.SetString("tier", l.String())
	ctx := obs.ContextWithSpan(context.Background(), sp)
	var to float64
	var info tierInfo
	var err error
	switch l {
	case LevelHybrid:
		to, info, err = f.primary.timeout(ctx, rate)
	case LevelNoML:
		to, info, err = f.fallback.timeout(ctx, rate)
	default:
		if f.haveGood {
			f.m.staticHolds.Inc()
			to = f.lastGoodTO
		} else {
			// Nothing banked: the chain bottomed out before any healthy
			// decision. The prediction-free tier is the only option left.
			to, info, err = f.fallback.timeout(ctx, rate)
		}
	}
	sp.SetError(err)
	sp.End()
	return to, info, err
}

// model returns the model backing a (non-static) level.
func (f *FallbackController) model(l Level) core.Model {
	if l == LevelHybrid {
		return f.cfg.Primary
	}
	return f.cfg.Fallback
}

// predictAt shadows a model's prediction for the decision in force.
func (f *FallbackController) predictAt(m core.Model, rate float64) (core.Prediction, error) {
	cond := f.cfg.Base
	cond.Timeout = f.lastTO
	return m.Predict(f.cfg.Dataset, core.Scenario{Cond: cond, ArrivalRate: rate})
}

// Observe feeds one observed mean response time (measured under the
// last Timeout decision, at the currently estimated rate) into the
// health watchdogs. This is where demotions and promotions happen.
func (f *FallbackController) Observe(rate, observed float64) {
	if !f.haveTO || rate <= 0 {
		return
	}
	// Health of the tier in control. The static tier has no model to
	// judge; its "health" is the probe below.
	if f.level != LevelStatic {
		pred, err := f.predictAt(f.model(f.level), rate)
		if err != nil {
			f.m.predictFails.Inc()
			f.active.ObserveFailure()
		} else {
			f.active.Observe(pred.MeanRT, observed)
			if observed > 0 {
				f.m.residual.Observe(pred.MeanRT/observed - 1)
			}
		}
		if f.active.ShouldDemote() {
			f.demote()
			return
		}
		// Bank the decision while the active model demonstrably tracks
		// reality: this is the timeout the static tier will hold.
		if f.active.Samples() >= f.cfg.Watchdog.MinSamples &&
			f.active.MeanResidual() < f.cfg.Watchdog.PromoteThreshold {
			f.lastGoodTO, f.haveGood = f.lastTO, true
		}
	}
	// Shadow the next-better tier; sustained health re-promotes one
	// level at a time.
	if f.level > LevelHybrid {
		better := f.model(f.level - 1)
		pred, err := f.predictAt(better, rate)
		if err != nil {
			f.m.predictFails.Inc()
			f.probe.ObserveFailure()
		} else {
			f.probe.Observe(pred.MeanRT, observed)
		}
		if f.probe.ShouldPromote() {
			f.promote()
		}
	}
}

// demote climbs one level down the chain and restarts the evidence
// windows.
func (f *FallbackController) demote() {
	if f.level >= LevelStatic {
		return
	}
	f.level++
	f.demotions++
	f.m.demotions.Inc()
	f.m.level.Set(float64(f.level))
	f.active.Reset()
	f.probe.Reset()
}

// promote climbs one level back up after sustained probe health.
func (f *FallbackController) promote() {
	if f.level <= LevelHybrid {
		return
	}
	f.level--
	f.promotions++
	f.m.promotions.Inc()
	f.m.level.Set(float64(f.level))
	f.active.Reset()
	f.probe.Reset()
}
