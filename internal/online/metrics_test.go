package online

import (
	"testing"

	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
)

func TestControllerRecordsDecisionMetrics(t *testing.T) {
	// Every model-driven re-selection must land in the metrics registry:
	// the retune counter, the chosen timeout, the rate that drove it,
	// and (from the second decision on) the timeout it replaced.
	ds := onlineDataset(t)
	reg := obs.NewRegistry()
	c := &Controller{
		Model:   &core.NoML{SimQueries: 800, SimReps: 1, Seed: 13},
		Dataset: ds,
		Base: profiler.Condition{
			ArrivalKind: dist.KindExponential,
			RefillTime:  600, BudgetPct: 0.15,
		},
		AnnealIter: 12,
		Seed:       17,
		Metrics:    reg,
	}
	to1, err := c.Timeout(0.4 * ds.ServiceRate)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mdsprint_online_retunes_total", "").Value(); got != 1 {
		t.Fatalf("retunes counter %v after first decision, want 1", got)
	}
	if got := reg.Gauge("mdsprint_online_timeout_seconds", "").Value(); got != to1 {
		t.Fatalf("timeout gauge %v, want %v", got, to1)
	}
	rate2 := 0.9 * ds.ServiceRate
	to2, err := c.Timeout(rate2)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mdsprint_online_retunes_total", "").Value(); got != 2 {
		t.Fatalf("retunes counter %v after drift, want 2", got)
	}
	if got := reg.Gauge("mdsprint_online_prev_timeout_seconds", "").Value(); got != to1 {
		t.Fatalf("previous-timeout gauge %v, want %v", got, to1)
	}
	if got := reg.Gauge("mdsprint_online_timeout_seconds", "").Value(); got != to2 {
		t.Fatalf("timeout gauge %v, want %v", got, to2)
	}
	if got := reg.Gauge("mdsprint_online_estimated_rate_qps", "").Value(); got != rate2 {
		t.Fatalf("rate gauge %v, want %v", got, rate2)
	}
}
