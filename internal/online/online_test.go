package online

import (
	"math"
	"testing"

	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/mech"
	"mdsprint/internal/profiler"
	"mdsprint/internal/workload"
)

func TestRateEstimatorConvergesOnPoisson(t *testing.T) {
	r := dist.NewRNG(3)
	const rate = 0.5
	arr := dist.NewExponential(rate)
	e := MustRateEstimator(600, 0)
	now := 0.0
	for i := 0; i < 5000; i++ {
		now += arr.Sample(r)
		e.Observe(now)
	}
	if got := e.Rate(now); math.Abs(got-rate)/rate > 0.10 {
		t.Fatalf("estimated rate %v, want ~%v", got, rate)
	}
}

func TestRateEstimatorTracksShift(t *testing.T) {
	r := dist.NewRNG(7)
	e := MustRateEstimator(300, 0)
	now := 0.0
	// Phase 1 at 0.2/s.
	arr1 := dist.NewExponential(0.2)
	for i := 0; i < 2000; i++ {
		now += arr1.Sample(r)
		e.Observe(now)
	}
	before := e.Rate(now)
	// Phase 2 at 0.8/s: after two windows the estimate must follow.
	arr2 := dist.NewExponential(0.8)
	shiftStart := now
	for now < shiftStart+600 {
		now += arr2.Sample(r)
		e.Observe(now)
	}
	after := e.Rate(now)
	if math.Abs(before-0.2)/0.2 > 0.15 {
		t.Fatalf("phase-1 estimate %v", before)
	}
	if math.Abs(after-0.8)/0.8 > 0.15 {
		t.Fatalf("phase-2 estimate %v did not track the shift", after)
	}
}

func TestRateEstimatorEWMASmoother(t *testing.T) {
	// With EWMA the estimate reacts more slowly but with less variance.
	r1, r2 := dist.NewRNG(9), dist.NewRNG(9)
	raw := MustRateEstimator(120, 0)
	smooth := MustRateEstimator(120, 0.95)
	arr := dist.NewExponential(0.3)
	now1, now2 := 0.0, 0.0
	var rawVals, smoothVals []float64
	for i := 0; i < 4000; i++ {
		now1 += arr.Sample(r1)
		raw.Observe(now1)
		now2 += arr.Sample(r2)
		smooth.Observe(now2)
		if i > 1000 {
			rawVals = append(rawVals, raw.Rate(now1))
			smoothVals = append(smoothVals, smooth.Rate(now2))
		}
	}
	if variance(smoothVals) >= variance(rawVals) {
		t.Fatalf("EWMA variance %v >= raw variance %v", variance(smoothVals), variance(rawVals))
	}
}

func variance(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return v / float64(len(xs))
}

func TestRateEstimatorEarlyStreamSane(t *testing.T) {
	// Regression: the first observations must not produce absurd rates
	// (a single arrival once divided by a ~zero span).
	e := MustRateEstimator(3600, 0.9)
	e.Observe(100)
	if got := e.Rate(100); got > 1 {
		t.Fatalf("single-arrival rate %v, want a small floor", got)
	}
	// A handful of arrivals 50 s apart: estimate near 0.02/s quickly.
	for _, ts := range []float64{150, 200, 250, 300, 350} {
		e.Observe(ts)
	}
	if got := e.Rate(350); got < 0.005 || got > 0.08 {
		t.Fatalf("early-stream rate %v, want ~0.02", got)
	}
}

func TestRateEstimatorValidation(t *testing.T) {
	for _, bad := range []struct{ window, alpha float64 }{
		{0, 0}, {-1, 0}, {math.Inf(1), 0}, {math.NaN(), 0},
		{10, 1}, {10, -0.1}, {10, math.NaN()},
	} {
		if _, err := NewRateEstimator(bad.window, bad.alpha); err == nil {
			t.Errorf("NewRateEstimator(%v, %v): expected error", bad.window, bad.alpha)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRateEstimator: expected panic on invalid args")
			}
		}()
		MustRateEstimator(0, 0)
	}()
	if got := MustRateEstimator(10, 0).Rate(100); got != 0 {
		t.Fatalf("empty estimator rate %v, want 0", got)
	}
}

func TestRateEstimatorToleratesHostileClocks(t *testing.T) {
	// Real clocks misbehave; the estimator must absorb regressions and
	// non-finite timestamps instead of panicking (see Observe).
	e := MustRateEstimator(10, 0)
	e.Observe(5)
	e.Observe(4) // regression: clamped to a simultaneous arrival at 5
	e.Observe(math.NaN())
	e.Observe(math.Inf(1))
	e.Observe(math.Inf(-1))
	if n := e.Observations(); n != 2 {
		t.Fatalf("observations %d, want 2 (regression kept, non-finite dropped)", n)
	}
	if got := e.Rate(math.NaN()); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("Rate under a NaN clock = %v, want finite", got)
	}
	if got := e.Rate(math.Inf(1)); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("Rate under an Inf clock = %v, want finite", got)
	}
}

// onlineDataset profiles a small throttled-Jacobi dataset for controller
// tests.
func onlineDataset(t *testing.T) *profiler.Dataset {
	t.Helper()
	p := &profiler.Profiler{
		Mix:           workload.SingleClass(workload.MustByName("Jacobi")),
		Mechanism:     mech.NewThrottle(0.20),
		QueriesPerRun: 600,
		Seed:          11,
	}
	mu, samples, _ := p.MeasureServiceRate()
	mum, _ := p.MeasureMarginalRate()
	return &profiler.Dataset{
		MixName: "Jacobi", MechName: "Throttle20%",
		ServiceRate: mu, MarginalRate: mum, ServiceSamples: samples,
	}
}

func TestControllerRetunesOnDrift(t *testing.T) {
	ds := onlineDataset(t)
	c := &Controller{
		Model:   &core.NoML{SimQueries: 1200, SimReps: 1, Seed: 13},
		Dataset: ds,
		Base: profiler.Condition{
			ArrivalKind: dist.KindExponential,
			RefillTime:  600, BudgetPct: 0.15,
		},
		AnnealIter: 20,
		Seed:       17,
	}
	lo := 0.4 * ds.ServiceRate
	to1, err := c.Timeout(lo)
	if err != nil {
		t.Fatal(err)
	}
	if c.Retunes() != 1 {
		t.Fatalf("retunes %d after first decision", c.Retunes())
	}
	// Within the drift threshold: reuse the decision, no new search.
	to2, err := c.Timeout(lo * 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if to2 != to1 || c.Retunes() != 1 {
		t.Fatalf("controller re-searched inside the threshold (retunes %d)", c.Retunes())
	}
	// A genuine shift retunes.
	if _, err := c.Timeout(0.9 * ds.ServiceRate); err != nil {
		t.Fatal(err)
	}
	if c.Retunes() != 2 {
		t.Fatalf("retunes %d after drift, want 2", c.Retunes())
	}
}

func TestControllerNoisyEstimatesStayNearOracle(t *testing.T) {
	// The Section 5 question: does the model still pick good policies
	// from noisy condition estimates? Compare expected RT at the
	// timeout chosen from a +-10% noisy rate against the oracle rate.
	ds := onlineDataset(t)
	model := &core.NoML{SimQueries: 1500, SimReps: 1, Seed: 19}
	base := profiler.Condition{
		ArrivalKind: dist.KindExponential,
		RefillTime:  600, BudgetPct: 0.15,
	}
	trueRate := 0.8 * ds.ServiceRate
	rtAt := func(timeout float64) float64 {
		cond := base
		cond.Timeout = timeout
		pred, err := model.Predict(ds, core.Scenario{Cond: cond, ArrivalRate: trueRate})
		if err != nil {
			t.Fatal(err)
		}
		return pred.MeanRT
	}
	pick := func(rate float64, seed uint64) float64 {
		c := &Controller{
			Model: model, Dataset: ds, Base: base,
			AnnealIter: 25, Seed: seed,
		}
		to, err := c.Timeout(rate)
		if err != nil {
			t.Fatal(err)
		}
		return to
	}
	oracleRT := rtAt(pick(trueRate, 23))
	noisyRT := rtAt(pick(trueRate*1.1, 29))
	if noisyRT > oracleRT*1.15 {
		t.Fatalf("noisy-estimate policy RT %v vs oracle %v", noisyRT, oracleRT)
	}
}
