package online

import (
	"testing"

	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
)

// runScenario replays one built-in scenario against a fresh registry (so
// runs are isolated under -shuffle=on).
func runScenario(t *testing.T, name string) *ChaosResult {
	t.Helper()
	sc, err := fault.ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunChaos(sc, ChaosOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChaosScenariosMeetExpectations(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := runScenario(t, sc.Name)
			if len(res.Steps) != sc.Steps() {
				t.Fatalf("replayed %d steps, scenario declares %d", len(res.Steps), sc.Steps())
			}
			for _, v := range res.Violations(sc) {
				t.Errorf("scenario %q: %s", sc.Name, v)
			}
			if t.Failed() {
				t.Logf("timeline tail: %+v", res.Steps[len(res.Steps)-5:])
			}
		})
	}
}

// TestChaosModelDivergenceDegradesAndRecovers is the ISSUE's headline
// regression: under a fixed seed the model-divergence scenario must walk
// the whole chain Hybrid → NoML → static and re-promote back to Hybrid
// once the models behave again.
func TestChaosModelDivergenceDegradesAndRecovers(t *testing.T) {
	res := runScenario(t, "model-divergence")
	if res.MaxLevel != LevelStatic {
		t.Fatalf("max level %s, want static (the chain must bottom out)", res.MaxLevel)
	}
	if res.EndLevel != LevelHybrid {
		t.Fatalf("end level %s, want hybrid (the chain must fully re-promote)", res.EndLevel)
	}
	if res.Demotions < 2 {
		t.Fatalf("demotions %d, want >= 2 (hybrid->noml and noml->static)", res.Demotions)
	}
	if res.Promotions < 2 {
		t.Fatalf("promotions %d, want >= 2 (static->noml and noml->hybrid)", res.Promotions)
	}
	// The walk must be ordered: hybrid before noml before static before
	// the recovery back up.
	sawNoML, sawStatic := -1, -1
	for _, s := range res.Steps {
		if sawNoML < 0 && s.Level == LevelNoML {
			sawNoML = s.Step
		}
		if sawStatic < 0 && s.Level == LevelStatic {
			sawStatic = s.Step
		}
	}
	if sawNoML < 0 || sawStatic < 0 || sawNoML >= sawStatic {
		t.Fatalf("degradation order broken: first noml step %d, first static step %d", sawNoML, sawStatic)
	}
}

// TestChaosDeterministicFingerprints asserts the chaos contract: one
// seed, one bit-identical decision timeline — replays may not disagree
// in any level, timeout, estimate or observation.
func TestChaosDeterministicFingerprints(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a := runScenario(t, sc.Name)
			b := runScenario(t, sc.Name)
			if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
				t.Fatalf("replays diverged: %s vs %s", fa, fb)
			}
		})
	}
}

func TestChaosRejectsEmptyScenario(t *testing.T) {
	if _, err := RunChaos(fault.Scenario{Name: "empty"}, ChaosOptions{Metrics: obs.NewRegistry()}); err == nil {
		t.Fatal("expected an error for a scenario with no phases")
	}
}
