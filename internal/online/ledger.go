package online

import (
	"fmt"
	"math"
	"strconv"
	"sync"
)

// DecisionRecord is the provenance of one (re-)selection: which tier
// answered, what it predicted, what the search and selection cost, and
// the fallback/breaker state the decision was made under. Records are
// exported as JSONL (trace.SaveDecisions) and summarized into the
// mdsprint_decision_* metrics.
type DecisionRecord struct {
	// Seq numbers decisions in ledger order; VirtualTime is the replay's
	// virtual clock when the decision was stamped (RunChaos), 0 for live
	// decisions.
	Seq         int     `json:"seq"`
	VirtualTime float64 `json:"virtual_time"`
	// Rate is the arrival-rate estimate the decision answered; Timeout
	// is the chosen policy; PredictedRT is the serving tier's expected
	// mean response time at that timeout (0 when the tier is static and
	// has no model).
	Rate        float64 `json:"rate"`
	Timeout     float64 `json:"timeout"`
	PredictedRT float64 `json:"predicted_rt"`
	// Tier names the level that served ("hybrid", "noml", "static");
	// Level is its ordinal. Retuned reports whether this decision ran a
	// fresh annealing search; Demoted whether serving it demoted the
	// chain mid-decision.
	Tier    string `json:"tier"`
	Level   int    `json:"level"`
	Retuned bool   `json:"retuned"`
	Demoted bool   `json:"demoted"`
	// BreakerState is the primary-search breaker's position at decision
	// time ("none" when no breaker is configured).
	BreakerState string `json:"breaker_state"`
	// CacheHitRatio is the sweep engine's memoization hit rate at
	// decision time.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// SelectNanos is the wall time of the whole selection; SearchNanos
	// the portion spent in the annealing search (0 without a retune).
	SelectNanos int64 `json:"select_nanos"`
	SearchNanos int64 `json:"search_nanos"`
	// EstTier names the staged-estimator tier (analytic/cache/short/
	// full) that dominated this decision's model queries, "" when the
	// decide path runs without a tier estimator. EstQueries counts the
	// model queries the decision consumed; EstCheap how many of them
	// were answered below simulation cost (analytic + cache). Like wall
	// times and cache ratios these are excluded from the fingerprint:
	// which tier answers depends on cache warmth, which two replays of
	// one scenario legitimately differ on.
	EstTier    string `json:"est_tier,omitempty"`
	EstQueries int64  `json:"est_queries,omitempty"`
	EstCheap   int64  `json:"est_cheap,omitempty"`
	// Fingerprint hashes the deterministic decision fields (seq, level,
	// timeout, rate, predicted RT, retuned, demoted) — wall times and
	// cache ratios are excluded, so two replays of one scenario produce
	// identical fingerprints record for record. It is materialized
	// lazily by Records(); the ledger stores the raw bits so the append
	// path stays allocation-free.
	Fingerprint string `json:"fingerprint"`
}

// fnv64aOffset and fnv64aPrime are hash/fnv's 64-bit constants, inlined
// so the fingerprint path needs no hasher allocation.
const (
	fnv64aOffset uint64 = 14695981039346656037
	fnv64aPrime  uint64 = 1099511628211
)

// fnvWord folds one little-endian 64-bit word into an FNV-64a hash.
func fnvWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnv64aPrime
		v >>= 8
	}
	return h
}

// fingerprintBits hashes the record's deterministic fields with
// FNV-64a, matching ChaosResult.Fingerprint's construction. The hex
// Fingerprint string is this value formatted %016x.
func (r DecisionRecord) fingerprintBits() uint64 {
	h := fnv64aOffset
	h = fnvWord(h, uint64(r.Seq))
	h = fnvWord(h, uint64(r.Level))
	h = fnvWord(h, math.Float64bits(r.Timeout))
	h = fnvWord(h, math.Float64bits(r.Rate))
	h = fnvWord(h, math.Float64bits(r.PredictedRT))
	flags := uint64(0)
	if r.Retuned {
		flags |= 1
	}
	if r.Demoted {
		flags |= 2
	}
	return fnvWord(h, flags)
}

// fingerprintHex renders fingerprint bits the way records and chains
// expose them.
func fingerprintHex(bits uint64) string {
	return fmt.Sprintf("%016x", bits)
}

// DecisionLedger collects DecisionRecords in decision order, keeps a
// rolling FNV-64a chain over every record's fingerprint, and supports
// snapshot/restore of that chain for crash safety: a ledger restored
// at sequence k and fed the same decisions k.. produces bit-identical
// fingerprints and chain to one that never crashed. The default ledger
// retains every record; a bounded ledger (NewBoundedDecisionLedger)
// retains only the most recent ones in a preallocated ring, so the
// serving hot path appends with zero steady-state allocations. It is
// safe for concurrent use.
type DecisionLedger struct {
	mu      sync.Mutex
	bound   int              // >0: ring capacity; 0: unbounded
	records []DecisionRecord // ring storage (bounded) or append-only
	fps     []uint64         // fingerprint bits, parallel to records
	head    int              // bounded: index of the oldest retained record
	count   int              // retained records
	seq     int              // next absolute sequence number
	base    int              // absolute sequence at construction/restore
	stamped int              // absolute sequence below which VirtualTime is stamped
	chain   uint64           // rolling FNV-64a over all fingerprints
}

// NewDecisionLedger returns an empty, unbounded ledger.
func NewDecisionLedger() *DecisionLedger { return &DecisionLedger{chain: fnv64aOffset} }

// NewBoundedDecisionLedger returns a ledger retaining only the most
// recent capacity records in a preallocated ring: Append never
// allocates, which is what lets a serving tenant keep full decision
// provenance on a zero-alloc decision path. The sequence numbers and
// the fingerprint chain still cover every decision ever appended.
func NewBoundedDecisionLedger(capacity int) *DecisionLedger {
	if capacity <= 0 {
		capacity = 1024
	}
	return &DecisionLedger{
		bound:   capacity,
		records: make([]DecisionRecord, capacity),
		fps:     make([]uint64, capacity),
		chain:   fnv64aOffset,
	}
}

// Append assigns the record's sequence number, folds its fingerprint
// into the chain and stores it. A nil ledger ignores the record, so
// controllers append unconditionally.
func (l *DecisionLedger) Append(r DecisionRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r.Seq = l.seq
	r.Fingerprint = ""
	fp := r.fingerprintBits()
	l.chain = fnvWord(l.chain, fp)
	switch {
	case l.bound > 0 && l.count == l.bound:
		l.records[l.head] = r
		l.fps[l.head] = fp
		l.head = (l.head + 1) % l.bound
	case l.bound > 0:
		i := (l.head + l.count) % l.bound
		l.records[i] = r
		l.fps[i] = fp
		l.count++
	default:
		l.records = append(l.records, r)
		l.fps = append(l.fps, fp)
		l.count++
	}
	l.seq++
}

// slot maps an absolute sequence number to its storage index. Callers
// hold l.mu and guarantee abs is retained.
func (l *DecisionLedger) slot(abs int) int {
	off := abs - (l.seq - l.count)
	if l.bound > 0 {
		return (l.head + off) % l.bound
	}
	return off
}

// StampVirtual sets VirtualTime on every retained record appended since
// the last stamp — the replay loop calls it once per control step,
// after the step's decision.
func (l *DecisionLedger) StampVirtual(now float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	lo := l.stamped
	if oldest := l.seq - l.count; lo < oldest {
		lo = oldest
	}
	for ; lo < l.seq; lo++ {
		l.records[l.slot(lo)].VirtualTime = now
	}
	l.stamped = l.seq
}

// Records returns a copy of the retained records in decision order,
// with each record's hex Fingerprint materialized. An unbounded ledger
// retains everything; a bounded one the most recent capacity records.
func (l *DecisionLedger) Records() []DecisionRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]DecisionRecord, l.count)
	for i := 0; i < l.count; i++ {
		j := l.slot(l.seq - l.count + i)
		out[i] = l.records[j]
		out[i].Fingerprint = fingerprintHex(l.fps[j])
	}
	return out
}

// Len returns how many decisions have been appended to this ledger
// (since construction or the last Restore) — not how many are
// retained, which a bounded ledger caps at its capacity.
func (l *DecisionLedger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq - l.base
}

// Chain returns the rolling FNV-64a chain over every fingerprint ever
// folded in (including those folded before a Restore), as %016x hex.
// Two ledgers fed identical decision sequences have identical chains —
// the bit-for-bit crash-safety assertion.
func (l *DecisionLedger) Chain() string {
	if l == nil {
		return fingerprintHex(fnv64aOffset)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return fingerprintHex(l.chain)
}

// LedgerState is the ledger's crash-safety surface: the next sequence
// number and the fingerprint chain, enough for a restored ledger to
// continue the sequence as if the process never died.
type LedgerState struct {
	Seq   int    `json:"seq"`
	Chain string `json:"chain"`
}

// State snapshots the ledger for persistence.
func (l *DecisionLedger) State() LedgerState {
	if l == nil {
		return LedgerState{Chain: fingerprintHex(fnv64aOffset)}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerState{Seq: l.seq, Chain: fingerprintHex(l.chain)}
}

// Restore resets the ledger to continue from a snapshot: retained
// records are dropped, the next Append gets sequence st.Seq, and the
// chain picks up where the snapshot left it.
func (l *DecisionLedger) Restore(st LedgerState) error {
	if l == nil {
		return fmt.Errorf("online: restoring a nil ledger")
	}
	chain, err := strconv.ParseUint(st.Chain, 16, 64)
	if err != nil {
		return fmt.Errorf("online: ledger chain %q: %w", st.Chain, err)
	}
	if st.Seq < 0 {
		return fmt.Errorf("online: ledger seq %d must be non-negative", st.Seq)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.bound == 0 {
		l.records = nil
		l.fps = nil
	}
	l.head = 0
	l.count = 0
	l.seq = st.Seq
	l.base = st.Seq
	l.stamped = st.Seq
	l.chain = chain
	return nil
}
