package online

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
)

// DecisionRecord is the provenance of one (re-)selection: which tier
// answered, what it predicted, what the search and selection cost, and
// the fallback/breaker state the decision was made under. Records are
// exported as JSONL (trace.SaveDecisions) and summarized into the
// mdsprint_decision_* metrics.
type DecisionRecord struct {
	// Seq numbers decisions in ledger order; VirtualTime is the replay's
	// virtual clock when the decision was stamped (RunChaos), 0 for live
	// decisions.
	Seq         int     `json:"seq"`
	VirtualTime float64 `json:"virtual_time"`
	// Rate is the arrival-rate estimate the decision answered; Timeout
	// is the chosen policy; PredictedRT is the serving tier's expected
	// mean response time at that timeout (0 when the tier is static and
	// has no model).
	Rate        float64 `json:"rate"`
	Timeout     float64 `json:"timeout"`
	PredictedRT float64 `json:"predicted_rt"`
	// Tier names the level that served ("hybrid", "noml", "static");
	// Level is its ordinal. Retuned reports whether this decision ran a
	// fresh annealing search; Demoted whether serving it demoted the
	// chain mid-decision.
	Tier    string `json:"tier"`
	Level   int    `json:"level"`
	Retuned bool   `json:"retuned"`
	Demoted bool   `json:"demoted"`
	// BreakerState is the primary-search breaker's position at decision
	// time ("none" when no breaker is configured).
	BreakerState string `json:"breaker_state"`
	// CacheHitRatio is the sweep engine's memoization hit rate at
	// decision time.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// SelectNanos is the wall time of the whole selection; SearchNanos
	// the portion spent in the annealing search (0 without a retune).
	SelectNanos int64 `json:"select_nanos"`
	SearchNanos int64 `json:"search_nanos"`
	// Fingerprint hashes the deterministic decision fields (seq, level,
	// timeout, rate, predicted RT, retuned, demoted) — wall times and
	// cache ratios are excluded, so two replays of one scenario produce
	// identical fingerprints record for record.
	Fingerprint string `json:"fingerprint"`
}

// fingerprint hashes the record's deterministic fields with FNV-64a,
// matching ChaosResult.Fingerprint's construction.
func (r DecisionRecord) fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		//lint:ignore errdrop fnv's Write is documented to never fail
		_, _ = h.Write(buf[:])
	}
	word(uint64(r.Seq))
	word(uint64(r.Level))
	word(math.Float64bits(r.Timeout))
	word(math.Float64bits(r.Rate))
	word(math.Float64bits(r.PredictedRT))
	flags := uint64(0)
	if r.Retuned {
		flags |= 1
	}
	if r.Demoted {
		flags |= 2
	}
	word(flags)
	return fmt.Sprintf("%016x", h.Sum64())
}

// DecisionLedger collects DecisionRecords in decision order. It is safe
// for concurrent use.
type DecisionLedger struct {
	mu      sync.Mutex
	records []DecisionRecord
	stamped int // records whose VirtualTime has been stamped
}

// NewDecisionLedger returns an empty ledger.
func NewDecisionLedger() *DecisionLedger { return &DecisionLedger{} }

// Append assigns the record's sequence number and fingerprint and
// stores it. A nil ledger ignores the record, so controllers append
// unconditionally.
func (l *DecisionLedger) Append(r DecisionRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r.Seq = len(l.records)
	r.Fingerprint = r.fingerprint()
	l.records = append(l.records, r)
}

// StampVirtual sets VirtualTime on every record appended since the last
// stamp — the replay loop calls it once per control step, after the
// step's decision.
func (l *DecisionLedger) StampVirtual(now float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for ; l.stamped < len(l.records); l.stamped++ {
		l.records[l.stamped].VirtualTime = now
	}
}

// Records returns a copy of the ledger in decision order.
func (l *DecisionLedger) Records() []DecisionRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]DecisionRecord(nil), l.records...)
}

// Len returns how many decisions have been recorded.
func (l *DecisionLedger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}
