package online

import (
	"fmt"
	"testing"

	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sweep"
	"mdsprint/internal/tier"
)

// scriptModel is a test model whose predictions are a scripted function
// of the scenario.
type scriptModel struct {
	name string
	fn   func(sc core.Scenario) (core.Prediction, error)
}

func (m scriptModel) Name() string { return m.name }

func (m scriptModel) Predict(_ *profiler.Dataset, sc core.Scenario) (core.Prediction, error) {
	return m.fn(sc)
}

// flatModel predicts a constant response time (a trivially healthy model
// when observations match it).
func flatModel(name string, rt float64) scriptModel {
	return scriptModel{name: name, fn: func(core.Scenario) (core.Prediction, error) {
		return core.Prediction{MeanRT: rt}, nil
	}}
}

// brokenModel always fails to predict.
func brokenModel(name string) scriptModel {
	return scriptModel{name: name, fn: func(core.Scenario) (core.Prediction, error) {
		return core.Prediction{}, fmt.Errorf("%s: model unavailable", name)
	}}
}

func fallbackConfig(primary, fallback core.Model, reg *obs.Registry) FallbackConfig {
	return FallbackConfig{
		Primary:    primary,
		Fallback:   fallback,
		Dataset:    &profiler.Dataset{ServiceRate: 1, MarginalRate: 1.8},
		MaxTimeout: 60,
		AnnealIter: 20,
		Seed:       3,
		Metrics:    reg,
	}
}

func TestNewFallbackControllerValidation(t *testing.T) {
	reg := obs.NewRegistry()
	healthy := flatModel("healthy", 10)
	if _, err := NewFallbackController(fallbackConfig(nil, healthy, reg)); err == nil {
		t.Error("nil primary accepted")
	}
	if _, err := NewFallbackController(fallbackConfig(healthy, nil, reg)); err == nil {
		t.Error("nil fallback accepted")
	}
	cfg := fallbackConfig(healthy, healthy, reg)
	cfg.Dataset = nil
	if _, err := NewFallbackController(cfg); err == nil {
		t.Error("nil dataset accepted")
	}
	fc, err := NewFallbackController(fallbackConfig(healthy, healthy, reg))
	if err != nil {
		t.Fatal(err)
	}
	if fc.Level() != LevelHybrid {
		t.Errorf("fresh controller at level %s, want hybrid", fc.Level())
	}
	if _, ok := fc.LastGoodTimeout(); ok {
		t.Error("fresh controller claims a banked timeout")
	}
}

func TestTimeoutDemotesOnSearchFailure(t *testing.T) {
	fc, err := NewFallbackController(fallbackConfig(
		brokenModel("primary"), flatModel("fallback", 8), obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	to, err := fc.Timeout(1.0)
	if err != nil {
		t.Fatalf("fallback tier did not rescue the decision: %v", err)
	}
	if to < 0 || to > 60 {
		t.Errorf("timeout %v outside [0, 60]", to)
	}
	if fc.Level() != LevelNoML {
		t.Errorf("level %s after a primary search failure, want noml", fc.Level())
	}
	if d, _ := fc.Counts(); d != 1 {
		t.Errorf("demotions = %d, want 1", d)
	}
}

func TestTimeoutBottomsOutWhenAllTiersFail(t *testing.T) {
	fc, err := NewFallbackController(fallbackConfig(
		brokenModel("primary"), brokenModel("fallback"), obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Timeout(1.0); err == nil {
		t.Fatal("both tiers broken and nothing banked, yet a timeout was produced")
	}
	if fc.Level() != LevelStatic {
		t.Errorf("level %s after the whole chain failed, want static", fc.Level())
	}
}

func TestStaticTierServesBankedTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	fc, err := NewFallbackController(fallbackConfig(
		flatModel("primary", 10), flatModel("fallback", 12), reg))
	if err != nil {
		t.Fatal(err)
	}
	to, err := fc.Timeout(1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly-tracking observations bank the decision as
	// last-known-good once the watchdog has enough evidence.
	for i := 0; i < 8; i++ {
		fc.Observe(1.0, 10)
	}
	banked, ok := fc.LastGoodTimeout()
	if !ok {
		t.Fatal("healthy evidence did not bank a last-known-good timeout")
	}
	if banked < to || banked > to {
		t.Errorf("banked %v, want the decision in force %v", banked, to)
	}
	fc.demote()
	fc.demote()
	if fc.Level() != LevelStatic {
		t.Fatalf("level %s, want static", fc.Level())
	}
	got, err := fc.Timeout(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got < banked || got > banked {
		t.Errorf("static tier served %v, want the banked %v", got, banked)
	}
	if v := reg.Counter("mdsprint_online_static_decisions_total", "").Value(); v < 1 {
		t.Errorf("static-decisions counter %v, want >= 1", v)
	}
	// The guards hold at the chain's ends.
	fc.demote()
	if fc.Level() != LevelStatic {
		t.Error("demote below static moved the level")
	}
	fresh, _ := NewFallbackController(fallbackConfig(flatModel("p", 1), flatModel("f", 1), reg))
	fresh.promote()
	if fresh.Level() != LevelHybrid {
		t.Error("promote above hybrid moved the level")
	}
}

func TestObservePredictionFailuresDemote(t *testing.T) {
	reg := obs.NewRegistry()
	failing := false
	primary := scriptModel{name: "flaky", fn: func(core.Scenario) (core.Prediction, error) {
		if failing {
			return core.Prediction{}, fmt.Errorf("flaky: poisoned")
		}
		return core.Prediction{MeanRT: 10}, nil
	}}
	fc, err := NewFallbackController(fallbackConfig(primary, flatModel("fallback", 10), reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Timeout(1.0); err != nil {
		t.Fatal(err)
	}
	failing = true
	for i := 0; i < 20 && fc.Level() == LevelHybrid; i++ {
		fc.Observe(1.0, 10)
	}
	if fc.Level() == LevelHybrid {
		t.Fatal("sustained prediction failures never demoted the controller")
	}
	if v := reg.Counter("mdsprint_online_predict_failures_total", "").Value(); v < 1 {
		t.Errorf("predict-failures counter %v, want >= 1", v)
	}
}

func TestControllerBreakerSuppressesRetunes(t *testing.T) {
	br := fault.NewBreaker(fault.BreakerConfig{
		FailureThreshold: 1, CooldownCalls: 1, HalfOpenSuccesses: 1, Metrics: obs.NewRegistry(),
	})
	failing := true
	model := scriptModel{name: "flaky", fn: func(sc core.Scenario) (core.Prediction, error) {
		if failing {
			return core.Prediction{}, fmt.Errorf("flaky: down")
		}
		return core.Prediction{MeanRT: 5 + sc.Cond.Timeout*0.01}, nil
	}}
	c := &Controller{
		Model:   model,
		Dataset: &profiler.Dataset{ServiceRate: 1, MarginalRate: 1.8},
		Base:    profiler.Condition{}, MaxTimeout: 60, AnnealIter: 20, Seed: 7,
		Metrics: obs.NewRegistry(), Breaker: br,
	}
	if _, err := c.Timeout(1.0); err == nil {
		t.Fatal("failing model retuned successfully")
	}
	if br.State() != fault.Open {
		t.Fatalf("breaker %s after a search failure, want open", br.State())
	}
	// While open with no prior decision there is nothing safe to ride.
	if _, err := c.Timeout(1.0); err == nil {
		t.Fatal("open breaker with no decision produced a timeout")
	}
	// Half-open probe with a recovered model closes the breaker and
	// finally produces a decision.
	failing = false
	to, err := c.Timeout(1.0)
	if err != nil {
		t.Fatalf("half-open probe with a healthy model failed: %v", err)
	}
	if br.State() != fault.Closed {
		t.Fatalf("breaker %s after a healthy probe, want closed", br.State())
	}
	// Trip it again: with a decision in force, an open breaker rides the
	// current timeout instead of erroring.
	br.Failure()
	failing = true
	got, err := c.Timeout(5.0) // large drift would normally retune
	if err != nil {
		t.Fatalf("open breaker with a decision errored: %v", err)
	}
	if got < to || got > to {
		t.Errorf("open breaker changed the decision: %v -> %v", to, got)
	}
}

func TestChaosModelAndViolations(t *testing.T) {
	b := 1.0
	m := chaosModel{name: "chaos-x", mu: 1, gain: 0.8, sweet: 20, bias: &b}
	if m.Name() != "chaos-x" {
		t.Errorf("Name() = %q", m.Name())
	}
	res := &ChaosResult{MaxLevel: LevelStatic, EndLevel: LevelStatic}
	sc := fault.Scenario{Expect: fault.Expect{MaxLevel: fault.LevelHybridIdx, EndLevel: fault.LevelHybridIdx}}
	if v := res.Violations(sc); len(v) != 2 {
		t.Errorf("got %d violations, want 2: %v", len(v), v)
	}
}

// TestDecisionRecordsEstimatorTier wires a staged tier estimator into
// the decide path and checks each DecisionRecord carries the estimator
// provenance — which ladder tier dominated the decision's model queries
// and how many were answered below simulation cost — while the
// fingerprint chain stays invariant to it (tier choice depends on cache
// warmth, which replays legitimately differ on).
func TestDecisionRecordsEstimatorTier(t *testing.T) {
	reg := obs.NewRegistry()
	est := tier.Must(tier.Spec{}, tier.Options{
		Engine:  sweep.New(sweep.Options{Metrics: obs.NewRegistry()}),
		Metrics: obs.NewRegistry(),
	})
	// The primary model queries the estimator with an analytic-eligible
	// M/M/1 task, the way a tiered core model would.
	primary := scriptModel{name: "tiered", fn: func(core.Scenario) (core.Prediction, error) {
		mean, _, err := est.MeanRT(sweep.Task{Params: queuesim.Params{
			ArrivalRate: 0.5, Service: dist.NewExponential(1), ServiceRate: 1,
			Timeout: -1, NumQueries: 4000, Seed: 9,
		}, Reps: 2})
		return core.Prediction{MeanRT: mean}, err
	}}
	led := NewDecisionLedger()
	cfg := fallbackConfig(primary, flatModel("fallback", 10), reg)
	cfg.Ledger = led
	cfg.Tiers = est
	fc, err := NewFallbackController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Timeout(0.5); err != nil {
		t.Fatal(err)
	}
	recs := led.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.EstTier != tier.TierAnalytic.String() {
		t.Fatalf("EstTier = %q, want %q", r.EstTier, tier.TierAnalytic)
	}
	if r.EstQueries == 0 || r.EstCheap == 0 || r.EstCheap > r.EstQueries {
		t.Fatalf("EstQueries=%d EstCheap=%d: want both positive with cheap <= queries", r.EstQueries, r.EstCheap)
	}

	// Fingerprint invariance: the same record with the estimator fields
	// zeroed hashes identically — provenance is observability, not
	// replay identity.
	scrubbed := r
	scrubbed.EstTier, scrubbed.EstQueries, scrubbed.EstCheap = "", 0, 0
	if r.fingerprintBits() != scrubbed.fingerprintBits() {
		t.Fatal("estimator provenance leaked into the decision fingerprint")
	}
}
