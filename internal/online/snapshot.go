package online

import (
	"fmt"
	"math"
)

// This file is the crash-safety surface of the degradation plane: every
// piece of controller state that decisions depend on can be exported as
// a plain JSON-serializable snapshot and restored into a freshly built
// controller, such that the restored controller continues making
// bit-identical decisions to one that never stopped. The serving daemon
// persists these snapshots periodically; the chaos soak asserts the
// continuation property across a kill-and-restart.

// ControllerState is one tier Controller's decision state: the cached
// decision and the retune count (which seeds the next annealing search,
// so it must survive a restart for the search sequence to continue
// deterministically).
type ControllerState struct {
	TunedRate      float64 `json:"tuned_rate"`
	CurrentTimeout float64 `json:"current_timeout"`
	PredictedRT    float64 `json:"predicted_rt"`
	HaveDecision   bool    `json:"have_decision"`
	Retunes        int     `json:"retunes"`
}

// state snapshots the controller's mutable decision state.
func (c *Controller) state() ControllerState {
	return ControllerState{
		TunedRate:      c.tunedRate,
		CurrentTimeout: c.currentTO,
		PredictedRT:    c.lastPredRT,
		HaveDecision:   c.haveDecision,
		Retunes:        c.retunes,
	}
}

// restore overwrites the controller's mutable decision state.
func (c *Controller) restore(st ControllerState) error {
	if st.Retunes < 0 {
		return fmt.Errorf("online: controller retunes %d must be non-negative", st.Retunes)
	}
	c.tunedRate = st.TunedRate
	c.currentTO = st.CurrentTimeout
	c.lastPredRT = st.PredictedRT
	c.haveDecision = st.HaveDecision
	c.retunes = st.Retunes
	return nil
}

// WatchdogState is a health watchdog's evidence window: the retained
// residuals in observation order (oldest first) and the current healthy
// streak.
type WatchdogState struct {
	Residuals []float64 `json:"residuals,omitempty"`
	Streak    int       `json:"streak"`
}

// State snapshots the watchdog's evidence window.
func (w *Watchdog) State() WatchdogState {
	st := WatchdogState{Streak: w.streak}
	if w.filled == 0 {
		return st
	}
	st.Residuals = make([]float64, 0, w.filled)
	start := 0
	if w.filled == len(w.ring) {
		start = w.next
	}
	for i := 0; i < w.filled; i++ {
		st.Residuals = append(st.Residuals, w.ring[(start+i)%len(w.ring)])
	}
	return st
}

// Restore replays a snapshot's residuals into an empty window. A
// snapshot wider than this watchdog's window keeps only the most recent
// residuals; the streak is taken from the snapshot, not recomputed, so
// promote hysteresis continues where it left off.
func (w *Watchdog) Restore(st WatchdogState) error {
	if st.Streak < 0 {
		return fmt.Errorf("online: watchdog streak %d must be non-negative", st.Streak)
	}
	for _, r := range st.Residuals {
		if math.IsNaN(r) || r < 0 {
			return fmt.Errorf("online: watchdog residual %v must be a non-negative number", r)
		}
	}
	w.Reset()
	res := st.Residuals
	if len(res) > len(w.ring) {
		res = res[len(res)-len(w.ring):]
	}
	for _, r := range res {
		w.ring[w.next] = r
		w.next = (w.next + 1) % len(w.ring)
		w.filled++
	}
	w.streak = st.Streak
	return nil
}

// FallbackState is the full degradation-plane snapshot: the level in
// force, both tier controllers' cached decisions, the last decision and
// the banked last-known-good timeout, the demotion/promotion counters,
// and both watchdogs' evidence windows.
type FallbackState struct {
	Level    int             `json:"level"`
	Primary  ControllerState `json:"primary"`
	Fallback ControllerState `json:"fallback"`

	LastTimeout float64 `json:"last_timeout"`
	LastRate    float64 `json:"last_rate"`
	HaveTimeout bool    `json:"have_timeout"`

	LastGoodTimeout float64 `json:"last_good_timeout"`
	HaveGood        bool    `json:"have_good"`

	Demotions  int `json:"demotions"`
	Promotions int `json:"promotions"`

	Active WatchdogState `json:"active"`
	Probe  WatchdogState `json:"probe"`
}

// State snapshots the controller for persistence.
func (f *FallbackController) State() FallbackState {
	return FallbackState{
		Level:           int(f.level),
		Primary:         f.primary.state(),
		Fallback:        f.fallback.state(),
		LastTimeout:     f.lastTO,
		LastRate:        f.lastRate,
		HaveTimeout:     f.haveTO,
		LastGoodTimeout: f.lastGoodTO,
		HaveGood:        f.haveGood,
		Demotions:       f.demotions,
		Promotions:      f.promotions,
		Active:          f.active.State(),
		Probe:           f.probe.State(),
	}
}

// Restore overwrites the controller's mutable state from a snapshot. On
// success the restored controller's next decision is bit-identical to
// what the snapshotted controller would have decided; on failure the
// controller is unchanged.
func (f *FallbackController) Restore(st FallbackState) error {
	if st.Level < int(LevelHybrid) || st.Level > int(LevelStatic) {
		return fmt.Errorf("online: level %d outside the fallback chain", st.Level)
	}
	if st.Demotions < 0 || st.Promotions < 0 {
		return fmt.Errorf("online: demotions %d / promotions %d must be non-negative",
			st.Demotions, st.Promotions)
	}
	// Validate both watchdog windows into scratch watchdogs first so a
	// bad snapshot cannot leave the controller half-restored.
	active := NewWatchdog(f.cfg.Watchdog)
	probe := NewWatchdog(f.cfg.Watchdog)
	if err := active.Restore(st.Active); err != nil {
		return err
	}
	if err := probe.Restore(st.Probe); err != nil {
		return err
	}
	if err := f.primary.restore(st.Primary); err != nil {
		return err
	}
	if err := f.fallback.restore(st.Fallback); err != nil {
		return err
	}
	f.level = Level(st.Level)
	f.lastTO = st.LastTimeout
	f.lastRate = st.LastRate
	f.haveTO = st.HaveTimeout
	f.lastGoodTO = st.LastGoodTimeout
	f.haveGood = st.HaveGood
	f.demotions = st.Demotions
	f.promotions = st.Promotions
	f.active = active
	f.probe = probe
	f.m.level.Set(float64(f.level))
	return nil
}

// Demote forces the controller one level down the chain — the serving
// daemon's bulkhead calls this when a tenant's decision path panics, so
// a model that crashes (rather than erring) still costs it trust.
func (f *FallbackController) Demote() { f.demote() }
