package online

import (
	"math"
	"testing"
)

func TestWatchdogDefaultsClamp(t *testing.T) {
	cfg := WatchdogConfig{Window: 4, MinSamples: 9}.withDefaults()
	if cfg.MinSamples != 4 {
		t.Fatalf("MinSamples %d, want clamped to Window 4", cfg.MinSamples)
	}
	d := WatchdogConfig{}.withDefaults()
	if d.Window != 12 || d.MinSamples != 6 || d.PromoteStreak != 8 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	if !(d.PromoteThreshold < d.DemoteThreshold) {
		t.Fatalf("hysteresis band inverted: promote %v >= demote %v", d.PromoteThreshold, d.DemoteThreshold)
	}
}

func TestWatchdogDemotesOnSustainedResidual(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 6, MinSamples: 4})
	// Healthy observations first: no verdict.
	for i := 0; i < 6; i++ {
		w.Observe(1.0, 1.0)
	}
	if w.ShouldDemote() {
		t.Fatal("demoted on perfect predictions")
	}
	// Sustained 60% error flips the verdict once the window turns over.
	for i := 0; i < 6; i++ {
		w.Observe(1.6, 1.0)
	}
	if !w.ShouldDemote() {
		t.Fatalf("no demotion at mean residual %v", w.MeanResidual())
	}
}

func TestWatchdogNoVerdictBeforeMinSamples(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 8, MinSamples: 5})
	for i := 0; i < 4; i++ {
		w.ObserveFailure()
	}
	if w.ShouldDemote() {
		t.Fatal("verdict rendered before MinSamples")
	}
	w.ObserveFailure()
	if !w.ShouldDemote() {
		t.Fatal("no demotion after MinSamples failures")
	}
}

func TestWatchdogPromotionNeedsStreak(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 8, MinSamples: 4, PromoteStreak: 6})
	// Healthy window but the streak keeps breaking: no promotion.
	for i := 0; i < 12; i++ {
		if i%4 == 3 {
			w.Observe(1.3, 1.0) // inside the hysteresis band: breaks streak
		} else {
			w.Observe(1.0, 1.0)
		}
	}
	if w.ShouldPromote() {
		t.Fatal("promoted without an unbroken streak")
	}
	for i := 0; i < 6; i++ {
		w.Observe(1.0, 1.0)
	}
	if !w.ShouldPromote() {
		t.Fatal("no promotion after a clean streak")
	}
}

func TestWatchdogHostileObservations(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 4, MinSamples: 2})
	w.Observe(math.NaN(), 1)
	w.Observe(1, math.NaN())
	w.Observe(math.Inf(1), 1)
	w.Observe(1, 0)
	w.Observe(1, -3)
	if !w.ShouldDemote() {
		t.Fatalf("hostile observations must count as failures (mean %v)", w.MeanResidual())
	}
	if w.ShouldPromote() {
		t.Fatal("promoted on failures")
	}
}

func TestWatchdogReset(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 4, MinSamples: 2})
	w.ObserveFailure()
	w.ObserveFailure()
	if !w.ShouldDemote() {
		t.Fatal("setup: expected demotion verdict")
	}
	w.Reset()
	if w.Samples() != 0 || w.ShouldDemote() {
		t.Fatal("reset did not clear the evidence window")
	}
	if !math.IsNaN(w.MeanResidual()) {
		t.Fatalf("mean residual after reset %v, want NaN", w.MeanResidual())
	}
}

func TestLevelString(t *testing.T) {
	for _, tc := range []struct {
		lvl  Level
		want string
	}{
		{LevelHybrid, "hybrid"}, {LevelNoML, "noml"}, {LevelStatic, "static"}, {Level(99), "static"},
	} {
		lvl, want := tc.lvl, tc.want
		if got := lvl.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(lvl), got, want)
		}
	}
}
