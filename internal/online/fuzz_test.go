package online

import (
	"math"
	"testing"
)

// FuzzRateEstimator throws hostile constructor arguments and arbitrary
// timestamp streams (regressions, NaNs, infinities, denormals) at the
// estimator. The invariants: construction either errors or yields a
// working estimator, Observe never panics, and Rate is always finite
// and non-negative whatever clock the caller reports.
func FuzzRateEstimator(f *testing.F) {
	f.Add(60.0, 0.3, 1.0, 2.0, 3.0, 100.0)
	f.Add(1e-9, 0.999, -1.0, math.Inf(1), math.NaN(), 0.0)
	f.Add(3600.0, 0.0, 5.0, 4.0, 5.0, math.Inf(-1))
	f.Add(math.NaN(), -1.0, 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, window, alpha, t1, t2, t3, now float64) {
		e, err := NewRateEstimator(window, alpha)
		if err != nil {
			if e != nil {
				t.Fatal("error with non-nil estimator")
			}
			return
		}
		e.Observe(t1)
		e.Observe(t2)
		e.Observe(t3)
		got := e.Rate(now)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Fatalf("Rate(%v) = %v after Observe(%v, %v, %v); want finite and non-negative",
				now, got, t1, t2, t3)
		}
		if n := e.Observations(); n < 0 || n > 3 {
			t.Fatalf("Observations() = %d after 3 observes", n)
		}
	})
}
