package online

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
)

// ChaosOptions tunes a chaos replay. The zero value is a complete,
// sensibly tuned configuration.
type ChaosOptions struct {
	// ServiceRate is the synthetic queue's sustained service rate mu in
	// queries/second (default 1). BaseRate is the scenario's nominal
	// arrival rate (default 0.7), scaled per phase by RateFactor.
	ServiceRate float64
	BaseRate    float64
	// SprintGain and SweetTimeout shape the ground-truth response-time
	// surface: sprinting boosts the effective service rate by up to
	// SprintGain, peaking when the timeout sits at SweetTimeout seconds
	// (defaults 0.8 and 20).
	SprintGain   float64
	SweetTimeout float64
	// MaxTimeout bounds the timeout search (default 60 s).
	MaxTimeout float64
	// StepSeconds is the virtual-time length of one control step
	// (default 4 s).
	StepSeconds float64
	// AnnealIter sizes each retune search (default 30).
	AnnealIter int
	// EstimatorWindow and EstimatorAlpha configure the arrival-rate
	// estimator (defaults 60 s and 0.3).
	EstimatorWindow float64
	EstimatorAlpha  float64
	// RetuneThreshold is the relative rate drift that triggers a retune
	// (default 0.15).
	RetuneThreshold float64
	// Watchdog tunes the degradation watchdogs (zero values take the
	// watchdog defaults).
	Watchdog WatchdogConfig
	// Metrics receives controller and injector metrics; nil records
	// into obs.Default().
	Metrics *obs.Registry
	// Ledger, when set, receives every selection's DecisionRecord,
	// stamped with the replay's virtual time. May be nil.
	Ledger *DecisionLedger
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.ServiceRate <= 0 {
		o.ServiceRate = 1
	}
	if o.BaseRate <= 0 {
		o.BaseRate = 0.7 * o.ServiceRate
	}
	if o.SprintGain <= 0 {
		o.SprintGain = 0.8
	}
	if o.SweetTimeout <= 0 {
		o.SweetTimeout = 20
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 60
	}
	if o.StepSeconds <= 0 {
		o.StepSeconds = 4
	}
	if o.AnnealIter <= 0 {
		o.AnnealIter = 30
	}
	if o.EstimatorWindow <= 0 {
		o.EstimatorWindow = 60
	}
	if o.EstimatorAlpha <= 0 {
		o.EstimatorAlpha = 0.3
	}
	return o
}

// SurfaceRT is the ground-truth response-time surface of the synthetic
// queue used by the chaos replays and the serving daemon's analytic
// tenant models: M/M/1-shaped, with a timeout-dependent sprint boost
// on the effective service rate that peaks at the sweet spot (x·e^(1−x)
// is 1 at x=1). Saturated arrivals clamp to the heavy-traffic response
// time so the surface stays finite under burst storms.
func SurfaceRT(mu, gain, sweet, lambda, to float64) float64 {
	x := to / sweet
	if x < 0 {
		x = 0
	}
	muEff := mu * (1 + gain*x*math.Exp(1-x))
	if lambda >= 0.95*muEff {
		return 20 / muEff
	}
	return 1 / (muEff - lambda)
}

// chaosModel is an analytic stand-in for a trained model: it predicts
// the ground-truth surface scaled by a phase-scripted bias (1, or 0,
// means honest; far from 1 models a diverged fit). The shared pointers
// let the replay re-script the bias — or an outright outage — between
// phases.
type chaosModel struct {
	name            string
	mu, gain, sweet float64
	bias            *float64
	fail            *bool
}

// Name implements core.Model.
func (m chaosModel) Name() string { return m.name }

// Predict implements core.Model on the synthetic surface.
func (m chaosModel) Predict(_ *profiler.Dataset, sc core.Scenario) (core.Prediction, error) {
	if m.fail != nil && *m.fail {
		return core.Prediction{}, fmt.Errorf("online: chaos model %s scripted outage", m.name)
	}
	b := *m.bias
	if b <= 0 {
		b = 1
	}
	rt := SurfaceRT(m.mu, m.gain, m.sweet, sc.ArrivalRate, sc.Cond.Timeout) * b
	return core.Prediction{MeanRT: rt}, nil
}

// ChaosStep is one control step of a replay timeline.
type ChaosStep struct {
	Step          int
	Phase         string
	Level         Level
	Timeout       float64
	EstimatedRate float64
	RealizedRate  float64
	ObservedRT    float64
}

// ChaosResult is a completed replay: the full decision timeline plus
// the degradation summary the scenario's expectations are checked
// against.
type ChaosResult struct {
	Scenario   string
	Seed       uint64
	Steps      []ChaosStep
	MaxLevel   Level
	EndLevel   Level
	Demotions  int
	Promotions int
}

// Fingerprint hashes the controller's decision timeline (level, timeout,
// rate estimate and observation per step). Two replays of one scenario
// must produce identical fingerprints — the determinism contract the
// chaos tests assert.
func (r *ChaosResult) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		//lint:ignore errdrop fnv's Write is documented to never fail
		_, _ = h.Write(buf[:])
	}
	for _, s := range r.Steps {
		word(uint64(s.Level))
		word(math.Float64bits(s.Timeout))
		word(math.Float64bits(s.EstimatedRate))
		word(math.Float64bits(s.ObservedRT))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Violations checks the replay against the scenario's expectations and
// returns a description of each breach (empty means the controller
// behaved).
func (r *ChaosResult) Violations(sc fault.Scenario) []string {
	var out []string
	if int(r.MaxLevel) != sc.Expect.MaxLevel {
		out = append(out, fmt.Sprintf("max degradation level %s (%d), expected %d",
			r.MaxLevel, int(r.MaxLevel), sc.Expect.MaxLevel))
	}
	if int(r.EndLevel) != sc.Expect.EndLevel {
		out = append(out, fmt.Sprintf("ended at level %s (%d), expected %d",
			r.EndLevel, int(r.EndLevel), sc.Expect.EndLevel))
	}
	return out
}

// RunChaos replays a fault scenario against a FallbackController in
// virtual time: a synthetic Poisson arrival stream (perturbed by the
// scenario's burst injection) feeds the rate estimator, the controller
// picks timeouts, and observed response times come from the ground-truth
// surface under scripted model bias and multiplicative noise. The whole
// replay is a deterministic function of the scenario seed.
func RunChaos(sc fault.Scenario, opt ChaosOptions) (*ChaosResult, error) {
	o := opt.withDefaults()
	if len(sc.Phases) == 0 {
		return nil, fmt.Errorf("online: scenario %q has no phases", sc.Name)
	}

	mu := o.ServiceRate
	primaryBias, fallbackBias := 1.0, 1.0
	primaryFail := false
	primary := chaosModel{name: "chaos-primary", mu: mu, gain: o.SprintGain, sweet: o.SweetTimeout, bias: &primaryBias, fail: &primaryFail}
	fallbck := chaosModel{name: "chaos-fallback", mu: mu, gain: o.SprintGain, sweet: o.SweetTimeout, bias: &fallbackBias}

	// The retune breaker trips on the first failed search: a scripted
	// outage makes every primary prediction error, so the breaker opens
	// immediately and the chain's demote-and-retry takes over. Healthy
	// scenarios never fail a search, so a closed breaker is
	// behaviour-neutral and existing fingerprints are unchanged.
	fc, err := NewFallbackController(FallbackConfig{
		Primary:         primary,
		Fallback:        fallbck,
		Dataset:         &profiler.Dataset{ServiceRate: mu, MarginalRate: mu * (1 + o.SprintGain)},
		MaxTimeout:      o.MaxTimeout,
		AnnealIter:      o.AnnealIter,
		Seed:            sc.Seed,
		RetuneThreshold: o.RetuneThreshold,
		Watchdog:        o.Watchdog,
		Metrics:         o.Metrics,
		Breaker: fault.NewBreaker(fault.BreakerConfig{
			Name:             "chaos-retune",
			FailureThreshold: 1,
			Metrics:          o.Metrics,
		}),
		Ledger: o.Ledger,
	})
	if err != nil {
		return nil, err
	}

	est, err := NewRateEstimator(o.EstimatorWindow, o.EstimatorAlpha)
	if err != nil {
		return nil, err
	}
	// realized tracks the post-perturbation arrival rate with no
	// smoothing: the "true" load observations are generated under.
	realized, err := NewRateEstimator(o.EstimatorWindow, 0)
	if err != nil {
		return nil, err
	}

	root := dist.NewRNG(sc.Seed ^ 0xc4a05c7a11e57a1e)
	arrivalRNG := root.Split()
	noiseRNG := root.Split()

	res := &ChaosResult{Scenario: sc.Name, Seed: sc.Seed}
	now := 0.0
	nextArrival := math.Inf(1) // armed per phase below
	step := 0
	for pi, ph := range sc.Phases {
		rateFactor := ph.RateFactor
		if rateFactor <= 0 {
			rateFactor = 1
		}
		lambda := o.BaseRate * rateFactor
		primaryBias = ph.PrimaryBias
		fallbackBias = ph.FallbackBias
		primaryFail = ph.PrimaryFail
		noiseCV := ph.NoiseCV
		if noiseCV <= 0 {
			noiseCV = 0.05
		}
		perturb := fault.NewArrivalFaults(fault.ArrivalFaultConfig{
			Seed:      sc.Seed + uint64(pi)*0x9e3779b97f4a7c15,
			BurstProb: ph.BurstProb,
			BurstSize: ph.BurstSize,
			Metrics:   o.Metrics,
		})
		nextArrival = now + arrivalRNG.ExpFloat64()/lambda
		for s := 0; s < ph.Steps; s++ {
			stepEnd := now + o.StepSeconds
			var batch []float64
			for nextArrival < stepEnd {
				batch = append(batch, nextArrival)
				nextArrival += arrivalRNG.ExpFloat64() / lambda
			}
			for _, t := range perturb.Perturb(batch) {
				est.Observe(t)
				realized.Observe(t)
			}
			now = stepEnd

			rate := est.Rate(now)
			if rate <= 0 {
				rate = lambda // estimator not warmed up yet
			}
			to, err := fc.Timeout(rate)
			if err != nil {
				return nil, fmt.Errorf("online: chaos %q step %d: %w", sc.Name, step, err)
			}
			real := realized.Rate(now)
			if real <= 0 {
				real = lambda
			}
			truth := SurfaceRT(mu, o.SprintGain, o.SweetTimeout, real, to)
			sigma := noiseCV
			observed := truth * math.Exp(sigma*noiseRNG.NormFloat64()-sigma*sigma/2)
			// Health verdicts start after the estimator's first full
			// window: before that, estimate-vs-realized mismatch is a
			// warmup artifact, not evidence about the model.
			if now >= o.EstimatorWindow {
				fc.Observe(rate, observed)
			}

			lvl := fc.Level()
			if lvl > res.MaxLevel {
				res.MaxLevel = lvl
			}
			res.Steps = append(res.Steps, ChaosStep{
				Step:          step,
				Phase:         ph.Name,
				Level:         lvl,
				Timeout:       to,
				EstimatedRate: rate,
				RealizedRate:  real,
				ObservedRT:    observed,
			})
			o.Ledger.StampVirtual(now)
			step++
		}
	}
	res.EndLevel = fc.Level()
	res.Demotions, res.Promotions = fc.Counts()
	return res, nil
}
