package online

import "math"

// Level is a rung of the graceful-degradation chain. Lower is better:
// the controller climbs down one level at a time as model health decays
// and back up one level at a time as it recovers.
type Level int

// The fallback chain of FallbackController, in degradation order.
const (
	// LevelHybrid trusts the primary (forest → mu_e → queuesim) model.
	LevelHybrid Level = iota
	// LevelNoML trusts the prediction-free fallback model (mu_m →
	// queuesim), SkipPredict's "cheaper prediction-free policy".
	LevelNoML
	// LevelStatic trusts no model: the last-known-good timeout holds.
	LevelStatic
)

// String names the level for logs and timelines.
func (l Level) String() string {
	switch l {
	case LevelHybrid:
		return "hybrid"
	case LevelNoML:
		return "noml"
	default:
		return "static"
	}
}

// WatchdogConfig tunes a model-health Watchdog.
type WatchdogConfig struct {
	// Window is how many recent residuals the sliding window retains
	// (default 12).
	Window int
	// MinSamples is how many residuals must be present before the
	// watchdog renders any verdict (default 6).
	MinSamples int
	// DemoteThreshold is the mean relative residual above which the
	// model is unhealthy (default 0.35).
	DemoteThreshold float64
	// PromoteThreshold is the mean relative residual below which the
	// model counts as healthy again (default 0.15). Keeping it well
	// under DemoteThreshold is the hysteresis band: a model hovering
	// between the two neither demotes nor promotes.
	PromoteThreshold float64
	// PromoteStreak is how many consecutive healthy observations a
	// recovering model must string together before being re-trusted
	// (default 8) — gradual re-trust, not a single lucky sample.
	PromoteStreak int
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Window <= 0 {
		c.Window = 12
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 6
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.DemoteThreshold <= 0 {
		c.DemoteThreshold = 0.35
	}
	if c.PromoteThreshold <= 0 {
		c.PromoteThreshold = 0.15
	}
	if c.PromoteStreak <= 0 {
		c.PromoteStreak = 8
	}
	return c
}

// failResidual is the residual recorded when the model cannot produce a
// prediction at all: large enough to dominate any window mean, finite
// so the mean stays well-behaved.
const failResidual = 1e6

// Watchdog tracks prediction-vs-observed response-time residuals in a
// sliding window and renders demotion/promotion verdicts with
// hysteresis. It is not safe for concurrent use.
type Watchdog struct {
	cfg    WatchdogConfig
	ring   []float64
	next   int
	filled int
	streak int // consecutive healthy observations
}

// NewWatchdog returns a watchdog with the given config (zero values
// take the documented defaults).
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	cfg = cfg.withDefaults()
	return &Watchdog{cfg: cfg, ring: make([]float64, cfg.Window)}
}

// Observe records one |predicted−observed|/observed relative residual.
// Non-finite or non-positive observations are recorded as model
// failures (the model was consulted and the comparison is impossible).
func (w *Watchdog) Observe(predicted, observed float64) {
	if math.IsNaN(predicted) || math.IsInf(predicted, 0) ||
		math.IsNaN(observed) || observed <= 0 || math.IsInf(observed, 0) {
		w.ObserveFailure()
		return
	}
	w.push(math.Abs(predicted-observed) / observed)
}

// ObserveFailure records a prediction attempt that produced no usable
// prediction — the strongest possible evidence of ill health.
func (w *Watchdog) ObserveFailure() {
	w.push(failResidual)
}

func (w *Watchdog) push(residual float64) {
	w.ring[w.next] = residual
	w.next = (w.next + 1) % len(w.ring)
	if w.filled < len(w.ring) {
		w.filled++
	}
	if residual <= w.cfg.PromoteThreshold {
		w.streak++
	} else {
		w.streak = 0
	}
}

// MeanResidual returns the window's mean relative residual, or NaN
// before any observation.
func (w *Watchdog) MeanResidual() float64 {
	if w.filled == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := 0; i < w.filled; i++ {
		sum += w.ring[i]
	}
	return sum / float64(w.filled)
}

// Samples returns how many residuals the window currently holds.
func (w *Watchdog) Samples() int { return w.filled }

// ShouldDemote reports whether the window holds enough evidence of ill
// health to stop trusting the model.
func (w *Watchdog) ShouldDemote() bool {
	return w.filled >= w.cfg.MinSamples && w.MeanResidual() > w.cfg.DemoteThreshold
}

// ShouldPromote reports whether the model has been healthy long enough
// to be re-trusted: enough samples, a healthy window mean, and an
// unbroken streak of healthy observations (hysteresis).
func (w *Watchdog) ShouldPromote() bool {
	return w.filled >= w.cfg.MinSamples &&
		w.MeanResidual() < w.cfg.PromoteThreshold &&
		w.streak >= w.cfg.PromoteStreak
}

// Reset clears the window — called when the controller changes level,
// so each verdict is rendered on evidence from the current regime.
func (w *Watchdog) Reset() {
	w.next = 0
	w.filled = 0
	w.streak = 0
}
