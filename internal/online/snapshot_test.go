package online

import (
	"math"
	"testing"

	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
)

// snapshotHarness builds a FallbackController on the synthetic chaos
// surface with scriptable primary bias/outage, plus its breaker and
// ledger, for continuation tests.
type snapshotHarness struct {
	fc      *FallbackController
	breaker *fault.Breaker
	ledger  *DecisionLedger
	bias    *float64
	fail    *bool
}

func newSnapshotHarness(t *testing.T, seed uint64) *snapshotHarness {
	t.Helper()
	const mu, gain, sweet = 1.0, 0.8, 20.0
	bias := 1.0
	failing := false
	reg := obs.NewRegistry()
	br := fault.NewBreaker(fault.BreakerConfig{Name: "snapshot-test", FailureThreshold: 1, Metrics: reg})
	ledger := NewBoundedDecisionLedger(64)
	fc, err := NewFallbackController(FallbackConfig{
		Primary:  chaosModel{name: "p", mu: mu, gain: gain, sweet: sweet, bias: &bias, fail: &failing},
		Fallback: chaosModel{name: "f", mu: mu, gain: gain, sweet: sweet, bias: new(float64)},
		Dataset:  &profiler.Dataset{ServiceRate: mu, MarginalRate: mu * (1 + gain)},
		Seed:     seed, MaxTimeout: 60, AnnealIter: 20,
		Breaker: br, Metrics: reg, Ledger: ledger,
	})
	if err != nil {
		t.Fatalf("NewFallbackController: %v", err)
	}
	*fc.cfg.Fallback.(chaosModel).bias = 1
	return &snapshotHarness{fc: fc, breaker: br, ledger: ledger, bias: &bias, fail: &failing}
}

// drive runs steps decisions with slowly drifting rates and honest
// observations, returning the decided timeouts.
func (h *snapshotHarness) drive(t *testing.T, start, steps int) []float64 {
	t.Helper()
	out := make([]float64, 0, steps)
	for i := start; i < start+steps; i++ {
		rate := 0.5 + 0.3*math.Sin(float64(i)/7)
		to, err := h.fc.Timeout(rate)
		if err != nil {
			t.Fatalf("step %d: Timeout: %v", i, err)
		}
		h.fc.Observe(rate, SurfaceRT(1, 0.8, 20, rate, to))
		out = append(out, to)
	}
	return out
}

// TestSnapshotRestoreContinuesBitIdentically is the crash-safety
// contract: snapshot a controller mid-run, rebuild from scratch,
// restore, and the continuation's decisions and ledger chain are
// bit-identical to an uninterrupted run.
func TestSnapshotRestoreContinuesBitIdentically(t *testing.T) {
	const seed, pre, post = 42, 30, 30

	uninterrupted := newSnapshotHarness(t, seed)
	uninterrupted.drive(t, 0, pre)
	wantTO := uninterrupted.drive(t, pre, post)

	crashed := newSnapshotHarness(t, seed)
	crashed.drive(t, 0, pre)
	fcState := crashed.fc.State()
	brState := crashed.breaker.Snapshot()
	ledState := crashed.ledger.State()

	restored := newSnapshotHarness(t, seed)
	if err := restored.fc.Restore(fcState); err != nil {
		t.Fatalf("FallbackController.Restore: %v", err)
	}
	if err := restored.breaker.Restore(brState); err != nil {
		t.Fatalf("Breaker.Restore: %v", err)
	}
	if err := restored.ledger.Restore(ledState); err != nil {
		t.Fatalf("DecisionLedger.Restore: %v", err)
	}
	gotTO := restored.drive(t, pre, post)

	for i := range wantTO {
		if gotTO[i] != wantTO[i] {
			t.Fatalf("decision %d after restore: timeout %v, uninterrupted run chose %v",
				pre+i, gotTO[i], wantTO[i])
		}
	}
	if got, want := restored.ledger.Chain(), uninterrupted.ledger.Chain(); got != want {
		t.Fatalf("ledger chain after restore %s, uninterrupted %s", got, want)
	}
	if got, want := restored.ledger.Len(), post; got != want {
		t.Fatalf("restored ledger Len() = %d, want %d decisions since restore", got, want)
	}
}

// TestSnapshotRestoreCarriesDegradedState checks a snapshot taken while
// demoted restores the level, the banked timeout and the breaker
// position.
func TestSnapshotRestoreCarriesDegradedState(t *testing.T) {
	h := newSnapshotHarness(t, 7)
	h.drive(t, 0, 12)
	*h.fail = true
	if _, err := h.fc.Timeout(0.9); err != nil {
		t.Fatalf("decision during outage: %v", err)
	}
	if h.fc.Level() == LevelHybrid {
		t.Fatal("scripted outage did not demote")
	}
	st := h.fc.State()
	br := h.breaker.Snapshot()

	r := newSnapshotHarness(t, 7)
	if err := r.fc.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := r.breaker.Restore(br); err != nil {
		t.Fatalf("breaker Restore: %v", err)
	}
	if got, want := r.fc.Level(), h.fc.Level(); got != want {
		t.Fatalf("restored level %v, want %v", got, want)
	}
	if got, want := r.breaker.State(), h.breaker.State(); got != want {
		t.Fatalf("restored breaker %v, want %v", got, want)
	}
	gd, gp := r.fc.Counts()
	wd, wp := h.fc.Counts()
	if gd != wd || gp != wp {
		t.Fatalf("restored counts %d/%d, want %d/%d", gd, gp, wd, wp)
	}
}

// TestSnapshotRestoreRejectsBadState checks a corrupt snapshot cannot
// half-restore a controller.
func TestSnapshotRestoreRejectsBadState(t *testing.T) {
	h := newSnapshotHarness(t, 3)
	h.drive(t, 0, 5)
	before := h.fc.State()

	bad := before
	bad.Level = 99
	if err := h.fc.Restore(bad); err == nil {
		t.Fatal("out-of-range level restored without error")
	}
	bad = before
	bad.Active.Residuals = []float64{math.NaN()}
	if err := h.fc.Restore(bad); err == nil {
		t.Fatal("NaN residual restored without error")
	}
	if got := h.fc.State(); got.Level != before.Level || got.Demotions != before.Demotions {
		t.Fatalf("failed restore mutated the controller: %+v != %+v", got, before)
	}

	if err := h.ledger.Restore(LedgerState{Seq: -1, Chain: "0"}); err == nil {
		t.Fatal("negative ledger seq restored without error")
	}
	if err := h.ledger.Restore(LedgerState{Seq: 1, Chain: "not-hex"}); err == nil {
		t.Fatal("unparsable chain restored without error")
	}
	if err := h.breaker.Restore(fault.BreakerSnapshot{State: 5}); err == nil {
		t.Fatal("out-of-range breaker state restored without error")
	}
}

// TestWatchdogStateRoundTrip checks the evidence window survives a
// wrap-around snapshot.
func TestWatchdogStateRoundTrip(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Window: 4})
	for _, r := range []float64{0.5, 0.4, 0.1, 0.1, 0.1} { // wraps once
		w.push(r)
	}
	st := w.State()
	if want := []float64{0.4, 0.1, 0.1, 0.1}; len(st.Residuals) != len(want) {
		t.Fatalf("snapshot kept %d residuals, want %d", len(st.Residuals), len(want))
	} else {
		for i := range want {
			if st.Residuals[i] != want[i] {
				t.Fatalf("residuals %v, want %v (oldest first)", st.Residuals, want)
			}
		}
	}
	r := NewWatchdog(WatchdogConfig{Window: 4})
	if err := r.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := r.MeanResidual(), w.MeanResidual(); got != want {
		t.Fatalf("restored mean residual %v, want %v", got, want)
	}
	if got, want := r.streak, w.streak; got != want {
		t.Fatalf("restored streak %d, want %d", got, want)
	}
}
