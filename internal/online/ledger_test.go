package online

import (
	"testing"

	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
)

func TestDecisionLedgerNilSafety(t *testing.T) {
	var l *DecisionLedger
	l.Append(DecisionRecord{})
	l.StampVirtual(1)
	if l.Len() != 0 || l.Records() != nil {
		t.Fatalf("nil ledger leaked state: len=%d records=%v", l.Len(), l.Records())
	}
}

func TestDecisionLedgerSequencesAndStamps(t *testing.T) {
	l := NewDecisionLedger()
	l.Append(DecisionRecord{Timeout: 10})
	l.Append(DecisionRecord{Timeout: 20})
	l.StampVirtual(4)
	l.Append(DecisionRecord{Timeout: 30})
	l.StampVirtual(8)

	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	wantVT := []float64{4, 4, 8}
	for i, r := range recs {
		if r.Seq != i {
			t.Errorf("record %d: seq %d", i, r.Seq)
		}
		if r.VirtualTime != wantVT[i] {
			t.Errorf("record %d: virtual time %v, want %v", i, r.VirtualTime, wantVT[i])
		}
		if r.Fingerprint == "" {
			t.Errorf("record %d: empty fingerprint", i)
		}
	}
	if recs[0].Fingerprint == recs[1].Fingerprint {
		t.Error("distinct decisions share a fingerprint")
	}
}

// TestChaosLedgerBitForBitAcrossRuns is the provenance determinism
// contract: replaying any scenario twice with fresh ledgers must yield
// the same decision records, fingerprint for fingerprint, and those
// records must agree with the replay's own step timeline.
func TestChaosLedgerBitForBitAcrossRuns(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			run := func() (*ChaosResult, []DecisionRecord) {
				led := NewDecisionLedger()
				res, err := RunChaos(sc, ChaosOptions{
					Metrics: obs.NewRegistry(),
					Ledger:  led,
				})
				if err != nil {
					t.Fatalf("RunChaos: %v", err)
				}
				return res, led.Records()
			}
			resA, recsA := run()
			_, recsB := run()

			if len(recsA) == 0 {
				t.Fatal("replay recorded no decisions")
			}
			if len(recsA) != len(resA.Steps) {
				t.Fatalf("%d decisions for %d steps", len(recsA), len(resA.Steps))
			}
			if len(recsA) != len(recsB) {
				t.Fatalf("run A recorded %d decisions, run B %d", len(recsA), len(recsB))
			}
			for i := range recsA {
				a, b := recsA[i], recsB[i]
				if a.Fingerprint != b.Fingerprint {
					t.Fatalf("decision %d fingerprints differ: %s vs %s", i, a.Fingerprint, b.Fingerprint)
				}
				if a.Tier != b.Tier || a.Level != b.Level || a.Retuned != b.Retuned ||
					a.Demoted != b.Demoted || a.BreakerState != b.BreakerState ||
					a.VirtualTime != b.VirtualTime {
					t.Fatalf("decision %d provenance differs: %+v vs %+v", i, a, b)
				}
				// The decision must agree with the timeline step it served.
				st := resA.Steps[i]
				if a.Timeout != st.Timeout || a.Rate != st.EstimatedRate {
					t.Fatalf("decision %d (to=%v rate=%v) disagrees with step %d (to=%v rate=%v)",
						i, a.Timeout, a.Rate, st.Step, st.Timeout, st.EstimatedRate)
				}
				if a.Seq != i {
					t.Fatalf("decision %d carries seq %d", i, a.Seq)
				}
			}
		})
	}
}

// TestChaosSearchOutageProvenance pins the search-outage story in the
// ledger: the scripted outage fails a search, trips the breaker open,
// demotes the chain to NoML, and every later decision records that
// state.
func TestChaosSearchOutageProvenance(t *testing.T) {
	sc, err := fault.ScenarioByName("search-outage")
	if err != nil {
		t.Fatal(err)
	}
	led := NewDecisionLedger()
	res, err := RunChaos(sc, ChaosOptions{Metrics: obs.NewRegistry(), Ledger: led})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if res.Demotions == 0 {
		t.Fatal("outage caused no demotions")
	}
	recs := led.Records()
	var demoted, open int
	for _, r := range recs {
		if r.Demoted {
			demoted++
			if r.Tier != "noml" {
				t.Errorf("demoting decision served by tier %q, want noml", r.Tier)
			}
			if !r.Retuned {
				t.Error("demote-and-retry decision did not retune")
			}
		}
		if r.BreakerState == "open" {
			open++
		}
	}
	if demoted == 0 {
		t.Error("no decision records the mid-decision demotion")
	}
	if open == 0 {
		t.Error("no decision observed the breaker open")
	}
	last := recs[len(recs)-1]
	if last.Tier != "noml" || last.BreakerState != "open" {
		t.Errorf("final decision tier=%q breaker=%q, want noml/open", last.Tier, last.BreakerState)
	}
	if led.Len() != len(res.Steps) {
		t.Fatalf("%d ledger entries for %d steps", led.Len(), len(res.Steps))
	}
}
