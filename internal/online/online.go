// Package online addresses the paper's Section 5 open challenge:
// estimating runtime conditions online and applying the performance model
// to noisy estimates. It provides sliding-window and exponentially
// weighted arrival-rate estimators and an adaptive policy controller that
// re-selects the sprint timeout whenever the estimated conditions drift.
package online

import (
	"context"
	"fmt"
	"math"

	"mdsprint/internal/core"
	"mdsprint/internal/explore"
	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
	"mdsprint/internal/profiler"
)

// RateEstimator estimates an arrival rate from observed arrival
// timestamps over a sliding window, optionally smoothed with an EWMA.
// It is not safe for concurrent use.
type RateEstimator struct {
	window float64
	alpha  float64 // EWMA weight per update; 0 disables smoothing

	times []float64 // arrivals within the window, ascending
	ewma  float64
	init  bool
}

// NewRateEstimator returns an estimator over the given window (seconds).
// alpha in [0, 1) blends each new windowed estimate into an EWMA; 0 uses
// the raw windowed rate. The window must be positive and finite.
func NewRateEstimator(window, alpha float64) (*RateEstimator, error) {
	if !(window > 0) || math.IsInf(window, 1) {
		return nil, fmt.Errorf("online: NewRateEstimator window %v must be positive and finite", window)
	}
	if !(alpha >= 0 && alpha < 1) {
		return nil, fmt.Errorf("online: NewRateEstimator alpha %v must be in [0, 1)", alpha)
	}
	return &RateEstimator{window: window, alpha: alpha}, nil
}

// MustRateEstimator is NewRateEstimator for statically known arguments;
// it panics on invalid ones.
func MustRateEstimator(window, alpha float64) *RateEstimator {
	e, err := NewRateEstimator(window, alpha)
	if err != nil {
		panic(err.Error())
	}
	return e
}

// Observe records one arrival at time t. Real clocks misbehave, so the
// estimator tolerates adversarial input instead of panicking: non-finite
// timestamps are ignored, and a timestamp regressing behind the last
// arrival is clamped to it (observed as a simultaneous arrival).
func (e *RateEstimator) Observe(t float64) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return
	}
	if n := len(e.times); n > 0 && t < e.times[n-1] {
		t = e.times[n-1]
	}
	e.times = append(e.times, t)
	e.trim(t)
	raw := e.windowedRate(t)
	if !e.init {
		// Seed the EWMA from the first estimate backed by at least
		// one complete inter-arrival gap.
		if len(e.times) >= 2 {
			e.ewma = raw
			e.init = true
		}
		return
	}
	if e.alpha > 0 {
		e.ewma = e.alpha*e.ewma + (1-e.alpha)*raw
	} else {
		e.ewma = raw
	}
}

// trim drops arrivals older than the window.
func (e *RateEstimator) trim(now float64) {
	cut := 0
	for cut < len(e.times) && e.times[cut] < now-e.window {
		cut++
	}
	if cut > 0 {
		e.times = append(e.times[:0], e.times[cut:]...)
	}
}

// windowedRate is the raw arrivals-per-second over the trailing window.
// Early in the stream, before the window fills, the rate is estimated
// from the inter-arrival span of the observations seen so far; a single
// observation is not enough to estimate anything beyond a floor.
func (e *RateEstimator) windowedRate(now float64) float64 {
	n := len(e.times)
	if n < 2 {
		return float64(n) / e.window
	}
	span := now - e.times[0]
	if span >= e.window {
		return float64(n) / e.window
	}
	// n arrivals over a partial span: n-1 complete inter-arrival gaps.
	return float64(n-1) / math.Max(span, e.window/1e6)
}

// Rate returns the current estimate at time now. A non-finite now is
// replaced by the last observed arrival time, so the estimate stays
// finite whatever the caller's clock reports.
func (e *RateEstimator) Rate(now float64) float64 {
	if math.IsNaN(now) || math.IsInf(now, 0) {
		if len(e.times) == 0 {
			return 0
		}
		now = e.times[len(e.times)-1]
	}
	e.trim(now)
	if len(e.times) == 0 {
		return 0
	}
	if e.alpha > 0 && e.init {
		return e.ewma
	}
	return e.windowedRate(now)
}

// Observations returns how many arrivals are inside the window.
func (e *RateEstimator) Observations() int { return len(e.times) }

// Controller re-selects the sprint timeout with a performance model
// whenever the estimated arrival rate drifts by more than
// RetuneThreshold (relative).
type Controller struct {
	// Model predicts response time against Dataset.
	Model   core.Model
	Dataset *profiler.Dataset
	// Base is the policy template; the controller tunes its timeout.
	Base profiler.Condition
	// MaxTimeout bounds the search (seconds).
	MaxTimeout float64
	// AnnealIter and Seed drive the annealing search.
	AnnealIter int
	Seed       uint64
	// RetuneThreshold is the relative rate drift that triggers a new
	// search (default 0.15).
	RetuneThreshold float64
	// Metrics records each re-selection decision (old timeout, new
	// timeout, estimated rate, retune count); nil records into
	// obs.Default() so adaptive-control behaviour is inspectable from
	// sprintctl's debug endpoints.
	Metrics *obs.Registry
	// Breaker, when set, circuit-breaks the model-driven search: while
	// open, a drifted estimate keeps the current timeout instead of
	// re-annealing, and search failures/successes feed the breaker. May
	// be nil.
	Breaker *fault.Breaker
	// Clock times the annealing searches for decision provenance; nil
	// uses the real clock.
	Clock obs.Clock

	tunedRate    float64
	currentTO    float64
	haveDecision bool
	retunes      int
	lastPredRT   float64
}

// tierInfo is the provenance of one tier-level timeout answer.
type tierInfo struct {
	// PredictedRT is the model's expected mean RT at the returned
	// timeout (carried over from the last search when the decision is
	// cached).
	PredictedRT float64
	// Retuned reports whether this answer ran a fresh annealing search;
	// SearchNanos is that search's wall time (0 when cached).
	Retuned     bool
	SearchNanos int64
}

// recordDecision publishes one re-selection to the metrics registry.
func (c *Controller) recordDecision(oldTO, newTO, rate float64, first bool) {
	reg := obs.Or(c.Metrics)
	reg.Counter("mdsprint_online_retunes_total", "model-driven timeout re-selections").Inc()
	if !first {
		reg.Gauge("mdsprint_online_prev_timeout_seconds", "timeout in force before the last re-selection").Set(oldTO)
	}
	reg.Gauge("mdsprint_online_timeout_seconds", "timeout selected by the last re-selection").Set(newTO)
	reg.Gauge("mdsprint_online_estimated_rate_qps", "arrival-rate estimate that drove the last re-selection").Set(rate)
}

// Timeout returns the controller's current timeout for the estimated
// arrival rate, re-running the model-driven search if the estimate has
// drifted beyond the threshold since the last decision.
func (c *Controller) Timeout(estimatedRate float64) (float64, error) {
	to, _, err := c.timeout(context.Background(), estimatedRate)
	return to, err
}

// timeout is Timeout's body, additionally reporting the decision's
// provenance (predicted RT, whether a search ran, its wall time). The
// context carries the caller's span, so a context-aware model's
// prediction spans nest under the decision instead of floating as
// roots.
func (c *Controller) timeout(ctx context.Context, estimatedRate float64) (float64, tierInfo, error) {
	if estimatedRate <= 0 {
		return 0, tierInfo{}, fmt.Errorf("online: non-positive rate estimate %v", estimatedRate)
	}
	thr := c.RetuneThreshold
	if thr <= 0 {
		thr = 0.15
	}
	if c.haveDecision && math.Abs(estimatedRate-c.tunedRate)/c.tunedRate <= thr {
		return c.currentTO, tierInfo{PredictedRT: c.lastPredRT}, nil
	}
	// An open breaker suppresses the search: ride the current decision
	// (degraded but safe) rather than re-annealing with a model that has
	// been failing.
	if c.Breaker != nil && !c.Breaker.Allow() {
		if c.haveDecision {
			return c.currentTO, tierInfo{PredictedRT: c.lastPredRT}, nil
		}
		return 0, tierInfo{}, fmt.Errorf("online: retune breaker open before any decision")
	}
	maxTO := c.MaxTimeout
	if maxTO <= 0 {
		maxTO = 300
	}
	iter := c.AnnealIter
	if iter == 0 {
		iter = 60
	}
	// A prediction failure inside the annealing closure is remembered
	// and surfaced as an error, never a panic (the closure's signature
	// has no error channel, so failures poison the point with +Inf).
	clk := obs.ClockOr(c.Clock)
	searchStart := clk.Now()
	var predErr error
	res, err := explore.MinimizeTimeout(func(to float64) float64 {
		cond := c.Base
		cond.Timeout = to
		pred, perr := predictModel(ctx, c.Model, c.Dataset, core.Scenario{
			Cond:        cond,
			ArrivalRate: estimatedRate,
		})
		if perr != nil {
			if predErr == nil {
				predErr = perr
			}
			return math.Inf(1)
		}
		return pred.MeanRT
	}, 0, maxTO, explore.Options{MaxIter: iter, Seed: c.Seed + uint64(c.retunes)})
	searchNanos := clk.Now().Sub(searchStart).Nanoseconds()
	if predErr != nil {
		c.reportSearch(false)
		return 0, tierInfo{Retuned: true, SearchNanos: searchNanos}, fmt.Errorf("online: model prediction during retune: %w", predErr)
	}
	if err != nil {
		c.reportSearch(false)
		return 0, tierInfo{Retuned: true, SearchNanos: searchNanos}, err
	}
	c.reportSearch(true)
	oldTO := c.currentTO
	first := !c.haveDecision
	c.tunedRate = estimatedRate
	c.currentTO = res.Point[0]
	c.lastPredRT = res.RT
	c.haveDecision = true
	c.retunes++
	c.recordDecision(oldTO, c.currentTO, estimatedRate, first)
	return c.currentTO, tierInfo{PredictedRT: res.RT, Retuned: true, SearchNanos: searchNanos}, nil
}

// predictModel routes a prediction through the model's context-aware
// entry point when it has one, so span parentage survives the search.
func predictModel(ctx context.Context, m core.Model, ds *profiler.Dataset, sc core.Scenario) (core.Prediction, error) {
	if cm, ok := m.(core.CtxModel); ok {
		return cm.PredictCtx(ctx, ds, sc)
	}
	return m.Predict(ds, sc)
}

// reportSearch feeds one search outcome to the breaker, if any.
func (c *Controller) reportSearch(ok bool) {
	if c.Breaker == nil {
		return
	}
	if ok {
		c.Breaker.Success()
	} else {
		c.Breaker.Failure()
	}
}

// Retunes reports how many model-driven searches the controller has run.
func (c *Controller) Retunes() int { return c.retunes }
