package server

import (
	"context"
	"testing"
)

// TestTenantDecideZeroAllocs gates the serving hot path: a steady-state
// decision (cached controller decision, pooled op, bounded ledger)
// must not allocate. This is what keeps tens of thousands of
// decisions per second GC-quiet.
func TestTenantDecideZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := newTestServer(t, Options{Tenants: testTenants("a")})
	tn, _ := s.lookup("a")
	ctx := context.Background()
	const rate = 0.6
	// Warm: first decision anneals, later ones ride the cached path.
	for i := 0; i < 3; i++ {
		if _, _, err := tn.Decide(ctx, rate); err != nil {
			t.Fatalf("warmup decide: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := tn.Decide(ctx, rate); err != nil {
			t.Fatalf("decide: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decide allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTenantObserveZeroAllocs gates the feedback path the same way.
func TestTenantObserveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := newTestServer(t, Options{Tenants: testTenants("a")})
	tn, _ := s.lookup("a")
	ctx := context.Background()
	const rate = 0.6
	to, _, err := tn.Decide(ctx, rate)
	if err != nil {
		t.Fatalf("decide: %v", err)
	}
	obsRT := 1.0 + to/100
	for i := 0; i < 3; i++ {
		if err := tn.ObserveRT(ctx, rate, obsRT); err != nil {
			t.Fatalf("warmup observe: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := tn.ObserveRT(ctx, rate, obsRT); err != nil {
			t.Fatalf("observe: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ObserveRT allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTenantDecideZeroAllocsTiered is the same gate with a tier
// estimator wired in (TierSpec): the decide path additionally stamps
// estimator-tier provenance into each DecisionRecord, and the retune's
// model queries ride the analytic tier — none of which may cost the
// steady state an allocation.
func TestTenantDecideZeroAllocsTiered(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	cfg := testTenants("a")
	cfg[0].TierSpec = "bound=0.1"
	s := newTestServer(t, Options{Tenants: cfg})
	tn, _ := s.lookup("a")
	ctx := context.Background()
	const rate = 0.6
	for i := 0; i < 3; i++ {
		if _, _, err := tn.Decide(ctx, rate); err != nil {
			t.Fatalf("warmup decide: %v", err)
		}
	}
	// The warmup retune must actually have exercised the ladder, with
	// the cheap analytic tier carrying the annealing search's queries.
	st := tn.tiers.Stats()
	if st.Answers == 0 || st.Analytic == 0 {
		t.Fatalf("tier estimator answers=%d analytic=%d: the decide path never queried the ladder", st.Answers, st.Analytic)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := tn.Decide(ctx, rate); err != nil {
			t.Fatalf("decide: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state tiered Decide allocates %.1f objects/op, want 0", allocs)
	}
}
