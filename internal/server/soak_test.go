package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
	"mdsprint/internal/online"
)

// TestDaemonSoak is the end-to-end robustness scenario `make soak`
// runs under -race: concurrent tenants under client-side transport
// faults, a scripted model outage and a scripted panic, an overload
// burst that must shed (not queue unboundedly, not crash), a hot
// reload mid-traffic, a clean drain, and a kill-and-restore whose
// ledger continuation matches the snapshot exactly.
func TestDaemonSoak(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.json")
	cfgs := []TenantConfig{
		{Name: "alpha", AnnealIter: 15, QueueDepth: 8},
		{Name: "bravo", AnnealIter: 15},
		{Name: "charlie", AnnealIter: 15},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := New(ctx, Options{
		Tenants:       cfgs,
		SnapshotPath:  snapPath,
		SnapshotEvery: 50 * time.Millisecond,
		MaxInFlight:   64,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Traffic: two workers per tenant, each riding the retry plan
	// through a seeded chaos transport (drops + injected 503s).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served, abandoned atomic.Int64
	workerErrs := make(chan error, 16)
	for ti, cfg := range cfgs {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(tenant string, seed uint64) {
				defer wg.Done()
				chaos := fault.NewRoundTripper(http.DefaultTransport, fault.HTTPFaultConfig{
					Seed: seed, DropProb: 0.1, ErrorProb: 0.1, Metrics: obs.NewRegistry(),
				})
				c := &Client{
					BaseURL:    srv.URL,
					HTTP:       &http.Client{Transport: chaos},
					MaxRetries: 6, Backoff: 2 * time.Millisecond, Seed: seed,
					AttemptTimeout: time.Second,
				}
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					i++
					rate := 0.4 + 0.3*float64(i%5)/5
					cctx, ccancel := context.WithTimeout(context.Background(), 2*time.Second)
					res, err := c.Decide(cctx, tenant, rate)
					if err == nil {
						served.Add(1)
						obsRT := online.SurfaceRT(1, 0.8, 20, rate, res.Timeout)
						//lint:ignore errdrop a shed observation under injected faults is expected soak noise
						_ = c.Observe(cctx, tenant, rate, obsRT)
					} else if isShedOrFault(err) {
						abandoned.Add(1)
					} else {
						select {
						case workerErrs <- fmt.Errorf("tenant %s decide: %w", tenant, err):
						default:
						}
					}
					ccancel()
				}
			}(cfg.Name, uint64(ti*2+w+1))
		}
	}

	time.Sleep(150 * time.Millisecond)

	// Scripted model outage on bravo: the daemon must demote, not fail.
	admin := &Client{BaseURL: srv.URL, MaxRetries: 4, Backoff: 5 * time.Millisecond}
	if err := admin.Fault(ctx, FaultRequest{Tenant: "bravo", Mode: "fail", Value: 1}); err != nil {
		t.Fatalf("scripting bravo outage: %v", err)
	}
	// Scripted panic burst on charlie: the bulkhead must absorb it.
	if err := admin.Fault(ctx, FaultRequest{Tenant: "charlie", Mode: "panic", Value: 1}); err != nil {
		t.Fatalf("scripting charlie panic: %v", err)
	}
	time.Sleep(150 * time.Millisecond)
	if err := admin.Fault(ctx, FaultRequest{Tenant: "charlie", Mode: "clear"}); err != nil {
		t.Fatalf("clearing charlie: %v", err)
	}

	// Overload burst against alpha's 8-deep queue: wedge its model
	// briefly and flood; the daemon must shed with 429/503, fast.
	if err := admin.Fault(ctx, FaultRequest{Tenant: "alpha", Mode: "delay", Value: 0.05}); err != nil {
		t.Fatalf("scripting alpha delay: %v", err)
	}
	var sheds atomic.Int64
	var burst sync.WaitGroup
	for i := 0; i < 40; i++ {
		burst.Add(1)
		go func() {
			defer burst.Done()
			resp, err := http.Post(srv.URL+"/v1/decide", "application/json",
				strings.NewReader(`{"tenant":"alpha","rate":0.5}`))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				if resp.Header.Get("Retry-After") == "" {
					select {
					case workerErrs <- fmt.Errorf("shed %d without Retry-After", resp.StatusCode):
					default:
					}
				}
				sheds.Add(1)
			}
		}()
	}
	burst.Wait()
	if err := admin.Fault(ctx, FaultRequest{Tenant: "alpha", Mode: "clear"}); err != nil {
		t.Fatalf("clearing alpha: %v", err)
	}
	if sheds.Load() == 0 {
		t.Fatal("overload burst was never shed: admission control is not engaging")
	}

	// Health must still render under load, and bravo's live outage must
	// show in it (tenant-prefixed checks). Checked before the reload:
	// reload rebuilds models, which clears the scripted fault.
	time.Sleep(100 * time.Millisecond)
	h := s.Health()
	foundBravo := false
	for _, p := range h.Problems {
		if strings.HasPrefix(p.Check, "bravo/") {
			foundBravo = true
		}
	}
	if !foundBravo {
		t.Fatalf("health %+v does not reflect bravo's scripted outage", h.Problems)
	}

	// Hot reload mid-traffic: same names, retuned queue depths.
	reloaded := []TenantConfig{
		{Name: "alpha", AnnealIter: 15, QueueDepth: 32},
		{Name: "bravo", AnnealIter: 15},
		{Name: "charlie", AnnealIter: 15},
	}
	if err := admin.Reload(ctx, reloaded); err != nil {
		t.Fatalf("hot reload: %v", err)
	}
	time.Sleep(150 * time.Millisecond)

	close(stop)
	wg.Wait()
	select {
	case err := <-workerErrs:
		t.Fatalf("soak traffic hit a non-shed failure: %v", err)
	default:
	}
	if served.Load() == 0 {
		t.Fatal("soak served zero decisions")
	}

	// Clean drain with final snapshot, then kill.
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain after soak: %v", err)
	}
	snap, ok, err := ReadSnapshot(snapPath)
	if err != nil || !ok {
		t.Fatalf("final snapshot: ok=%v err=%v", ok, err)
	}
	cancel() // the kill

	// Restore: the rebooted daemon continues each tenant exactly at the
	// snapshot's ledger chain, and still serves.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	s2, err := New(ctx2, Options{Tenants: reloaded, SnapshotPath: snapPath})
	if err != nil {
		t.Fatalf("restore boot: %v", err)
	}
	for name, want := range snap.Tenants {
		tn, ok := s2.lookup(name)
		if !ok {
			t.Fatalf("restored daemon lost tenant %s", name)
		}
		st := tn.ledger.State()
		if st.Seq != want.Ledger.Seq || st.Chain != want.Ledger.Chain {
			t.Fatalf("tenant %s restored at seq %d chain %s, snapshot says seq %d chain %s",
				name, st.Seq, st.Chain, want.Ledger.Seq, want.Ledger.Chain)
		}
		if got := int(tn.Level()); got != want.Fallback.Level {
			t.Fatalf("tenant %s restored at level %d, snapshot says %d", name, got, want.Fallback.Level)
		}
		if _, _, err := tn.Decide(context.Background(), 0.5); err != nil {
			t.Fatalf("restored tenant %s cannot decide: %v", name, err)
		}
	}
}

// isShedOrFault reports whether a client error is expected soak noise:
// a shed (429/503 after retries ran out) or an injected transport
// fault, as opposed to a daemon bug.
func isShedOrFault(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "429") ||
		strings.Contains(msg, "503") ||
		strings.Contains(msg, "injected") ||
		strings.Contains(msg, "context deadline exceeded") ||
		strings.Contains(msg, "connection refused")
}
