// Package server is sprintd: a crash-safe, overload-tolerant
// multi-tenant policy-serving daemon over the online degradation
// plane. Each tenant is an isolated bulkhead — its own model chain,
// fallback controller, circuit breaker, decision ledger and metrics
// registry behind a bounded admission queue owned by one worker
// goroutine — so one misbehaving tenant sheds its own load and cannot
// stall, starve or crash the rest. Tenant state snapshots to disk
// periodically and on drain; a restarted daemon restores it and
// continues the decision stream bit-identically (asserted by ledger
// fingerprint chains).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mdsprint/internal/obs"
)

// Options configures a Server. Zero values take the documented
// defaults.
type Options struct {
	// Tenants declares the serving set; at least one is required.
	Tenants []TenantConfig
	// MaxInFlight bounds concurrently admitted requests across all
	// tenants (default 256) — the global overload valve in front of the
	// per-tenant queues.
	MaxInFlight int
	// SnapshotPath, when set, enables crash safety: state is restored
	// from it at startup, persisted every SnapshotEvery (default 5s)
	// and on drain.
	SnapshotPath  string
	SnapshotEvery time.Duration
	// RetryAfter is the hint sent with shed responses (default 1s).
	RetryAfter time.Duration
	// Logf narrates lifecycle events; nil is silent.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 5 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// serverMetrics are the daemon-wide counters, kept in their own
// registry so per-tenant registries stay tenant-pure.
type serverMetrics struct {
	requests     *obs.Counter
	shedInFlight *obs.Counter
	shedTenant   *obs.Counter
	snapshots    *obs.Counter
	snapshotErrs *obs.Counter
	reloads      *obs.Counter
}

// Server is the sprintd daemon core: tenant routing, global admission
// control, lifecycle (readiness, drain), snapshots and the HTTP
// surface. The HTTP transport itself (listener, http.Server) belongs
// to the caller; Server is everything behind the handler.
type Server struct {
	opts Options
	reg  *obs.Registry
	m    serverMetrics

	mu      sync.RWMutex
	tenants map[string]*tenant

	sem      chan struct{}
	ready    atomic.Bool
	draining atomic.Bool

	// snapStop/snapDone tie down the periodic snapshot loop so Drain
	// can stop it and wait before writing the final snapshot — no
	// concurrent writer racing the authoritative last state.
	snapStop chan struct{}
	snapDone chan struct{}
	snapOnce sync.Once

	runCtx context.Context
	mux    *http.ServeMux
}

// New builds the tenant set (restoring from the snapshot path when one
// exists), starts the workers and the snapshot loop, and marks the
// server ready. ctx bounds every background goroutine: canceling it is
// the crash-style stop the snapshot protects against — use Drain for
// the graceful path.
func New(ctx context.Context, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if len(opts.Tenants) == 0 {
		return nil, fmt.Errorf("server: need at least one tenant")
	}
	reg := obs.NewRegistry()
	s := &Server{
		opts:    opts,
		reg:     reg,
		tenants: make(map[string]*tenant, len(opts.Tenants)),
		sem:     make(chan struct{}, opts.MaxInFlight),
		runCtx:  ctx,
		m: serverMetrics{
			requests:     reg.Counter("mdsprint_serve_requests_total", "requests admitted past the global valve"),
			shedInFlight: reg.Counter("mdsprint_serve_shed_inflight_total", "requests shed by the global in-flight valve"),
			shedTenant:   reg.Counter("mdsprint_serve_shed_tenant_total", "requests shed by a tenant (queue full, stalled, draining)"),
			snapshots:    reg.Counter("mdsprint_serve_snapshots_total", "state snapshots persisted"),
			snapshotErrs: reg.Counter("mdsprint_serve_snapshot_errors_total", "state snapshots that failed to persist"),
			reloads:      reg.Counter("mdsprint_serve_reloads_total", "hot reloads applied"),
		},
	}

	var restored Snapshot
	haveSnap := false
	if opts.SnapshotPath != "" {
		var err error
		restored, haveSnap, err = ReadSnapshot(opts.SnapshotPath)
		if err != nil {
			return nil, err
		}
	}
	for _, cfg := range opts.Tenants {
		t, err := newTenant(cfg)
		if err != nil {
			return nil, err
		}
		if _, dup := s.tenants[t.cfg.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", t.cfg.Name)
		}
		if haveSnap {
			if snap, ok := restored.Tenants[t.cfg.Name]; ok {
				if err := t.restore(snap); err != nil {
					return nil, err
				}
				opts.Logf("server: tenant %s restored at ledger seq %d level %d",
					t.cfg.Name, snap.Ledger.Seq, snap.Fallback.Level)
			}
		}
		s.tenants[t.cfg.Name] = t
	}
	for _, t := range s.tenants {
		t.start(ctx)
	}
	s.snapStop = make(chan struct{})
	s.snapDone = make(chan struct{})
	if opts.SnapshotPath != "" {
		go s.snapshotLoop(ctx)
	} else {
		close(s.snapDone)
	}
	s.buildMux()
	s.ready.Store(true)
	return s, nil
}

// snapshotLoop persists state every SnapshotEvery until ctx ends or
// Drain stops it.
func (s *Server) snapshotLoop(ctx context.Context) {
	defer close(s.snapDone)
	tick := time.NewTicker(s.opts.SnapshotEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.snapStop:
			return
		case <-tick.C:
			if err := s.SnapshotNow(ctx); err != nil {
				s.opts.Logf("server: snapshot: %v", err)
			}
		}
	}
}

// SnapshotNow captures every responsive tenant and persists the result
// atomically. A stalled tenant is skipped (its last captured state
// remains the restore point) rather than wedging the snapshot loop.
func (s *Server) SnapshotNow(ctx context.Context) error {
	if s.opts.SnapshotPath == "" {
		return nil
	}
	snap := Snapshot{Tenants: make(map[string]TenantSnapshot)}
	for _, t := range s.tenantList() {
		cctx, cancel := context.WithTimeout(ctx, s.opts.SnapshotEvery)
		ts, err := t.Snapshot(cctx)
		cancel()
		if err != nil {
			s.opts.Logf("server: snapshot: tenant %s skipped: %v", t.cfg.Name, err)
			continue
		}
		snap.Tenants[t.cfg.Name] = ts
	}
	if len(snap.Tenants) == 0 {
		return fmt.Errorf("server: no tenant could be captured")
	}
	if err := WriteSnapshot(s.opts.SnapshotPath, snap); err != nil {
		s.m.snapshotErrs.Inc()
		return err
	}
	s.m.snapshots.Inc()
	return nil
}

// tenantList returns the tenants sorted by name, for deterministic
// iteration in snapshots, health reports and listings.
func (s *Server) tenantList() []*tenant {
	s.mu.RLock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].cfg.Name < out[j].cfg.Name })
	return out
}

// lookup resolves a tenant by name.
func (s *Server) lookup(name string) (*tenant, bool) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	return t, ok
}

// Drain is the graceful SIGTERM path: stop admitting, drain every
// tenant's queued work, take the final snapshot. Bounded by ctx.
func (s *Server) Drain(ctx context.Context) error {
	s.ready.Store(false)
	s.draining.Store(true)
	// Stop the periodic snapshotter first and wait it out, so the
	// final snapshot below is the last writer.
	s.snapOnce.Do(func() { close(s.snapStop) })
	<-s.snapDone
	var firstErr error
	for _, t := range s.tenantList() {
		if err := t.stop(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.opts.SnapshotPath != "" {
		if err := s.SnapshotNow(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.opts.Logf("server: drained")
	return firstErr
}

// Reload hot-swaps the tenant set without dropping requests. For each
// reloaded tenant: build the replacement (worker unstarted — its queue
// accepts and buffers immediately), swap it into the routing map, drain
// the old worker, carry the old state over, then start the new worker
// on the buffered backlog. Tenants absent from the new set are drained
// and removed; new names are added.
func (s *Server) Reload(ctx context.Context, cfgs []TenantConfig) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("server: reload needs at least one tenant")
	}
	fresh := make(map[string]*tenant, len(cfgs))
	for _, cfg := range cfgs {
		t, err := newTenant(cfg)
		if err != nil {
			return err
		}
		if _, dup := fresh[t.cfg.Name]; dup {
			return fmt.Errorf("server: duplicate tenant %q in reload", t.cfg.Name)
		}
		fresh[t.cfg.Name] = t
	}

	s.mu.Lock()
	old := s.tenants
	s.tenants = make(map[string]*tenant, len(fresh))
	for name, t := range fresh {
		s.tenants[name] = t
	}
	s.mu.Unlock()

	var firstErr error
	for name, nt := range fresh {
		ot, existed := old[name]
		if !existed {
			nt.start(s.runCtx)
			continue
		}
		if err := ot.stop(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
		snap, err := ot.Snapshot(ctx) // worker exited: direct read
		if err == nil {
			if rerr := nt.restore(snap); rerr != nil {
				s.opts.Logf("server: reload: tenant %s starts fresh: %v", name, rerr)
			}
		} else if firstErr == nil {
			firstErr = err
		}
		nt.start(s.runCtx)
	}
	for name, ot := range old {
		if _, kept := fresh[name]; !kept {
			if err := ot.stop(ctx); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	s.m.reloads.Inc()
	s.opts.Logf("server: reloaded %d tenant(s)", len(fresh))
	return firstErr
}

// Health aggregates every tenant's degradation health into one
// verdict, with check names prefixed by tenant (so "which tenant is
// hurt" survives aggregation), plus a critical stall check per wedged
// tenant. The JSON shape is obs.Health, so `sprintctl monitor -addr`
// renders it unchanged.
func (s *Server) Health() obs.Health {
	var probs []obs.Problem
	for _, t := range s.tenantList() {
		th := obs.EvaluateHealth(t.reg, obs.HealthThresholds{})
		for _, p := range th.Problems {
			p.Check = t.cfg.Name + "/" + p.Check
			probs = append(probs, p)
		}
		if t.stalled() {
			probs = append(probs, obs.Problem{
				Check: t.cfg.Name + "/tenant-stalled", Severity: obs.SeverityCritical,
				Detail: fmt.Sprintf("worker stuck in one operation beyond the %s stall budget", t.cfg.StallAfter),
				Value:  1, Threshold: 0,
			})
		}
	}
	return obs.Health{Healthy: len(probs) == 0, Problems: probs}
}

// ---- HTTP surface ----

// DecideRequest asks for one policy decision. The arrival-rate
// estimate is the client's (sprintd trusts callers to estimate their
// own load; the chaos harness exercises hostile values).
type DecideRequest struct {
	Tenant string  `json:"tenant"`
	Rate   float64 `json:"rate"`
}

// DecideResponse is the decision: the sprint timeout to apply and the
// degradation tier that produced it.
type DecideResponse struct {
	Tenant  string  `json:"tenant"`
	Tier    string  `json:"tier"`
	Level   int     `json:"level"`
	Timeout float64 `json:"timeout_s"`
}

// ObserveRequest feeds back one observed mean response time measured
// under the tenant's last decision.
type ObserveRequest struct {
	Tenant   string  `json:"tenant"`
	Rate     float64 `json:"rate"`
	Observed float64 `json:"observed_rt"`
}

// TenantStatus is one row of GET /v1/tenants.
type TenantStatus struct {
	Name      string `json:"name"`
	Tier      string `json:"tier"`
	Level     int    `json:"level"`
	Decisions int    `json:"decisions"`
	Stalled   bool   `json:"stalled,omitempty"`
}

// FaultRequest scripts a model fault on a live tenant (test surface).
type FaultRequest struct {
	Tenant string  `json:"tenant"`
	Model  string  `json:"model"` // "primary" (default) or "fallback"
	Mode   string  `json:"mode"`  // bias, fail, panic, delay, clear
	Value  float64 `json:"value"`
}

// ReloadRequest carries a full replacement tenant set.
type ReloadRequest struct {
	Tenants []TenantConfig `json:"tenants"`
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/decide", s.handleDecide)
	mux.HandleFunc("POST /v1/observe", s.handleObserve)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	mux.HandleFunc("POST /v1/fault", s.handleFault)
	mux.HandleFunc("GET /debug/health", s.handleHealth)
	mux.HandleFunc("GET /debug/ready", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
}

// shed writes one load-shedding response with a Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
	http.Error(w, err.Error(), status)
}

// admit acquires the global in-flight slot, or sheds. The release
// function must be called exactly once.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if !s.ready.Load() || s.draining.Load() {
		s.shed(w, http.StatusServiceUnavailable, ErrDraining)
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
		s.m.requests.Inc()
		return func() { <-s.sem }, true
	default:
		s.m.shedInFlight.Inc()
		s.shed(w, http.StatusServiceUnavailable, errors.New("server: in-flight limit reached"))
		return nil, false
	}
}

// shedStatus maps a tenant shedding verdict to its HTTP status: 429
// when the client should slow down for this tenant, 503 when the
// server side is the problem.
func shedStatus(err error) (int, bool) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, true
	case errors.Is(err, ErrStalled), errors.Is(err, ErrDraining),
		errors.Is(err, ErrStopped), errors.Is(err, ErrDeadline):
		return http.StatusServiceUnavailable, true
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, true
	default:
		return 0, false
	}
}

// decodeJSON bounds and decodes a request body.
func decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(into); err != nil {
		http.Error(w, fmt.Sprintf("server: bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON writes a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	//lint:ignore errdrop best-effort write; a departed client has nowhere to report the error
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	var req DecideRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	t, ok := s.lookup(req.Tenant)
	if !ok {
		http.Error(w, fmt.Sprintf("server: no tenant %q", req.Tenant), http.StatusNotFound)
		return
	}
	to, level, err := t.Decide(r.Context(), req.Rate)
	if err != nil {
		if status, shed := shedStatus(err); shed {
			s.m.shedTenant.Inc()
			s.shed(w, status, err)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, DecideResponse{
		Tenant: req.Tenant, Tier: level.String(), Level: int(level), Timeout: to,
	})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	var req ObserveRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	t, ok := s.lookup(req.Tenant)
	if !ok {
		http.Error(w, fmt.Sprintf("server: no tenant %q", req.Tenant), http.StatusNotFound)
		return
	}
	if err := t.ObserveRT(r.Context(), req.Rate, req.Observed); err != nil {
		if status, shed := shedStatus(err); shed {
			s.m.shedTenant.Inc()
			s.shed(w, status, err)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	list := s.tenantList()
	out := make([]TenantStatus, 0, len(list))
	for _, t := range list {
		lvl := t.Level()
		decisions, _ := t.reg.Value("mdsprint_serve_decisions_total")
		out = append(out, TenantStatus{
			Name: t.cfg.Name, Tier: lvl.String(), Level: int(lvl),
			Decisions: int(decisions), Stalled: t.stalled(),
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.Reload(r.Context(), req.Tenants); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]int{"tenants": len(req.Tenants)})
}

func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	var req FaultRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	t, ok := s.lookup(req.Tenant)
	if !ok {
		http.Error(w, fmt.Sprintf("server: no tenant %q", req.Tenant), http.StatusNotFound)
		return
	}
	m, err := t.model(req.Model)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := m.scriptFault(req.Mode, req.Value); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if h.Critical() {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errdrop best-effort write; a departed probe client has nowhere to report the error
	_ = enc.Encode(h)
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.ready.Load() && !s.draining.Load() {
		//lint:ignore errdrop best-effort write; a departed probe client has nowhere to report the error
		_, _ = w.Write([]byte("ready\n"))
		return
	}
	http.Error(w, "draining", http.StatusServiceUnavailable)
}

// handleMetrics serves the daemon registry, or one tenant's registry
// with ?tenant=name.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.reg
	if name := r.URL.Query().Get("tenant"); name != "" {
		t, ok := s.lookup(name)
		if !ok {
			http.Error(w, fmt.Sprintf("server: no tenant %q", name), http.StatusNotFound)
			return
		}
		reg = t.reg
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	//lint:ignore errdrop best-effort write; a departed scrape client has nowhere to report the error
	_ = reg.WritePrometheus(w)
}
