package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
)

// writeFile is a test helper for snapshot corruption tests.
func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}

// TestClientRetriesThroughInjectedFaults drives the client through the
// fault package's chaos transport: seeded drops and injected 503s must
// be absorbed by the retry plan, and the decision still lands.
func TestClientRetriesThroughInjectedFaults(t *testing.T) {
	s := newTestServer(t, Options{Tenants: testTenants("a")})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	reg := obs.NewRegistry()
	chaos := fault.NewRoundTripper(http.DefaultTransport, fault.HTTPFaultConfig{
		Seed: 11, DropProb: 0.3, ErrorProb: 0.3, Metrics: reg,
	})
	var retries atomic.Int64
	c := &Client{
		BaseURL:    srv.URL,
		HTTP:       &http.Client{Transport: chaos},
		MaxRetries: 12, Backoff: time.Millisecond, Seed: 7,
		OnRetry: func(int) { retries.Add(1) },
	}
	for i := 0; i < 10; i++ {
		res, err := c.Decide(context.Background(), "a", 0.6)
		if err != nil {
			t.Fatalf("decide %d through chaos transport: %v", i, err)
		}
		if res.Timeout <= 0 {
			t.Fatalf("decide %d: non-positive timeout %v", i, res.Timeout)
		}
	}
	injected, _ := reg.Value("mdsprint_fault_http_drops_total")
	fives, _ := reg.Value("mdsprint_fault_http_5xx_total")
	if injected+fives == 0 {
		t.Fatal("chaos transport injected nothing; the test exercised no faults")
	}
	if retries.Load() == 0 {
		t.Fatal("faults were injected but the client never retried")
	}
}

// TestClientZeroRetriesFailsFast checks MaxRetries<0 means exactly one
// attempt.
func TestClientZeroRetriesFailsFast(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shed", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, MaxRetries: -1}
	if _, err := c.Decide(context.Background(), "a", 0.5); err == nil {
		t.Fatal("decide against a shedding server with no retries succeeded")
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d attempts, want exactly 1", calls.Load())
	}
}

// TestClientHonorsRetryAfter checks a shed response's Retry-After
// floors the backoff: with a 1s hint and a tiny backoff, the retry
// must not arrive before the hint elapses.
func TestClientHonorsRetryAfter(t *testing.T) {
	var first atomic.Int64
	var gap atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if first.CompareAndSwap(0, now) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		gap.Store(now - first.Load())
		writeJSON(w, DecideResponse{Tenant: "a", Tier: "hybrid", Timeout: 1})
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, MaxRetries: 2, Backoff: time.Millisecond}
	if _, err := c.Decide(context.Background(), "a", 0.5); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if got := time.Duration(gap.Load()); got < 900*time.Millisecond {
		t.Fatalf("retry arrived %v after the 429, want >= ~1s (Retry-After floor)", got)
	}
}

// TestClientTerminalOn4xx checks a non-shed client error is not
// retried.
func TestClientTerminalOn4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "no such tenant", http.StatusNotFound)
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, MaxRetries: 5, Backoff: time.Millisecond}
	_, err := c.Decide(context.Background(), "nope", 0.5)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err %v, want terminal 404", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("404 retried: %d attempts, want 1", calls.Load())
	}
}

// TestClientAttemptTimeoutBoundsBlackHole checks one unresponsive
// attempt cannot eat the caller's whole deadline: the per-attempt
// timeout fires and the retry goes to the (now healthy) server.
func TestClientAttemptTimeoutBoundsBlackHole(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Black hole until the test ends: the client's per-attempt
			// timeout, not this handler, must unblock the call.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		writeJSON(w, DecideResponse{Tenant: "a", Tier: "hybrid", Timeout: 1})
	}))
	// LIFO: release the black-holed handler before srv.Close waits on it.
	defer srv.Close()
	defer close(release)
	c := &Client{
		BaseURL: srv.URL, MaxRetries: 2, Backoff: time.Millisecond,
		AttemptTimeout: 50 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := c.Decide(ctx, "a", 0.5); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("black-holed attempt held the call for %v; per-attempt timeout did not bound it", took)
	}
	if calls.Load() < 2 {
		t.Fatalf("server saw %d calls, want the timed-out attempt plus a retry", calls.Load())
	}
}
