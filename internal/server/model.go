package server

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"mdsprint/internal/core"
	"mdsprint/internal/dist"
	"mdsprint/internal/online"
	"mdsprint/internal/profiler"
	"mdsprint/internal/queuesim"
	"mdsprint/internal/sweep"
	"mdsprint/internal/tier"
)

// SurfaceModel is a tenant's analytic performance model: it predicts
// the synthetic sprint surface (online.SurfaceRT) and carries runtime
// fault switches so chaos tests and the /v1/fault endpoint can script
// a diverged fit (bias), an outage (fail), a crashing model (panic) or
// a wedged one (delay) against a live tenant without restarting it.
// All switches are atomic: the tenant worker reads them while the test
// or fault endpoint flips them. The happy path allocates nothing.
type SurfaceModel struct {
	name            string
	mu, gain, sweet float64

	bias     atomic.Uint64 // Float64bits; 0 means unbiased
	failing  atomic.Bool
	panicky  atomic.Bool
	delay    atomic.Int64 // nanoseconds of injected stall per prediction
	predicts atomic.Uint64

	// est, when set, answers the unsaturated surface query through the
	// staged tier estimator: 1/(muEff - lambda) is exactly the M/M/1
	// mean, so the analytic tier serves it for free while the ladder
	// still accounts for the query (and escalates honestly near
	// saturation). The cached task keeps steady-state predictions —
	// the same (rate, timeout) operating point decision after decision
	// — allocation-free; it is touched only by the tenant worker
	// goroutine that owns Predict, like the controller itself.
	est        *tier.Estimator
	taskLambda uint64 // Float64bits of the cached task's arrival rate
	taskMuEff  uint64 // Float64bits of the cached task's service rate
	cached     sweep.Task
	haveTask   bool
}

// NewSurfaceModel returns an honest model of the surface with service
// rate mu, sprint gain and sweet-spot timeout.
func NewSurfaceModel(name string, mu, gain, sweet float64) *SurfaceModel {
	return &SurfaceModel{name: name, mu: mu, gain: gain, sweet: sweet}
}

// Name implements core.Model.
func (m *SurfaceModel) Name() string { return m.name }

// Predict implements core.Model, honoring whatever faults are scripted
// at call time.
func (m *SurfaceModel) Predict(_ *profiler.Dataset, sc core.Scenario) (core.Prediction, error) {
	m.predicts.Add(1)
	if d := m.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if m.panicky.Load() {
		panic(fmt.Sprintf("server: model %s scripted panic", m.name))
	}
	if m.failing.Load() {
		return core.Prediction{}, fmt.Errorf("server: model %s scripted outage", m.name)
	}
	b := math.Float64frombits(m.bias.Load())
	if b <= 0 {
		b = 1
	}
	if m.est != nil {
		x := sc.Cond.Timeout / m.sweet
		if x < 0 {
			x = 0
		}
		muEff := m.mu * (1 + m.gain*x*math.Exp(1-x))
		if sc.ArrivalRate < 0.95*muEff {
			mean, _, err := m.est.MeanRT(m.task(sc.ArrivalRate, muEff))
			if err == nil {
				return core.Prediction{MeanRT: mean * b}, nil
			}
			// An estimator failure falls back to the closed form: the
			// surface is exact, the ladder is the accounting.
		}
	}
	rt := online.SurfaceRT(m.mu, m.gain, m.sweet, sc.ArrivalRate, sc.Cond.Timeout) * b
	return core.Prediction{MeanRT: rt}, nil
}

// SetTiers routes the model's unsaturated surface queries through a
// staged tier estimator. Call before the tenant starts serving.
func (m *SurfaceModel) SetTiers(est *tier.Estimator) { m.est = est }

// task returns the M/M/1 query for the (lambda, muEff) operating
// point, rebuilding the cached task only when the point moves — the
// steady-state decide loop revisits one point, so this path performs
// no allocations after the first visit.
func (m *SurfaceModel) task(lambda, muEff float64) sweep.Task {
	lb, mb := math.Float64bits(lambda), math.Float64bits(muEff)
	if !m.haveTask || m.taskLambda != lb || m.taskMuEff != mb {
		m.cached = sweep.Task{Params: queuesim.Params{
			ArrivalRate: lambda,
			Service:     dist.NewExponential(muEff),
			ServiceRate: muEff,
			Timeout:     -1,
			NumQueries:  4000,
			Seed:        1,
		}, Reps: 2}
		m.taskLambda, m.taskMuEff, m.haveTask = lb, mb, true
	}
	return m.cached
}

// SetBias scales predictions by b (≤ 0 restores honesty) — a diverged
// fit that still answers.
func (m *SurfaceModel) SetBias(b float64) { m.bias.Store(math.Float64bits(b)) }

// SetFailing scripts every prediction to error — a model outage.
func (m *SurfaceModel) SetFailing(v bool) { m.failing.Store(v) }

// SetPanicky scripts every prediction to panic — the bulkhead test.
func (m *SurfaceModel) SetPanicky(v bool) { m.panicky.Store(v) }

// SetDelay scripts a stall of d per prediction — the wedged-model test.
func (m *SurfaceModel) SetDelay(d time.Duration) { m.delay.Store(int64(d)) }

// Predicts reports how many predictions the model has served.
func (m *SurfaceModel) Predicts() uint64 { return m.predicts.Load() }

// scriptFault applies one named fault mode, the shared vocabulary of
// the /v1/fault endpoint and the chaos scenarios.
func (m *SurfaceModel) scriptFault(mode string, value float64) error {
	switch mode {
	case "bias":
		m.SetBias(value)
	case "fail":
		//lint:ignore floateq the fault value is a boolean flag: exactly 0 means off
		m.SetFailing(value != 0)
	case "panic":
		//lint:ignore floateq the fault value is a boolean flag: exactly 0 means off
		m.SetPanicky(value != 0)
	case "delay":
		m.SetDelay(time.Duration(value * float64(time.Second)))
	case "clear":
		m.SetBias(0)
		m.SetFailing(false)
		m.SetPanicky(false)
		m.SetDelay(0)
	default:
		return fmt.Errorf("server: unknown fault mode %q (bias, fail, panic, delay, clear)", mode)
	}
	return nil
}
