package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdsprint/internal/online"
)

// testTenants returns a small deterministic tenant set.
func testTenants(names ...string) []TenantConfig {
	out := make([]TenantConfig, 0, len(names))
	for _, n := range names {
		out = append(out, TenantConfig{Name: n, AnnealIter: 15})
	}
	return out
}

// newTestServer builds a server whose background goroutines die with
// the test.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s, err := New(ctx, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// drive runs steps decide+observe rounds against one tenant with a
// deterministic drifting rate, failing the test on any error.
func driveTenant(t *testing.T, tn *tenant, start, steps int) {
	t.Helper()
	for i := start; i < start+steps; i++ {
		rate := 0.5 + 0.2*float64(i%7)/7
		to, _, err := tn.Decide(context.Background(), rate)
		if err != nil {
			t.Fatalf("decide %d: %v", i, err)
		}
		obsRT := online.SurfaceRT(tn.cfg.ServiceRate, tn.cfg.SprintGain, tn.cfg.SweetTimeout, rate, to)
		if err := tn.ObserveRT(context.Background(), rate, obsRT); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
}

func TestDecideAndTenantListing(t *testing.T) {
	s := newTestServer(t, Options{Tenants: testTenants("alpha", "beta")})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}

	res, err := c.Decide(context.Background(), "alpha", 0.6)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if res.Tier != "hybrid" || res.Timeout <= 0 {
		t.Fatalf("decision %+v, want a positive hybrid-tier timeout", res)
	}
	if err := c.Observe(context.Background(), "alpha", 0.6, 2.0); err != nil {
		t.Fatalf("Observe: %v", err)
	}

	tenants, err := c.Tenants(context.Background())
	if err != nil {
		t.Fatalf("Tenants: %v", err)
	}
	if len(tenants) != 2 || tenants[0].Name != "alpha" || tenants[1].Name != "beta" {
		t.Fatalf("tenant listing %+v, want [alpha beta]", tenants)
	}
	if tenants[0].Decisions != 1 {
		t.Fatalf("alpha served %d decisions, want 1", tenants[0].Decisions)
	}

	if _, err := c.Decide(context.Background(), "nope", 0.6); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown tenant: err %v, want a terminal 404", err)
	}
}

func TestGlobalInFlightValveSheds(t *testing.T) {
	s := newTestServer(t, Options{Tenants: testTenants("a"), MaxInFlight: 1})
	// Hold the only slot, then probe.
	s.sem <- struct{}{}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/decide", "application/json",
		strings.NewReader(`{"tenant":"a","rate":0.5}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d under full in-flight valve, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After hint")
	}
	<-s.sem
}

func TestQueueFullSheds429(t *testing.T) {
	s := newTestServer(t, Options{Tenants: []TenantConfig{
		{Name: "slow", QueueDepth: 1, AnnealIter: 15, StallAfter: time.Minute},
	}})
	tn, _ := s.lookup("slow")
	// Wedge the worker long enough to fill the one-slot queue.
	tn.primary.SetDelay(300 * time.Millisecond)
	go tn.Decide(context.Background(), 0.5) // occupies the worker
	time.Sleep(50 * time.Millisecond)       // let it start
	go tn.Decide(context.Background(), 0.5) // fills the queue
	time.Sleep(50 * time.Millisecond)

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/decide", "application/json",
		strings.NewReader(`{"tenant":"slow","rate":0.5}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with a full tenant queue, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After hint")
	}
	tn.primary.SetDelay(0)
}

func TestStalledTenantShedsAndReportsCritical(t *testing.T) {
	s := newTestServer(t, Options{Tenants: []TenantConfig{
		{Name: "wedged", AnnealIter: 15, StallAfter: 30 * time.Millisecond},
		{Name: "fine", AnnealIter: 15},
	}})
	tn, _ := s.lookup("wedged")
	tn.primary.SetDelay(500 * time.Millisecond)
	release := make(chan struct{})
	go func() {
		//lint:ignore errdrop the wedged decide's outcome is irrelevant; the stall it causes is the test
		_, _, _ = tn.Decide(context.Background(), 0.5)
		close(release)
	}()
	time.Sleep(100 * time.Millisecond) // past the stall budget

	if _, _, err := tn.Decide(context.Background(), 0.5); err != ErrStalled {
		t.Fatalf("decide against a stalled tenant: %v, want ErrStalled", err)
	}
	h := s.Health()
	found := false
	for _, p := range h.Problems {
		if p.Check == "wedged/tenant-stalled" && p.Severity == "critical" {
			found = true
		}
		if strings.HasPrefix(p.Check, "fine/") {
			t.Fatalf("healthy tenant polluted the report: %+v", p)
		}
	}
	if !found {
		t.Fatalf("health %+v missing wedged/tenant-stalled critical", h.Problems)
	}
	// The healthy tenant keeps serving while its neighbour is wedged —
	// the bulkhead property.
	fine, _ := s.lookup("fine")
	if _, _, err := fine.Decide(context.Background(), 0.5); err != nil {
		t.Fatalf("healthy tenant failed during neighbour stall: %v", err)
	}
	tn.primary.SetDelay(0)
	<-release
}

func TestPanicBulkheadDemotesAndSurvives(t *testing.T) {
	s := newTestServer(t, Options{Tenants: testTenants("crashy", "steady")})
	tn, _ := s.lookup("crashy")
	driveTenant(t, tn, 0, 3)
	if tn.Level() != online.LevelHybrid {
		t.Fatalf("level %v before the panic, want hybrid", tn.Level())
	}

	tn.primary.SetPanicky(true)
	_, _, err := tn.Decide(context.Background(), 0.9)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("decide with a panicking model: err %v, want a recovered panic error", err)
	}
	if got, _ := tn.reg.Value("mdsprint_serve_panics_total"); got != 1 {
		t.Fatalf("panic counter %v, want 1", got)
	}
	if tn.Level() == online.LevelHybrid {
		t.Fatal("panicking model did not cost the tenant a demotion")
	}
	tn.primary.SetPanicky(false)

	// The demoted tenant still serves (from a lower tier), and the
	// neighbour never noticed.
	if _, lvl, err := tn.Decide(context.Background(), 0.9); err != nil || lvl == online.LevelHybrid {
		t.Fatalf("post-panic decide: to err=%v level=%v, want degraded success", err, lvl)
	}
	steady, _ := s.lookup("steady")
	if _, lvl, err := steady.Decide(context.Background(), 0.5); err != nil || lvl != online.LevelHybrid {
		t.Fatalf("neighbour after panic: err=%v level=%v, want healthy hybrid", err, lvl)
	}
}

func TestDeadlineExpiredInQueueSheds(t *testing.T) {
	s := newTestServer(t, Options{Tenants: testTenants("a")})
	tn, _ := s.lookup("a")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := tn.Decide(ctx, 0.5); err != ErrDeadline && err != context.Canceled {
		t.Fatalf("expired-ctx decide: %v, want ErrDeadline or ctx error", err)
	}
}

func TestHealthAggregationPrefixesTenant(t *testing.T) {
	s := newTestServer(t, Options{Tenants: testTenants("sick", "well")})
	tn, _ := s.lookup("sick")
	driveTenant(t, tn, 0, 2)
	tn.primary.SetFailing(true)
	if _, _, err := tn.Decide(context.Background(), 0.9); err != nil {
		t.Fatalf("decide during outage should demote and succeed: %v", err)
	}
	h := s.Health()
	if h.Healthy {
		t.Fatal("health reports healthy with a demoted tenant")
	}
	var sick, well int
	for _, p := range h.Problems {
		if strings.HasPrefix(p.Check, "sick/") {
			sick++
		}
		if strings.HasPrefix(p.Check, "well/") {
			well++
		}
	}
	if sick == 0 || well != 0 {
		t.Fatalf("problems %+v: want only sick/-prefixed checks", h.Problems)
	}
}

func TestReadinessGateAndDrain(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{
		Tenants:      testTenants("a"),
		SnapshotPath: filepath.Join(dir, "state.json"),
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/ready")
	if err != nil {
		t.Fatalf("GET ready: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready %d before drain, want 200", resp.StatusCode)
	}

	tn, _ := s.lookup("a")
	driveTenant(t, tn, 0, 3)
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	resp, err = http.Get(srv.URL + "/debug/ready")
	if err != nil {
		t.Fatalf("GET ready: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ready %d after drain, want 503", resp.StatusCode)
	}
	// Requests after drain are shed, not served.
	dresp, err := http.Post(srv.URL+"/v1/decide", "application/json",
		strings.NewReader(`{"tenant":"a","rate":0.5}`))
	if err != nil {
		t.Fatalf("POST after drain: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("decide after drain: %d, want 503", dresp.StatusCode)
	}
	// The drain snapshot landed.
	if _, ok, err := ReadSnapshot(filepath.Join(dir, "state.json")); err != nil || !ok {
		t.Fatalf("drain snapshot: ok=%v err=%v", ok, err)
	}
}

func TestReloadCarriesStateWithoutDroppingRequests(t *testing.T) {
	s := newTestServer(t, Options{Tenants: testTenants("keep", "retire")})
	tn, _ := s.lookup("keep")
	driveTenant(t, tn, 0, 5)
	demBefore, _ := tn.fc.Counts()
	chainBefore := tn.ledger.Chain()

	// Concurrent decides throughout the reload: none may be dropped
	// (shed with retry is allowed for the retired tenant only).
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(errc)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur, _ := s.lookup("keep")
			if _, _, err := cur.Decide(context.Background(), 0.55); err != nil {
				errc <- err
				return
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	newCfg := []TenantConfig{
		{Name: "keep", AnnealIter: 15, QueueDepth: 128}, // changed config
		{Name: "fresh", AnnealIter: 15},                 // added
		// "retire" dropped
	}
	if err := s.Reload(ctx, newCfg); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	close(stop)
	if err := <-errc; err != nil {
		t.Fatalf("decide failed during reload: %v", err)
	}

	nt, ok := s.lookup("keep")
	if !ok || nt == tn {
		t.Fatal("reload did not swap in a new tenant instance")
	}
	if nt.cfg.QueueDepth != 128 {
		t.Fatalf("reloaded config QueueDepth %d, want 128", nt.cfg.QueueDepth)
	}
	// State carried over: the ledger chain continued, not restarted.
	if got := nt.ledger.Chain(); got == online.NewDecisionLedger().Chain() && chainBefore != got {
		t.Fatalf("reloaded tenant lost its ledger chain (got the empty chain %s)", got)
	}
	if dem, _ := nt.fc.Counts(); dem < demBefore {
		t.Fatalf("reloaded tenant lost demotion history: %d < %d", dem, demBefore)
	}
	if _, ok := s.lookup("retire"); ok {
		t.Fatal("retired tenant still routed")
	}
	if fresh, ok := s.lookup("fresh"); !ok {
		t.Fatal("added tenant not routed")
	} else if _, _, err := fresh.Decide(context.Background(), 0.5); err != nil {
		t.Fatalf("added tenant decide: %v", err)
	}
	if v, _ := s.reg.Value("mdsprint_serve_reloads_total"); v != 1 {
		t.Fatalf("reload counter %v, want 1", v)
	}
}

func TestFaultEndpointScriptsModels(t *testing.T) {
	s := newTestServer(t, Options{Tenants: testTenants("a")})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, MaxRetries: -1}

	if err := c.Fault(context.Background(), FaultRequest{Tenant: "a", Mode: "fail", Value: 1}); err != nil {
		t.Fatalf("Fault: %v", err)
	}
	tn, _ := s.lookup("a")
	if !tn.primary.failing.Load() {
		t.Fatal("fault endpoint did not script the outage")
	}
	if err := c.Fault(context.Background(), FaultRequest{Tenant: "a", Mode: "clear"}); err != nil {
		t.Fatalf("Fault clear: %v", err)
	}
	if tn.primary.failing.Load() {
		t.Fatal("clear did not reset the outage")
	}
	if err := c.Fault(context.Background(), FaultRequest{Tenant: "a", Mode: "bogus"}); err == nil {
		t.Fatal("unknown fault mode accepted")
	}
}

func TestMetricsEndpointScopes(t *testing.T) {
	s := newTestServer(t, Options{Tenants: testTenants("a")})
	tn, _ := s.lookup("a")
	driveTenant(t, tn, 0, 1)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(url string) (int, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}
	code, body := get(srv.URL + "/metrics")
	if code != 200 || !strings.Contains(body, "mdsprint_serve_requests_total") {
		t.Fatalf("server metrics: %d %q", code, body[:min(len(body), 120)])
	}
	code, body = get(srv.URL + "/metrics?tenant=a")
	if code != 200 || !strings.Contains(body, "mdsprint_serve_decisions_total") {
		t.Fatalf("tenant metrics: %d missing decision counter", code)
	}
	code, _ = get(srv.URL + "/metrics?tenant=zzz")
	if code != 404 {
		t.Fatalf("unknown tenant metrics: %d, want 404", code)
	}
}
