package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mdsprint/internal/httpharness"
)

// Client is the robust sprintd client: per-attempt timeouts and the
// harness's shared jittered-backoff retry plan, honoring the daemon's
// Retry-After hints. Shed responses (429/503) and transport errors
// retry; other client errors are terminal.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7676".
	BaseURL string
	// HTTP performs the requests; nil uses http.DefaultClient. Tests
	// inject fault.RoundTripper transports here.
	HTTP *http.Client
	// MaxRetries and Backoff shape the retry plan (defaults 3 and
	// 50ms); Seed drives its jitter.
	MaxRetries int
	Backoff    time.Duration
	Seed       uint64
	// AttemptTimeout bounds each individual attempt (default 2s), so
	// one black-holed request never consumes the caller's whole
	// deadline.
	AttemptTimeout time.Duration
	// OnRetry observes re-attempts (metrics hook). May be nil.
	OnRetry func(attempt int)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) plan() httpharness.RetryPlan {
	retries, backoff := c.MaxRetries, c.Backoff
	if retries == 0 {
		retries = 3
	}
	if retries < 0 { // explicit "no retries"
		retries = 0
	}
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	return httpharness.RetryPlan{
		MaxRetries: retries, Backoff: backoff, Seed: c.Seed, OnRetry: c.OnRetry,
	}
}

// attemptTimeout returns the per-attempt bound.
func (c *Client) attemptTimeout() time.Duration {
	if c.AttemptTimeout > 0 {
		return c.AttemptTimeout
	}
	return 2 * time.Second
}

// post runs one robust POST: marshal once, retry per the plan, decode
// into out (when out is non-nil and the response is 2xx).
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("server: encoding %s request: %w", path, err)
	}
	url := strings.TrimSuffix(c.BaseURL, "/") + path
	return c.plan().Do(ctx, func(int) httpharness.Outcome {
		actx, cancel := context.WithTimeout(ctx, c.attemptTimeout())
		defer cancel()
		req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return httpharness.Outcome{Err: err}
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.httpClient().Do(req)
		if err != nil {
			// Transport-level failure (drop, timeout): worth retrying
			// unless the caller's own ctx is what expired.
			return httpharness.Outcome{Err: err, Retryable: ctx.Err() == nil}
		}
		defer func() {
			//lint:ignore errdrop response body close after a full read
			_ = resp.Body.Close()
		}()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if out == nil {
				return httpharness.Outcome{}
			}
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return httpharness.Outcome{Err: fmt.Errorf("server: decoding %s response: %w", path, err)}
			}
			return httpharness.Outcome{}
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode >= 500:
			// Shed or transient server failure: retry, flooring the
			// backoff at the server's Retry-After hint.
			//lint:ignore errdrop the body is error detail only; a truncated read still yields a usable message
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return httpharness.Outcome{
				Err:       fmt.Errorf("server: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg))),
				Retryable: true,
				MinDelay:  retryAfter(resp),
			}
		default:
			//lint:ignore errdrop the body is error detail only; a truncated read still yields a usable message
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			return httpharness.Outcome{
				Err: fmt.Errorf("server: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg))),
			}
		}
	})
}

// retryAfter parses a Retry-After seconds hint; 0 when absent.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Decide asks the daemon for one policy decision.
func (c *Client) Decide(ctx context.Context, tenant string, rate float64) (DecideResponse, error) {
	var out DecideResponse
	err := c.post(ctx, "/v1/decide", DecideRequest{Tenant: tenant, Rate: rate}, &out)
	return out, err
}

// Observe feeds one observed response time back to the daemon.
func (c *Client) Observe(ctx context.Context, tenant string, rate, observed float64) error {
	return c.post(ctx, "/v1/observe", ObserveRequest{Tenant: tenant, Rate: rate, Observed: observed}, nil)
}

// Fault scripts a model fault on a live tenant (test surface).
func (c *Client) Fault(ctx context.Context, req FaultRequest) error {
	return c.post(ctx, "/v1/fault", req, nil)
}

// Reload hot-swaps the daemon's tenant set.
func (c *Client) Reload(ctx context.Context, cfgs []TenantConfig) error {
	return c.post(ctx, "/v1/reload", ReloadRequest{Tenants: cfgs}, nil)
}

// Tenants lists the daemon's tenants.
func (c *Client) Tenants(ctx context.Context) ([]TenantStatus, error) {
	url := strings.TrimSuffix(c.BaseURL, "/") + "/v1/tenants"
	var out []TenantStatus
	err := c.plan().Do(ctx, func(int) httpharness.Outcome {
		actx, cancel := context.WithTimeout(ctx, c.attemptTimeout())
		defer cancel()
		req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
		if err != nil {
			return httpharness.Outcome{Err: err}
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return httpharness.Outcome{Err: err, Retryable: ctx.Err() == nil}
		}
		defer func() {
			//lint:ignore errdrop response body close after a full read
			_ = resp.Body.Close()
		}()
		if resp.StatusCode != http.StatusOK {
			return httpharness.Outcome{
				Err:       fmt.Errorf("server: /v1/tenants: %s", resp.Status),
				Retryable: resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests,
				MinDelay:  retryAfter(resp),
			}
		}
		out = out[:0]
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return httpharness.Outcome{Err: fmt.Errorf("server: decoding /v1/tenants: %w", err)}
		}
		return httpharness.Outcome{}
	})
	return out, err
}
