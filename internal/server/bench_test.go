package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServeDecideDirect measures the in-process serving hot path:
// pooled op, queue rendezvous with the tenant worker, cached controller
// decision, bounded ledger append. This is the decisions/sec ceiling
// before HTTP costs.
func BenchmarkServeDecideDirect(b *testing.B) {
	s := benchServer(b)
	tn, _ := s.lookup("a")
	ctx := context.Background()
	if _, _, err := tn.Decide(ctx, 0.6); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tn.Decide(ctx, 0.6); err != nil {
			b.Fatalf("decide: %v", err)
		}
	}
}

// BenchmarkServeObserveDirect measures the feedback path the same way.
func BenchmarkServeObserveDirect(b *testing.B) {
	s := benchServer(b)
	tn, _ := s.lookup("a")
	ctx := context.Background()
	to, _, err := tn.Decide(ctx, 0.6)
	if err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tn.ObserveRT(ctx, 0.6, 1+to/100); err != nil {
			b.Fatalf("observe: %v", err)
		}
	}
}

// BenchmarkServeDecideHTTP measures a full client round trip through
// the HTTP surface with no retries: JSON in, admission, tenant queue,
// JSON out.
func BenchmarkServeDecideHTTP(b *testing.B) {
	s := benchServer(b)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, MaxRetries: -1, AttemptTimeout: 5 * time.Second}
	ctx := context.Background()
	if _, err := c.Decide(ctx, "a", 0.6); err != nil {
		b.Fatalf("warmup: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decide(ctx, "a", 0.6); err != nil {
			b.Fatalf("decide: %v", err)
		}
	}
}

// BenchmarkServeShedHTTP measures rejection latency: how fast the
// daemon turns away work it cannot take. Shedding must stay cheap —
// a slow 503 is itself an overload amplifier.
func BenchmarkServeShedHTTP(b *testing.B) {
	s := benchServer(b)
	// Exhaust the global in-flight valve so every request sheds at the
	// front door without touching a tenant queue.
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL, MaxRetries: -1, AttemptTimeout: 5 * time.Second}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := c.Decide(ctx, "a", 0.6)
		if err == nil {
			b.Fatal("saturated server accepted a request")
		}
	}
}

func benchServer(b *testing.B) *Server {
	b.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	s, err := New(ctx, Options{Tenants: testTenants("a"), MaxInFlight: 16})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	return s
}
