package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mdsprint/internal/fault"
	"mdsprint/internal/obs"
	"mdsprint/internal/online"
	"mdsprint/internal/profiler"
	"mdsprint/internal/sweep"
	"mdsprint/internal/tier"
)

// Shedding verdicts. Each maps to one HTTP answer: a full queue is the
// tenant's own backpressure (429, retry soon), everything else is the
// server protecting itself (503).
var (
	// ErrQueueFull means the tenant's admission queue is at capacity.
	ErrQueueFull = errors.New("server: tenant queue full")
	// ErrStalled means the tenant's worker has been stuck inside one
	// operation longer than the stall budget — likely a wedged model.
	ErrStalled = errors.New("server: tenant stalled")
	// ErrDraining means the tenant is shutting down or being reloaded.
	ErrDraining = errors.New("server: tenant draining")
	// ErrStopped means the tenant's worker has exited.
	ErrStopped = errors.New("server: tenant stopped")
	// ErrDeadline means the request's deadline expired while queued.
	ErrDeadline = errors.New("server: deadline expired in queue")
)

// TenantConfig declares one tenant: its synthetic workload surface,
// its controller tuning, and its robustness budgets. The zero values
// of the tuning fields take the documented defaults.
type TenantConfig struct {
	// Name routes requests; required and unique per server.
	Name string `json:"name"`
	// ServiceRate, SprintGain and SweetTimeout shape the tenant's
	// ground-truth surface (defaults 1, 0.8, 20) — each tenant is its
	// own independently calibrated workload.
	ServiceRate  float64 `json:"service_rate"`
	SprintGain   float64 `json:"sprint_gain"`
	SweetTimeout float64 `json:"sweet_timeout"`
	// MaxTimeout, AnnealIter, Seed and RetuneThreshold tune the tenant's
	// controllers (defaults 60, 30, per-name hash, 0.15).
	MaxTimeout      float64 `json:"max_timeout"`
	AnnealIter      int     `json:"anneal_iter"`
	Seed            uint64  `json:"seed"`
	RetuneThreshold float64 `json:"retune_threshold"`
	// QueueDepth bounds the admission queue (default 64): the bulkhead
	// between a slow tenant and the process's memory.
	QueueDepth int `json:"queue_depth"`
	// LedgerCap bounds the in-memory decision ledger ring (default 4096).
	LedgerCap int `json:"ledger_cap"`
	// TierSpec, when non-empty, routes the tenant's model queries
	// through a staged tier estimator built over a per-tenant sweep
	// engine (see tier.ParseTierSpec; e.g. "bound=0.1"). Each decision
	// then records which ladder tier dominated its queries, and the
	// tenant's registry carries the mdsprint_tier_* metrics. Empty
	// disables tiering (today's behavior).
	TierSpec string `json:"tier_spec,omitempty"`
	// StallAfter is how long one operation may run before the tenant is
	// declared stalled and sheds instead of queueing (default 2s).
	StallAfter time.Duration `json:"stall_after"`
	// Watchdog tunes the degradation watchdogs (zero values take the
	// watchdog defaults).
	Watchdog online.WatchdogConfig `json:"-"`
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.ServiceRate <= 0 {
		c.ServiceRate = 1
	}
	if c.SprintGain <= 0 {
		c.SprintGain = 0.8
	}
	if c.SweetTimeout <= 0 {
		c.SweetTimeout = 20
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60
	}
	if c.AnnealIter <= 0 {
		c.AnnealIter = 30
	}
	if c.Seed == 0 {
		// Distinct deterministic seeds per tenant name.
		h := uint64(14695981039346656037)
		for i := 0; i < len(c.Name); i++ {
			h ^= uint64(c.Name[i])
			h *= 1099511628211
		}
		c.Seed = h | 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.LedgerCap <= 0 {
		c.LedgerCap = 4096
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 2 * time.Second
	}
	return c
}

// opKind selects what a queued operation does.
type opKind int

const (
	opDecide opKind = iota
	opObserve
	opState
)

// op is one unit of tenant work. Ops rendezvous through the admission
// queue to the single worker goroutine that owns the controller; the
// ready channel (capacity 1, so the worker never blocks on a departed
// caller) carries completion. Ops are pooled — an op is returned to
// the pool only by a caller that actually received its completion, so
// an abandoned op is simply garbage, never reused while in flight.
type op struct {
	kind     opKind
	ctx      context.Context
	rate     float64
	observed float64

	timeout float64
	level   online.Level
	state   TenantSnapshot
	err     error
	ready   chan struct{}
}

// tenantMetrics are the serving-plane counters, scoped to the tenant's
// own registry next to its controller metrics.
type tenantMetrics struct {
	decideOK  *obs.Counter
	decideErr *obs.Counter
	observes  *obs.Counter
	panics    *obs.Counter
	shedFull  *obs.Counter
	shedLate  *obs.Counter
}

// tenant is one isolated serving unit: its own model chain, fallback
// controller, breaker, ledger and metrics registry, owned by a single
// worker goroutine. The bounded queue in front of the worker is both
// the admission-control point and the bulkhead: a misbehaving tenant
// fills its own queue and sheds its own load, and nothing else.
type tenant struct {
	cfg      TenantConfig
	reg      *obs.Registry
	fc       *online.FallbackController
	breaker  *fault.Breaker
	ledger   *online.DecisionLedger
	primary  *SurfaceModel
	fallback *SurfaceModel
	tiers    *tier.Estimator // nil unless TierSpec is configured

	queue    chan *op
	stopC    chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	draining atomic.Bool
	busyAt   atomic.Int64 // start of the op in progress (unix nanos); 0 idle

	pool sync.Pool
	m    tenantMetrics
}

// newTenant builds a tenant with its worker not yet started: the queue
// accepts (and buffers) work immediately, which is what lets a hot
// reload swap a tenant in, restore state into it, and only then start
// serving — without dropping the requests that arrived in between.
func newTenant(cfg TenantConfig) (*tenant, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("server: tenant needs a name")
	}
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	primary := NewSurfaceModel(cfg.Name+"-primary", cfg.ServiceRate, cfg.SprintGain, cfg.SweetTimeout)
	fallback := NewSurfaceModel(cfg.Name+"-fallback", cfg.ServiceRate, cfg.SprintGain, cfg.SweetTimeout)
	breaker := fault.NewBreaker(fault.BreakerConfig{
		Name: cfg.Name, FailureThreshold: 1, Metrics: reg,
	})
	var est *tier.Estimator
	var eng *sweep.Engine
	if cfg.TierSpec != "" {
		spec, err := tier.ParseTierSpec(cfg.TierSpec)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", cfg.Name, err)
		}
		eng = sweep.New(sweep.Options{Workers: 2, Metrics: reg})
		est, err = tier.New(spec, tier.Options{Engine: eng, Metrics: reg})
		if err != nil {
			return nil, fmt.Errorf("server: tenant %s: %w", cfg.Name, err)
		}
		primary.SetTiers(est)
		fallback.SetTiers(est)
	}
	ledger := online.NewBoundedDecisionLedger(cfg.LedgerCap)
	fc, err := online.NewFallbackController(online.FallbackConfig{
		Primary:         primary,
		Fallback:        fallback,
		Dataset:         &profiler.Dataset{ServiceRate: cfg.ServiceRate, MarginalRate: cfg.ServiceRate * (1 + cfg.SprintGain)},
		MaxTimeout:      cfg.MaxTimeout,
		AnnealIter:      cfg.AnnealIter,
		Seed:            cfg.Seed,
		RetuneThreshold: cfg.RetuneThreshold,
		Watchdog:        cfg.Watchdog,
		Breaker:         breaker,
		Metrics:         reg,
		Ledger:          ledger,
		Engine:          eng,
		Tiers:           est,
	})
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", cfg.Name, err)
	}
	t := &tenant{
		cfg: cfg, reg: reg, fc: fc, breaker: breaker, ledger: ledger,
		primary: primary, fallback: fallback, tiers: est,
		queue: make(chan *op, cfg.QueueDepth),
		stopC: make(chan struct{}),
		done:  make(chan struct{}),
		m: tenantMetrics{
			decideOK:  reg.Counter("mdsprint_serve_decisions_total", "decisions served"),
			decideErr: reg.Counter("mdsprint_serve_decision_errors_total", "decisions that failed"),
			observes:  reg.Counter("mdsprint_serve_observations_total", "observations fed to the watchdogs"),
			panics:    reg.Counter("mdsprint_serve_panics_total", "decision-path panics recovered by the bulkhead"),
			shedFull:  reg.Counter("mdsprint_serve_shed_queue_full_total", "requests shed because the tenant queue was full"),
			shedLate:  reg.Counter("mdsprint_serve_shed_deadline_total", "queued requests dropped because their deadline expired"),
		},
	}
	t.pool.New = func() any { return &op{ready: make(chan struct{}, 1)} }
	return t, nil
}

// start launches the worker. The ctx is the server's lifetime: when it
// ends the worker hard-stops, abandoning queued work (callers observe
// ErrStopped via the done channel).
func (t *tenant) start(ctx context.Context) {
	go t.run(ctx)
}

// run is the worker loop: the only goroutine that ever touches the
// fallback controller, so the controller needs no locking. A stop
// request drains the queue before exiting (graceful); ctx cancellation
// exits immediately (crash-style, what the snapshot is for).
func (t *tenant) run(ctx context.Context) {
	defer close(t.done)
	for {
		select {
		case o := <-t.queue:
			t.serve(o)
		case <-t.stopC:
			for {
				select {
				case o := <-t.queue:
					t.serve(o)
				default:
					return
				}
			}
		case <-ctx.Done():
			return
		}
	}
}

// stop asks the worker to drain and waits for it, bounded by ctx.
func (t *tenant) stop(ctx context.Context) error {
	t.draining.Store(true)
	t.stopOnce.Do(func() { close(t.stopC) })
	select {
	case <-t.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: tenant %s: drain: %w", t.cfg.Name, ctx.Err())
	}
}

// serve executes one op and signals its caller. The ready channel has
// capacity 1, so a caller that already gave up never blocks the worker.
func (t *tenant) serve(o *op) {
	t.busyAt.Store(time.Now().UnixNano())
	o.err = t.apply(o)
	t.busyAt.Store(0)
	o.ready <- struct{}{}
}

// apply is the op body, with the bulkhead's panic recovery: a panicking
// model costs the tenant a demotion (crashing is worse evidence than
// erring) and fails only this op — never the worker, never the process.
func (t *tenant) apply(o *op) (err error) {
	defer func() {
		if r := recover(); r != nil {
			t.m.panics.Inc()
			t.fc.Demote()
			err = fmt.Errorf("server: tenant %s: recovered decision-path panic: %v", t.cfg.Name, r)
		}
	}()
	if o.ctx != nil {
		if cerr := o.ctx.Err(); cerr != nil {
			t.m.shedLate.Inc()
			return ErrDeadline
		}
	}
	switch o.kind {
	case opDecide:
		to, derr := t.fc.TimeoutCtx(o.ctx, o.rate)
		if derr != nil {
			t.m.decideErr.Inc()
			return derr
		}
		o.timeout = to
		o.level = t.fc.Level()
		t.m.decideOK.Inc()
	case opObserve:
		t.fc.Observe(o.rate, o.observed)
		t.m.observes.Inc()
	case opState:
		demotions, promotions := t.fc.Counts()
		o.state = TenantSnapshot{
			Config:     t.cfg,
			Fallback:   t.fc.State(),
			Breaker:    t.breaker.Snapshot(),
			Ledger:     t.ledger.State(),
			Demotions:  demotions,
			Promotions: promotions,
		}
	}
	return nil
}

// stalled reports whether the worker has been inside one op longer
// than the stall budget.
func (t *tenant) stalled() bool {
	at := t.busyAt.Load()
	return at != 0 && time.Since(time.Unix(0, at)) > t.cfg.StallAfter
}

// submit enqueues an op, shedding instead of blocking: the queue is a
// bulkhead, not a buffer of unbounded patience.
func (t *tenant) submit(o *op) error {
	if t.draining.Load() {
		return ErrDraining
	}
	if t.stalled() {
		return ErrStalled
	}
	select {
	case t.queue <- o:
		return nil
	default:
		t.m.shedFull.Inc()
		return ErrQueueFull
	}
}

// await waits for a submitted op, bounded by the caller's ctx and the
// worker's lifetime. Only a caller that actually rendezvoused returns
// the op to the pool; an abandoned op is left to the collector.
func (t *tenant) await(ctx context.Context, o *op) (ok bool, err error) {
	select {
	case <-o.ready:
		return true, o.err
	case <-ctx.Done():
		return false, ctx.Err()
	case <-t.done:
		return false, ErrStopped
	}
}

// Decide routes one decision through the tenant's worker and returns
// the selected timeout and the tier that answered. Steady-state (a
// cached decision, no faults) this path performs zero allocations.
func (t *tenant) Decide(ctx context.Context, rate float64) (timeout float64, level online.Level, err error) {
	o := t.pool.Get().(*op)
	o.kind, o.ctx, o.rate = opDecide, ctx, rate
	if err := t.submit(o); err != nil {
		t.pool.Put(o)
		return 0, 0, err
	}
	ok, err := t.await(ctx, o)
	if !ok {
		return 0, 0, err
	}
	timeout, level = o.timeout, o.level
	o.ctx = nil
	t.pool.Put(o)
	return timeout, level, err
}

// ObserveRT feeds one observed response time into the tenant's health
// watchdogs, through the same queue as decisions.
func (t *tenant) ObserveRT(ctx context.Context, rate, observed float64) error {
	o := t.pool.Get().(*op)
	o.kind, o.ctx, o.rate, o.observed = opObserve, ctx, rate, observed
	if err := t.submit(o); err != nil {
		t.pool.Put(o)
		return err
	}
	ok, err := t.await(ctx, o)
	if !ok {
		return err
	}
	o.ctx = nil
	t.pool.Put(o)
	return err
}

// Snapshot captures the tenant's full crash-safety state through the
// worker queue, so the capture is consistent with the decision stream.
// After the worker has exited (post-drain) it reads directly — the
// worker is gone, so nothing races.
func (t *tenant) Snapshot(ctx context.Context) (TenantSnapshot, error) {
	select {
	case <-t.done:
		demotions, promotions := t.fc.Counts()
		return TenantSnapshot{
			Config:     t.cfg,
			Fallback:   t.fc.State(),
			Breaker:    t.breaker.Snapshot(),
			Ledger:     t.ledger.State(),
			Demotions:  demotions,
			Promotions: promotions,
		}, nil
	default:
	}
	o := t.pool.Get().(*op)
	o.kind, o.ctx = opState, ctx
	if err := t.submit(o); err != nil && err != ErrDraining {
		t.pool.Put(o)
		return TenantSnapshot{}, err
	} else if err == ErrDraining {
		// Draining still serves queued ops; bypass the admission check so
		// the final pre-exit snapshot can ride the queue.
		select {
		case t.queue <- o:
		default:
			t.pool.Put(o)
			return TenantSnapshot{}, ErrQueueFull
		}
	}
	ok, err := t.await(ctx, o)
	if !ok {
		return TenantSnapshot{}, err
	}
	snap := o.state
	o.ctx, o.state = nil, TenantSnapshot{}
	t.pool.Put(o)
	return snap, err
}

// restore loads a snapshot into a tenant whose worker has not started.
func (t *tenant) restore(snap TenantSnapshot) error {
	if err := t.fc.Restore(snap.Fallback); err != nil {
		return fmt.Errorf("server: tenant %s: %w", t.cfg.Name, err)
	}
	if err := t.breaker.Restore(snap.Breaker); err != nil {
		return fmt.Errorf("server: tenant %s: %w", t.cfg.Name, err)
	}
	if err := t.ledger.Restore(snap.Ledger); err != nil {
		return fmt.Errorf("server: tenant %s: %w", t.cfg.Name, err)
	}
	return nil
}

// Level reads the tenant's degradation level from its metrics registry
// (the worker owns the controller; the gauge is the lock-free view).
func (t *tenant) Level() online.Level {
	lvl, _ := t.reg.Value("mdsprint_online_level")
	return online.Level(int(lvl))
}

// model returns the named fault-injection target.
func (t *tenant) model(which string) (*SurfaceModel, error) {
	switch which {
	case "", "primary":
		return t.primary, nil
	case "fallback":
		return t.fallback, nil
	default:
		return nil, fmt.Errorf("server: tenant %s has no model %q (primary, fallback)", t.cfg.Name, which)
	}
}
