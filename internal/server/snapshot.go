package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mdsprint/internal/fault"
	"mdsprint/internal/online"
)

// snapshotVersion guards the on-disk format; a mismatch refuses the
// restore rather than misinterpreting fields.
const snapshotVersion = 1

// TenantSnapshot is one tenant's crash-safety state: the degradation
// plane, the breaker and the ledger continuation point. Restored into
// a freshly built tenant of the same config, the decision stream
// continues bit-identically (see the online snapshot tests).
type TenantSnapshot struct {
	Config     TenantConfig          `json:"config"`
	Fallback   online.FallbackState  `json:"fallback"`
	Breaker    fault.BreakerSnapshot `json:"breaker"`
	Ledger     online.LedgerState    `json:"ledger"`
	Demotions  int                   `json:"demotions"`
	Promotions int                   `json:"promotions"`
}

// Snapshot is the daemon's persisted state: every tenant that could be
// captured, keyed by name.
type Snapshot struct {
	Version int                       `json:"version"`
	Tenants map[string]TenantSnapshot `json:"tenants"`
}

// WriteSnapshot persists a snapshot atomically: write to a temp file
// in the same directory, fsync, rename. A crash mid-write leaves the
// previous snapshot intact — there is never a moment with a corrupt or
// partial snapshot at path.
func WriteSnapshot(path string, s Snapshot) error {
	s.Version = snapshotVersion
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("server: snapshot temp file: %w", err)
	}
	defer func() {
		//lint:ignore errdrop best-effort cleanup of an already-renamed (or abandoned) temp file
		_ = os.Remove(tmp.Name())
	}()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		//lint:ignore errdrop the write error is what matters
		_ = tmp.Close()
		return fmt.Errorf("server: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		//lint:ignore errdrop the sync error is what matters
		_ = tmp.Close()
		return fmt.Errorf("server: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("server: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("server: publishing snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads a snapshot; a missing file is not an error (first
// boot), reported as ok=false.
func ReadSnapshot(path string) (Snapshot, bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Snapshot{}, false, nil
	}
	if err != nil {
		return Snapshot{}, false, fmt.Errorf("server: reading snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, false, fmt.Errorf("server: decoding snapshot %s: %w", path, err)
	}
	if s.Version != snapshotVersion {
		return Snapshot{}, false, fmt.Errorf("server: snapshot %s is version %d, this build reads %d",
			path, s.Version, snapshotVersion)
	}
	return s, true, nil
}
