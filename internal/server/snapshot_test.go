package server

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

// driveDeterministic runs a fixed decide+observe script against a
// tenant — the same script on two servers must produce the same
// decision stream.
func driveDeterministic(t *testing.T, tn *tenant, start, steps int) {
	t.Helper()
	driveTenant(t, tn, start, steps)
}

// TestSnapshotKillRestoreBitIdenticalChain is the tentpole crash-safety
// assertion at daemon level: run a server, drain (snapshot), kill it,
// boot a second server from the snapshot, continue the workload — the
// ledger fingerprint chain must be bit-identical to a server that ran
// the whole workload uninterrupted.
func TestSnapshotKillRestoreBitIdenticalChain(t *testing.T) {
	const pre, post = 20, 20
	cfgs := testTenants("t1", "t2")

	// Reference: one uninterrupted server.
	ref := newTestServer(t, Options{Tenants: cfgs})
	for _, name := range []string{"t1", "t2"} {
		tn, _ := ref.lookup(name)
		driveDeterministic(t, tn, 0, pre+post)
	}

	// Crash path: serve, drain (final snapshot), kill, restore, continue.
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.json")
	ctx1, cancel1 := context.WithCancel(context.Background())
	s1, err := New(ctx1, Options{Tenants: cfgs, SnapshotPath: snapPath})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, name := range []string{"t1", "t2"} {
		tn, _ := s1.lookup(name)
		driveDeterministic(t, tn, 0, pre)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Second)
	if err := s1.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	dcancel()
	cancel1() // the kill

	s2 := newTestServer(t, Options{Tenants: cfgs, SnapshotPath: snapPath})
	for _, name := range []string{"t1", "t2"} {
		tn, _ := s2.lookup(name)
		driveDeterministic(t, tn, pre, post)
	}

	for _, name := range []string{"t1", "t2"} {
		rt, _ := ref.lookup(name)
		ct, _ := s2.lookup(name)
		if got, want := ct.ledger.Chain(), rt.ledger.Chain(); got != want {
			t.Fatalf("tenant %s: chain after kill+restore %s, uninterrupted %s", name, got, want)
		}
		if got, want := ct.Level(), rt.Level(); got != want {
			t.Fatalf("tenant %s: level after restore %v, uninterrupted %v", name, got, want)
		}
	}
}

// TestSnapshotRestoresDegradedTenant checks a tenant that crashed
// while demoted comes back demoted, with its breaker position intact.
func TestSnapshotRestoresDegradedTenant(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.json")
	cfgs := testTenants("a")

	s1 := newTestServer(t, Options{Tenants: cfgs, SnapshotPath: snapPath})
	tn, _ := s1.lookup("a")
	driveTenant(t, tn, 0, 3)
	tn.primary.SetFailing(true)
	if _, _, err := tn.Decide(context.Background(), 0.9); err != nil {
		t.Fatalf("decide during outage: %v", err)
	}
	wantLevel := tn.Level()
	wantBreaker := tn.breaker.State()
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s1.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	s2 := newTestServer(t, Options{Tenants: cfgs, SnapshotPath: snapPath})
	rt, _ := s2.lookup("a")
	if got := rt.Level(); got != wantLevel {
		t.Fatalf("restored level %v, want %v", got, wantLevel)
	}
	if got := rt.breaker.State(); got != wantBreaker {
		t.Fatalf("restored breaker %v, want %v", got, wantBreaker)
	}
}

// TestSnapshotPeriodicLoopWrites checks the background loop persists
// without being asked.
func TestSnapshotPeriodicLoopWrites(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.json")
	s := newTestServer(t, Options{
		Tenants:       testTenants("a"),
		SnapshotPath:  snapPath,
		SnapshotEvery: 20 * time.Millisecond,
	})
	tn, _ := s.lookup("a")
	driveTenant(t, tn, 0, 2)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok, _ := ReadSnapshot(snapPath); ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadSnapshotRejectsCorruption checks a truncated or versioned-off
// snapshot refuses to restore instead of silently starting fresh.
func TestReadSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if _, ok, err := ReadSnapshot(path); ok || err != nil {
		t.Fatalf("missing snapshot: ok=%v err=%v, want quiet first boot", ok, err)
	}
	writeFile(t, path, "{not json")
	if _, _, err := ReadSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot read without error")
	}
	writeFile(t, path, `{"version": 99, "tenants": {}}`)
	if _, _, err := ReadSnapshot(path); err == nil {
		t.Fatal("future-version snapshot read without error")
	}
}
