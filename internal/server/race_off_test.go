//go:build !race

package server

// raceEnabled mirrors the build's -race flag so allocation assertions
// (which the race runtime inflates) can skip themselves instead of
// flaking.
const raceEnabled = false
