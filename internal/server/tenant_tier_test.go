package server

import (
	"context"
	"testing"

	"mdsprint/internal/tier"
)

// TestTenantTierSpecWiring covers the TierSpec plumbing end to end: a
// bad spec fails tenant construction; a good one builds a per-tenant
// estimator whose answers surface in the tenant registry's
// mdsprint_tier_* metrics and whose per-decision provenance lands in
// the ledger records.
func TestTenantTierSpecWiring(t *testing.T) {
	if _, err := newTenant(TenantConfig{Name: "bad", TierSpec: "bound=nope"}); err == nil {
		t.Fatal("bad TierSpec accepted")
	}

	cfg := testTenants("a")
	cfg[0].TierSpec = "bound=0.1"
	s := newTestServer(t, Options{Tenants: cfg})
	tn, _ := s.lookup("a")
	ctx := context.Background()
	if _, _, err := tn.Decide(ctx, 0.6); err != nil {
		t.Fatal(err)
	}
	if v, ok := tn.reg.Value("mdsprint_tier_answers_total"); !ok || v == 0 {
		t.Fatalf("mdsprint_tier_answers_total = %v, %v: estimator metrics not in the tenant registry", v, ok)
	}
	recs := tn.ledger.Records()
	if len(recs) == 0 {
		t.Fatal("no decision records")
	}
	r := recs[len(recs)-1]
	if r.EstTier != tier.TierAnalytic.String() || r.EstQueries == 0 {
		t.Fatalf("record est_tier=%q est_queries=%d: want analytic-dominated provenance", r.EstTier, r.EstQueries)
	}

	// An untiered tenant's records carry no estimator provenance.
	plain := newTestServer(t, Options{Tenants: testTenants("p")})
	pt, _ := plain.lookup("p")
	if _, _, err := pt.Decide(ctx, 0.6); err != nil {
		t.Fatal(err)
	}
	if rs := pt.ledger.Records(); rs[len(rs)-1].EstTier != "" {
		t.Fatalf("untiered tenant stamped est_tier=%q", rs[len(rs)-1].EstTier)
	}
}
