package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGZeroSeedIsValid(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded RNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		if r.Float64Open() <= 0 {
			t.Fatal("Float64Open returned non-positive value")
		}
	}
}

func TestFloat64MeanAndVariance(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(3)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams matched %d/100 draws", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := NewRNG(10).Split()
	b := NewRNG(10).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}
