package dist

import (
	"math"
	"strings"
	"testing"
)

func TestParseDistValid(t *testing.T) {
	cases := []struct {
		spec string
		mean float64
	}{
		{"exp(2)", 0.5},
		{"EXP( 2 )", 0.5},
		{"det(3.5)", 3.5},
		{"uniform(1, 3)", 2},
		{"tpareto(1, 2, 10)", TruncatedPareto{Xm: 1, Alpha: 2, Max: 10}.Mean()},
		{"lognormal(4, 0.5)", 4},
		{"erlang(4, 2)", 2},
		{"hyperexp(5, 2)", 5},
		{"emp(1, 2, 3)", 2},
	}
	for _, c := range cases {
		d, err := ParseDist(c.spec)
		if err != nil {
			t.Errorf("ParseDist(%q): %v", c.spec, err)
			continue
		}
		if got := d.Mean(); !ApproxEqualT(got, c.mean, 1e-9) {
			t.Errorf("ParseDist(%q).Mean() = %v, want %v", c.spec, got, c.mean)
		}
	}
}

// ApproxEqualT mirrors stats.ApproxEqual without importing stats (which
// would cycle through this package's tests).
func ApproxEqualT(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestParseDistSampleable(t *testing.T) {
	specs := []string{
		"exp(1)", "det(2)", "uniform(0,1)", "pareto(1,2.5)",
		"tpareto(1,1,8)", "lognormal(3,1.2)", "erlang(3,1)",
		"hyperexp(2,3)", "emp(0.5,1.5)",
	}
	rng := NewRNG(7)
	for _, spec := range specs {
		d, err := ParseDist(spec)
		if err != nil {
			t.Fatalf("ParseDist(%q): %v", spec, err)
		}
		for i := 0; i < 100; i++ {
			v := d.Sample(rng)
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("ParseDist(%q).Sample() = %v", spec, v)
			}
		}
	}
}

func TestParseDistErrors(t *testing.T) {
	specs := []string{
		"", "exp", "exp(", "exp)", "exp()", "exp(0)", "exp(-1)", "exp(1,2)",
		"exp(NaN)", "exp(Inf)", "det(-1)", "uniform(3,1)", "uniform(-1,1)",
		"pareto(0,1)", "tpareto(2,1,1)", "lognormal(0,1)", "lognormal(1,-1)",
		"erlang(1.5,1)", "erlang(0,1)", "erlang(2000000,1)", "hyperexp(1,0.5)",
		"hyperexp(1,1e7)", "lognormal(1,1e7)", "emp()", "emp(-1)",
		"gauss(0,1)", "exp(1))", "exp(1x)",
	}
	for _, spec := range specs {
		if d, err := ParseDist(spec); err == nil {
			t.Errorf("ParseDist(%q) = %v, want error", spec, d)
		}
	}
}

func TestMustParseDistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseDist on bad spec did not panic")
		}
	}()
	MustParseDist("nope(1)")
}

func FuzzParseDist(f *testing.F) {
	for _, seed := range []string{
		"exp(1)", "det(2)", "uniform(0,1)", "pareto(1,2)", "tpareto(1,2,9)",
		"lognormal(3,0.5)", "erlang(2,4)", "hyperexp(1,2)", "emp(1,2,3)",
		"exp(-1)", "exp(1e308)", "emp(NaN)", "((((", "exp(0x1p10)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		d, err := ParseDist(spec) // must never panic
		if err != nil {
			return
		}
		if d == nil {
			t.Fatalf("ParseDist(%q): nil dist without error", spec)
		}
		// Every successfully parsed distribution must be usable: finite
		// non-NaN samples and a printable name. (+Inf means are legal for
		// heavy-tailed Pareto shapes.)
		if d.String() == "" {
			t.Fatalf("ParseDist(%q): empty String()", spec)
		}
		if m := d.Mean(); math.IsNaN(m) {
			t.Fatalf("ParseDist(%q): NaN mean", spec)
		}
		rng := NewRNG(1)
		for i := 0; i < 16; i++ {
			v := d.Sample(rng)
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("ParseDist(%q): sample %v", spec, v)
			}
		}
		// The spec name must round-trip to the family the parser claims.
		if !strings.Contains(spec, "(") {
			t.Fatalf("ParseDist(%q) accepted a spec without parentheses", spec)
		}
	})
}
