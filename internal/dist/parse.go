package dist

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

const (
	// maxCV bounds lognormal/hyperexp coefficients of variation: beyond
	// it the moment-matching constructions overflow (cv^2 past 2^53
	// collapses the hyperexponential slow branch to probability zero).
	maxCV = 1e6
	// maxErlangK bounds the stage count so Sample stays O(k) cheap.
	maxErlangK = 1e6
)

// ParseDist parses a distribution spec of the form name(arg1,arg2,...):
//
//	exp(rate)            exponential with the given rate
//	det(value)           deterministic point mass
//	uniform(lo,hi)       uniform on [lo, hi]
//	pareto(xm,alpha)     Pareto with scale xm and shape alpha
//	tpareto(xm,alpha,max) Pareto clamped at max
//	lognormal(mean,cv)   log-normal from mean and coefficient of variation
//	erlang(k,rate)       Erlang-k (k a positive integer)
//	hyperexp(mean,cv)    two-branch hyperexponential (cv >= 1)
//	emp(v1,v2,...)       empirical resampling of the listed values
//
// Names are case-insensitive and whitespace around tokens is ignored.
// All arguments are validated before any constructor runs, so ParseDist
// returns an error — never panics — on malformed or out-of-range input.
// It is the grammar behind command-line -arrival/-service flags and the
// FuzzParseDist fuzz target.
func ParseDist(spec string) (Dist, error) {
	s := strings.TrimSpace(spec)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("dist: spec %q: want name(args)", spec)
	}
	name := strings.ToLower(strings.TrimSpace(s[:open]))
	argStr := s[open+1 : len(s)-1]
	args, err := parseArgs(argStr)
	if err != nil {
		return nil, fmt.Errorf("dist: spec %q: %v", spec, err)
	}

	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("dist: spec %q: %s takes %d args, got %d", spec, name, n, len(args))
		}
		return nil
	}
	switch name {
	case "exp", "exponential":
		if err := arity(1); err != nil {
			return nil, err
		}
		if args[0] <= 0 {
			return nil, fmt.Errorf("dist: spec %q: rate must be positive", spec)
		}
		return NewExponential(args[0]), nil
	case "det", "deterministic":
		if err := arity(1); err != nil {
			return nil, err
		}
		if args[0] < 0 {
			return nil, fmt.Errorf("dist: spec %q: value must be non-negative", spec)
		}
		return Deterministic{Value: args[0]}, nil
	case "uniform":
		if err := arity(2); err != nil {
			return nil, err
		}
		if args[0] < 0 || args[1] < args[0] {
			return nil, fmt.Errorf("dist: spec %q: want 0 <= lo <= hi", spec)
		}
		return Uniform{Lo: args[0], Hi: args[1]}, nil
	case "pareto":
		if err := arity(2); err != nil {
			return nil, err
		}
		if args[0] <= 0 || args[1] <= 0 {
			return nil, fmt.Errorf("dist: spec %q: want xm > 0 and alpha > 0", spec)
		}
		return Pareto{Xm: args[0], Alpha: args[1]}, nil
	case "tpareto":
		if err := arity(3); err != nil {
			return nil, err
		}
		if args[0] <= 0 || args[1] <= 0 || args[2] < args[0] {
			return nil, fmt.Errorf("dist: spec %q: want xm > 0, alpha > 0, max >= xm", spec)
		}
		return TruncatedPareto{Xm: args[0], Alpha: args[1], Max: args[2]}, nil
	case "lognormal":
		if err := arity(2); err != nil {
			return nil, err
		}
		if args[0] <= 0 || args[1] < 0 || args[1] > maxCV {
			return nil, fmt.Errorf("dist: spec %q: want mean > 0 and 0 <= cv <= %g", spec, maxCV)
		}
		return LogNormalFromMeanCV(args[0], args[1]), nil
	case "erlang":
		if err := arity(2); err != nil {
			return nil, err
		}
		//lint:ignore floateq exact integrality test: k must be a whole number of stages, 2.0000001 is a spec error
		if args[0] < 1 || args[0] > maxErlangK || args[0] != math.Trunc(args[0]) || args[1] <= 0 {
			return nil, fmt.Errorf("dist: spec %q: want integer 1 <= k <= %g and rate > 0", spec, float64(maxErlangK))
		}
		return Erlang{K: int(args[0]), Rate: args[1]}, nil
	case "hyperexp", "hyperexponential":
		if err := arity(2); err != nil {
			return nil, err
		}
		if args[0] <= 0 || args[1] < 1 || args[1] > maxCV {
			return nil, fmt.Errorf("dist: spec %q: want mean > 0 and 1 <= cv <= %g", spec, maxCV)
		}
		return HyperexponentialFromMeanCV(args[0], args[1]), nil
	case "emp", "empirical":
		if len(args) == 0 {
			return nil, fmt.Errorf("dist: spec %q: emp needs at least one value", spec)
		}
		for _, v := range args {
			if v < 0 {
				return nil, fmt.Errorf("dist: spec %q: empirical values must be non-negative", spec)
			}
		}
		return NewEmpirical(args), nil
	default:
		return nil, fmt.Errorf("dist: spec %q: unknown distribution %q", spec, name)
	}
}

// MustParseDist is ParseDist for static specs; it panics on error.
func MustParseDist(spec string) Dist {
	d, err := ParseDist(spec)
	if err != nil {
		panic(err)
	}
	return d
}

// parseArgs splits and parses a comma-separated float list, rejecting
// NaN/Inf (which would poison every downstream mean and sample).
func parseArgs(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("arg %d: %v", i+1, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("arg %d: must be finite", i+1)
		}
		out[i] = v
	}
	return out, nil
}
