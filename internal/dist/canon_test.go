package dist

import (
	"bytes"
	"testing"
)

func mustCanon(t *testing.T, d Dist) []byte {
	t.Helper()
	b, err := AppendCanon(nil, d)
	if err != nil {
		t.Fatalf("AppendCanon(%v): %v", d, err)
	}
	if len(b) == 0 {
		t.Fatalf("AppendCanon(%v): empty encoding", d)
	}
	return b
}

func TestCanonEqualDistsEqualBytes(t *testing.T) {
	pairs := []struct {
		name string
		a, b Dist
	}{
		{"exp", NewExponential(2.5), NewExponential(2.5)},
		{"det", Deterministic{Value: 3}, Deterministic{Value: 3}},
		{"uniform", Uniform{Lo: 1, Hi: 2}, Uniform{Lo: 1, Hi: 2}},
		{"lognormal", LogNormalFromMeanCV(10, 0.3), LogNormalFromMeanCV(10, 0.3)},
		{"erlang", Erlang{K: 3, Rate: 2}, Erlang{K: 3, Rate: 2}},
		{"hyperexp", HyperexponentialFromMeanCV(4, 2), HyperexponentialFromMeanCV(4, 2)},
		{"empirical", NewEmpirical([]float64{1, 2, 3}), NewEmpirical([]float64{1, 2, 3})},
		{"pareto", ParetoForRate(0.5, 0.5, 10), ParetoForRate(0.5, 0.5, 10)},
		{"scaled", Scaled{Base: NewExponential(1), Factor: 2}, Scaled{Base: NewExponential(1), Factor: 2}},
		{"mixture",
			NewMixture([]float64{0.4, 0.6}, []Dist{NewExponential(1), Deterministic{Value: 2}}),
			NewMixture([]float64{0.4, 0.6}, []Dist{NewExponential(1), Deterministic{Value: 2}})},
	}
	for _, p := range pairs {
		if !bytes.Equal(mustCanon(t, p.a), mustCanon(t, p.b)) {
			t.Errorf("%s: equal distributions encode differently", p.name)
		}
	}
}

func TestCanonDistinguishesParamsAndTypes(t *testing.T) {
	ds := []Dist{
		NewExponential(1),
		NewExponential(2),
		Deterministic{Value: 1},
		Deterministic{Value: 2},
		Uniform{Lo: 0, Hi: 1},
		Uniform{Lo: 0, Hi: 2},
		Pareto{Xm: 1, Alpha: 0.5},
		TruncatedPareto{Xm: 1, Alpha: 0.5, Max: 10},
		LogNormal{Mu: 0, Sigma: 1},
		LogNormal{Mu: 0, Sigma: 2},
		Erlang{K: 2, Rate: 1},
		Erlang{K: 3, Rate: 1},
		NewHyperexponential([]float64{0.5, 0.5}, []float64{1, 2}),
		NewHyperexponential([]float64{0.5, 0.5}, []float64{1, 3}),
		NewEmpirical([]float64{1, 2}),
		NewEmpirical([]float64{1, 2, 3}),
		NewEmpirical([]float64{1, 2, 4}),
		Scaled{Base: NewExponential(1), Factor: 2},
		Scaled{Base: NewExponential(1), Factor: 3},
		NewMixture([]float64{1}, []Dist{NewExponential(1)}),
		NewSequence([]float64{1, 2}, 0),
	}
	seen := make(map[string]int)
	for i, d := range ds {
		key := string(mustCanon(t, d))
		if j, dup := seen[key]; dup {
			t.Errorf("distributions %d (%v) and %d (%v) share an encoding", i, d, j, ds[j])
		}
		seen[key] = i
	}
}

func TestCanonEmpiricalLengthPrefixPreventsAliasing(t *testing.T) {
	// Without a length prefix, Empirical{1,2}+Empirical{3} could alias
	// Empirical{1}+Empirical{2,3} when fingerprinting two distributions
	// back to back. The fixed-width length header must prevent that.
	a, err := AppendCanon(nil, NewEmpirical([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	a, err = AppendCanon(a, NewEmpirical([]float64{3}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := AppendCanon(nil, NewEmpirical([]float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	b, err = AppendCanon(b, NewEmpirical([]float64{2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("concatenated encodings alias across element boundaries")
	}
}

type unknownDist struct{}

func (unknownDist) Sample(*RNG) float64 { return 0 }
func (unknownDist) Mean() float64       { return 0 }
func (unknownDist) String() string      { return "unknown" }

func TestCanonUnknownTypeErrors(t *testing.T) {
	if _, err := AppendCanon(nil, unknownDist{}); err == nil {
		t.Fatal("unknown distribution type must refuse a canonical encoding")
	}
	// An unknown component buried in a mixture must surface too.
	mix := NewMixture([]float64{1}, []Dist{unknownDist{}})
	if _, err := AppendCanon(nil, mix); err == nil {
		t.Fatal("unknown mixture component must refuse a canonical encoding")
	}
}
