// Package dist provides deterministic pseudo-random number generation and
// the probability distributions used throughout the sprinting simulators:
// exponential, Pareto (plain and truncated), deterministic, uniform,
// log-normal, Erlang, hyperexponential, empirical, and mixtures.
//
// Everything in this package is seeded explicitly. Simulation experiments
// must be reproducible run-to-run, so no global RNG state is used anywhere
// in this repository.
package dist

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64 feeding an xoshiro256** core. It is not safe for concurrent
// use; give each goroutine its own RNG (see Split).
type RNG struct {
	s [4]uint64
	// cached spare normal variate for NormFloat64 (Box-Muller pairs).
	haveSpare bool
	spare     float64
}

// splitmix64 advances a 64-bit state and returns the next output value.
// It is used only to expand a user seed into the xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Two RNGs built from the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes r in place from seed, discarding all prior state
// (including the cached Box-Muller spare). A reseeded generator produces
// exactly the stream NewRNG(seed) would, so reusable simulator runners can
// replay replications without allocating a fresh RNG per run.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.haveSpare = false
	r.spare = 0
}

// Split derives an independent generator from r. The child stream is a
// deterministic function of r's current state, so a parent seeded the same
// way always yields the same children in the same order.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly zero. Several
// inverse-CDF transforms (exponential, Pareto) need a strictly positive
// uniform variate.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling, simplified: the modulo
	// bias for n << 2^64 is negligible for simulation purposes, but we keep
	// the rejection loop to stay exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// NormFloat64 returns a standard normal variate (Box-Muller transform).
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	u1 := r.Float64Open()
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.spare = mag * math.Sin(2*math.Pi*u2)
	r.haveSpare = true
	return mag * math.Cos(2*math.Pi*u2)
}

// Shuffle randomly permutes the first n elements using swap, mirroring
// math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
