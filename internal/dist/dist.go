package dist

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a one-dimensional probability distribution over non-negative
// values (times, rates). Implementations must be immutable after
// construction so they can be shared across goroutines; all randomness
// flows through the caller-supplied RNG.
type Dist interface {
	// Sample draws one variate.
	Sample(r *RNG) float64
	// Mean returns the distribution's expected value. Distributions with
	// an undefined mean (e.g. Pareto with alpha <= 1) return +Inf.
	Mean() float64
	// String names the distribution with its parameters.
	String() string
}

// Exponential is the exponential distribution with the given rate
// (mean = 1/Rate). It models Poisson arrival processes and memoryless
// service times (the M in M/M/1).
type Exponential struct {
	Rate float64
}

// NewExponential returns an exponential distribution with the given rate.
// It panics if rate <= 0.
func NewExponential(rate float64) Exponential {
	if rate <= 0 {
		panic(fmt.Sprintf("dist: exponential rate %v must be positive", rate))
	}
	return Exponential{Rate: rate}
}

func (d Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() / d.Rate }
func (d Exponential) Mean() float64         { return 1 / d.Rate }
func (d Exponential) String() string        { return fmt.Sprintf("Exp(rate=%.4g)", d.Rate) }

// Deterministic always returns Value. It models fixed service demands and
// constant-rate arrival processes (the D in G/D/1).
type Deterministic struct {
	Value float64
}

func (d Deterministic) Sample(*RNG) float64 { return d.Value }
func (d Deterministic) Mean() float64       { return d.Value }
func (d Deterministic) String() string      { return fmt.Sprintf("Det(%.4g)", d.Value) }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

func (d Uniform) Sample(r *RNG) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }
func (d Uniform) Mean() float64         { return (d.Lo + d.Hi) / 2 }
func (d Uniform) String() string        { return fmt.Sprintf("Uniform[%.4g,%.4g]", d.Lo, d.Hi) }

// Pareto is the (type I) Pareto distribution with scale Xm > 0 and shape
// Alpha > 0. The paper evaluates heavy-tailed arrivals with alpha = 0.5,
// whose mean is infinite; use TruncatedPareto to obtain a finite-rate
// arrival process with the same body shape.
type Pareto struct {
	Xm    float64
	Alpha float64
}

func (d Pareto) Sample(r *RNG) float64 {
	return d.Xm / math.Pow(r.Float64Open(), 1/d.Alpha)
}

func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

func (d Pareto) String() string { return fmt.Sprintf("Pareto(xm=%.4g,a=%.4g)", d.Xm, d.Alpha) }

// TruncatedPareto is a Pareto distribution capped at Max: samples above Max
// are clamped. Truncation gives heavy-tailed interarrival processes a finite
// mean so a target arrival rate can be honoured.
type TruncatedPareto struct {
	Xm    float64
	Alpha float64
	Max   float64
}

func (d TruncatedPareto) Sample(r *RNG) float64 {
	v := d.Xm / math.Pow(r.Float64Open(), 1/d.Alpha)
	if v > d.Max {
		return d.Max
	}
	return v
}

// Mean returns the expected value of the clamped variate,
// E[min(X, Max)] for X ~ Pareto(xm, alpha).
func (d TruncatedPareto) Mean() float64 {
	if d.Max <= d.Xm {
		return d.Max
	}
	ratio := d.Xm / d.Max
	// Near alpha=1 the closed form below cancels catastrophically; the
	// log-form limit is both the exact alpha=1 value and the stable
	// approximation in its neighbourhood. (Epsilon math rather than
	// stats.ApproxEqual: stats's internal tests import dist, so dist
	// cannot import stats without a test import cycle.)
	if math.Abs(d.Alpha-1) <= 1e-9 {
		// E[min(X, M)] = xm (1 + ln(M/xm)).
		return d.Xm * (1 + math.Log(d.Max/d.Xm))
	}
	// Integral of the survival function from 0 to Max.
	return d.Xm*d.Alpha/(d.Alpha-1) - d.Max*math.Pow(ratio, d.Alpha)/(d.Alpha-1)
}

func (d TruncatedPareto) String() string {
	return fmt.Sprintf("TruncPareto(xm=%.4g,a=%.4g,max=%.4g)", d.Xm, d.Alpha, d.Max)
}

// ParetoForRate returns a truncated Pareto interarrival distribution with
// shape alpha whose mean equals 1/rate. The cap is fixed at capFactor times
// the mean (a burstiness knob); the scale xm is solved numerically.
func ParetoForRate(rate, alpha, capFactor float64) TruncatedPareto {
	if rate <= 0 || alpha <= 0 || capFactor <= 1 {
		panic("dist: ParetoForRate requires rate>0, alpha>0, capFactor>1")
	}
	target := 1 / rate
	maxV := capFactor * target
	// Mean is monotonically increasing in xm; bisect on xm in (0, maxV).
	lo, hi := 0.0, maxV
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		m := TruncatedPareto{Xm: mid, Alpha: alpha, Max: maxV}.Mean()
		if m < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return TruncatedPareto{Xm: (lo + hi) / 2, Alpha: alpha, Max: maxV}
}

// LogNormal is the log-normal distribution parameterised by the mean Mu and
// standard deviation Sigma of the underlying normal. It models service-time
// distributions with moderate right skew, the common shape for query
// processing times.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

func (d LogNormal) Sample(r *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

func (d LogNormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

func (d LogNormal) String() string {
	return fmt.Sprintf("LogNormal(mu=%.4g,sigma=%.4g)", d.Mu, d.Sigma)
}

// LogNormalFromMeanCV builds a log-normal with the given mean and
// coefficient of variation (stddev/mean). It panics on non-positive mean or
// negative cv; cv == 0 degenerates to Deterministic-like behaviour with a
// tiny sigma.
func LogNormalFromMeanCV(mean, cv float64) LogNormal {
	if mean <= 0 || cv < 0 {
		panic("dist: LogNormalFromMeanCV requires mean>0, cv>=0")
	}
	if cv <= 1e-9 {
		cv = 1e-9
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return LogNormal{Mu: mu, Sigma: math.Sqrt(sigma2)}
}

// Erlang is the Erlang-k distribution: the sum of K independent exponential
// stages each with the given Rate. Mean = K/Rate. It models low-variance
// service processes (CV = 1/sqrt(K)).
type Erlang struct {
	K    int
	Rate float64
}

func (d Erlang) Sample(r *RNG) float64 {
	sum := 0.0
	for i := 0; i < d.K; i++ {
		sum += r.ExpFloat64()
	}
	return sum / d.Rate
}

func (d Erlang) Mean() float64  { return float64(d.K) / d.Rate }
func (d Erlang) String() string { return fmt.Sprintf("Erlang(k=%d,rate=%.4g)", d.K, d.Rate) }

// Hyperexponential mixes exponential branches: with probability P[i] a
// sample is drawn from an exponential with rate Rates[i]. It models
// high-variance service processes (CV > 1), such as bimodal query mixes.
type Hyperexponential struct {
	P     []float64
	Rates []float64
}

// NewHyperexponential validates and returns a hyperexponential distribution.
func NewHyperexponential(p, rates []float64) Hyperexponential {
	if len(p) != len(rates) || len(p) == 0 {
		panic("dist: hyperexponential branch count mismatch")
	}
	sum := 0.0
	for i, pi := range p {
		if pi < 0 || rates[i] <= 0 {
			panic("dist: hyperexponential requires p>=0 and rates>0")
		}
		sum += pi
	}
	if math.Abs(sum-1) > 1e-9 {
		panic("dist: hyperexponential probabilities must sum to 1")
	}
	return Hyperexponential{P: p, Rates: rates}
}

func (d Hyperexponential) Sample(r *RNG) float64 {
	u := r.Float64()
	acc := 0.0
	for i, p := range d.P {
		acc += p
		if u < acc {
			return r.ExpFloat64() / d.Rates[i]
		}
	}
	return r.ExpFloat64() / d.Rates[len(d.Rates)-1]
}

func (d Hyperexponential) Mean() float64 {
	m := 0.0
	for i, p := range d.P {
		m += p / d.Rates[i]
	}
	return m
}

func (d Hyperexponential) String() string {
	return fmt.Sprintf("HyperExp(%d branches)", len(d.P))
}

// HyperexponentialFromMeanCV builds a two-branch balanced-means
// hyperexponential with the given mean and coefficient of variation
// (cv >= 1). It is the standard moment-matching construction for bursty
// arrival processes: with probability p1 draw from a fast exponential,
// otherwise from a slow one, p_i / r_i balanced so both branches
// contribute the same mean.
func HyperexponentialFromMeanCV(mean, cv float64) Hyperexponential {
	if mean <= 0 || cv < 1 {
		panic(fmt.Sprintf("dist: HyperexponentialFromMeanCV(mean=%v, cv=%v) requires mean>0, cv>=1", mean, cv))
	}
	c2 := cv * cv
	p1 := (1 + math.Sqrt((c2-1)/(c2+1))) / 2
	p2 := 1 - p1
	return NewHyperexponential(
		[]float64{p1, p2},
		[]float64{2 * p1 / mean, 2 * p2 / mean},
	)
}

// Empirical resamples uniformly from observed values. The profiler feeds
// measured service times into the queue simulator through this type.
type Empirical struct {
	values []float64
	mean   float64
}

// NewEmpirical copies values into an empirical distribution. It panics on an
// empty sample set.
func NewEmpirical(values []float64) *Empirical {
	if len(values) == 0 {
		panic("dist: empirical distribution needs at least one value")
	}
	cp := make([]float64, len(values))
	copy(cp, values)
	sum := 0.0
	for _, v := range cp {
		sum += v
	}
	return &Empirical{values: cp, mean: sum / float64(len(cp))}
}

func (d *Empirical) Sample(r *RNG) float64 { return d.values[r.Intn(len(d.values))] }
func (d *Empirical) Mean() float64         { return d.mean }
func (d *Empirical) String() string        { return fmt.Sprintf("Empirical(n=%d)", len(d.values)) }

// Len returns the number of underlying observations.
func (d *Empirical) Len() int { return len(d.values) }

// Quantile returns the q-th quantile (0 <= q <= 1) of the underlying sample.
func (d *Empirical) Quantile(q float64) float64 {
	sorted := make([]float64, len(d.values))
	copy(sorted, d.values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mixture draws from component i with probability Weights[i]. It models
// query mixes where each class has its own service-time distribution.
type Mixture struct {
	Weights    []float64
	Components []Dist
}

// NewMixture validates weights (must sum to 1) and returns a mixture.
func NewMixture(weights []float64, components []Dist) Mixture {
	if len(weights) != len(components) || len(weights) == 0 {
		panic("dist: mixture weights/components mismatch")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dist: mixture weights must be non-negative")
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		panic("dist: mixture weights must sum to 1")
	}
	return Mixture{Weights: weights, Components: components}
}

func (d Mixture) Sample(r *RNG) float64 {
	u := r.Float64()
	acc := 0.0
	for i, w := range d.Weights {
		acc += w
		if u < acc {
			return d.Components[i].Sample(r)
		}
	}
	return d.Components[len(d.Components)-1].Sample(r)
}

func (d Mixture) Mean() float64 {
	m := 0.0
	for i, w := range d.Weights {
		m += w * d.Components[i].Mean()
	}
	return m
}

func (d Mixture) String() string { return fmt.Sprintf("Mixture(%d)", len(d.Components)) }

// Sequence replays a fixed list of values in order, cycling, each
// multiplied by a uniform jitter in [1-Jitter, 1+Jitter]. It scripts
// arrival patterns (e.g. Figure 1's idle-start-then-burst trace) while
// keeping run-to-run variety. Unlike the other distributions, Sequence is
// stateful: create one per simulation run and do not share across
// goroutines.
type Sequence struct {
	values []float64
	jitter float64
	mean   float64
	idx    int
}

// NewSequence builds a cycling sequence with the given relative jitter
// (0 <= jitter < 1).
func NewSequence(values []float64, jitter float64) *Sequence {
	if len(values) == 0 || jitter < 0 || jitter >= 1 {
		panic("dist: NewSequence requires values and jitter in [0,1)")
	}
	cp := append([]float64(nil), values...)
	sum := 0.0
	for _, v := range cp {
		if v < 0 {
			panic("dist: sequence values must be non-negative")
		}
		sum += v
	}
	return &Sequence{values: cp, jitter: jitter, mean: sum / float64(len(cp))}
}

func (d *Sequence) Sample(r *RNG) float64 {
	v := d.values[d.idx%len(d.values)]
	d.idx++
	if d.jitter > 0 {
		v *= 1 - d.jitter + 2*d.jitter*r.Float64()
	}
	return v
}

func (d *Sequence) Mean() float64  { return d.mean }
func (d *Sequence) String() string { return fmt.Sprintf("Sequence(n=%d)", len(d.values)) }

// Scaled multiplies samples of Base by Factor. Speeding a workload up by s
// is Scaled{Base, 1/s} on its service times.
type Scaled struct {
	Base   Dist
	Factor float64
}

func (d Scaled) Sample(r *RNG) float64 { return d.Base.Sample(r) * d.Factor }
func (d Scaled) Mean() float64         { return d.Base.Mean() * d.Factor }
func (d Scaled) String() string        { return fmt.Sprintf("%.4g*%s", d.Factor, d.Base) }
