package dist

import (
	"math"
	"testing"
)

// TestSecondMomentAgainstSampling verifies every closed-form second
// moment against a Monte-Carlo estimate from the distribution's own
// Sample — the moments feed the Pollaczek–Khinchine surrogate, so a
// wrong one silently corrupts analytic-tier answers.
func TestSecondMomentAgainstSampling(t *testing.T) {
	cases := []struct {
		name string
		d    Dist
		tol  float64
	}{
		{"exp", NewExponential(0.8), 0.03},
		{"det", Deterministic{Value: 3.5}, 1e-12},
		{"uniform", Uniform{Lo: 1, Hi: 4}, 0.02},
		{"erlang", Erlang{K: 4, Rate: 2}, 0.02},
		{"lognormal", LogNormalFromMeanCV(2, 0.5), 0.04},
		{"hyperexp", HyperexponentialFromMeanCV(1, 2), 0.08},
		{"pareto", Pareto{Xm: 1, Alpha: 4}, 0.05},
		{"tpareto", TruncatedPareto{Xm: 1, Alpha: 1.5, Max: 20}, 0.05},
		{"tpareto-alpha2", TruncatedPareto{Xm: 1, Alpha: 2, Max: 50}, 0.06},
		{"empirical", NewEmpirical([]float64{1, 2, 2, 5, 9}), 0.03},
		{"scaled", Scaled{Base: NewExponential(1), Factor: 2.5}, 0.03},
		{"mixture", NewMixture([]float64{0.3, 0.7}, []Dist{NewExponential(1), Deterministic{Value: 2}}), 0.03},
		{"sequence", NewSequence([]float64{1, 2, 3}, 0.2), 0.02},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, ok := SecondMoment(tc.d)
			if !ok {
				t.Fatalf("SecondMoment(%s) not available", tc.d)
			}
			var rng RNG
			rng.Reseed(7)
			const n = 400000
			sum := 0.0
			for i := 0; i < n; i++ {
				v := tc.d.Sample(&rng)
				sum += v * v
			}
			got := sum / n
			if rel := math.Abs(got-want) / want; rel > tc.tol {
				t.Errorf("%s: sampled E[X^2] %.5g vs closed form %.5g (rel err %.3f > %.3f)",
					tc.d, got, want, rel, tc.tol)
			}
		})
	}
}

// TestSecondMomentDivergent pins the heavy-tail contract: Pareto with
// alpha <= 2 reports +Inf (trustworthy, but unusable for mean-wait
// formulas), and propagation through Scaled keeps it infinite.
func TestSecondMomentDivergent(t *testing.T) {
	m2, ok := SecondMoment(Pareto{Xm: 1, Alpha: 1.5})
	if !ok || !math.IsInf(m2, 1) {
		t.Fatalf("Pareto(alpha=1.5) second moment = %v, %v; want +Inf, true", m2, ok)
	}
	m2, ok = SecondMoment(Scaled{Base: Pareto{Xm: 1, Alpha: 2}, Factor: 3})
	if !ok || !math.IsInf(m2, 1) {
		t.Fatalf("scaled Pareto(alpha=2) second moment = %v, %v; want +Inf, true", m2, ok)
	}
}

// TestSecondMomentUnavailable pins the ok=false path for wrappers whose
// component lacks a closed form.
func TestSecondMomentUnavailable(t *testing.T) {
	unknown := Mixture{Weights: []float64{1}, Components: []Dist{fakeDist{}}}
	if _, ok := SecondMoment(unknown); ok {
		t.Fatal("mixture over an unknown component must report ok=false")
	}
	if _, ok := SecondMoment(fakeDist{}); ok {
		t.Fatal("unknown distribution must report ok=false")
	}
}

// fakeDist is a catalog outsider with no second moment.
type fakeDist struct{}

func (fakeDist) Sample(*RNG) float64 { return 1 }
func (fakeDist) Mean() float64       { return 1 }
func (fakeDist) String() string      { return "fake" }
