package dist

import "math"

// This file gives the catalog distributions their second moment E[X^2],
// the ingredient the Pollaczek–Khinchine M/G/1 closed form needs on top
// of the mean (internal/queuesim/analytic). Distributions whose second
// moment is undefined or infinite (Pareto with alpha <= 2) report +Inf;
// distributions with no tractable form simply don't implement the
// method and SecondMoment reports ok=false, which analytic surrogates
// treat as "out of applicability" rather than guessing.

// secondMomenter is implemented by distributions with a known E[X^2].
type secondMomenter interface {
	SecondMoment() float64
}

// SecondMoment returns E[X^2] for d when a closed or precomputed form
// exists. The boolean reports whether the value is trustworthy; +Inf
// with ok=true means the moment genuinely diverges (heavy tails), which
// callers must treat as unusable for mean-wait formulas.
func SecondMoment(d Dist) (float64, bool) {
	switch v := d.(type) {
	case Scaled:
		m2, ok := SecondMoment(v.Base)
		return v.Factor * v.Factor * m2, ok
	case Mixture:
		m2 := 0.0
		for i, w := range v.Weights {
			c, ok := SecondMoment(v.Components[i])
			if !ok {
				return 0, false
			}
			m2 += w * c
		}
		return m2, true
	}
	if sm, ok := d.(secondMomenter); ok {
		return sm.SecondMoment(), true
	}
	return 0, false
}

// SecondMoment returns E[X^2] = 2/rate^2.
func (d Exponential) SecondMoment() float64 { return 2 / (d.Rate * d.Rate) }

// SecondMoment returns Value^2 (a point mass has no variance).
func (d Deterministic) SecondMoment() float64 { return d.Value * d.Value }

// SecondMoment returns (Lo^2 + Lo*Hi + Hi^2)/3.
func (d Uniform) SecondMoment() float64 {
	return (d.Lo*d.Lo + d.Lo*d.Hi + d.Hi*d.Hi) / 3
}

// SecondMoment returns K(K+1)/rate^2, the Erlang-k second moment.
func (d Erlang) SecondMoment() float64 {
	k := float64(d.K)
	return k * (k + 1) / (d.Rate * d.Rate)
}

// SecondMoment returns exp(2*Mu + 2*Sigma^2).
func (d LogNormal) SecondMoment() float64 {
	return math.Exp(2*d.Mu + 2*d.Sigma*d.Sigma)
}

// SecondMoment returns sum_i P[i] * 2/Rates[i]^2 (each branch is
// exponential).
func (d Hyperexponential) SecondMoment() float64 {
	m2 := 0.0
	for i, p := range d.P {
		m2 += p * 2 / (d.Rates[i] * d.Rates[i])
	}
	return m2
}

// SecondMoment returns alpha*xm^2/(alpha-2), or +Inf when alpha <= 2
// (the tail is too heavy for a finite second moment).
func (d Pareto) SecondMoment() float64 {
	if d.Alpha <= 2 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm * d.Xm / (d.Alpha - 2)
}

// SecondMoment returns E[min(X, Max)^2] for X ~ Pareto(xm, alpha):
// truncation always keeps the moment finite. Derived by integrating the
// survival function, E[Y^2] = 2 * int_0^M t * P(X > t) dt with
// P(X > t) = 1 for t < xm and (xm/t)^alpha above.
func (d TruncatedPareto) SecondMoment() float64 {
	if d.Max <= d.Xm {
		return d.Max * d.Max
	}
	xm2 := d.Xm * d.Xm
	// Near alpha=2 the closed form cancels; the log-form limit is the
	// exact alpha=2 value and the stable neighbourhood approximation
	// (same epsilon treatment as TruncatedPareto.Mean).
	if math.Abs(d.Alpha-2) <= 1e-9 {
		return xm2 * (1 + 2*math.Log(d.Max/d.Xm))
	}
	// xm^2 + 2*xm^alpha * [t^(2-alpha)/(2-alpha)] from xm to Max.
	pow := math.Pow(d.Xm/d.Max, d.Alpha)
	return xm2 + 2*(d.Max*d.Max*pow-xm2)/(2-d.Alpha)
}

// SecondMoment returns the mean of squares of the underlying sample —
// exact for the resampling process the simulator draws from.
func (d *Empirical) SecondMoment() float64 {
	sum := 0.0
	for _, v := range d.values {
		sum += v * v
	}
	return sum / float64(len(d.values))
}

// SecondMoment returns the cycle's mean of squares scaled by the
// jitter's own second moment: samples are v*U with U ~
// Uniform[1-Jitter, 1+Jitter], so E[(vU)^2] = v^2 * (1 + Jitter^2/3).
func (d *Sequence) SecondMoment() float64 {
	sum := 0.0
	for _, v := range d.values {
		sum += v * v
	}
	return sum / float64(len(d.values)) * (1 + d.jitter*d.jitter/3)
}
