package dist

import (
	"math"
	"strings"
	"testing"
)

func TestSequenceCyclesInOrder(t *testing.T) {
	d := NewSequence([]float64{1, 2, 3}, 0)
	r := NewRNG(1)
	want := []float64{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		if got := d.Sample(r); got != w {
			t.Fatalf("sample %d = %v, want %v", i, got, w)
		}
	}
	if d.Mean() != 2 {
		t.Fatalf("mean %v, want 2", d.Mean())
	}
}

func TestSequenceJitterBounds(t *testing.T) {
	d := NewSequence([]float64{10}, 0.2)
	r := NewRNG(5)
	varied := false
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 8-1e-9 || v > 12+1e-9 {
			t.Fatalf("jittered sample %v outside [8,12]", v)
		}
		if math.Abs(v-10) > 0.01 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter produced no variation")
	}
}

func TestSequenceValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":     func() { NewSequence(nil, 0) },
		"jitter>=1": func() { NewSequence([]float64{1}, 1) },
		"negative":  func() { NewSequence([]float64{-1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHyperexponentialFromMeanCV(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{
		{10, 1}, {50, 2}, {3, 3.5},
	} {
		d := HyperexponentialFromMeanCV(tc.mean, tc.cv)
		if m := d.Mean(); math.Abs(m-tc.mean)/tc.mean > 1e-9 {
			t.Errorf("mean %v cv %v: analytic mean %v", tc.mean, tc.cv, m)
		}
		// Empirical mean and CV.
		r := NewRNG(11)
		const n = 400000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := d.Sample(r)
			sum += v
			sumsq += v * v
		}
		mean := sum / n
		cv := math.Sqrt(sumsq/n-mean*mean) / mean
		if math.Abs(mean-tc.mean)/tc.mean > 0.03 {
			t.Errorf("mean %v cv %v: sample mean %v", tc.mean, tc.cv, mean)
		}
		if math.Abs(cv-tc.cv)/tc.cv > 0.05 {
			t.Errorf("mean %v cv %v: sample cv %v", tc.mean, tc.cv, cv)
		}
	}
}

func TestHyperexponentialFromMeanCVValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { HyperexponentialFromMeanCV(0, 2) },
		func() { HyperexponentialFromMeanCV(10, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStringMethodsNamed(t *testing.T) {
	cases := map[string]Dist{
		"Exp":       NewExponential(2),
		"Det":       Deterministic{Value: 1},
		"Uniform":   Uniform{Lo: 0, Hi: 1},
		"Pareto":    Pareto{Xm: 1, Alpha: 2},
		"TruncPare": TruncatedPareto{Xm: 1, Alpha: 0.5, Max: 10},
		"LogNormal": LogNormal{Mu: 0, Sigma: 1},
		"Erlang":    Erlang{K: 2, Rate: 1},
		"HyperExp":  NewHyperexponential([]float64{0.5, 0.5}, []float64{1, 2}),
		"Empirical": NewEmpirical([]float64{1, 2}),
		"Mixture":   NewMixture([]float64{1}, []Dist{Deterministic{Value: 1}}),
		"Sequence":  NewSequence([]float64{1}, 0),
		"*":         Scaled{Base: Deterministic{Value: 1}, Factor: 2},
	}
	for want, d := range cases {
		if !strings.Contains(d.String(), want) {
			t.Errorf("%T.String() = %q, want substring %q", d, d.String(), want)
		}
	}
}

func TestEmpiricalLen(t *testing.T) {
	if got := NewEmpirical([]float64{1, 2, 3}).Len(); got != 3 {
		t.Fatalf("Len %d, want 3", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"exp rate 0":       func() { NewExponential(0) },
		"empirical empty":  func() { NewEmpirical(nil) },
		"mixture mismatch": func() { NewMixture([]float64{1}, nil) },
		"mixture bad sum":  func() { NewMixture([]float64{0.5}, []Dist{Deterministic{Value: 1}}) },
		"lognormal bad":    func() { LogNormalFromMeanCV(-1, 0.5) },
		"pareto-rate bad":  func() { ParetoForRate(0, 0.5, 50) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
