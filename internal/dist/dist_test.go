package dist

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleMean draws n variates and returns their average.
func sampleMean(d Dist, seed uint64, n int) float64 {
	r := NewRNG(seed)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

// checkMean asserts that the empirical mean of d converges to d.Mean()
// within tol (relative).
func checkMean(t *testing.T, d Dist, tol float64) {
	t.Helper()
	want := d.Mean()
	got := sampleMean(d, 1234, 300000)
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s: sample mean %v, analytic mean %v (tol %v)", d, got, want, tol)
	}
}

func TestExponentialMean(t *testing.T)   { checkMean(t, NewExponential(2.5), 0.02) }
func TestDeterministicMean(t *testing.T) { checkMean(t, Deterministic{Value: 3.7}, 1e-9) }
func TestUniformMean(t *testing.T)       { checkMean(t, Uniform{Lo: 2, Hi: 8}, 0.02) }
func TestLogNormalMean(t *testing.T)     { checkMean(t, LogNormal{Mu: 1, Sigma: 0.5}, 0.02) }
func TestErlangMean(t *testing.T)        { checkMean(t, Erlang{K: 4, Rate: 2}, 0.02) }
func TestTruncatedParetoMean(t *testing.T) {
	checkMean(t, TruncatedPareto{Xm: 1, Alpha: 1.5, Max: 100}, 0.03)
}
func TestParetoFiniteMean(t *testing.T) { checkMean(t, Pareto{Xm: 2, Alpha: 3}, 0.02) }

func TestParetoInfiniteMean(t *testing.T) {
	if m := (Pareto{Xm: 1, Alpha: 0.5}).Mean(); !math.IsInf(m, 1) {
		t.Fatalf("Pareto alpha<=1 mean = %v, want +Inf", m)
	}
}

func TestTruncatedParetoHeavyTailMean(t *testing.T) {
	// Even with alpha = 0.5 the truncated version must have a finite,
	// accurate analytic mean.
	d := TruncatedPareto{Xm: 0.1, Alpha: 0.5, Max: 20}
	got := sampleMean(d, 99, 500000)
	want := d.Mean()
	if math.IsInf(want, 0) || math.Abs(got-want)/want > 0.03 {
		t.Fatalf("truncated heavy-tail: sample mean %v vs analytic %v", got, want)
	}
}

func TestTruncatedParetoAlphaOne(t *testing.T) {
	d := TruncatedPareto{Xm: 1, Alpha: 1, Max: 50}
	got := sampleMean(d, 7, 500000)
	want := d.Mean()
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("alpha=1 truncated pareto: sample %v vs analytic %v", got, want)
	}
}

func TestTruncatedParetoSamplesBounded(t *testing.T) {
	d := TruncatedPareto{Xm: 1, Alpha: 0.5, Max: 10}
	r := NewRNG(5)
	for i := 0; i < 100000; i++ {
		v := d.Sample(r)
		if v < d.Xm || v > d.Max {
			t.Fatalf("sample %v outside [%v,%v]", v, d.Xm, d.Max)
		}
	}
}

func TestParetoForRateHitsTargetRate(t *testing.T) {
	for _, rate := range []float64{0.1, 1, 10, 123.4} {
		d := ParetoForRate(rate, 0.5, 50)
		if m := d.Mean(); math.Abs(m-1/rate)/(1/rate) > 1e-6 {
			t.Errorf("rate %v: mean %v, want %v", rate, m, 1/rate)
		}
	}
}

func TestParetoForRateProperty(t *testing.T) {
	f := func(rRaw uint16) bool {
		rate := float64(rRaw%1000)/100 + 0.01
		d := ParetoForRate(rate, ParetoAlpha, 50)
		return math.Abs(d.Mean()-1/rate)/(1/rate) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalFromMeanCV(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{
		{10, 0.25}, {100, 0.5}, {3.5, 1.0}, {42, 0},
	} {
		d := LogNormalFromMeanCV(tc.mean, tc.cv)
		if math.Abs(d.Mean()-tc.mean)/tc.mean > 1e-9 {
			t.Errorf("mean %v cv %v: analytic mean %v", tc.mean, tc.cv, d.Mean())
		}
		got := sampleMean(d, 21, 300000)
		if math.Abs(got-tc.mean)/tc.mean > 0.03 {
			t.Errorf("mean %v cv %v: sample mean %v", tc.mean, tc.cv, got)
		}
	}
}

func TestLogNormalCVIsHonoured(t *testing.T) {
	d := LogNormalFromMeanCV(50, 0.4)
	r := NewRNG(31)
	const n = 300000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if cv := sd / mean; math.Abs(cv-0.4) > 0.02 {
		t.Fatalf("empirical CV %v, want 0.4", cv)
	}
}

func TestHyperexponentialMean(t *testing.T) {
	d := NewHyperexponential([]float64{0.3, 0.7}, []float64{0.5, 5})
	checkMean(t, d, 0.02)
}

func TestHyperexponentialValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch": func() { NewHyperexponential([]float64{1}, []float64{1, 2}) },
		"bad sum":         func() { NewHyperexponential([]float64{0.5, 0.4}, []float64{1, 2}) },
		"negative p":      func() { NewHyperexponential([]float64{-0.5, 1.5}, []float64{1, 2}) },
		"zero rate":       func() { NewHyperexponential([]float64{0.5, 0.5}, []float64{1, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEmpiricalResampling(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	d := NewEmpirical(vals)
	checkMean(t, d, 0.02)
	r := NewRNG(8)
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		seen[v] = true
		found := false
		for _, x := range vals {
			if v == x {
				found = true
			}
		}
		if !found {
			t.Fatalf("sample %v not in source set", v)
		}
	}
	if len(seen) != len(vals) {
		t.Fatalf("only %d/%d source values ever sampled", len(seen), len(vals))
	}
}

func TestEmpiricalCopiesInput(t *testing.T) {
	vals := []float64{1, 2, 3}
	d := NewEmpirical(vals)
	vals[0] = 1000
	if d.Mean() != 2 {
		t.Fatalf("empirical mean %v changed by caller mutation", d.Mean())
	}
}

func TestEmpiricalQuantile(t *testing.T) {
	d := NewEmpirical([]float64{5, 1, 3, 2, 4})
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := d.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMixtureMean(t *testing.T) {
	d := NewMixture(
		[]float64{0.4, 0.6},
		[]Dist{NewExponential(1), Deterministic{Value: 10}},
	)
	checkMean(t, d, 0.02)
}

func TestScaled(t *testing.T) {
	base := Deterministic{Value: 8}
	d := Scaled{Base: base, Factor: 0.25}
	if d.Mean() != 2 {
		t.Fatalf("scaled mean %v, want 2", d.Mean())
	}
	if v := d.Sample(NewRNG(1)); v != 2 {
		t.Fatalf("scaled sample %v, want 2", v)
	}
}

func TestForRateFamilies(t *testing.T) {
	for _, kind := range Kinds() {
		d := ForRate(kind, 4)
		if m := d.Mean(); math.Abs(m-0.25)/0.25 > 1e-5 {
			t.Errorf("%s: mean interarrival %v, want 0.25", kind, m)
		}
	}
}

func TestForRateUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	ForRate(Kind("weibull"), 1)
}

func TestForRateNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 0 did not panic")
		}
	}()
	ForRate(KindExponential, 0)
}

// TestExponentialMemorylessTail checks P(X > a+b | X > a) == P(X > b)
// empirically, the defining property of the exponential distribution.
func TestExponentialMemorylessTail(t *testing.T) {
	d := NewExponential(1)
	r := NewRNG(17)
	const n = 400000
	a, b := 0.7, 0.9
	var gtA, gtAB, gtB int
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v > a {
			gtA++
			if v > a+b {
				gtAB++
			}
		}
		if v > b {
			gtB++
		}
	}
	condProb := float64(gtAB) / float64(gtA)
	tailProb := float64(gtB) / float64(n)
	if math.Abs(condProb-tailProb) > 0.01 {
		t.Fatalf("memoryless violated: P(X>a+b|X>a)=%v, P(X>b)=%v", condProb, tailProb)
	}
}
