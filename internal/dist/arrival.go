package dist

import "fmt"

// Kind names an interarrival (or service) distribution family in the
// experiment grids. The paper's cluster-sampling centroids use exponential
// and Pareto arrivals; deterministic arrivals are used in simulator
// validation tests.
type Kind string

const (
	// KindExponential denotes Poisson arrivals (M in Kendall notation).
	KindExponential Kind = "exponential"
	// KindPareto denotes heavy-tailed arrivals, truncated so the
	// requested rate is honoured (paper uses alpha = 0.5).
	KindPareto Kind = "pareto"
	// KindDeterministic denotes fixed-interval arrivals (D).
	KindDeterministic Kind = "deterministic"
)

// ParetoAlpha is the tail index used for heavy-tailed arrival processes.
// The paper's query-mix study sets alpha = 0.5 (Section 3.4).
const ParetoAlpha = 0.5

// paretoCapFactor bounds truncated-Pareto interarrival gaps at this
// multiple of the mean so that a finite arrival rate exists despite
// alpha < 1. The cap also bounds the variance of mean-response-time
// estimates: with alpha = 0.5 an uncapped tail would need millions of
// samples per measurement before run means stabilise.
const paretoCapFactor = 10

// ForRate builds an interarrival distribution of the given family whose mean
// interarrival time is 1/rate.
func ForRate(kind Kind, rate float64) Dist {
	if rate <= 0 {
		panic(fmt.Sprintf("dist: arrival rate %v must be positive", rate))
	}
	switch kind {
	case KindExponential:
		return NewExponential(rate)
	case KindPareto:
		return ParetoForRate(rate, ParetoAlpha, paretoCapFactor)
	case KindDeterministic:
		return Deterministic{Value: 1 / rate}
	default:
		panic(fmt.Sprintf("dist: unknown distribution kind %q", kind))
	}
}

// Kinds lists the supported families in a stable order.
func Kinds() []Kind {
	return []Kind{KindExponential, KindPareto, KindDeterministic}
}
