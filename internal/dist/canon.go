package dist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Canonical byte encoding of distributions, consumed by internal/sweep's
// memoization fingerprint. Two distributions that generate identical
// sample streams for every RNG must encode to identical bytes, and any
// parameter change must change the bytes. Each encoding starts with a
// distinct type tag, and every numeric parameter is written as its exact
// IEEE-754 bit pattern, so no formatting or rounding can alias two
// different distributions.

// canon type tags. The numeric values are part of the fingerprint format:
// never reorder or reuse them, only append.
const (
	canonExponential byte = iota + 1
	canonDeterministic
	canonUniform
	canonPareto
	canonTruncatedPareto
	canonLogNormal
	canonErlang
	canonHyperexponential
	canonEmpirical
	canonMixture
	canonSequence
	canonScaled
)

// appendFloat appends v's IEEE-754 bit pattern, little-endian.
func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendLen appends a collection length, fixed-width so element payloads
// of one distribution can never be parsed as the header of the next.
func appendLen(b []byte, n int) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(n))
}

// AppendCanon appends d's canonical encoding to b and returns the
// extended slice. Distribution types outside this package's catalog
// return an error; callers (the sweep engine) treat that as
// "uncacheable" and bypass memoization rather than risk a collision.
func AppendCanon(b []byte, d Dist) ([]byte, error) {
	switch v := d.(type) {
	case Exponential:
		return appendFloat(append(b, canonExponential), v.Rate), nil
	case Deterministic:
		return appendFloat(append(b, canonDeterministic), v.Value), nil
	case Uniform:
		return appendFloat(appendFloat(append(b, canonUniform), v.Lo), v.Hi), nil
	case Pareto:
		return appendFloat(appendFloat(append(b, canonPareto), v.Xm), v.Alpha), nil
	case TruncatedPareto:
		b = appendFloat(append(b, canonTruncatedPareto), v.Xm)
		return appendFloat(appendFloat(b, v.Alpha), v.Max), nil
	case LogNormal:
		return appendFloat(appendFloat(append(b, canonLogNormal), v.Mu), v.Sigma), nil
	case Erlang:
		b = appendLen(append(b, canonErlang), v.K)
		return appendFloat(b, v.Rate), nil
	case Hyperexponential:
		b = appendLen(append(b, canonHyperexponential), len(v.P))
		for _, p := range v.P {
			b = appendFloat(b, p)
		}
		for _, r := range v.Rates {
			b = appendFloat(b, r)
		}
		return b, nil
	case *Empirical:
		b = appendLen(append(b, canonEmpirical), len(v.values))
		for _, s := range v.values {
			b = appendFloat(b, s)
		}
		return b, nil
	case Mixture:
		b = appendLen(append(b, canonMixture), len(v.Weights))
		for _, w := range v.Weights {
			b = appendFloat(b, w)
		}
		var err error
		for _, c := range v.Components {
			if b, err = AppendCanon(b, c); err != nil {
				return nil, err
			}
		}
		return b, nil
	case *Sequence:
		// Sequence is stateful: the replay cursor is part of the
		// identity, since two sequences at different positions produce
		// different sample streams.
		b = appendLen(append(b, canonSequence), len(v.values))
		for _, s := range v.values {
			b = appendFloat(b, s)
		}
		b = appendFloat(b, v.jitter)
		return appendLen(b, v.idx), nil
	case Scaled:
		b = appendFloat(append(b, canonScaled), v.Factor)
		return AppendCanon(b, v.Base)
	default:
		return nil, fmt.Errorf("dist: no canonical encoding for %T", d)
	}
}
